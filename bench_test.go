// Package parascope's root benchmark harness: one benchmark per
// regenerated table and figure of the evaluation (see DESIGN.md's
// experiment index and EXPERIMENTS.md for recorded results).
package parascope

import (
	"context"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"parascope/internal/codegen"
	"parascope/internal/core"
	"parascope/internal/dataflow"
	"parascope/internal/dep"
	"parascope/internal/experiments"
	"parascope/internal/fortran"
	"parascope/internal/interp"
	"parascope/internal/planner"
	"parascope/internal/server"
	"parascope/internal/workloads"
)

// BenchmarkT1Suite measures parsing and measuring the whole program
// suite (Table 1).
func BenchmarkT1Suite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, w := range workloads.All() {
			if _, err := w.Measure(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkT2Sessions replays every scripted user session (Table 2):
// full analysis plus the interactive actions per workload.
func BenchmarkT2Sessions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunSessions(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkT3Ablation runs the analysis-capability matrix (Table 3):
// every workload under every analysis configuration.
func BenchmarkT3Ablation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAblation(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkF1Render renders the Ped window (Figure 1).
func BenchmarkF1Render(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure1(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkF2PowerSteering runs the worked transformation transcript.
func BenchmarkF2PowerSteering(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.PowerSteering(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE5DepTests measures the hierarchical dependence test suite
// over all workloads (the per-test effectiveness experiment).
func BenchmarkE5DepTests(b *testing.B) {
	// Pre-parse and pre-analyze data-flow once; the benchmark times
	// dependence testing itself.
	type unitDF struct{ df *dataflow.Analysis }
	var dfs []unitDF
	for _, w := range workloads.All() {
		f := w.MustParse()
		for _, u := range f.Units {
			dfs = append(dfs, unitDF{dataflow.Analyze(u, nil)})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, x := range dfs {
			dep.Analyze(x.df, nil, nil, dep.DefaultOptions())
		}
	}
}

// BenchmarkE6Speedup executes every parallelized workload at several
// worker counts; b.Run sub-benchmarks give per-configuration timings,
// and the reported simulated cycles give machine-independent speedup.
func BenchmarkE6Speedup(b *testing.B) {
	prepared := map[string]*core.Session{}
	for _, w := range workloads.All() {
		s, err := w.Session()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := w.Script(s); err != nil {
			b.Fatal(err)
		}
		prepared[w.Name] = s
	}
	for _, w := range workloads.All() {
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/w%d", w.Name, workers), func(b *testing.B) {
				s := prepared[w.Name]
				var cycles int64
				for i := 0; i < b.N; i++ {
					_, c, err := interp.RunCaptureSim(s.File, workers, w.Input)
					if err != nil {
						b.Fatal(err)
					}
					cycles = c
				}
				b.ReportMetric(float64(cycles), "simcycles")
			})
		}
	}
}

// BenchmarkE7Incremental compares whole-program reanalysis against
// the incremental per-unit path on a spec77-scale program.
func BenchmarkE7Incremental(b *testing.B) {
	src := experiments.BigProgram(40)
	s, err := core.Open("big.f", src)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s.AnalyzeAll()
		}
	})
	b.Run("one-unit", func(b *testing.B) {
		u := s.File.Unit("unit0")
		for i := 0; i < b.N; i++ {
			s.ReanalyzeUnit(u)
		}
	})
	b.Run("edit", func(b *testing.B) {
		if err := s.SelectUnit("unit0"); err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			target := s.Loops()[0].Do.Body[0]
			if err := s.EditStmt(target.ID(), "t = x(i)*0.5 + x(i-1)*0.25"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// editBenchSource builds one large program unit — loops copies of a
// four-statement loop over shared arrays — so whole-unit reanalysis
// has a realistic quadratic pair-testing bill for the patch path to
// beat.
func editBenchSource(loops int) string {
	var b strings.Builder
	n := loops*1000 + 1000
	fmt.Fprintf(&b, "      program main\n      integer i\n      real a(%d), b(%d), c(%d), t\n", n, n, n)
	b.WriteString("      t = 0.0\n")
	// Each loop works a disjoint 1000-element window of the shared
	// arrays: the pairs across loops must all be *tested* (same
	// symbols everywhere) but are all disproven, so the whole-unit
	// bill is quadratic pair testing over a sparse dependence graph.
	sub := func(k int) string {
		switch {
		case k == 0:
			return "i"
		case k < 0:
			return fmt.Sprintf("i-%d", -k)
		default:
			return fmt.Sprintf("i+%d", k)
		}
	}
	for l := 0; l < loops; l++ {
		k := l * 1000
		b.WriteString("      do i = 2, 999\n")
		fmt.Fprintf(&b, "         a(%s) = a(%s)*0.5 + b(%s)\n", sub(k), sub(k-1), sub(k))
		fmt.Fprintf(&b, "         b(%s) = b(%s) + c(%s)\n", sub(k), sub(k-1), sub(k))
		fmt.Fprintf(&b, "         c(%s) = c(%s) + a(%s)\n", sub(k), sub(k-1), sub(k))
		fmt.Fprintf(&b, "         t = t + a(%s)\n", sub(k))
		b.WriteString("      enddo\n")
	}
	b.WriteString("      print *, t\n      end\n")
	return b.String()
}

// BenchmarkEditReanalyze measures what a single-statement edit costs
// the editor: the whole-unit reanalysis baseline (WholeUnitOnly)
// against the statement-granular patch path, for the same 1:1 edit of
// one assignment deep inside a large unit. The "stmt" sub-benchmark
// must come in well under the "whole-unit" one — the committed
// BENCH_pedd.json records the ratio.
func BenchmarkEditReanalyze(b *testing.B) {
	src := editBenchSource(30)
	for _, mode := range []struct {
		name      string
		wholeUnit bool
		wantMode  string
	}{
		{"whole-unit", true, "unit"},
		{"stmt", false, "patch"},
	} {
		b.Run(mode.name, func(b *testing.B) {
			s, err := core.Open("edit.f", src)
			if err != nil {
				b.Fatal(err)
			}
			s.WholeUnitOnly = mode.wholeUnit
			target := s.Loops()[14].Do.Body[3]
			id := target.ID()
			text := fortran.StmtText(target)
			// Warm-up edit: verify the intended path engages before
			// timing it.
			if err := s.EditStmt(id, "      "+text); err != nil {
				b.Fatal(err)
			}
			if s.LastReanalysis.Mode != mode.wantMode {
				b.Fatalf("edit took the %q path, want %q", s.LastReanalysis.Mode, mode.wantMode)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.EditStmt(id, "      "+text); err != nil {
					b.Fatal(err)
				}
				s.SetUndoStack(nil)
			}
		})
	}
}

// BenchmarkE5NoRanges is the design-choice ablation bench: the
// dependence suite with the range-based (Banerjee/bounds) tier
// disabled — cheaper per pair but conservative (see
// TestRangeTestsAblation for the precision difference).
func BenchmarkE5NoRanges(b *testing.B) {
	var dfs []*dataflow.Analysis
	for _, w := range workloads.All() {
		f := w.MustParse()
		for _, u := range f.Units {
			dfs = append(dfs, dataflow.Analyze(u, nil))
		}
	}
	opts := dep.DefaultOptions()
	opts.UseRanges = false
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, df := range dfs {
			dep.Analyze(df, nil, nil, opts)
		}
	}
}

// BenchmarkParser measures front-end throughput on the biggest
// synthetic program.
func BenchmarkParser(b *testing.B) {
	src := experiments.BigProgram(40)
	b.SetBytes(int64(len(src)))
	for i := 0; i < b.N; i++ {
		if _, err := fortran.Parse("big.f", src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnalysisCache compares a cold session open (parse + full
// analysis + artifact build every time) against a warm open served
// from the content-hash cache. The warm path must be measurably
// faster: it hashes the source and hands back prebuilt artifacts.
func BenchmarkAnalysisCache(b *testing.B) {
	b.Run("cold", func(b *testing.B) {
		m := server.NewManager(server.Config{}) // cache disabled
		defer m.Shutdown()
		for i := 0; i < b.N; i++ {
			_, resp, err := m.Open(context.Background(), server.OpenRequest{Workload: "spec77"})
			if err != nil {
				b.Fatal(err)
			}
			if resp.Cached {
				b.Fatal("cold open reported a cache hit")
			}
			m.Close(resp.ID)
		}
	})
	b.Run("warm", func(b *testing.B) {
		m := server.NewManager(server.Config{CacheSize: 8})
		defer m.Shutdown()
		_, prime, err := m.Open(context.Background(), server.OpenRequest{Workload: "spec77"})
		if err != nil {
			b.Fatal(err)
		}
		m.Close(prime.ID)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, resp, err := m.Open(context.Background(), server.OpenRequest{Workload: "spec77"})
			if err != nil {
				b.Fatal(err)
			}
			if !resp.Cached {
				b.Fatal("warm open missed the cache")
			}
			m.Close(resp.ID)
		}
	})
}

// BenchmarkServerThroughput measures complete pedd session round-trips
// per second — open, select a loop, fetch dependences, close — over
// real HTTP at 1, 4, and 16 concurrent clients.
func BenchmarkServerThroughput(b *testing.B) {
	for _, clients := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("c%d", clients), func(b *testing.B) {
			m := server.NewManager(server.Config{CacheSize: 16})
			defer m.Shutdown()
			ts := httptest.NewServer(server.New(m))
			defer ts.Close()
			b.ResetTimer()
			var wg sync.WaitGroup
			errCh := make(chan error, clients)
			per := b.N / clients
			extra := b.N % clients
			for g := 0; g < clients; g++ {
				n := per
				if g < extra {
					n++
				}
				wg.Add(1)
				go func(n int) {
					defer wg.Done()
					ctx := context.Background()
					c := server.NewClient(ts.URL)
					for i := 0; i < n; i++ {
						open, err := c.Open(ctx, server.OpenRequest{Workload: "direct"})
						if err != nil {
							errCh <- err
							return
						}
						if _, err := c.Select(ctx, open.ID, server.SelectRequest{Loop: 1}); err != nil {
							errCh <- err
							return
						}
						if _, err := c.Deps(ctx, open.ID, server.DepQuery{}); err != nil {
							errCh <- err
							return
						}
						if err := c.CloseSession(ctx, open.ID); err != nil {
							errCh <- err
							return
						}
					}
				}(n)
			}
			wg.Wait()
			close(errCh)
			for err := range errCh {
				b.Fatal(err)
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "sessions/s")
		})
	}
}

// BenchmarkPlannerSearch measures one full speculative-search round:
// fork candidate worlds from a workload session, beam-search the
// transformation space, score and rank the surviving plans. Static
// scoring only (the interp validation pass is benchmarked separately
// by BenchmarkE6Speedup); worlds/s reports exploration throughput.
func BenchmarkPlannerSearch(b *testing.B) {
	for _, name := range []string{"direct", "spec77"} {
		b.Run(name, func(b *testing.B) {
			w := workloads.ByName(name)
			var worlds int
			for i := 0; i < b.N; i++ {
				res, err := planner.Search(context.Background(), w.Name+".f", w.Source, "",
					planner.Options{Interp: false}, nil)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Plans) == 0 {
					b.Fatal("search found no plans")
				}
				worlds += res.WorldsForked
			}
			b.ReportMetric(float64(worlds)/b.Elapsed().Seconds(), "worlds/s")
		})
	}
}

// BenchmarkInterp measures interpreter throughput (statements/sec).
func BenchmarkInterp(b *testing.B) {
	w := workloads.ByName("direct")
	f := w.MustParse()
	m := interp.New(f)
	if err := m.Run(); err != nil {
		b.Fatal(err)
	}
	stmts := m.StmtsExecuted()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := interp.RunCapture(f, 1, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(stmts)*float64(b.N)/b.Elapsed().Seconds(), "stmts/s")
}

// BenchmarkCompiledVsInterp races the two execution backends on the
// largest program the harness runs — the spec77-scale edit-bench
// source (30 loop nests, ~120k interpreted statements). The compiled
// binary is built once outside the timed region — the cache makes
// rebuilds free — and its per-run number includes process spawn, the
// honest per-execution cost of the exec API. benchjson -check holds
// the committed interp/compiled ratio at >= 5x.
func BenchmarkCompiledVsInterp(b *testing.B) {
	f, err := fortran.Parse("bench.f", editBenchSource(30))
	if err != nil {
		b.Fatal(err)
	}
	art, err := codegen.Build(context.Background(), f, b.TempDir(), nil)
	if err != nil {
		b.Fatal(err)
	}
	want, _, err := interp.RunCaptureSim(f, 1, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("interp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			out, _, err := interp.RunCaptureSim(f, 1, nil)
			if err != nil {
				b.Fatal(err)
			}
			if out != want {
				b.Fatal("interp output changed between runs")
			}
		}
	})
	b.Run("compiled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := codegen.Run(context.Background(), art, 1, nil, nil)
			if err != nil {
				b.Fatal(err)
			}
			if res.Output != want {
				b.Fatal("compiled output diverged from the interpreter")
			}
		}
	})
}
