#!/bin/sh
# Regenerate BENCH_pedd.json: run the daemon-facing benchmarks
# (server throughput, analysis cache, speculative planner search,
# edit reanalysis, compiled-vs-interp execution) and convert the
# results to JSON with cmd/benchjson.
# Run from the repo root:
#
#   sh scripts/genbench.sh            # quick numbers (1 iteration each)
#   BENCHTIME=2s sh scripts/genbench.sh   # steadier numbers
set -eu
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1x}"
OUT="${OUT:-BENCH_pedd.json}"

go test -run '^$' -bench 'BenchmarkServerThroughput|BenchmarkAnalysisCache|BenchmarkPlannerSearch|BenchmarkEditReanalyze|BenchmarkCompiledVsInterp' \
	-benchtime "$BENCHTIME" . |
	tee /dev/stderr |
	go run ./cmd/benchjson >"$OUT"
go run ./cmd/benchjson -check "$OUT"
