// Differential test for the compile backend: on every workload of
// the suite, the program compiled to Go by internal/codegen must
// produce byte-identical output to the interpreter — for the serial
// program as parsed, and for the script-parallelized version at
// several DOALL worker counts. Byte identity (not tolerance-based
// equivalence) is the contract: both backends share runfmt formatting
// and replicate the same reduction-combining order.
package parascope

import (
	"context"
	"fmt"
	"testing"
	"time"

	"parascope/internal/codegen"
	"parascope/internal/fortran"
	"parascope/internal/interp"
	"parascope/internal/workloads"
)

// compiledVariants returns the serial and parallelized forms of a
// workload, parsed fresh so tests cannot interfere.
func compiledVariants(t testing.TB, w *workloads.Workload) map[string]*fortran.File {
	t.Helper()
	serial := w.MustParse()
	s, err := w.Session()
	if err != nil {
		t.Fatalf("session: %v", err)
	}
	if _, err := w.Script(s); err != nil {
		t.Fatalf("script: %v", err)
	}
	return map[string]*fortran.File{"serial": serial, "parallel": s.File}
}

func TestCompiledMatchesInterp(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles binaries; skipped in -short mode")
	}
	cache := t.TempDir()
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			for label, file := range compiledVariants(t, w) {
				art, err := codegen.Build(context.Background(), file, cache, nil)
				if err != nil {
					t.Fatalf("%s: build: %v", label, err)
				}
				counts := []int{1, 2, 4, 8}
				if label == "serial" {
					counts = []int{1}
				}
				for _, workers := range counts {
					name := fmt.Sprintf("%s/w%d", label, workers)
					want, _, err := interp.RunCaptureSim(file, workers, w.Input)
					if err != nil {
						t.Fatalf("%s: interp: %v", name, err)
					}
					ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
					got, err := codegen.Run(ctx, art, workers, w.Input, nil)
					cancel()
					if err != nil {
						t.Fatalf("%s: compiled: %v", name, err)
					}
					if got.Output != want {
						t.Fatalf("%s: compiled output differs from interpreter\ncompiled:\n%s\ninterp:\n%s",
							name, got.Output, want)
					}
				}
			}
		})
	}
}
