// Fuzz target for the Fortran front end. CI runs it briefly on every
// push (see the chaos job); longer local runs:
//
//	go test ./internal/fortran -fuzz FuzzParse -fuzztime 5m
package fortran_test

import (
	"testing"

	"parascope/internal/fortran"
	"parascope/internal/workloads"
)

// FuzzParse feeds arbitrary source to the parser and checks the two
// robustness invariants the rest of the system leans on: the front
// end never panics (it parses or returns an error), and anything it
// accepts round-trips — the printed form reparses, and printing that
// is a fixpoint. Session materialization and the analysis cache both
// assume print→parse→print stability.
func FuzzParse(f *testing.F) {
	for _, w := range workloads.All() {
		f.Add(w.Source)
	}
	for _, s := range []string{
		"",
		"\n",
		"      end\n",
		"      program p\n      end\n",
		"c comment only\n",
		"      program p\n      integer i\n      do i = 1, 10\n      enddo\n      end\n",
		"      program p\n      goto 10\n 10   continue\n      end\n",
		"      program p\n      x = 1.0e\n      end\n",
		"      program p\n      a(1 = 2\n      end\n",
		"      program p\n      if (x .gt. 0) then\n      end\n",
		"      program p\n      print *, 'it''s'\n      end\n",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		file, err := fortran.Parse("fuzz.f", src)
		if err != nil {
			return // rejected is fine; panicking is not
		}
		printed := fortran.Print(file)
		re, err := fortran.Parse("fuzz.f", printed)
		if err != nil {
			t.Fatalf("accepted source prints to something unparseable: %v\n--- input ---\n%q\n--- printed ---\n%s", err, src, printed)
		}
		if again := fortran.Print(re); again != printed {
			t.Fatalf("print is not a fixpoint\n--- first ---\n%s\n--- second ---\n%s", printed, again)
		}
	})
}
