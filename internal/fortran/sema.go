package fortran

// Intrinsic function names understood by the front end, estimator and
// interpreter. The value is the result-type rule: TypeUnknown means
// "same as first argument".
var Intrinsics = map[string]Type{
	"abs":   TypeUnknown,
	"iabs":  TypeInteger,
	"sqrt":  TypeUnknown,
	"exp":   TypeUnknown,
	"log":   TypeUnknown,
	"log10": TypeUnknown,
	"sin":   TypeUnknown,
	"cos":   TypeUnknown,
	"tan":   TypeUnknown,
	"atan":  TypeUnknown,
	"atan2": TypeUnknown,
	"max":   TypeUnknown,
	"amax1": TypeReal,
	"max0":  TypeInteger,
	"min":   TypeUnknown,
	"amin1": TypeReal,
	"min0":  TypeInteger,
	"mod":   TypeUnknown,
	"amod":  TypeReal,
	"sign":  TypeUnknown,
	"int":   TypeInteger,
	"ifix":  TypeInteger,
	"nint":  TypeInteger,
	"real":  TypeReal,
	"float": TypeReal,
	"dble":  TypeDouble,
	"sngl":  TypeReal,
	"dim":   TypeUnknown,
	"sinh":  TypeUnknown,
	"cosh":  TypeUnknown,
	"tanh":  TypeUnknown,
	"asin":  TypeUnknown,
	"acos":  TypeUnknown,
}

// resolve binds names to symbols across the file: VarRefs whose name
// denotes a function become FuncCalls, call statements are linked to
// their defining units, and simple semantic checks run.
func resolve(f *File, errs *ErrorList) {
	units := make(map[string]*Unit, len(f.Units))
	for _, u := range f.Units {
		units[u.Name] = u
	}
	for _, u := range f.Units {
		r := &resolver{file: f, unit: u, units: units, errs: errs}
		r.stmts(u.Body)
	}
}

type resolver struct {
	file  *File
	unit  *Unit
	units map[string]*Unit
	errs  *ErrorList
}

func (r *resolver) stmts(body []Stmt) {
	for i, s := range body {
		switch st := s.(type) {
		case *AssignStmt:
			st.Rhs = r.expr(st.Rhs)
			r.resolveLhs(st)
		case *IfStmt:
			st.Cond = r.expr(st.Cond)
			r.stmts(st.Then)
			r.stmts(st.Else)
		case *DoStmt:
			st.Lo = r.expr(st.Lo)
			st.Hi = r.expr(st.Hi)
			if st.Step != nil {
				st.Step = r.expr(st.Step)
			}
			r.stmts(st.Body)
		case *WhileStmt:
			st.Cond = r.expr(st.Cond)
			r.stmts(st.Body)
		case *CallStmt:
			for j, a := range st.Args {
				st.Args[j] = r.expr(a)
			}
			if callee, ok := r.units[st.Name]; ok && callee.Kind == UnitSubroutine {
				st.Callee = callee
			}
		case *PrintStmt:
			for j, it := range st.Items {
				st.Items[j] = r.expr(it)
			}
		case *ReadStmt:
			for j, it := range st.Items {
				st.Items[j] = r.expr(it)
			}
		}
		body[i] = s
	}
}

// resolveLhs binds the assignment target, which must be a variable.
func (r *resolver) resolveLhs(st *AssignStmt) {
	ref := st.Lhs
	sym := r.lookupOrCreate(ref.Name)
	ref.Sym = sym
	for i, sub := range ref.Subs {
		ref.Subs[i] = r.expr(sub)
	}
	if sym.Kind == SymArray && len(ref.Subs) != 0 && len(ref.Subs) != len(sym.Dims) {
		r.errs.add(Pos{st.Line(), 1}, "%s: %d subscripts for %d-dimensional array",
			ref.Name, len(ref.Subs), len(sym.Dims))
	}
	if sym.Kind == SymScalar && len(ref.Subs) > 0 {
		// An undeclared name used with subscripts on the LHS must be
		// an array the user forgot to declare; treat as array with
		// assumed dims to continue.
		r.errs.add(Pos{st.Line(), 1}, "%s: subscripted but not declared as an array", ref.Name)
	}
	if sym.Kind == SymParam {
		r.errs.add(Pos{st.Line(), 1}, "%s: assignment to PARAMETER constant", ref.Name)
	}
}

// expr resolves names inside an expression, rewriting VarRef nodes
// that actually denote function calls.
func (r *resolver) expr(e Expr) Expr {
	switch x := e.(type) {
	case *VarRef:
		for i, s := range x.Subs {
			x.Subs[i] = r.expr(s)
		}
		// A parenthesized name can be: array element, user function
		// call, or intrinsic call.
		if sym, ok := r.unit.Syms[x.Name]; ok {
			x.Sym = sym
			switch sym.Kind {
			case SymArray, SymScalar, SymParam:
				if sym.Kind != SymArray && len(x.Subs) > 0 {
					// Scalar with parens: must be a function.
					return r.makeCall(x)
				}
				return x
			default:
				if len(x.Subs) > 0 {
					return r.makeCall(x)
				}
				return x
			}
		}
		if len(x.Subs) > 0 {
			return r.makeCall(x)
		}
		// Bare name: create implicit scalar.
		x.Sym = r.lookupOrCreate(x.Name)
		return x
	case *Unary:
		x.X = r.expr(x.X)
		return x
	case *Binary:
		x.X = r.expr(x.X)
		x.Y = r.expr(x.Y)
		return x
	case *FuncCall:
		for i, a := range x.Args {
			x.Args[i] = r.expr(a)
		}
		return x
	}
	return e
}

func (r *resolver) makeCall(x *VarRef) Expr {
	call := &FuncCall{Name: x.Name, Args: x.Subs}
	if _, ok := Intrinsics[x.Name]; ok {
		return call
	}
	if u, ok := r.units[x.Name]; ok && u.Kind == UnitFunction {
		call.Callee = u
		return call
	}
	// Unknown name used as f(args): register as external function.
	sym := r.lookupOrCreate(x.Name)
	sym.Kind = SymFunc
	call.Sym = sym
	return call
}

func (r *resolver) lookupOrCreate(name string) *Symbol {
	if s, ok := r.unit.Syms[name]; ok {
		return s
	}
	s := &Symbol{Name: name, Kind: SymScalar, Type: implicitType(name), Unit: r.unit}
	r.unit.Syms[name] = s
	return s
}

// ExprType computes the static type of an expression within unit u.
func ExprType(u *Unit, e Expr) Type {
	switch x := e.(type) {
	case *IntLit:
		return TypeInteger
	case *RealLit:
		if x.Double {
			return TypeDouble
		}
		return TypeReal
	case *LogLit:
		return TypeLogical
	case *StrLit:
		return TypeCharacter
	case *VarRef:
		if x.Sym != nil {
			return x.Sym.Type
		}
		if s, ok := u.Syms[x.Name]; ok {
			return s.Type
		}
		return implicitType(x.Name)
	case *FuncCall:
		if x.Callee != nil {
			if x.Callee.RetType != TypeUnknown {
				return x.Callee.RetType
			}
			return implicitType(x.Callee.Name)
		}
		if t, ok := Intrinsics[x.Name]; ok {
			if t != TypeUnknown {
				return t
			}
			if len(x.Args) > 0 {
				return ExprType(u, x.Args[0])
			}
			return TypeReal
		}
		return implicitType(x.Name)
	case *Unary:
		if x.Op == TokNot {
			return TypeLogical
		}
		return ExprType(u, x.X)
	case *Binary:
		switch x.Op {
		case TokLt, TokLe, TokGt, TokGe, TokEqEq, TokNe, TokAnd, TokOr:
			return TypeLogical
		}
		tx, ty := ExprType(u, x.X), ExprType(u, x.Y)
		return promote(tx, ty)
	}
	return TypeUnknown
}

func promote(a, b Type) Type {
	if a == TypeDouble || b == TypeDouble {
		return TypeDouble
	}
	if a == TypeReal || b == TypeReal {
		return TypeReal
	}
	if a == TypeInteger && b == TypeInteger {
		return TypeInteger
	}
	if a == TypeLogical && b == TypeLogical {
		return TypeLogical
	}
	return TypeReal
}
