package fortran

import (
	"math/rand"
	"strings"
	"testing"
)

// TestParserNeverPanics mutates valid programs randomly (deletions,
// duplications, character flips, truncations) and requires the front
// end to either parse or return an error — never panic, never hang.
func TestParserNeverPanics(t *testing.T) {
	seeds := []string{
		tinyProgram,
		`
      program p
      integer i, j
      real a(10,10)
      do i = 1, 10
         do j = 1, 10
            if (a(i,j) .gt. 0.0) then
               a(i,j) = sqrt(a(i,j))
            else
               a(i,j) = -a(i,j)
            endif
         enddo
      enddo
      call f(a)
      end
      subroutine f(x)
      real x(10,10)
      x(1,1) = 0.0
      return
      end
`,
		"      program q\n      goto 10\n 10   continue\n      end\n",
	}
	rnd := rand.New(rand.NewSource(99))
	chars := []byte("()=+-*/,.<>ab19 \n'")
	for _, seed := range seeds {
		for trial := 0; trial < 400; trial++ {
			b := []byte(seed)
			for k := 0; k < 1+rnd.Intn(6); k++ {
				if len(b) == 0 {
					break
				}
				pos := rnd.Intn(len(b))
				switch rnd.Intn(4) {
				case 0: // flip
					b[pos] = chars[rnd.Intn(len(chars))]
				case 1: // delete
					b = append(b[:pos], b[pos+1:]...)
				case 2: // duplicate a slice
					end := pos + rnd.Intn(10)
					if end > len(b) {
						end = len(b)
					}
					b = append(b[:end], append([]byte(string(b[pos:end])), b[end:]...)...)
				case 3: // truncate
					b = b[:pos]
				}
			}
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("parser panicked: %v\ninput:\n%s", r, string(b))
					}
				}()
				f, err := Parse("fuzz.f", string(b))
				// If it parsed, printing and reparsing must also work.
				if err == nil && f != nil {
					printed := Print(f)
					func() {
						defer func() {
							if r := recover(); r != nil {
								t.Fatalf("printer panicked: %v\ninput:\n%s", r, string(b))
							}
						}()
						_, _ = Parse("fuzz2.f", printed)
					}()
				}
			}()
		}
	}
}

// TestLexerEdgeCases exercises lexical corner inputs.
func TestLexerEdgeCases(t *testing.T) {
	cases := []struct {
		src     string
		wantErr bool
	}{
		{"      program p\n      x = 'unterminated\n      end\n", true},
		{"      program p\n      x = 1.5e\n      end\n", true}, // 'e' becomes ident -> x = 1.5 e -> error
		{"      program p\n      x = .notanop. 1\n      end\n", true},
		{"      program p\n      x = 1..2\n      end\n", true},
		{"      program p\n      x = 'it''s fine'\n      end\n", false},
		{"      program p\n      x = 1.e5\n      end\n", false},
		{"      program p\n      x = +5\n      end\n", false},
		{"      program p\n      x = 5\n      y = x ! trailing comment\n      end\n", false},
	}
	for _, c := range cases {
		_, err := Parse("edge.f", c.src)
		if (err != nil) != c.wantErr {
			t.Errorf("%q: err = %v, wantErr = %v", strings.TrimSpace(c.src), err, c.wantErr)
		}
	}
}

// TestDeepNesting guards against stack issues on deep loop nests.
func TestDeepNesting(t *testing.T) {
	var b strings.Builder
	b.WriteString("      program deep\n      integer i1")
	const depth = 30
	for d := 2; d <= depth; d++ {
		b.WriteString(", i")
		b.WriteString(itoa(d))
	}
	b.WriteString("\n      real x\n")
	for d := 1; d <= depth; d++ {
		b.WriteString("      do i" + itoa(d) + " = 1, 2\n")
	}
	b.WriteString("      x = x + 1.0\n")
	for d := 1; d <= depth; d++ {
		b.WriteString("      enddo\n")
	}
	b.WriteString("      end\n")
	f, err := Parse("deep.f", b.String())
	if err != nil {
		t.Fatalf("deep nest failed to parse: %v", err)
	}
	count := 0
	WalkStmts(f.Units[0].Body, func(s Stmt) bool {
		if _, ok := s.(*DoStmt); ok {
			count++
		}
		return true
	})
	if count != depth {
		t.Errorf("got %d nested loops, want %d", count, depth)
	}
}

// TestLabelsSharedAcrossBlocks checks labeled DO loops nested in IFs.
func TestLabeledDoInsideIf(t *testing.T) {
	src := `
      program p
      integer i
      real a(10)
      if (a(1) .lt. 1.0) then
         do 20 i = 1, 10
            a(i) = 0.0
 20      continue
      endif
      end
`
	f, err := Parse("l.f", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	ifStmt := f.Units[0].Body[0].(*IfStmt)
	if _, ok := ifStmt.Then[0].(*DoStmt); !ok {
		t.Errorf("labeled DO inside IF mis-parsed: %T", ifStmt.Then[0])
	}
}
