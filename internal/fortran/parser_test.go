package fortran

import (
	"strings"
	"testing"
)

const tinyProgram = `
      program main
      integer i, n
      real a(100), b(100), s
      parameter (n = 100)
      s = 0.0
      do 10 i = 1, n
         a(i) = b(i) + 1.0
         s = s + a(i)
 10   continue
      print *, s
      end
`

func TestParseTinyProgram(t *testing.T) {
	f, err := Parse("tiny.f", tinyProgram)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(f.Units) != 1 {
		t.Fatalf("got %d units, want 1", len(f.Units))
	}
	u := f.Units[0]
	if u.Kind != UnitProgram || u.Name != "main" {
		t.Fatalf("unit = %s %s, want program main", u.Kind, u.Name)
	}
	if got := len(u.Body); got != 3 {
		t.Fatalf("body has %d stmts, want 3 (assign, do, print)", got)
	}
	do, ok := u.Body[1].(*DoStmt)
	if !ok {
		t.Fatalf("stmt 2 is %T, want *DoStmt", u.Body[1])
	}
	if do.Var.Name != "i" {
		t.Errorf("loop var = %s, want i", do.Var.Name)
	}
	if len(do.Body) != 2 {
		t.Errorf("loop body has %d stmts, want 2 (continue terminator dropped)", len(do.Body))
	}
	a := u.Lookup("a")
	if a == nil || a.Kind != SymArray || len(a.Dims) != 1 {
		t.Errorf("symbol a = %+v, want 1-d array", a)
	}
	n := u.Lookup("n")
	if n == nil || n.Kind != SymParam {
		t.Errorf("symbol n = %+v, want parameter", n)
	}
}

func TestParseSubroutineAndCall(t *testing.T) {
	src := `
      program main
      real x(10)
      call init(x, 10)
      end
      subroutine init(a, n)
      integer n, i
      real a(n)
      do i = 1, n
         a(i) = 0.0
      enddo
      return
      end
`
	f, err := Parse("sub.f", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(f.Units) != 2 {
		t.Fatalf("got %d units, want 2", len(f.Units))
	}
	call, ok := f.Units[0].Body[0].(*CallStmt)
	if !ok {
		t.Fatalf("first stmt is %T, want *CallStmt", f.Units[0].Body[0])
	}
	if call.Callee == nil || call.Callee.Name != "init" {
		t.Errorf("call not resolved to init: %+v", call.Callee)
	}
	sub := f.Units[1]
	if len(sub.Args) != 2 || sub.Args[0].Name != "a" {
		t.Errorf("args = %v", sub.Args)
	}
	if !sub.Args[0].Dummy || sub.Args[0].Kind != SymArray {
		t.Errorf("arg a should be a dummy array: %+v", sub.Args[0])
	}
}

func TestParseIfForms(t *testing.T) {
	src := `
      program main
      integer i, j
      i = 1
      j = 0
      if (i .gt. 0) j = 1
      if (i .gt. 0) then
         j = 2
      else if (i .lt. 0) then
         j = 3
      else
         j = 4
      endif
      end
`
	f, err := Parse("ifs.f", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	body := f.Units[0].Body
	if len(body) != 4 {
		t.Fatalf("body has %d stmts, want 4", len(body))
	}
	lif, ok := body[2].(*IfStmt)
	if !ok || len(lif.Then) != 1 || len(lif.Else) != 0 {
		t.Fatalf("logical IF mis-parsed: %+v", body[2])
	}
	bif, ok := body[3].(*IfStmt)
	if !ok {
		t.Fatalf("block IF mis-parsed: %T", body[3])
	}
	if len(bif.Then) != 1 || len(bif.Else) != 1 {
		t.Fatalf("block IF then=%d else=%d, want 1,1", len(bif.Then), len(bif.Else))
	}
	elif, ok := bif.Else[0].(*IfStmt)
	if !ok || len(elif.Else) != 1 {
		t.Fatalf("else-if chain mis-parsed: %+v", bif.Else[0])
	}
}

func TestParseExpressions(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"x = a + b*c", "x = a + b*c"},
		{"x = (a+b)*c", "x = (a + b)*c"},
		{"x = a**2 + b**2", "x = a**2 + b**2"},
		{"x = -a + b", "x = -a + b"},
		{"x = a .lt. b .and. c .ge. d", "x = a .lt. b .and. c .ge. d"},
		{"x = mod(i, 2)", "x = mod(i,2)"},
		{"x = a(i+1, j-1)", "x = a(i + 1,j - 1)"},
		{"x = 2.5e-3", "x = 2.5e-3"},
		{"x = 1.5d0", "x = 1.5d0"},
		{"x = a - b - c", "x = a - b - c"},
		{"x = a - (b - c)", "x = a - (b - c)"},
		{"x = a/(b*c)", "x = a/(b*c)"},
	}
	for _, c := range cases {
		src := "      program main\n      real a(10,10)\n      " + c.src + "\n      end\n"
		f, err := Parse("expr.f", src)
		if err != nil {
			t.Errorf("%s: %v", c.src, err)
			continue
		}
		as := f.Units[0].Body[0].(*AssignStmt)
		if got := StmtText(as); got != c.want {
			t.Errorf("%s: printed %q, want %q", c.src, got, c.want)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	f, err := Parse("tiny.f", tinyProgram)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	printed := Print(f)
	f2, err := Parse("tiny2.f", printed)
	if err != nil {
		t.Fatalf("reparse of printed output failed: %v\n%s", err, printed)
	}
	printed2 := Print(f2)
	if printed != printed2 {
		t.Errorf("print not idempotent:\n--- first ---\n%s\n--- second ---\n%s", printed, printed2)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"      program main\n      x = (1 + \n      end\n",
		"      program main\n      if (x .gt. 0 then\n      endif\n      end\n",
		"      program main\n      n = 1\n      n(3) = 2\n      end\n",
	}
	for _, src := range cases {
		if _, err := Parse("bad.f", src); err == nil {
			t.Errorf("no error for:\n%s", src)
		}
	}
}

func TestFixedFormContinuation(t *testing.T) {
	src := "      program main\n" +
		"      real a\n" +
		"      a = 1.0 +\n" +
		"     &    2.0\n" +
		"      end\n"
	f, err := Parse("cont.f", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	as := f.Units[0].Body[0].(*AssignStmt)
	if got := as.Rhs.String(); got != "1.0 + 2.0" {
		t.Errorf("rhs = %q", got)
	}
}

func TestCommentsRetained(t *testing.T) {
	src := "c this is a comment\n" + tinyProgram
	f, err := Parse("c.f", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(f.Comments) != 1 || !strings.Contains(f.Comments[0].Text, "this is a comment") {
		t.Errorf("comments = %+v", f.Comments)
	}
}

func TestStmtIDsAssigned(t *testing.T) {
	f := MustParse("tiny.f", tinyProgram)
	seen := map[int]bool{}
	WalkStmts(f.Units[0].Body, func(s Stmt) bool {
		if s.ID() == 0 {
			t.Errorf("statement %s has no ID", StmtText(s))
		}
		if seen[s.ID()] {
			t.Errorf("duplicate ID %d", s.ID())
		}
		seen[s.ID()] = true
		if f.StmtByID(s.ID()) != s {
			t.Errorf("StmtByID(%d) mismatch", s.ID())
		}
		return true
	})
	if len(seen) != 5 {
		t.Errorf("got %d statements, want 5", len(seen))
	}
}

func TestDoWhileAndGoto(t *testing.T) {
	src := `
      program main
      integer i
      i = 0
      do while (i .lt. 10)
         i = i + 1
      enddo
      goto 20
      i = -1
 20   continue
      end
`
	f, err := Parse("dw.f", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	body := f.Units[0].Body
	if _, ok := body[1].(*WhileStmt); !ok {
		t.Errorf("stmt 2 is %T, want *WhileStmt", body[1])
	}
	g, ok := body[2].(*GotoStmt)
	if !ok || g.Target != 20 {
		t.Errorf("goto mis-parsed: %+v", body[2])
	}
}

func TestExprTypes(t *testing.T) {
	src := `
      program main
      integer i, j
      real x
      double precision d
      logical p
      i = j + 1
      x = x*2.0
      d = 1.5d0
      p = i .lt. j
      end
`
	f := MustParse("types.f", src)
	u := f.Units[0]
	want := []Type{TypeInteger, TypeReal, TypeDouble, TypeLogical}
	for i, s := range u.Body {
		as := s.(*AssignStmt)
		if got := ExprType(u, as.Rhs); got != want[i] {
			t.Errorf("stmt %d rhs type = %s, want %s", i, got, want[i])
		}
	}
}

func TestPrinterAllStatementKinds(t *testing.T) {
	src := `
      program kinds
      integer i, n
      real a(10), x
      logical p
      character*8 name
      parameter (n = 10)
      common /blk/ x
      data i /3/
      do 10 i = 1, n
         a(i) = 0.0
 10   continue
      do while (x .lt. 1.0)
         x = x + 0.25
      enddo
      if (x .gt. 0.5) then
         x = 0.5
      else if (x .gt. 0.25) then
         x = 0.25
      else
         x = 0.0
      endif
      if (p) x = -1.0
      call sub(a, n)
      read(*,*) x
      write(*,*) x, a(1)
      print *, 'done'
      goto 20
 20   continue
      stop
      end
      subroutine sub(v, m)
      integer m
      real v(m)
      v(1) = 1.0
      return
      end
`
	f, err := Parse("kinds.f", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	printed := Print(f)
	f2, err := Parse("kinds2.f", printed)
	if err != nil {
		t.Fatalf("reparse failed: %v\n%s", err, printed)
	}
	if printed2 := Print(f2); printed != printed2 {
		t.Errorf("print not idempotent:\n%s\nvs\n%s", printed, printed2)
	}
	// Every statement must render through StmtText.
	for _, u := range f.Units {
		WalkStmts(u.Body, func(s Stmt) bool {
			if txt := StmtText(s); txt == "" || strings.HasPrefix(txt, "?") {
				t.Errorf("StmtText failed for %T: %q", s, txt)
			}
			return true
		})
	}
	// File-level lookups.
	if f.Unit("sub") == nil || f.Main() == nil || f.Unit("nosuch") != nil {
		t.Error("Unit/Main lookup broken")
	}
}

func TestStringersAndErrors(t *testing.T) {
	if TokLParen.String() != "'('" || TokKind(999).String() == "" {
		t.Error("TokKind.String broken")
	}
	tok := Token{Kind: TokIdent, Text: "foo"}
	if !strings.Contains(tok.String(), "foo") {
		t.Error("Token.String broken")
	}
	var el ErrorList
	if el.Error() != "no errors" {
		t.Error("empty ErrorList")
	}
	el.add(Pos{1, 2}, "boom %d", 7)
	if !strings.Contains(el.Error(), "boom 7") || el.Err() == nil {
		t.Error("single error formatting")
	}
	el.add(Pos{3, 4}, "again")
	if !strings.Contains(el.Error(), "1 more error") {
		t.Errorf("multi error formatting: %s", el.Error())
	}
	for _, k := range []SymKind{SymScalar, SymArray, SymParam, SymFunc, SymSubr, SymIntrinsic} {
		if k.String() == "?" {
			t.Errorf("SymKind %d has no name", k)
		}
	}
	for _, ty := range []Type{TypeInteger, TypeReal, TypeDouble, TypeLogical, TypeCharacter, TypeUnknown} {
		_ = ty.String()
	}
	for _, uk := range []UnitKind{UnitProgram, UnitSubroutine, UnitFunction} {
		if uk.String() == "?" {
			t.Errorf("UnitKind %d has no name", uk)
		}
	}
}

func TestExprStringForms(t *testing.T) {
	f := MustParse("s.f", `
      program s
      integer i
      real a(5), x
      logical p
      x = -(a(i) + 1.0)
      p = .not. (x .gt. 0.0)
      x = amax1(x, 2.0**2)
      x = 1.5d0
      end
`)
	for _, s := range f.Units[0].Body {
		as := s.(*AssignStmt)
		if as.Rhs.String() == "" {
			t.Errorf("empty expr string for %T", as.Rhs)
		}
	}
}

func TestParseStmtInContext(t *testing.T) {
	f := MustParse("c.f", tinyProgram)
	u := f.Units[0]
	s, err := ParseStmtIn(f, u, "a(i) = b(i)*2.0 + s")
	if err != nil {
		t.Fatal(err)
	}
	as, ok := s.(*AssignStmt)
	if !ok || as.Lhs.Sym != u.Lookup("a") {
		t.Fatalf("mis-parsed: %+v", s)
	}
	// Multi-line block.
	blk, err := ParseStmtIn(f, u, "do i = 1, 5\n a(i) = 0.0\n enddo")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := blk.(*DoStmt); !ok {
		t.Fatalf("block mis-parsed: %T", blk)
	}
	// Errors propagate.
	if _, err := ParseStmtIn(f, u, "a(i = "); err == nil {
		t.Error("bad text should error")
	}
	if _, err := ParseStmtIn(f, u, ""); err == nil {
		t.Error("empty text should error")
	}
}

// TestDoallDirectiveRoundTrip: a printed c$par doall annotation must
// parse back onto the loop it precedes — this is what makes printed
// sources (saved files, undo snapshots, journal snapshots) faithful.
func TestDoallDirectiveRoundTrip(t *testing.T) {
	src := "      program p\n" +
		"      integer i\n" +
		"      real s, t, x(10)\n" +
		"c$par doall private(t) reduction(+:s) reduction(max:t)\n" +
		"      do i = 1, 10\n" +
		"        s = s + x(i)\n" +
		"      enddo\n" +
		"      end\n"
	f, err := Parse("par.f", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	do, ok := f.Units[0].Body[0].(*DoStmt)
	if !ok {
		t.Fatalf("first statement is %T, want *DoStmt", f.Units[0].Body[0])
	}
	if !do.Parallel {
		t.Fatal("doall directive did not set Parallel")
	}
	if len(do.Private) != 1 || do.Private[0].Name != "t" {
		t.Errorf("private = %+v, want [t]", do.Private)
	}
	if len(do.Reductions) != 2 {
		t.Fatalf("reductions = %+v, want 2", do.Reductions)
	}
	if do.Reductions[0].Op != TokPlus || do.Reductions[0].Sym.Name != "s" {
		t.Errorf("reduction 0 = %+v, want +:s", do.Reductions[0])
	}
	if do.Reductions[1].OpName != "max" || do.Reductions[1].Sym.Name != "t" {
		t.Errorf("reduction 1 = %+v, want max:t", do.Reductions[1])
	}
	// The directive is AST state now, not a comment: it must not be
	// double-recorded.
	if len(f.Comments) != 0 {
		t.Errorf("directive leaked into comments: %+v", f.Comments)
	}
	// Print → parse → print is a fixed point.
	printed := Print(f)
	if !strings.Contains(printed, "c$par doall private(t) reduction(+:s) reduction(max:t)") {
		t.Fatalf("printed output lost the annotation:\n%s", printed)
	}
	f2, err := Parse("par2.f", printed)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if printed2 := Print(f2); printed2 != printed {
		t.Errorf("directive round trip not a fixed point:\n--- first ---\n%s\n--- second ---\n%s", printed, printed2)
	}
}

// TestDirectiveOnNonLoopIgnored: a doall directive over a non-DO
// statement, or an unknown $par directive, parses cleanly and changes
// nothing.
func TestDirectiveIgnoredWhenInapplicable(t *testing.T) {
	src := "      program p\n" +
		"      real x\n" +
		"c$par doall\n" +
		"      x = 1.0\n" +
		"c$par nosuchthing(42)\n" +
		"      do i = 1, 3\n" +
		"        x = x + 1.0\n" +
		"      enddo\n" +
		"      end\n"
	f, err := Parse("np.f", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	for _, s := range f.Units[0].Body {
		if do, ok := s.(*DoStmt); ok && do.Parallel {
			t.Error("unknown directive parallelized a loop")
		}
	}
}
