package fortran

import (
	"fmt"
	"strings"
)

// Print regenerates Fortran source for the whole file. The output is
// free-form with six-space indentation steps, re-parseable by Parse.
func Print(f *File) string {
	var b strings.Builder
	for i, u := range f.Units {
		if i > 0 {
			b.WriteByte('\n')
		}
		PrintUnit(&b, u)
	}
	return b.String()
}

// PrintUnit writes one program unit to b.
func PrintUnit(b *strings.Builder, u *Unit) {
	switch u.Kind {
	case UnitProgram:
		fmt.Fprintf(b, "      program %s\n", u.Name)
	case UnitSubroutine:
		fmt.Fprintf(b, "      subroutine %s(%s)\n", u.Name, argNames(u))
	case UnitFunction:
		prefix := ""
		if u.RetType != TypeUnknown {
			prefix = u.RetType.String() + " "
		}
		fmt.Fprintf(b, "      %sfunction %s(%s)\n", prefix, u.Name, argNames(u))
	}
	printDecls(b, u)
	pr := &printer{b: b, indent: 1}
	pr.stmts(u.Body)
	b.WriteString("      end\n")
}

func argNames(u *Unit) string {
	names := make([]string, len(u.Args))
	for i, a := range u.Args {
		names[i] = a.Name
	}
	return strings.Join(names, ", ")
}

// printDecls regenerates declaration statements from the symbol table
// in deterministic order: type declarations, commons, parameters.
func printDecls(b *strings.Builder, u *Unit) {
	var params, commons []string
	byType := map[Type][]string{}
	var typeOrder []Type
	for _, s := range u.SymbolsSorted() {
		switch s.Kind {
		case SymScalar, SymArray:
			decl := s.Name
			if s.Kind == SymArray {
				dims := make([]string, len(s.Dims))
				for i, d := range s.Dims {
					dims[i] = dimString(d)
				}
				decl += "(" + strings.Join(dims, ",") + ")"
			}
			if _, ok := byType[s.Type]; !ok {
				typeOrder = append(typeOrder, s.Type)
			}
			byType[s.Type] = append(byType[s.Type], decl)
			if s.Common != "" {
				commons = append(commons, fmt.Sprintf("      common /%s/ %s\n", s.Common, s.Name))
			}
		case SymParam:
			params = append(params, fmt.Sprintf("      parameter (%s = %s)\n", s.Name, s.Value))
		}
	}
	// Deterministic type order.
	order := []Type{TypeInteger, TypeReal, TypeDouble, TypeLogical, TypeCharacter, TypeUnknown}
	for _, t := range order {
		if names, ok := byType[t]; ok {
			fmt.Fprintf(b, "      %s %s\n", typeDeclName(t), strings.Join(names, ", "))
		}
	}
	for _, c := range commons {
		b.WriteString(c)
	}
	for _, p := range params {
		b.WriteString(p)
	}
}

func typeDeclName(t Type) string {
	if t == TypeUnknown {
		return "real"
	}
	return t.String()
}

func dimString(d Dimension) string {
	lo := "1"
	if d.Lo != nil {
		lo = d.Lo.String()
	}
	if d.Hi == nil {
		if lo == "1" {
			return "*"
		}
		return lo + ":*"
	}
	if lo == "1" {
		return d.Hi.String()
	}
	return lo + ":" + d.Hi.String()
}

type printer struct {
	b      *strings.Builder
	indent int
}

func (p *printer) line(label int, s string) {
	if label != 0 {
		fmt.Fprintf(p.b, "%-5d ", label)
	} else {
		p.b.WriteString("      ")
	}
	p.b.WriteString(strings.Repeat("  ", p.indent-1))
	p.b.WriteString(s)
	p.b.WriteByte('\n')
}

func (p *printer) stmts(body []Stmt) {
	for _, s := range body {
		p.stmt(s)
	}
}

// StmtText renders a single statement (without its nested body) as
// one line of Fortran, used by the dependence pane and filters.
func StmtText(s Stmt) string {
	switch st := s.(type) {
	case *AssignStmt:
		return st.Lhs.String() + " = " + st.Rhs.String()
	case *IfStmt:
		return "if (" + st.Cond.String() + ") then"
	case *DoStmt:
		return doHeader(st)
	case *WhileStmt:
		return "do while (" + st.Cond.String() + ")"
	case *CallStmt:
		if len(st.Args) == 0 {
			return "call " + st.Name
		}
		parts := make([]string, len(st.Args))
		for i, a := range st.Args {
			parts[i] = a.String()
		}
		return "call " + st.Name + "(" + strings.Join(parts, ", ") + ")"
	case *ReturnStmt:
		return "return"
	case *StopStmt:
		return "stop"
	case *ContinueStmt:
		return "continue"
	case *GotoStmt:
		return fmt.Sprintf("goto %d", st.Target)
	case *PrintStmt:
		parts := make([]string, len(st.Items))
		for i, it := range st.Items {
			parts[i] = it.String()
		}
		return "print *, " + strings.Join(parts, ", ")
	case *ReadStmt:
		parts := make([]string, len(st.Items))
		for i, it := range st.Items {
			parts[i] = it.String()
		}
		return "read(*,*) " + strings.Join(parts, ", ")
	}
	return fmt.Sprintf("? %T", s)
}

func doHeader(st *DoStmt) string {
	h := "do " + st.Var.Name + " = " + st.Lo.String() + ", " + st.Hi.String()
	if st.Step != nil {
		h += ", " + st.Step.String()
	}
	return h
}

func (p *printer) stmt(s Stmt) {
	label := s.base().Label
	switch st := s.(type) {
	case *IfStmt:
		// Logical IF with a single simple statement and no else.
		if len(st.Then) == 1 && len(st.Else) == 0 && isSimple(st.Then[0]) {
			p.line(label, "if ("+st.Cond.String()+") "+StmtText(st.Then[0]))
			return
		}
		p.line(label, "if ("+st.Cond.String()+") then")
		p.indent++
		p.stmts(st.Then)
		p.indent--
		p.printElse(st.Else)
		p.line(0, "endif")
	case *DoStmt:
		hdr := doHeader(st)
		if st.Parallel {
			ann := "c$par doall"
			if len(st.Private) > 0 {
				names := make([]string, len(st.Private))
				for i, v := range st.Private {
					names[i] = v.Name
				}
				ann += " private(" + strings.Join(names, ",") + ")"
			}
			for _, r := range st.Reductions {
				ann += " reduction(" + reductionOpName(r) + ":" + r.Sym.Name + ")"
			}
			p.b.WriteString(ann + "\n")
		}
		p.line(label, hdr)
		p.indent++
		p.stmts(st.Body)
		p.indent--
		p.line(0, "enddo")
	case *WhileStmt:
		p.line(label, "do while ("+st.Cond.String()+")")
		p.indent++
		p.stmts(st.Body)
		p.indent--
		p.line(0, "enddo")
	default:
		p.line(label, StmtText(s))
	}
}

func (p *printer) printElse(els []Stmt) {
	if len(els) == 0 {
		return
	}
	// ELSE IF chain: a single nested IfStmt prints as "else if".
	if len(els) == 1 {
		if nested, ok := els[0].(*IfStmt); ok && nested.Label == 0 && !(len(nested.Then) == 1 && len(nested.Else) == 0 && isSimple(nested.Then[0])) {
			p.line(0, "else if ("+nested.Cond.String()+") then")
			p.indent++
			p.stmts(nested.Then)
			p.indent--
			p.printElse(nested.Else)
			return
		}
	}
	p.line(0, "else")
	p.indent++
	p.stmts(els)
	p.indent--
}

func isSimple(s Stmt) bool {
	switch s.(type) {
	case *AssignStmt, *CallStmt, *GotoStmt, *ReturnStmt, *StopStmt, *ContinueStmt, *PrintStmt:
		return true
	}
	return false
}

func reductionOpName(r Reduction) string {
	if r.OpName != "" {
		return r.OpName
	}
	switch r.Op {
	case TokPlus:
		return "+"
	case TokStar:
		return "*"
	}
	return "?"
}
