// Package fortran implements a Fortran 77 front end: lexer, parser,
// abstract syntax tree, semantic analysis and pretty-printer for the
// dialect used by the ParaScope Editor workloads.
//
// The front end accepts both classic fixed-form layout (comment in
// column 1, statement label in columns 1-5, continuation in column 6)
// and a relaxed free-form layout ('!' comments, '&' continuations).
// Keywords and identifiers are case-insensitive; identifiers are
// normalized to lower case.
package fortran

import "fmt"

// TokKind enumerates lexical token kinds.
type TokKind int

// Token kinds. Keywords are distinguished from identifiers during
// parsing (Fortran has no reserved words), so the lexer only emits
// TokIdent for alphabetic words.
const (
	TokEOF TokKind = iota
	TokNewline
	TokIdent  // identifiers and keywords
	TokInt    // 123
	TokReal   // 1.5, 1e-3, 2.5d0
	TokString // 'text'
	TokLabel  // statement label (fixed-form columns 1-5)
	TokLParen // (
	TokRParen // )
	TokComma  // ,
	TokPlus   // +
	TokMinus  // -
	TokStar   // *
	TokSlash  // /
	TokPower  // **
	TokEq     // =
	TokColon  // :
	TokLt     // .lt. or <
	TokLe     // .le. or <=
	TokGt     // .gt. or >
	TokGe     // .ge. or >=
	TokEqEq   // .eq. or ==
	TokNe     // .ne. or /=
	TokAnd    // .and.
	TokOr     // .or.
	TokNot    // .not.
	TokTrue   // .true.
	TokFalse  // .false.
	TokConcat // //
	TokDollar // $ (directive sigil)
)

var tokNames = map[TokKind]string{
	TokEOF:     "end of file",
	TokNewline: "end of statement",
	TokIdent:   "identifier",
	TokInt:     "integer literal",
	TokReal:    "real literal",
	TokString:  "string literal",
	TokLabel:   "statement label",
	TokLParen:  "'('",
	TokRParen:  "')'",
	TokComma:   "','",
	TokPlus:    "'+'",
	TokMinus:   "'-'",
	TokStar:    "'*'",
	TokSlash:   "'/'",
	TokPower:   "'**'",
	TokEq:      "'='",
	TokColon:   "':'",
	TokLt:      "'.lt.'",
	TokLe:      "'.le.'",
	TokGt:      "'.gt.'",
	TokGe:      "'.ge.'",
	TokEqEq:    "'.eq.'",
	TokNe:      "'.ne.'",
	TokAnd:     "'.and.'",
	TokOr:      "'.or.'",
	TokNot:     "'.not.'",
	TokTrue:    "'.true.'",
	TokFalse:   "'.false.'",
	TokConcat:  "'//'",
	TokDollar:  "'$'",
}

// String returns a human-readable name for the token kind.
func (k TokKind) String() string {
	if s, ok := tokNames[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", int(k))
}

// Token is one lexical token with its source position.
type Token struct {
	Kind TokKind
	Text string // normalized text (identifiers lower-cased)
	Line int    // 1-based source line
	Col  int    // 1-based source column
}

func (t Token) String() string {
	if t.Text != "" {
		return fmt.Sprintf("%s %q", t.Kind, t.Text)
	}
	return t.Kind.String()
}

// Pos identifies a source location.
type Pos struct {
	Line int
	Col  int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Error is a lexical, syntactic or semantic error with a position.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// ErrorList collects front-end errors.
type ErrorList []*Error

func (l ErrorList) Error() string {
	switch len(l) {
	case 0:
		return "no errors"
	case 1:
		return l[0].Error()
	}
	return fmt.Sprintf("%s (and %d more errors)", l[0], len(l)-1)
}

// Err returns the list as an error, or nil when empty.
func (l ErrorList) Err() error {
	if len(l) == 0 {
		return nil
	}
	return l
}

func (l *ErrorList) add(pos Pos, format string, args ...interface{}) {
	*l = append(*l, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}
