// Fuzz target for the incremental reanalysis path, alongside
// FuzzParse. CI runs it briefly on every push (see the chaos job);
// longer local runs:
//
//	go test ./internal/fortran -fuzz FuzzEditReanalyze -fuzztime 5m
package fortran_test

import (
	"fmt"
	"sort"
	"testing"

	"parascope/internal/core"
	"parascope/internal/fortran"
	"parascope/internal/workloads"
)

// depSig renders every dependence of every unit in a sorted,
// order-insensitive form (edge IDs and stats excluded — the patch
// path renumbers and accumulates them by design).
func depSig(s *core.Session) []string {
	var out []string
	for _, u := range s.File.Units {
		st := s.StateOf(u)
		if st == nil || st.Deps == nil {
			continue
		}
		for _, d := range st.Deps.Deps {
			out = append(out, fmt.Sprintf("%s %s %s l%d %s %s #%d->#%d %s",
				u.Name, d.Sym.Name, d.Class, d.Level, d.DirString(), d.Test,
				d.Src.ID(), d.Dst.ID(), d.Mark))
		}
	}
	sort.Strings(out)
	return out
}

// FuzzEditReanalyze feeds an arbitrary program plus one arbitrary
// statement edit to a session and checks the invariant the editor
// leans on: whatever reanalysis path the edit takes (statement patch,
// unit, program escalation), the resulting dependence graphs must
// match a from-scratch analysis of the saved source. Inputs the
// front end or the analyses reject are skipped — equivalence, not
// robustness, is the property under test here.
func FuzzEditReanalyze(f *testing.F) {
	for _, w := range workloads.All() {
		f.Add(w.Source, uint8(0), "x(1) = 0.0")
	}
	f.Add("      program p\n      integer i\n      real x(100)\n"+
		"      do i = 2, 100\n         x(i) = x(i-1)\n      enddo\n      end\n",
		uint8(0), "x(i) = x(i+1)")
	f.Add("      program p\n      real t\n      t = 1.0\n      end\n", uint8(0), "t = t + 1.0")
	f.Fuzz(func(t *testing.T, src string, pick uint8, text string) {
		var s *core.Session
		func() {
			defer func() { recover() }()
			if cand, err := core.Open("fuzz.f", src); err == nil {
				s = cand
			}
		}()
		if s == nil || s.CurrentUnit() == nil {
			return
		}
		var assigns []fortran.Stmt
		fortran.WalkStmts(s.CurrentUnit().Body, func(st fortran.Stmt) bool {
			if _, ok := st.(*fortran.AssignStmt); ok {
				assigns = append(assigns, st)
			}
			return true
		})
		if len(assigns) == 0 {
			return
		}
		target := assigns[int(pick)%len(assigns)]
		edited := false
		func() {
			defer func() { recover() }()
			edited = s.EditStmt(target.ID(), "      "+text) == nil
		}()
		if !edited {
			return
		}
		fresh, err := core.Open("fuzz.f", s.Save())
		if err != nil {
			t.Fatalf("accepted edit %q prints to something unparseable: %v\n--- saved ---\n%s",
				text, err, s.Save())
		}
		got, want := depSig(s), depSig(fresh)
		if len(got) != len(want) {
			t.Fatalf("edit %q (%s path): %d deps incrementally, %d from scratch\nincremental: %v\nscratch: %v",
				text, s.LastReanalysis.Mode, len(got), len(want), got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("edit %q (%s path): dependence diverged\nincremental: %s\nscratch:     %s",
					text, s.LastReanalysis.Mode, got[i], want[i])
			}
		}
	})
}
