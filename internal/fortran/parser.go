package fortran

import (
	"strconv"
	"strings"
)

// Parse parses Fortran source into a File. It returns the file plus
// any accumulated errors; the file is usable when err is nil.
func Parse(path, src string) (*File, error) {
	lx, comments := NewLexer(src)
	stmts, errs := lx.Statements()
	p := &parser{stmts: stmts, dirs: lx.Directives(), errs: errs}
	f := &File{Path: path, Comments: comments}
	for !p.atEOF() {
		u := p.parseUnit(f)
		if u == nil {
			break
		}
		f.Units = append(f.Units, u)
	}
	if err := p.errs.Err(); err != nil {
		return f, err
	}
	resolve(f, &p.errs)
	f.RenumberStmts()
	return f, p.errs.Err()
}

// ParseStmtIn parses one statement (possibly a multi-line block such
// as a DO or IF) in the context of unit u, resolving names against
// u's symbol table. Used by the editor for incremental edits.
func ParseStmtIn(f *File, u *Unit, text string) (Stmt, error) {
	lx, _ := NewLexer(text)
	stmts, errs := lx.Statements()
	if err := errs.Err(); err != nil {
		return nil, err
	}
	if len(stmts) == 0 {
		// Interactive edits arrive at column 1, where fixed-form
		// lexing reads 'c' / 'C' / '*' / '!' as a full-line comment —
		// so "call sweep(q, k)" lexes to nothing. When the whole text
		// vanished, retry with each such line shifted out of column 1;
		// comment-only text still has no statement either way.
		lx, _ = NewLexer(padColumnOne(text))
		stmts, errs = lx.Statements()
		if err := errs.Err(); err != nil {
			return nil, err
		}
	}
	if len(stmts) == 0 {
		return nil, &Error{Msg: "empty statement"}
	}
	p := &parser{stmts: stmts, dirs: lx.Directives()}
	p.unit = u
	p.beginStmt()
	s := p.parseStmt(u)
	if err := p.errs.Err(); err != nil {
		return nil, err
	}
	if s == nil {
		return nil, &Error{Msg: "no statement parsed"}
	}
	units := make(map[string]*Unit, len(f.Units))
	for _, un := range f.Units {
		units[un.Name] = un
	}
	var rerrs ErrorList
	r := &resolver{file: f, unit: u, units: units, errs: &rerrs}
	body := []Stmt{s}
	r.stmts(body)
	if err := rerrs.Err(); err != nil {
		return nil, err
	}
	return body[0], nil
}

// padColumnOne shifts lines whose first character would make the
// fixed-form lexer treat them as full-line comments ('c', 'C', '*',
// '!') one column right, so statement keywords like CALL and CONTINUE
// typed at column 1 still lex. Parallel directives (c$par ...) keep
// their column-1 spelling — moved, they would stop being directives.
func padColumnOne(text string) string {
	lines := strings.Split(text, "\n")
	for i, ln := range lines {
		if ln == "" {
			continue
		}
		switch ln[0] {
		case 'c', 'C', '*', '!':
			if _, ok := parDirective(ln); !ok {
				lines[i] = " " + ln
			}
		}
	}
	return strings.Join(lines, "\n")
}

// MustParse parses src and panics on error; intended for tests and
// embedded workloads whose sources are fixed at build time.
func MustParse(path, src string) *File {
	f, err := Parse(path, src)
	if err != nil {
		panic("fortran: " + err.Error())
	}
	return f
}

type parser struct {
	stmts [][]Token
	dirs  []string // parallel directive per statement, "" for none
	si    int      // statement index
	toks  []Token
	ti    int // token index within current statement
	errs  ErrorList
	unit  *Unit
}

// directiveAt returns the parallel directive attached to statement i.
func (p *parser) directiveAt(i int) string {
	if i < len(p.dirs) {
		return p.dirs[i]
	}
	return ""
}

func (p *parser) atEOF() bool { return p.si >= len(p.stmts) }

// beginStmt loads statement si for token-level parsing.
func (p *parser) beginStmt() {
	p.toks = p.stmts[p.si]
	p.ti = 0
	if p.cur().Kind == TokLabel {
		p.ti++
	}
}

func (p *parser) stmtLabel() int {
	if len(p.toks) > 0 && p.toks[0].Kind == TokLabel {
		n, _ := strconv.Atoi(p.toks[0].Text)
		return n
	}
	return 0
}

func (p *parser) cur() Token {
	if p.ti < len(p.toks) {
		return p.toks[p.ti]
	}
	return Token{Kind: TokEOF}
}

func (p *parser) peek(n int) Token {
	if p.ti+n < len(p.toks) {
		return p.toks[p.ti+n]
	}
	return Token{Kind: TokEOF}
}

func (p *parser) next() Token {
	t := p.cur()
	p.ti++
	return t
}

func (p *parser) accept(k TokKind) bool {
	if p.cur().Kind == k {
		p.ti++
		return true
	}
	return false
}

func (p *parser) acceptWord(w string) bool {
	if p.cur().Kind == TokIdent && p.cur().Text == w {
		p.ti++
		return true
	}
	return false
}

func (p *parser) expect(k TokKind) Token {
	t := p.cur()
	if t.Kind != k {
		p.errf("expected %s, found %s", k, t)
		return t
	}
	p.ti++
	return t
}

func (p *parser) errf(format string, args ...interface{}) {
	t := p.cur()
	if t.Kind == TokEOF && len(p.toks) > 0 {
		t = p.toks[len(p.toks)-1]
	}
	p.errs.add(Pos{t.Line, t.Col}, format, args...)
}

// keyword returns the leading identifier text of the current
// statement, already lower case, or "".
func (p *parser) keyword() string {
	if p.cur().Kind == TokIdent {
		return p.cur().Text
	}
	return ""
}

// ---------------------------------------------------------------------------
// Program units

func (p *parser) parseUnit(f *File) *Unit {
	p.beginStmt()
	line := p.cur().Line
	u := &Unit{Syms: make(map[string]*Symbol), Line: line, File: f}
	p.unit = u

	kw := p.keyword()
	retType := TypeUnknown
	if t, ok := typeKeyword(kw); ok && p.peekTypeFunction() {
		retType = t
		p.skipTypeKeyword()
		kw = p.keyword()
	}
	switch kw {
	case "program":
		p.next()
		u.Kind = UnitProgram
		u.Name = p.expect(TokIdent).Text
	case "subroutine":
		p.next()
		u.Kind = UnitSubroutine
		u.Name = p.expect(TokIdent).Text
		p.parseArgList(u)
	case "function":
		p.next()
		u.Kind = UnitFunction
		u.RetType = retType
		u.Name = p.expect(TokIdent).Text
		p.parseArgList(u)
		// The function name acts as the result variable.
		ret := &Symbol{Name: u.Name, Kind: SymScalar, Type: retType, Unit: u}
		if retType == TypeUnknown {
			ret.Type = implicitType(u.Name)
		}
		u.Syms[u.Name] = ret
	default:
		p.errf("expected PROGRAM, SUBROUTINE or FUNCTION, found %s", p.cur())
		p.si = len(p.stmts)
		return nil
	}
	p.si++

	// Declarations.
	for !p.atEOF() {
		p.beginStmt()
		if !p.parseDecl(u) {
			break
		}
		p.si++
	}

	// Executable statements until END.
	u.Body = p.parseBlock(u, map[string]bool{"end": true}, 0)
	if !p.atEOF() {
		p.beginStmt()
		if p.keyword() == "end" {
			p.si++
		}
	}
	return u
}

// peekTypeFunction reports whether the current statement is
// "<type> function name(...)".
func (p *parser) peekTypeFunction() bool {
	save := p.ti
	defer func() { p.ti = save }()
	kw := p.keyword()
	if _, ok := typeKeyword(kw); !ok {
		return false
	}
	p.skipTypeKeyword()
	return p.keyword() == "function"
}

func (p *parser) skipTypeKeyword() {
	kw := p.keyword()
	p.next()
	if kw == "double" && p.keyword() == "precision" {
		p.next()
	}
	// character*N
	if kw == "character" && p.accept(TokStar) {
		p.accept(TokInt)
	}
}

func typeKeyword(kw string) (Type, bool) {
	switch kw {
	case "integer":
		return TypeInteger, true
	case "real":
		return TypeReal, true
	case "double":
		return TypeDouble, true
	case "logical":
		return TypeLogical, true
	case "character":
		return TypeCharacter, true
	}
	return TypeUnknown, false
}

func implicitType(name string) Type {
	if name != "" && name[0] >= 'i' && name[0] <= 'n' {
		return TypeInteger
	}
	return TypeReal
}

func (p *parser) parseArgList(u *Unit) {
	if !p.accept(TokLParen) {
		return
	}
	if p.accept(TokRParen) {
		return
	}
	for {
		name := p.expect(TokIdent).Text
		sym := &Symbol{Name: name, Kind: SymScalar, Type: implicitType(name),
			Dummy: true, ArgPos: len(u.Args), Unit: u}
		u.Syms[name] = sym
		u.Args = append(u.Args, sym)
		if !p.accept(TokComma) {
			break
		}
	}
	p.expect(TokRParen)
}

// parseDecl handles one declaration statement; returns false when the
// statement is executable (leaving it unconsumed).
func (p *parser) parseDecl(u *Unit) bool {
	kw := p.keyword()
	switch kw {
	case "integer", "real", "logical", "character":
		// Could be a declaration or an assignment to a variable that
		// happens to be named "real" — rule that out by checking the
		// next token is not '=' or '('.
		if p.peek(1).Kind == TokEq {
			return false
		}
		t, _ := typeKeyword(kw)
		p.skipTypeKeyword()
		p.parseDeclList(u, t)
		return true
	case "double":
		if p.peek(1).Kind == TokIdent && p.peek(1).Text == "precision" {
			p.skipTypeKeyword()
			p.parseDeclList(u, TypeDouble)
			return true
		}
		return false
	case "dimension":
		p.next()
		p.parseDeclList(u, TypeUnknown)
		return true
	case "parameter":
		p.next()
		p.expect(TokLParen)
		for {
			name := p.expect(TokIdent).Text
			p.expect(TokEq)
			val := p.parseExpr()
			sym := p.getSym(u, name)
			sym.Kind = SymParam
			sym.Value = val
			if !p.accept(TokComma) {
				break
			}
		}
		p.expect(TokRParen)
		return true
	case "common":
		p.next()
		blk := "blank"
		if p.accept(TokSlash) {
			blk = p.expect(TokIdent).Text
			p.expect(TokSlash)
		}
		for {
			name := p.expect(TokIdent).Text
			sym := p.getSym(u, name)
			sym.Common = blk
			if p.cur().Kind == TokLParen {
				sym.Kind = SymArray
				sym.Dims = p.parseDims()
			}
			if !p.accept(TokComma) {
				break
			}
		}
		return true
	case "external":
		p.next()
		for {
			name := p.expect(TokIdent).Text
			sym := p.getSym(u, name)
			sym.Kind = SymFunc
			if !p.accept(TokComma) {
				break
			}
		}
		return true
	case "intrinsic", "save":
		return true // recorded nowhere; semantics unaffected
	case "implicit":
		return true // implicit none — our default anyway
	case "data":
		p.next()
		p.parseData(u)
		return true
	}
	return false
}

// parseDeclList parses "name(dims), name, ..." giving each symbol the
// type t (TypeUnknown keeps/defaults the implicit type, as DIMENSION
// does).
func (p *parser) parseDeclList(u *Unit, t Type) {
	for {
		name := p.expect(TokIdent).Text
		sym := p.getSym(u, name)
		if t != TypeUnknown {
			sym.Type = t
		}
		if p.cur().Kind == TokLParen {
			sym.Kind = SymArray
			sym.Dims = p.parseDims()
		}
		if !p.accept(TokComma) {
			break
		}
	}
}

func (p *parser) parseDims() []Dimension {
	p.expect(TokLParen)
	var dims []Dimension
	for {
		var d Dimension
		if p.cur().Kind == TokStar {
			p.next()
			d.Lo = &IntLit{Val: 1}
			d.Hi = nil // assumed size
		} else {
			e := p.parseExpr()
			if p.accept(TokColon) {
				d.Lo = e
				if p.cur().Kind == TokStar {
					p.next()
					d.Hi = nil
				} else {
					d.Hi = p.parseExpr()
				}
			} else {
				d.Lo = &IntLit{Val: 1}
				d.Hi = e
			}
		}
		dims = append(dims, d)
		if !p.accept(TokComma) {
			break
		}
	}
	p.expect(TokRParen)
	return dims
}

// parseData handles a simple DATA list: DATA a /1.0/, b /2, 3/.
// Values are attached as Symbol.Value for scalars and ignored for
// arrays (the interpreter zero-initializes).
func (p *parser) parseData(u *Unit) {
	for {
		name := p.expect(TokIdent).Text
		sym := p.getSym(u, name)
		p.expect(TokSlash)
		var vals []Expr
		for {
			// DATA values are (possibly signed) constants; a full
			// expression parse would swallow the closing '/' as a
			// division.
			vals = append(vals, p.parseDataValue())
			if !p.accept(TokComma) {
				break
			}
		}
		p.expect(TokSlash)
		if sym.Kind == SymScalar && len(vals) == 1 {
			sym.Value = vals[0]
		}
		if !p.accept(TokComma) {
			break
		}
	}
}

// parseDataValue parses one DATA constant: an optionally signed
// literal or named constant.
func (p *parser) parseDataValue() Expr {
	neg := false
	if p.accept(TokMinus) {
		neg = true
	} else {
		p.accept(TokPlus)
	}
	e := p.parsePrimary()
	if neg {
		return &Unary{Op: TokMinus, X: e}
	}
	return e
}

// getSym returns the unit's symbol for name, creating a scalar with
// the implicit type when absent.
func (p *parser) getSym(u *Unit, name string) *Symbol {
	if s, ok := u.Syms[name]; ok {
		return s
	}
	s := &Symbol{Name: name, Kind: SymScalar, Type: implicitType(name), Unit: u}
	u.Syms[name] = s
	return s
}

// ---------------------------------------------------------------------------
// Executable statements

// parseBlock parses statements until one of the terminator keywords
// (which is left unconsumed), or until a statement labeled endLabel is
// consumed (labeled-DO termination; that statement is included when it
// is executable).
func (p *parser) parseBlock(u *Unit, stop map[string]bool, endLabel int) []Stmt {
	var out []Stmt
	for !p.atEOF() {
		p.beginStmt()
		kw := p.keyword()
		if stop[kw] || (kw == "end" && p.peek(1).Kind == TokIdent && stop["end "+p.peek(1).Text]) {
			return out
		}
		label := p.stmtLabel()
		s := p.parseStmt(u)
		if s != nil {
			out = append(out, s)
		}
		if endLabel != 0 && label == endLabel {
			return out
		}
	}
	return out
}

func (p *parser) parseStmt(u *Unit) Stmt {
	label := p.stmtLabel()
	line := p.cur().Line
	base := StmtBase{Label: label, LineN: line}
	kw := p.keyword()

	// Keywords that are really assignments when followed by '='
	// (Fortran has no reserved words).
	if p.peek(1).Kind == TokEq {
		kw = ""
	}

	var s Stmt
	switch kw {
	case "if":
		s = p.parseIf(u, base)
	case "do":
		s = p.parseDo(u, base)
	case "goto":
		p.next()
		t := p.expect(TokInt)
		n, _ := strconv.Atoi(t.Text)
		s = &GotoStmt{StmtBase: base, Target: n}
		p.si++
	case "go":
		p.next()
		if !p.acceptWord("to") {
			p.errf("expected TO after GO")
		}
		t := p.expect(TokInt)
		n, _ := strconv.Atoi(t.Text)
		s = &GotoStmt{StmtBase: base, Target: n}
		p.si++
	case "call":
		p.next()
		name := p.expect(TokIdent).Text
		var args []Expr
		if p.accept(TokLParen) {
			if !p.accept(TokRParen) {
				for {
					args = append(args, p.parseExpr())
					if !p.accept(TokComma) {
						break
					}
				}
				p.expect(TokRParen)
			}
		}
		s = &CallStmt{StmtBase: base, Name: name, Args: args}
		p.si++
	case "return":
		p.next()
		s = &ReturnStmt{StmtBase: base}
		p.si++
	case "stop":
		p.next()
		// Optional stop code.
		if p.cur().Kind == TokInt || p.cur().Kind == TokString {
			p.next()
		}
		s = &StopStmt{StmtBase: base}
		p.si++
	case "continue":
		p.next()
		s = &ContinueStmt{StmtBase: base}
		p.si++
	case "print":
		p.next()
		p.expect(TokStar)
		var items []Expr
		if p.accept(TokComma) {
			for {
				items = append(items, p.parseExpr())
				if !p.accept(TokComma) {
					break
				}
			}
		}
		s = &PrintStmt{StmtBase: base, Items: items}
		p.si++
	case "write":
		p.next()
		p.skipIOControl()
		var items []Expr
		if p.cur().Kind != TokNewline {
			for {
				items = append(items, p.parseExpr())
				if !p.accept(TokComma) {
					break
				}
			}
		}
		s = &PrintStmt{StmtBase: base, Items: items}
		p.si++
	case "read":
		p.next()
		p.skipIOControl()
		var items []Expr
		if p.cur().Kind != TokNewline {
			for {
				items = append(items, p.parseExpr())
				if !p.accept(TokComma) {
					break
				}
			}
		}
		s = &ReadStmt{StmtBase: base, Items: items}
		p.si++
	case "else", "elseif", "endif", "enddo", "end":
		// Structural keywords reaching here indicate a block
		// mismatch; report and consume to make progress.
		p.errf("unexpected %s", strings.ToUpper(kw))
		p.si++
		return nil
	default:
		s = p.parseAssign(u, base)
		p.si++
	}
	return s
}

// skipIOControl consumes "(*,*)"-style I/O control lists.
func (p *parser) skipIOControl() {
	if !p.accept(TokLParen) {
		return
	}
	depth := 1
	for depth > 0 && p.cur().Kind != TokNewline && p.cur().Kind != TokEOF {
		switch p.next().Kind {
		case TokLParen:
			depth++
		case TokRParen:
			depth--
		}
	}
}

func (p *parser) parseAssign(u *Unit, base StmtBase) Stmt {
	lhsTok := p.cur()
	if lhsTok.Kind != TokIdent {
		p.errf("expected statement, found %s", lhsTok)
		return nil
	}
	p.next()
	ref := &VarRef{Name: lhsTok.Text}
	if p.cur().Kind == TokLParen {
		p.next()
		for {
			ref.Subs = append(ref.Subs, p.parseExpr())
			if !p.accept(TokComma) {
				break
			}
		}
		p.expect(TokRParen)
	}
	p.expect(TokEq)
	rhs := p.parseExpr()
	if p.cur().Kind != TokNewline {
		p.errf("trailing tokens after assignment: %s", p.cur())
	}
	return &AssignStmt{StmtBase: base, Lhs: ref, Rhs: rhs}
}

func (p *parser) parseIf(u *Unit, base StmtBase) Stmt {
	p.next() // if
	p.expect(TokLParen)
	cond := p.parseExpr()
	p.expect(TokRParen)
	if p.acceptWord("then") {
		p.si++
		st := &IfStmt{StmtBase: base, Cond: cond}
		st.Then = p.parseBlock(u, map[string]bool{"else": true, "elseif": true, "endif": true, "end if": true}, 0)
		st.Else = p.parseElse(u)
		return st
	}
	// Logical IF: the rest of the statement is a single statement.
	inner := p.parseSimpleStmt(u)
	p.si++
	return &IfStmt{StmtBase: base, Cond: cond, Then: []Stmt{inner}}
}

// parseElse handles the else/elseif/endif tail of a block IF.
func (p *parser) parseElse(u *Unit) []Stmt {
	if p.atEOF() {
		return nil
	}
	p.beginStmt()
	line := p.cur().Line
	switch {
	case p.keyword() == "endif":
		p.si++
		return nil
	case p.keyword() == "end" && p.peek(1).Kind == TokIdent && p.peek(1).Text == "if":
		p.si++
		return nil
	case p.keyword() == "elseif",
		p.keyword() == "else" && p.peek(1).Kind == TokIdent && p.peek(1).Text == "if":
		if p.keyword() == "elseif" {
			p.next()
		} else {
			p.next()
			p.next()
		}
		p.expect(TokLParen)
		cond := p.parseExpr()
		p.expect(TokRParen)
		if !p.acceptWord("then") {
			p.errf("expected THEN after ELSE IF")
		}
		p.si++
		nested := &IfStmt{StmtBase: StmtBase{LineN: line}, Cond: cond}
		nested.Then = p.parseBlock(u, map[string]bool{"else": true, "elseif": true, "endif": true, "end if": true}, 0)
		nested.Else = p.parseElse(u)
		return []Stmt{nested}
	case p.keyword() == "else":
		p.si++
		body := p.parseBlock(u, map[string]bool{"endif": true, "end if": true}, 0)
		if !p.atEOF() {
			p.beginStmt()
			if p.keyword() == "endif" || (p.keyword() == "end" && p.peek(1).Text == "if") {
				p.si++
			}
		}
		return body
	}
	p.errf("expected ELSE or ENDIF")
	return nil
}

// parseSimpleStmt parses the statement embedded in a logical IF.
func (p *parser) parseSimpleStmt(u *Unit) Stmt {
	base := StmtBase{LineN: p.cur().Line}
	switch p.keyword() {
	case "goto":
		p.next()
		t := p.expect(TokInt)
		n, _ := strconv.Atoi(t.Text)
		return &GotoStmt{StmtBase: base, Target: n}
	case "go":
		p.next()
		p.acceptWord("to")
		t := p.expect(TokInt)
		n, _ := strconv.Atoi(t.Text)
		return &GotoStmt{StmtBase: base, Target: n}
	case "call":
		p.next()
		name := p.expect(TokIdent).Text
		var args []Expr
		if p.accept(TokLParen) {
			if !p.accept(TokRParen) {
				for {
					args = append(args, p.parseExpr())
					if !p.accept(TokComma) {
						break
					}
				}
				p.expect(TokRParen)
			}
		}
		return &CallStmt{StmtBase: base, Name: name, Args: args}
	case "return":
		p.next()
		return &ReturnStmt{StmtBase: base}
	case "stop":
		p.next()
		if p.cur().Kind == TokInt || p.cur().Kind == TokString {
			p.next()
		}
		return &StopStmt{StmtBase: base}
	case "continue":
		p.next()
		return &ContinueStmt{StmtBase: base}
	case "print":
		p.next()
		p.expect(TokStar)
		var items []Expr
		if p.accept(TokComma) {
			for {
				items = append(items, p.parseExpr())
				if !p.accept(TokComma) {
					break
				}
			}
		}
		return &PrintStmt{StmtBase: base, Items: items}
	}
	// Assignment.
	lhsTok := p.expect(TokIdent)
	ref := &VarRef{Name: lhsTok.Text}
	if p.accept(TokLParen) {
		for {
			ref.Subs = append(ref.Subs, p.parseExpr())
			if !p.accept(TokComma) {
				break
			}
		}
		p.expect(TokRParen)
	}
	p.expect(TokEq)
	rhs := p.parseExpr()
	return &AssignStmt{StmtBase: base, Lhs: ref, Rhs: rhs}
}

func (p *parser) parseDo(u *Unit, base StmtBase) Stmt {
	dir := p.directiveAt(p.si)
	p.next() // do
	if p.keyword() == "while" {
		p.next()
		p.expect(TokLParen)
		cond := p.parseExpr()
		p.expect(TokRParen)
		p.si++
		st := &WhileStmt{StmtBase: base, Cond: cond}
		st.Body = p.parseBlock(u, map[string]bool{"enddo": true, "end do": true}, 0)
		p.consumeEnddo()
		return st
	}
	endLabel := 0
	if p.cur().Kind == TokInt {
		endLabel, _ = strconv.Atoi(p.next().Text)
		p.accept(TokComma)
	}
	name := p.expect(TokIdent).Text
	sym := p.getSym(u, name)
	p.expect(TokEq)
	lo := p.parseExpr()
	p.expect(TokComma)
	hi := p.parseExpr()
	var step Expr
	if p.accept(TokComma) {
		step = p.parseExpr()
	}
	p.si++
	st := &DoStmt{StmtBase: base, Var: sym, Lo: lo, Hi: hi, Step: step}
	if dir != "" {
		p.applyDoallDirective(st, u, dir)
	}
	if endLabel != 0 {
		st.Body = p.parseBlock(u, map[string]bool{"end": true}, endLabel)
		// Drop a trailing bare CONTINUE terminator from the body: it
		// exists only to carry the label.
		if n := len(st.Body); n > 0 {
			if c, ok := st.Body[n-1].(*ContinueStmt); ok && c.Label == endLabel {
				st.Body = st.Body[:n-1]
			}
		}
	} else {
		st.Body = p.parseBlock(u, map[string]bool{"enddo": true, "end do": true}, 0)
		p.consumeEnddo()
	}
	return st
}

// applyDoallDirective restores the annotations a `c$par doall` comment
// carries onto the DO loop it precedes, making the printer's output a
// faithful parse round trip: `doall` sets Parallel, a private(...)
// clause rebuilds the private list, and reduction(op:var) clauses
// rebuild the reductions. An unrecognized directive body is ignored —
// the loop simply stays serial — so stale or foreign annotations can
// never make a parse fail.
func (p *parser) applyDoallDirective(st *DoStmt, u *Unit, dir string) {
	rest := strings.TrimSpace(dir)
	kw := rest
	if i := strings.IndexAny(kw, " \t("); i >= 0 {
		kw = kw[:i]
	}
	if !strings.EqualFold(kw, "doall") {
		return
	}
	st.Parallel = true
	rest = strings.TrimSpace(rest[len(kw):])
	for rest != "" {
		open := strings.IndexByte(rest, '(')
		if open < 0 {
			return
		}
		close := strings.IndexByte(rest, ')')
		if close < open {
			return
		}
		clause := strings.ToLower(strings.TrimSpace(rest[:open]))
		args := rest[open+1 : close]
		rest = strings.TrimSpace(rest[close+1:])
		switch clause {
		case "private":
			for _, nm := range strings.Split(args, ",") {
				if nm = strings.ToLower(strings.TrimSpace(nm)); nm != "" {
					st.Private = append(st.Private, p.getSym(u, nm))
				}
			}
		case "reduction":
			op, nm, ok := strings.Cut(args, ":")
			if !ok {
				continue
			}
			op = strings.ToLower(strings.TrimSpace(op))
			nm = strings.ToLower(strings.TrimSpace(nm))
			if nm == "" {
				continue
			}
			red := Reduction{Sym: p.getSym(u, nm)}
			switch op {
			case "+":
				red.Op = TokPlus
			case "*":
				red.Op = TokStar
			case "max", "min":
				red.Op = TokIdent
				red.OpName = op
			default:
				continue
			}
			st.Reductions = append(st.Reductions, red)
		}
	}
}

func (p *parser) consumeEnddo() {
	if p.atEOF() {
		p.errf("missing ENDDO")
		return
	}
	p.beginStmt()
	if p.keyword() == "enddo" || (p.keyword() == "end" && p.peek(1).Kind == TokIdent && p.peek(1).Text == "do") {
		p.si++
		return
	}
	p.errf("expected ENDDO, found %s", p.cur())
}

// ---------------------------------------------------------------------------
// Expressions (precedence climbing)

func (p *parser) parseExpr() Expr { return p.parseBinary(1) }

func (p *parser) parseBinary(minPrec int) Expr {
	lhs := p.parseUnary()
	for {
		op := p.cur().Kind
		prec := precOf(op)
		if prec < minPrec || prec == 0 {
			return lhs
		}
		p.next()
		var rhs Expr
		if op == TokPower {
			rhs = p.parseBinary(prec) // right associative
		} else {
			rhs = p.parseBinary(prec + 1)
		}
		lhs = &Binary{Op: op, X: lhs, Y: rhs}
	}
}

func (p *parser) parseUnary() Expr {
	switch p.cur().Kind {
	case TokMinus:
		p.next()
		return &Unary{Op: TokMinus, X: p.parseUnary()}
	case TokPlus:
		p.next()
		return p.parseUnary()
	case TokNot:
		p.next()
		return &Unary{Op: TokNot, X: p.parseUnary()}
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() Expr {
	t := p.cur()
	switch t.Kind {
	case TokInt:
		p.next()
		v, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			p.errs.add(Pos{t.Line, t.Col}, "bad integer literal %q", t.Text)
		}
		return &IntLit{Val: v}
	case TokReal:
		p.next()
		text := t.Text
		double := strings.ContainsAny(text, "dD")
		norm := strings.Map(func(r rune) rune {
			if r == 'd' || r == 'D' {
				return 'e'
			}
			return r
		}, text)
		v, err := strconv.ParseFloat(norm, 64)
		if err != nil {
			p.errs.add(Pos{t.Line, t.Col}, "bad real literal %q", t.Text)
		}
		return &RealLit{Val: v, Double: double, Text: text}
	case TokString:
		p.next()
		return &StrLit{Val: t.Text}
	case TokTrue:
		p.next()
		return &LogLit{Val: true}
	case TokFalse:
		p.next()
		return &LogLit{Val: false}
	case TokLParen:
		p.next()
		e := p.parseExpr()
		p.expect(TokRParen)
		return e
	case TokIdent:
		p.next()
		ref := &VarRef{Name: t.Text}
		if p.cur().Kind == TokLParen {
			p.next()
			if !p.accept(TokRParen) {
				for {
					ref.Subs = append(ref.Subs, p.parseExpr())
					if !p.accept(TokComma) {
						break
					}
				}
				p.expect(TokRParen)
			}
		}
		return ref
	}
	p.errf("expected expression, found %s", t)
	p.next()
	return &IntLit{Val: 0}
}
