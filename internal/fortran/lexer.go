package fortran

import (
	"strings"
)

// Lexer turns Fortran source text into a token stream. It first
// performs line assembly (comment stripping, continuation joining,
// label extraction) and then scans each logical statement.
type Lexer struct {
	stmts []logicalStmt
	errs  ErrorList
}

// logicalStmt is one statement after line assembly: its label (0 when
// absent), its starting source line, the statement text, and any
// parallel directive comment (c$par ...) from the lines above it.
type logicalStmt struct {
	label     int
	line      int
	text      string
	directive string
}

// Comment records a full-line comment with its original position so
// the editor can redisplay it.
type Comment struct {
	Line int
	Text string
}

// NewLexer assembles the source into logical statements and returns a
// lexer over them. Fixed-form and free-form layouts are both accepted;
// a line is treated as fixed-form when it matches the classic column
// conventions.
func NewLexer(src string) (*Lexer, []Comment) {
	lx := &Lexer{}
	var comments []Comment
	lines := strings.Split(src, "\n")
	var cur *logicalStmt
	var pendingDir string
	flush := func() {
		if cur != nil {
			if strings.TrimSpace(cur.text) != "" || cur.label != 0 {
				lx.stmts = append(lx.stmts, *cur)
			}
			cur = nil
		}
	}
	for i, raw := range lines {
		lineNo := i + 1
		line := strings.TrimRight(raw, " \t\r")
		if line == "" {
			continue
		}
		// Full-line comments: 'c', 'C', '*' or '!' in column 1.
		// Parallel directives (c$par ...) are not mere comments: they
		// carry loop annotations that must survive a print → parse
		// round trip (saved files, undo, journal snapshots), so they
		// attach to the following statement instead of the comment
		// list.
		switch line[0] {
		case 'c', 'C', '*', '!':
			if d, ok := parDirective(line); ok {
				pendingDir = d
				continue
			}
			comments = append(comments, Comment{Line: lineNo, Text: line})
			continue
		}
		// Free-form trailing comment.
		if idx := indexUnquoted(line, '!'); idx >= 0 {
			if c := strings.TrimSpace(line[idx:]); c != "" {
				comments = append(comments, Comment{Line: lineNo, Text: c})
			}
			line = strings.TrimRight(line[:idx], " \t")
			if line == "" {
				continue
			}
		}
		// Fixed-form continuation: non-space, non-zero in column 6
		// with columns 1-5 blank.
		if len(line) > 5 && line[5] != ' ' && line[5] != '0' &&
			strings.TrimSpace(line[:5]) == "" && cur != nil {
			cur.text += " " + strings.TrimSpace(line[6:])
			continue
		}
		// Free-form continuation: previous statement ended with '&'.
		if cur != nil && strings.HasSuffix(strings.TrimSpace(cur.text), "&") {
			cur.text = strings.TrimSuffix(strings.TrimSpace(cur.text), "&") +
				" " + strings.TrimSpace(line)
			continue
		}
		flush()
		// Extract a leading numeric label (fixed-form columns 1-5, or
		// any leading integer followed by a space in free form).
		label := 0
		body := strings.TrimSpace(line)
		j := 0
		for j < len(body) && body[j] >= '0' && body[j] <= '9' {
			label = label*10 + int(body[j]-'0')
			j++
		}
		if j > 0 && j < len(body) && (body[j] == ' ' || body[j] == '\t') {
			body = strings.TrimSpace(body[j:])
		} else {
			label = 0
		}
		cur = &logicalStmt{label: label, line: lineNo, text: body, directive: pendingDir}
		pendingDir = ""
	}
	flush()
	return lx, comments
}

// parDirective reports whether a full-line comment is a parallel
// directive (c$par / C$PAR / *$par / !$par in column 1) and returns
// the directive body after the sentinel.
func parDirective(line string) (string, bool) {
	rest := line[1:]
	if len(rest) < 4 || !strings.EqualFold(rest[:4], "$par") {
		return "", false
	}
	rest = rest[4:]
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", false
	}
	return strings.TrimSpace(rest), true
}

// Directives returns the parallel directive attached to each logical
// statement ("" for none), index-aligned with Statements().
func (lx *Lexer) Directives() []string {
	out := make([]string, len(lx.stmts))
	for i, st := range lx.stmts {
		out[i] = st.directive
	}
	return out
}

// indexUnquoted returns the index of the first occurrence of c outside
// single-quoted strings, or -1.
func indexUnquoted(s string, c byte) int {
	inStr := false
	for i := 0; i < len(s); i++ {
		switch {
		case s[i] == '\'':
			inStr = !inStr
		case s[i] == c && !inStr:
			return i
		}
	}
	return -1
}

// Statements tokenizes every logical statement. Each statement's token
// slice ends with a TokNewline carrying the statement's line.
func (lx *Lexer) Statements() ([][]Token, ErrorList) {
	out := make([][]Token, 0, len(lx.stmts))
	for _, st := range lx.stmts {
		toks := lx.scanStmt(st)
		out = append(out, toks)
	}
	return out, lx.errs
}

func (lx *Lexer) scanStmt(st logicalStmt) []Token {
	var toks []Token
	if st.label != 0 {
		toks = append(toks, Token{Kind: TokLabel, Text: itoa(st.label), Line: st.line, Col: 1})
	}
	s := st.text
	i := 0
	n := len(s)
	emit := func(k TokKind, text string, col int) {
		toks = append(toks, Token{Kind: k, Text: text, Line: st.line, Col: col + 1})
	}
	for i < n {
		c := s[i]
		switch {
		case c == ' ' || c == '\t':
			i++
		case isLetter(c) || c == '_':
			start := i
			for i < n && (isLetter(s[i]) || isDigit(s[i]) || s[i] == '_') {
				i++
			}
			emit(TokIdent, strings.ToLower(s[start:i]), start)
		case isDigit(c) || (c == '.' && i+1 < n && isDigit(s[i+1])):
			tok, next := scanNumber(s, i)
			tok.Line, tok.Col = st.line, i+1
			toks = append(toks, tok)
			i = next
		case c == '.':
			// Dotted operator: .lt. .and. .true. etc.
			end := strings.IndexByte(s[i+1:], '.')
			if end < 0 {
				lx.errs.add(Pos{st.line, i + 1}, "unterminated dotted operator")
				i = n
				break
			}
			word := strings.ToLower(s[i+1 : i+1+end])
			kind, ok := dottedOps[word]
			if !ok {
				lx.errs.add(Pos{st.line, i + 1}, "unknown operator .%s.", word)
				kind = TokEqEq
			}
			emit(kind, "."+word+".", i)
			i += end + 2
		case c == '\'':
			start := i
			i++
			var b strings.Builder
			for i < n {
				if s[i] == '\'' {
					if i+1 < n && s[i+1] == '\'' { // escaped quote
						b.WriteByte('\'')
						i += 2
						continue
					}
					break
				}
				b.WriteByte(s[i])
				i++
			}
			if i >= n {
				lx.errs.add(Pos{st.line, start + 1}, "unterminated string literal")
			} else {
				i++ // closing quote
			}
			emit(TokString, b.String(), start)
		case c == '(':
			emit(TokLParen, "", i)
			i++
		case c == ')':
			emit(TokRParen, "", i)
			i++
		case c == ',':
			emit(TokComma, "", i)
			i++
		case c == '+':
			emit(TokPlus, "", i)
			i++
		case c == '-':
			emit(TokMinus, "", i)
			i++
		case c == '*':
			if i+1 < n && s[i+1] == '*' {
				emit(TokPower, "", i)
				i += 2
			} else {
				emit(TokStar, "", i)
				i++
			}
		case c == '/':
			switch {
			case i+1 < n && s[i+1] == '/':
				emit(TokConcat, "", i)
				i += 2
			case i+1 < n && s[i+1] == '=':
				emit(TokNe, "", i)
				i += 2
			default:
				emit(TokSlash, "", i)
				i++
			}
		case c == '=':
			if i+1 < n && s[i+1] == '=' {
				emit(TokEqEq, "", i)
				i += 2
			} else {
				emit(TokEq, "", i)
				i++
			}
		case c == '<':
			if i+1 < n && s[i+1] == '=' {
				emit(TokLe, "", i)
				i += 2
			} else {
				emit(TokLt, "", i)
				i++
			}
		case c == '>':
			if i+1 < n && s[i+1] == '=' {
				emit(TokGe, "", i)
				i += 2
			} else {
				emit(TokGt, "", i)
				i++
			}
		case c == ':':
			emit(TokColon, "", i)
			i++
		case c == '$':
			emit(TokDollar, "", i)
			i++
		default:
			lx.errs.add(Pos{st.line, i + 1}, "unexpected character %q", string(c))
			i++
		}
	}
	toks = append(toks, Token{Kind: TokNewline, Line: st.line, Col: len(s) + 1})
	return toks
}

var dottedOps = map[string]TokKind{
	"lt":    TokLt,
	"le":    TokLe,
	"gt":    TokGt,
	"ge":    TokGe,
	"eq":    TokEqEq,
	"ne":    TokNe,
	"and":   TokAnd,
	"or":    TokOr,
	"not":   TokNot,
	"true":  TokTrue,
	"false": TokFalse,
}

// scanNumber scans an integer or real literal starting at i and
// returns the token plus the index just past it. Handles 1, 1.5,
// .5 (caller guarantees a digit follows), 1e10, 1.5e-3, 2d0.
func scanNumber(s string, i int) (Token, int) {
	n := len(s)
	start := i
	isReal := false
	for i < n && isDigit(s[i]) {
		i++
	}
	if i < n && s[i] == '.' {
		// Don't consume '.' when it starts a dotted operator such as
		// "1.and." — require a digit, exponent or non-letter next.
		if i+1 >= n || !isLetter(s[i+1]) {
			isReal = true
			i++
			for i < n && isDigit(s[i]) {
				i++
			}
		} else if lower(s[i+1]) == 'e' || lower(s[i+1]) == 'd' {
			// "1.e5" — exponent directly after the point.
			isReal = true
			i++
		}
	}
	if i < n && (lower(s[i]) == 'e' || lower(s[i]) == 'd') {
		j := i + 1
		if j < n && (s[j] == '+' || s[j] == '-') {
			j++
		}
		if j < n && isDigit(s[j]) {
			isReal = true
			i = j
			for i < n && isDigit(s[i]) {
				i++
			}
		}
	}
	text := strings.ToLower(s[start:i])
	if isReal {
		return Token{Kind: TokReal, Text: text}, i
	}
	return Token{Kind: TokInt, Text: text}, i
}

func isLetter(c byte) bool { return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') }
func isDigit(c byte) bool  { return c >= '0' && c <= '9' }
func lower(c byte) byte {
	if c >= 'A' && c <= 'Z' {
		return c + 'a' - 'A'
	}
	return c
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	neg := v < 0
	if neg {
		v = -v
	}
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
