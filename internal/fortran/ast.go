package fortran

import (
	"fmt"
	"sort"
	"strings"
)

// Type is a Fortran data type.
type Type int

// Fortran data types.
const (
	TypeUnknown Type = iota
	TypeInteger
	TypeReal
	TypeDouble
	TypeLogical
	TypeCharacter
)

func (t Type) String() string {
	switch t {
	case TypeInteger:
		return "integer"
	case TypeReal:
		return "real"
	case TypeDouble:
		return "double precision"
	case TypeLogical:
		return "logical"
	case TypeCharacter:
		return "character"
	}
	return "unknown"
}

// Numeric reports whether t is a numeric type.
func (t Type) Numeric() bool {
	return t == TypeInteger || t == TypeReal || t == TypeDouble
}

// SymKind classifies entries in a symbol table.
type SymKind int

// Symbol kinds.
const (
	SymScalar SymKind = iota
	SymArray
	SymParam     // named constant from PARAMETER
	SymFunc      // external or statement function
	SymSubr      // subroutine
	SymIntrinsic // intrinsic function
)

func (k SymKind) String() string {
	switch k {
	case SymScalar:
		return "scalar"
	case SymArray:
		return "array"
	case SymParam:
		return "parameter"
	case SymFunc:
		return "function"
	case SymSubr:
		return "subroutine"
	case SymIntrinsic:
		return "intrinsic"
	}
	return "?"
}

// Dimension is one array dimension. Lo defaults to the literal 1; Hi
// is nil for assumed-size (*) trailing dimensions.
type Dimension struct {
	Lo Expr
	Hi Expr
}

// Symbol is one named entity in a program unit.
type Symbol struct {
	Name   string
	Kind   SymKind
	Type   Type
	Dims   []Dimension // arrays only
	Dummy  bool        // dummy (formal) argument
	ArgPos int         // index in the argument list when Dummy
	Common string      // enclosing COMMON block name, "" if none
	Value  Expr        // PARAMETER value
	Unit   *Unit       // owning unit
}

// IsArray reports whether the symbol names an array.
func (s *Symbol) IsArray() bool { return s.Kind == SymArray }

func (s *Symbol) String() string { return s.Name }

// UnitKind distinguishes program units.
type UnitKind int

// Program unit kinds.
const (
	UnitProgram UnitKind = iota
	UnitSubroutine
	UnitFunction
)

func (k UnitKind) String() string {
	switch k {
	case UnitProgram:
		return "program"
	case UnitSubroutine:
		return "subroutine"
	case UnitFunction:
		return "function"
	}
	return "?"
}

// Unit is one program unit: a main program, subroutine or function.
type Unit struct {
	Kind    UnitKind
	Name    string
	RetType Type // functions only
	Args    []*Symbol
	Syms    map[string]*Symbol
	Body    []Stmt
	Line    int
	File    *File
}

// Lookup returns the symbol for name (already lower case), or nil.
func (u *Unit) Lookup(name string) *Symbol { return u.Syms[name] }

// SymbolsSorted returns the unit's symbols ordered by name for
// deterministic iteration.
func (u *Unit) SymbolsSorted() []*Symbol {
	out := make([]*Symbol, 0, len(u.Syms))
	for _, s := range u.Syms {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// File is a parsed Fortran source file: an ordered list of program
// units plus retained comments.
type File struct {
	Path     string
	Units    []*Unit
	Comments []Comment

	nextID  int
	nextUID int
	byID    map[int]Stmt
}

// Unit returns the unit with the given (lower-case) name, or nil.
func (f *File) Unit(name string) *Unit {
	for _, u := range f.Units {
		if u.Name == name {
			return u
		}
	}
	return nil
}

// Main returns the main program unit, or nil.
func (f *File) Main() *Unit {
	for _, u := range f.Units {
		if u.Kind == UnitProgram {
			return u
		}
	}
	return nil
}

// StmtByID returns the statement with the given ID, or nil.
func (f *File) StmtByID(id int) Stmt { return f.byID[id] }

// ---------------------------------------------------------------------------
// Statements

// Stmt is any executable statement.
type Stmt interface {
	base() *StmtBase
	// ID returns the statement's stable identity used by analyses.
	ID() int
	// UID returns the statement's edit-stable identity: assigned once
	// when the statement first enters the file and never reused, so it
	// survives RenumberStmts after edits (unlike ID, which is a dense
	// positional index rewritten on every renumber).
	UID() int
	// Line returns the statement's source line.
	Line() int
}

// StmtBase carries identity and position shared by all statements.
type StmtBase struct {
	SID   int
	SUID  int
	Label int
	LineN int
}

func (b *StmtBase) base() *StmtBase { return b }

// ID returns the statement's stable identity.
func (b *StmtBase) ID() int { return b.SID }

// UID returns the statement's edit-stable identity (0 until the
// statement has been through RenumberStmts).
func (b *StmtBase) UID() int { return b.SUID }

// Line returns the statement's source line.
func (b *StmtBase) Line() int { return b.LineN }

// AssignStmt is "lhs = rhs".
type AssignStmt struct {
	StmtBase
	Lhs *VarRef
	Rhs Expr
}

// IfStmt is a block IF; ELSE IF chains are nested in Else.
type IfStmt struct {
	StmtBase
	Cond Expr
	Then []Stmt
	Else []Stmt
}

// DoStmt is a DO loop with a structured body. Parallel marks the loop
// as a DOALL (set by the parallelize transformation); Private and
// Reductions record the variable classification that accompanies it.
type DoStmt struct {
	StmtBase
	Var  *Symbol
	Lo   Expr
	Hi   Expr
	Step Expr // nil means 1
	Body []Stmt

	Parallel   bool
	Private    []*Symbol
	Reductions []Reduction
}

// Reduction describes a recognized reduction in a parallel loop.
type Reduction struct {
	Sym *Symbol
	Op  TokKind // TokPlus, TokStar, or TokIdent for max/min (Text in OpName)
	// OpName is "max" or "min" for intrinsic reductions, "" otherwise.
	OpName string
}

// WhileStmt is DO WHILE (cond) ... ENDDO.
type WhileStmt struct {
	StmtBase
	Cond Expr
	Body []Stmt
}

// CallStmt is CALL name(args).
type CallStmt struct {
	StmtBase
	Name   string
	Args   []Expr
	Callee *Unit // resolved by semantic analysis, nil for externals
}

// ReturnStmt is RETURN.
type ReturnStmt struct{ StmtBase }

// StopStmt is STOP.
type StopStmt struct{ StmtBase }

// ContinueStmt is CONTINUE.
type ContinueStmt struct{ StmtBase }

// GotoStmt is GOTO label.
type GotoStmt struct {
	StmtBase
	Target int
}

// PrintStmt is PRINT *, items or WRITE(*,*) items.
type PrintStmt struct {
	StmtBase
	Items []Expr
}

// ReadStmt is READ(*,*) items; targets must be variable references.
type ReadStmt struct {
	StmtBase
	Items []Expr
}

// ---------------------------------------------------------------------------
// Expressions

// Expr is any expression node.
type Expr interface {
	exprNode()
	String() string
}

// IntLit is an integer literal.
type IntLit struct{ Val int64 }

// RealLit is a real or double-precision literal.
type RealLit struct {
	Val    float64
	Double bool
	Text   string // original spelling for faithful unparsing
}

// LogLit is .true. or .false.
type LogLit struct{ Val bool }

// StrLit is a character literal.
type StrLit struct{ Val string }

// VarRef is a reference to a scalar, an array element (Subs non-nil),
// or a whole array (array symbol with no subscripts, e.g. as a CALL
// argument).
type VarRef struct {
	Sym  *Symbol
	Name string
	Subs []Expr
}

// FuncCall is an intrinsic or user function invocation.
type FuncCall struct {
	Sym    *Symbol
	Name   string
	Args   []Expr
	Callee *Unit // resolved user function, nil for intrinsics
}

// Unary is -x or .not. x or +x.
type Unary struct {
	Op TokKind
	X  Expr
}

// Binary is a binary operation.
type Binary struct {
	Op   TokKind
	X, Y Expr
}

func (*IntLit) exprNode()   {}
func (*RealLit) exprNode()  {}
func (*LogLit) exprNode()   {}
func (*StrLit) exprNode()   {}
func (*VarRef) exprNode()   {}
func (*FuncCall) exprNode() {}
func (*Unary) exprNode()    {}
func (*Binary) exprNode()   {}

func (e *IntLit) String() string { return fmt.Sprintf("%d", e.Val) }

func (e *RealLit) String() string {
	if e.Text != "" {
		return e.Text
	}
	return fmt.Sprintf("%g", e.Val)
}

func (e *LogLit) String() string {
	if e.Val {
		return ".true."
	}
	return ".false."
}

func (e *StrLit) String() string { return "'" + strings.ReplaceAll(e.Val, "'", "''") + "'" }

func (e *VarRef) String() string {
	if len(e.Subs) == 0 {
		return e.Name
	}
	parts := make([]string, len(e.Subs))
	for i, s := range e.Subs {
		parts[i] = s.String()
	}
	return e.Name + "(" + strings.Join(parts, ",") + ")"
}

func (e *FuncCall) String() string {
	parts := make([]string, len(e.Args))
	for i, a := range e.Args {
		parts[i] = a.String()
	}
	return e.Name + "(" + strings.Join(parts, ",") + ")"
}

func (e *Unary) String() string {
	switch e.Op {
	case TokMinus:
		return "-" + parenIfBinary(e.X)
	case TokPlus:
		return "+" + parenIfBinary(e.X)
	case TokNot:
		return ".not. " + parenIfBinary(e.X)
	}
	return "?" + e.X.String()
}

func parenIfBinary(e Expr) string {
	if _, ok := e.(*Binary); ok {
		return "(" + e.String() + ")"
	}
	return e.String()
}

func (e *Binary) String() string {
	op := binOpText(e.Op)
	lhs := e.X.String()
	rhs := e.Y.String()
	if x, ok := e.X.(*Binary); ok && precOf(x.Op) < precOf(e.Op) {
		lhs = "(" + lhs + ")"
	}
	if y, ok := e.Y.(*Binary); ok && precOf(y.Op) <= precOf(e.Op) && !commutesWith(e.Op, y.Op) {
		rhs = "(" + rhs + ")"
	}
	return lhs + op + rhs
}

// commutesWith reports whether the right operand's operator can be
// left unparenthesized: a+(b+c) and a*(b*c) print fine without parens.
func commutesWith(outer, inner TokKind) bool {
	return (outer == TokPlus && inner == TokPlus) || (outer == TokStar && inner == TokStar)
}

func binOpText(op TokKind) string {
	switch op {
	case TokPlus:
		return " + "
	case TokMinus:
		return " - "
	case TokStar:
		return "*"
	case TokSlash:
		return "/"
	case TokPower:
		return "**"
	case TokLt:
		return " .lt. "
	case TokLe:
		return " .le. "
	case TokGt:
		return " .gt. "
	case TokGe:
		return " .ge. "
	case TokEqEq:
		return " .eq. "
	case TokNe:
		return " .ne. "
	case TokAnd:
		return " .and. "
	case TokOr:
		return " .or. "
	case TokConcat:
		return " // "
	}
	return "?"
}

// precOf returns operator precedence (higher binds tighter).
func precOf(op TokKind) int {
	switch op {
	case TokOr:
		return 1
	case TokAnd:
		return 2
	case TokLt, TokLe, TokGt, TokGe, TokEqEq, TokNe:
		return 4
	case TokConcat:
		return 5
	case TokPlus, TokMinus:
		return 6
	case TokStar, TokSlash:
		return 7
	case TokPower:
		return 8
	}
	return 0
}

// ---------------------------------------------------------------------------
// Walking

// WalkStmts calls fn for every statement in body, recursively,
// pre-order. If fn returns false, the children of that statement are
// skipped.
func WalkStmts(body []Stmt, fn func(Stmt) bool) {
	for _, s := range body {
		if !fn(s) {
			continue
		}
		switch st := s.(type) {
		case *IfStmt:
			WalkStmts(st.Then, fn)
			WalkStmts(st.Else, fn)
		case *DoStmt:
			WalkStmts(st.Body, fn)
		case *WhileStmt:
			WalkStmts(st.Body, fn)
		}
	}
}

// WalkExprs calls fn for every expression appearing in the statement
// (not recursing into nested statements).
func WalkExprs(s Stmt, fn func(Expr)) {
	switch st := s.(type) {
	case *AssignStmt:
		walkExpr(st.Lhs, fn)
		walkExpr(st.Rhs, fn)
	case *IfStmt:
		walkExpr(st.Cond, fn)
	case *DoStmt:
		walkExpr(st.Lo, fn)
		walkExpr(st.Hi, fn)
		if st.Step != nil {
			walkExpr(st.Step, fn)
		}
	case *WhileStmt:
		walkExpr(st.Cond, fn)
	case *CallStmt:
		for _, a := range st.Args {
			walkExpr(a, fn)
		}
	case *PrintStmt:
		for _, it := range st.Items {
			walkExpr(it, fn)
		}
	case *ReadStmt:
		for _, it := range st.Items {
			walkExpr(it, fn)
		}
	}
}

func walkExpr(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch x := e.(type) {
	case *VarRef:
		for _, s := range x.Subs {
			walkExpr(s, fn)
		}
	case *FuncCall:
		for _, a := range x.Args {
			walkExpr(a, fn)
		}
	case *Unary:
		walkExpr(x.X, fn)
	case *Binary:
		walkExpr(x.X, fn)
		walkExpr(x.Y, fn)
	}
}

// CloneExpr returns a deep copy of e.
func CloneExpr(e Expr) Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *IntLit:
		c := *x
		return &c
	case *RealLit:
		c := *x
		return &c
	case *LogLit:
		c := *x
		return &c
	case *StrLit:
		c := *x
		return &c
	case *VarRef:
		c := &VarRef{Sym: x.Sym, Name: x.Name}
		for _, s := range x.Subs {
			c.Subs = append(c.Subs, CloneExpr(s))
		}
		return c
	case *FuncCall:
		c := &FuncCall{Sym: x.Sym, Name: x.Name, Callee: x.Callee}
		for _, a := range x.Args {
			c.Args = append(c.Args, CloneExpr(a))
		}
		return c
	case *Unary:
		return &Unary{Op: x.Op, X: CloneExpr(x.X)}
	case *Binary:
		return &Binary{Op: x.Op, X: CloneExpr(x.X), Y: CloneExpr(x.Y)}
	}
	panic(fmt.Sprintf("fortran: CloneExpr: unknown node %T", e))
}

// CloneStmt returns a deep copy of s (fresh statement identities are
// assigned by the next RenumberStmts). The clone's UID is cleared: a
// copy is a new statement, not the original, so it must not inherit
// the edit-stable identity user markings are keyed by.
func CloneStmt(s Stmt) Stmt {
	c := cloneStmt(s)
	c.base().SUID = 0
	return c
}

func cloneStmt(s Stmt) Stmt {
	switch st := s.(type) {
	case *AssignStmt:
		c := *st
		c.Lhs = CloneExpr(st.Lhs).(*VarRef)
		c.Rhs = CloneExpr(st.Rhs)
		return &c
	case *IfStmt:
		c := *st
		c.Cond = CloneExpr(st.Cond)
		c.Then = CloneBody(st.Then)
		c.Else = CloneBody(st.Else)
		return &c
	case *DoStmt:
		c := *st
		c.Lo = CloneExpr(st.Lo)
		c.Hi = CloneExpr(st.Hi)
		if st.Step != nil {
			c.Step = CloneExpr(st.Step)
		}
		c.Body = CloneBody(st.Body)
		c.Private = append([]*Symbol(nil), st.Private...)
		c.Reductions = append([]Reduction(nil), st.Reductions...)
		return &c
	case *WhileStmt:
		c := *st
		c.Cond = CloneExpr(st.Cond)
		c.Body = CloneBody(st.Body)
		return &c
	case *CallStmt:
		c := *st
		c.Args = nil
		for _, a := range st.Args {
			c.Args = append(c.Args, CloneExpr(a))
		}
		return &c
	case *ReturnStmt:
		c := *st
		return &c
	case *StopStmt:
		c := *st
		return &c
	case *ContinueStmt:
		c := *st
		return &c
	case *GotoStmt:
		c := *st
		return &c
	case *PrintStmt:
		c := *st
		c.Items = nil
		for _, it := range st.Items {
			c.Items = append(c.Items, CloneExpr(it))
		}
		return &c
	case *ReadStmt:
		c := *st
		c.Items = nil
		for _, it := range st.Items {
			c.Items = append(c.Items, CloneExpr(it))
		}
		return &c
	}
	panic(fmt.Sprintf("fortran: CloneStmt: unknown node %T", s))
}

// CloneBody deep-copies a statement list.
func CloneBody(body []Stmt) []Stmt {
	out := make([]Stmt, len(body))
	for i, s := range body {
		out[i] = CloneStmt(s)
	}
	return out
}

// SubstVar replaces every reference to sym (as a bare scalar) with a
// copy of repl throughout the expression, returning the new
// expression.
func SubstVar(e Expr, sym *Symbol, repl Expr) Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *VarRef:
		if x.Sym == sym && len(x.Subs) == 0 {
			return CloneExpr(repl)
		}
		for i, s := range x.Subs {
			x.Subs[i] = SubstVar(s, sym, repl)
		}
		return x
	case *FuncCall:
		for i, a := range x.Args {
			x.Args[i] = SubstVar(a, sym, repl)
		}
		return x
	case *Unary:
		x.X = SubstVar(x.X, sym, repl)
		return x
	case *Binary:
		x.X = SubstVar(x.X, sym, repl)
		x.Y = SubstVar(x.Y, sym, repl)
		return x
	}
	return e
}

// SubstVarStmt applies SubstVar to every expression of the statement
// and, recursively, its nested statements.
func SubstVarStmt(s Stmt, sym *Symbol, repl Expr) {
	switch st := s.(type) {
	case *AssignStmt:
		st.Lhs = SubstVar(st.Lhs, sym, repl).(*VarRef)
		st.Rhs = SubstVar(st.Rhs, sym, repl)
	case *IfStmt:
		st.Cond = SubstVar(st.Cond, sym, repl)
		for _, x := range st.Then {
			SubstVarStmt(x, sym, repl)
		}
		for _, x := range st.Else {
			SubstVarStmt(x, sym, repl)
		}
	case *DoStmt:
		st.Lo = SubstVar(st.Lo, sym, repl)
		st.Hi = SubstVar(st.Hi, sym, repl)
		if st.Step != nil {
			st.Step = SubstVar(st.Step, sym, repl)
		}
		for _, x := range st.Body {
			SubstVarStmt(x, sym, repl)
		}
	case *WhileStmt:
		st.Cond = SubstVar(st.Cond, sym, repl)
		for _, x := range st.Body {
			SubstVarStmt(x, sym, repl)
		}
	case *CallStmt:
		for i, a := range st.Args {
			st.Args[i] = SubstVar(a, sym, repl)
		}
	case *PrintStmt:
		for i, it := range st.Items {
			st.Items[i] = SubstVar(it, sym, repl)
		}
	case *ReadStmt:
		for i, it := range st.Items {
			st.Items[i] = SubstVar(it, sym, repl)
		}
	}
}

// StmtLabel returns the statement's numeric label (0 when unlabeled).
func StmtLabel(s Stmt) int { return s.base().Label }

// RenumberStmts (re)assigns statement IDs across the whole file and
// rebuilds the ID index. Called after parsing and after any structural
// edit or transformation. Statements that are new to the file (UID 0)
// are also issued a fresh edit-stable UID here; existing UIDs are
// never rewritten or reused, so they identify a statement across
// renumbers.
func (f *File) RenumberStmts() {
	f.nextID = 1
	f.byID = make(map[int]Stmt)
	for _, u := range f.Units {
		WalkStmts(u.Body, func(s Stmt) bool {
			b := s.base()
			b.SID = f.nextID
			f.byID[f.nextID] = s
			f.nextID++
			if b.SUID == 0 {
				f.nextUID++
				b.SUID = f.nextUID
			} else if b.SUID > f.nextUID {
				// Statement carried in from elsewhere: advance the
				// counter so its UID is never reissued.
				f.nextUID = b.SUID
			}
			return true
		})
	}
}
