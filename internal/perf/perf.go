// Package perf implements ParaScope's static performance estimator:
// an abstract-machine cost model that predicts the relative execution
// time of loops and procedures so the editor can rank where the time
// goes and what parallelization would buy — the navigation guidance
// the paper's users asked for ("the user should be given insight
// about what loops to parallelize, either through profiling or
// performance estimation").
package perf

import (
	"fmt"
	"sort"
	"strings"

	"parascope/internal/cfg"
	"parascope/internal/dataflow"
	"parascope/internal/fortran"
)

// Params is the abstract machine cost model, in arbitrary time units.
type Params struct {
	ArithCost       float64 // one scalar arithmetic operation
	MemCost         float64 // one array element access
	IntrinsicCost   float64 // one intrinsic invocation (sqrt, sin, …)
	BranchCost      float64 // one conditional test
	LoopOverhead    float64 // per-iteration loop control
	CallOverhead    float64 // procedure invocation
	ParallelStartup float64 // fork/join cost of a parallel loop
	DefaultTrip     float64 // assumed trip count when unknown
	Procs           int     // processors for parallel estimates
}

// DefaultParams models a small shared-memory multiprocessor of the
// paper's era (relative units; only ratios matter).
func DefaultParams() Params {
	return Params{
		ArithCost:       1,
		MemCost:         2,
		IntrinsicCost:   8,
		BranchCost:      1,
		LoopOverhead:    2,
		CallOverhead:    10,
		ParallelStartup: 200,
		DefaultTrip:     100,
		Procs:           8,
	}
}

// LoopEstimate is the estimator's verdict for one loop.
type LoopEstimate struct {
	Loop *cfg.Loop
	// Trip is the estimated iteration count.
	Trip float64
	// BodyCost is the per-iteration cost.
	BodyCost float64
	// SeqTime = Trip*(BodyCost+overhead), including nested loops.
	SeqTime float64
	// ParTime is the predicted time if this loop ran as a DOALL on
	// Procs processors.
	ParTime float64
	// Speedup = SeqTime/ParTime.
	Speedup float64
	// Fraction of the unit's total estimated time spent here.
	Fraction float64
}

func (e LoopEstimate) String() string {
	return fmt.Sprintf("do %s (line %d): seq %.0f, par %.0f (%.1fx), %.0f%% of unit",
		e.Loop.Header().Name, e.Loop.Do.Line(), e.SeqTime, e.ParTime, e.Speedup, e.Fraction*100)
}

// UnitEstimate aggregates a unit's estimates.
type UnitEstimate struct {
	Unit  *fortran.Unit
	Total float64
	Loops []LoopEstimate
}

// Estimator computes static cost estimates.
type Estimator struct {
	Params Params
	// unitCost memoizes whole-unit per-call costs for call sites.
	unitCost map[*fortran.Unit]float64
	file     *fortran.File
}

// New creates an estimator over the file.
func New(f *fortran.File, p Params) *Estimator {
	return &Estimator{Params: p, unitCost: map[*fortran.Unit]float64{}, file: f}
}

// EstimateUnit analyzes one unit, returning loop estimates sorted by
// descending sequential time — the navigation order.
func (e *Estimator) EstimateUnit(df *dataflow.Analysis) *UnitEstimate {
	u := df.Unit
	out := &UnitEstimate{Unit: u}
	out.Total = e.bodyCost(df, u.Body)
	for _, l := range df.Tree.All {
		le := e.estimateLoop(df, l)
		if out.Total > 0 {
			le.Fraction = le.SeqTime / out.Total
		}
		out.Loops = append(out.Loops, le)
	}
	sort.Slice(out.Loops, func(i, j int) bool {
		return out.Loops[i].SeqTime > out.Loops[j].SeqTime
	})
	return out
}

// EstimateLoop estimates one loop in isolation (used by the power-
// steering profitability diagnosis).
func (e *Estimator) EstimateLoop(df *dataflow.Analysis, l *cfg.Loop) LoopEstimate {
	return e.estimateLoop(df, l)
}

func (e *Estimator) estimateLoop(df *dataflow.Analysis, l *cfg.Loop) LoopEstimate {
	trip := e.Params.DefaultTrip
	if n, ok := df.TripCount(l); ok {
		trip = float64(n)
	}
	body := e.bodyCost(df, l.Do.Body)
	seq := trip * (body + e.Params.LoopOverhead)
	procs := float64(e.Params.Procs)
	chunk := trip / procs
	if chunk < 1 {
		chunk = 1
	}
	par := e.Params.ParallelStartup + chunk*(body+e.Params.LoopOverhead)
	speedup := 1.0
	if par > 0 {
		speedup = seq / par
	}
	return LoopEstimate{Loop: l, Trip: trip, BodyCost: body, SeqTime: seq, ParTime: par, Speedup: speedup}
}

// bodyCost estimates the cost of one execution of the statement list.
func (e *Estimator) bodyCost(df *dataflow.Analysis, body []fortran.Stmt) float64 {
	total := 0.0
	for _, s := range body {
		total += e.stmtCost(df, s)
	}
	return total
}

func (e *Estimator) stmtCost(df *dataflow.Analysis, s fortran.Stmt) float64 {
	p := e.Params
	switch st := s.(type) {
	case *fortran.AssignStmt:
		return e.exprCost(st.Rhs) + e.refCost(st.Lhs)
	case *fortran.IfStmt:
		// Expected cost: condition plus the mean of the branches.
		thenC := e.bodyCost(df, st.Then)
		elseC := e.bodyCost(df, st.Else)
		return p.BranchCost + e.exprCost(st.Cond) + (thenC+elseC)/2
	case *fortran.DoStmt:
		trip := p.DefaultTrip
		if l := df.Tree.LoopOf(st); l != nil {
			if n, ok := df.TripCount(l); ok {
				trip = float64(n)
			}
		}
		return trip * (e.bodyCost(df, st.Body) + p.LoopOverhead)
	case *fortran.WhileStmt:
		return p.DefaultTrip * (e.bodyCost(df, st.Body) + p.LoopOverhead + e.exprCost(st.Cond))
	case *fortran.CallStmt:
		cost := p.CallOverhead
		for _, a := range st.Args {
			cost += e.exprCost(a)
		}
		if st.Callee != nil {
			cost += e.UnitCost(st.Callee)
		}
		return cost
	case *fortran.PrintStmt:
		cost := p.CallOverhead
		for _, it := range st.Items {
			cost += e.exprCost(it)
		}
		return cost
	case *fortran.ReadStmt:
		return p.CallOverhead
	default:
		return p.ArithCost
	}
}

// ParallelTime estimates one execution of the statement list under
// the current parallelization state: loops already marked parallel
// (doall) cost ParallelStartup plus their chunked body time instead
// of the full sequential trip, and nested statements recurse through
// the same parallel-aware rule. bodyCost deliberately ignores the
// parallel flag (it models the sequential program being edited);
// ParallelTime is the speculative planner's scoring function — the
// predicted wall-clock of a partially parallelized unit.
func (e *Estimator) ParallelTime(df *dataflow.Analysis, body []fortran.Stmt) float64 {
	total := 0.0
	for _, s := range body {
		total += e.parStmtCost(df, s)
	}
	return total
}

func (e *Estimator) parStmtCost(df *dataflow.Analysis, s fortran.Stmt) float64 {
	p := e.Params
	switch st := s.(type) {
	case *fortran.IfStmt:
		thenC := e.ParallelTime(df, st.Then)
		elseC := e.ParallelTime(df, st.Else)
		return p.BranchCost + e.exprCost(st.Cond) + (thenC+elseC)/2
	case *fortran.DoStmt:
		trip := p.DefaultTrip
		if l := df.Tree.LoopOf(st); l != nil {
			if n, ok := df.TripCount(l); ok {
				trip = float64(n)
			}
		}
		body := e.ParallelTime(df, st.Body)
		if st.Parallel {
			chunk := trip / float64(p.Procs)
			if chunk < 1 {
				chunk = 1
			}
			return p.ParallelStartup + chunk*(body+p.LoopOverhead)
		}
		return trip * (body + p.LoopOverhead)
	case *fortran.WhileStmt:
		return p.DefaultTrip * (e.ParallelTime(df, st.Body) + p.LoopOverhead + e.exprCost(st.Cond))
	default:
		return e.stmtCost(df, s)
	}
}

// UnitCost estimates the cost of one invocation of a unit, memoized;
// recursive call chains fall back to the call overhead alone.
func (e *Estimator) UnitCost(u *fortran.Unit) float64 {
	if c, ok := e.unitCost[u]; ok {
		return c
	}
	e.unitCost[u] = 0 // cycle guard
	df := dataflow.Analyze(u, nil)
	c := e.bodyCost(df, u.Body)
	e.unitCost[u] = c
	return c
}

// Invalidate drops the memoized per-call cost for u so the next
// UnitCost recomputes it from the current AST. Callers editing a unit
// must invalidate it (and its transitive callers, whose memoized costs
// embed u's) or call-site costs go stale.
func (e *Estimator) Invalidate(u *fortran.Unit) {
	delete(e.unitCost, u)
}

func (e *Estimator) exprCost(x fortran.Expr) float64 {
	p := e.Params
	switch v := x.(type) {
	case nil:
		return 0
	case *fortran.IntLit, *fortran.RealLit, *fortran.LogLit, *fortran.StrLit:
		return 0
	case *fortran.VarRef:
		return e.refCost(v)
	case *fortran.FuncCall:
		cost := 0.0
		for _, a := range v.Args {
			cost += e.exprCost(a)
		}
		if v.Callee != nil {
			return cost + p.CallOverhead + e.UnitCost(v.Callee)
		}
		return cost + p.IntrinsicCost
	case *fortran.Unary:
		return p.ArithCost + e.exprCost(v.X)
	case *fortran.Binary:
		op := p.ArithCost
		if v.Op == fortran.TokPower || v.Op == fortran.TokSlash {
			op = 4 * p.ArithCost
		}
		return op + e.exprCost(v.X) + e.exprCost(v.Y)
	}
	return p.ArithCost
}

func (e *Estimator) refCost(v *fortran.VarRef) float64 {
	if len(v.Subs) == 0 {
		return e.Params.ArithCost / 2
	}
	cost := e.Params.MemCost
	for _, s := range v.Subs {
		cost += e.exprCost(s)
	}
	return cost
}

// ProcedureRank orders every unit in the file by whole-unit cost,
// descending — the call-graph-level navigation view.
func (e *Estimator) ProcedureRank() []struct {
	Unit *fortran.Unit
	Cost float64
} {
	type row = struct {
		Unit *fortran.Unit
		Cost float64
	}
	var rows []row
	for _, u := range e.file.Units {
		rows = append(rows, row{u, e.UnitCost(u)})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Cost > rows[j].Cost })
	return rows
}

// Report renders the unit's estimate as the navigation pane text.
func (out *UnitEstimate) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "performance estimate for %s (total %.0f units)\n", out.Unit.Name, out.Total)
	for i, le := range out.Loops {
		fmt.Fprintf(&b, "%2d. %s\n", i+1, le)
	}
	return b.String()
}
