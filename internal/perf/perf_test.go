package perf

import (
	"strings"
	"testing"

	"parascope/internal/dataflow"
	"parascope/internal/fortran"
)

func setup(t *testing.T, src string) (*Estimator, *dataflow.Analysis) {
	t.Helper()
	f, err := fortran.Parse("t.f", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	e := New(f, DefaultParams())
	return e, dataflow.Analyze(f.Units[0], nil)
}

func TestLoopRanking(t *testing.T) {
	e, df := setup(t, `
      program main
      integer i, j
      real a(1000), b(10)
      do i = 1, 1000
         a(i) = a(i)*2.0 + 1.0
      enddo
      do j = 1, 10
         b(j) = 1.0
      enddo
      end
`)
	est := e.EstimateUnit(df)
	if len(est.Loops) != 2 {
		t.Fatalf("got %d loops", len(est.Loops))
	}
	if est.Loops[0].Loop.Header().Name != "i" {
		t.Errorf("hot loop = %s, want i (1000 iterations)", est.Loops[0].Loop.Header().Name)
	}
	if est.Loops[0].SeqTime <= est.Loops[1].SeqTime {
		t.Error("ranking not descending")
	}
	if est.Loops[0].Fraction < 0.9 {
		t.Errorf("hot loop fraction = %.2f, want > 0.9", est.Loops[0].Fraction)
	}
}

func TestNestedLoopCost(t *testing.T) {
	e, df := setup(t, `
      program main
      integer i, j
      real a(100,100)
      do i = 1, 100
         do j = 1, 100
            a(i,j) = 0.0
         enddo
      enddo
      end
`)
	est := e.EstimateUnit(df)
	outer := est.Loops[0]
	inner := est.Loops[1]
	if outer.Loop.Depth != 1 || inner.Loop.Depth != 2 {
		outer, inner = inner, outer
	}
	// The outer loop's time includes the inner's: roughly 100x.
	if outer.SeqTime < 50*inner.BodyCost {
		t.Errorf("outer %f vs inner body %f: nesting not multiplied", outer.SeqTime, inner.BodyCost)
	}
}

func TestParallelSpeedupModel(t *testing.T) {
	e, df := setup(t, `
      program main
      integer i
      real a(10000)
      do i = 1, 10000
         a(i) = a(i)*2.0 + sqrt(a(i))
      enddo
      end
`)
	est := e.EstimateUnit(df)
	big := est.Loops[0]
	if big.Speedup < 4 {
		t.Errorf("big loop speedup = %.1f, want near Procs (8)", big.Speedup)
	}
	// A tiny loop should show poor speedup (startup dominates).
	e2, df2 := setup(t, `
      program main
      integer i
      real a(4)
      do i = 1, 4
         a(i) = 1.0
      enddo
      end
`)
	est2 := e2.EstimateUnit(df2)
	if est2.Loops[0].Speedup > 1 {
		t.Errorf("tiny loop speedup = %.2f, want < 1 (startup dominates)", est2.Loops[0].Speedup)
	}
}

func TestCallCostIncludesCallee(t *testing.T) {
	f, err := fortran.Parse("t.f", `
      program main
      integer i
      real a(100)
      do i = 1, 100
         call heavy(a)
      enddo
      end
      subroutine heavy(x)
      integer k
      real x(100)
      do k = 1, 100
         x(k) = sqrt(x(k)) + 1.0
      enddo
      end
`)
	if err != nil {
		t.Fatal(err)
	}
	e := New(f, DefaultParams())
	df := dataflow.Analyze(f.Units[0], nil)
	est := e.EstimateUnit(df)
	loop := est.Loops[0]
	// Per-iteration cost must include the callee's loop (~100 iters).
	if loop.BodyCost < 500 {
		t.Errorf("call body cost = %.0f, want to include callee work", loop.BodyCost)
	}
}

func TestProcedureRank(t *testing.T) {
	f, err := fortran.Parse("t.f", `
      program main
      real a(10)
      call light(a)
      call heavy(a)
      end
      subroutine light(x)
      real x(10)
      x(1) = 0.0
      end
      subroutine heavy(x)
      integer k, j
      real x(10)
      do k = 1, 10
         do j = 1, 10
            x(1) = x(1) + 1.0
         enddo
      enddo
      end
`)
	if err != nil {
		t.Fatal(err)
	}
	e := New(f, DefaultParams())
	rows := e.ProcedureRank()
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	// main includes both callees, so it ranks first; heavy above light.
	if rows[0].Unit.Name != "main" {
		t.Errorf("rank 1 = %s, want main", rows[0].Unit.Name)
	}
	hi, li := -1, -1
	for i, r := range rows {
		switch r.Unit.Name {
		case "heavy":
			hi = i
		case "light":
			li = i
		}
	}
	if hi > li {
		t.Errorf("heavy (%d) should outrank light (%d)", hi, li)
	}
}

func TestReportFormat(t *testing.T) {
	e, df := setup(t, `
      program main
      integer i
      real a(50)
      do i = 1, 50
         a(i) = 1.0
      enddo
      end
`)
	est := e.EstimateUnit(df)
	rep := est.Report()
	if !strings.Contains(rep, "do i") || !strings.Contains(rep, "%") {
		t.Errorf("report = %q", rep)
	}
}

func TestParallelTime(t *testing.T) {
	e, df := setup(t, `
      program main
      integer i
      real a(1000)
      do i = 1, 1000
         a(i) = a(i)*2.0 + 1.0
      enddo
      end
`)
	unit := e.file.Units[0]
	seq := e.ParallelTime(df, unit.Body)
	if seqCost := e.bodyCost(df, unit.Body); seq != seqCost {
		t.Fatalf("with nothing parallel, ParallelTime %f != bodyCost %f", seq, seqCost)
	}

	// Mark the loop parallel: the parallel-aware estimate must drop
	// close to seq/Procs, while bodyCost (the sequential model) must
	// not move at all.
	var do *fortran.DoStmt
	for _, s := range unit.Body {
		if d, ok := s.(*fortran.DoStmt); ok {
			do = d
		}
	}
	if do == nil {
		t.Fatal("no loop found")
	}
	do.Parallel = true
	par := e.ParallelTime(df, unit.Body)
	if par >= seq {
		t.Fatalf("parallel loop not cheaper: %f >= %f", par, seq)
	}
	ideal := seq / float64(e.Params.Procs)
	if par > 2*ideal+e.Params.ParallelStartup {
		t.Errorf("parallel time %f far above ideal %f + startup", par, ideal)
	}
	if got := e.bodyCost(df, unit.Body); got != seq {
		t.Errorf("bodyCost changed with the parallel flag: %f != %f", got, seq)
	}
}
