package interproc

import (
	"fmt"

	"parascope/internal/fortran"
)

// Mismatch is one disagreement between a call site and the callee's
// declaration — the checks of ParaScope's Composition Editor ("the
// Composition Editor compares a procedure definition to calls
// invoking it, ensuring the parameter lists agree in number and type.
// These types of errors exist in production codes because most
// compilers do not perform cross-procedure comparisons").
type Mismatch struct {
	Site   *CallSite
	Kind   string // "arg-count", "arg-type", "arg-shape", "return-type"
	Detail string
}

func (m Mismatch) String() string {
	return fmt.Sprintf("line %d: call to %s: %s: %s",
		m.Site.Stmt.Line(), m.Site.Callee.Name, m.Kind, m.Detail)
}

// CheckComposition verifies every resolved call site against its
// callee: argument counts, scalar/array shape agreement, and type
// agreement (integer/real/double/logical/character categories).
func (p *Program) CheckComposition() []Mismatch {
	var out []Mismatch
	for _, site := range p.Graph.Sites {
		out = append(out, checkSite(site)...)
	}
	return out
}

func checkSite(site *CallSite) []Mismatch {
	var out []Mismatch
	callee := site.Callee
	args := site.Args()
	add := func(kind, format string, a ...interface{}) {
		out = append(out, Mismatch{Site: site, Kind: kind, Detail: fmt.Sprintf(format, a...)})
	}
	if len(args) != len(callee.Args) {
		add("arg-count", "%d actuals for %d formals", len(args), len(callee.Args))
	}
	n := len(args)
	if len(callee.Args) < n {
		n = len(callee.Args)
	}
	for i := 0; i < n; i++ {
		formal := callee.Args[i]
		actual := args[i]
		at, ashape := actualTypeShape(site.Caller, actual)
		if at == fortran.TypeUnknown {
			continue
		}
		if !typesCompatible(at, formal.Type) {
			add("arg-type", "argument %d (%s): passing %s where %s %s expected",
				i+1, formal.Name, at, formal.Type, formal.Kind)
		}
		switch {
		case ashape == shapeArray && formal.Kind == fortran.SymScalar:
			add("arg-shape", "argument %d (%s): whole array passed to a scalar formal", i+1, formal.Name)
		case ashape == shapeScalar && formal.Kind == fortran.SymArray:
			add("arg-shape", "argument %d (%s): scalar passed to an array formal", i+1, formal.Name)
		}
	}
	// Function result type: the invoking expression assumes the
	// implicit or declared type at the call site.
	if site.Fn != nil && callee.Kind == fortran.UnitFunction {
		want := callee.RetType
		if want == fortran.TypeUnknown {
			want = fortran.TypeReal
			if n := callee.Name; n != "" && n[0] >= 'i' && n[0] <= 'n' {
				want = fortran.TypeInteger
			}
		}
		got := fortran.ExprType(site.Caller, site.Fn)
		if !typesCompatible(got, want) {
			add("return-type", "caller treats result as %s, function returns %s", got, want)
		}
	}
	return out
}

type shape int

const (
	shapeUnknown shape = iota
	shapeScalar
	shapeArray
	shapeExpr
)

// actualTypeShape classifies an actual argument.
func actualTypeShape(caller *fortran.Unit, e fortran.Expr) (fortran.Type, shape) {
	switch x := e.(type) {
	case *fortran.VarRef:
		if x.Sym == nil {
			return fortran.TypeUnknown, shapeUnknown
		}
		t := x.Sym.Type
		switch {
		case x.Sym.IsArray() && len(x.Subs) == 0:
			return t, shapeArray
		case x.Sym.IsArray():
			// Array element: sequence association makes it legal for
			// both scalar and array formals.
			return t, shapeUnknown
		default:
			return t, shapeScalar
		}
	default:
		return fortran.ExprType(caller, e), shapeExpr
	}
}

// typesCompatible groups types into the categories that must agree
// for by-reference argument passing.
func typesCompatible(a, b fortran.Type) bool {
	if a == fortran.TypeUnknown || b == fortran.TypeUnknown {
		return true
	}
	cat := func(t fortran.Type) int {
		switch t {
		case fortran.TypeInteger:
			return 1
		case fortran.TypeReal:
			return 2
		case fortran.TypeDouble:
			return 3
		case fortran.TypeLogical:
			return 4
		case fortran.TypeCharacter:
			return 5
		}
		return 0
	}
	return cat(a) == cat(b)
}
