package interproc

import (
	"parascope/internal/dataflow"
	"parascope/internal/dep"
	"parascope/internal/expr"
	"parascope/internal/fortran"
)

// Effects implements dataflow.SideEffects using the program's
// interprocedural summaries: calls touch exactly the Mod/Ref sets,
// translated through the formal/actual binding, and scalar arguments
// the callee definitely kills produce full (killing) definitions.
type Effects struct {
	Prog *Program
}

var _ dataflow.SideEffects = (*Effects)(nil)

// CallEffects implements dataflow.SideEffects.
func (e *Effects) CallEffects(u *fortran.Unit, callee string, args []fortran.Expr, s fortran.Stmt) []dataflow.Access {
	target := e.Prog.File.Unit(callee)
	var summ *Summary
	if target != nil {
		summ = e.Prog.Summaries[target]
	}
	if summ == nil || summ.Conservative {
		return dataflow.ConservativeEffects{}.CallEffects(u, callee, args, s)
	}
	var out []dataflow.Access
	emit := func(sym *fortran.Symbol, ref *fortran.VarRef, write, partial bool) {
		out = append(out, dataflow.Access{Sym: sym, Ref: ref, Write: write, Partial: partial, Stmt: s})
	}
	handle := func(calleeSym *fortran.Symbol, write bool) {
		if calleeSym.Dummy {
			actual := boundActual(args, target, calleeSym)
			if actual == nil {
				return
			}
			if vr, ok := actual.(*fortran.VarRef); ok && vr.Sym != nil {
				partial := true
				if vr.Sym.Kind == fortran.SymScalar && summ.Kill[calleeSym] {
					partial = false
				}
				if vr.Sym.IsArray() && summ.KillArrays[calleeSym] && len(vr.Subs) == 0 {
					partial = false
				}
				if !write {
					emit(vr.Sym, vr, false, false)
				} else {
					emit(vr.Sym, vr, true, partial)
				}
				return
			}
			// Expression actual: reads of its variables only.
			if !write {
				collectExprReads(actual, s, &out)
			}
			return
		}
		if calleeSym.Common != "" {
			if callerSym := commonCounterpart(u, calleeSym); callerSym != nil {
				partial := write && !(callerSym.Kind == fortran.SymScalar && summ.Kill[calleeSym])
				emit(callerSym, nil, write, partial)
			}
		}
	}
	// Only upward-exposed reads make the call a true reader; reads
	// satisfied by the callee's own writes stay internal to it.
	for _, sym := range sortedSyms(summ.UpRef) {
		handle(sym, false)
	}
	for _, sym := range sortedSyms(summ.Mod) {
		handle(sym, true)
	}
	return out
}

func collectExprReads(e fortran.Expr, s fortran.Stmt, out *[]dataflow.Access) {
	switch x := e.(type) {
	case *fortran.VarRef:
		if x.Sym != nil && (x.Sym.Kind == fortran.SymScalar || x.Sym.Kind == fortran.SymArray) {
			*out = append(*out, dataflow.Access{Sym: x.Sym, Ref: x, Write: false, Stmt: s})
		}
		for _, sub := range x.Subs {
			collectExprReads(sub, s, out)
		}
	case *fortran.FuncCall:
		for _, a := range x.Args {
			collectExprReads(a, s, out)
		}
	case *fortran.Unary:
		collectExprReads(x.X, s, out)
	case *fortran.Binary:
		collectExprReads(x.X, s, out)
		collectExprReads(x.Y, s, out)
	}
}

// commonCounterpart finds the caller-side symbol sharing the callee
// symbol's COMMON block slot (matched by block and name, the layout
// convention the workloads follow).
func commonCounterpart(u *fortran.Unit, calleeSym *fortran.Symbol) *fortran.Symbol {
	if s := u.Lookup(calleeSym.Name); s != nil && s.Common == calleeSym.Common {
		return s
	}
	return nil
}

func sortedSyms(m map[*fortran.Symbol]bool) []*fortran.Symbol {
	out := make([]*fortran.Symbol, 0, len(m))
	for s := range m {
		out = append(out, s)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Name < out[j-1].Name; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// dep.Summaries adapter

// SectionProvider implements dep.Summaries by translating callee
// regular sections through the call binding.
type SectionProvider struct {
	Prog *Program
}

var _ dep.Summaries = (*SectionProvider)(nil)

// CallSections implements dep.Summaries.
func (sp *SectionProvider) CallSections(s fortran.Stmt) ([]dep.SectionAccess, bool) {
	call, ok := s.(*fortran.CallStmt)
	if !ok || call.Callee == nil {
		return nil, false
	}
	summ := sp.Prog.Summaries[call.Callee]
	if summ == nil || summ.Conservative {
		return nil, false
	}
	caller := unitOf(s, sp.Prog.File)
	if caller == nil {
		return nil, false
	}
	var out []dep.SectionAccess
	for _, arrSym := range sortedSectionSyms(summ) {
		secs := summ.Sections[arrSym]
		// Resolve the caller-side array.
		var callerArr *fortran.Symbol
		switch {
		case arrSym.Dummy:
			actual := boundActual(call.Args, call.Callee, arrSym)
			vr, ok := actual.(*fortran.VarRef)
			if !ok || vr.Sym == nil || !vr.Sym.IsArray() || len(vr.Subs) != 0 {
				// Element-offset or non-array binding: unknown.
				continue
			}
			callerArr = vr.Sym
		case arrSym.Common != "":
			callerArr = commonCounterpart(caller, arrSym)
		}
		if callerArr == nil {
			continue
		}
		for _, sec := range secs {
			sa := dep.SectionAccess{Sym: callerArr, Write: sec.Write}
			for _, d := range sec.Dims {
				sa.Dims = append(sa.Dims, sp.translateDim(call, d))
			}
			out = append(out, sa)
		}
	}
	if len(out) == 0 {
		return nil, false
	}
	return out, true
}

// translateDim rewrites a callee-side linear bound into caller
// symbols by substituting formals with the linearized actuals.
func (sp *SectionProvider) translateDim(call *fortran.CallStmt, d SecDim) dep.SectionDim {
	if !d.Known {
		return dep.SectionDim{}
	}
	caller := unitOf(call, sp.Prog.File)
	lo, ok1 := sp.translateLinear(caller, call, d.Lo)
	hi, ok2 := sp.translateLinear(caller, call, d.Hi)
	if !ok1 || !ok2 {
		return dep.SectionDim{}
	}
	return dep.SectionDim{Lo: lo, Hi: hi, Known: true}
}

func (sp *SectionProvider) translateLinear(caller *fortran.Unit, call *fortran.CallStmt, l expr.Linear) (expr.Linear, bool) {
	out := expr.Con(l.Const)
	for _, t := range l.Terms {
		switch {
		case t.Sym.Dummy:
			actual := boundActual(call.Args, call.Callee, t.Sym)
			if actual == nil {
				return expr.Linear{}, false
			}
			lin, ok := expr.Linearize(caller, actual)
			if !ok {
				return expr.Linear{}, false
			}
			out = out.Add(lin.Scale(t.Coef))
		case t.Sym.Common != "":
			cs := commonCounterpart(caller, t.Sym)
			if cs == nil {
				return expr.Linear{}, false
			}
			out = out.Add(expr.Var(cs).Scale(t.Coef))
		case t.Sym.Kind == fortran.SymParam:
			lin, ok := expr.Linearize(t.Sym.Unit, t.Sym.Value)
			if !ok {
				return expr.Linear{}, false
			}
			out = out.Add(lin.Scale(t.Coef))
		default:
			return expr.Linear{}, false
		}
	}
	return out, true
}

func sortedSectionSyms(summ *Summary) []*fortran.Symbol {
	out := make([]*fortran.Symbol, 0, len(summ.Sections))
	for s := range summ.Sections {
		out = append(out, s)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Name < out[j-1].Name; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// unitOf finds the unit containing statement s.
func unitOf(s fortran.Stmt, f *fortran.File) *fortran.Unit {
	for _, u := range f.Units {
		found := false
		fortran.WalkStmts(u.Body, func(x fortran.Stmt) bool {
			if x == s {
				found = true
			}
			return !found
		})
		if found {
			return u
		}
	}
	return nil
}
