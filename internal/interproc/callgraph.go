// Package interproc implements ParaScope's interprocedural analyses:
// the call graph, flow-insensitive Mod/Ref side effects, flow-
// sensitive scalar Kill, interprocedural constants, and bounded
// regular section analysis of array side effects — the capabilities
// the paper's evaluation (Table 3) identifies as decisive for
// parallelizing loops containing procedure calls.
package interproc

import (
	"fmt"
	"strings"

	"parascope/internal/fortran"
)

// CallSite is one call from a statement in Caller to Callee. For
// function invocations, Call is nil and Fn holds the call expression.
type CallSite struct {
	Caller *fortran.Unit
	Stmt   fortran.Stmt
	Call   *fortran.CallStmt
	Fn     *fortran.FuncCall
	Callee *fortran.Unit
}

// Args returns the actual argument expressions.
func (cs *CallSite) Args() []fortran.Expr {
	if cs.Call != nil {
		return cs.Call.Args
	}
	return cs.Fn.Args
}

// CallGraph records who calls whom across the file.
type CallGraph struct {
	File  *fortran.File
	Sites []*CallSite
	// Calls lists the sites within each unit; Callers the sites
	// invoking it.
	Calls   map[*fortran.Unit][]*CallSite
	Callers map[*fortran.Unit][]*CallSite
	// BottomUp orders units callees-first; units on recursion cycles
	// are listed in Recursive.
	BottomUp  []*fortran.Unit
	Recursive map[*fortran.Unit]bool
}

// BuildCallGraph constructs the call graph of f.
func BuildCallGraph(f *fortran.File) *CallGraph {
	g := &CallGraph{
		File:      f,
		Calls:     map[*fortran.Unit][]*CallSite{},
		Callers:   map[*fortran.Unit][]*CallSite{},
		Recursive: map[*fortran.Unit]bool{},
	}
	for _, u := range f.Units {
		fortran.WalkStmts(u.Body, func(s fortran.Stmt) bool {
			if cs, ok := s.(*fortran.CallStmt); ok && cs.Callee != nil {
				site := &CallSite{Caller: u, Stmt: s, Call: cs, Callee: cs.Callee}
				g.addSite(site)
			}
			fortran.WalkExprs(s, func(e fortran.Expr) {
				if fc, ok := e.(*fortran.FuncCall); ok && fc.Callee != nil {
					site := &CallSite{Caller: u, Stmt: s, Fn: fc, Callee: fc.Callee}
					g.addSite(site)
				}
			})
			return true
		})
	}
	g.order()
	return g
}

func (g *CallGraph) addSite(site *CallSite) {
	g.Sites = append(g.Sites, site)
	g.Calls[site.Caller] = append(g.Calls[site.Caller], site)
	g.Callers[site.Callee] = append(g.Callers[site.Callee], site)
}

// order computes a bottom-up (callees first) ordering and flags
// recursive units.
func (g *CallGraph) order() {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	state := map[*fortran.Unit]int{}
	var visit func(u *fortran.Unit)
	visit = func(u *fortran.Unit) {
		state[u] = grey
		for _, site := range g.Calls[u] {
			switch state[site.Callee] {
			case white:
				visit(site.Callee)
			case grey:
				// Back edge: recursion. Mark everything on the cycle
				// conservatively (the whole grey set suffices).
				for v, st := range state {
					if st == grey {
						g.Recursive[v] = true
					}
				}
			}
		}
		state[u] = black
		g.BottomUp = append(g.BottomUp, u)
	}
	for _, u := range g.File.Units {
		if state[u] == white {
			visit(u)
		}
	}
}

// String renders the call graph as the textual display Ped used.
func (g *CallGraph) String() string {
	var b strings.Builder
	for _, u := range g.File.Units {
		fmt.Fprintf(&b, "%s %s", u.Kind, u.Name)
		if g.Recursive[u] {
			b.WriteString(" (recursive)")
		}
		b.WriteByte('\n')
		for _, site := range g.Calls[u] {
			fmt.Fprintf(&b, "  calls %s (line %d)\n", site.Callee.Name, site.Stmt.Line())
		}
	}
	return b.String()
}
