package interproc

import (
	"strings"
	"testing"

	"parascope/internal/dataflow"
	"parascope/internal/dep"
	"parascope/internal/fortran"
)

func parse(t *testing.T, src string) *fortran.File {
	t.Helper()
	f, err := fortran.Parse("t.f", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return f
}

const threeUnits = `
      program main
      integer i
      real a(100), s
      s = 0.0
      do i = 1, 100
         call work(a, i)
      enddo
      call total(a, s)
      print *, s
      end
      subroutine work(x, k)
      integer k
      real x(100)
      x(k) = sqrt(real(k))
      end
      subroutine total(x, t)
      integer j
      real x(100), t
      t = 0.0
      do j = 1, 100
         t = t + x(j)
      enddo
      end
`

func TestCallGraph(t *testing.T) {
	f := parse(t, threeUnits)
	g := BuildCallGraph(f)
	if len(g.Sites) != 2 {
		t.Fatalf("got %d call sites, want 2", len(g.Sites))
	}
	main := f.Unit("main")
	if len(g.Calls[main]) != 2 {
		t.Errorf("main calls %d, want 2", len(g.Calls[main]))
	}
	work := f.Unit("work")
	if len(g.Callers[work]) != 1 {
		t.Errorf("work callers = %d, want 1", len(g.Callers[work]))
	}
	// Bottom-up: work and total before main.
	pos := map[string]int{}
	for i, u := range g.BottomUp {
		pos[u.Name] = i
	}
	if pos["work"] > pos["main"] || pos["total"] > pos["main"] {
		t.Errorf("bottom-up order wrong: %v", pos)
	}
	if len(g.Recursive) != 0 {
		t.Errorf("no recursion expected: %v", g.Recursive)
	}
	if !strings.Contains(g.String(), "calls work") {
		t.Error("String() missing call edge")
	}
}

func TestRecursionDetected(t *testing.T) {
	f := parse(t, `
      program main
      call f(3)
      end
      subroutine f(n)
      integer n
      if (n .gt. 0) call f(n - 1)
      end
`)
	g := BuildCallGraph(f)
	if !g.Recursive[f.Unit("f")] {
		t.Error("recursive subroutine not detected")
	}
	p := AnalyzeProgram(f)
	if !p.Summaries[f.Unit("f")].Conservative {
		t.Error("recursive summary should be conservative")
	}
}

func TestModRefSummary(t *testing.T) {
	f := parse(t, threeUnits)
	p := AnalyzeProgram(f)
	work := f.Unit("work")
	sw := p.Summaries[work]
	x := work.Lookup("x")
	k := work.Lookup("k")
	if !sw.Mod[x] {
		t.Error("work modifies x")
	}
	if sw.Mod[k] {
		t.Error("work does not modify k")
	}
	if !sw.Ref[k] {
		t.Error("work references k")
	}
	total := f.Unit("total")
	st := p.Summaries[total]
	if !st.Mod[total.Lookup("t")] || !st.Ref[total.Lookup("x")] {
		t.Errorf("total summary wrong: mod=%v ref=%v", st.Mod, st.Ref)
	}
	if st.Mod[total.Lookup("x")] {
		t.Error("total must not modify x")
	}
}

func TestScalarKill(t *testing.T) {
	f := parse(t, `
      program main
      real s
      call setit(s)
      end
      subroutine setit(v)
      real v
      v = 1.0
      end
      subroutine maybe(v, c)
      real v
      logical c
      if (c) then
         v = 1.0
      endif
      end
`)
	p := AnalyzeProgram(f)
	setit := f.Unit("setit")
	if !p.Summaries[setit].Kill[setit.Lookup("v")] {
		t.Error("setit kills v on every path")
	}
	maybe := f.Unit("maybe")
	if p.Summaries[maybe].Kill[maybe.Lookup("v")] {
		t.Error("maybe only conditionally assigns v: not a kill")
	}
}

func TestArrayKill(t *testing.T) {
	f := parse(t, `
      program main
      real a(100)
      call clear(a, 100)
      end
      subroutine clear(x, n)
      integer n, k
      real x(n)
      do k = 1, n
         x(k) = 0.0
      enddo
      end
`)
	p := AnalyzeProgram(f)
	clear := f.Unit("clear")
	if !p.Summaries[clear].KillArrays[clear.Lookup("x")] {
		t.Error("clear overwrites all of x: array kill expected")
	}
}

func TestSections(t *testing.T) {
	f := parse(t, `
      program main
      real a(100)
      integer i
      do i = 1, 100
         call f(a, i)
      enddo
      end
      subroutine f(x, k)
      integer k
      real x(100)
      x(k) = 1.0
      end
`)
	p := AnalyzeProgram(f)
	sub := f.Unit("f")
	secs := p.Summaries[sub].Sections[sub.Lookup("x")]
	if len(secs) != 1 || !secs[0].Write {
		t.Fatalf("sections = %+v", secs)
	}
	d := secs[0].Dims[0]
	if !d.Known {
		t.Fatal("dimension should be known")
	}
	k := sub.Lookup("k")
	if d.Lo.Coef(k) != 1 || d.Hi.Coef(k) != 1 {
		t.Errorf("section bounds = [%s, %s], want [k, k]", d.Lo, d.Hi)
	}
}

func TestSectionsProjectLoops(t *testing.T) {
	f := parse(t, `
      program main
      real a(100)
      call fill(a, 10, 20)
      end
      subroutine fill(x, lo, hi)
      integer lo, hi, k
      real x(100)
      do k = lo, hi
         x(k) = 0.0
      enddo
      end
`)
	p := AnalyzeProgram(f)
	sub := f.Unit("fill")
	secs := p.Summaries[sub].Sections[sub.Lookup("x")]
	if len(secs) != 1 {
		t.Fatalf("sections = %+v", secs)
	}
	d := secs[0].Dims[0]
	if !d.Known {
		t.Fatal("projected dim should be known")
	}
	lo := sub.Lookup("lo")
	hi := sub.Lookup("hi")
	if d.Lo.Coef(lo) != 1 || d.Hi.Coef(hi) != 1 {
		t.Errorf("bounds = [%s, %s], want [lo, hi]", d.Lo, d.Hi)
	}
}

func TestPreciseEffectsEnableParallelization(t *testing.T) {
	// The gloop pattern: a loop calling a subroutine that writes only
	// x(k). With conservative effects the loop carries dependences;
	// with interprocedural sections it does not.
	f := parse(t, `
      program main
      integer i
      real a(100)
      do i = 1, 100
         call f(a, i)
      enddo
      end
      subroutine f(x, k)
      integer k
      real x(100)
      x(k) = 1.0
      end
`)
	p := AnalyzeProgram(f)
	u := f.Unit("main")
	df := dataflow.Analyze(u, &Effects{Prog: p})
	l := df.Tree.All[0]

	// With sections:
	g := dep.Analyze(df, nil, &SectionProvider{Prog: p}, dep.DefaultOptions())
	var carried []*dep.Dependence
	for _, d := range g.CarriedAt(l) {
		if d.Class != dep.ClassControl && d.Sym.Name == "a" {
			carried = append(carried, d)
		}
	}
	if len(carried) != 0 {
		t.Errorf("with sections, loop should carry no deps on a: %v", carried)
	}

	// Without:
	dfc := dataflow.Analyze(u, nil)
	lc := dfc.Tree.All[0]
	gc := dep.Analyze(dfc, nil, nil, dep.DefaultOptions())
	found := false
	for _, d := range gc.CarriedAt(lc) {
		if d.Sym.Name == "a" {
			found = true
		}
	}
	if !found {
		t.Error("conservative analysis must carry deps on a")
	}
}

func TestInterprocConstants(t *testing.T) {
	f := parse(t, `
      program main
      real a(100)
      call f(a, 100)
      call f(a, 100)
      end
      subroutine f(x, n)
      integer n, k
      real x(n)
      do k = 1, n
         x(k) = 0.0
      enddo
      end
`)
	p := AnalyzeProgram(f)
	sub := f.Unit("f")
	n := sub.Lookup("n")
	vals := p.ConstFormals[sub]
	if vals[n] != 100 {
		t.Errorf("n = %d, want 100 at all call sites", vals[n])
	}
	env := p.ConstEnv(sub)
	if v, ok := env.Value(n); !ok || v != 100 {
		t.Errorf("ConstEnv n = %d,%v", v, ok)
	}
}

func TestInterprocConstantsConflict(t *testing.T) {
	f := parse(t, `
      program main
      real a(100)
      call f(a, 100)
      call f(a, 50)
      end
      subroutine f(x, n)
      integer n
      real x(n)
      x(1) = 0.0
      end
`)
	p := AnalyzeProgram(f)
	sub := f.Unit("f")
	if v, ok := p.ConstFormals[sub][sub.Lookup("n")]; ok {
		t.Errorf("conflicting sites must not yield constant, got %d", v)
	}
}

func TestCommonEffects(t *testing.T) {
	f := parse(t, `
      program main
      real g(10), s
      common /blk/ g, s
      call touch
      s = g(1)
      end
      subroutine touch
      real g(10), s
      common /blk/ g, s
      g(1) = 5.0
      s = 1.0
      end
`)
	p := AnalyzeProgram(f)
	touch := f.Unit("touch")
	st := p.Summaries[touch]
	if !st.Mod[touch.Lookup("g")] || !st.Mod[touch.Lookup("s")] {
		t.Errorf("touch must modify common members: %v", st.Mod)
	}
	// The caller's dataflow must see the write to s via the common.
	u := f.Unit("main")
	df := dataflow.Analyze(u, &Effects{Prog: p})
	last := u.Body[1]
	defs := df.DefsReaching(last, u.Lookup("s"))
	foundCallDef := false
	for _, d := range defs {
		if _, ok := d.Node.Stmt.(*fortran.CallStmt); ok {
			foundCallDef = true
		}
	}
	if !foundCallDef {
		t.Error("call to touch should define common s in the caller")
	}
}

func TestMergeSections(t *testing.T) {
	f := parse(t, `
      program main
      real a(100)
      call f(a, 5)
      end
      subroutine f(x, k)
      integer k
      real x(100)
      x(k) = 1.0
      x(k + 2) = 2.0
      end
`)
	p := AnalyzeProgram(f)
	sub := f.Unit("f")
	secs := p.Summaries[sub].Sections[sub.Lookup("x")]
	if len(secs) != 1 {
		t.Fatalf("write sections should merge: %+v", secs)
	}
	d := secs[0].Dims[0]
	if !d.Known {
		t.Fatal("merged dim should stay known (bounds differ by a constant)")
	}
	k := sub.Lookup("k")
	// Hull is [k, k+2].
	if d.Lo.Coef(k) != 1 || d.Lo.Const != 0 || d.Hi.Coef(k) != 1 || d.Hi.Const != 2 {
		t.Errorf("hull = [%s, %s], want [k, k+2]", d.Lo, d.Hi)
	}
}

// TestUpRefDistinguishesKillThenUse: a routine that fills a work
// array before reading it references the array (Ref) but does not
// consume the caller's values (not UpRef); a routine that reads
// before writing is upward exposed.
func TestUpRefDistinguishesKillThenUse(t *testing.T) {
	f := parse(t, `
      program main
      real w(16), v(16)
      call killer(w)
      call reader(v)
      end
      subroutine killer(x)
      integer i
      real x(16), s
      do i = 1, 16
         x(i) = real(i)
      enddo
      s = x(3)
      end
      subroutine reader(x)
      integer i
      real x(16)
      do i = 1, 16
         x(i) = x(i) + 1.0
      enddo
      end
`)
	p := AnalyzeProgram(f)
	killer := f.Unit("killer")
	sk := p.Summaries[killer]
	xk := killer.Lookup("x")
	if !sk.Ref[xk] {
		t.Error("killer reads x: must be in Ref")
	}
	if sk.UpRef[xk] {
		t.Error("killer kills x before reading: must NOT be in UpRef")
	}
	reader := f.Unit("reader")
	sr := p.Summaries[reader]
	xr := reader.Lookup("x")
	if !sr.UpRef[xr] {
		t.Error("reader consumes incoming x values: must be in UpRef")
	}
}
