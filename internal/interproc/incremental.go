package interproc

import "parascope/internal/fortran"

// Equal reports whether two summaries describe the same caller-visible
// effects: the same Mod/Ref/UpRef/Kill/KillArrays sets, the same array
// sections, and the same conservatism. killLoop is an internal detail
// already reflected in UpRef and is ignored. Symbol keys are compared
// by pointer, which is right as long as both summaries were computed
// against the same symbol table (true for successive analyses of one
// session's file: edits resolve against the existing table).
func (s *Summary) Equal(o *Summary) bool {
	if s == nil || o == nil {
		return s == o
	}
	if s.Conservative != o.Conservative {
		return false
	}
	if !sameSet(s.Mod, o.Mod) || !sameSet(s.Ref, o.Ref) ||
		!sameSet(s.UpRef, o.UpRef) || !sameSet(s.Kill, o.Kill) ||
		!sameSet(s.KillArrays, o.KillArrays) {
		return false
	}
	if len(s.Sections) != len(o.Sections) {
		return false
	}
	for sym, a := range s.Sections {
		b, ok := o.Sections[sym]
		if !ok || len(a) != len(b) {
			return false
		}
		for i := range a {
			if !sectionEqual(a[i], b[i]) {
				return false
			}
		}
	}
	return true
}

func sectionEqual(a, b Section) bool {
	if a.Write != b.Write || len(a.Dims) != len(b.Dims) {
		return false
	}
	for i := range a.Dims {
		da, db := a.Dims[i], b.Dims[i]
		if da.Known != db.Known {
			return false
		}
		if da.Known && (!da.Lo.Equal(db.Lo) || !da.Hi.Equal(db.Hi)) {
			return false
		}
	}
	return true
}

// Resummarize recomputes u's summary against the program's existing
// callee summaries without mutating p. It is only meaningful while u's
// call sites are unchanged from when p was built (otherwise the stored
// call graph no longer describes u and the caller must rebuild the
// whole program).
func (p *Program) Resummarize(u *fortran.Unit) *Summary {
	return p.summarize(u)
}

// UpdateProgram rebuilds the interprocedural results for prev.File
// after the units in changed were edited. Units whose own AST is
// untouched, whose recursion status is stable, and whose direct callee
// summaries carried over unchanged reuse their previous summary
// wholesale. Recomputed summaries that compare Equal to the previous
// one keep the previous *pointer*, so "did anything visible change?"
// propagates up the call graph as cheap pointer identity — an edit
// deep in a leaf that doesn't alter its visible effects leaves every
// other unit's summary object untouched.
func UpdateProgram(prev *Program, changed map[*fortran.Unit]bool) *Program {
	p := &Program{
		File:         prev.File,
		Graph:        BuildCallGraph(prev.File),
		Summaries:    map[*fortran.Unit]*Summary{},
		ConstFormals: map[*fortran.Unit]map[*fortran.Symbol]int64{},
	}
	for _, u := range p.Graph.BottomUp {
		old := prev.Summaries[u]
		if old != nil && !changed[u] &&
			p.Graph.Recursive[u] == prev.Graph.Recursive[u] &&
			calleeSummariesCarried(p, prev, u) {
			p.Summaries[u] = old
			continue
		}
		fresh := p.summarize(u)
		if fresh.Equal(old) {
			fresh = old
		}
		p.Summaries[u] = fresh
	}
	p.propagateConstFormals()
	return p
}

func calleeSummariesCarried(p, prev *Program, u *fortran.Unit) bool {
	for _, site := range p.Graph.Calls[u] {
		if p.Summaries[site.Callee] != prev.Summaries[site.Callee] {
			return false
		}
	}
	return true
}

// ConstFormalsEqual reports whether u's propagated constant formals
// agree between two programs.
func ConstFormalsEqual(a, b *Program, u *fortran.Unit) bool {
	ma, mb := a.ConstFormals[u], b.ConstFormals[u]
	if len(ma) != len(mb) {
		return false
	}
	for k, v := range ma {
		if w, ok := mb[k]; !ok || w != v {
			return false
		}
	}
	return true
}
