package interproc

import (
	"parascope/internal/cfg"
	"parascope/internal/dataflow"
	"parascope/internal/expr"
	"parascope/internal/fortran"
)

// Section is one bounded regular section of a callee-side array: the
// index range each dimension may touch, as linear forms over the
// callee's formals, parameters and globals.
type Section struct {
	Write bool
	Dims  []SecDim
}

// SecDim bounds one dimension; Known is false when unanalyzable.
type SecDim struct {
	Lo, Hi expr.Linear
	Known  bool
}

// Summary is the interprocedural summary of one unit: which visible
// variables (formals and COMMON members) it may reference or modify,
// which scalars it definitely kills, and the array sections it
// touches.
type Summary struct {
	Unit *fortran.Unit
	Mod  map[*fortran.Symbol]bool
	Ref  map[*fortran.Symbol]bool
	// UpRef is the subset of Ref whose values flow in from the
	// caller (upward-exposed uses): only these make a call a true
	// *reader* of the variable. For a routine that kills an array
	// before using it, the array is in Ref but not UpRef — the
	// distinction array privatization depends on.
	UpRef map[*fortran.Symbol]bool
	// Kill holds scalars definitely assigned on every control-flow
	// path through the unit.
	Kill map[*fortran.Symbol]bool
	// Sections maps arrays to their touched sections.
	Sections map[*fortran.Symbol][]Section
	// KillArrays holds arrays fully overwritten on every path (array
	// kill analysis, needed for array privatization in arc3d/slab2d).
	KillArrays map[*fortran.Symbol]bool
	// killLoop records the covering loop that kills each array, used
	// to decide whether the kill precedes every other access.
	killLoop map[*fortran.Symbol]*fortran.DoStmt
	// Conservative marks summaries degraded by recursion or
	// unanalyzable constructs: treat as mod/ref everything visible.
	Conservative bool
}

// Program bundles the file-level interprocedural results.
type Program struct {
	File      *fortran.File
	Graph     *CallGraph
	Summaries map[*fortran.Unit]*Summary
	// ConstFormals maps each unit's formal parameters to the constant
	// every call site passes (interprocedural constant propagation).
	ConstFormals map[*fortran.Unit]map[*fortran.Symbol]int64
}

// AnalyzeProgram computes summaries bottom-up over the call graph.
func AnalyzeProgram(f *fortran.File) *Program {
	p := &Program{
		File:         f,
		Graph:        BuildCallGraph(f),
		Summaries:    map[*fortran.Unit]*Summary{},
		ConstFormals: map[*fortran.Unit]map[*fortran.Symbol]int64{},
	}
	for _, u := range p.Graph.BottomUp {
		p.Summaries[u] = p.summarize(u)
	}
	p.propagateConstFormals()
	return p
}

// summarize computes unit u's summary; callee summaries are already
// available (bottom-up order).
func (p *Program) summarize(u *fortran.Unit) *Summary {
	s := &Summary{
		Unit:       u,
		Mod:        map[*fortran.Symbol]bool{},
		Ref:        map[*fortran.Symbol]bool{},
		UpRef:      map[*fortran.Symbol]bool{},
		Kill:       map[*fortran.Symbol]bool{},
		Sections:   map[*fortran.Symbol][]Section{},
		KillArrays: map[*fortran.Symbol]bool{},
		killLoop:   map[*fortran.Symbol]*fortran.DoStmt{},
	}
	if p.Graph.Recursive[u] {
		s.Conservative = true
		for _, sym := range u.SymbolsSorted() {
			if visible(sym) {
				s.Mod[sym] = true
				s.Ref[sym] = true
				s.UpRef[sym] = true
			}
		}
		return s
	}
	df := dataflow.Analyze(u, &Effects{Prog: p})
	// Mod/Ref from the statement accesses (which already include
	// translated callee effects via Effects).
	fortran.WalkStmts(u.Body, func(st fortran.Stmt) bool {
		for _, ac := range df.Accesses(st) {
			if !visible(ac.Sym) {
				continue
			}
			if ac.Write {
				s.Mod[ac.Sym] = true
			} else {
				s.Ref[ac.Sym] = true
			}
		}
		return true
	})
	for sym := range df.UpwardExposed() {
		if visible(sym) && s.Ref[sym] {
			s.UpRef[sym] = true
		}
	}
	p.computeKill(u, df, s)
	p.computeSections(u, df, s)
	// Element-granular liveness cannot see that a covering loop kills
	// a whole array: when the array-kill loop precedes every other
	// access to the array, the array is not really upward exposed.
	for arr, kill := range s.killLoop {
		if !s.UpRef[arr] {
			continue
		}
		if arrayKillIsFirstAccess(u, df, arr, kill) {
			delete(s.UpRef, arr)
		}
	}
	return s
}

// visible reports whether a symbol is visible to callers: a dummy
// argument or a COMMON member.
func visible(sym *fortran.Symbol) bool {
	return sym.Dummy || sym.Common != ""
}

// computeKill finds visible scalars definitely assigned on every path
// from entry to exit (flow-sensitive Kill analysis) and arrays fully
// overwritten by unconditional covering loops (array kill).
func (p *Program) computeKill(u *fortran.Unit, df *dataflow.Analysis, s *Summary) {
	// Definite assignment: forward must-analysis over the CFG.
	g := df.G
	assigned := map[*cfg.Node]map[*fortran.Symbol]bool{}
	order := g.Nodes
	changed := true
	for changed {
		changed = false
		for _, n := range order {
			var in map[*fortran.Symbol]bool
			first := true
			for _, pr := range n.Preds {
				po := assigned[pr]
				if po == nil {
					continue // unvisited: optimistic
				}
				if first {
					in = map[*fortran.Symbol]bool{}
					for k := range po {
						in[k] = true
					}
					first = false
				} else {
					for k := range in {
						if !po[k] {
							delete(in, k)
						}
					}
				}
			}
			if in == nil {
				in = map[*fortran.Symbol]bool{}
			}
			if n.Stmt != nil {
				for _, ac := range df.Accesses(n.Stmt) {
					if ac.Write && !ac.Partial {
						in[ac.Sym] = true
					}
				}
				// A call that kills a visible scalar kills it here too.
				if call, ok := n.Stmt.(*fortran.CallStmt); ok && call.Callee != nil {
					if cs := p.Summaries[call.Callee]; cs != nil {
						for formal := range cs.Kill {
							if actual := boundActual(call.Args, call.Callee, formal); actual != nil {
								if vr, ok := actual.(*fortran.VarRef); ok && vr.Sym != nil && len(vr.Subs) == 0 {
									in[vr.Sym] = true
								}
							}
						}
					}
				}
			}
			// An empty set must still be stored: a nil entry means
			// "unvisited" and is skipped by the meet above.
			if assigned[n] == nil || !sameSet(assigned[n], in) {
				assigned[n] = in
				changed = true
			}
		}
	}
	exitIn := assigned[g.Exit]
	for sym := range exitIn {
		if visible(sym) && sym.Kind == fortran.SymScalar {
			s.Kill[sym] = true
		}
	}
	// Array kill: an unconditional top-level loop covering the full
	// declared extent with a direct write a(k).
	for _, st := range u.Body {
		do, ok := st.(*fortran.DoStmt)
		if !ok {
			continue
		}
		p.detectArrayKill(u, do, s)
	}
}

// arrayKillIsFirstAccess reports whether the covering kill loop is
// the first access to arr in the unit: no statement that executes
// before the kill loop (conservatively, any statement preceding it in
// the pre-order walk of the body) touches the array.
func arrayKillIsFirstAccess(u *fortran.Unit, df *dataflow.Analysis, arr *fortran.Symbol, kill *fortran.DoStmt) bool {
	// The kill loop itself must not read the array: a sweep like
	// x(i) = x(i) + 1 covers every element yet still consumes the
	// incoming values.
	readsInKill := false
	fortran.WalkStmts(kill.Body, func(s fortran.Stmt) bool {
		for _, ac := range df.Accesses(s) {
			if ac.Sym == arr && !ac.Write {
				readsInKill = true
			}
		}
		return !readsInKill
	})
	if readsInKill {
		return false
	}
	beforeKill := true
	clean := true
	fortran.WalkStmts(u.Body, func(s fortran.Stmt) bool {
		if s == kill {
			beforeKill = false
			return false // the kill loop itself was checked above
		}
		if !beforeKill {
			return false
		}
		for _, ac := range df.Accesses(s) {
			if ac.Sym == arr {
				clean = false
			}
		}
		return clean
	})
	return clean
}

func sameSet(a, b map[*fortran.Symbol]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// detectArrayKill recognizes loops (possibly nested) writing every
// element of a visible array: do k = 1, n ⇒ a(k) = … with the loop
// bounds matching the declared dimension.
func (p *Program) detectArrayKill(u *fortran.Unit, do *fortran.DoStmt, s *Summary) {
	// Collect the perfect nest.
	var loops []*fortran.DoStmt
	cur := do
	for {
		loops = append(loops, cur)
		if len(cur.Body) == 1 {
			if inner, ok := cur.Body[0].(*fortran.DoStmt); ok {
				cur = inner
				continue
			}
		}
		break
	}
	for _, st := range cur.Body {
		as, ok := st.(*fortran.AssignStmt)
		if !ok || as.Lhs.Sym == nil || !as.Lhs.Sym.IsArray() || !visible(as.Lhs.Sym) {
			continue
		}
		arr := as.Lhs.Sym
		if len(as.Lhs.Subs) != len(arr.Dims) || len(as.Lhs.Subs) > len(loops) {
			continue
		}
		// Each subscript must be exactly one loop variable whose
		// bounds span the declared dimension.
		covered := true
		for d, sub := range as.Lhs.Subs {
			vr, ok := sub.(*fortran.VarRef)
			if !ok || len(vr.Subs) != 0 {
				covered = false
				break
			}
			var loop *fortran.DoStmt
			for _, lp := range loops {
				if lp.Var == vr.Sym {
					loop = lp
				}
			}
			if loop == nil || !boundsMatchDim(u, loop, arr.Dims[d]) {
				covered = false
				break
			}
		}
		if covered {
			s.KillArrays[arr] = true
			s.Kill[arr] = true
			if s.killLoop[arr] == nil {
				s.killLoop[arr] = do
			}
		}
	}
}

func boundsMatchDim(u *fortran.Unit, do *fortran.DoStmt, dim fortran.Dimension) bool {
	if do.Step != nil {
		return false
	}
	lo, ok1 := expr.Linearize(u, do.Lo)
	hi, ok2 := expr.Linearize(u, do.Hi)
	if !ok1 || !ok2 {
		return false
	}
	dLo := expr.Con(1)
	if dim.Lo != nil {
		var ok bool
		dLo, ok = expr.Linearize(u, dim.Lo)
		if !ok {
			return false
		}
	}
	if dim.Hi == nil {
		return false
	}
	dHi, ok := expr.Linearize(u, dim.Hi)
	if !ok {
		return false
	}
	return lo.Equal(dLo) && hi.Equal(dHi)
}

// computeSections derives bounded regular sections for every visible
// array the unit touches directly.
func (p *Program) computeSections(u *fortran.Unit, df *dataflow.Analysis, s *Summary) {
	fortran.WalkStmts(u.Body, func(st fortran.Stmt) bool {
		for _, ac := range df.Accesses(st) {
			if !ac.Sym.IsArray() || !visible(ac.Sym) {
				continue
			}
			if ac.Ref == nil || len(ac.Ref.Subs) == 0 {
				// Call side effect or whole-array pass: translate the
				// callee's sections if this is a call we can see
				// through; otherwise mark unknown.
				s.addSection(ac.Sym, Section{Write: ac.Write, Dims: unknownDims(len(ac.Sym.Dims))})
				continue
			}
			sec := Section{Write: ac.Write}
			for _, sub := range ac.Ref.Subs {
				sec.Dims = append(sec.Dims, projectDim(u, df, sub))
			}
			s.addSection(ac.Sym, sec)
		}
		return true
	})
}

func unknownDims(n int) []SecDim {
	out := make([]SecDim, n)
	return out
}

// projectDim turns a subscript into formal-only bounds by replacing
// each loop variable with its loop bounds.
func projectDim(u *fortran.Unit, df *dataflow.Analysis, sub fortran.Expr) SecDim {
	lin, ok := expr.Linearize(u, sub)
	if !ok {
		return SecDim{}
	}
	loopOf := map[*fortran.Symbol]*cfg.Loop{}
	for _, l := range df.Tree.All {
		loopOf[l.Do.Var] = l
	}
	lo, hi := lin, lin
	for iter := 0; iter < 10; iter++ {
		replaced := false
		for _, t := range lo.Terms {
			if l, isLV := loopOf[t.Sym]; isLV {
				b, ok := loopBoundLin(u, l, t.Coef > 0, true)
				if !ok {
					return SecDim{}
				}
				lo = lo.Subst(t.Sym, b)
				replaced = true
				break
			}
		}
		for _, t := range hi.Terms {
			if l, isLV := loopOf[t.Sym]; isLV {
				b, ok := loopBoundLin(u, l, t.Coef > 0, false)
				if !ok {
					return SecDim{}
				}
				hi = hi.Subst(t.Sym, b)
				replaced = true
				break
			}
		}
		if !replaced {
			break
		}
	}
	// All remaining symbols must be formals, params or commons.
	for _, t := range lo.Terms {
		if !visible(t.Sym) && t.Sym.Kind != fortran.SymParam {
			return SecDim{}
		}
	}
	for _, t := range hi.Terms {
		if !visible(t.Sym) && t.Sym.Kind != fortran.SymParam {
			return SecDim{}
		}
	}
	return SecDim{Lo: lo, Hi: hi, Known: true}
}

// loopBoundLin returns the loop's lower (forLo && positive coef) or
// upper bound as a linear form. Negative steps are rejected.
func loopBoundLin(u *fortran.Unit, l *cfg.Loop, coefPositive, forLo bool) (expr.Linear, bool) {
	if l.Do.Step != nil {
		st, ok := expr.Linearize(u, l.Do.Step)
		if !ok || !st.IsConst() || st.Const <= 0 {
			return expr.Linear{}, false
		}
	}
	wantLower := coefPositive == forLo
	var e fortran.Expr
	if wantLower {
		e = l.Do.Lo
	} else {
		e = l.Do.Hi
	}
	return expr.Linearize(u, e)
}

// addSection merges a new section into the summary, keeping one
// merged hull per (array, write) when bounds are comparable.
func (s *Summary) addSection(sym *fortran.Symbol, sec Section) {
	list := s.Sections[sym]
	for i := range list {
		if list[i].Write == sec.Write {
			list[i] = mergeSections(list[i], sec)
			s.Sections[sym] = list
			return
		}
	}
	s.Sections[sym] = append(list, sec)
}

func mergeSections(a, b Section) Section {
	n := len(a.Dims)
	if len(b.Dims) != n {
		return Section{Write: a.Write, Dims: unknownDims(maxInt(len(a.Dims), len(b.Dims)))}
	}
	out := Section{Write: a.Write, Dims: make([]SecDim, n)}
	for i := 0; i < n; i++ {
		out.Dims[i] = mergeDims(a.Dims[i], b.Dims[i])
	}
	return out
}

// mergeDims widens two dimension bounds. Bounds whose difference is a
// known constant merge exactly; otherwise the dimension degrades to
// unknown.
func mergeDims(a, b SecDim) SecDim {
	if !a.Known || !b.Known {
		return SecDim{}
	}
	lo, ok1 := minLinear(a.Lo, b.Lo)
	hi, ok2 := maxLinear(a.Hi, b.Hi)
	if !ok1 || !ok2 {
		return SecDim{}
	}
	return SecDim{Lo: lo, Hi: hi, Known: true}
}

func minLinear(a, b expr.Linear) (expr.Linear, bool) {
	d := a.Sub(b)
	if !d.IsConst() {
		return expr.Linear{}, false
	}
	if d.Const <= 0 {
		return a, true
	}
	return b, true
}

func maxLinear(a, b expr.Linear) (expr.Linear, bool) {
	d := a.Sub(b)
	if !d.IsConst() {
		return expr.Linear{}, false
	}
	if d.Const >= 0 {
		return a, true
	}
	return b, true
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ---------------------------------------------------------------------------
// Interprocedural constants

// propagateConstFormals records formals that receive the same integer
// constant at every call site.
func (p *Program) propagateConstFormals() {
	for _, u := range p.File.Units {
		sites := p.Graph.Callers[u]
		if len(sites) == 0 {
			continue
		}
		vals := map[*fortran.Symbol]int64{}
		bad := map[*fortran.Symbol]bool{}
		for si, site := range sites {
			args := site.Args()
			for i, formal := range u.Args {
				if i >= len(args) {
					bad[formal] = true
					continue
				}
				il, ok := args[i].(*fortran.IntLit)
				if !ok {
					bad[formal] = true
					continue
				}
				if si == 0 {
					vals[formal] = il.Val
				} else if prev, seen := vals[formal]; !seen || prev != il.Val {
					bad[formal] = true
				}
			}
		}
		out := map[*fortran.Symbol]int64{}
		for sym, v := range vals {
			if !bad[sym] {
				out[sym] = v
			}
		}
		if len(out) > 0 {
			p.ConstFormals[u] = out
		}
	}
}

// ConstEnv returns an assertion environment seeding the unit's
// constant formals, or nil.
func (p *Program) ConstEnv(u *fortran.Unit) *expr.Env {
	vals := p.ConstFormals[u]
	if len(vals) == 0 {
		return nil
	}
	env := expr.NewEnv()
	for sym, v := range vals {
		env.SetValue(sym, v)
	}
	return env
}

// boundActual returns the actual expression bound to the callee's
// formal, or nil.
func boundActual(args []fortran.Expr, callee *fortran.Unit, formal *fortran.Symbol) fortran.Expr {
	for i, f := range callee.Args {
		if f == formal && i < len(args) {
			return args[i]
		}
	}
	return nil
}
