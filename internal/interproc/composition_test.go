package interproc

import (
	"strings"
	"testing"
)

func TestCompositionClean(t *testing.T) {
	f := parse(t, threeUnits)
	p := AnalyzeProgram(f)
	if ms := p.CheckComposition(); len(ms) != 0 {
		t.Errorf("clean program reported mismatches: %v", ms)
	}
}

func TestCompositionArgCount(t *testing.T) {
	f := parse(t, `
      program main
      real x
      call f(x)
      end
      subroutine f(a, b)
      real a, b
      a = b
      end
`)
	p := AnalyzeProgram(f)
	ms := p.CheckComposition()
	if len(ms) != 1 || ms[0].Kind != "arg-count" {
		t.Errorf("mismatches = %v", ms)
	}
	if !strings.Contains(ms[0].String(), "1 actuals for 2 formals") {
		t.Errorf("detail = %s", ms[0])
	}
}

func TestCompositionArgType(t *testing.T) {
	f := parse(t, `
      program main
      integer k
      k = 1
      call f(k)
      end
      subroutine f(x)
      real x
      x = x + 1.0
      end
`)
	p := AnalyzeProgram(f)
	ms := p.CheckComposition()
	if len(ms) != 1 || ms[0].Kind != "arg-type" {
		t.Errorf("mismatches = %v", ms)
	}
}

func TestCompositionArgShape(t *testing.T) {
	f := parse(t, `
      program main
      real a(10), s
      s = 0.0
      call f(a)
      call g(s)
      end
      subroutine f(x)
      real x
      x = 1.0
      end
      subroutine g(y)
      real y(10)
      y(1) = 1.0
      end
`)
	p := AnalyzeProgram(f)
	ms := p.CheckComposition()
	kinds := map[string]int{}
	for _, m := range ms {
		kinds[m.Kind]++
	}
	if kinds["arg-shape"] != 2 {
		t.Errorf("mismatches = %v", ms)
	}
}

func TestCompositionElementPassedOK(t *testing.T) {
	// Passing an array element where an array is expected is legal
	// Fortran (sequence association) and must not be flagged.
	f := parse(t, `
      program main
      real a(10)
      call f(a(3), 8)
      end
      subroutine f(x, n)
      integer n
      real x(n)
      x(1) = 1.0
      end
`)
	p := AnalyzeProgram(f)
	if ms := p.CheckComposition(); len(ms) != 0 {
		t.Errorf("sequence association flagged: %v", ms)
	}
}

func TestCompositionFunctionReturnType(t *testing.T) {
	f := parse(t, `
      program main
      integer k
      k = fval(2.0)
      end
      real function fval(x)
      real x
      fval = x*2.0
      end
`)
	p := AnalyzeProgram(f)
	// k = fval(...) converts real to integer on assignment — that is
	// an assignment conversion, not a call mismatch; the invocation
	// itself is consistent (fval declared real, used as real).
	for _, m := range p.CheckComposition() {
		if m.Kind == "return-type" {
			t.Errorf("spurious return-type mismatch: %v", m)
		}
	}
}

func TestCompositionExprActualOK(t *testing.T) {
	f := parse(t, `
      program main
      real y
      y = 1.0
      call f(y*2.0 + 1.0)
      end
      subroutine f(x)
      real x
      y2 = x
      end
`)
	p := AnalyzeProgram(f)
	if ms := p.CheckComposition(); len(ms) != 0 {
		t.Errorf("expression actual flagged: %v", ms)
	}
}
