package interp

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"parascope/internal/codegen/runfmt"
	"parascope/internal/fortran"
)

// Machine executes a parsed Fortran file.
type Machine struct {
	File *fortran.File
	// Out receives PRINT/WRITE output; nil discards it.
	Out io.Writer
	// Input supplies values for READ statements, in order.
	Input []float64
	// Workers is the number of goroutines used for parallel loops;
	// 0 means GOMAXPROCS.
	Workers int
	// StmtLimit aborts runaway programs (0 = no limit).
	StmtLimit int64

	inputPos int
	stmts    int64
	// ParallelLoopsRun counts DOALL executions.
	ParallelLoopsRun int64
	// SimCycles is the simulated parallel execution time after Run:
	// statements executed along the critical path, with ForkCost
	// added per parallel loop execution.
	SimCycles int64
	// ForkCost is the simulated fork/join overhead of one parallel
	// loop execution (default 100 cycles).
	ForkCost int64

	commons map[string]*cell
	commonA map[string]*array
	mu      sync.Mutex

	// cancelFlag is set by Cancel; checked on the statement-flush path
	// and per loop iteration so even statement-free spins (empty WHILE
	// bodies, tight backward gotos) observe it promptly.
	cancelFlag atomic.Bool
	cancelMu   sync.Mutex
	cancelErr  error
}

// New creates a machine for f.
func New(f *fortran.File) *Machine {
	return &Machine{File: f, commons: map[string]*cell{}, commonA: map[string]*array{}}
}

// StmtsExecuted reports how many statements ran.
func (m *Machine) StmtsExecuted() int64 { return atomic.LoadInt64(&m.stmts) }

// Cancel asks a running machine to stop with cause at its next
// cancellation check (every loop iteration and statement-count flush).
// Safe to call from any goroutine; the first cause wins.
func (m *Machine) Cancel(cause error) {
	if cause == nil {
		cause = fmt.Errorf("interp: run cancelled")
	}
	m.cancelMu.Lock()
	if m.cancelErr == nil {
		m.cancelErr = cause
	}
	m.cancelMu.Unlock()
	m.cancelFlag.Store(true)
}

// cancelled returns the Cancel cause once set; the fast path is one
// atomic load so it is cheap enough for per-iteration checks.
func (m *Machine) cancelled() error {
	if !m.cancelFlag.Load() {
		return nil
	}
	m.cancelMu.Lock()
	defer m.cancelMu.Unlock()
	return m.cancelErr
}

// signal tells the statement walker how control left a statement.
type signal int

const (
	sigNormal signal = iota
	sigReturn
	sigStop
	sigGoto
)

// frame is one procedure activation.
type frame struct {
	m       *Machine
	unit    *fortran.Unit
	scalars map[*fortran.Symbol]*cell
	arrays  map[*fortran.Symbol]*array

	gotoTarget int
	// localStmts batches statement counting: flushing to the shared
	// atomic counter per statement would serialize parallel workers
	// on one cache line.
	localStmts int64
	// cycles accumulates simulated execution time: one unit per
	// statement, with parallel loops contributing fork/join overhead
	// plus the *maximum* over their workers (critical path). This
	// models the multiprocessor even on a single-core host.
	cycles int64
}

// flushStmts publishes the frame's batched statement count and
// enforces the global limit.
func (f *frame) flushStmts() error {
	if err := f.m.cancelled(); err != nil {
		return err
	}
	if f.localStmts == 0 {
		return nil
	}
	n := atomic.AddInt64(&f.m.stmts, f.localStmts)
	f.localStmts = 0
	if f.m.StmtLimit > 0 && n > f.m.StmtLimit {
		return fmt.Errorf("interp: statement limit %d exceeded", f.m.StmtLimit)
	}
	return nil
}

// Run executes the main program.
func (m *Machine) Run() error {
	main := m.File.Main()
	if main == nil {
		return fmt.Errorf("interp: no main program")
	}
	f, err := m.newFrame(main, nil, nil)
	if err != nil {
		return err
	}
	sig, err := f.execBody(main.Body)
	m.SimCycles = f.cycles
	if ferr := f.flushStmts(); err == nil && ferr != nil {
		err = ferr
	}
	if err != nil {
		return err
	}
	if sig == sigGoto {
		return fmt.Errorf("interp: unresolved GOTO %d", f.gotoTarget)
	}
	return nil
}

// newFrame creates an activation of unit, binding formals to the
// caller-evaluated bindings.
func (m *Machine) newFrame(u *fortran.Unit, argCells []*cell, argArrays []*array) (*frame, error) {
	f := &frame{m: m, unit: u,
		scalars: make(map[*fortran.Symbol]*cell),
		arrays:  make(map[*fortran.Symbol]*array),
	}
	for i, formal := range u.Args {
		switch formal.Kind {
		case fortran.SymScalar:
			if i < len(argCells) && argCells[i] != nil {
				f.scalars[formal] = argCells[i]
			} else {
				return nil, fmt.Errorf("interp: %s: argument %d: scalar binding missing", u.Name, i+1)
			}
		case fortran.SymArray:
			if i < len(argArrays) && argArrays[i] != nil {
				f.arrays[formal] = argArrays[i]
			} else {
				return nil, fmt.Errorf("interp: %s: argument %d: array binding missing", u.Name, i+1)
			}
		}
	}
	// Locals, commons, parameters.
	for _, sym := range u.SymbolsSorted() {
		if sym.Dummy {
			continue
		}
		switch sym.Kind {
		case fortran.SymScalar:
			if sym.Common != "" {
				f.scalars[sym] = m.commonCell(sym)
			} else {
				c := &cell{v: zeroOf(sym.Type)}
				if sym.Value != nil {
					v, err := f.eval(sym.Value)
					if err == nil {
						c.v = convert(v, sym.Type)
					}
				}
				f.scalars[sym] = c
			}
		case fortran.SymArray:
			if sym.Common != "" {
				a, err := m.commonArray(f, sym)
				if err != nil {
					return nil, err
				}
				f.arrays[sym] = a
			} else {
				a, err := f.makeArray(sym)
				if err != nil {
					return nil, err
				}
				f.arrays[sym] = a
			}
		}
	}
	return f, nil
}

func zeroOf(t fortran.Type) Value {
	switch t {
	case fortran.TypeInteger:
		return IntVal(0)
	case fortran.TypeLogical:
		return LogVal(false)
	case fortran.TypeCharacter:
		return Value{Type: fortran.TypeCharacter}
	case fortran.TypeDouble:
		return DoubleVal(0)
	default:
		return RealVal(0)
	}
}

func (m *Machine) commonCell(sym *fortran.Symbol) *cell {
	m.mu.Lock()
	defer m.mu.Unlock()
	key := sym.Common + "/" + sym.Name
	if c, ok := m.commons[key]; ok {
		return c
	}
	c := &cell{v: zeroOf(sym.Type)}
	m.commons[key] = c
	return c
}

func (m *Machine) commonArray(f *frame, sym *fortran.Symbol) (*array, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	key := sym.Common + "/" + sym.Name
	if a, ok := m.commonA[key]; ok {
		return a, nil
	}
	a, err := f.makeArray(sym)
	if err != nil {
		return nil, err
	}
	m.commonA[key] = a
	return a, nil
}

func (f *frame) makeArray(sym *fortran.Symbol) (*array, error) {
	a := &array{sym: sym}
	for _, d := range sym.Dims {
		lo := int64(1)
		if d.Lo != nil {
			v, err := f.eval(d.Lo)
			if err != nil {
				return nil, fmt.Errorf("interp: %s: bad lower bound: %v", sym.Name, err)
			}
			lo = v.Int()
		}
		if d.Hi == nil {
			return nil, fmt.Errorf("interp: %s: assumed-size array needs a caller binding", sym.Name)
		}
		v, err := f.eval(d.Hi)
		if err != nil {
			return nil, fmt.Errorf("interp: %s: bad upper bound: %v", sym.Name, err)
		}
		hi := v.Int()
		if hi < lo {
			return nil, fmt.Errorf("interp: %s: extent [%d,%d] empty", sym.Name, lo, hi)
		}
		a.lo = append(a.lo, lo)
		a.ext = append(a.ext, hi-lo+1)
	}
	zero := zeroOf(sym.Type)
	a.data = make([]Value, a.size())
	for i := range a.data {
		a.data[i] = zero
	}
	return a, nil
}

// ---------------------------------------------------------------------------
// Statement execution

func (f *frame) execBody(body []fortran.Stmt) (signal, error) {
	i := 0
	for i < len(body) {
		s := body[i]
		sig, err := f.exec(s)
		if err != nil {
			return sigNormal, err
		}
		switch sig {
		case sigNormal:
			i++
		case sigGoto:
			// Resolve within this body; otherwise propagate.
			found := -1
			for j, cand := range body {
				if fortran.StmtLabel(cand) == f.gotoTarget {
					found = j
					break
				}
			}
			if found < 0 {
				return sigGoto, nil
			}
			i = found
		default:
			return sig, nil
		}
	}
	return sigNormal, nil
}

func (f *frame) exec(s fortran.Stmt) (signal, error) {
	f.localStmts++
	f.cycles++
	if f.localStmts >= 8192 {
		if err := f.flushStmts(); err != nil {
			return sigNormal, err
		}
	}
	switch st := s.(type) {
	case *fortran.AssignStmt:
		return sigNormal, f.assign(st)
	case *fortran.IfStmt:
		cond, err := f.eval(st.Cond)
		if err != nil {
			return sigNormal, err
		}
		if cond.Bool() {
			return f.execBody(st.Then)
		}
		return f.execBody(st.Else)
	case *fortran.DoStmt:
		return f.execDo(st)
	case *fortran.WhileStmt:
		for {
			if err := f.m.cancelled(); err != nil {
				return sigNormal, err
			}
			cond, err := f.eval(st.Cond)
			if err != nil {
				return sigNormal, err
			}
			if !cond.Bool() {
				return sigNormal, nil
			}
			sig, err := f.execBody(st.Body)
			if err != nil || sig != sigNormal {
				return sig, err
			}
		}
	case *fortran.CallStmt:
		return sigNormal, f.call(st)
	case *fortran.ReturnStmt:
		return sigReturn, nil
	case *fortran.StopStmt:
		return sigStop, nil
	case *fortran.ContinueStmt:
		return sigNormal, nil
	case *fortran.GotoStmt:
		f.gotoTarget = st.Target
		return sigGoto, nil
	case *fortran.PrintStmt:
		if f.m.Out == nil {
			// Still evaluate for side effects (function calls).
			for _, it := range st.Items {
				if _, err := f.eval(it); err != nil {
					return sigNormal, err
				}
			}
			return sigNormal, nil
		}
		parts := make([]string, 0, len(st.Items))
		for _, it := range st.Items {
			v, err := f.eval(it)
			if err != nil {
				return sigNormal, err
			}
			parts = append(parts, v.String())
		}
		if _, err := io.WriteString(f.m.Out, runfmt.Line(parts)); err != nil {
			// A tripped output cap surfaces here and stops the run.
			return sigNormal, err
		}
		return sigNormal, nil
	case *fortran.ReadStmt:
		for _, it := range st.Items {
			vr, ok := it.(*fortran.VarRef)
			if !ok || vr.Sym == nil {
				return sigNormal, fmt.Errorf("interp: READ target must be a variable")
			}
			var raw float64
			if f.m.inputPos < len(f.m.Input) {
				raw = f.m.Input[f.m.inputPos]
				f.m.inputPos++
			}
			v := RealVal(raw)
			if vr.Sym.Type == fortran.TypeInteger {
				v = IntVal(int64(raw))
			}
			if err := f.store(vr, v); err != nil {
				return sigNormal, err
			}
		}
		return sigNormal, nil
	}
	return sigNormal, fmt.Errorf("interp: cannot execute %T", s)
}

func (f *frame) assign(st *fortran.AssignStmt) error {
	v, err := f.eval(st.Rhs)
	if err != nil {
		return err
	}
	return f.store(st.Lhs, v)
}

func (f *frame) store(ref *fortran.VarRef, v Value) error {
	sym := ref.Sym
	if sym == nil {
		return fmt.Errorf("interp: unresolved reference %s", ref.Name)
	}
	if sym.IsArray() && len(ref.Subs) > 0 {
		a := f.arrays[sym]
		if a == nil {
			return fmt.Errorf("interp: array %s has no storage", sym.Name)
		}
		subs := make([]int64, len(ref.Subs))
		for i, e := range ref.Subs {
			sv, err := f.eval(e)
			if err != nil {
				return err
			}
			subs[i] = sv.Int()
		}
		off, err := a.index(subs)
		if err != nil {
			return err
		}
		a.data[off] = convert(v, sym.Type)
		return nil
	}
	c := f.scalars[sym]
	if c == nil {
		return fmt.Errorf("interp: scalar %s has no storage", sym.Name)
	}
	c.v = convert(v, sym.Type)
	return nil
}

// ---------------------------------------------------------------------------
// DO loops: sequential and parallel

func (f *frame) loopControl(st *fortran.DoStmt) (lo, hi, step, trip int64, err error) {
	lov, err := f.eval(st.Lo)
	if err != nil {
		return
	}
	hiv, err := f.eval(st.Hi)
	if err != nil {
		return
	}
	step = 1
	if st.Step != nil {
		var sv Value
		sv, err = f.eval(st.Step)
		if err != nil {
			return
		}
		step = sv.Int()
	}
	if step == 0 {
		err = fmt.Errorf("interp: zero DO step")
		return
	}
	lo, hi = lov.Int(), hiv.Int()
	trip = (hi - lo + step) / step
	if trip < 0 {
		trip = 0
	}
	return
}

func (f *frame) execDo(st *fortran.DoStmt) (signal, error) {
	lo, _, step, trip, err := f.loopControl(st)
	if err != nil {
		return sigNormal, err
	}
	if st.Parallel && trip > 1 {
		return f.execDoall(st, lo, step, trip)
	}
	ivar := f.scalars[st.Var]
	if ivar == nil {
		return sigNormal, fmt.Errorf("interp: loop variable %s has no storage", st.Var.Name)
	}
	v := lo
	for n := int64(0); n < trip; n++ {
		if err := f.m.cancelled(); err != nil {
			return sigNormal, err
		}
		ivar.v = IntVal(v)
		sig, err := f.execBody(st.Body)
		if err != nil {
			return sigNormal, err
		}
		switch sig {
		case sigNormal:
		case sigGoto:
			// A goto out of the loop propagates; a goto to the loop's
			// own terminator label means "next iteration" and was
			// already resolved inside execBody when the label exists.
			return sigGoto, nil
		default:
			return sig, nil
		}
		v += step
	}
	ivar.v = IntVal(v)
	return sigNormal, nil
}

// execDoall runs the loop's iterations on worker goroutines. Private
// scalars (including the loop variable) get per-worker storage;
// reductions accumulate per worker and combine at the barrier.
func (f *frame) execDoall(st *fortran.DoStmt, lo, step, trip int64) (signal, error) {
	atomic.AddInt64(&f.m.ParallelLoopsRun, 1)
	workers := f.m.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if int64(workers) > trip {
		workers = int(trip)
	}
	type redAcc struct {
		red  fortran.Reduction
		vals []Value
	}
	reds := make([]redAcc, len(st.Reductions))
	for i, r := range st.Reductions {
		reds[i] = redAcc{red: r, vals: make([]Value, workers)}
	}
	errs := make([]error, workers)
	workerCycles := make([]int64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Per-worker frame: same storage except private variables.
			wf := &frame{m: f.m, unit: f.unit,
				scalars: make(map[*fortran.Symbol]*cell, len(f.scalars)),
				arrays:  f.arrays}
			for sym, c := range f.scalars {
				wf.scalars[sym] = c
			}
			arraysCloned := false
			for _, p := range st.Private {
				switch p.Kind {
				case fortran.SymScalar:
					wf.scalars[p] = &cell{v: zeroOf(p.Type)}
				case fortran.SymArray:
					// Private work array: fresh zeroed storage with
					// the shared array's shape (safe because array
					// privatization requires a kill before any use).
					shared := f.arrays[p]
					if shared == nil {
						break
					}
					if !arraysCloned {
						wf.arrays = make(map[*fortran.Symbol]*array, len(f.arrays))
						for k, v := range f.arrays {
							wf.arrays[k] = v
						}
						arraysCloned = true
					}
					priv := &array{sym: p,
						lo:   append([]int64(nil), shared.lo...),
						ext:  append([]int64(nil), shared.ext...),
						data: make([]Value, shared.size())}
					zero := zeroOf(p.Type)
					for i := range priv.data {
						priv.data[i] = zero
					}
					wf.arrays[p] = priv
				}
			}
			if wf.scalars[st.Var] == f.scalars[st.Var] {
				wf.scalars[st.Var] = &cell{v: zeroOf(st.Var.Type)}
			}
			// Reduction variables start at the identity per worker.
			for ri, ra := range reds {
				ident := reductionIdentity(ra.red)
				wf.scalars[ra.red.Sym] = &cell{v: ident}
				_ = ri
			}
			// Block-cyclic assignment of iterations.
			for n := int64(w); n < trip; n += int64(workers) {
				if err := f.m.cancelled(); err != nil {
					errs[w] = err
					return
				}
				wf.scalars[st.Var].v = IntVal(lo + n*step)
				sig, err := wf.execBody(st.Body)
				if err != nil {
					errs[w] = err
					return
				}
				if sig != sigNormal {
					errs[w] = fmt.Errorf("interp: control flow escaping a parallel loop")
					return
				}
			}
			for ri := range reds {
				reds[ri].vals[w] = wf.scalars[reds[ri].red.Sym].v
			}
			workerCycles[w] = wf.cycles
			errs[w] = wf.flushStmts()
		}(w)
	}
	wg.Wait()
	// Simulated time: the critical path is the slowest worker, plus
	// the fork/join overhead.
	fork := f.m.ForkCost
	if fork == 0 {
		fork = 100
	}
	maxCycles := int64(0)
	for _, c := range workerCycles {
		if c > maxCycles {
			maxCycles = c
		}
	}
	f.cycles += fork + maxCycles
	for _, err := range errs {
		if err != nil {
			return sigNormal, err
		}
	}
	// Combine reductions into the shared accumulators.
	for _, ra := range reds {
		c := f.scalars[ra.red.Sym]
		acc := c.v
		for _, v := range ra.vals {
			acc = combineReduction(ra.red, acc, v)
		}
		c.v = acc
	}
	// Final loop variable value, as the sequential loop would leave it.
	if c := f.scalars[st.Var]; c != nil {
		c.v = IntVal(lo + trip*step)
	}
	return sigNormal, nil
}

func reductionIdentity(r fortran.Reduction) Value {
	t := r.Sym.Type
	switch {
	case r.OpName == "max":
		if t == fortran.TypeInteger {
			return IntVal(math.MinInt64)
		}
		return Value{Type: t, R: math.Inf(-1)}
	case r.OpName == "min":
		if t == fortran.TypeInteger {
			return IntVal(math.MaxInt64)
		}
		return Value{Type: t, R: math.Inf(1)}
	case r.Op == fortran.TokStar:
		if t == fortran.TypeInteger {
			return IntVal(1)
		}
		return Value{Type: t, R: 1}
	default: // sum
		return zeroOf(t)
	}
}

func combineReduction(r fortran.Reduction, a, b Value) Value {
	t := r.Sym.Type
	switch {
	case r.OpName == "max":
		if t == fortran.TypeInteger {
			if b.Int() > a.Int() {
				return b
			}
			return a
		}
		if b.Float() > a.Float() {
			return convert(b, t)
		}
		return convert(a, t)
	case r.OpName == "min":
		if t == fortran.TypeInteger {
			if b.Int() < a.Int() {
				return b
			}
			return a
		}
		if b.Float() < a.Float() {
			return convert(b, t)
		}
		return convert(a, t)
	case r.Op == fortran.TokStar:
		if t == fortran.TypeInteger {
			return IntVal(a.Int() * b.Int())
		}
		return Value{Type: t, R: a.Float() * b.Float()}
	default:
		if t == fortran.TypeInteger {
			return IntVal(a.Int() + b.Int())
		}
		return Value{Type: t, R: a.Float() + b.Float()}
	}
}

// ---------------------------------------------------------------------------
// Calls

func (f *frame) call(st *fortran.CallStmt) error {
	callee := st.Callee
	if callee == nil {
		return fmt.Errorf("interp: call to unknown subroutine %s", st.Name)
	}
	cells, arrays, err := f.bindArgs(callee, st.Args)
	if err != nil {
		return err
	}
	nf, err := f.m.newFrame(callee, cells, arrays)
	if err != nil {
		return err
	}
	sig, err := nf.execBody(callee.Body)
	// Fold the callee's batched count into the caller's, avoiding a
	// shared-counter flush per call.
	f.localStmts += nf.localStmts
	f.cycles += nf.cycles
	if err != nil {
		return err
	}
	if sig == sigStop {
		return fmt.Errorf("interp: STOP inside subroutine %s", callee.Name)
	}
	return nil
}

// bindArgs evaluates actuals into reference bindings. Scalars passed
// as variables share storage (by reference); expression actuals get
// fresh cells.
func (f *frame) bindArgs(callee *fortran.Unit, args []fortran.Expr) ([]*cell, []*array, error) {
	cells := make([]*cell, len(args))
	arrays := make([]*array, len(args))
	for i, a := range args {
		if i >= len(callee.Args) {
			break
		}
		formal := callee.Args[i]
		if vr, ok := a.(*fortran.VarRef); ok && vr.Sym != nil {
			switch {
			case vr.Sym.IsArray() && len(vr.Subs) == 0:
				arrays[i] = f.arrays[vr.Sym]
				continue
			case vr.Sym.IsArray() && len(vr.Subs) > 0 && formal.Kind == fortran.SymArray:
				// Array element passed where an array is expected:
				// alias the tail of the storage (sequence association).
				base := f.arrays[vr.Sym]
				subs := make([]int64, len(vr.Subs))
				for k, e := range vr.Subs {
					sv, err := f.eval(e)
					if err != nil {
						return nil, nil, err
					}
					subs[k] = sv.Int()
				}
				off, err := base.index(subs)
				if err != nil {
					return nil, nil, err
				}
				arrays[i] = &array{sym: formal, lo: []int64{1},
					ext: []int64{base.size() - off}, data: base.data[off:]}
				continue
			case !vr.Sym.IsArray() && len(vr.Subs) == 0:
				if c := f.scalars[vr.Sym]; c != nil {
					cells[i] = c
					continue
				}
			}
		}
		v, err := f.eval(a)
		if err != nil {
			return nil, nil, err
		}
		cells[i] = &cell{v: v}
	}
	return cells, arrays, nil
}
