package interp

import (
	"fmt"
	"math"

	"parascope/internal/fortran"
)

func (f *frame) eval(e fortran.Expr) (Value, error) {
	switch x := e.(type) {
	case *fortran.IntLit:
		return IntVal(x.Val), nil
	case *fortran.RealLit:
		if x.Double {
			return DoubleVal(x.Val), nil
		}
		return RealVal(x.Val), nil
	case *fortran.LogLit:
		return LogVal(x.Val), nil
	case *fortran.StrLit:
		return Value{Type: fortran.TypeCharacter, S: x.Val}, nil
	case *fortran.VarRef:
		return f.evalRef(x)
	case *fortran.FuncCall:
		return f.evalCall(x)
	case *fortran.Unary:
		v, err := f.eval(x.X)
		if err != nil {
			return Value{}, err
		}
		switch x.Op {
		case fortran.TokMinus:
			if v.Type == fortran.TypeInteger {
				return IntVal(-v.I), nil
			}
			return Value{Type: v.Type, R: -v.R}, nil
		case fortran.TokNot:
			return LogVal(!v.B), nil
		}
		return v, nil
	case *fortran.Binary:
		return f.evalBinary(x)
	}
	return Value{}, fmt.Errorf("interp: cannot evaluate %T", e)
}

func (f *frame) evalRef(x *fortran.VarRef) (Value, error) {
	sym := x.Sym
	if sym == nil {
		return Value{}, fmt.Errorf("interp: unresolved name %s", x.Name)
	}
	if sym.Kind == fortran.SymParam {
		v, err := f.eval(sym.Value)
		if err != nil {
			return Value{}, err
		}
		return convert(v, sym.Type), nil
	}
	if sym.IsArray() {
		if len(x.Subs) == 0 {
			return Value{}, fmt.Errorf("interp: whole-array reference %s in expression", sym.Name)
		}
		a := f.arrays[sym]
		if a == nil {
			return Value{}, fmt.Errorf("interp: array %s has no storage", sym.Name)
		}
		subs := make([]int64, len(x.Subs))
		for i, e := range x.Subs {
			sv, err := f.eval(e)
			if err != nil {
				return Value{}, err
			}
			subs[i] = sv.Int()
		}
		off, err := a.index(subs)
		if err != nil {
			return Value{}, err
		}
		return a.data[off], nil
	}
	c := f.scalars[sym]
	if c == nil {
		return Value{}, fmt.Errorf("interp: scalar %s has no storage", sym.Name)
	}
	return c.v, nil
}

func (f *frame) evalBinary(x *fortran.Binary) (Value, error) {
	a, err := f.eval(x.X)
	if err != nil {
		return Value{}, err
	}
	// Short-circuit logicals (Fortran does not require it, but it is
	// compatible and faster).
	switch x.Op {
	case fortran.TokAnd:
		if !a.B {
			return LogVal(false), nil
		}
		b, err := f.eval(x.Y)
		return LogVal(a.B && b.B), err
	case fortran.TokOr:
		if a.B {
			return LogVal(true), nil
		}
		b, err := f.eval(x.Y)
		return LogVal(a.B || b.B), err
	}
	b, err := f.eval(x.Y)
	if err != nil {
		return Value{}, err
	}
	bothInt := a.Type == fortran.TypeInteger && b.Type == fortran.TypeInteger
	switch x.Op {
	case fortran.TokPlus:
		if bothInt {
			return IntVal(a.I + b.I), nil
		}
		return numeric(a, b, a.Float()+b.Float()), nil
	case fortran.TokMinus:
		if bothInt {
			return IntVal(a.I - b.I), nil
		}
		return numeric(a, b, a.Float()-b.Float()), nil
	case fortran.TokStar:
		if bothInt {
			return IntVal(a.I * b.I), nil
		}
		return numeric(a, b, a.Float()*b.Float()), nil
	case fortran.TokSlash:
		if bothInt {
			if b.I == 0 {
				return Value{}, fmt.Errorf("interp: integer division by zero")
			}
			return IntVal(a.I / b.I), nil
		}
		return numeric(a, b, a.Float()/b.Float()), nil
	case fortran.TokPower:
		if bothInt && b.I >= 0 {
			r := int64(1)
			for k := int64(0); k < b.I; k++ {
				r *= a.I
			}
			return IntVal(r), nil
		}
		return numeric(a, b, math.Pow(a.Float(), b.Float())), nil
	case fortran.TokLt:
		return compare(a, b, func(c int) bool { return c < 0 }), nil
	case fortran.TokLe:
		return compare(a, b, func(c int) bool { return c <= 0 }), nil
	case fortran.TokGt:
		return compare(a, b, func(c int) bool { return c > 0 }), nil
	case fortran.TokGe:
		return compare(a, b, func(c int) bool { return c >= 0 }), nil
	case fortran.TokEqEq:
		return compare(a, b, func(c int) bool { return c == 0 }), nil
	case fortran.TokNe:
		return compare(a, b, func(c int) bool { return c != 0 }), nil
	case fortran.TokConcat:
		return Value{Type: fortran.TypeCharacter, S: a.S + b.S}, nil
	}
	return Value{}, fmt.Errorf("interp: unknown operator %v", x.Op)
}

func numeric(a, b Value, r float64) Value {
	t := fortran.TypeReal
	if a.Type == fortran.TypeDouble || b.Type == fortran.TypeDouble {
		t = fortran.TypeDouble
	}
	return Value{Type: t, R: r}
}

func compare(a, b Value, ok func(int) bool) Value {
	var c int
	if a.Type == fortran.TypeInteger && b.Type == fortran.TypeInteger {
		switch {
		case a.I < b.I:
			c = -1
		case a.I > b.I:
			c = 1
		}
	} else if a.Type == fortran.TypeCharacter || b.Type == fortran.TypeCharacter {
		switch {
		case a.S < b.S:
			c = -1
		case a.S > b.S:
			c = 1
		}
	} else {
		af, bf := a.Float(), b.Float()
		switch {
		case af < bf:
			c = -1
		case af > bf:
			c = 1
		}
	}
	return LogVal(ok(c))
}

func (f *frame) evalCall(x *fortran.FuncCall) (Value, error) {
	if x.Callee != nil {
		return f.userFunc(x)
	}
	args := make([]Value, len(x.Args))
	for i, a := range x.Args {
		v, err := f.eval(a)
		if err != nil {
			return Value{}, err
		}
		args[i] = v
	}
	return intrinsic(x.Name, args)
}

func (f *frame) userFunc(x *fortran.FuncCall) (Value, error) {
	callee := x.Callee
	cells, arrays, err := f.bindArgs(callee, x.Args)
	if err != nil {
		return Value{}, err
	}
	nf, err := f.m.newFrame(callee, cells, arrays)
	if err != nil {
		return Value{}, err
	}
	sig, err := nf.execBody(callee.Body)
	f.localStmts += nf.localStmts
	if err != nil {
		return Value{}, err
	}
	if sig == sigStop {
		return Value{}, fmt.Errorf("interp: STOP inside function %s", callee.Name)
	}
	ret := callee.Lookup(callee.Name)
	if ret == nil || nf.scalars[ret] == nil {
		return Value{}, fmt.Errorf("interp: function %s never set its result", callee.Name)
	}
	return nf.scalars[ret].v, nil
}

func intrinsic(name string, args []Value) (Value, error) {
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("interp: %s expects %d args, got %d", name, n, len(args))
		}
		return nil
	}
	one := func(fn func(float64) float64) (Value, error) {
		if err := need(1); err != nil {
			return Value{}, err
		}
		t := args[0].Type
		if t == fortran.TypeInteger {
			t = fortran.TypeReal
		}
		return Value{Type: t, R: fn(args[0].Float())}, nil
	}
	switch name {
	case "abs":
		if err := need(1); err != nil {
			return Value{}, err
		}
		if args[0].Type == fortran.TypeInteger {
			v := args[0].I
			if v < 0 {
				v = -v
			}
			return IntVal(v), nil
		}
		return Value{Type: args[0].Type, R: math.Abs(args[0].R)}, nil
	case "iabs":
		if err := need(1); err != nil {
			return Value{}, err
		}
		v := args[0].Int()
		if v < 0 {
			v = -v
		}
		return IntVal(v), nil
	case "sqrt":
		return one(math.Sqrt)
	case "exp":
		return one(math.Exp)
	case "log":
		return one(math.Log)
	case "log10":
		return one(math.Log10)
	case "sin":
		return one(math.Sin)
	case "cos":
		return one(math.Cos)
	case "tan":
		return one(math.Tan)
	case "atan":
		return one(math.Atan)
	case "asin":
		return one(math.Asin)
	case "acos":
		return one(math.Acos)
	case "sinh":
		return one(math.Sinh)
	case "cosh":
		return one(math.Cosh)
	case "tanh":
		return one(math.Tanh)
	case "atan2":
		if err := need(2); err != nil {
			return Value{}, err
		}
		return RealVal(math.Atan2(args[0].Float(), args[1].Float())), nil
	case "max", "amax1", "max0":
		return minMax(name, args, true)
	case "min", "amin1", "min0":
		return minMax(name, args, false)
	case "mod", "amod":
		if err := need(2); err != nil {
			return Value{}, err
		}
		if args[0].Type == fortran.TypeInteger && args[1].Type == fortran.TypeInteger {
			if args[1].I == 0 {
				return Value{}, fmt.Errorf("interp: mod by zero")
			}
			return IntVal(args[0].I % args[1].I), nil
		}
		return RealVal(math.Mod(args[0].Float(), args[1].Float())), nil
	case "sign":
		if err := need(2); err != nil {
			return Value{}, err
		}
		mag := math.Abs(args[0].Float())
		if args[1].Float() < 0 {
			mag = -mag
		}
		if args[0].Type == fortran.TypeInteger {
			return IntVal(int64(mag)), nil
		}
		return Value{Type: args[0].Type, R: mag}, nil
	case "dim":
		if err := need(2); err != nil {
			return Value{}, err
		}
		d := args[0].Float() - args[1].Float()
		if d < 0 {
			d = 0
		}
		if args[0].Type == fortran.TypeInteger {
			return IntVal(int64(d)), nil
		}
		return Value{Type: args[0].Type, R: d}, nil
	case "int", "ifix", "nint":
		if err := need(1); err != nil {
			return Value{}, err
		}
		v := args[0].Float()
		if name == "nint" {
			return IntVal(int64(math.Round(v))), nil
		}
		return IntVal(int64(v)), nil
	case "real", "float", "sngl":
		if err := need(1); err != nil {
			return Value{}, err
		}
		return RealVal(args[0].Float()), nil
	case "dble":
		if err := need(1); err != nil {
			return Value{}, err
		}
		return DoubleVal(args[0].Float()), nil
	}
	return Value{}, fmt.Errorf("interp: unknown intrinsic %s", name)
}

func minMax(name string, args []Value, wantMax bool) (Value, error) {
	if len(args) < 2 {
		return Value{}, fmt.Errorf("interp: %s needs at least 2 args", name)
	}
	allInt := true
	for _, a := range args {
		if a.Type != fortran.TypeInteger {
			allInt = false
		}
	}
	if name == "max0" || name == "min0" {
		allInt = true
	}
	if name == "amax1" || name == "amin1" {
		allInt = false
	}
	if allInt {
		best := args[0].Int()
		for _, a := range args[1:] {
			v := a.Int()
			if (wantMax && v > best) || (!wantMax && v < best) {
				best = v
			}
		}
		return IntVal(best), nil
	}
	best := args[0].Float()
	for _, a := range args[1:] {
		v := a.Float()
		if (wantMax && v > best) || (!wantMax && v < best) {
			best = v
		}
	}
	return RealVal(best), nil
}
