// Package interp executes parsed Fortran programs. It provides the
// execution substrate the original ParaScope work ran on shared-
// memory multiprocessors: sequential semantics for validation, and a
// goroutine-backed parallel executor for loops the editor marked
// DOALL, with private variables and reductions. The interpreter is
// used both to check that transformations preserve program meaning
// and to measure parallel speedups for the evaluation harness.
package interp

import (
	"fmt"

	"parascope/internal/codegen/runfmt"
	"parascope/internal/fortran"
)

// Value is one scalar runtime value.
type Value struct {
	Type fortran.Type
	I    int64
	R    float64
	B    bool
	S    string
}

// IntVal makes an integer value.
func IntVal(v int64) Value { return Value{Type: fortran.TypeInteger, I: v} }

// RealVal makes a real value.
func RealVal(v float64) Value { return Value{Type: fortran.TypeReal, R: v} }

// DoubleVal makes a double-precision value.
func DoubleVal(v float64) Value { return Value{Type: fortran.TypeDouble, R: v} }

// LogVal makes a logical value.
func LogVal(v bool) Value { return Value{Type: fortran.TypeLogical, B: v} }

// Float returns the value as float64.
func (v Value) Float() float64 {
	if v.Type == fortran.TypeInteger {
		return float64(v.I)
	}
	return v.R
}

// Int returns the value as int64 (reals truncate, as in Fortran
// assignment to INTEGER).
func (v Value) Int() int64 {
	if v.Type == fortran.TypeInteger {
		return v.I
	}
	return int64(v.R)
}

// Bool returns the logical value.
func (v Value) Bool() bool { return v.B }

// String formats the value for list-directed output. The formatting
// itself lives in runfmt, shared with the compiled backend so both
// produce byte-identical records.
func (v Value) String() string {
	switch v.Type {
	case fortran.TypeInteger:
		return runfmt.Int(v.I)
	case fortran.TypeLogical:
		return runfmt.Logical(v.B)
	case fortran.TypeCharacter:
		return v.S
	default:
		return runfmt.Real(v.R)
	}
}

// convert coerces a value to the target type, following Fortran
// assignment conversion rules.
func convert(v Value, t fortran.Type) Value {
	if v.Type == t || t == fortran.TypeUnknown {
		return v
	}
	switch t {
	case fortran.TypeInteger:
		return IntVal(v.Int())
	case fortran.TypeReal:
		return Value{Type: fortran.TypeReal, R: v.Float()}
	case fortran.TypeDouble:
		return Value{Type: fortran.TypeDouble, R: v.Float()}
	case fortran.TypeLogical:
		return LogVal(v.B)
	case fortran.TypeCharacter:
		return Value{Type: fortran.TypeCharacter, S: v.S}
	}
	return v
}

// cell is one storage location (scalar). Sharing cells implements
// Fortran's by-reference argument passing.
type cell struct {
	v Value
}

// array is the storage of one array variable.
type array struct {
	sym  *fortran.Symbol
	lo   []int64 // per-dim lower bound
	ext  []int64 // per-dim extent
	data []Value
}

func (a *array) size() int64 {
	n := int64(1)
	for _, e := range a.ext {
		n *= e
	}
	return n
}

// index computes the column-major linear offset of the subscripts.
func (a *array) index(subs []int64) (int64, error) {
	if len(subs) != len(a.ext) {
		// Fortran allows linearized access to multi-d arrays through
		// a single subscript in some legacy code; support 1-sub form.
		if len(subs) == 1 {
			off := subs[0] - a.lo[0]
			if off < 0 || off >= a.size() {
				return 0, fmt.Errorf("subscript %d out of bounds for %s", subs[0], a.sym.Name)
			}
			return off, nil
		}
		return 0, fmt.Errorf("%s: %d subscripts for %d dims", a.sym.Name, len(subs), len(a.ext))
	}
	var off, stride int64 = 0, 1
	for d := 0; d < len(subs); d++ {
		i := subs[d] - a.lo[d]
		if i < 0 || i >= a.ext[d] {
			return 0, fmt.Errorf("%s: subscript %d (dim %d) out of bounds [%d,%d]",
				a.sym.Name, subs[d], d+1, a.lo[d], a.lo[d]+a.ext[d]-1)
		}
		off += i * stride
		stride *= a.ext[d]
	}
	return off, nil
}
