package interp

import (
	"strings"
	"testing"

	"parascope/internal/dep"
	"parascope/internal/fortran"
	"parascope/internal/xform"
)

func run(t *testing.T, src string, workers int, input ...float64) string {
	t.Helper()
	f, err := fortran.Parse("t.f", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	out, err := RunCapture(f, workers, input)
	if err != nil {
		t.Fatalf("Run: %v\noutput so far:\n%s", err, out)
	}
	return out
}

func TestArithmetic(t *testing.T) {
	out := run(t, `
      program main
      integer i
      real x
      i = 7/2
      x = 7.0/2.0
      print *, i, x, 2**10, mod(17, 5)
      print *, abs(-3), abs(-3.5), max(1, 2, 3), min(4.0, 2.0)
      end
`, 1)
	want := "3 3.5 1024 2\n3 3.5 3 2\n"
	if out != want {
		t.Errorf("got %q, want %q", out, want)
	}
}

func TestLoopAndArray(t *testing.T) {
	out := run(t, `
      program main
      integer i
      real a(10), s
      s = 0.0
      do i = 1, 10
         a(i) = real(i)
      enddo
      do i = 1, 10
         s = s + a(i)
      enddo
      print *, s
      end
`, 1)
	if strings.TrimSpace(out) != "55" {
		t.Errorf("got %q, want 55", out)
	}
}

func TestTwoDimensionalColumnMajor(t *testing.T) {
	out := run(t, `
      program main
      integer i, j
      real a(3,3), s
      do j = 1, 3
         do i = 1, 3
            a(i,j) = real(i + 10*j)
         enddo
      enddo
      s = a(2,3)
      print *, s
      end
`, 1)
	if strings.TrimSpace(out) != "32" {
		t.Errorf("got %q, want 32", out)
	}
}

func TestIfElseChain(t *testing.T) {
	out := run(t, `
      program main
      integer i, k
      k = 0
      do i = 1, 5
         if (i .lt. 2) then
            k = k + 100
         else if (i .lt. 4) then
            k = k + 10
         else
            k = k + 1
         endif
      enddo
      print *, k
      end
`, 1)
	if strings.TrimSpace(out) != "122" {
		t.Errorf("got %q, want 122", out)
	}
}

func TestSubroutineByReference(t *testing.T) {
	out := run(t, `
      program main
      real x
      x = 1.0
      call bump(x)
      call bump(x)
      print *, x
      end
      subroutine bump(v)
      real v
      v = v + 1.0
      end
`, 1)
	if strings.TrimSpace(out) != "3" {
		t.Errorf("got %q, want 3", out)
	}
}

func TestFunctionCall(t *testing.T) {
	out := run(t, `
      program main
      real area, r
      r = 2.0
      print *, area(r)
      end
      real function area(x)
      real x
      area = 3.0*x*x
      end
`, 1)
	if strings.TrimSpace(out) != "12" {
		t.Errorf("got %q, want 12", out)
	}
}

func TestArrayArgumentAliasing(t *testing.T) {
	out := run(t, `
      program main
      integer i
      real a(5)
      do i = 1, 5
         a(i) = 0.0
      enddo
      call fill(a, 5)
      print *, a(1), a(5)
      end
      subroutine fill(x, n)
      integer n, k
      real x(n)
      do k = 1, n
         x(k) = real(k)*2.0
      enddo
      end
`, 1)
	if strings.TrimSpace(out) != "2 10" {
		t.Errorf("got %q, want 2 10", out)
	}
}

func TestCommonStorage(t *testing.T) {
	out := run(t, `
      program main
      real s
      common /acc/ s
      s = 1.0
      call add2
      print *, s
      end
      subroutine add2
      real s
      common /acc/ s
      s = s + 2.0
      end
`, 1)
	if strings.TrimSpace(out) != "3" {
		t.Errorf("got %q, want 3", out)
	}
}

func TestGotoLoop(t *testing.T) {
	out := run(t, `
      program main
      integer i
      i = 0
 10   continue
      i = i + 1
      if (i .lt. 5) goto 10
      print *, i
      end
`, 1)
	if strings.TrimSpace(out) != "5" {
		t.Errorf("got %q, want 5", out)
	}
}

func TestDoWhile(t *testing.T) {
	out := run(t, `
      program main
      integer i
      i = 1
      do while (i .lt. 100)
         i = i*2
      enddo
      print *, i
      end
`, 1)
	if strings.TrimSpace(out) != "128" {
		t.Errorf("got %q, want 128", out)
	}
}

func TestReadInput(t *testing.T) {
	out := run(t, `
      program main
      integer n
      real x
      read(*,*) n, x
      print *, n*2, x*3.0
      end
`, 1, 21, 1.5)
	if strings.TrimSpace(out) != "42 4.5" {
		t.Errorf("got %q, want 42 4.5", out)
	}
}

func TestNegativeStepLoop(t *testing.T) {
	out := run(t, `
      program main
      integer i, k
      k = 0
      do i = 10, 1, -2
         k = k + i
      enddo
      print *, k
      end
`, 1)
	if strings.TrimSpace(out) != "30" {
		t.Errorf("got %q, want 30", out)
	}
}

func TestZeroTripLoop(t *testing.T) {
	out := run(t, `
      program main
      integer i, k
      k = 7
      do i = 5, 1
         k = 0
      enddo
      print *, k, i
      end
`, 1)
	if strings.TrimSpace(out) != "7 5" {
		t.Errorf("got %q, want 7 5 (zero-trip leaves var at lo)", out)
	}
}

func TestParameterAndData(t *testing.T) {
	out := run(t, `
      program main
      integer n
      real pi
      parameter (n = 6)
      data pi /3.25/
      print *, n*2, pi
      end
`, 1)
	if strings.TrimSpace(out) != "12 3.25" {
		t.Errorf("got %q", out)
	}
}

// parallelRun marks the loop parallel via the transformation engine,
// then executes with several workers.
func parallelRun(t *testing.T, src string, workers int) (string, string) {
	t.Helper()
	seq, err := fortran.Parse("seq.f", src)
	if err != nil {
		t.Fatal(err)
	}
	par, err := fortran.Parse("par.f", src)
	if err != nil {
		t.Fatal(err)
	}
	c := xform.NewContext(par, par.Units[0], nil, nil, nil, dep.DefaultOptions())
	marked := 0
	for _, l := range c.DF.Tree.All {
		tr := xform.Parallelize{Do: l.Do}
		if tr.Check(c).OK() {
			if err := tr.Apply(c); err != nil {
				t.Fatal(err)
			}
			marked++
		}
	}
	if marked == 0 {
		t.Fatal("no loop parallelized")
	}
	seqOut, err := RunCapture(seq, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	parOut, err := RunCapture(par, workers, nil)
	if err != nil {
		t.Fatal(err)
	}
	return seqOut, parOut
}

func TestParallelLoopMatchesSequential(t *testing.T) {
	seqOut, parOut := parallelRun(t, `
      program main
      integer i
      real a(1000), s
      do i = 1, 1000
         a(i) = real(i)*0.5
      enddo
      s = 0.0
      do i = 1, 1000
         s = s + a(i)
      enddo
      print *, s, a(1), a(1000)
      end
`, 4)
	if ok, why := OutputsEquivalent(seqOut, parOut, 1e-9); !ok {
		t.Errorf("parallel output differs: %s\nseq=%q\npar=%q", why, seqOut, parOut)
	}
}

func TestParallelReduction(t *testing.T) {
	seqOut, parOut := parallelRun(t, `
      program main
      integer i
      real s, p, big, a(500)
      do i = 1, 500
         a(i) = real(mod(i, 7)) + 0.5
      enddo
      s = 0.0
      big = -1.0e30
      do i = 1, 500
         s = s + a(i)
         big = max(big, a(i))
      enddo
      print *, s, big
      end
`, 8)
	if ok, why := OutputsEquivalent(seqOut, parOut, 1e-6); !ok {
		t.Errorf("reduction output differs: %s\nseq=%q\npar=%q", why, seqOut, parOut)
	}
}

func TestParallelPrivateScalar(t *testing.T) {
	seqOut, parOut := parallelRun(t, `
      program main
      integer i
      real t, a(300), b(300)
      do i = 1, 300
         a(i) = real(i)
      enddo
      do i = 1, 300
         t = a(i)*2.0
         b(i) = t + 1.0
      enddo
      print *, b(1), b(150), b(300)
      end
`, 4)
	if ok, why := OutputsEquivalent(seqOut, parOut, 1e-9); !ok {
		t.Errorf("private-scalar output differs: %s\nseq=%q\npar=%q", why, seqOut, parOut)
	}
}

func TestParallelLoopCounter(t *testing.T) {
	f, err := fortran.Parse("t.f", `
      program main
      integer i
      real a(100)
      do i = 1, 100
         a(i) = 1.0
      enddo
      print *, a(50)
      end
`)
	if err != nil {
		t.Fatal(err)
	}
	do := f.Units[0].Body[0].(*fortran.DoStmt)
	do.Parallel = true
	do.Private = []*fortran.Symbol{do.Var}
	m := New(f)
	m.Workers = 4
	var sb strings.Builder
	m.Out = &sb
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.ParallelLoopsRun != 1 {
		t.Errorf("ParallelLoopsRun = %d, want 1", m.ParallelLoopsRun)
	}
}

func TestStmtLimit(t *testing.T) {
	f, err := fortran.Parse("t.f", `
      program main
      integer i
      i = 0
      do while (i .lt. 1)
         i = 0
      enddo
      end
`)
	if err != nil {
		t.Fatal(err)
	}
	m := New(f)
	m.StmtLimit = 1000
	if err := m.Run(); err == nil {
		t.Error("infinite loop should hit the statement limit")
	}
}

func TestOutOfBoundsDetected(t *testing.T) {
	f, err := fortran.Parse("t.f", `
      program main
      real a(10)
      a(11) = 1.0
      end
`)
	if err != nil {
		t.Fatal(err)
	}
	m := New(f)
	if err := m.Run(); err == nil || !strings.Contains(err.Error(), "out of bounds") {
		t.Errorf("want out-of-bounds error, got %v", err)
	}
}

func TestOutputsEquivalentTolerance(t *testing.T) {
	if ok, _ := OutputsEquivalent("1.0000000001 foo", "1.0 foo", 1e-6); !ok {
		t.Error("nearby floats should compare equal")
	}
	if ok, _ := OutputsEquivalent("1.1", "1.0", 1e-6); ok {
		t.Error("distant floats should differ")
	}
	if ok, _ := OutputsEquivalent("a b", "a", 1e-6); ok {
		t.Error("different token counts should differ")
	}
}

func TestIntrinsicsTable(t *testing.T) {
	out := run(t, `
      program main
      print *, sqrt(16.0), exp(0.0), log(1.0), log10(100.0)
      print *, sin(0.0), cos(0.0), tan(0.0), atan(0.0)
      print *, atan2(0.0, 1.0), sinh(0.0), cosh(0.0), tanh(0.0)
      print *, asin(0.0), acos(1.0)
      print *, iabs(-5), amax1(1.0, 2.0), amin1(1.0, 2.0)
      print *, max0(3, 7), min0(3, 7), amod(7.5, 2.0)
      print *, sign(3.0, -1.0), sign(3, 1), dim(5.0, 3.0), dim(3.0, 5.0)
      print *, int(3.9), ifix(3.9), nint(3.5), real(7), float(7), sngl(2.5)
      print *, dble(1.5), mod(17, 5)
      end
`, 1)
	want := "4 1 0 2\n0 1 0 0\n0 0 1 0\n0 0\n5 2 1\n7 3 1.5\n-3 3 2 0\n3 3 4 7 7 2.5\n1.5 2\n"
	if out != want {
		t.Errorf("got:\n%q\nwant:\n%q", out, want)
	}
}

func TestIntrinsicVariadicMinMax(t *testing.T) {
	out := run(t, `
      program main
      print *, max(1, 5, 3, 2), min(4.0, 1.0, 9.0)
      end
`, 1)
	if strings.TrimSpace(out) != "5 1" {
		t.Errorf("got %q", out)
	}
}

func TestErrorUnknownSubroutine(t *testing.T) {
	f, err := fortran.Parse("t.f", `
      program main
      call nosuch(1)
      end
`)
	if err != nil {
		t.Fatal(err)
	}
	m := New(f)
	if err := m.Run(); err == nil || !strings.Contains(err.Error(), "unknown subroutine") {
		t.Errorf("err = %v", err)
	}
}

func TestErrorDivisionByZero(t *testing.T) {
	f, err := fortran.Parse("t.f", `
      program main
      integer i, j
      i = 5
      j = i/(i - 5)
      end
`)
	if err != nil {
		t.Fatal(err)
	}
	m := New(f)
	if err := m.Run(); err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Errorf("err = %v", err)
	}
}

func TestLogicalOperators(t *testing.T) {
	out := run(t, `
      program main
      logical p, q
      p = .true.
      q = .false.
      print *, p .and. q, p .or. q, .not. p
      if (p .and. .not. q) print *, 'both'
      end
`, 1)
	if !strings.Contains(out, "F T F") || !strings.Contains(out, "both") {
		t.Errorf("got %q", out)
	}
}

func TestCharacterHandling(t *testing.T) {
	out := run(t, `
      program main
      print *, 'hello' // ' ' // 'world'
      end
`, 1)
	if strings.TrimSpace(out) != "hello world" {
		t.Errorf("got %q", out)
	}
}

func TestDoublePrecision(t *testing.T) {
	out := run(t, `
      program main
      double precision d
      d = 1.5d0
      d = d*2.0d0
      print *, d
      end
`, 1)
	if strings.TrimSpace(out) != "3" {
		t.Errorf("got %q", out)
	}
}

func TestSimulatedCycles(t *testing.T) {
	src := `
      program main
      integer i
      real a(800)
      do i = 1, 800
         a(i) = real(i)
      enddo
      print *, a(400)
      end
`
	f, err := fortran.Parse("t.f", src)
	if err != nil {
		t.Fatal(err)
	}
	_, seqCycles, err := RunCaptureSim(f, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Mark the loop parallel and compare simulated time at 8 workers.
	do := f.Units[0].Body[0].(*fortran.DoStmt)
	do.Parallel = true
	do.Private = []*fortran.Symbol{do.Var}
	_, parCycles, err := RunCaptureSim(f, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(seqCycles) / float64(parCycles)
	// 800 body statements over 8 workers plus 100 fork cycles: ~4x.
	if ratio < 3.5 {
		t.Errorf("simulated speedup = %.2f (seq %d, par %d), want > 4 on 8 workers",
			ratio, seqCycles, parCycles)
	}
}

func TestParallelLoopWithCallsMatches(t *testing.T) {
	// Tests the executor (not the analysis): mark the call loop
	// parallel by hand — section analysis would prove it — and verify
	// per-worker frames bind callee arguments correctly.
	src := `
      program main
      integer i
      real a(200)
      do i = 1, 200
         call setone(a, i)
      enddo
      print *, a(1), a(100), a(200)
      end
      subroutine setone(x, k)
      integer k
      real x(200)
      x(k) = real(k)*0.25
      end
`
	seq := run(t, src, 1)
	f, err := fortran.Parse("p.f", src)
	if err != nil {
		t.Fatal(err)
	}
	do := f.Units[0].Body[0].(*fortran.DoStmt)
	do.Parallel = true
	do.Private = []*fortran.Symbol{do.Var}
	par, err := RunCapture(f, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ok, why := OutputsEquivalent(seq, par, 1e-9); !ok {
		t.Errorf("call-in-parallel-loop differs: %s\nseq %q par %q", why, seq, par)
	}
}

func TestControlFlowEscapingParallelLoop(t *testing.T) {
	f, err := fortran.Parse("t.f", `
      program main
      integer i
      real a(100)
      do i = 1, 100
         a(i) = 1.0
         if (i .eq. 50) goto 99
      enddo
 99   continue
      end
`)
	if err != nil {
		t.Fatal(err)
	}
	do := f.Units[0].Body[0].(*fortran.DoStmt)
	do.Parallel = true
	do.Private = []*fortran.Symbol{do.Var}
	m := New(f)
	m.Workers = 4
	if err := m.Run(); err == nil || !strings.Contains(err.Error(), "escaping a parallel loop") {
		t.Errorf("err = %v, want control-flow-escape error", err)
	}
}

func TestStopInsideSubroutineRejected(t *testing.T) {
	f, err := fortran.Parse("t.f", `
      program main
      call f
      end
      subroutine f
      stop
      end
`)
	if err != nil {
		t.Fatal(err)
	}
	m := New(f)
	if err := m.Run(); err == nil || !strings.Contains(err.Error(), "STOP inside") {
		t.Errorf("err = %v, want STOP error", err)
	}
}

func TestStopAtTopLevelTerminates(t *testing.T) {
	out := run(t, `
      program main
      print *, 1
      stop
      print *, 2
      end
`, 1)
	if strings.TrimSpace(out) != "1" {
		t.Errorf("got %q, want just 1", out)
	}
}

func TestEarlyReturnFromSubroutine(t *testing.T) {
	out := run(t, `
      program main
      real x
      x = -3.0
      call clamp(x)
      print *, x
      x = 5.0
      call clamp(x)
      print *, x
      end
      subroutine clamp(v)
      real v
      if (v .gt. 0.0) return
      v = 0.0
      end
`, 1)
	if strings.TrimSpace(out) != "0\n5" {
		t.Errorf("got %q, want 0 then 5", out)
	}
}
