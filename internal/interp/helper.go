package interp

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"parascope/internal/fortran"
)

// RunCapture executes the file's main program and returns everything
// it printed.
func RunCapture(f *fortran.File, workers int, input []float64) (string, error) {
	out, _, err := RunCaptureSim(f, workers, input)
	return out, err
}

// RunCaptureSim additionally returns the simulated parallel execution
// time in cycles (critical path over the DOALL workers), the
// machine-independent speedup measure.
func RunCaptureSim(f *fortran.File, workers int, input []float64) (string, int64, error) {
	m := New(f)
	var out strings.Builder
	m.Out = &out
	m.Workers = workers
	m.Input = input
	m.StmtLimit = 500_000_000
	if err := m.Run(); err != nil {
		return out.String(), m.SimCycles, err
	}
	return out.String(), m.SimCycles, nil
}

// OutputsEquivalent compares two list-directed outputs token-wise,
// treating numeric tokens as equal within a relative tolerance —
// parallel reduction order legitimately perturbs low-order bits.
func OutputsEquivalent(a, b string, tol float64) (bool, string) {
	ta := strings.Fields(a)
	tb := strings.Fields(b)
	if len(ta) != len(tb) {
		return false, fmt.Sprintf("token counts differ: %d vs %d", len(ta), len(tb))
	}
	for i := range ta {
		fa, errA := strconv.ParseFloat(ta[i], 64)
		fb, errB := strconv.ParseFloat(tb[i], 64)
		if errA == nil && errB == nil {
			diff := math.Abs(fa - fb)
			scale := math.Max(math.Abs(fa), math.Abs(fb))
			if scale < 1 {
				scale = 1
			}
			if diff/scale > tol {
				return false, fmt.Sprintf("token %d: %s vs %s", i, ta[i], tb[i])
			}
			continue
		}
		if ta[i] != tb[i] {
			return false, fmt.Sprintf("token %d: %q vs %q", i, ta[i], tb[i])
		}
	}
	return true, ""
}

// CheckEquivalent runs both programs and verifies their outputs
// match within tolerance; used to validate that transformations
// preserve semantics.
func CheckEquivalent(orig, transformed *fortran.File, workers int, input []float64) error {
	a, err := RunCapture(orig, 1, input)
	if err != nil {
		return fmt.Errorf("original failed: %v", err)
	}
	b, err := RunCapture(transformed, workers, input)
	if err != nil {
		return fmt.Errorf("transformed failed: %v", err)
	}
	if ok, why := OutputsEquivalent(a, b, 1e-9); !ok {
		return fmt.Errorf("outputs differ: %s\n--- original ---\n%s--- transformed ---\n%s", why, a, b)
	}
	return nil
}
