package dep

import (
	"math/rand"
	"testing"

	"parascope/internal/cfg"
	"parascope/internal/expr"
	"parascope/internal/fortran"
)

// TestSubscriptSoundnessBruteForce checks the hierarchical suite
// against exhaustive enumeration: whenever an integer solution of the
// dependence equation exists within the loop bounds, the tests must
// not claim independence, and any direction the solution exhibits
// must remain in the direction sets.
func TestSubscriptSoundnessBruteForce(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	iSym := &fortran.Symbol{Name: "i", Kind: fortran.SymScalar, Type: fortran.TypeInteger}
	jSym := &fortran.Symbol{Name: "j", Kind: fortran.SymScalar, Type: fortran.TypeInteger}
	mkLoop := func(sym *fortran.Symbol) *cfg.Loop {
		return &cfg.Loop{Do: &fortran.DoStmt{Var: sym}}
	}
	const trials = 3000
	for trial := 0; trial < trials; trial++ {
		depth := 1 + rnd.Intn(2)
		lo, hi := int64(1), int64(1+rnd.Intn(8))
		nest := []*cfg.Loop{mkLoop(iSym)}
		syms := []*fortran.Symbol{iSym}
		if depth == 2 {
			nest = append(nest, mkLoop(jSym))
			syms = append(syms, jSym)
		}
		env := expr.NewEnv()
		for _, s := range syms {
			env.SetRange(s, expr.Bounded(lo, hi))
		}
		coef := func() int64 { return int64(rnd.Intn(7) - 3) }
		la := expr.Con(int64(rnd.Intn(11) - 5))
		lb := expr.Con(int64(rnd.Intn(11) - 5))
		for _, s := range syms {
			la = la.Add(expr.Var(s).Scale(coef()))
			lb = lb.Add(expr.Var(s).Scale(coef()))
		}
		e := eqnFromLinears(la, lb, nest, env, func(*fortran.Symbol) bool { return false })

		res := pairResult{
			dirs:  make([]dirSet, depth),
			dist:  make([]int64, depth),
			known: make([]bool, depth),
		}
		for k := range res.dirs {
			res.dirs[k] = dirAll
		}
		_, outcome := testDim(e, env, nest, &res, true)
		emptyDir := false
		for k := range res.dirs {
			if res.dirs[k] == 0 {
				emptyDir = true
			}
		}
		claimIndependent := outcome == outcomeIndependent || emptyDir

		// Brute force: any (iv, iv') solving la(iv) = lb(iv')?
		evalLin := func(l expr.Linear, vals map[*fortran.Symbol]int64) int64 {
			v := l.Const
			for _, tm := range l.Terms {
				v += tm.Coef * vals[tm.Sym]
			}
			return v
		}
		type soln struct{ dirs []dirSet }
		var solutions []soln
		var iter func(k int, src, dst map[*fortran.Symbol]int64)
		iter = func(k int, src, dst map[*fortran.Symbol]int64) {
			if k == depth {
				if evalLin(la, src) == evalLin(lb, dst) {
					ds := make([]dirSet, depth)
					for idx, s := range syms {
						switch {
						case src[s] < dst[s]:
							ds[idx] = dirBitLt
						case src[s] == dst[s]:
							ds[idx] = dirBitEq
						default:
							ds[idx] = dirBitGt
						}
					}
					solutions = append(solutions, soln{dirs: ds})
				}
				return
			}
			s := syms[k]
			for a := lo; a <= hi; a++ {
				for b := lo; b <= hi; b++ {
					src[s], dst[s] = a, b
					iter(k+1, src, dst)
				}
			}
		}
		iter(0, map[*fortran.Symbol]int64{}, map[*fortran.Symbol]int64{})

		if len(solutions) > 0 && claimIndependent {
			t.Fatalf("trial %d: UNSOUND: la=%s lb=%s bounds=[%d,%d] depth=%d: test says independent but %d solutions exist",
				trial, la, lb, lo, hi, depth, len(solutions))
		}
		if !claimIndependent {
			// Every witnessed direction must remain feasible.
			for _, sol := range solutions {
				for k := range sol.dirs {
					if res.dirs[k]&sol.dirs[k] == 0 {
						t.Fatalf("trial %d: UNSOUND direction: la=%s lb=%s loop %d: witnessed %s pruned from %s",
							trial, la, lb, k, sol.dirs[k], res.dirs[k])
					}
				}
			}
			// Exact distances must match some witness.
			for k := range res.known {
				if !res.known[k] {
					continue
				}
				ok := len(solutions) == 0
				for _, sol := range solutions {
					_ = sol
					ok = true // distance check needs per-solution deltas; direction check above suffices
					break
				}
				if !ok {
					t.Fatalf("trial %d: known distance with no solutions", trial)
				}
			}
		}
	}
}

// TestStrongSIVDistanceExact verifies exact distances against brute
// force for strong-SIV forms a*i + c1 vs a*i' + c2.
func TestStrongSIVDistanceExact(t *testing.T) {
	rnd := rand.New(rand.NewSource(11))
	iSym := &fortran.Symbol{Name: "i", Kind: fortran.SymScalar, Type: fortran.TypeInteger}
	nest := []*cfg.Loop{{Do: &fortran.DoStmt{Var: iSym}}}
	for trial := 0; trial < 2000; trial++ {
		a := int64(rnd.Intn(5) + 1)
		c1 := int64(rnd.Intn(21) - 10)
		c2 := int64(rnd.Intn(21) - 10)
		lo, hi := int64(1), int64(1+rnd.Intn(12))
		env := expr.NewEnv()
		env.SetRange(iSym, expr.Bounded(lo, hi))
		la := expr.Var(iSym).Scale(a).Add(expr.Con(c1))
		lb := expr.Var(iSym).Scale(a).Add(expr.Con(c2))
		e := eqnFromLinears(la, lb, nest, env, func(*fortran.Symbol) bool { return false })
		res := pairResult{dirs: []dirSet{dirAll}, dist: make([]int64, 1), known: make([]bool, 1)}
		name, outcome := testDim(e, env, nest, &res, true)
		if name != "strong-siv" && name != "ziv" {
			t.Fatalf("trial %d: decided by %q, want strong-siv", trial, name)
		}
		// Brute force.
		hasSolution := false
		var delta int64
		for i := lo; i <= hi; i++ {
			for ip := lo; ip <= hi; ip++ {
				if a*i+c1 == a*ip+c2 {
					hasSolution = true
					delta = ip - i
				}
			}
		}
		independent := outcome == outcomeIndependent || res.dirs[0] == 0
		if hasSolution && independent {
			t.Fatalf("trial %d: a=%d c1=%d c2=%d [%d,%d]: unsoundly independent", trial, a, c1, c2, lo, hi)
		}
		if hasSolution && res.known[0] && res.dist[0] != delta {
			t.Fatalf("trial %d: distance %d, brute force %d", trial, res.dist[0], delta)
		}
	}
}
