package dep

import (
	"testing"

	"parascope/internal/dataflow"
	"parascope/internal/fortran"
)

// TestRangeTestsAblation verifies the design choice DESIGN.md calls
// out: the range-based (Banerjee/bounds) tier disproves dependences
// the exact divisibility tests cannot, so disabling it must only add
// dependences, never remove any.
func TestRangeTestsAblation(t *testing.T) {
	src := `
      program main
      integer i, j
      real a(500), m(60,60)
      do i = 1, 100
         a(i) = a(i + 200)
      enddo
      do i = 1, 50
         do j = 1, 50
            m(i,j) = m(i,j) + 1.0
         enddo
      enddo
      do i = 1, 100
         a(i) = a(400 - i)
      enddo
      end
`
	f := fortran.MustParse("t.f", src)
	df := dataflow.Analyze(f.Units[0], nil)

	with := Analyze(df, nil, nil, DefaultOptions())
	opts := DefaultOptions()
	opts.UseRanges = false
	without := Analyze(df, nil, nil, opts)

	countCarried := func(g *Graph) int {
		n := 0
		for _, d := range g.Deps {
			if d.Carried() && d.Class != ClassControl && d.Class != ClassInput {
				n++
			}
		}
		return n
	}
	cw, cwo := countCarried(with), countCarried(without)
	if cw >= cwo {
		t.Errorf("range tests should remove carried deps: with=%d without=%d", cw, cwo)
	}
	// Soundness direction: every dep found with ranges on must also
	// exist (same endpoints/class/level) with ranges off.
	key := func(d *Dependence) [4]int {
		return [4]int{d.Src.ID(), d.Dst.ID(), int(d.Class), d.Level}
	}
	have := map[[4]int]bool{}
	for _, d := range without.Deps {
		have[key(d)] = true
	}
	for _, d := range with.Deps {
		if d.Class == ClassControl {
			continue
		}
		if !have[key(d)] {
			t.Errorf("dep present with ranges but absent without: %v", d)
		}
	}
}

// TestConstantsAblation: constant propagation into subscripts is what
// lets the range tests bound symbolic loop limits.
func TestConstantsAblation(t *testing.T) {
	src := `
      program main
      integer i, n
      real a(500)
      n = 100
      do i = 1, n
         a(i) = a(i + 200)
      enddo
      end
`
	f := fortran.MustParse("t.f", src)
	df := dataflow.Analyze(f.Units[0], nil)
	l := df.Tree.All[0]

	with := Analyze(df, nil, nil, DefaultOptions())
	opts := DefaultOptions()
	opts.UseConstants = false
	without := Analyze(df, nil, nil, opts)

	if n := len(with.CarriedAt(l)); n != 0 {
		t.Errorf("with constants: loop should be clean, got %d deps", n)
	}
	foundBlocked := false
	for _, d := range without.CarriedAt(l) {
		if d.Sym.Name == "a" {
			foundBlocked = true
		}
	}
	if !foundBlocked {
		t.Error("without constants, n stays symbolic and the dep must be assumed")
	}
}
