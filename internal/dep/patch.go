package dep

import (
	"parascope/internal/cfg"
	"parascope/internal/dataflow"
	"parascope/internal/expr"
	"parascope/internal/fortran"
)

// Patch returns the dependence graph for df's unit after statement old
// was replaced 1:1 by new: every edge of prev not incident to the
// edited statement is reused, and only the reference pairs involving
// the new statement are retested. df must already describe the new
// statement (dataflow.PatchStmt) — in particular its CFG and loop tree
// are the same objects prev's edges point into, so reused Loop
// pointers stay valid. Control-dependence edges ending at the edited
// statement are rewritten in place rather than recomputed: a simple
// statement is never a branch source, and the CFG shape is unchanged.
//
// IDs are reassigned densely (reused edges first, in their previous
// relative order, then the fresh ones), so the numbering differs from
// a from-scratch run even though the edge set is identical. Stats
// accumulate onto prev's counts: they describe the work done across
// the session's edits, not a single run.
func Patch(prev *Graph, df *dataflow.Analysis, assertions *expr.Env, summ Summaries, opts Options, old, new fortran.Stmt) *Graph {
	a := &Analyzer{DF: df, Assertions: assertions, Summ: summ, Opts: opts}
	g := &Graph{Unit: df.Unit, Stats: prev.Stats.clone(), byLoop: map[*cfg.Loop][]*Dependence{}}
	for _, d := range prev.Deps {
		if d.Class == ClassControl {
			if d.Src == old {
				d.Src = new
			}
			if d.Dst == old {
				d.Dst = new
			}
			g.Deps = append(g.Deps, d)
			continue
		}
		if d.Src == old || d.Dst == old {
			continue
		}
		g.Deps = append(g.Deps, d)
	}
	// Retest pairs involving the edited statement with the same
	// collection order and skip rules as the full run, so the emitted
	// edges (direction vectors, loop-independent orientation) match.
	refs := a.collectRefs()
	bySym := map[*fortran.Symbol][]*ref{}
	newSyms := map[*fortran.Symbol]bool{}
	var symOrder []*fortran.Symbol
	for _, r := range refs {
		if _, ok := bySym[r.acc.Sym]; !ok {
			symOrder = append(symOrder, r.acc.Sym)
		}
		bySym[r.acc.Sym] = append(bySym[r.acc.Sym], r)
		if r.stmt == new {
			newSyms[r.acc.Sym] = true
		}
	}
	for _, sym := range symOrder {
		if !newSyms[sym] {
			continue
		}
		list := bySym[sym]
		for i := 0; i < len(list); i++ {
			for j := i; j < len(list); j++ {
				r1, r2 := list[i], list[j]
				if r1.stmt != new && r2.stmt != new {
					continue
				}
				if !r1.acc.Write && !r2.acc.Write && !a.Opts.InputDeps {
					continue
				}
				if i == j && !r1.acc.Write {
					continue
				}
				a.testRefPair(g, sym, r1, r2)
			}
		}
	}
	a.finalize(g)
	return g
}
