package dep

import (
	"testing"

	"parascope/internal/cfg"
	"parascope/internal/dataflow"
	"parascope/internal/expr"
	"parascope/internal/fortran"
)

func analyzeSrc(t *testing.T, src string) (*dataflow.Analysis, *Graph) {
	t.Helper()
	f, err := fortran.Parse("t.f", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	df := dataflow.Analyze(f.Units[0], nil)
	g := Analyze(df, nil, nil, DefaultOptions())
	return df, g
}

// carriedData returns non-control dependences carried at loop l.
func carriedData(g *Graph, l *cfg.Loop) []*Dependence {
	var out []*Dependence
	for _, d := range g.CarriedAt(l) {
		if d.Class != ClassControl && d.Class != ClassInput {
			out = append(out, d)
		}
	}
	return out
}

// carriedOn filters carried deps for one symbol name.
func carriedOn(g *Graph, l *cfg.Loop, sym string) []*Dependence {
	var out []*Dependence
	for _, d := range carriedData(g, l) {
		if d.Sym.Name == sym {
			out = append(out, d)
		}
	}
	return out
}

func TestIndependentLoop(t *testing.T) {
	df, g := analyzeSrc(t, `
      program main
      integer i
      real a(100), b(100)
      do i = 1, 100
         a(i) = b(i) + 1.0
      enddo
      end
`)
	l := df.Tree.All[0]
	if deps := carriedData(g, l); len(deps) != 0 {
		t.Errorf("parallel loop has %d carried deps: %v", len(deps), deps)
	}
}

func TestRecurrenceCarriedFlow(t *testing.T) {
	df, g := analyzeSrc(t, `
      program main
      integer i
      real a(100)
      do i = 2, 100
         a(i) = a(i-1) + 1.0
      enddo
      end
`)
	l := df.Tree.All[0]
	deps := carriedOn(g, l, "a")
	var flow *Dependence
	for _, d := range deps {
		if d.Class == ClassFlow {
			flow = d
		}
	}
	if flow == nil {
		t.Fatalf("missing carried flow dep: %v", deps)
	}
	if len(flow.Known) != 1 || !flow.Known[0] || flow.Dist[0] != 1 {
		t.Errorf("distance = %v %v, want [1]", flow.Dist, flow.Known)
	}
	if flow.Mark != MarkProven {
		t.Errorf("mark = %v, want proven (exact strong SIV)", flow.Mark)
	}
}

func TestAntiDependence(t *testing.T) {
	df, g := analyzeSrc(t, `
      program main
      integer i
      real a(100)
      do i = 1, 99
         a(i) = a(i+1)*2.0
      enddo
      end
`)
	l := df.Tree.All[0]
	deps := carriedOn(g, l, "a")
	foundAnti := false
	for _, d := range deps {
		if d.Class == ClassAnti && d.Carried() {
			foundAnti = true
			if len(d.Known) == 1 && d.Known[0] && d.Dist[0] != 1 {
				t.Errorf("anti distance = %d, want 1", d.Dist[0])
			}
		}
		if d.Class == ClassFlow && d.Carried() {
			t.Errorf("a(i)=a(i+1) must not have a carried flow dep, got %v", d)
		}
	}
	if !foundAnti {
		t.Errorf("missing carried anti dep: %v", deps)
	}
}

func TestDistanceTooLarge(t *testing.T) {
	// a(i) = a(i+200) in a loop of 100 iterations: strong SIV range
	// check disproves the dependence.
	df, g := analyzeSrc(t, `
      program main
      integer i
      real a(300)
      do i = 1, 100
         a(i) = a(i+200)
      enddo
      end
`)
	l := df.Tree.All[0]
	if deps := carriedOn(g, l, "a"); len(deps) != 0 {
		t.Errorf("got %v, want none (distance exceeds trip count)", deps)
	}
}

func TestZIVDisproof(t *testing.T) {
	df, g := analyzeSrc(t, `
      program main
      integer i
      real a(100)
      do i = 1, 100
         a(1) = a(2) + 1.0
      enddo
      end
`)
	l := df.Tree.All[0]
	for _, d := range carriedOn(g, l, "a") {
		if d.Class == ClassFlow || d.Class == ClassAnti {
			t.Errorf("a(1) vs a(2) should be independent, got %v", d)
		}
	}
	if g.Stats.Disproved["ziv"] == 0 {
		t.Error("ZIV test should have disproven at least one pair")
	}
}

func TestZIVSelfOutput(t *testing.T) {
	df, g := analyzeSrc(t, `
      program main
      integer i
      real a(100), b(100)
      do i = 1, 100
         a(1) = b(i)
      enddo
      end
`)
	l := df.Tree.All[0]
	deps := carriedOn(g, l, "a")
	found := false
	for _, d := range deps {
		if d.Class == ClassOutput {
			found = true
		}
	}
	if !found {
		t.Errorf("a(1)=... must have a carried output dep on itself: %v", deps)
	}
}

func TestGCDDisproof(t *testing.T) {
	// a(2i) vs a(2i+1): even vs odd elements never collide.
	df, g := analyzeSrc(t, `
      program main
      integer i
      real a(300)
      do i = 1, 100
         a(2*i) = a(2*i + 1)
      enddo
      end
`)
	l := df.Tree.All[0]
	if deps := carriedOn(g, l, "a"); len(deps) != 0 {
		t.Errorf("even/odd refs should be independent: %v", deps)
	}
}

func TestCoupledNest(t *testing.T) {
	// Classic wavefront: a(i,j) = a(i-1,j) + a(i,j-1).
	df, g := analyzeSrc(t, `
      program main
      integer i, j
      real a(100,100)
      do i = 2, 100
         do j = 2, 100
            a(i,j) = a(i-1,j) + a(i,j-1)
         enddo
      enddo
      end
`)
	outer := df.Tree.Roots[0]
	inner := outer.Children[0]
	oDeps := carriedOn(g, outer, "a")
	iDeps := carriedOn(g, inner, "a")
	if len(oDeps) == 0 {
		t.Error("outer loop must carry a dependence (a(i-1,j))")
	}
	if len(iDeps) == 0 {
		t.Error("inner loop must carry a dependence (a(i,j-1))")
	}
	// The a(i-1,j) dep should be distance (1,0).
	foundDist := false
	for _, d := range oDeps {
		if d.Class == ClassFlow && len(d.Known) == 2 && d.Known[0] && d.Dist[0] == 1 && d.Known[1] && d.Dist[1] == 0 {
			foundDist = true
		}
	}
	if !foundDist {
		t.Errorf("missing distance (1,0) flow dep on outer: %v", oDeps)
	}
}

func TestInterchangeableNestDeps(t *testing.T) {
	// a(i,j) = a(i-1,j+1): direction (<,>), interchange-unsafe.
	df, g := analyzeSrc(t, `
      program main
      integer i, j
      real a(100,100)
      do i = 2, 100
         do j = 1, 99
            a(i,j) = a(i-1,j+1)
         enddo
      enddo
      end
`)
	outer := df.Tree.Roots[0]
	deps := carriedOn(g, outer, "a")
	found := false
	for _, d := range deps {
		if d.Class == ClassFlow && d.Level == 1 {
			found = true
			if len(d.Known) == 2 && d.Known[1] && d.Dist[1] != -1 {
				t.Errorf("inner distance = %d, want -1", d.Dist[1])
			}
		}
	}
	if !found {
		t.Errorf("missing level-1 flow dep: %v", deps)
	}
}

func TestScalarDependence(t *testing.T) {
	df, g := analyzeSrc(t, `
      program main
      integer i
      real t, a(100), b(100)
      do i = 1, 100
         t = a(i)
         b(i) = t
      enddo
      end
`)
	l := df.Tree.All[0]
	deps := carriedOn(g, l, "t")
	if len(deps) == 0 {
		t.Error("scalar t must have carried deps before privatization")
	}
}

func TestCallDependenceConservative(t *testing.T) {
	df, g := analyzeSrc(t, `
      program main
      integer i
      real a(100)
      do i = 1, 100
         call f(a, i)
      enddo
      end
      subroutine f(x, k)
      integer k
      real x(100)
      x(k) = 1.0
      end
`)
	l := df.Tree.All[0]
	deps := carriedOn(g, l, "a")
	if len(deps) == 0 {
		t.Error("call must conservatively carry deps on array a without section analysis")
	}
	for _, d := range deps {
		if d.Test != "call" {
			t.Errorf("test = %q, want call", d.Test)
		}
	}
}

// fixedSections reports that f writes x(k:k) — a single element per
// call — mimicking interprocedural regular section analysis.
type fixedSections struct {
	sym *fortran.Symbol
	lo  expr.Linear
}

func (s fixedSections) CallSections(st fortran.Stmt) ([]SectionAccess, bool) {
	if _, ok := st.(*fortran.CallStmt); !ok {
		return nil, false
	}
	return []SectionAccess{
		{Sym: s.sym, Write: true, Dims: []SectionDim{{Lo: s.lo, Hi: s.lo, Known: true}}},
		{Sym: s.sym, Write: false, Dims: []SectionDim{{Lo: s.lo, Hi: s.lo, Known: true}}},
	}, true
}

func TestSectionSummariesRefineCalls(t *testing.T) {
	f := fortran.MustParse("t.f", `
      program main
      integer i
      real a(100), b(100)
      do i = 1, 100
         call f(a, i)
         b(i) = a(i)
      enddo
      end
      subroutine f(x, k)
      integer k
      real x(100)
      x(k) = 1.0
      end
`)
	u := f.Units[0]
	df := dataflow.Analyze(u, nil)
	l := df.Tree.All[0]
	iSym := u.Lookup("i")
	summ := fixedSections{sym: u.Lookup("a"), lo: expr.Var(iSym)}

	g := Analyze(df, nil, summ, DefaultOptions())
	for _, d := range carriedOn(g, l, "a") {
		t.Errorf("section i:i per iteration should carry nothing, got %v", d)
	}
	// Without sections the same program is conservative.
	opts := DefaultOptions()
	opts.UseSections = false
	g2 := Analyze(df, nil, nil, opts)
	if len(carriedOn(g2, l, "a")) == 0 {
		t.Error("without sections the call must carry deps")
	}
}

func TestSymbolicBlockedThenAsserted(t *testing.T) {
	// a(i) vs a(i+m): unknown m blocks disproof; asserting m >= 100
	// (the array extent) eliminates the carried dependence.
	src := `
      program main
      integer i, m
      real a(300)
      read(*,*) m
      do i = 1, 100
         a(i) = a(i+m)
      enddo
      end
`
	f := fortran.MustParse("t.f", src)
	u := f.Units[0]
	df := dataflow.Analyze(u, nil)
	l := df.Tree.All[0]

	g := Analyze(df, nil, nil, DefaultOptions())
	deps := carriedOn(g, l, "a")
	if len(deps) == 0 {
		t.Fatal("unknown m: dependence must be assumed")
	}
	blocked := false
	for _, d := range deps {
		if d.Reason == "symbolic" {
			blocked = true
		}
	}
	if !blocked {
		t.Errorf("expected symbolic-blocked reason: %+v", deps)
	}

	assert := expr.NewEnv()
	assert.SetRange(u.Lookup("m"), expr.AtLeast(100))
	g2 := Analyze(df, assert, nil, DefaultOptions())
	if deps := carriedOn(g2, l, "a"); len(deps) != 0 {
		t.Errorf("with m >= 100 asserted, no carried dep should remain: %v", deps)
	}
}

func TestIndexArrayBlocked(t *testing.T) {
	df, g := analyzeSrc(t, `
      program main
      integer i, idx(100)
      real a(100)
      do i = 1, 100
         a(idx(i)) = a(idx(i)) + 1.0
      enddo
      end
`)
	l := df.Tree.All[0]
	deps := carriedOn(g, l, "a")
	if len(deps) == 0 {
		t.Fatal("index-array subscripts must be assumed dependent")
	}
	found := false
	for _, d := range deps {
		if d.Reason == "index-array" {
			found = true
		}
	}
	if !found {
		t.Errorf("expected index-array reason: %+v", deps)
	}
}

func TestLoopIndependentDep(t *testing.T) {
	df, g := analyzeSrc(t, `
      program main
      integer i
      real a(100), b(100)
      do i = 1, 100
         a(i) = 1.0
         b(i) = a(i)*2.0
      enddo
      end
`)
	l := df.Tree.All[0]
	if deps := carriedData(g, l); len(deps) != 0 {
		t.Errorf("no carried deps expected: %v", deps)
	}
	// But a loop-independent flow dep a(i) -> a(i) exists.
	found := false
	for _, d := range g.LoopDeps(l) {
		if d.Sym.Name == "a" && d.Class == ClassFlow && !d.Carried() {
			found = true
		}
	}
	if !found {
		t.Error("missing loop-independent flow dep on a")
	}
}

func TestControlDeps(t *testing.T) {
	df, g := analyzeSrc(t, `
      program main
      integer i
      real a(100)
      do i = 1, 100
         if (a(i) .gt. 0.0) then
            a(i) = 0.0
         endif
      enddo
      end
`)
	_ = df
	found := false
	for _, d := range g.Deps {
		if d.Class == ClassControl {
			found = true
		}
	}
	if !found {
		t.Error("missing control dependence for guarded assignment")
	}
}

func TestStatsAccounting(t *testing.T) {
	_, g := analyzeSrc(t, `
      program main
      integer i
      real a(200), b(200)
      do i = 1, 100
         a(i) = a(i) + b(i)
         a(1) = a(2)
      enddo
      end
`)
	if g.Stats.PairsTested == 0 {
		t.Error("no pairs tested")
	}
	total := 0
	for _, v := range g.Stats.Applied {
		total += v
	}
	if total == 0 {
		t.Error("no test applications recorded")
	}
}

func TestMarkingRejectedIgnored(t *testing.T) {
	df, g := analyzeSrc(t, `
      program main
      integer i, idx(100)
      real a(100)
      do i = 1, 100
         a(idx(i)) = 0.0
      enddo
      end
`)
	l := df.Tree.All[0]
	deps := carriedOn(g, l, "a")
	if len(deps) == 0 {
		t.Fatal("want pending dep")
	}
	for _, d := range deps {
		if d.Mark != MarkPending {
			t.Errorf("index-array dep mark = %v, want pending", d.Mark)
		}
		d.Mark = MarkRejected
	}
}

func TestWeakCrossing(t *testing.T) {
	// a(i) = a(n - i): crossing dependence within range.
	df, g := analyzeSrc(t, `
      program main
      integer i
      real a(100)
      do i = 1, 100
         a(i) = a(101 - i)
      enddo
      end
`)
	l := df.Tree.All[0]
	deps := carriedOn(g, l, "a")
	if len(deps) == 0 {
		t.Error("crossing refs must depend")
	}
	// Crossing outside the iteration range is independent:
	df2, g2 := analyzeSrc(t, `
      program main
      integer i
      real a(500)
      do i = 1, 100
         a(i) = a(400 - i)
      enddo
      end
`)
	l2 := df2.Tree.All[0]
	if deps := carriedOn(g2, l2, "a"); len(deps) != 0 {
		t.Errorf("crossing point 200 outside [1,100]; got %v", deps)
	}
}
