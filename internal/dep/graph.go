// Package dep implements ParaScope's dependence analysis: a
// hierarchical suite of subscript tests (ZIV, strong/weak-zero/
// weak-crossing/exact SIV, GCD, Banerjee, delta-style combination)
// applied to pairs of references in loop nests, producing a
// dependence graph with direction/distance vectors, carrier levels,
// and the proven/pending/accepted/rejected marking state the editor
// exposes to users.
package dep

import (
	"fmt"
	"strings"

	"parascope/internal/cfg"
	"parascope/internal/fortran"
)

// Class is the kind of a dependence.
type Class int

// Dependence classes.
const (
	ClassFlow   Class = iota // true dependence: write then read
	ClassAnti                // read then write
	ClassOutput              // write then write
	ClassInput               // read then read (displayed only)
	ClassControl
)

func (c Class) String() string {
	switch c {
	case ClassFlow:
		return "true"
	case ClassAnti:
		return "anti"
	case ClassOutput:
		return "output"
	case ClassInput:
		return "input"
	case ClassControl:
		return "control"
	}
	return "?"
}

// Direction is a dependence direction for one loop level, relating
// the source iteration to the sink iteration.
type Direction int

// Directions.
const (
	DirLt   Direction = iota // <  : source iteration earlier
	DirEq                    // =
	DirGt                    // >
	DirStar                  // *  : unknown
	DirLe                    // <=
	DirGe                    // >=
)

func (d Direction) String() string {
	switch d {
	case DirLt:
		return "<"
	case DirEq:
		return "="
	case DirGt:
		return ">"
	case DirStar:
		return "*"
	case DirLe:
		return "<="
	case DirGe:
		return ">="
	}
	return "?"
}

// Mark is the editor's dependence-marking state: Ped marks each
// dependence proven (an exact test proved it exists), pending (could
// not be disproven), or — after user interaction — accepted/rejected.
type Mark int

// Marking states.
const (
	MarkProven Mark = iota
	MarkPending
	MarkAccepted
	MarkRejected
)

func (m Mark) String() string {
	switch m {
	case MarkProven:
		return "proven"
	case MarkPending:
		return "pending"
	case MarkAccepted:
		return "accepted"
	case MarkRejected:
		return "rejected"
	}
	return "?"
}

// Dependence is one edge of the dependence graph.
type Dependence struct {
	ID  int
	Sym *fortran.Symbol

	Src, Dst       fortran.Stmt
	SrcRef, DstRef *fortran.VarRef // nil for call side effects and scalars without refs

	Class Class
	// Loop is the carrying loop; nil for loop-independent deps.
	Loop *cfg.Loop
	// Level is the 1-based carrier depth; 0 for loop-independent.
	Level int
	// Dirs holds one direction per common loop, outermost first.
	Dirs []Direction
	// Dist holds the dependence distance per common loop where
	// known; Known flags validity.
	Dist  []int64
	Known []bool

	Mark Mark
	// Test names the subscript test that decided this dependence
	// ("strong-siv", "banerjee", ... or "scalar"/"call").
	Test string
	// Reason holds a one-line explanation for the dependence pane.
	Reason string
	// Blockers names the symbolic terms that prevented disproof when
	// Reason is "symbolic" — the variables an assertion should bound.
	Blockers []string
}

// Carried reports whether the dependence is loop carried.
func (d *Dependence) Carried() bool { return d.Level > 0 }

// DirString formats the direction vector, e.g. "(<,=)".
func (d *Dependence) DirString() string {
	if len(d.Dirs) == 0 {
		return "()"
	}
	parts := make([]string, len(d.Dirs))
	for i, dir := range d.Dirs {
		if d.Known != nil && i < len(d.Known) && d.Known[i] {
			parts[i] = fmt.Sprintf("%d", d.Dist[i])
		} else {
			parts[i] = dir.String()
		}
	}
	return "(" + strings.Join(parts, ",") + ")"
}

func (d *Dependence) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s dep on %s %s", d.Class, d.Sym.Name, d.DirString())
	if d.Level > 0 {
		fmt.Fprintf(&b, " carried at level %d", d.Level)
	} else {
		b.WriteString(" loop independent")
	}
	return b.String()
}

// Graph is the dependence graph of one program unit.
type Graph struct {
	Unit *fortran.Unit
	Deps []*Dependence
	// Stats records per-test pair counts for the effectiveness table.
	Stats Stats

	byLoop map[*cfg.Loop][]*Dependence
}

// Stats counts how the hierarchical test suite performed.
type Stats struct {
	PairsTested int
	// Applied counts applications per test name; Disproved counts
	// pairs proven independent per test name; Proven counts pairs an
	// exact test proved dependent.
	Applied   map[string]int
	Disproved map[string]int
	Proven    map[string]int
}

func newStats() Stats {
	return Stats{Applied: map[string]int{}, Disproved: map[string]int{}, Proven: map[string]int{}}
}

func (s *Stats) mergeFrom(o *Stats) {
	s.PairsTested += o.PairsTested
	for k, v := range o.Applied {
		s.Applied[k] += v
	}
	for k, v := range o.Disproved {
		s.Disproved[k] += v
	}
	for k, v := range o.Proven {
		s.Proven[k] += v
	}
}

func (s *Stats) clone() Stats {
	c := newStats()
	c.mergeFrom(s)
	return c
}

func (s *Stats) merge(name string, outcome testOutcome) {
	s.Applied[name]++
	switch outcome {
	case outcomeIndependent:
		s.Disproved[name]++
	case outcomeProven:
		s.Proven[name]++
	}
}

// LoopDeps returns all dependences carried by or contained in loop l
// (every dep whose endpoints both lie in l's body), the list Ped's
// dependence pane shows when the user selects a loop.
func (g *Graph) LoopDeps(l *cfg.Loop) []*Dependence {
	return g.byLoop[l]
}

// CarriedAt returns the dependences carried exactly at loop l's level.
func (g *Graph) CarriedAt(l *cfg.Loop) []*Dependence {
	var out []*Dependence
	for _, d := range g.byLoop[l] {
		if d.Loop == l {
			out = append(out, d)
		}
	}
	return out
}

// DepByID returns the dependence with the given ID, or nil.
func (g *Graph) DepByID(id int) *Dependence {
	for _, d := range g.Deps {
		if d.ID == id {
			return d
		}
	}
	return nil
}
