package dep

import (
	"parascope/internal/cfg"
	"parascope/internal/expr"
	"parascope/internal/fortran"
)

// dirSet is a subset of {<,=,>} describing the feasible relations
// between the source and sink iterations of one loop.
type dirSet uint8

const (
	dirBitLt dirSet = 1 << iota
	dirBitEq
	dirBitGt
	dirAll = dirBitLt | dirBitEq | dirBitGt
)

func (s dirSet) has(b dirSet) bool { return s&b != 0 }

func (s dirSet) String() string {
	out := ""
	if s.has(dirBitLt) {
		out += "<"
	}
	if s.has(dirBitEq) {
		out += "="
	}
	if s.has(dirBitGt) {
		out += ">"
	}
	return "{" + out + "}"
}

// testOutcome classifies a subscript test's result for statistics.
type testOutcome int

const (
	outcomeMaybe testOutcome = iota
	outcomeIndependent
	outcomeProven
)

// pairResult is the verdict for one reference pair over a common nest.
type pairResult struct {
	independent bool
	proven      bool
	decidedBy   string
	dirs        []dirSet // per common loop
	dist        []int64
	known       []bool
	// blockedBy notes why analysis was imprecise ("symbolic",
	// "index-array", "nonlinear"), for the analysis-needs table.
	blockedBy string
	// blockSyms names the unbounded symbolic terms (assertion
	// candidates).
	blockSyms []string
}

// eqn is one dimension's dependence equation
//
//	sum_k (a_k*i_k - b_k*i'_k) = rem + slack
//
// over the common loop nest, where rem is an affine form in
// nest-invariant symbols and slack absorbs variant symbols as a
// range.
type eqn struct {
	a, b  []int64
	rem   expr.Linear
	slack expr.Range
	// blocked is non-empty when the dimension could not be analyzed.
	blocked string
}

// buildEqn constructs the dependence equation for one subscript
// dimension pair. variant reports whether a symbol's value can differ
// between the two reference instances.
func buildEqn(u *fortran.Unit, srcSub, dstSub fortran.Expr, nest []*cfg.Loop, env *expr.Env,
	variant func(*fortran.Symbol) bool, consts func(*fortran.Symbol) (int64, bool)) eqn {

	la, okA := expr.Linearize(u, srcSub)
	lb, okB := expr.Linearize(u, dstSub)
	if !okA || !okB {
		reason := "nonlinear"
		if containsIndexArray(srcSub) || containsIndexArray(dstSub) {
			reason = "index-array"
		}
		return eqn{blocked: reason}
	}
	// Substitute known constants first.
	la = substConsts(la, consts)
	lb = substConsts(lb, consts)
	return eqnFromLinears(la, lb, nest, env, variant)
}

// eqnFromLinears builds the dependence equation from already-linear
// subscript forms (used directly for regular-section bounds).
func eqnFromLinears(la, lb expr.Linear, nest []*cfg.Loop, env *expr.Env,
	variant func(*fortran.Symbol) bool) eqn {
	e := eqn{a: make([]int64, len(nest)), b: make([]int64, len(nest)), slack: expr.Exact(0)}
	for k, l := range nest {
		e.a[k] = la.Coef(l.Do.Var)
		e.b[k] = lb.Coef(l.Do.Var)
		la = la.Without(l.Do.Var)
		lb = lb.Without(l.Do.Var)
	}
	// rem = lb_rest - la_rest; variant symbols cannot cancel — they
	// contribute an interval of possible differences instead.
	rem := expr.Con(lb.Const - la.Const)
	type contrib struct {
		sym *fortran.Symbol
		ca  int64 // coefficient in src
		cb  int64 // coefficient in dst
	}
	seen := map[*fortran.Symbol]*contrib{}
	var order []*contrib
	for _, t := range la.Terms {
		c := seen[t.Sym]
		if c == nil {
			c = &contrib{sym: t.Sym}
			seen[t.Sym] = c
			order = append(order, c)
		}
		c.ca += t.Coef
	}
	for _, t := range lb.Terms {
		c := seen[t.Sym]
		if c == nil {
			c = &contrib{sym: t.Sym}
			seen[t.Sym] = c
			order = append(order, c)
		}
		c.cb += t.Coef
	}
	for _, c := range order {
		if !variant(c.sym) {
			// Same value at both instances: contributes (cb-ca)*sym.
			rem = rem.Add(expr.Var(c.sym).Scale(c.cb - c.ca))
			continue
		}
		// Variant symbol: the two instances are independent values in
		// the symbol's range, widening the remainder by
		// cb*range(sym) - ca*range(sym).
		r := env.RangeOf(c.sym)
		e.slack = e.slack.Add(r.Scale(c.cb)).Add(r.Scale(c.ca).Neg())
	}
	e.rem = rem
	return e
}

// dimDesc describes one dimension of a reference or a call's section
// as linear index bounds: exact when lo == hi is the precise
// subscript; known=false when the dimension is unanalyzable (no
// constraint contributed).
type dimDesc struct {
	exact   bool
	lo, hi  expr.Linear
	known   bool
	blocked string
}

// diffBound bounds la(i) - lb(i') over the common nest, with loop k
// (-1 for none) constrained to direction dir.
func diffBound(la, lb expr.Linear, nest []*cfg.Loop, env *expr.Env,
	variant func(*fortran.Symbol) bool, k int, dir Direction) expr.Range {

	e := eqnFromLinears(la, lb, nest, env, variant)
	// la(i) - lb(i') = sum_j (a_j*i_j - b_j*i'_j) - rem - slack.
	total := expr.Exact(0)
	for j := range e.a {
		d := DirStar
		if j == k {
			d = dir
		}
		total = total.Add(termBound(e.a[j], e.b[j], loopRange(env, nest[j]), d))
	}
	return total.Sub(env.EvalRange(e.rem)).Sub(e.slack)
}

// overlapFeasible reports whether the source dimension's index set
// can intersect the sink's when loop k is constrained to dir.
func overlapFeasible(sd, dd dimDesc, nest []*cfg.Loop, env *expr.Env,
	variant func(*fortran.Symbol) bool, k int, dir Direction) bool {

	if !sd.known || !dd.known {
		return true // no information: assume overlap
	}
	// Overlap needs s.hi >= d.lo and s.lo <= d.hi.
	d1 := diffBound(sd.hi, dd.lo, nest, env, variant, k, dir)
	if !d1.HiInf && d1.Hi < 0 {
		return false
	}
	d2 := diffBound(sd.lo, dd.hi, nest, env, variant, k, dir)
	if !d2.LoInf && d2.Lo > 0 {
		return false
	}
	return true
}

func substConsts(l expr.Linear, consts func(*fortran.Symbol) (int64, bool)) expr.Linear {
	if consts == nil {
		return l
	}
	out := expr.Con(l.Const)
	for _, t := range l.Terms {
		if v, ok := consts(t.Sym); ok {
			out = out.Add(expr.Con(v * t.Coef))
		} else {
			out = out.Add(expr.Var(t.Sym).Scale(t.Coef))
		}
	}
	return out
}

func containsIndexArray(e fortran.Expr) bool {
	found := false
	var walk func(fortran.Expr)
	walk = func(e fortran.Expr) {
		switch x := e.(type) {
		case *fortran.VarRef:
			if len(x.Subs) > 0 {
				found = true
			}
		case *fortran.FuncCall:
			for _, a := range x.Args {
				walk(a)
			}
		case *fortran.Unary:
			walk(x.X)
		case *fortran.Binary:
			walk(x.X)
			walk(x.Y)
		}
	}
	walk(e)
	return found
}

// ---------------------------------------------------------------------------
// The hierarchical test suite

// testDim analyzes one dimension's equation, refining the per-loop
// direction sets in res. It returns the deciding test's name and
// outcome.
func testDim(e eqn, env *expr.Env, nest []*cfg.Loop, res *pairResult, useRanges bool) (string, testOutcome) {
	if e.blocked != "" {
		res.blockedBy = e.blocked
		return "", outcomeMaybe
	}
	remRange := env.EvalRange(e.rem).Add(e.slack)
	if !remRange.IsExact() && len(e.rem.Terms) > 0 {
		if res.blockedBy == "" {
			res.blockedBy = "symbolic"
		}
		for _, term := range e.rem.Terms {
			r := env.RangeOf(term.Sym)
			if r.LoInf || r.HiInf {
				res.blockSyms = appendUniqueStr(res.blockSyms, term.Sym.Name)
			}
		}
	}
	active := 0
	lastActive := -1
	for k := range e.a {
		if e.a[k] != 0 || e.b[k] != 0 {
			active++
			lastActive = k
		}
	}
	switch active {
	case 0:
		// ZIV: independent iff rem can never be zero.
		if !remRange.Contains(0) {
			return "ziv", outcomeIndependent
		}
		if remRange.IsExact() && remRange.Lo == 0 {
			return "ziv", outcomeProven
		}
		return "ziv", outcomeMaybe
	case 1:
		return testSIV(e, env, nest, lastActive, remRange, res, useRanges)
	default:
		return testMIV(e, env, nest, remRange, res, useRanges)
	}
}

func loopRange(env *expr.Env, l *cfg.Loop) expr.Range {
	return env.RangeOf(l.Do.Var)
}

// span returns the maximum |i - i'| for a loop, or ok=false when the
// bounds are unknown.
func span(r expr.Range) (int64, bool) {
	if r.LoInf || r.HiInf {
		return 0, false
	}
	return r.Hi - r.Lo, true
}

func testSIV(e eqn, env *expr.Env, nest []*cfg.Loop, k int, rem expr.Range,
	res *pairResult, useRanges bool) (string, testOutcome) {

	a, b := e.a[k], e.b[k]
	r := loopRange(env, nest[k])
	switch {
	case a == b && a != 0:
		// Strong SIV: a*(i - i') = rem, distance δ = i' - i = -rem/a.
		return strongSIV(a, rem, r, k, res, useRanges)
	case a == -b && a != 0:
		// Weak-crossing SIV: a*(i + i') = rem.
		return weakCrossingSIV(a, rem, r, k, res, useRanges)
	case b == 0:
		// Weak-zero SIV: a*i = rem.
		return weakZeroSIV(a, rem, r, k, res, useRanges, true)
	case a == 0:
		// Weak-zero SIV on the sink side: -b*i' = rem.
		return weakZeroSIV(-b, rem, r, k, res, useRanges, false)
	default:
		// General SIV: exact two-variable Diophantine with bounds.
		return exactSIV(a, b, rem, r, k, res, useRanges)
	}
}

func strongSIV(a int64, rem expr.Range, r expr.Range, k int, res *pairResult, useRanges bool) (string, testOutcome) {
	// Multiples of a within rem's range give possible distances.
	mLo, mHi, any := multiplesIn(a, rem)
	if !any {
		return "strong-siv", outcomeIndependent
	}
	// δ = i' - i = -m, with m = rem/a ∈ [mLo, mHi].
	dLo, dHi := -mHi, -mLo
	if useRanges {
		if sp, ok := span(r); ok {
			// |δ| ≤ span.
			if dLo > sp || dHi < -sp {
				return "strong-siv", outcomeIndependent
			}
			if dLo < -sp {
				dLo = -sp
			}
			if dHi > sp {
				dHi = sp
			}
		}
	}
	var ds dirSet
	if dHi > 0 {
		ds |= dirBitLt
	}
	if dLo <= 0 && dHi >= 0 {
		ds |= dirBitEq
	}
	if dLo < 0 {
		ds |= dirBitGt
	}
	res.dirs[k] &= ds
	if dLo == dHi {
		res.dist[k], res.known[k] = dLo, true
		return "strong-siv", outcomeProven
	}
	return "strong-siv", outcomeMaybe
}

func weakCrossingSIV(a int64, rem expr.Range, r expr.Range, k int, res *pairResult, useRanges bool) (string, testOutcome) {
	// i + i' = rem/a must have an integer solution.
	mLo, mHi, any := multiplesIn(a, rem)
	if !any {
		return "weak-crossing-siv", outcomeIndependent
	}
	if useRanges {
		if !r.LoInf && !r.HiInf {
			// i + i' ∈ [2lo, 2hi].
			if mHi < 2*r.Lo || mLo > 2*r.Hi {
				return "weak-crossing-siv", outcomeIndependent
			}
		}
	}
	// Crossing dependences allow all directions; '=' needs an even sum
	// landing on a single iteration.
	ds := dirBitLt | dirBitGt
	for m := mLo; m <= mHi && m-mLo < 4; m++ {
		if m%2 == 0 {
			ds |= dirBitEq
		}
	}
	if mHi-mLo >= 4 {
		ds |= dirBitEq
	}
	res.dirs[k] &= ds
	return "weak-crossing-siv", outcomeMaybe
}

func weakZeroSIV(a int64, rem expr.Range, r expr.Range, k int, res *pairResult, useRanges bool, srcSide bool) (string, testOutcome) {
	// a*i = rem: the source (or sink) iteration is pinned.
	mLo, mHi, any := multiplesIn(a, rem)
	if !any {
		return "weak-zero-siv", outcomeIndependent
	}
	if useRanges && !r.LoInf && !r.HiInf {
		if mHi < r.Lo || mLo > r.Hi {
			return "weak-zero-siv", outcomeIndependent
		}
	}
	// One side pinned, the other free: all directions possible.
	return "weak-zero-siv", outcomeMaybe
}

func exactSIV(a, b int64, rem expr.Range, r expr.Range, k int, res *pairResult, useRanges bool) (string, testOutcome) {
	// a*i - b*i' = rem. GCD filter first.
	g := gcd(abs64(a), abs64(b))
	if rem.IsExact() && g != 0 && rem.Lo%g != 0 {
		return "exact-siv", outcomeIndependent
	}
	if useRanges {
		// Banerjee bound: range of a*i - b*i'.
		lhs := r.Scale(a).Add(r.Scale(b).Neg())
		if rem.Intersect(lhs).Empty() {
			return "exact-siv", outcomeIndependent
		}
		// Per-direction feasibility.
		var ds dirSet
		for _, dir := range []struct {
			bit dirSet
			d   Direction
		}{{dirBitLt, DirLt}, {dirBitEq, DirEq}, {dirBitGt, DirGt}} {
			lb := termBound(a, b, r, dir.d)
			if !rem.Intersect(lb).Empty() {
				ds |= dir.bit
			}
		}
		res.dirs[k] &= ds
		if ds == 0 {
			return "exact-siv", outcomeIndependent
		}
	}
	return "exact-siv", outcomeMaybe
}

func testMIV(e eqn, env *expr.Env, nest []*cfg.Loop, rem expr.Range,
	res *pairResult, useRanges bool) (string, testOutcome) {

	// GCD test over all index coefficients.
	var g int64
	for k := range e.a {
		g = gcd(g, abs64(e.a[k]))
		g = gcd(g, abs64(e.b[k]))
	}
	if g != 0 && rem.IsExact() && rem.Lo%g != 0 {
		return "gcd", outcomeIndependent
	}
	if !useRanges {
		return "gcd", outcomeMaybe
	}
	// Banerjee: bound sum_k (a_k*i_k - b_k*i'_k).
	total := expr.Exact(0)
	for k := range e.a {
		r := loopRange(env, nest[k])
		total = total.Add(termBound(e.a[k], e.b[k], r, DirStar))
	}
	if rem.Intersect(total).Empty() {
		return "banerjee", outcomeIndependent
	}
	// Per-loop direction pruning: re-bound with loop k constrained.
	for k := range e.a {
		if e.a[k] == 0 && e.b[k] == 0 {
			continue
		}
		rest := expr.Exact(0)
		for j := range e.a {
			if j != k {
				rest = rest.Add(termBound(e.a[j], e.b[j], loopRange(env, nest[j]), DirStar))
			}
		}
		var ds dirSet
		for _, dir := range []struct {
			bit dirSet
			d   Direction
		}{{dirBitLt, DirLt}, {dirBitEq, DirEq}, {dirBitGt, DirGt}} {
			lb := rest.Add(termBound(e.a[k], e.b[k], loopRange(env, nest[k]), dir.d))
			if !rem.Intersect(lb).Empty() {
				ds |= dir.bit
			}
		}
		res.dirs[k] &= ds
		if res.dirs[k] == 0 {
			return "banerjee", outcomeIndependent
		}
	}
	return "banerjee", outcomeMaybe
}

// termBound bounds a*i - b*i' for i, i' in r, subject to the
// direction constraint (DirLt: i < i'; DirEq: i = i'; DirGt: i > i';
// DirStar: unconstrained).
func termBound(a, b int64, r expr.Range, dir Direction) expr.Range {
	switch dir {
	case DirEq:
		return r.Scale(a - b)
	case DirLt:
		// i' = i + δ, δ ≥ 1: (a-b)*i - b*δ.
		sp, ok := span(r)
		if !ok {
			sp = 1 << 40
		}
		if sp < 1 {
			return emptyRange()
		}
		delta := expr.Bounded(1, sp)
		return r.Scale(a - b).Add(delta.Scale(-b))
	case DirGt:
		// i = i' + δ, δ ≥ 1: (a-b)*i' + a*δ.
		sp, ok := span(r)
		if !ok {
			sp = 1 << 40
		}
		if sp < 1 {
			return emptyRange()
		}
		delta := expr.Bounded(1, sp)
		return r.Scale(a - b).Add(delta.Scale(a))
	default:
		return r.Scale(a).Add(r.Scale(b).Neg())
	}
}

func emptyRange() expr.Range { return expr.Bounded(1, 0) }

func appendUniqueStr(list []string, s string) []string {
	for _, x := range list {
		if x == s {
			return list
		}
	}
	return append(list, s)
}

// multiplesIn returns the smallest and largest m with a*m ∈ rem,
// and whether any exists. For an unbounded rem every m qualifies.
func multiplesIn(a int64, rem expr.Range) (mLo, mHi int64, any bool) {
	if a == 0 {
		if rem.Contains(0) {
			return -(1 << 40), 1 << 40, true
		}
		return 0, 0, false
	}
	if a < 0 {
		lo, hi, ok := multiplesIn(-a, rem.Neg())
		return lo, hi, ok
	}
	if rem.LoInf || rem.HiInf {
		lo, hi := int64(-(1 << 40)), int64(1<<40)
		if !rem.LoInf {
			lo = ceilDiv(rem.Lo, a)
		}
		if !rem.HiInf {
			hi = floorDiv(rem.Hi, a)
		}
		return lo, hi, lo <= hi
	}
	lo := ceilDiv(rem.Lo, a)
	hi := floorDiv(rem.Hi, a)
	return lo, hi, lo <= hi
}

func ceilDiv(x, d int64) int64 {
	q := x / d
	if x%d != 0 && (x > 0) == (d > 0) {
		q++
	}
	return q
}

func floorDiv(x, d int64) int64 {
	q := x / d
	if x%d != 0 && (x > 0) != (d > 0) {
		q--
	}
	return q
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}
