package dep

import (
	"sync"

	"parascope/internal/cfg"
	"parascope/internal/dataflow"
	"parascope/internal/expr"
	"parascope/internal/fortran"
)

// Options selects which analysis capabilities are enabled; the
// ablation experiment (Table 3) toggles them individually.
type Options struct {
	// UseConstants substitutes propagated integer constants into
	// subscript expressions before testing.
	UseConstants bool
	// UseRanges enables the range-based (Banerjee) tests using loop
	// bounds; with it off only exact divisibility tests run.
	UseRanges bool
	// UseSections tests call-statement array accesses against
	// interprocedural regular-section summaries instead of assuming
	// they touch whole arrays.
	UseSections bool
	// InputDeps also records read-read dependences for display.
	InputDeps bool
}

// DefaultOptions enables every analysis.
func DefaultOptions() Options {
	return Options{UseConstants: true, UseRanges: true, UseSections: true}
}

// SectionDim bounds one dimension of an array section in symbols of
// the calling procedure.
type SectionDim struct {
	Lo, Hi expr.Linear
	Known  bool
}

// SectionAccess describes one array side effect of a call as a
// bounded regular section.
type SectionAccess struct {
	Sym   *fortran.Symbol
	Write bool
	Dims  []SectionDim
}

// Summaries provides interprocedural side-effect detail for calls.
type Summaries interface {
	// CallSections returns the array sections statement s (a CALL or
	// a statement containing a user function call) may access, with
	// ok=false when the callee is unknown.
	CallSections(s fortran.Stmt) ([]SectionAccess, bool)
}

// ref is one reference participating in dependence testing.
type ref struct {
	stmt    fortran.Stmt
	acc     dataflow.Access
	nest    []*cfg.Loop // enclosing loops, outermost first
	isCall  bool
	section *SectionAccess // bounds when from a summarized call
}

// Analyzer runs dependence analysis over one unit.
type Analyzer struct {
	DF         *dataflow.Analysis
	Assertions *expr.Env // user assertions; may be nil
	Summ       Summaries // may be nil
	Opts       Options
}

// Analyze computes the dependence graph of df's unit.
func Analyze(df *dataflow.Analysis, assertions *expr.Env, summ Summaries, opts Options) *Graph {
	return AnalyzeN(df, assertions, summ, opts, 1)
}

// AnalyzeN is Analyze with subscript testing sharded by symbol across
// up to workers goroutines. The result is identical to the serial run:
// each symbol's reference pairs test into a private shard graph (the
// analyzer itself is only read — environments are built fresh per
// pair) and shards merge back in first-appearance symbol order before
// IDs are assigned. Worthwhile only when the caller is not already
// running units in parallel.
func AnalyzeN(df *dataflow.Analysis, assertions *expr.Env, summ Summaries, opts Options, workers int) *Graph {
	a := &Analyzer{DF: df, Assertions: assertions, Summ: summ, Opts: opts}
	return a.run(workers)
}

func (a *Analyzer) run(workers int) *Graph {
	g := &Graph{Unit: a.DF.Unit, Stats: newStats(), byLoop: map[*cfg.Loop][]*Dependence{}}
	refs := a.collectRefs()
	bySym := map[*fortran.Symbol][]*ref{}
	var symOrder []*fortran.Symbol
	for _, r := range refs {
		if _, ok := bySym[r.acc.Sym]; !ok {
			symOrder = append(symOrder, r.acc.Sym)
		}
		bySym[r.acc.Sym] = append(bySym[r.acc.Sym], r)
	}
	if workers > len(symOrder) {
		workers = len(symOrder)
	}
	if workers > 1 {
		a.runSharded(g, symOrder, bySym, workers)
	} else {
		for _, sym := range symOrder {
			a.testSym(g, sym, bySym[sym])
		}
	}
	a.addControlDeps(g)
	a.finalize(g)
	return g
}

// runSharded fans symbols out over workers goroutines, one shard graph
// per symbol, and merges deterministically.
func (a *Analyzer) runSharded(g *Graph, symOrder []*fortran.Symbol, bySym map[*fortran.Symbol][]*ref, workers int) {
	shards := make([]*Graph, len(symOrder))
	panics := make([]any, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panics[w] = r
				}
			}()
			for si := w; si < len(symOrder); si += workers {
				sg := &Graph{Unit: a.DF.Unit, Stats: newStats()}
				a.testSym(sg, symOrder[si], bySym[symOrder[si]])
				shards[si] = sg
			}
		}(w)
	}
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			// Re-raise on the caller's goroutine so the session's
			// usual panic isolation applies.
			panic(p)
		}
	}
	for _, sg := range shards {
		if sg == nil {
			continue
		}
		g.Deps = append(g.Deps, sg.Deps...)
		g.Stats.mergeFrom(&sg.Stats)
	}
}

// testSym tests every reference pair of one symbol, in collection
// order, applying the standard skip rules.
func (a *Analyzer) testSym(g *Graph, sym *fortran.Symbol, list []*ref) {
	for i := 0; i < len(list); i++ {
		for j := i; j < len(list); j++ {
			r1, r2 := list[i], list[j]
			if !r1.acc.Write && !r2.acc.Write && !a.Opts.InputDeps {
				continue
			}
			if i == j && !r1.acc.Write {
				continue
			}
			a.testRefPair(g, sym, r1, r2)
		}
	}
}

// finalize assigns dependence IDs and builds the per-loop index.
func (a *Analyzer) finalize(g *Graph) {
	for i, d := range g.Deps {
		d.ID = i + 1
		for _, l := range commonNest(a.DF.Tree, d.Src, d.Dst) {
			g.byLoop[l] = append(g.byLoop[l], d)
		}
	}
}

// collectRefs gathers every variable access in the unit, attaching
// loop nests and section summaries.
func (a *Analyzer) collectRefs() []*ref {
	var out []*ref
	fortran.WalkStmts(a.DF.Unit.Body, func(s fortran.Stmt) bool {
		var secs []SectionAccess
		haveSecs := false
		if a.Opts.UseSections && a.Summ != nil {
			secs, haveSecs = a.Summ.CallSections(s)
		}
		for _, ac := range a.DF.Accesses(s) {
			if ac.Sym.Kind != fortran.SymScalar && ac.Sym.Kind != fortran.SymArray {
				continue
			}
			r := &ref{stmt: s, acc: ac, nest: nestOf(a.DF.Tree, s)}
			if ac.Ref == nil {
				r.isCall = true
				if haveSecs {
					for k := range secs {
						if secs[k].Sym == ac.Sym && secs[k].Write == ac.Write {
							r.section = &secs[k]
						}
					}
				}
			} else if ac.Sym.IsArray() && len(ac.Ref.Subs) == 0 {
				// Whole-array actual argument.
				r.isCall = true
				if haveSecs {
					for k := range secs {
						if secs[k].Sym == ac.Sym && secs[k].Write == ac.Write {
							r.section = &secs[k]
						}
					}
				}
			}
			out = append(out, r)
		}
		return true
	})
	return out
}

func nestOf(tree *cfg.LoopTree, s fortran.Stmt) []*cfg.Loop {
	l := tree.Innermost(s)
	if do, ok := s.(*fortran.DoStmt); ok {
		// A DO statement's own loop does not enclose it for
		// dependence purposes; Innermost already excludes it, but the
		// bounds expressions live outside the loop.
		_ = do
	}
	if l == nil {
		return nil
	}
	return l.Nest()
}

// commonNest returns the loops enclosing both statements, outermost
// first.
func commonNest(tree *cfg.LoopTree, s1, s2 fortran.Stmt) []*cfg.Loop {
	n1 := nestOf(tree, s1)
	n2 := nestOf(tree, s2)
	var out []*cfg.Loop
	for i := 0; i < len(n1) && i < len(n2); i++ {
		if n1[i] != n2[i] {
			break
		}
		out = append(out, n1[i])
	}
	return out
}

// env builds the test environment at the common nest: loop ranges,
// constants at the source statement, plus user assertions.
func (a *Analyzer) env(src fortran.Stmt) *expr.Env {
	var env *expr.Env
	if a.Opts.UseConstants {
		env = a.DF.EnvAt(src)
	} else {
		env = a.DF.EnvLoopsOnly(src)
	}
	if a.Assertions != nil {
		merged := env.Clone()
		mergeEnv(merged, a.Assertions)
		return merged
	}
	return env
}

// mergeEnv intersects src's knowledge into dst.
func mergeEnv(dst, src *expr.Env) {
	for _, sym := range src.Symbols() {
		dst.SetRange(sym, src.RangeOf(sym))
	}
}

func (a *Analyzer) testRefPair(g *Graph, sym *fortran.Symbol, r1, r2 *ref) {
	nest := commonNest(a.DF.Tree, r1.stmt, r2.stmt)
	// Scalars: dependences on every common level; privatization and
	// reduction recognition (not subscript tests) remove them.
	if sym.Kind == fortran.SymScalar {
		a.emitAllLevels(g, sym, r1, r2, nest, "scalar")
		return
	}
	// Calls with no section information touch the whole array.
	if (r1.isCall && r1.section == nil) || (r2.isCall && r2.section == nil) {
		a.emitAllLevels(g, sym, r1, r2, nest, "call")
		return
	}
	if r1.isCall || r2.isCall {
		res := a.testSections(g, sym, r1, r2, nest)
		if res.independent {
			return
		}
		a.emit(g, sym, r1, r2, nest, res)
		return
	}
	// Element references on both sides: the hierarchical suite.
	res := a.testSubscripts(g, sym, r1, r2, nest)
	if res.independent {
		return
	}
	a.emit(g, sym, r1, r2, nest, res)
}

// testSubscripts runs the dependence equation tests over every
// subscript dimension.
func (a *Analyzer) testSubscripts(g *Graph, sym *fortran.Symbol, r1, r2 *ref, nest []*cfg.Loop) pairResult {
	g.Stats.PairsTested++
	n := len(nest)
	res := pairResult{
		dirs:  make([]dirSet, n),
		dist:  make([]int64, n),
		known: make([]bool, n),
	}
	for k := range res.dirs {
		res.dirs[k] = dirAll
	}
	env := a.env(r1.stmt)
	variant := a.variantFn(nest)
	consts := a.constsFn(r1.stmt)
	sub1 := r1.acc.Ref.Subs
	sub2 := r2.acc.Ref.Subs
	dims := len(sub1)
	if len(sub2) < dims {
		dims = len(sub2)
	}
	provenAll := dims > 0
	for d := 0; d < dims; d++ {
		e := buildEqn(a.DF.Unit, sub1[d], sub2[d], nest, env, variant, consts)
		before := append([]bool(nil), res.known...)
		beforeDist := append([]int64(nil), res.dist...)
		name, outcome := testDim(e, env, nest, &res, a.Opts.UseRanges)
		if name != "" {
			g.Stats.merge(name, outcome)
		}
		if outcome == outcomeIndependent {
			res.independent = true
			res.decidedBy = name
			return res
		}
		if outcome != outcomeProven {
			provenAll = false
		}
		// Delta-style distance consistency between dimensions.
		for k := 0; k < n; k++ {
			if before[k] && res.known[k] && beforeDist[k] != res.dist[k] {
				res.independent = true
				res.decidedBy = "delta"
				g.Stats.merge("delta", outcomeIndependent)
				return res
			}
		}
		// An emptied direction set means no feasible relation.
		for k := 0; k < n; k++ {
			if res.dirs[k] == 0 {
				res.independent = true
				res.decidedBy = name
				return res
			}
		}
	}
	res.proven = provenAll && res.blockedBy == ""
	return res
}

// variantFn reports whether a symbol's value can change between two
// reference instances within the common nest.
func (a *Analyzer) variantFn(nest []*cfg.Loop) func(*fortran.Symbol) bool {
	var defined map[*fortran.Symbol]bool
	if len(nest) > 0 {
		defined = map[*fortran.Symbol]bool{}
		l := nest[0]
		defined[l.Do.Var] = false // common loop vars handled separately
		for _, s := range l.Stmts() {
			for _, ac := range a.DF.Accesses(s) {
				if ac.Write {
					defined[ac.Sym] = true
				}
			}
		}
		for _, cl := range nest {
			defined[cl.Do.Var] = false
		}
	}
	return func(sym *fortran.Symbol) bool {
		if sym.Kind == fortran.SymParam {
			return false
		}
		if defined == nil {
			// No common loop: the references execute once each;
			// loop-variant values from sibling nests differ.
			return sym.Type != fortran.TypeInteger || symDefinedAnywhere(a.DF, sym)
		}
		return defined[sym]
	}
}

func symDefinedAnywhere(df *dataflow.Analysis, sym *fortran.Symbol) bool {
	for _, d := range df.Defs {
		if d.Sym == sym {
			return true
		}
	}
	return false
}

func (a *Analyzer) constsFn(src fortran.Stmt) func(*fortran.Symbol) (int64, bool) {
	if !a.Opts.UseConstants {
		return nil
	}
	return func(sym *fortran.Symbol) (int64, bool) {
		return a.DF.ConstAt(src, sym)
	}
}

// testSections tests a pair where at least one side is a call with a
// regular-section summary: exact (degenerate) section dimensions go
// through the full subscript suite; ranged ones through the
// direction-aware overlap test.
func (a *Analyzer) testSections(g *Graph, sym *fortran.Symbol, r1, r2 *ref, nest []*cfg.Loop) pairResult {
	g.Stats.PairsTested++
	n := len(nest)
	res := pairResult{
		dirs:      make([]dirSet, n),
		dist:      make([]int64, n),
		known:     make([]bool, n),
		decidedBy: "section",
	}
	for k := range res.dirs {
		res.dirs[k] = dirAll
	}
	env := a.env(r1.stmt)
	variant := a.variantFn(nest)
	consts := a.constsFn(r1.stmt)
	dims := len(sym.Dims)
	for d := 0; d < dims; d++ {
		sd := a.dimDescOf(r1, d, consts)
		dd := a.dimDescOf(r2, d, consts)
		if !sd.known || !dd.known {
			if res.blockedBy == "" {
				res.blockedBy = firstNonEmpty(sd.blocked, dd.blocked, "symbolic")
			}
			continue
		}
		if sd.exact && dd.exact {
			e := eqnFromLinears(sd.lo, dd.lo, nest, env, variant)
			name, outcome := testDim(e, env, nest, &res, a.Opts.UseRanges)
			if name != "" {
				g.Stats.merge(name, outcome)
			}
			if outcome == outcomeIndependent {
				res.independent = true
				res.decidedBy = name
				return res
			}
		} else {
			if !overlapFeasible(sd, dd, nest, env, variant, -1, DirStar) {
				res.independent = true
				g.Stats.merge("section", outcomeIndependent)
				return res
			}
			if a.Opts.UseRanges {
				for k := 0; k < n; k++ {
					for _, dir := range []struct {
						bit dirSet
						d   Direction
					}{{dirBitLt, DirLt}, {dirBitEq, DirEq}, {dirBitGt, DirGt}} {
						if res.dirs[k].has(dir.bit) &&
							!overlapFeasible(sd, dd, nest, env, variant, k, dir.d) {
							res.dirs[k] &^= dir.bit
						}
					}
				}
			}
			g.Stats.merge("section", outcomeMaybe)
		}
		for k := 0; k < n; k++ {
			if res.dirs[k] == 0 {
				res.independent = true
				res.decidedBy = "section"
				return res
			}
		}
	}
	return res
}

// dimDescOf converts one dimension of a reference or section into
// linear bounds.
func (a *Analyzer) dimDescOf(r *ref, d int, consts func(*fortran.Symbol) (int64, bool)) dimDesc {
	if r.section != nil {
		if d >= len(r.section.Dims) || !r.section.Dims[d].Known {
			return dimDesc{known: false, blocked: "symbolic"}
		}
		sd := r.section.Dims[d]
		return dimDesc{
			exact: sd.Lo.Equal(sd.Hi),
			lo:    substConsts(sd.Lo, consts),
			hi:    substConsts(sd.Hi, consts),
			known: true,
		}
	}
	if r.acc.Ref == nil || d >= len(r.acc.Ref.Subs) {
		return dimDesc{known: false, blocked: "symbolic"}
	}
	lin, ok := expr.Linearize(a.DF.Unit, r.acc.Ref.Subs[d])
	if !ok {
		blocked := "nonlinear"
		if containsIndexArray(r.acc.Ref.Subs[d]) {
			blocked = "index-array"
		}
		return dimDesc{known: false, blocked: blocked}
	}
	lin = substConsts(lin, consts)
	return dimDesc{exact: true, lo: lin, hi: lin, known: true}
}

func firstNonEmpty(ss ...string) string {
	for _, s := range ss {
		if s != "" {
			return s
		}
	}
	return ""
}

// ---------------------------------------------------------------------------
// Emission

// emitAllLevels emits a conservative dependence at every common level
// plus the loop-independent one; used for scalars and opaque calls.
func (a *Analyzer) emitAllLevels(g *Graph, sym *fortran.Symbol, r1, r2 *ref, nest []*cfg.Loop, test string) {
	n := len(nest)
	res := pairResult{dirs: make([]dirSet, n), dist: make([]int64, n), known: make([]bool, n)}
	for k := range res.dirs {
		res.dirs[k] = dirAll
	}
	res.decidedBy = test
	a.emit(g, sym, r1, r2, nest, res)
}

// emit converts a surviving pairResult into dependence edges: one per
// feasible carrier level in each direction, plus loop-independent
// edges following lexical order.
func (a *Analyzer) emit(g *Graph, sym *fortran.Symbol, r1, r2 *ref, nest []*cfg.Loop, res pairResult) {
	n := len(nest)
	test := res.decidedBy
	if test == "" {
		test = "subscript"
	}
	mark := MarkPending
	if res.proven {
		mark = MarkProven
	}
	add := func(src, dst *ref, level int, dirs []Direction, dist []int64, known []bool) {
		if !src.acc.Write && !dst.acc.Write {
			if !a.Opts.InputDeps {
				return
			}
		}
		d := &Dependence{
			Sym: sym, Src: src.stmt, Dst: dst.stmt,
			SrcRef: src.acc.Ref, DstRef: dst.acc.Ref,
			Class: classify(src.acc.Write, dst.acc.Write),
			Level: level, Dirs: dirs, Dist: dist, Known: known,
			Mark: mark, Test: test, Reason: res.blockedBy,
			Blockers: res.blockSyms,
		}
		if level > 0 {
			d.Loop = nest[level-1]
		}
		g.Deps = append(g.Deps, d)
	}
	// Forward direction (r1 as source): carrier level k needs '=' on
	// all outer levels and '<' at k.
	eqPrefix := true
	for k := 0; k < n; k++ {
		if eqPrefix && res.dirs[k].has(dirBitLt) {
			add(r1, r2, k+1, forwardDirs(res, k), distVec(res, k, false), knownVec(res, k))
		}
		if !res.dirs[k].has(dirBitEq) {
			eqPrefix = false
		}
		if !eqPrefix {
			break
		}
	}
	// Loop-independent: all levels '='.
	allEq := true
	for k := 0; k < n; k++ {
		if !res.dirs[k].has(dirBitEq) {
			allEq = false
		}
	}
	if allEq && r1.stmt != r2.stmt {
		dirs := make([]Direction, n)
		for k := range dirs {
			dirs[k] = DirEq
		}
		if r1.stmt.ID() < r2.stmt.ID() {
			add(r1, r2, 0, dirs, nil, nil)
		} else {
			add(r2, r1, 0, dirs, nil, nil)
		}
	}
	// Backward direction (r2 as source): needs '>' at the carrier.
	if r1 != r2 {
		eqPrefix = true
		for k := 0; k < n; k++ {
			if eqPrefix && res.dirs[k].has(dirBitGt) {
				add(r2, r1, k+1, backwardDirs(res, k), distVec(res, k, true), knownVec(res, k))
			}
			if !res.dirs[k].has(dirBitEq) {
				eqPrefix = false
			}
			if !eqPrefix {
				break
			}
		}
	}
}

func classify(srcWrite, dstWrite bool) Class {
	switch {
	case srcWrite && dstWrite:
		return ClassOutput
	case srcWrite:
		return ClassFlow
	case dstWrite:
		return ClassAnti
	default:
		return ClassInput
	}
}

func forwardDirs(res pairResult, carrier int) []Direction {
	out := make([]Direction, len(res.dirs))
	for k := range out {
		switch {
		case k < carrier:
			out[k] = DirEq
		case k == carrier:
			out[k] = DirLt
		default:
			out[k] = summarize(res.dirs[k])
		}
	}
	return out
}

func backwardDirs(res pairResult, carrier int) []Direction {
	out := make([]Direction, len(res.dirs))
	for k := range out {
		switch {
		case k < carrier:
			out[k] = DirEq
		case k == carrier:
			out[k] = DirLt // after endpoint swap '>' becomes '<'
		default:
			out[k] = summarize(invert(res.dirs[k]))
		}
	}
	return out
}

func invert(s dirSet) dirSet {
	var out dirSet
	if s.has(dirBitLt) {
		out |= dirBitGt
	}
	if s.has(dirBitEq) {
		out |= dirBitEq
	}
	if s.has(dirBitGt) {
		out |= dirBitLt
	}
	return out
}

func summarize(s dirSet) Direction {
	switch s {
	case dirBitLt:
		return DirLt
	case dirBitEq:
		return DirEq
	case dirBitGt:
		return DirGt
	case dirBitLt | dirBitEq:
		return DirLe
	case dirBitGt | dirBitEq:
		return DirGe
	default:
		return DirStar
	}
}

func distVec(res pairResult, carrier int, backward bool) []int64 {
	out := make([]int64, len(res.dist))
	for k, v := range res.dist {
		if backward {
			out[k] = -v
		} else {
			out[k] = v
		}
	}
	return out
}

func knownVec(res pairResult, carrier int) []bool {
	return append([]bool(nil), res.known...)
}

// addControlDeps records control dependences for display and for
// transformation safety checks.
func (a *Analyzer) addControlDeps(g *Graph) {
	cd := a.DF.G.ComputeControlDeps()
	for _, node := range a.DF.G.Nodes {
		if node.Stmt == nil {
			continue
		}
		for _, br := range cd.DepsOf(node) {
			if br.Stmt == nil || br.Stmt == node.Stmt {
				continue
			}
			if _, isDo := br.Stmt.(*fortran.DoStmt); isDo {
				continue // loop structure, not a real branch
			}
			d := &Dependence{
				Sym:   controlSym,
				Src:   br.Stmt,
				Dst:   node.Stmt,
				Class: ClassControl,
				Mark:  MarkProven,
				Test:  "control",
			}
			g.Deps = append(g.Deps, d)
		}
	}
}

// controlSym is the placeholder symbol for control dependences.
var controlSym = &fortran.Symbol{Name: "(control)", Kind: fortran.SymScalar}
