// Package faultpoint provides named fault-injection sites for chaos
// testing. Production code calls Hit at interesting boundaries
// (parsing, analysis, transformation, cache lookup); the call is a
// single atomic load when nothing is armed, so the sites are free in
// normal operation. Tests arm a site with a Fault — a delay, an
// error, a panic, or a combination — optionally scoped by a substring
// match on the site's detail string, and the next matching Hit
// injects it. This is how the server's resilience tests create a
// panicking session or a hung analysis on demand without touching
// production logic.
package faultpoint

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Site names instrumented in the codebase. Arbitrary strings are
// allowed; these constants are the sites that ship instrumented.
const (
	// Parse fires before a source file is parsed (detail: path).
	Parse = "parse"
	// Analyze fires before a program unit is analyzed (detail:
	// "path:unit"). Analysis has no error channel, so an Err fault at
	// this site surfaces as a panic in the worker that hit it.
	Analyze = "analyze"
	// Transform fires before a transformation is checked and applied
	// (detail: "path:transformation").
	Transform = "transform"
	// CacheGet fires on every analysis-cache lookup (detail: the
	// content-hash key). An Err fault degrades the lookup to a miss.
	CacheGet = "cache-get"
	// JournalAppend fires before a session journal append (detail:
	// "sessionID:op"). An Err fault models a failed disk write and
	// degrades the session to read-only.
	JournalAppend = "journal-append"
	// JournalSync fires before a journal fsync (detail: session ID).
	JournalSync = "journal-fsync"
	// JournalSnapshot fires before a snapshot compaction rewrites a
	// journal (detail: session ID).
	JournalSnapshot = "journal-snapshot"
	// JournalReplay fires before each record is replayed during crash
	// recovery (detail: "sessionID:op"). An Err fault stops the replay
	// and leaves the session read-only at the recovered prefix.
	JournalReplay = "journal-replay"
	// PlanFork fires before a speculative world is forked from its
	// parent source (detail: the candidate step line). A Panic fault is
	// recovered inside the world — the world is discarded, the search
	// and the parent session continue.
	PlanFork = "plan-fork"
	// PlanScore fires before a forked world is scored (detail: the
	// candidate step line). Same blast radius as PlanFork: the world.
	PlanScore = "plan-score"
	// PlanApply fires before an accepted plan's steps are replayed
	// through the journaled mutation path (detail: "sessionID:planID").
	PlanApply = "plan-apply"
	// MigrateStream fires before an outbound migration ships its
	// journal stream (detail: session ID). An Err fault tears the
	// stream mid-record — the target must reject it whole and the
	// source must stay authoritative.
	MigrateStream = "migrate-stream"
	// ExecBuild fires before a cold go build of a generated program
	// (detail: the cache hash). An Err fault models a broken toolchain;
	// with Fallback set the run degrades to the interpreter.
	ExecBuild = "exec-build"
	// ExecRun fires before a compiled binary is spawned (detail: the
	// cache hash).
	ExecRun = "exec-run"
	// CacheVerify fires before a cached compiled binary is checksummed
	// against its manifest (detail: the cache hash). An Err fault
	// models a corrupt entry: it is quarantined and rebuilt.
	CacheVerify = "cache-verify"
)

// Fault describes the behavior injected when an armed site is hit.
// Delay is applied first, then Panic or Err (Panic wins).
type Fault struct {
	// Match scopes the fault to Hit calls whose detail string
	// contains it; empty matches every call at the site.
	Match string
	// Delay sleeps before acting — armed alone it models a hang.
	Delay time.Duration
	// Err is returned from Hit for the caller to propagate.
	Err error
	// Panic makes Hit panic with a descriptive value.
	Panic bool
	// Times bounds how often the fault fires; 0 means every match.
	Times int
}

type armedFault struct {
	Fault
	fired atomic.Int64
}

var (
	// armedCount is the fast-path gate: zero means Hit is a no-op.
	armedCount atomic.Int64

	mu    sync.Mutex
	sites map[string][]*armedFault
)

// Arm registers a fault at a site and returns its disarm function.
// Multiple faults may be armed at one site; the first one that
// matches (and has firings left) wins.
func Arm(site string, f Fault) (disarm func()) {
	af := &armedFault{Fault: f}
	mu.Lock()
	if sites == nil {
		sites = map[string][]*armedFault{}
	}
	sites[site] = append(sites[site], af)
	mu.Unlock()
	armedCount.Add(1)
	var once sync.Once
	return func() {
		once.Do(func() {
			mu.Lock()
			list := sites[site]
			for i, x := range list {
				if x == af {
					sites[site] = append(list[:i], list[i+1:]...)
					break
				}
			}
			mu.Unlock()
			armedCount.Add(-1)
		})
	}
}

// Reset disarms every fault — test cleanup.
func Reset() {
	mu.Lock()
	n := 0
	for _, list := range sites {
		n += len(list)
	}
	sites = nil
	mu.Unlock()
	armedCount.Add(int64(-n))
}

// Fired reports how many injections have fired at the site since its
// faults were armed (disarming removes the counters).
func Fired(site string) int64 {
	mu.Lock()
	defer mu.Unlock()
	var n int64
	for _, af := range sites[site] {
		n += af.fired.Load()
	}
	return n
}

// ArmSpec arms faults described by a compact spec string — the
// cross-process variant of Arm for chaos tests that drive a real
// daemon they cannot call into (pedd -faults). The spec is a
// comma-separated list of site=kind[:arg] entries:
//
//	journal-append=delay:25ms     sleep 25ms at every journal append
//	plan-fork=panic               panic in every speculative world
//	analyze=err:injected          return an error from analysis
//
// Armed specs stay armed for the process lifetime (no disarm).
func ArmSpec(spec string) error {
	if spec == "" {
		return nil
	}
	for _, entry := range strings.Split(spec, ",") {
		site, kind, ok := strings.Cut(entry, "=")
		if !ok || site == "" {
			return fmt.Errorf("faultpoint: bad spec entry %q (want site=kind[:arg])", entry)
		}
		kind, arg, _ := strings.Cut(kind, ":")
		var f Fault
		switch kind {
		case "delay":
			d, err := time.ParseDuration(arg)
			if err != nil {
				return fmt.Errorf("faultpoint: bad delay in %q: %v", entry, err)
			}
			f.Delay = d
		case "err":
			if arg == "" {
				arg = "injected fault"
			}
			f.Err = errors.New(arg)
		case "panic":
			f.Panic = true
		default:
			return fmt.Errorf("faultpoint: unknown fault kind %q in %q", kind, entry)
		}
		Arm(site, f)
	}
	return nil
}

// Hit triggers the first matching armed fault at the site: it sleeps
// the fault's Delay, then panics or returns the fault's Err. With
// nothing armed (the production case) it returns nil after one
// atomic load.
func Hit(site, detail string) error {
	if armedCount.Load() == 0 {
		return nil
	}
	mu.Lock()
	var act *armedFault
	for _, af := range sites[site] {
		if af.Match != "" && !strings.Contains(detail, af.Match) {
			continue
		}
		if af.Times > 0 && af.fired.Load() >= int64(af.Times) {
			continue
		}
		act = af
		break
	}
	if act != nil {
		act.fired.Add(1)
	}
	mu.Unlock()
	if act == nil {
		return nil
	}
	if act.Delay > 0 {
		time.Sleep(act.Delay)
	}
	if act.Panic {
		panic(fmt.Sprintf("faultpoint %s: injected panic (detail %q)", site, detail))
	}
	return act.Err
}
