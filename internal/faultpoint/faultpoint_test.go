package faultpoint

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestDisarmedHitIsNoop(t *testing.T) {
	Reset()
	if err := Hit("nowhere", "detail"); err != nil {
		t.Fatalf("disarmed hit returned %v", err)
	}
}

func TestErrFaultAndMatch(t *testing.T) {
	t.Cleanup(Reset)
	boom := errors.New("injected")
	disarm := Arm(Parse, Fault{Match: "boom.f", Err: boom})
	defer disarm()
	if err := Hit(Parse, "healthy.f"); err != nil {
		t.Fatalf("non-matching detail injected %v", err)
	}
	if err := Hit(Parse, "boom.f"); !errors.Is(err, boom) {
		t.Fatalf("matching detail returned %v, want injected error", err)
	}
	if got := Fired(Parse); got != 1 {
		t.Fatalf("Fired = %d, want 1", got)
	}
	disarm()
	if err := Hit(Parse, "boom.f"); err != nil {
		t.Fatalf("disarmed site injected %v", err)
	}
}

func TestTimesBoundsFirings(t *testing.T) {
	t.Cleanup(Reset)
	Arm(Analyze, Fault{Err: errors.New("x"), Times: 2})
	fired := 0
	for i := 0; i < 5; i++ {
		if Hit(Analyze, "") != nil {
			fired++
		}
	}
	if fired != 2 {
		t.Fatalf("fault fired %d times, want 2", fired)
	}
}

func TestPanicFault(t *testing.T) {
	t.Cleanup(Reset)
	Arm(Transform, Fault{Panic: true})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("armed panic fault did not panic")
		}
		if !strings.Contains(r.(string), "faultpoint transform") {
			t.Fatalf("panic value %v does not name the site", r)
		}
	}()
	_ = Hit(Transform, "p.f:parallelize")
}

func TestDelayFault(t *testing.T) {
	t.Cleanup(Reset)
	Arm(CacheGet, Fault{Delay: 30 * time.Millisecond})
	start := time.Now()
	if err := Hit(CacheGet, "key"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("delay fault returned after %v", d)
	}
}

// TestConcurrentHitAndArm races Hit against Arm/disarm/Reset under
// -race: the registry must stay consistent.
func TestConcurrentHitAndArm(t *testing.T) {
	t.Cleanup(Reset)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = Hit(Analyze, "p.f:main")
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		disarm := Arm(Analyze, Fault{Err: errors.New("x"), Match: "p.f"})
		disarm()
	}
	Reset()
	close(stop)
	wg.Wait()
}
