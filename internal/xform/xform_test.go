package xform

import (
	"strings"
	"testing"

	"parascope/internal/dep"
	"parascope/internal/fortran"
	"parascope/internal/interp"
)

func newCtx(t *testing.T, src string) *Context {
	t.Helper()
	f, err := fortran.Parse("t.f", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return NewContext(f, f.Units[0], nil, nil, nil, dep.DefaultOptions())
}

func firstLoop(t *testing.T, c *Context) *fortran.DoStmt {
	t.Helper()
	if len(c.DF.Tree.All) == 0 {
		t.Fatal("no loops")
	}
	return c.DF.Tree.All[0].Do
}

// reparse round-trips the transformed unit through the parser to make
// sure every rewrite emits valid Fortran.
func reparse(t *testing.T, c *Context) {
	t.Helper()
	printed := fortran.Print(c.File)
	if _, err := fortran.Parse("rt.f", printed); err != nil {
		t.Fatalf("transformed program does not reparse: %v\n%s", err, printed)
	}
}

func TestParallelizeCleanLoop(t *testing.T) {
	c := newCtx(t, `
      program main
      integer i
      real a(100), b(100)
      do i = 1, 100
         a(i) = b(i)*2.0
      enddo
      end
`)
	do := firstLoop(t, c)
	tr := Parallelize{Do: do}
	v := tr.Check(c)
	if !v.OK() || !v.Profitable {
		t.Fatalf("verdict = %s", v)
	}
	if err := tr.Apply(c); err != nil {
		t.Fatal(err)
	}
	if !do.Parallel {
		t.Error("loop not marked parallel")
	}
	if len(do.Private) != 1 || do.Private[0].Name != "i" {
		t.Errorf("private = %v, want [i]", do.Private)
	}
	reparse(t, c)
	if !strings.Contains(fortran.Print(c.File), "c$par doall") {
		t.Error("printed output missing doall annotation")
	}
}

func TestParallelizeBlockedByRecurrence(t *testing.T) {
	c := newCtx(t, `
      program main
      integer i
      real a(100)
      do i = 2, 100
         a(i) = a(i-1) + 1.0
      enddo
      end
`)
	tr := Parallelize{Do: firstLoop(t, c)}
	v := tr.Check(c)
	if v.Safe {
		t.Fatalf("recurrence must block parallelization: %s", v)
	}
}

func TestParallelizeWithPrivatizationAndReduction(t *testing.T) {
	c := newCtx(t, `
      program main
      integer i
      real t, s, a(100), b(100)
      s = 0.0
      do i = 1, 100
         t = a(i)*2.0
         b(i) = t + 1.0
         s = s + t
      enddo
      print *, s
      end
`)
	do := firstLoop(t, c)
	tr := Parallelize{Do: do}
	v := tr.Check(c)
	if !v.Safe {
		t.Fatalf("privatization+reduction should make this safe: %s", v)
	}
	if err := tr.Apply(c); err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, p := range do.Private {
		names[p.Name] = true
	}
	if !names["t"] || !names["i"] {
		t.Errorf("private = %v, want t and i", do.Private)
	}
	if len(do.Reductions) != 1 || do.Reductions[0].Sym.Name != "s" {
		t.Errorf("reductions = %v", do.Reductions)
	}
}

func TestSerialize(t *testing.T) {
	c := newCtx(t, `
      program main
      integer i
      real a(100)
      do i = 1, 100
         a(i) = 1.0
      enddo
      end
`)
	do := firstLoop(t, c)
	p := Parallelize{Do: do}
	if err := p.Apply(c); err != nil {
		t.Fatal(err)
	}
	s := Serialize{Do: do}
	if v := s.Check(c); !v.OK() {
		t.Fatalf("serialize should be allowed: %s", v)
	}
	if err := s.Apply(c); err != nil {
		t.Fatal(err)
	}
	if do.Parallel || do.Private != nil {
		t.Error("serialize did not clear parallel state")
	}
}

func TestInterchange(t *testing.T) {
	c := newCtx(t, `
      program main
      integer i, j
      real a(100,100)
      do j = 1, 100
         do i = 1, 100
            a(j,i) = 1.0
         enddo
      enddo
      end
`)
	outer := firstLoop(t, c)
	tr := Interchange{Outer: outer}
	v := tr.Check(c)
	if !v.OK() {
		t.Fatalf("verdict = %s", v)
	}
	// a(j,i): after interchange, inner var j indexes dim 1: stride-1.
	if !v.Profitable {
		t.Errorf("interchange should be profitable for locality: %s", v)
	}
	if err := tr.Apply(c); err != nil {
		t.Fatal(err)
	}
	c.Refresh()
	if outer.Var.Name != "i" {
		t.Errorf("outer var = %s, want i", outer.Var.Name)
	}
	inner := outer.Body[0].(*fortran.DoStmt)
	if inner.Var.Name != "j" {
		t.Errorf("inner var = %s, want j", inner.Var.Name)
	}
	reparse(t, c)
}

func TestInterchangeUnsafe(t *testing.T) {
	// (<,>) direction: interchange illegal.
	c := newCtx(t, `
      program main
      integer i, j
      real a(100,100)
      do i = 2, 100
         do j = 1, 99
            a(i,j) = a(i-1,j+1)
         enddo
      enddo
      end
`)
	tr := Interchange{Outer: firstLoop(t, c)}
	v := tr.Check(c)
	if !v.Applicable {
		t.Fatalf("should be applicable: %s", v)
	}
	if v.Safe {
		t.Fatalf("(<,>) dependence must block interchange: %s", v)
	}
}

func TestInterchangeTriangularNotApplicable(t *testing.T) {
	c := newCtx(t, `
      program main
      integer i, j
      real a(100,100)
      do i = 1, 100
         do j = i, 100
            a(i,j) = 1.0
         enddo
      enddo
      end
`)
	tr := Interchange{Outer: firstLoop(t, c)}
	if v := tr.Check(c); v.Applicable {
		t.Fatalf("triangular nest must not be applicable: %s", v)
	}
}

func TestReverse(t *testing.T) {
	c := newCtx(t, `
      program main
      integer i
      real a(100)
      do i = 1, 100
         a(i) = 1.0
      enddo
      end
`)
	do := firstLoop(t, c)
	tr := Reverse{Do: do}
	if v := tr.Check(c); !v.OK() {
		t.Fatalf("verdict = %s", v)
	}
	if err := tr.Apply(c); err != nil {
		t.Fatal(err)
	}
	c.Refresh()
	if got := fortran.StmtText(do); got != "do i = 100, 1, -1" {
		t.Errorf("header = %q", got)
	}
	reparse(t, c)
}

func TestReverseUnsafeWithRecurrence(t *testing.T) {
	c := newCtx(t, `
      program main
      integer i
      real a(100)
      do i = 2, 100
         a(i) = a(i-1)
      enddo
      end
`)
	tr := Reverse{Do: firstLoop(t, c)}
	if v := tr.Check(c); v.Safe {
		t.Fatalf("recurrence must block reversal: %s", v)
	}
}

func TestSkew(t *testing.T) {
	c := newCtx(t, `
      program main
      integer i, j
      real a(100,100)
      do i = 1, 50
         do j = 1, 50
            a(i,j) = a(i,j) + 1.0
         enddo
      enddo
      end
`)
	outer := firstLoop(t, c)
	tr := Skew{Outer: outer, Factor: 1}
	if v := tr.Check(c); !v.OK() {
		t.Fatalf("verdict = %s", v)
	}
	if err := tr.Apply(c); err != nil {
		t.Fatal(err)
	}
	c.Refresh()
	inner := outer.Body[0].(*fortran.DoStmt)
	if got := fortran.StmtText(inner); !strings.Contains(got, "1 + 1*i") && !strings.Contains(got, "1 + i") {
		t.Errorf("skewed inner header = %q", got)
	}
	// Body references must compensate: a(i, j - i).
	as := inner.Body[0].(*fortran.AssignStmt)
	if !strings.Contains(as.Lhs.String(), "-") {
		t.Errorf("skewed subscript = %q, want j - f*i form", as.Lhs.String())
	}
	reparse(t, c)
}

func TestStripMine(t *testing.T) {
	c := newCtx(t, `
      program main
      integer i
      real a(100)
      do i = 1, 100
         a(i) = 1.0
      enddo
      end
`)
	do := firstLoop(t, c)
	tr := StripMine{Do: do, Size: 16}
	if v := tr.Check(c); !v.OK() || !v.Profitable {
		t.Fatalf("verdict = %s", v)
	}
	if err := tr.Apply(c); err != nil {
		t.Fatal(err)
	}
	c.Refresh()
	if do.Var.Name != "is" {
		t.Errorf("control var = %s, want is", do.Var.Name)
	}
	inner, ok := do.Body[0].(*fortran.DoStmt)
	if !ok || inner.Var.Name != "i" {
		t.Fatalf("inner loop missing: %v", do.Body[0])
	}
	if !strings.Contains(fortran.StmtText(inner), "min(") {
		t.Errorf("inner bound = %q, want min(...)", fortran.StmtText(inner))
	}
	reparse(t, c)
}

func TestUnrollDivisible(t *testing.T) {
	c := newCtx(t, `
      program main
      integer i
      real a(100), s
      s = 0.0
      do i = 1, 100
         a(i) = 2.0
      enddo
      end
`)
	do := c.DF.Tree.All[0].Do
	tr := Unroll{Do: do, Factor: 4}
	if v := tr.Check(c); !v.OK() {
		t.Fatalf("verdict = %s", v)
	}
	if err := tr.Apply(c); err != nil {
		t.Fatal(err)
	}
	c.Refresh()
	// One loop with 4 statements, step 4, no remainder.
	loops := c.DF.Tree.All
	if len(loops) != 1 {
		t.Fatalf("got %d loops, want 1 (no remainder)", len(loops))
	}
	if len(loops[0].Do.Body) != 4 {
		t.Errorf("unrolled body = %d stmts, want 4", len(loops[0].Do.Body))
	}
	reparse(t, c)
}

func TestUnrollWithRemainder(t *testing.T) {
	c := newCtx(t, `
      program main
      integer i
      real a(103)
      do i = 1, 103
         a(i) = 2.0
      enddo
      end
`)
	do := firstLoop(t, c)
	tr := Unroll{Do: do, Factor: 4}
	v := tr.Check(c)
	if !v.OK() {
		t.Fatalf("verdict = %s", v)
	}
	if err := tr.Apply(c); err != nil {
		t.Fatal(err)
	}
	c.Refresh()
	if len(c.DF.Tree.All) != 2 {
		t.Fatalf("got %d loops, want main + remainder", len(c.DF.Tree.All))
	}
	reparse(t, c)
}

func TestPeel(t *testing.T) {
	c := newCtx(t, `
      program main
      integer i
      real a(100)
      do i = 1, 100
         a(i) = 3.0
      enddo
      end
`)
	do := firstLoop(t, c)
	tr := Peel{Do: do}
	if v := tr.Check(c); !v.OK() {
		t.Fatalf("verdict = %s", v)
	}
	if err := tr.Apply(c); err != nil {
		t.Fatal(err)
	}
	c.Refresh()
	u := c.Unit
	as, ok := u.Body[0].(*fortran.AssignStmt)
	if !ok || as.Lhs.String() != "a(1)" {
		t.Fatalf("peeled stmt = %v, want a(1) = 3.0", u.Body[0])
	}
	if got := fortran.StmtText(c.DF.Tree.All[0].Do); got != "do i = 2, 100" {
		t.Errorf("rest loop = %q", got)
	}
	reparse(t, c)
}

func TestDistribute(t *testing.T) {
	// s1 feeds s2 loop-independently; s3 is a recurrence. SCCs:
	// {s1}, {s2}, {s3} — distribution yields 3 loops, the first two
	// parallelizable.
	c := newCtx(t, `
      program main
      integer i
      real a(100), b(100), c(100)
      do i = 2, 100
         a(i) = 1.0
         b(i) = a(i)*2.0
         c(i) = c(i-1) + 1.0
      enddo
      end
`)
	do := firstLoop(t, c)
	tr := Distribute{Do: do}
	v := tr.Check(c)
	if !v.OK() {
		t.Fatalf("verdict = %s", v)
	}
	if err := tr.Apply(c); err != nil {
		t.Fatal(err)
	}
	c.Refresh()
	if len(c.DF.Tree.Roots) != 3 {
		t.Fatalf("got %d loops after distribution, want 3", len(c.DF.Tree.Roots))
	}
	// The a/b loops must now parallelize; the c loop must not.
	okCount := 0
	for _, l := range c.DF.Tree.Roots {
		v := (Parallelize{Do: l.Do}).Check(c)
		if v.Safe {
			okCount++
		}
	}
	if okCount != 2 {
		t.Errorf("%d of 3 distributed loops parallelizable, want 2", okCount)
	}
	reparse(t, c)
}

func TestDistributeKeepsRecurrenceTogether(t *testing.T) {
	c := newCtx(t, `
      program main
      integer i
      real a(100), b(100)
      do i = 2, 100
         a(i) = b(i-1) + 1.0
         b(i) = a(i)*2.0
      enddo
      end
`)
	tr := Distribute{Do: firstLoop(t, c)}
	if v := tr.Check(c); v.Applicable {
		t.Fatalf("mutual recurrence is one SCC; distribution must not apply: %s", v)
	}
}

func TestFuse(t *testing.T) {
	c := newCtx(t, `
      program main
      integer i, j
      real a(100), b(100)
      do i = 1, 100
         a(i) = 1.0
      enddo
      do j = 1, 100
         b(j) = a(j)*2.0
      enddo
      end
`)
	l1 := c.DF.Tree.Roots[0].Do
	l2 := c.DF.Tree.Roots[1].Do
	tr := Fuse{First: l1, Second: l2}
	v := tr.Check(c)
	if !v.OK() {
		t.Fatalf("verdict = %s", v)
	}
	if err := tr.Apply(c); err != nil {
		t.Fatal(err)
	}
	c.Refresh()
	if len(c.DF.Tree.Roots) != 1 {
		t.Fatalf("got %d loops after fusion, want 1", len(c.DF.Tree.Roots))
	}
	fused := c.DF.Tree.Roots[0]
	if len(fused.Do.Body) != 2 {
		t.Errorf("fused body = %d stmts, want 2", len(fused.Do.Body))
	}
	// b(j) became b(i).
	as := fused.Do.Body[1].(*fortran.AssignStmt)
	if as.Lhs.String() != "b(i)" {
		t.Errorf("second stmt lhs = %q, want b(i)", as.Lhs.String())
	}
	// Fused loop still parallelizable (dep is loop-independent).
	if pv := (Parallelize{Do: fused.Do}).Check(c); !pv.Safe {
		t.Errorf("fused loop should stay parallel: %s", pv)
	}
	reparse(t, c)
}

func TestFusePrevented(t *testing.T) {
	// The first loop writes a(i); the second reads a(j+1), i.e. the
	// value the first loop produced one iteration ahead. Fused,
	// iteration i would read a(i+1) before iteration i+1 writes it —
	// a backward carried dependence.
	c := newCtx(t, `
      program main
      integer i, j
      real a(101), b(100), c(100)
      do i = 1, 100
         a(i) = b(i) + 1.0
      enddo
      do j = 1, 100
         c(j) = a(j+1)*2.0
      enddo
      end
`)
	l1 := c.DF.Tree.Roots[0].Do
	l2 := c.DF.Tree.Roots[1].Do
	tr := Fuse{First: l1, Second: l2}
	v := tr.Check(c)
	if !v.Applicable {
		t.Fatalf("should be applicable: %s", v)
	}
	if v.Safe {
		t.Fatalf("fusion-preventing dependence missed: %s", v)
	}
}

func TestFuseBoundsMismatch(t *testing.T) {
	c := newCtx(t, `
      program main
      integer i, j
      real a(100), b(100)
      do i = 1, 100
         a(i) = 1.0
      enddo
      do j = 1, 99
         b(j) = 2.0
      enddo
      end
`)
	tr := Fuse{First: c.DF.Tree.Roots[0].Do, Second: c.DF.Tree.Roots[1].Do}
	if v := tr.Check(c); v.Applicable {
		t.Fatalf("different bounds must not be applicable: %s", v)
	}
}

func TestStmtInterchange(t *testing.T) {
	c := newCtx(t, `
      program main
      real x, y
      x = 1.0
      y = 2.0
      end
`)
	s1, s2 := c.Unit.Body[0], c.Unit.Body[1]
	tr := StmtInterchange{First: s1, Second: s2}
	if v := tr.Check(c); !v.OK() {
		t.Fatalf("verdict = %s", v)
	}
	if err := tr.Apply(c); err != nil {
		t.Fatal(err)
	}
	c.Refresh()
	if c.Unit.Body[0] != s2 || c.Unit.Body[1] != s1 {
		t.Error("statements not swapped")
	}
}

func TestStmtInterchangeUnsafe(t *testing.T) {
	c := newCtx(t, `
      program main
      real x, y
      x = 1.0
      y = x*2.0
      end
`)
	tr := StmtInterchange{First: c.Unit.Body[0], Second: c.Unit.Body[1]}
	if v := tr.Check(c); v.Safe {
		t.Fatalf("flow dependence must block the swap: %s", v)
	}
}

func TestPrivatize(t *testing.T) {
	c := newCtx(t, `
      program main
      integer i
      real t, a(100), b(100)
      do i = 1, 100
         t = a(i)
         b(i) = t*2.0
      enddo
      end
`)
	do := firstLoop(t, c)
	sym := c.Unit.Lookup("t")
	tr := Privatize{Do: do, Sym: sym}
	if v := tr.Check(c); !v.OK() {
		t.Fatalf("verdict = %s", v)
	}
	if err := tr.Apply(c); err != nil {
		t.Fatal(err)
	}
	if len(do.Private) != 1 || do.Private[0] != sym {
		t.Errorf("private = %v", do.Private)
	}
}

func TestScalarExpand(t *testing.T) {
	c := newCtx(t, `
      program main
      integer i
      real t, a(100), b(100)
      do i = 1, 100
         t = a(i)*2.0
         b(i) = t + 1.0
      enddo
      print *, t
      end
`)
	do := firstLoop(t, c)
	sym := c.Unit.Lookup("t")
	tr := ScalarExpand{Do: do, Sym: sym}
	v := tr.Check(c)
	if !v.OK() {
		t.Fatalf("verdict = %s", v)
	}
	if err := tr.Apply(c); err != nil {
		t.Fatal(err)
	}
	c.Refresh()
	// t replaced by tx(i - 1 + 1) in the body.
	as := do.Body[0].(*fortran.AssignStmt)
	if !strings.HasPrefix(as.Lhs.String(), "tx(") {
		t.Errorf("expanded lhs = %q", as.Lhs.String())
	}
	// Last-value store inserted after the loop (t live at print).
	found := false
	for _, s := range c.Unit.Body {
		if a, ok := s.(*fortran.AssignStmt); ok && a.Lhs.String() == "t" {
			found = true
		}
	}
	if !found {
		t.Error("missing last-value copy-out")
	}
	// The loop should now parallelize.
	if pv := (Parallelize{Do: do}).Check(c); !pv.Safe {
		t.Errorf("expanded loop should parallelize: %s", pv)
	}
	reparse(t, c)
}

func TestRecognizeReductions(t *testing.T) {
	c := newCtx(t, `
      program main
      integer i
      real s, a(100)
      s = 0.0
      do i = 1, 100
         s = s + a(i)
      enddo
      print *, s
      end
`)
	do := firstLoop(t, c)
	tr := RecognizeReductions{Do: do}
	if v := tr.Check(c); !v.OK() {
		t.Fatalf("verdict = %s", v)
	}
	if err := tr.Apply(c); err != nil {
		t.Fatal(err)
	}
	if len(do.Reductions) != 1 || do.Reductions[0].Sym.Name != "s" {
		t.Errorf("reductions = %v", do.Reductions)
	}
}

func TestNormalize(t *testing.T) {
	src := `
      program main
      integer i
      real a(100), s
      s = 0.0
      do i = 5, 99, 2
         a(i) = real(i)
         s = s + a(i)
      enddo
      print *, s, a(5), a(99)
      end
`
	c := newCtx(t, src)
	ref := fortran.MustParse("ref.f", src)
	do := firstLoop(t, c)
	tr := Normalize{Do: do}
	if v := tr.Check(c); !v.OK() {
		t.Fatalf("verdict = %s", v)
	}
	if err := tr.Apply(c); err != nil {
		t.Fatal(err)
	}
	c.Refresh()
	if got := fortran.StmtText(do); got != "do i = 1, 48" {
		t.Errorf("normalized header = %q, want do i = 1, 48", got)
	}
	// Semantics preserved under execution.
	want, err := interp.RunCapture(ref, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := interp.RunCapture(c.File, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ok, why := interp.OutputsEquivalent(want, got, 1e-9); !ok {
		t.Errorf("normalize changed output: %s\nwant %q got %q", why, want, got)
	}
	reparse(t, c)
}

func TestNormalizeEnablesFusion(t *testing.T) {
	c := newCtx(t, `
      program main
      integer i, j
      real a(100), b(100)
      do i = 1, 50
         a(i) = 1.0
      enddo
      do j = 51, 100
         b(j) = 2.0
      enddo
      end
`)
	l1 := c.DF.Tree.Roots[0].Do
	l2 := c.DF.Tree.Roots[1].Do
	// Different bounds: fusion not applicable.
	if v := (Fuse{First: l1, Second: l2}).Check(c); v.Applicable {
		t.Fatal("fusion should need normalization first")
	}
	if err := (Normalize{Do: l2}).Apply(c); err != nil {
		t.Fatal(err)
	}
	c.Refresh()
	v := (Fuse{First: l1, Second: l2}).Check(c)
	if !v.OK() {
		t.Fatalf("after normalization fusion should work: %s", v)
	}
}

func TestNormalizeAlreadyNormal(t *testing.T) {
	c := newCtx(t, `
      program main
      integer i
      real a(10)
      do i = 1, 10
         a(i) = 1.0
      enddo
      end
`)
	if v := (Normalize{Do: firstLoop(t, c)}).Check(c); v.Applicable {
		t.Fatalf("already-normal loop: %s", v)
	}
}

func TestUnrollJam(t *testing.T) {
	src := `
      program main
      integer i, j
      real a(40,40), s
      s = 0.0
      do j = 1, 40
         do i = 1, 40
            a(i,j) = real(i + j)*0.1
         enddo
      enddo
      do j = 1, 40
         do i = 1, 40
            s = s + a(i,j)
         enddo
      enddo
      print *, s, a(7,9)
      end
`
	c := newCtx(t, src)
	ref := fortran.MustParse("ref.f", src)
	outer := c.DF.Tree.Roots[0].Do
	tr := UnrollJam{Outer: outer, Factor: 4}
	v := tr.Check(c)
	if !v.OK() || !v.Profitable {
		t.Fatalf("verdict = %s", v)
	}
	if err := tr.Apply(c); err != nil {
		t.Fatal(err)
	}
	c.Refresh()
	// Outer now steps by 4 with a jammed inner body of 4 statements.
	nest := c.DF.Tree.Roots[0]
	if got := fortran.StmtText(nest.Do); got != "do j = 1, 40, 4" {
		t.Errorf("outer header = %q", got)
	}
	jammedInner := nest.Do.Body[0].(*fortran.DoStmt)
	if len(jammedInner.Body) != 4 {
		t.Errorf("jammed body = %d stmts, want 4", len(jammedInner.Body))
	}
	// Semantics preserved.
	want, err := interp.RunCapture(ref, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := interp.RunCapture(c.File, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ok, why := interp.OutputsEquivalent(want, got, 1e-6); !ok {
		t.Errorf("unroll-and-jam changed output: %s", why)
	}
	reparse(t, c)
}

func TestUnrollJamRemainder(t *testing.T) {
	src := `
      program main
      integer i, j
      real a(10,10), s
      s = 0.0
      do j = 1, 10
         do i = 1, 10
            a(i,j) = real(i*j)*0.01
         enddo
      enddo
      do j = 1, 10
         do i = 1, 10
            s = s + a(i,j)
         enddo
      enddo
      print *, s
      end
`
	c := newCtx(t, src)
	ref := fortran.MustParse("ref.f", src)
	outer := c.DF.Tree.Roots[0].Do
	if err := (UnrollJam{Outer: outer, Factor: 3}).Apply(c); err != nil {
		t.Fatal(err)
	}
	c.Refresh()
	want, _ := interp.RunCapture(ref, 1, nil)
	got, err := interp.RunCapture(c.File, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ok, why := interp.OutputsEquivalent(want, got, 1e-6); !ok {
		t.Errorf("remainder handling wrong: %s", why)
	}
}

func TestUnrollJamUnsafe(t *testing.T) {
	// (<,>) dependence: jamming would read values before they are
	// written.
	c := newCtx(t, `
      program main
      integer i, j
      real a(40,40)
      do i = 2, 40
         do j = 1, 39
            a(i,j) = a(i-1,j+1)
         enddo
      enddo
      end
`)
	outer := c.DF.Tree.Roots[0].Do
	if v := (UnrollJam{Outer: outer, Factor: 2}).Check(c); v.Safe {
		t.Fatalf("(<,>) dep must block unroll-and-jam: %s", v)
	}
}
