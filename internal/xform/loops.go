package xform

import (
	"fmt"

	"parascope/internal/dataflow"
	"parascope/internal/dep"
	"parascope/internal/expr"
	"parascope/internal/fortran"
	"parascope/internal/perf"
)

// ---------------------------------------------------------------------------
// Parallelize / Serialize

// Parallelize marks a DO loop as a parallel (DOALL) loop, privatizing
// scalars and attaching recognized reductions.
type Parallelize struct {
	Do *fortran.DoStmt
}

// Name implements Transformation.
func (Parallelize) Name() string { return "parallelize" }

// blockingDeps returns the carried dependences that prevent running
// the loop's iterations in parallel, after accounting for private
// scalars and reductions. It also returns the privatization and
// reduction sets the parallelization would introduce.
func blockingDeps(c *Context, do *fortran.DoStmt) (blocking []*dep.Dependence,
	privs []*fortran.Symbol, reds []fortran.Reduction, notes []string) {

	l := c.Loop(do)
	if l == nil {
		return nil, nil, nil, []string{"not a loop in the current analysis"}
	}
	reds = c.DF.Reductions(l)
	redSet := map[*fortran.Symbol]bool{}
	for _, r := range reds {
		redSet[r.Sym] = true
	}
	privSet := map[*fortran.Symbol]bool{l.Do.Var: true}
	privs = append(privs, l.Do.Var)
	// Variables the user already privatized (e.g. via the explicit
	// array privatization transformation) stay private.
	for _, p := range do.Private {
		if !privSet[p] {
			privSet[p] = true
			privs = append(privs, p)
		}
	}
	for _, d := range activeDeps(c.Deps.CarriedAt(l)) {
		sym := d.Sym
		if privSet[sym] || redSet[sym] {
			continue
		}
		if sym.Kind == fortran.SymScalar {
			res := c.DF.Privatizable(l, sym)
			if res.Privatizable && !res.NeedsLastValue {
				privSet[sym] = true
				privs = append(privs, sym)
				continue
			}
			if res.Privatizable && res.NeedsLastValue {
				notes = append(notes, fmt.Sprintf("%s needs last-value copy-out", sym.Name))
			}
		}
		blocking = append(blocking, d)
	}
	return blocking, privs, reds, notes
}

// Check implements Transformation.
func (t Parallelize) Check(c *Context) Verdict {
	v := Verdict{Applicable: true}
	if t.Do.Parallel {
		v.Applicable = false
		v.note("loop is already parallel")
		return v
	}
	blocking, privs, reds, notes := blockingDeps(c, t.Do)
	v.Notes = append(v.Notes, notes...)
	v.Safe = len(blocking) == 0
	for _, d := range blocking {
		v.note("blocked by %s", d)
	}
	if len(privs) > 1 {
		v.note("%d scalars privatized", len(privs)-1)
	}
	if len(reds) > 0 {
		v.note("%d reductions recognized", len(reds))
	}
	l := c.Loop(t.Do)
	if l != nil && v.Safe {
		// Static profitability: compare the loop's estimated serial
		// time against the parallel prediction (fork cost plus the
		// per-processor share), the estimator model of [26].
		est := perf.New(c.File, perf.DefaultParams())
		le := est.EstimateLoop(c.DF, l)
		v.Profitable = le.Speedup > 1.2
		v.note("estimated speedup %.1fx on %d processors", le.Speedup, perf.DefaultParams().Procs)
		if !v.Profitable {
			v.note("fork/join overhead dominates this loop's work")
		}
	}
	return v
}

// Apply implements Transformation.
func (t Parallelize) Apply(c *Context) error {
	blocking, privs, reds, _ := blockingDeps(c, t.Do)
	if len(blocking) > 0 {
		return fmt.Errorf("parallelize: %d blocking dependences", len(blocking))
	}
	t.Do.Parallel = true
	t.Do.Private = privs
	t.Do.Reductions = reds
	return nil
}

// Serialize reverts a parallel loop to sequential execution.
type Serialize struct {
	Do *fortran.DoStmt
}

// Name implements Transformation.
func (Serialize) Name() string { return "serialize" }

// Check implements Transformation.
func (t Serialize) Check(c *Context) Verdict {
	v := Verdict{Applicable: t.Do.Parallel, Safe: true, Profitable: false}
	if !t.Do.Parallel {
		v.note("loop is not parallel")
	}
	return v
}

// Apply implements Transformation.
func (t Serialize) Apply(c *Context) error {
	t.Do.Parallel = false
	t.Do.Private = nil
	t.Do.Reductions = nil
	return nil
}

// ---------------------------------------------------------------------------
// Interchange

// Interchange swaps a loop with the single loop its body directly
// contains (a perfectly nested pair).
type Interchange struct {
	Outer *fortran.DoStmt
}

// Name implements Transformation.
func (Interchange) Name() string { return "interchange" }

func (t Interchange) inner() *fortran.DoStmt {
	if len(t.Outer.Body) != 1 {
		return nil
	}
	inner, _ := t.Outer.Body[0].(*fortran.DoStmt)
	return inner
}

// Check implements Transformation.
func (t Interchange) Check(c *Context) Verdict {
	var v Verdict
	inner := t.inner()
	if inner == nil {
		v.note("loop body is not a single nested DO (imperfect nest)")
		return v
	}
	if refsVar(inner.Lo, t.Outer.Var) || refsVar(inner.Hi, t.Outer.Var) || refsVar(inner.Step, t.Outer.Var) {
		v.note("inner bounds depend on %s (triangular nest)", t.Outer.Var.Name)
		return v
	}
	if refsVar(t.Outer.Lo, inner.Var) || refsVar(t.Outer.Hi, inner.Var) {
		v.note("outer bounds depend on %s", inner.Var.Name)
		return v
	}
	if staleLoop(c, t.Outer, &v) {
		return v
	}
	v.Applicable = true
	// Safety: no dependence with direction (<, >) across the pair.
	outerL := c.Loop(t.Outer)
	v.Safe = true
	oIdx := outerL.Depth - 1
	iIdx := outerL.Depth
	for _, d := range activeDeps(c.Deps.LoopDeps(outerL)) {
		if len(d.Dirs) <= iIdx {
			continue
		}
		if mayBe(d.Dirs[oIdx], dep.DirLt) && mayBe(d.Dirs[iIdx], dep.DirGt) {
			v.Safe = false
			v.note("interchange-preventing dependence: %s", d)
		}
	}
	// Profitability: in column-major Fortran the innermost loop should
	// run over the first subscript position for stride-1 access.
	v.Profitable = strideProfit(c, t.Outer.Var, inner.Var)
	if v.Profitable {
		v.note("inner loop will access arrays stride-1 after interchange")
	}
	return v
}

// mayBe reports whether direction dir is included in the (possibly
// summarized) direction d.
func mayBe(d dep.Direction, dir dep.Direction) bool {
	if d == dir || d == dep.DirStar {
		return true
	}
	switch dir {
	case dep.DirLt:
		return d == dep.DirLe
	case dep.DirGt:
		return d == dep.DirGe
	case dep.DirEq:
		return d == dep.DirLe || d == dep.DirGe
	}
	return false
}

// strideProfit heuristically checks whether outerVar indexes the
// first (column) dimension more often than innerVar — interchanging
// then improves locality.
func strideProfit(c *Context, outerVar, innerVar *fortran.Symbol) bool {
	outerFirst, innerFirst := 0, 0
	fortran.WalkStmts(c.Unit.Body, func(s fortran.Stmt) bool {
		fortran.WalkExprs(s, func(e fortran.Expr) {
			vr, ok := e.(*fortran.VarRef)
			if !ok || len(vr.Subs) == 0 {
				return
			}
			if refsVar(vr.Subs[0], outerVar) {
				outerFirst++
			}
			if refsVar(vr.Subs[0], innerVar) {
				innerFirst++
			}
		})
		return true
	})
	return outerFirst > innerFirst
}

// Apply implements Transformation.
func (t Interchange) Apply(c *Context) error {
	inner := t.inner()
	if inner == nil {
		return fmt.Errorf("interchange: imperfect nest")
	}
	t.Outer.Var, inner.Var = inner.Var, t.Outer.Var
	t.Outer.Lo, inner.Lo = inner.Lo, t.Outer.Lo
	t.Outer.Hi, inner.Hi = inner.Hi, t.Outer.Hi
	t.Outer.Step, inner.Step = inner.Step, t.Outer.Step
	// Parallel marks were proven for the old loop order; carried
	// levels move under interchange, so both loops revert to serial
	// until re-proven.
	for _, do := range []*fortran.DoStmt{t.Outer, inner} {
		do.Parallel = false
		do.Private = nil
		do.Reductions = nil
	}
	return nil
}

// ---------------------------------------------------------------------------
// Reversal

// Reverse runs the loop from its upper bound down to its lower bound.
type Reverse struct {
	Do *fortran.DoStmt
}

// Name implements Transformation.
func (Reverse) Name() string { return "reverse" }

// Check implements Transformation.
func (t Reverse) Check(c *Context) Verdict {
	v := Verdict{Applicable: true}
	if staleLoop(c, t.Do, &v) {
		return v
	}
	l := c.Loop(t.Do)
	carried := activeDeps(c.Deps.CarriedAt(l))
	v.Safe = len(carried) == 0
	for _, d := range carried {
		v.note("carried dependence prevents reversal: %s", d)
	}
	v.Profitable = false // reversal is an enabling step, not a win itself
	return v
}

// Apply implements Transformation.
func (t Reverse) Apply(c *Context) error {
	step := t.Do.Step
	if step == nil {
		step = &fortran.IntLit{Val: 1}
	}
	t.Do.Lo, t.Do.Hi = t.Do.Hi, t.Do.Lo
	t.Do.Step = expr.Fold(&fortran.Unary{Op: fortran.TokMinus, X: step})
	return nil
}

// ---------------------------------------------------------------------------
// Skew

// Skew offsets the inner loop of a perfect pair by Factor times the
// outer variable, changing iteration-space shape but not order.
type Skew struct {
	Outer  *fortran.DoStmt
	Factor int64
}

// Name implements Transformation.
func (Skew) Name() string { return "skew" }

// Check implements Transformation.
func (t Skew) Check(c *Context) Verdict {
	var v Verdict
	if t.Factor == 0 {
		v.note("zero skew factor is the identity")
		return v
	}
	inner, _ := func() (*fortran.DoStmt, bool) {
		if len(t.Outer.Body) == 1 {
			d, ok := t.Outer.Body[0].(*fortran.DoStmt)
			return d, ok
		}
		return nil, false
	}()
	if inner == nil {
		v.note("loop body is not a single nested DO")
		return v
	}
	if inner.Step != nil || t.Outer.Step != nil {
		v.note("skewing requires unit steps")
		return v
	}
	v.Applicable = true
	v.Safe = true // skewing never changes execution order
	v.Profitable = false
	v.note("enabling transformation (e.g. for wavefront parallelism after interchange)")
	return v
}

// Apply implements Transformation.
func (t Skew) Apply(c *Context) error {
	inner := t.Outer.Body[0].(*fortran.DoStmt)
	f := &fortran.IntLit{Val: t.Factor}
	iRef := func() fortran.Expr {
		return &fortran.VarRef{Sym: t.Outer.Var, Name: t.Outer.Var.Name}
	}
	offset := func(e fortran.Expr) fortran.Expr {
		return expr.Fold(&fortran.Binary{Op: fortran.TokPlus, X: e,
			Y: &fortran.Binary{Op: fortran.TokStar, X: f, Y: iRef()}})
	}
	inner.Lo = offset(inner.Lo)
	inner.Hi = offset(inner.Hi)
	// j (old) = j' - f*i inside the body.
	repl := &fortran.Binary{Op: fortran.TokMinus,
		X: &fortran.VarRef{Sym: inner.Var, Name: inner.Var.Name},
		Y: &fortran.Binary{Op: fortran.TokStar, X: f, Y: iRef()}}
	for _, s := range inner.Body {
		fortran.SubstVarStmt(s, inner.Var, repl)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Strip mining

// StripMine splits a loop into a strip-control loop and a strip loop
// of Size iterations.
type StripMine struct {
	Do   *fortran.DoStmt
	Size int64
}

// Name implements Transformation.
func (StripMine) Name() string { return "strip-mine" }

// Check implements Transformation.
func (t StripMine) Check(c *Context) Verdict {
	var v Verdict
	if staleLoop(c, t.Do, &v) {
		return v
	}
	if t.Size < 2 {
		v.note("strip size must be at least 2")
		return v
	}
	if t.Do.Step != nil {
		v.note("strip mining requires unit step")
		return v
	}
	v.Applicable = true
	v.Safe = true // execution order unchanged
	l := c.Loop(t.Do)
	if trip, ok := c.DF.TripCount(l); ok && trip <= t.Size {
		v.note("trip count %d not larger than strip size %d", trip, t.Size)
		v.Profitable = false
		return v
	}
	v.Profitable = true
	return v
}

// Apply implements Transformation.
func (t StripMine) Apply(c *Context) error {
	u := c.Unit
	ctrl := newScalar(u, t.Do.Var.Name+"s", fortran.TypeInteger)
	ctrlRef := &fortran.VarRef{Sym: ctrl, Name: ctrl.Name}
	inner := &fortran.DoStmt{
		Var: t.Do.Var,
		Lo:  ctrlRef,
		Hi: &fortran.FuncCall{Name: "min", Args: []fortran.Expr{
			&fortran.Binary{Op: fortran.TokMinus,
				X: &fortran.Binary{Op: fortran.TokPlus, X: fortran.CloneExpr(ctrlRef), Y: &fortran.IntLit{Val: t.Size}},
				Y: &fortran.IntLit{Val: 1}},
			fortran.CloneExpr(t.Do.Hi),
		}},
		Body: t.Do.Body,
	}
	t.Do.Var = ctrl
	t.Do.Step = &fortran.IntLit{Val: t.Size}
	t.Do.Body = []fortran.Stmt{inner}
	return nil
}

// ---------------------------------------------------------------------------
// Unrolling

// Unroll replicates the loop body Factor times; requires a constant
// trip count (a remainder loop handles non-divisible counts).
type Unroll struct {
	Do     *fortran.DoStmt
	Factor int64
}

// Name implements Transformation.
func (Unroll) Name() string { return "unroll" }

// Check implements Transformation.
func (t Unroll) Check(c *Context) Verdict {
	var v Verdict
	if staleLoop(c, t.Do, &v) {
		return v
	}
	if t.Factor < 2 {
		v.note("unroll factor must be at least 2")
		return v
	}
	if t.Do.Step != nil {
		v.note("unrolling requires unit step")
		return v
	}
	l := c.Loop(t.Do)
	trip, ok := c.DF.TripCount(l)
	if !ok {
		v.note("trip count unknown")
		return v
	}
	if hasExits(t.Do.Body) {
		v.note("body contains control-flow exits")
		return v
	}
	v.Applicable = true
	v.Safe = true
	v.Profitable = trip >= t.Factor*2
	if trip%t.Factor != 0 {
		v.note("remainder loop of %d iterations generated", trip%t.Factor)
	}
	return v
}

// Apply implements Transformation.
func (t Unroll) Apply(c *Context) error {
	l := c.Loop(t.Do)
	trip, ok := c.DF.TripCount(l)
	if !ok {
		return fmt.Errorf("unroll: unknown trip count")
	}
	main := (trip / t.Factor) * t.Factor
	var body []fortran.Stmt
	for k := int64(0); k < t.Factor; k++ {
		copyBody := fortran.CloneBody(t.Do.Body)
		if k > 0 {
			repl := &fortran.Binary{Op: fortran.TokPlus,
				X: &fortran.VarRef{Sym: t.Do.Var, Name: t.Do.Var.Name},
				Y: &fortran.IntLit{Val: k}}
			for _, s := range copyBody {
				fortran.SubstVarStmt(s, t.Do.Var, repl)
			}
		}
		body = append(body, copyBody...)
	}
	var repl []fortran.Stmt
	mainLoop := &fortran.DoStmt{
		StmtBase: t.Do.StmtBase,
		Var:      t.Do.Var,
		Lo:       fortran.CloneExpr(t.Do.Lo),
		Hi: expr.Fold(&fortran.Binary{Op: fortran.TokMinus,
			X: &fortran.Binary{Op: fortran.TokPlus, X: fortran.CloneExpr(t.Do.Lo), Y: &fortran.IntLit{Val: main}},
			Y: &fortran.IntLit{Val: 1}}),
		Step: &fortran.IntLit{Val: t.Factor},
		Body: body,
	}
	repl = append(repl, mainLoop)
	if main < trip {
		rem := &fortran.DoStmt{
			Var: t.Do.Var,
			Lo: expr.Fold(&fortran.Binary{Op: fortran.TokPlus,
				X: fortran.CloneExpr(t.Do.Lo), Y: &fortran.IntLit{Val: main}}),
			Hi:   fortran.CloneExpr(t.Do.Hi),
			Body: fortran.CloneBody(t.Do.Body),
		}
		repl = append(repl, rem)
	}
	if !replaceStmt(c.Unit, t.Do, repl...) {
		return fmt.Errorf("unroll: loop not found in unit")
	}
	return nil
}

// ---------------------------------------------------------------------------
// Peeling

// Peel extracts the first iteration of the loop, often removing a
// wrap-around dependence or enabling fusion.
type Peel struct {
	Do *fortran.DoStmt
}

// Name implements Transformation.
func (Peel) Name() string { return "peel" }

// Check implements Transformation.
func (t Peel) Check(c *Context) Verdict {
	var v Verdict
	if staleLoop(c, t.Do, &v) {
		return v
	}
	if t.Do.Step != nil {
		v.note("peeling requires unit step")
		return v
	}
	if hasExits(t.Do.Body) {
		v.note("body contains control-flow exits")
		return v
	}
	v.Applicable = true
	// Safe only when the loop provably executes at least once.
	l := c.Loop(t.Do)
	env := c.DF.EnvAt(t.Do)
	loLin, ok1 := expr.Linearize(c.Unit, t.Do.Lo)
	hiLin, ok2 := expr.Linearize(c.Unit, t.Do.Hi)
	if ok1 && ok2 && env.ProveNonNegative(hiLin.Sub(loLin)) {
		v.Safe = true
	} else {
		v.note("cannot prove the loop executes at least once")
	}
	_ = l
	v.Profitable = false
	v.note("enabling transformation")
	return v
}

// Apply implements Transformation.
func (t Peel) Apply(c *Context) error {
	first := fortran.CloneBody(t.Do.Body)
	for _, s := range first {
		fortran.SubstVarStmt(s, t.Do.Var, t.Do.Lo)
	}
	rest := &fortran.DoStmt{
		Var: t.Do.Var,
		Lo: expr.Fold(&fortran.Binary{Op: fortran.TokPlus,
			X: fortran.CloneExpr(t.Do.Lo), Y: &fortran.IntLit{Val: 1}}),
		Hi:   t.Do.Hi,
		Body: t.Do.Body,
	}
	repl := append(first, rest)
	if !replaceStmt(c.Unit, t.Do, repl...) {
		return fmt.Errorf("peel: loop not found in unit")
	}
	return nil
}

// ---------------------------------------------------------------------------
// Unroll-and-jam

// UnrollJam unrolls the outer loop of a perfect nest by Factor and
// jams the copies into the inner loop body — the memory-hierarchy
// transformation of the ParaScope compiler family (Carr's thesis,
// cited as [8]): it increases inner-loop reuse without changing the
// iteration order constraints beyond interchange legality.
type UnrollJam struct {
	Outer  *fortran.DoStmt
	Factor int64
}

// Name implements Transformation.
func (UnrollJam) Name() string { return "unroll-and-jam" }

func (t UnrollJam) inner() *fortran.DoStmt {
	if len(t.Outer.Body) != 1 {
		return nil
	}
	inner, _ := t.Outer.Body[0].(*fortran.DoStmt)
	return inner
}

// Check implements Transformation.
func (t UnrollJam) Check(c *Context) Verdict {
	var v Verdict
	if staleLoop(c, t.Outer, &v) {
		return v
	}
	if t.Factor < 2 {
		v.note("factor must be at least 2")
		return v
	}
	inner := t.inner()
	if inner == nil {
		v.note("loop body is not a single nested DO (imperfect nest)")
		return v
	}
	if t.Outer.Step != nil {
		v.note("requires unit outer step")
		return v
	}
	if refsVar(inner.Lo, t.Outer.Var) || refsVar(inner.Hi, t.Outer.Var) {
		v.note("inner bounds depend on %s", t.Outer.Var.Name)
		return v
	}
	if hasExits(t.Outer.Body) {
		v.note("body contains control-flow exits")
		return v
	}
	l := c.Loop(t.Outer)
	trip, ok := c.DF.TripCount(l)
	if !ok {
		v.note("outer trip count unknown")
		return v
	}
	v.Applicable = true
	// Jamming is legal exactly when interchange is: moving the
	// unrolled copies inside the inner loop must not reverse any
	// (outer <, inner >) dependence.
	v.Safe = true
	oIdx := l.Depth - 1
	iIdx := l.Depth
	for _, d := range activeDeps(c.Deps.LoopDeps(l)) {
		if len(d.Dirs) <= iIdx {
			continue
		}
		if mayBe(d.Dirs[oIdx], dep.DirLt) && mayBe(d.Dirs[iIdx], dep.DirGt) {
			v.Safe = false
			v.note("jam-preventing dependence: %s", d)
		}
	}
	v.Profitable = trip >= t.Factor*2
	if trip%t.Factor != 0 {
		v.note("remainder nest of %d outer iterations generated", trip%t.Factor)
	}
	return v
}

// Apply implements Transformation.
func (t UnrollJam) Apply(c *Context) error {
	inner := t.inner()
	if inner == nil {
		return fmt.Errorf("unroll-and-jam: imperfect nest")
	}
	l := c.Loop(t.Outer)
	trip, ok := c.DF.TripCount(l)
	if !ok {
		return fmt.Errorf("unroll-and-jam: unknown trip count")
	}
	main := (trip / t.Factor) * t.Factor
	// Jammed inner body: Factor copies with outer var offset.
	var jammed []fortran.Stmt
	for k := int64(0); k < t.Factor; k++ {
		cp := fortran.CloneBody(inner.Body)
		if k > 0 {
			repl := &fortran.Binary{Op: fortran.TokPlus,
				X: &fortran.VarRef{Sym: t.Outer.Var, Name: t.Outer.Var.Name},
				Y: &fortran.IntLit{Val: k}}
			for _, s := range cp {
				fortran.SubstVarStmt(s, t.Outer.Var, repl)
			}
		}
		jammed = append(jammed, cp...)
	}
	var repl []fortran.Stmt
	mainOuter := &fortran.DoStmt{
		StmtBase: t.Outer.StmtBase,
		Var:      t.Outer.Var,
		Lo:       fortran.CloneExpr(t.Outer.Lo),
		Hi: expr.Fold(&fortran.Binary{Op: fortran.TokMinus,
			X: &fortran.Binary{Op: fortran.TokPlus, X: fortran.CloneExpr(t.Outer.Lo), Y: &fortran.IntLit{Val: main}},
			Y: &fortran.IntLit{Val: 1}}),
		Step: &fortran.IntLit{Val: t.Factor},
		Body: []fortran.Stmt{&fortran.DoStmt{
			Var:  inner.Var,
			Lo:   fortran.CloneExpr(inner.Lo),
			Hi:   fortran.CloneExpr(inner.Hi),
			Step: cloneOrNil(inner.Step),
			Body: jammed,
		}},
	}
	repl = append(repl, mainOuter)
	if main < trip {
		rem := &fortran.DoStmt{
			Var: t.Outer.Var,
			Lo: expr.Fold(&fortran.Binary{Op: fortran.TokPlus,
				X: fortran.CloneExpr(t.Outer.Lo), Y: &fortran.IntLit{Val: main}}),
			Hi:   fortran.CloneExpr(t.Outer.Hi),
			Body: fortran.CloneBody(t.Outer.Body),
		}
		repl = append(repl, rem)
	}
	if !replaceStmt(c.Unit, t.Outer, repl...) {
		return fmt.Errorf("unroll-and-jam: loop not found in unit")
	}
	return nil
}

func cloneOrNil(e fortran.Expr) fortran.Expr {
	if e == nil {
		return nil
	}
	return fortran.CloneExpr(e)
}

// ---------------------------------------------------------------------------
// Loop bounds adjustment (normalization)

// Normalize rewrites a loop to run from 1 with unit step, adjusting
// every use of the induction variable — the paper's "loop bounds
// adjustment", an enabling step for fusion of loops with offset
// bounds.
type Normalize struct {
	Do *fortran.DoStmt
}

// Name implements Transformation.
func (Normalize) Name() string { return "normalize" }

// Check implements Transformation.
func (t Normalize) Check(c *Context) Verdict {
	var v Verdict
	if staleLoop(c, t.Do, &v) {
		return v
	}
	lo, okLo := expr.Linearize(c.Unit, t.Do.Lo)
	step := expr.Con(1)
	okStep := true
	if t.Do.Step != nil {
		step, okStep = expr.Linearize(c.Unit, t.Do.Step)
	}
	if !okLo || !okStep {
		v.note("bounds are not affine")
		return v
	}
	if !step.IsConst() || step.Const <= 0 {
		v.note("step must be a positive constant")
		return v
	}
	if lo.IsConst() && lo.Const == 1 && step.Const == 1 {
		v.note("loop is already normalized")
		return v
	}
	v.Applicable = true
	v.Safe = true // pure reindexing, same iteration sequence
	v.Profitable = false
	v.note("enabling transformation (e.g. for fusion)")
	return v
}

// Apply implements Transformation.
func (t Normalize) Apply(c *Context) error {
	stepVal := int64(1)
	if t.Do.Step != nil {
		lin, ok := expr.Linearize(c.Unit, t.Do.Step)
		if !ok || !lin.IsConst() || lin.Const <= 0 {
			return fmt.Errorf("normalize: non-constant step")
		}
		stepVal = lin.Const
	}
	lo := fortran.CloneExpr(t.Do.Lo)
	hi := fortran.CloneExpr(t.Do.Hi)
	// New trip count: (hi - lo + step) / step, exact for the loops
	// normalization accepts.
	trip := &fortran.Binary{Op: fortran.TokSlash,
		X: &fortran.Binary{Op: fortran.TokPlus,
			X: &fortran.Binary{Op: fortran.TokMinus, X: hi, Y: fortran.CloneExpr(lo)},
			Y: &fortran.IntLit{Val: stepVal}},
		Y: &fortran.IntLit{Val: stepVal}}
	// Old i = (i' - 1)*step + lo.
	repl := &fortran.Binary{Op: fortran.TokPlus,
		X: &fortran.Binary{Op: fortran.TokStar,
			X: &fortran.Binary{Op: fortran.TokMinus,
				X: &fortran.VarRef{Sym: t.Do.Var, Name: t.Do.Var.Name},
				Y: &fortran.IntLit{Val: 1}},
			Y: &fortran.IntLit{Val: stepVal}},
		Y: lo}
	for _, s := range t.Do.Body {
		fortran.SubstVarStmt(s, t.Do.Var, repl)
	}
	t.Do.Lo = &fortran.IntLit{Val: 1}
	t.Do.Hi = expr.Fold(trip)
	t.Do.Step = nil
	return nil
}

// privResultFor exposes privatizability for the variable pane.
func privResultFor(c *Context, do *fortran.DoStmt, sym *fortran.Symbol) dataflow.PrivResult {
	l := c.Loop(do)
	if l == nil {
		return dataflow.PrivResult{Reason: "no loop"}
	}
	return c.DF.Privatizable(l, sym)
}
