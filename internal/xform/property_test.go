package xform

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"parascope/internal/fortran"
	"parascope/internal/interp"
)

// TestTransformationSoundnessRandomized is the package's key
// property test: generate random Fortran programs, enumerate
// transformations the power-steering verdict declares applicable and
// safe, apply each to a fresh copy, and verify by execution that the
// program's output is unchanged (and that parallel execution of any
// parallelized loops matches too). A verdict that lets a
// semantics-changing rewrite through is a soundness bug.
func TestTransformationSoundnessRandomized(t *testing.T) {
	rnd := rand.New(rand.NewSource(20260707))
	const trials = 60
	applied := map[string]int{}
	for trial := 0; trial < trials; trial++ {
		src := randomProgram(rnd)
		ref, err := fortran.Parse("p.f", src)
		if err != nil {
			t.Fatalf("trial %d: generated program does not parse: %v\n%s", trial, err, src)
		}
		want, err := interp.RunCapture(ref, 1, nil)
		if err != nil {
			t.Fatalf("trial %d: reference run failed: %v\n%s", trial, err, src)
		}
		for _, cand := range candidates(t, src) {
			c := newCtx(t, src)
			tr, ok := cand.build(c)
			if !ok {
				continue
			}
			v := tr.Check(c)
			if !v.OK() {
				continue
			}
			if err := tr.Apply(c); err != nil {
				t.Errorf("trial %d: %s: verdict OK but Apply failed: %v\n%s", trial, tr.Name(), err, src)
				continue
			}
			c.Refresh()
			applied[tr.Name()]++
			workers := 1
			if tr.Name() == "parallelize" {
				workers = 4
			}
			got, err := interp.RunCapture(c.File, workers, nil)
			if err != nil {
				t.Errorf("trial %d: %s: transformed program failed: %v\noriginal:\n%s\ntransformed:\n%s",
					trial, tr.Name(), err, src, fortran.Print(c.File))
				continue
			}
			if ok, why := interp.OutputsEquivalent(want, got, 1e-6); !ok {
				t.Errorf("trial %d: %s CHANGED SEMANTICS (%s)\noriginal:\n%s\ntransformed:\n%s\nwant %q\ngot  %q",
					trial, tr.Name(), why, src, fortran.Print(c.File), want, got)
			}
			// The rewritten program must also remain valid Fortran.
			if _, err := fortran.Parse("rt.f", fortran.Print(c.File)); err != nil {
				t.Errorf("trial %d: %s produced unparseable output: %v", trial, tr.Name(), err)
			}
		}
	}
	// The generator must actually exercise a spread of transformations.
	for _, name := range []string{"parallelize", "distribute", "reverse", "peel", "unroll", "strip-mine", "fuse", "interchange", "normalize"} {
		if applied[name] == 0 {
			t.Errorf("randomized corpus never applied %s (applied: %v)", name, applied)
		}
	}
}

// candidate builds a transformation against a freshly parsed context
// (loop indices stay valid because every candidate gets its own copy).
type candidate struct {
	build func(c *Context) (Transformation, bool)
}

func nthLoopDo(c *Context, n int) (*fortran.DoStmt, bool) {
	if n >= len(c.DF.Tree.All) {
		return nil, false
	}
	return c.DF.Tree.All[n].Do, true
}

func candidates(t *testing.T, src string) []candidate {
	t.Helper()
	// Count loops once to enumerate candidates.
	probe, err := fortran.Parse("probe.f", src)
	if err != nil {
		t.Fatal(err)
	}
	nLoops := 0
	fortran.WalkStmts(probe.Units[0].Body, func(s fortran.Stmt) bool {
		if _, ok := s.(*fortran.DoStmt); ok {
			nLoops++
		}
		return true
	})
	var out []candidate
	for i := 0; i < nLoops; i++ {
		i := i
		mk := func(f func(do *fortran.DoStmt) Transformation) candidate {
			return candidate{build: func(c *Context) (Transformation, bool) {
				do, ok := nthLoopDo(c, i)
				if !ok {
					return nil, false
				}
				return f(do), true
			}}
		}
		out = append(out,
			mk(func(do *fortran.DoStmt) Transformation { return Parallelize{Do: do} }),
			mk(func(do *fortran.DoStmt) Transformation { return Reverse{Do: do} }),
			mk(func(do *fortran.DoStmt) Transformation { return Peel{Do: do} }),
			mk(func(do *fortran.DoStmt) Transformation { return Unroll{Do: do, Factor: 3} }),
			mk(func(do *fortran.DoStmt) Transformation { return StripMine{Do: do, Size: 8} }),
			mk(func(do *fortran.DoStmt) Transformation { return Distribute{Do: do} }),
			mk(func(do *fortran.DoStmt) Transformation { return Interchange{Outer: do} }),
			mk(func(do *fortran.DoStmt) Transformation { return Skew{Outer: do, Factor: 1} }),
			mk(func(do *fortran.DoStmt) Transformation { return Normalize{Do: do} }),
			mk(func(do *fortran.DoStmt) Transformation { return UnrollJam{Outer: do, Factor: 2} }),
		)
		if i+1 < nLoops {
			j := i + 1
			out = append(out, candidate{build: func(c *Context) (Transformation, bool) {
				a, ok1 := nthLoopDo(c, i)
				b, ok2 := nthLoopDo(c, j)
				if !ok1 || !ok2 {
					return nil, false
				}
				return Fuse{First: a, Second: b}, true
			}})
		}
	}
	return out
}

// randomProgram emits a self-checking Fortran program: array
// initializations, a few random loop constructs over them, and
// checksum prints.
func randomProgram(rnd *rand.Rand) string {
	var b strings.Builder
	b.WriteString("      program rprog\n")
	b.WriteString("      integer i, j, n\n")
	b.WriteString("      parameter (n = 24)\n")
	b.WriteString("      real a(24), b(24), c(24), m(24,24), s, t\n")
	// Deterministic initialization.
	b.WriteString("      do i = 1, n\n")
	b.WriteString("         a(i) = 0.5 + 0.01*real(mod(i, 7))\n")
	b.WriteString("         b(i) = 1.0 + 0.02*real(mod(i, 5))\n")
	b.WriteString("         c(i) = 0.0\n")
	b.WriteString("      enddo\n")
	b.WriteString("      do i = 1, n\n")
	b.WriteString("         do j = 1, n\n")
	b.WriteString("            m(i,j) = 0.001*real(i + 2*j)\n")
	b.WriteString("         enddo\n")
	b.WriteString("      enddo\n")
	b.WriteString("      s = 0.0\n")
	nBlocks := 2 + rnd.Intn(3)
	for k := 0; k < nBlocks; k++ {
		switch rnd.Intn(6) {
		case 0: // independent elementwise loop
			fmt.Fprintf(&b, "      do i = 1, n\n         c(i) = a(i)*%0.2f + b(i)\n      enddo\n", 0.5+rnd.Float64())
		case 1: // recurrence
			fmt.Fprintf(&b, "      do i = 2, n\n         c(i) = c(i-1)*0.5 + a(i)\n      enddo\n")
		case 2: // temp + reduction mix
			b.WriteString("      do i = 1, n\n")
			b.WriteString("         t = a(i) + b(i)\n")
			b.WriteString("         c(i) = t*0.25\n")
			b.WriteString("         s = s + t\n")
			b.WriteString("      enddo\n")
		case 3: // 2-d nest with a shifted read
			di := rnd.Intn(2)
			dj := rnd.Intn(2)
			lo := 1 + di
			fmt.Fprintf(&b, "      do i = %d, n\n         do j = %d, n\n            m(i,j) = m(i-%d,j-%d)*0.5 + 0.01\n         enddo\n      enddo\n",
				lo, 1+dj, di, dj)
		case 4: // forward-offset read (anti dep)
			b.WriteString("      do i = 1, 23\n         a(i) = a(i+1)*0.9 + 0.05\n      enddo\n")
		case 5: // two adjacent fusable loops
			b.WriteString("      do i = 1, n\n         b(i) = b(i) + 0.1\n      enddo\n")
			b.WriteString("      do i = 1, n\n         c(i) = c(i) + b(i)*0.2\n      enddo\n")
		}
	}
	b.WriteString("      print *, s, c(1), c(12), c(24), a(7), m(12,12), m(24,24)\n")
	b.WriteString("      end\n")
	return b.String()
}
