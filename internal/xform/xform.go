// Package xform implements ParaScope's interactive program
// transformations under the power-steering paradigm: for each
// transformation the system diagnoses whether it is applicable
// (syntactically possible), safe (dependence-preserving) and
// profitable, then carries out the mechanical rewriting; the user
// supplies the judgement.
package xform

import (
	"fmt"
	"strings"

	"parascope/internal/cfg"
	"parascope/internal/dataflow"
	"parascope/internal/dep"
	"parascope/internal/expr"
	"parascope/internal/fortran"
)

// Verdict is the power-steering diagnosis shown to the user before a
// transformation is applied.
type Verdict struct {
	Applicable bool
	Safe       bool
	Profitable bool
	Notes      []string
}

// OK reports whether the transformation may be applied (applicable
// and safe; profitability is advisory).
func (v Verdict) OK() bool { return v.Applicable && v.Safe }

func (v Verdict) String() string {
	status := func(b bool) string {
		if b {
			return "yes"
		}
		return "no"
	}
	s := fmt.Sprintf("applicable: %s, safe: %s, profitable: %s",
		status(v.Applicable), status(v.Safe), status(v.Profitable))
	if len(v.Notes) > 0 {
		s += " — " + strings.Join(v.Notes, "; ")
	}
	return s
}

func (v *Verdict) note(format string, args ...interface{}) {
	v.Notes = append(v.Notes, fmt.Sprintf(format, args...))
}

// Context carries the analysis state a transformation consults and
// the ingredients needed to refresh it after a rewrite.
type Context struct {
	File *fortran.File
	Unit *fortran.Unit
	DF   *dataflow.Analysis
	Deps *dep.Graph

	Effects    dataflow.SideEffects
	Assertions *expr.Env
	Summaries  dep.Summaries
	Opts       dep.Options
}

// NewContext analyzes unit and returns a ready context.
func NewContext(file *fortran.File, unit *fortran.Unit, eff dataflow.SideEffects,
	assertions *expr.Env, summ dep.Summaries, opts dep.Options) *Context {
	c := &Context{File: file, Unit: unit, Effects: eff, Assertions: assertions,
		Summaries: summ, Opts: opts}
	c.Refresh()
	return c
}

// Refresh re-runs analysis after the AST changed.
func (c *Context) Refresh() {
	c.File.RenumberStmts()
	c.DF = dataflow.Analyze(c.Unit, c.Effects)
	c.Deps = dep.Analyze(c.DF, c.Assertions, c.Summaries, c.Opts)
}

// Loop re-finds the loop wrapper for a DO statement after a refresh.
func (c *Context) Loop(do *fortran.DoStmt) *cfg.Loop {
	return c.DF.Tree.LoopOf(do)
}

// Transformation is one power-steering transformation instance,
// parameterized at construction.
type Transformation interface {
	Name() string
	Check(c *Context) Verdict
	// Apply performs the rewrite. The caller must Refresh the
	// context afterwards. Apply must only be called when Check
	// reports OK.
	Apply(c *Context) error
}

// ---------------------------------------------------------------------------
// Shared helpers

// staleLoop reports that the DO statement is not part of the current
// analysis (it was removed or replaced by a prior transformation);
// verdicts on stale targets are never applicable.
func staleLoop(c *Context, do *fortran.DoStmt, v *Verdict) bool {
	if c.Loop(do) == nil {
		v.Applicable = false
		v.note("the loop is no longer part of the program (stale selection)")
		return true
	}
	return false
}

// replaceInBody replaces statement old with repl wherever it occurs,
// returning the rewritten body and whether a replacement happened.
func replaceInBody(body []fortran.Stmt, old fortran.Stmt, repl []fortran.Stmt) ([]fortran.Stmt, bool) {
	for i, s := range body {
		if s == old {
			out := make([]fortran.Stmt, 0, len(body)-1+len(repl))
			out = append(out, body[:i]...)
			out = append(out, repl...)
			out = append(out, body[i+1:]...)
			return out, true
		}
		switch st := s.(type) {
		case *fortran.IfStmt:
			if nb, ok := replaceInBody(st.Then, old, repl); ok {
				st.Then = nb
				return body, true
			}
			if nb, ok := replaceInBody(st.Else, old, repl); ok {
				st.Else = nb
				return body, true
			}
		case *fortran.DoStmt:
			if nb, ok := replaceInBody(st.Body, old, repl); ok {
				st.Body = nb
				return body, true
			}
		case *fortran.WhileStmt:
			if nb, ok := replaceInBody(st.Body, old, repl); ok {
				st.Body = nb
				return body, true
			}
		}
	}
	return body, false
}

// replaceStmt replaces old with repl in the unit, reporting success.
func replaceStmt(u *fortran.Unit, old fortran.Stmt, repl ...fortran.Stmt) bool {
	nb, ok := replaceInBody(u.Body, old, repl)
	if ok {
		u.Body = nb
	}
	return ok
}

// parentBody finds the statement list directly containing s, along
// with s's index in it.
func parentBody(u *fortran.Unit, s fortran.Stmt) ([]fortran.Stmt, int) {
	var find func(body []fortran.Stmt) ([]fortran.Stmt, int)
	find = func(body []fortran.Stmt) ([]fortran.Stmt, int) {
		for i, x := range body {
			if x == s {
				return body, i
			}
			switch st := x.(type) {
			case *fortran.IfStmt:
				if b, j := find(st.Then); b != nil {
					return b, j
				}
				if b, j := find(st.Else); b != nil {
					return b, j
				}
			case *fortran.DoStmt:
				if b, j := find(st.Body); b != nil {
					return b, j
				}
			case *fortran.WhileStmt:
				if b, j := find(st.Body); b != nil {
					return b, j
				}
			}
		}
		return nil, -1
	}
	return find(u.Body)
}

// newScalar adds a fresh integer/real scalar to the unit, deriving
// its name from base.
func newScalar(u *fortran.Unit, base string, t fortran.Type) *fortran.Symbol {
	name := base
	for i := 1; ; i++ {
		if _, exists := u.Syms[name]; !exists {
			break
		}
		name = fmt.Sprintf("%s%d", base, i)
	}
	sym := &fortran.Symbol{Name: name, Kind: fortran.SymScalar, Type: t, Unit: u}
	u.Syms[name] = sym
	return sym
}

// newArray adds a fresh 1-d array of extent n to the unit.
func newArray(u *fortran.Unit, base string, t fortran.Type, n int64) *fortran.Symbol {
	name := base
	for i := 1; ; i++ {
		if _, exists := u.Syms[name]; !exists {
			break
		}
		name = fmt.Sprintf("%s%d", base, i)
	}
	sym := &fortran.Symbol{
		Name: name, Kind: fortran.SymArray, Type: t, Unit: u,
		Dims: []fortran.Dimension{{Lo: &fortran.IntLit{Val: 1}, Hi: &fortran.IntLit{Val: n}}},
	}
	u.Syms[name] = sym
	return sym
}

// sameBounds reports whether two loops have provably identical
// bounds and step.
func sameBounds(u *fortran.Unit, a, b *fortran.DoStmt) bool {
	eq := func(x, y fortran.Expr) bool {
		if x == nil && y == nil {
			return true
		}
		if x == nil {
			x = &fortran.IntLit{Val: 1}
		}
		if y == nil {
			y = &fortran.IntLit{Val: 1}
		}
		lx, okx := expr.Linearize(u, x)
		ly, oky := expr.Linearize(u, y)
		return okx && oky && lx.Equal(ly)
	}
	return eq(a.Lo, b.Lo) && eq(a.Hi, b.Hi) && eq(a.Step, b.Step)
}

// activeDeps filters out rejected, control and input dependences.
func activeDeps(deps []*dep.Dependence) []*dep.Dependence {
	var out []*dep.Dependence
	for _, d := range deps {
		if d.Mark == dep.MarkRejected {
			continue
		}
		if d.Class == dep.ClassControl || d.Class == dep.ClassInput {
			continue
		}
		out = append(out, d)
	}
	return out
}

// refsVar reports whether expression e references sym.
func refsVar(e fortran.Expr, sym *fortran.Symbol) bool {
	if e == nil {
		return false
	}
	found := false
	var walk func(fortran.Expr)
	walk = func(e fortran.Expr) {
		switch x := e.(type) {
		case *fortran.VarRef:
			if x.Sym == sym {
				found = true
			}
			for _, s := range x.Subs {
				walk(s)
			}
		case *fortran.FuncCall:
			for _, a := range x.Args {
				walk(a)
			}
		case *fortran.Unary:
			walk(x.X)
		case *fortran.Binary:
			walk(x.X)
			walk(x.Y)
		}
	}
	walk(e)
	return found
}

// hasExits reports whether the body contains RETURN, STOP or GOTO —
// statements that disqualify restructuring transformations.
func hasExits(body []fortran.Stmt) bool {
	found := false
	fortran.WalkStmts(body, func(s fortran.Stmt) bool {
		switch s.(type) {
		case *fortran.ReturnStmt, *fortran.StopStmt, *fortran.GotoStmt:
			found = true
		}
		return !found
	})
	return found
}
