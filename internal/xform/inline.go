package xform

import (
	"fmt"

	"parascope/internal/fortran"
)

// Inline substitutes a subroutine's body at a call site — the
// "embedding" (procedure integration) the paper lists among the
// desired capabilities, and the enabling step for interchanging loops
// across a procedure boundary ("a solution that combines the
// granularity of the outer loop with the parallelism of the inner
// loop is to perform loop interchange across the procedure
// boundary").
//
// Supported bindings: whole arrays (the formal aliases the actual),
// scalar variables (renamed to the actual), and arbitrary expressions
// for formals the callee never modifies (substituted textually).
type Inline struct {
	Call *fortran.CallStmt
}

// Name implements Transformation.
func (Inline) Name() string { return "inline" }

// bindingPlan describes how each formal maps to caller state.
type bindingPlan struct {
	// subst maps callee symbols to replacement caller expressions.
	subst map[*fortran.Symbol]fortran.Expr
	// locals lists callee locals needing fresh caller-side symbols.
	locals []*fortran.Symbol
}

func (t Inline) plan(c *Context) (*bindingPlan, error) {
	callee := t.Call.Callee
	if callee == nil {
		return nil, fmt.Errorf("callee is not in this file")
	}
	if callee.Kind != fortran.UnitSubroutine {
		return nil, fmt.Errorf("only subroutines can be inlined")
	}
	if len(t.Call.Args) != len(callee.Args) {
		return nil, fmt.Errorf("argument count mismatch")
	}
	// The callee must be simple: no RETURN in the middle (one at the
	// end is fine), no GOTO, no further calls to keep this one-level.
	exits := 0
	bad := ""
	fortran.WalkStmts(callee.Body, func(s fortran.Stmt) bool {
		switch s.(type) {
		case *fortran.ReturnStmt:
			exits++
			if s != callee.Body[len(callee.Body)-1] {
				bad = "early RETURN"
			}
		case *fortran.GotoStmt:
			bad = "GOTO"
		case *fortran.StopStmt:
			bad = "STOP"
		}
		return true
	})
	if bad != "" {
		return nil, fmt.Errorf("callee contains %s", bad)
	}
	// Writes to formals determine whether expression actuals are legal.
	writes := map[*fortran.Symbol]bool{}
	fortran.WalkStmts(callee.Body, func(s fortran.Stmt) bool {
		if as, ok := s.(*fortran.AssignStmt); ok && as.Lhs.Sym != nil {
			writes[as.Lhs.Sym] = true
		}
		if do, ok := s.(*fortran.DoStmt); ok {
			writes[do.Var] = true
		}
		if rd, ok := s.(*fortran.ReadStmt); ok {
			for _, it := range rd.Items {
				if vr, ok := it.(*fortran.VarRef); ok && vr.Sym != nil {
					writes[vr.Sym] = true
				}
			}
		}
		return true
	})
	p := &bindingPlan{subst: map[*fortran.Symbol]fortran.Expr{}}
	for i, formal := range callee.Args {
		actual := t.Call.Args[i]
		vr, isVar := actual.(*fortran.VarRef)
		switch {
		case formal.Kind == fortran.SymArray:
			if !isVar || vr.Sym == nil || !vr.Sym.IsArray() || len(vr.Subs) != 0 {
				return nil, fmt.Errorf("argument %d: array formal %s needs a whole-array actual", i+1, formal.Name)
			}
			p.subst[formal] = &fortran.VarRef{Sym: vr.Sym, Name: vr.Sym.Name}
		case isVar && vr.Sym != nil && len(vr.Subs) == 0 && vr.Sym.Kind == fortran.SymScalar:
			p.subst[formal] = &fortran.VarRef{Sym: vr.Sym, Name: vr.Sym.Name}
		default:
			if writes[formal] {
				return nil, fmt.Errorf("argument %d: callee writes formal %s but the actual is an expression", i+1, formal.Name)
			}
			p.subst[formal] = actual
		}
	}
	// COMMON members alias the caller's same-named commons; locals
	// get fresh names.
	for _, sym := range callee.SymbolsSorted() {
		if sym.Dummy {
			continue
		}
		switch sym.Kind {
		case fortran.SymScalar, fortran.SymArray:
			if sym.Common != "" {
				counterpart := c.Unit.Lookup(sym.Name)
				if counterpart == nil || counterpart.Common != sym.Common {
					return nil, fmt.Errorf("common member %s has no caller counterpart", sym.Name)
				}
				p.subst[sym] = &fortran.VarRef{Sym: counterpart, Name: counterpart.Name}
			} else {
				p.locals = append(p.locals, sym)
			}
		case fortran.SymParam:
			p.subst[sym] = fortran.CloneExpr(sym.Value)
		}
	}
	return p, nil
}

// Check implements Transformation.
func (t Inline) Check(c *Context) Verdict {
	var v Verdict
	if _, err := t.plan(c); err != nil {
		v.note("%v", err)
		return v
	}
	v.Applicable = true
	v.Safe = true // substitution with aliasing bindings preserves semantics
	// Profitable when the call sits inside a loop: it removes the
	// interprocedural barrier for dependence analysis and enables
	// cross-boundary transformations.
	if l := c.DF.Tree.Innermost(t.Call); l != nil {
		v.Profitable = true
		v.note("exposes the callee's loops to the enclosing nest")
	} else {
		v.note("call is not inside a loop; inlining only saves call overhead")
	}
	return v
}

// Apply implements Transformation.
func (t Inline) Apply(c *Context) error {
	p, err := t.plan(c)
	if err != nil {
		return fmt.Errorf("inline: %v", err)
	}
	callee := t.Call.Callee
	body := fortran.CloneBody(callee.Body)
	// Drop a trailing RETURN.
	if n := len(body); n > 0 {
		if _, ok := body[n-1].(*fortran.ReturnStmt); ok {
			body = body[:n-1]
		}
	}
	// Fresh caller symbols for callee locals.
	for _, local := range p.locals {
		var repl *fortran.Symbol
		if local.Kind == fortran.SymArray {
			// Reproduce the dimensions with formals substituted.
			repl = newScalar(c.Unit, local.Name, local.Type)
			repl.Kind = fortran.SymArray
			for _, d := range local.Dims {
				nd := fortran.Dimension{}
				if d.Lo != nil {
					nd.Lo = substAll(fortran.CloneExpr(d.Lo), p.subst)
				}
				if d.Hi != nil {
					nd.Hi = substAll(fortran.CloneExpr(d.Hi), p.subst)
				}
				repl.Dims = append(repl.Dims, nd)
			}
		} else {
			repl = newScalar(c.Unit, local.Name, local.Type)
		}
		p.subst[local] = &fortran.VarRef{Sym: repl, Name: repl.Name}
	}
	// Substitute every binding throughout the cloned body.
	for sym, repl := range p.subst {
		for _, s := range body {
			substStmtSym(s, sym, repl)
		}
	}
	if !replaceStmt(c.Unit, t.Call, body...) {
		return fmt.Errorf("inline: call not found in unit")
	}
	return nil
}

// substAll applies every binding to one expression.
func substAll(e fortran.Expr, subst map[*fortran.Symbol]fortran.Expr) fortran.Expr {
	for sym, repl := range subst {
		e = fortran.SubstVar(e, sym, repl)
	}
	return e
}

// substStmtSym substitutes sym throughout a statement, including
// array base names and DO-variable headers (which SubstVarStmt's
// value-substitution does not rewrite).
func substStmtSym(s fortran.Stmt, sym *fortran.Symbol, repl fortran.Expr) {
	// Value positions first.
	fortran.SubstVarStmt(s, sym, repl)
	// Base-name positions: array refs a(...)->b(...), DO variables.
	replVar, _ := repl.(*fortran.VarRef)
	var fixExpr func(e fortran.Expr)
	fixExpr = func(e fortran.Expr) {
		switch x := e.(type) {
		case *fortran.VarRef:
			if x.Sym == sym && len(x.Subs) > 0 && replVar != nil {
				x.Sym = replVar.Sym
				x.Name = replVar.Name
			}
			for _, sub := range x.Subs {
				fixExpr(sub)
			}
		case *fortran.FuncCall:
			for _, a := range x.Args {
				fixExpr(a)
			}
		case *fortran.Unary:
			fixExpr(x.X)
		case *fortran.Binary:
			fixExpr(x.X)
			fixExpr(x.Y)
		}
	}
	var walk func(st fortran.Stmt)
	walk = func(st fortran.Stmt) {
		switch x := st.(type) {
		case *fortran.AssignStmt:
			fixExpr(x.Lhs)
			fixExpr(x.Rhs)
		case *fortran.IfStmt:
			fixExpr(x.Cond)
			for _, b := range x.Then {
				walk(b)
			}
			for _, b := range x.Else {
				walk(b)
			}
		case *fortran.DoStmt:
			if x.Var == sym && replVar != nil {
				x.Var = replVar.Sym
			}
			fixExpr(x.Lo)
			fixExpr(x.Hi)
			if x.Step != nil {
				fixExpr(x.Step)
			}
			for _, b := range x.Body {
				walk(b)
			}
		case *fortran.WhileStmt:
			fixExpr(x.Cond)
			for _, b := range x.Body {
				walk(b)
			}
		case *fortran.CallStmt:
			for _, a := range x.Args {
				fixExpr(a)
			}
		case *fortran.PrintStmt:
			for _, it := range x.Items {
				fixExpr(it)
			}
		case *fortran.ReadStmt:
			for _, it := range x.Items {
				fixExpr(it)
			}
		}
	}
	walk(s)
}
