package xform

import (
	"fmt"

	"parascope/internal/fortran"
)

// ---------------------------------------------------------------------------
// Privatization

// Privatize declares a scalar private to a loop, eliminating its
// carried dependences.
type Privatize struct {
	Do  *fortran.DoStmt
	Sym *fortran.Symbol
}

// Name implements Transformation.
func (Privatize) Name() string { return "privatize" }

// Check implements Transformation.
func (t Privatize) Check(c *Context) Verdict {
	var v Verdict
	if staleLoop(c, t.Do, &v) {
		return v
	}
	if t.Sym.Kind != fortran.SymScalar {
		v.note("%s is not a scalar", t.Sym.Name)
		return v
	}
	v.Applicable = true
	res := privResultFor(c, t.Do, t.Sym)
	v.Safe = res.Privatizable && !res.NeedsLastValue
	if !res.Privatizable {
		v.note("%s: %s", t.Sym.Name, res.Reason)
	}
	if res.NeedsLastValue {
		v.note("%s is live after the loop: needs last-value copy-out", t.Sym.Name)
	}
	v.Profitable = v.Safe
	return v
}

// Apply implements Transformation.
func (t Privatize) Apply(c *Context) error {
	for _, p := range t.Do.Private {
		if p == t.Sym {
			return nil
		}
	}
	t.Do.Private = append(t.Do.Private, t.Sym)
	return nil
}

// ---------------------------------------------------------------------------
// Array privatization (extension)

// PrivatizeArray declares a work array private to a loop. The paper
// identifies this capability as *required* for arc3d and slab2d but
// missing from Ped ("interprocedural array kill analysis is
// required… To perform array privatization in slab2d, kill analysis
// must be combined with loop transformations"); it is implemented
// here as the natural extension: safe when every iteration kills the
// whole array (directly or through a call whose summary proves an
// array kill) before reading it.
type PrivatizeArray struct {
	Do  *fortran.DoStmt
	Sym *fortran.Symbol
}

// Name implements Transformation.
func (PrivatizeArray) Name() string { return "privatize-array" }

// Check implements Transformation.
func (t PrivatizeArray) Check(c *Context) Verdict {
	var v Verdict
	if staleLoop(c, t.Do, &v) {
		return v
	}
	if !t.Sym.IsArray() {
		v.note("%s is not an array", t.Sym.Name)
		return v
	}
	v.Applicable = true
	l := c.Loop(t.Do)
	res := c.DF.ArrayPrivatizable(l, t.Sym)
	v.Safe = res.Privatizable && !res.NeedsLastValue
	if !res.Privatizable {
		v.note("%s: %s", t.Sym.Name, res.Reason)
	}
	if res.NeedsLastValue {
		v.note("%s is live after the loop: last-iteration copy-out not supported for arrays", t.Sym.Name)
	}
	v.Profitable = v.Safe
	if v.Safe {
		v.note("each iteration kills the whole array before using it")
	}
	return v
}

// Apply implements Transformation.
func (t PrivatizeArray) Apply(c *Context) error {
	for _, p := range t.Do.Private {
		if p == t.Sym {
			return nil
		}
	}
	t.Do.Private = append(t.Do.Private, t.Sym)
	return nil
}

// ---------------------------------------------------------------------------
// Reduction recognition

// RecognizeReductions attaches the loop's recognized reductions so
// parallelization can combine per-iteration partial results.
type RecognizeReductions struct {
	Do *fortran.DoStmt
}

// Name implements Transformation.
func (RecognizeReductions) Name() string { return "recognize-reductions" }

// Check implements Transformation.
func (t RecognizeReductions) Check(c *Context) Verdict {
	var v Verdict
	l := c.Loop(t.Do)
	if l == nil {
		v.note("not a loop")
		return v
	}
	reds := c.DF.Reductions(l)
	if len(reds) == 0 {
		v.note("no reductions recognized")
		return v
	}
	v.Applicable = true
	v.Safe = true
	v.Profitable = true
	for _, r := range reds {
		op := r.OpName
		if op == "" {
			if r.Op == fortran.TokPlus {
				op = "+"
			} else {
				op = "*"
			}
		}
		v.note("%s is a %s-reduction", r.Sym.Name, op)
	}
	return v
}

// Apply implements Transformation.
func (t RecognizeReductions) Apply(c *Context) error {
	l := c.Loop(t.Do)
	if l == nil {
		return fmt.Errorf("recognize-reductions: no loop")
	}
	t.Do.Reductions = c.DF.Reductions(l)
	return nil
}

// ---------------------------------------------------------------------------
// Scalar expansion

// ScalarExpand replaces a scalar with a per-iteration array element,
// removing carried anti/output dependences when privatization cannot
// apply (e.g. the value is live after the loop).
type ScalarExpand struct {
	Do  *fortran.DoStmt
	Sym *fortran.Symbol
}

// Name implements Transformation.
func (ScalarExpand) Name() string { return "scalar-expand" }

// Check implements Transformation.
func (t ScalarExpand) Check(c *Context) Verdict {
	var v Verdict
	if staleLoop(c, t.Do, &v) {
		return v
	}
	if t.Sym.Kind != fortran.SymScalar {
		v.note("%s is not a scalar", t.Sym.Name)
		return v
	}
	if t.Do.Step != nil {
		v.note("expansion requires unit step")
		return v
	}
	l := c.Loop(t.Do)
	trip, ok := c.DF.TripCount(l)
	if !ok {
		v.note("trip count unknown: cannot size the expansion array")
		return v
	}
	used := false
	for _, s := range l.Stmts() {
		for _, ac := range c.DF.Accesses(s) {
			if ac.Sym == t.Sym {
				used = true
			}
		}
	}
	if !used {
		v.note("%s is not used in the loop", t.Sym.Name)
		return v
	}
	v.Applicable = true
	res := c.DF.Privatizable(l, t.Sym)
	if !res.Privatizable {
		// Upward-exposed use: iteration i would need element i-1's
		// value, which expansion does not provide.
		v.note("%s: %s", t.Sym.Name, res.Reason)
		v.Safe = false
		return v
	}
	v.Safe = true
	v.Profitable = true
	v.note("expands %s into a %d-element array", t.Sym.Name, trip)
	if res.NeedsLastValue {
		v.note("last value copied out after the loop")
	}
	return v
}

// Apply implements Transformation.
func (t ScalarExpand) Apply(c *Context) error {
	l := c.Loop(t.Do)
	trip, ok := c.DF.TripCount(l)
	if !ok {
		return fmt.Errorf("scalar-expand: unknown trip count")
	}
	res := c.DF.Privatizable(l, t.Sym)
	arr := newArray(c.Unit, t.Sym.Name+"x", t.Sym.Type, trip)
	// Index: i - lo + 1.
	idx := func() fortran.Expr {
		lo := fortran.CloneExpr(t.Do.Lo)
		return &fortran.Binary{Op: fortran.TokPlus,
			X: &fortran.Binary{Op: fortran.TokMinus,
				X: &fortran.VarRef{Sym: t.Do.Var, Name: t.Do.Var.Name}, Y: lo},
			Y: &fortran.IntLit{Val: 1}}
	}
	for _, s := range t.Do.Body {
		fortran.SubstVarStmt(s, t.Sym, &fortran.VarRef{
			Sym: arr, Name: arr.Name, Subs: []fortran.Expr{idx()},
		})
	}
	if res.NeedsLastValue {
		last := &fortran.AssignStmt{
			Lhs: &fortran.VarRef{Sym: t.Sym, Name: t.Sym.Name},
			Rhs: &fortran.VarRef{Sym: arr, Name: arr.Name,
				Subs: []fortran.Expr{&fortran.IntLit{Val: trip}}},
		}
		if !replaceStmt(c.Unit, t.Do, t.Do, last) {
			return fmt.Errorf("scalar-expand: could not insert last-value store")
		}
	}
	return nil
}
