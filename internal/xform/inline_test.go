package xform

import (
	"strings"
	"testing"

	"parascope/internal/dep"
	"parascope/internal/fortran"
	"parascope/internal/interp"
	"parascope/internal/interproc"
)

// interprocCtx builds a context with full interprocedural analysis
// (Mod/Ref, Kill, sections) — what a core.Session provides.
func interprocCtx(t *testing.T, f *fortran.File) *Context {
	t.Helper()
	prog := interproc.AnalyzeProgram(f)
	return NewContext(f, f.Units[0], &interproc.Effects{Prog: prog}, nil,
		&interproc.SectionProvider{Prog: prog}, dep.DefaultOptions())
}

// findCall locates the first call to name in the unit.
func findCall(u *fortran.Unit, name string) *fortran.CallStmt {
	var out *fortran.CallStmt
	fortran.WalkStmts(u.Body, func(s fortran.Stmt) bool {
		if cs, ok := s.(*fortran.CallStmt); ok && cs.Name == name && out == nil {
			out = cs
		}
		return out == nil
	})
	return out
}

const gloopProgram = `
      program main
      integer ilat
      real u(64,32)
      do ilat = 1, 32
         call gloop(u, ilat)
      enddo
      print *, u(10,10), u(64,32)
      end
      subroutine gloop(u, j)
      integer j, k
      real u(64,32), t
      do k = 1, 64
         t = real(k + j)*0.5
         u(k,j) = t + 1.0
      enddo
      end
`

func TestInlineBasic(t *testing.T) {
	c := newCtx(t, gloopProgram)
	seqOut, err := interp.RunCapture(fortran.MustParse("ref.f", gloopProgram), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	call := findCall(c.Unit, "gloop")
	tr := Inline{Call: call}
	v := tr.Check(c)
	if !v.OK() || !v.Profitable {
		t.Fatalf("verdict = %s", v)
	}
	if err := tr.Apply(c); err != nil {
		t.Fatal(err)
	}
	c.Refresh()
	// The callee's loop is now nested directly in the ilat loop.
	outer := c.DF.Tree.Roots[0]
	if len(outer.Children) != 1 || outer.Children[0].Header().Name != "k" {
		t.Fatalf("inlined nest shape wrong: %v", outer.Children)
	}
	// Semantics preserved.
	got, err := interp.RunCapture(c.File, 1, nil)
	if err != nil {
		t.Fatalf("inlined program failed: %v\n%s", err, c.File.Path)
	}
	if ok, why := interp.OutputsEquivalent(seqOut, got, 1e-9); !ok {
		t.Errorf("output changed: %s\nwant %q\ngot  %q", why, seqOut, got)
	}
	reparse(t, c)
}

func TestInlineEnablesOuterParallelization(t *testing.T) {
	// The paper's gloop scenario: after embedding, the whole nest is
	// visible and the outer latitude loop parallelizes directly.
	c := newCtx(t, gloopProgram)
	call := findCall(c.Unit, "gloop")
	if err := (Inline{Call: call}).Apply(c); err != nil {
		t.Fatal(err)
	}
	c.Refresh()
	outer := c.DF.Tree.Roots[0].Do
	v := (Parallelize{Do: outer}).Check(c)
	if !v.Safe {
		t.Fatalf("outer loop should parallelize after inlining: %s", v)
	}
}

func TestInlineLocalRenaming(t *testing.T) {
	// The callee's local t must not collide with the caller's t.
	src := `
      program main
      real t, x
      t = 7.0
      x = 1.0
      call f(x)
      print *, t, x
      end
      subroutine f(v)
      real v, t
      t = v*2.0
      v = t + 1.0
      end
`
	c := newCtx(t, src)
	seqOut, err := interp.RunCapture(fortran.MustParse("ref.f", src), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	call := findCall(c.Unit, "f")
	if err := (Inline{Call: call}).Apply(c); err != nil {
		t.Fatal(err)
	}
	c.Refresh()
	got, err := interp.RunCapture(c.File, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ok, why := interp.OutputsEquivalent(seqOut, got, 1e-9); !ok {
		t.Errorf("local collision changed output: %s\nwant %q got %q\n%s",
			why, seqOut, got, c.Unit.Name)
	}
	// The caller must now have a renamed local (t1).
	if c.Unit.Lookup("t1") == nil {
		t.Error("expected renamed local t1")
	}
}

func TestInlineExpressionActual(t *testing.T) {
	src := `
      program main
      real y, r
      y = 3.0
      call f(y*2.0, r)
      print *, r
      end
      subroutine f(x, out)
      real x, out
      out = x + 1.0
      end
`
	c := newCtx(t, src)
	seqOut, err := interp.RunCapture(fortran.MustParse("ref.f", src), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	call := findCall(c.Unit, "f")
	tr := Inline{Call: call}
	if v := tr.Check(c); !v.OK() {
		t.Fatalf("verdict = %s", v)
	}
	if err := tr.Apply(c); err != nil {
		t.Fatal(err)
	}
	c.Refresh()
	got, err := interp.RunCapture(c.File, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ok, why := interp.OutputsEquivalent(seqOut, got, 1e-9); !ok {
		t.Errorf("output changed: %s", why)
	}
}

func TestInlineRejectsWriteToExprActual(t *testing.T) {
	c := newCtx(t, `
      program main
      real y
      y = 1.0
      call f(y*2.0)
      end
      subroutine f(x)
      real x
      x = 5.0
      end
`)
	call := findCall(c.Unit, "f")
	if v := (Inline{Call: call}).Check(c); v.Applicable {
		t.Fatalf("writing an expression actual must not be inlinable: %s", v)
	}
}

func TestInlineRejectsControlFlow(t *testing.T) {
	c := newCtx(t, `
      program main
      real y
      y = 1.0
      call f(y)
      end
      subroutine f(x)
      real x
      if (x .gt. 0.0) return
      x = -x
      end
`)
	call := findCall(c.Unit, "f")
	v := (Inline{Call: call}).Check(c)
	if v.Applicable {
		t.Fatalf("early RETURN must block inlining: %s", v)
	}
	if !strings.Contains(strings.Join(v.Notes, " "), "RETURN") {
		t.Errorf("notes = %v", v.Notes)
	}
}

func TestInlineCommonBinding(t *testing.T) {
	src := `
      program main
      real acc
      common /st/ acc
      acc = 1.0
      call bump
      call bump
      print *, acc
      end
      subroutine bump
      real acc
      common /st/ acc
      acc = acc + 2.0
      end
`
	c := newCtx(t, src)
	seqOut, err := interp.RunCapture(fortran.MustParse("ref.f", src), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	call := findCall(c.Unit, "bump")
	if err := (Inline{Call: call}).Apply(c); err != nil {
		t.Fatal(err)
	}
	c.Refresh()
	got, err := interp.RunCapture(c.File, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ok, why := interp.OutputsEquivalent(seqOut, got, 1e-9); !ok {
		t.Errorf("common inline changed output: %s\nwant %q got %q", why, seqOut, got)
	}
}

// TestArrayPrivatization exercises the extension the paper says arc3d
// needed: a sweep loop whose called routine kills a work array every
// iteration. Privatizing the array removes the carried dependences;
// parallel execution must still match sequential.
func TestArrayPrivatization(t *testing.T) {
	src := `
      program main
      integer k
      real q(200), work(32)
      do k = 1, 200
         q(k) = 0.01*real(mod(k, 13))
      enddo
      do k = 1, 100
         call sweep(work, q, k)
      enddo
      print *, q(1), q(50), q(164)
      end
      subroutine sweep(w, q, k)
      integer k, i
      real w(32), q(200), s
      do i = 1, 32
         w(i) = real(i + k)*0.01
      enddo
      s = 0.0
      do i = 1, 32
         s = s + w(i)
      enddo
      q(k + 64) = q(k + 64) + s*0.001
      end
`
	// Reference run.
	ref := fortran.MustParse("ref.f", src)
	want, err := interp.RunCapture(ref, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Analysis needs the interprocedural summaries.
	f := fortran.MustParse("t.f", src)
	c := interprocCtx(t, f)
	sweepLoop := c.DF.Tree.Roots[1].Do
	work := c.Unit.Lookup("work")

	// Without privatization the work array blocks the loop.
	pv := (Parallelize{Do: sweepLoop}).Check(c)
	if pv.Safe {
		t.Fatalf("work array should block the sweep loop: %s", pv)
	}

	tr := PrivatizeArray{Do: sweepLoop, Sym: work}
	v := tr.Check(c)
	if !v.OK() {
		t.Fatalf("array privatization verdict = %s", v)
	}
	if err := tr.Apply(c); err != nil {
		t.Fatal(err)
	}
	c.Refresh()
	sweepLoop = c.DF.Tree.Roots[1].Do // refresh does not move statements, but re-fetch for clarity

	pv = (Parallelize{Do: sweepLoop}).Check(c)
	if !pv.Safe {
		t.Fatalf("after array privatization the sweep loop should parallelize: %s", pv)
	}
	if err := (Parallelize{Do: sweepLoop}).Apply(c); err != nil {
		t.Fatal(err)
	}
	got, err := interp.RunCapture(c.File, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ok, why := interp.OutputsEquivalent(want, got, 1e-6); !ok {
		t.Errorf("private-array parallel run differs: %s\nwant %q\ngot  %q", why, want, got)
	}
}

// TestArrayPrivatizationRejectsUpwardExposed: if the callee reads the
// array before killing it, privatization must be refused.
func TestArrayPrivatizationRejectsUpwardExposed(t *testing.T) {
	src := `
      program main
      integer k
      real q(200), work(32)
      do k = 1, 100
         call sweep(work, q, k)
      enddo
      print *, q(1)
      end
      subroutine sweep(w, q, k)
      integer k, i
      real w(32), q(200)
      q(k) = w(1)
      do i = 1, 32
         w(i) = real(i + k)*0.01
      enddo
      end
`
	f := fortran.MustParse("t.f", src)
	c := interprocCtx(t, f)
	loop := c.DF.Tree.Roots[0].Do
	work := c.Unit.Lookup("work")
	if v := (PrivatizeArray{Do: loop, Sym: work}).Check(c); v.Safe {
		t.Fatalf("upward-exposed read must block array privatization: %s", v)
	}
}
