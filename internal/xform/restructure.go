package xform

import (
	"fmt"

	"parascope/internal/dataflow"
	"parascope/internal/dep"
	"parascope/internal/fortran"
)

// ---------------------------------------------------------------------------
// Loop distribution

// Distribute splits a loop into one loop per strongly-connected
// component of its body's dependence graph (in topological order),
// exposing partially parallel loops.
type Distribute struct {
	Do *fortran.DoStmt
}

// Name implements Transformation.
func (Distribute) Name() string { return "distribute" }

// components groups the loop's top-level statements into SCCs of the
// dependence relation, returned in topological (executable) order.
func (t Distribute) components(c *Context) [][]fortran.Stmt {
	body := t.Do.Body
	n := len(body)
	// Map every nested statement to its top-level group index.
	groupOf := map[int]int{}
	for i, s := range body {
		groupOf[s.ID()] = i
		fortran.WalkStmts([]fortran.Stmt{s}, func(x fortran.Stmt) bool {
			groupOf[x.ID()] = i
			return true
		})
	}
	// Dependence edges between groups (any class, any level within
	// this loop, both directions of carried deps matter for cycles).
	adj := make([][]bool, n)
	for i := range adj {
		adj[i] = make([]bool, n)
	}
	l := c.Loop(t.Do)
	for _, d := range activeDeps(c.Deps.LoopDeps(l)) {
		si, okS := groupOf[d.Src.ID()]
		di, okD := groupOf[d.Dst.ID()]
		if !okS || !okD || si == di {
			continue
		}
		adj[si][di] = true
	}
	// Also respect control dependences between groups.
	for _, d := range c.Deps.Deps {
		if d.Class != dep.ClassControl {
			continue
		}
		si, okS := groupOf[d.Src.ID()]
		di, okD := groupOf[d.Dst.ID()]
		if okS && okD && si != di {
			adj[si][di] = true
		}
	}
	// Tarjan-lite SCC via iterative Kosaraju on the tiny graph.
	sccID := scc(adj)
	// Group statements by SCC, preserving original order inside each.
	maxID := 0
	for _, id := range sccID {
		if id > maxID {
			maxID = id
		}
	}
	groups := make([][]fortran.Stmt, maxID+1)
	for i, s := range body {
		groups[sccID[i]] = append(groups[sccID[i]], s)
	}
	// Topological order of components: order by minimal original
	// index (valid because SCC condensation of a program order graph
	// respects it when edges only go between groups; verify by edge
	// check below).
	return groups
}

// scc computes strongly connected components of a small adjacency
// matrix, numbering components so that a topological order of the
// condensation is by increasing component id.
func scc(adj [][]bool) []int {
	n := len(adj)
	visited := make([]bool, n)
	var order []int
	var dfs1 func(v int)
	dfs1 = func(v int) {
		visited[v] = true
		for w := 0; w < n; w++ {
			if adj[v][w] && !visited[w] {
				dfs1(w)
			}
		}
		order = append(order, v)
	}
	for v := 0; v < n; v++ {
		if !visited[v] {
			dfs1(v)
		}
	}
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	var dfs2 func(v, id int)
	dfs2 = func(v, id int) {
		comp[v] = id
		for w := 0; w < n; w++ {
			if adj[w][v] && comp[w] == -1 {
				dfs2(w, id)
			}
		}
	}
	id := 0
	for i := len(order) - 1; i >= 0; i-- {
		if comp[order[i]] == -1 {
			dfs2(order[i], id)
			id++
		}
	}
	// Renumber components so ascending id is a valid topological
	// order (id from the second pass is reverse-topological of the
	// condensation already; verify orientation by checking edges).
	// Kosaraju's second pass on the reversed graph yields components
	// in topological order of the original graph.
	return comp
}

// Check implements Transformation.
func (t Distribute) Check(c *Context) Verdict {
	var v Verdict
	if staleLoop(c, t.Do, &v) {
		return v
	}
	if len(t.Do.Body) < 2 {
		v.note("loop body has a single statement")
		return v
	}
	if hasExits(t.Do.Body) {
		v.note("body contains control-flow exits")
		return v
	}
	groups := t.components(c)
	if len(groups) < 2 {
		v.note("dependences form a single recurrence: nothing to distribute")
		return v
	}
	v.Applicable = true
	v.Safe = true // SCC partition in topological order preserves all deps
	v.Profitable = true
	v.note("distributes into %d loops", len(groups))
	return v
}

// Apply implements Transformation.
func (t Distribute) Apply(c *Context) error {
	groups := t.components(c)
	if len(groups) < 2 {
		return fmt.Errorf("distribute: single component")
	}
	var repl []fortran.Stmt
	for _, g := range groups {
		if len(g) == 0 {
			continue
		}
		loop := &fortran.DoStmt{
			Var:  t.Do.Var,
			Lo:   fortran.CloneExpr(t.Do.Lo),
			Hi:   fortran.CloneExpr(t.Do.Hi),
			Body: g,
		}
		if t.Do.Step != nil {
			loop.Step = fortran.CloneExpr(t.Do.Step)
		}
		repl = append(repl, loop)
	}
	if !replaceStmt(c.Unit, t.Do, repl...) {
		return fmt.Errorf("distribute: loop not found in unit")
	}
	return nil
}

// ---------------------------------------------------------------------------
// Loop fusion

// Fuse merges two adjacent loops with identical bounds into one,
// increasing granularity.
type Fuse struct {
	First  *fortran.DoStmt
	Second *fortran.DoStmt
}

// Name implements Transformation.
func (Fuse) Name() string { return "fuse" }

// adjacent verifies the two loops sit next to each other in the same
// statement list.
func (t Fuse) adjacent(c *Context) bool {
	body, i := parentBody(c.Unit, t.First)
	if body == nil || i+1 >= len(body) {
		return false
	}
	return body[i+1] == t.Second
}

// buildFused constructs the fused loop (on fresh clones when probe is
// true, in place otherwise), returning the loop and how many of its
// body statements came from the first input loop.
func (t Fuse) buildFused(probe bool) (*fortran.DoStmt, int) {
	b1 := t.First.Body
	b2 := t.Second.Body
	if probe {
		b1 = fortran.CloneBody(b1)
		b2 = fortran.CloneBody(b2)
	}
	// Rename the second loop's variable to the first's.
	if t.Second.Var != t.First.Var {
		repl := &fortran.VarRef{Sym: t.First.Var, Name: t.First.Var.Name}
		for _, s := range b2 {
			fortran.SubstVarStmt(s, t.Second.Var, repl)
		}
	}
	fused := &fortran.DoStmt{
		Var:  t.First.Var,
		Lo:   fortran.CloneExpr(t.First.Lo),
		Hi:   fortran.CloneExpr(t.First.Hi),
		Body: append(append([]fortran.Stmt{}, b1...), b2...),
	}
	if t.First.Step != nil {
		fused.Step = fortran.CloneExpr(t.First.Step)
	}
	return fused, len(b1)
}

// Check implements Transformation.
func (t Fuse) Check(c *Context) Verdict {
	var v Verdict
	if !t.adjacent(c) {
		v.note("loops are not adjacent")
		return v
	}
	if !sameBounds(c.Unit, t.First, t.Second) {
		v.note("loop bounds differ")
		return v
	}
	if hasExits(t.First.Body) || hasExits(t.Second.Body) {
		v.note("body contains control-flow exits")
		return v
	}
	v.Applicable = true
	// Probe: fuse clones, re-analyze, and look for a
	// fusion-preventing dependence — one flowing from a second-loop
	// statement back to a first-loop statement carried by the fused
	// loop.
	fused, n1 := t.buildFused(true)
	tmpUnit := &fortran.Unit{
		Kind: c.Unit.Kind, Name: c.Unit.Name, Syms: c.Unit.Syms,
		Args: c.Unit.Args, Body: []fortran.Stmt{fused},
	}
	tmpFile := &fortran.File{Units: []*fortran.Unit{tmpUnit}}
	tmpFile.RenumberStmts()
	set1 := map[int]bool{}
	set2 := map[int]bool{}
	fortran.WalkStmts(fused.Body[:n1], func(s fortran.Stmt) bool { set1[s.ID()] = true; return true })
	fortran.WalkStmts(fused.Body[n1:], func(s fortran.Stmt) bool { set2[s.ID()] = true; return true })
	df := dataflow.Analyze(tmpUnit, c.Effects)
	g := dep.Analyze(df, c.Assertions, c.Summaries, c.Opts)
	l := df.Tree.LoopOf(fused)
	v.Safe = true
	for _, d := range activeDeps(g.CarriedAt(l)) {
		if set2[d.Src.ID()] && set1[d.Dst.ID()] {
			v.Safe = false
			v.note("fusion-preventing dependence on %s", d.Sym.Name)
		}
	}
	v.Profitable = true
	v.note("fusion increases loop granularity")
	return v
}

// Apply implements Transformation.
func (t Fuse) Apply(c *Context) error {
	if !t.adjacent(c) {
		return fmt.Errorf("fuse: loops not adjacent")
	}
	fused, _ := t.buildFused(false)
	body, i := parentBody(c.Unit, t.First)
	if body == nil {
		return fmt.Errorf("fuse: first loop not found")
	}
	body[i] = fused
	// Remove the second loop.
	if !replaceStmt(c.Unit, t.Second) {
		return fmt.Errorf("fuse: second loop not found")
	}
	return nil
}

// ---------------------------------------------------------------------------
// Statement interchange

// StmtInterchange swaps two adjacent statements within a body.
type StmtInterchange struct {
	First  fortran.Stmt
	Second fortran.Stmt
}

// Name implements Transformation.
func (StmtInterchange) Name() string { return "statement-interchange" }

// Check implements Transformation.
func (t StmtInterchange) Check(c *Context) Verdict {
	var v Verdict
	body, i := parentBody(c.Unit, t.First)
	if body == nil || i+1 >= len(body) || body[i+1] != t.Second {
		v.note("statements are not adjacent")
		return v
	}
	v.Applicable = true
	v.Safe = true
	in := func(set fortran.Stmt, s fortran.Stmt) bool {
		found := false
		fortran.WalkStmts([]fortran.Stmt{set}, func(x fortran.Stmt) bool {
			if x == s {
				found = true
			}
			return !found
		})
		return found
	}
	for _, d := range activeDeps(c.Deps.Deps) {
		if d.Carried() {
			continue // carried deps are unaffected by intra-iteration order
		}
		if (in(t.First, d.Src) && in(t.Second, d.Dst)) ||
			(in(t.Second, d.Src) && in(t.First, d.Dst)) {
			v.Safe = false
			v.note("dependence between the statements: %s", d)
		}
	}
	v.Profitable = false
	v.note("enabling transformation")
	return v
}

// Apply implements Transformation.
func (t StmtInterchange) Apply(c *Context) error {
	body, i := parentBody(c.Unit, t.First)
	if body == nil || i+1 >= len(body) || body[i+1] != t.Second {
		return fmt.Errorf("statement-interchange: not adjacent")
	}
	body[i], body[i+1] = body[i+1], body[i]
	return nil
}
