// Package experiments regenerates every table and figure of the
// paper's evaluation from the reproduced system: the program suite
// (Table 1), the user-session results (Table 2), the
// analysis-capability ablation matrix (Table 3), the Ped window
// (Figure 1), the power-steering transcript (the worked
// transformation example), the dependence-test effectiveness
// breakdown, the measured parallel speedups, and the incremental-
// reanalysis timing that makes the editor interactive.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"parascope/internal/core"
	"parascope/internal/fortran"
	"parascope/internal/interp"
	"parascope/internal/view"
	"parascope/internal/workloads"
	"parascope/internal/xform"
)

// Table1 regenerates the program-suite table: name, description,
// size, procedures, loops.
func Table1() (string, error) {
	var b strings.Builder
	b.WriteString("Table 1: the program suite (synthetic, modeled on the paper's user codes)\n\n")
	fmt.Fprintf(&b, "%-8s  %-45s %6s %6s %6s\n", "name", "description", "lines", "procs", "loops")
	for _, w := range workloads.All() {
		st, err := w.Measure()
		if err != nil {
			return "", fmt.Errorf("%s: %v", w.Name, err)
		}
		fmt.Fprintf(&b, "%-8s  %-45s %6d %6d %6d\n", w.Name, w.Description, st.Lines, st.Procedures, st.Loops)
	}
	b.WriteString("\nmodeled after:\n")
	for _, w := range workloads.All() {
		fmt.Fprintf(&b, "  %-8s %s\n", w.Name, w.ModeledAfter)
	}
	return b.String(), nil
}

// SessionResult is one row of Table 2.
type SessionResult struct {
	Name              string
	Loops             int
	Parallelized      int
	Assertions        int
	DepsRejected      int
	Reclassifications int
	Transformations   map[string]int
}

// RunSessions replays every workload's scripted user session.
func RunSessions() ([]SessionResult, error) {
	var out []SessionResult
	for _, w := range workloads.All() {
		s, err := w.Session()
		if err != nil {
			return nil, fmt.Errorf("%s: %v", w.Name, err)
		}
		n, err := w.Script(s)
		if err != nil {
			return nil, fmt.Errorf("%s: script: %v", w.Name, err)
		}
		st, err := w.Measure()
		if err != nil {
			return nil, err
		}
		out = append(out, SessionResult{
			Name:              w.Name,
			Loops:             st.Loops,
			Parallelized:      n,
			Assertions:        s.Stats.Assertions,
			DepsRejected:      s.Stats.DepsRejected,
			Reclassifications: s.Stats.Reclassifications,
			Transformations:   s.Stats.Transformations,
		})
	}
	return out, nil
}

// Table2 regenerates the user-session results table.
func Table2() (string, error) {
	rows, err := RunSessions()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Table 2: scripted user sessions (loops parallelized and user actions)\n\n")
	fmt.Fprintf(&b, "%-8s %6s %9s %8s %8s  %s\n",
		"name", "loops", "parallel", "asserts", "deleted", "transformations")
	for _, r := range rows {
		var ts []string
		for name, n := range r.Transformations {
			ts = append(ts, fmt.Sprintf("%s:%d", name, n))
		}
		sort.Strings(ts)
		fmt.Fprintf(&b, "%-8s %6d %9d %8d %8d  %s\n",
			r.Name, r.Loops, r.Parallelized, r.Assertions, r.DepsRejected, strings.Join(ts, " "))
	}
	return b.String(), nil
}

// AblationConfig is one column of Table 3.
type AblationConfig struct {
	Name string
	// Apply configures a fresh session for the configuration.
	Apply func(s *core.Session)
	// WithScript also replays the workload's user script (assertions,
	// deletions, transformations) on top of the analyses.
	WithScript bool
}

// AblationConfigs returns the Table 3 columns, cumulative left to
// right: plain dependence analysis; + interprocedural Mod/Ref and
// scalar/array Kill; + regular sections; + the interactive session.
func AblationConfigs() []AblationConfig {
	return []AblationConfig{
		{Name: "dep", Apply: func(s *core.Session) {
			s.Conservative = true
			s.Opts.UseSections = false
			s.AnalyzeAll()
		}},
		{Name: "+killmodref", Apply: func(s *core.Session) {
			s.Opts.UseSections = false
			s.AnalyzeAll()
		}},
		{Name: "+sections", Apply: func(s *core.Session) {
			s.AnalyzeAll()
		}},
		{Name: "+user", Apply: func(s *core.Session) {
			s.AnalyzeAll()
		}, WithScript: true},
	}
}

// AblationCell is one measurement: loops parallelized under a config.
// Outer counts only outermost (depth-1) parallel loops — the
// granularity that actually pays on a multiprocessor.
type AblationCell struct {
	Workload string
	Config   string
	Parallel int
	Outer    int
}

// RunAblation measures every workload under every configuration.
func RunAblation() ([]AblationCell, error) {
	var out []AblationCell
	for _, w := range workloads.All() {
		for _, cfg := range AblationConfigs() {
			s, err := w.Session()
			if err != nil {
				return nil, err
			}
			cfg.Apply(s)
			if cfg.WithScript {
				if _, err := w.Script(s); err != nil {
					// A script may legitimately fail under a degraded
					// configuration; count what it achieved anyway.
					_ = err
				}
			} else {
				s.AutoParallelize()
			}
			total, outer := countParallel(s)
			out = append(out, AblationCell{Workload: w.Name, Config: cfg.Name, Parallel: total, Outer: outer})
		}
	}
	return out, nil
}

// countParallel counts the parallel loops of the session's main unit,
// total and outermost-level.
func countParallel(s *core.Session) (total, outer int) {
	main := s.File.Main()
	if main == nil {
		return 0, 0
	}
	var walk func(body []fortran.Stmt, depth int)
	walk = func(body []fortran.Stmt, depth int) {
		for _, st := range body {
			switch x := st.(type) {
			case *fortran.DoStmt:
				if x.Parallel {
					total++
					if depth == 1 {
						outer++
					}
				}
				walk(x.Body, depth+1)
			case *fortran.IfStmt:
				walk(x.Then, depth)
				walk(x.Else, depth)
			case *fortran.WhileStmt:
				walk(x.Body, depth+1)
			}
		}
	}
	walk(main.Body, 1)
	return total, outer
}

// Table3 regenerates the analysis-capability matrix: how many loops
// each analysis level parallelizes, per program, plus the trait
// annotations from the suite.
func Table3() (string, error) {
	cells, err := RunAblation()
	if err != nil {
		return "", err
	}
	byKey := map[string]int{}
	for _, c := range cells {
		byKey[c.Workload+"/"+c.Config] = c.Parallel
	}
	outerKey := map[string]int{}
	for _, c := range cells {
		outerKey[c.Workload+"/"+c.Config] = c.Outer
	}
	var b strings.Builder
	b.WriteString("Table 3: parallel loops per analysis level (outer/total, cumulative columns)\n\n")
	cfgs := AblationConfigs()
	fmt.Fprintf(&b, "%-8s", "name")
	for _, c := range cfgs {
		fmt.Fprintf(&b, " %12s", c.Name)
	}
	fmt.Fprintf(&b, "  %s\n", "needs (traits)")
	for _, w := range workloads.All() {
		fmt.Fprintf(&b, "%-8s", w.Name)
		for _, c := range cfgs {
			cell := fmt.Sprintf("%d/%d", outerKey[w.Name+"/"+c.Name], byKey[w.Name+"/"+c.Name])
			fmt.Fprintf(&b, " %12s", cell)
		}
		var traits []string
		for _, t := range w.Traits {
			traits = append(traits, string(t))
		}
		fmt.Fprintf(&b, "  %s\n", strings.Join(traits, ", "))
	}
	return b.String(), nil
}

// Figure1 renders the Ped window over the arc3d filter loop — the
// paper's Figure 1 layout.
func Figure1() (string, error) {
	w := workloads.ByName("arc3d")
	s, err := w.Session()
	if err != nil {
		return "", err
	}
	if err := s.SelectLoop(2); err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Figure 1: the Ped window (source, dependence and variable panes)\n\n")
	b.WriteString(view.Window(s, nil, core.DepFilter{CarriedOnly: true}))
	b.WriteString("\n")
	b.WriteString(view.Legend())
	return b.String(), nil
}

// PowerSteering renders the worked transformation transcript: the
// shear nest diagnosed and interchanged, verdict by verdict.
func PowerSteering() (string, error) {
	w := workloads.ByName("shear")
	s, err := w.Session()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Power steering transcript (worked example: shear relaxation nest)\n\n")
	var target *fortran.DoStmt
	for _, l := range s.Loops() {
		if l.Depth != 1 {
			continue
		}
		v := s.Check(xform.Parallelize{Do: l.Do})
		fmt.Fprintf(&b, "parallelize do %s (line %d)?\n  %s\n", l.Do.Var.Name, l.Do.Line(), v)
		if !v.Safe && len(l.Children) == 1 {
			target = l.Do
		}
	}
	if target == nil {
		return "", fmt.Errorf("power steering: no blocked nest found")
	}
	iv := s.Check(xform.Interchange{Outer: target})
	fmt.Fprintf(&b, "interchange do %s nest?\n  %s\n", target.Var.Name, iv)
	if _, err := s.Transform(xform.Interchange{Outer: target}); err != nil {
		return "", err
	}
	pv := s.Check(xform.Parallelize{Do: target})
	fmt.Fprintf(&b, "parallelize do %s (after interchange)?\n  %s\n", target.Var.Name, pv)
	if _, err := s.Transform(xform.Parallelize{Do: target}); err != nil {
		return "", err
	}
	b.WriteString("\nresulting loop nest:\n")
	b.WriteString(view.SourcePane(s, view.FilterLoopsOnly))
	return b.String(), nil
}

// depKernels is a corpus of subscript patterns exercising every tier
// of the hierarchical dependence test suite, complementing the
// workloads for the effectiveness experiment.
const depKernels = `
      program depk
      integer i, j, n
      parameter (n = 100)
      real a(400), m(100,100)
      do i = 1, n
         a(5) = a(i) + 1.0
      enddo
      do i = 1, n
         a(2*i) = a(3*i + 1)*0.5
      enddo
      do i = 1, n
         do j = 1, n
            a(2*i + 2*j) = a(2*i + 2*j + 101)
         enddo
      enddo
      do i = 1, 50
         do j = 1, 50
            a(i + j) = a(i + j + 200)
         enddo
      enddo
      do i = 2, n
         do j = 2, n
            m(i,j) = m(i-1,j-1)*0.5
         enddo
      enddo
      do i = 2, n
         m(i,i) = m(i-1,i-2) + 1.0
      enddo
      print *, a(5), m(50,50)
      end
`

// DepTestStats aggregates the hierarchical suite's effectiveness over
// the workload suite plus a kernel corpus covering every test tier —
// the "inexpensive tests first" claim.
func DepTestStats() (string, error) {
	total := struct {
		pairs     int
		applied   map[string]int
		disproved map[string]int
		proven    map[string]int
	}{applied: map[string]int{}, disproved: map[string]int{}, proven: map[string]int{}}
	collect := func(s *core.Session) {
		for _, u := range s.File.Units {
			st := s.StateOf(u)
			total.pairs += st.Deps.Stats.PairsTested
			for k, v := range st.Deps.Stats.Applied {
				total.applied[k] += v
			}
			for k, v := range st.Deps.Stats.Disproved {
				total.disproved[k] += v
			}
			for k, v := range st.Deps.Stats.Proven {
				total.proven[k] += v
			}
		}
	}
	for _, w := range workloads.All() {
		s, err := w.Session()
		if err != nil {
			return "", err
		}
		collect(s)
	}
	ks, err := core.Open("depk.f", depKernels)
	if err != nil {
		return "", err
	}
	collect(ks)
	var names []string
	for k := range total.applied {
		names = append(names, k)
	}
	sort.Slice(names, func(i, j int) bool {
		if total.applied[names[i]] != total.applied[names[j]] {
			return total.applied[names[i]] > total.applied[names[j]]
		}
		return names[i] < names[j]
	})
	var b strings.Builder
	b.WriteString("Dependence-test effectiveness over the suite\n\n")
	fmt.Fprintf(&b, "reference pairs tested: %d\n\n", total.pairs)
	fmt.Fprintf(&b, "%-18s %9s %10s %8s\n", "test", "applied", "disproved", "proven")
	for _, n := range names {
		fmt.Fprintf(&b, "%-18s %9d %10d %8d\n", n, total.applied[n], total.disproved[n], total.proven[n])
	}
	return b.String(), nil
}

// SpeedupRow is one workload's measured execution: wall-clock times
// plus the machine-independent simulated cycle counts (critical path
// over DOALL workers — the 8-processor substitute that works even on
// a single-core host).
type SpeedupRow struct {
	Name       string
	Workers    []int
	Times      []time.Duration
	Speedup    []float64
	SimCycles  []int64
	SimSpeedup []float64
}

// MeasureSpeedups scripts each workload, then times the parallelized
// program at each worker count (the goroutine executor standing in
// for the paper's 8-processor shared-memory machines).
func MeasureSpeedups(workerCounts []int, repeats int) ([]SpeedupRow, error) {
	var out []SpeedupRow
	for _, w := range workloads.All() {
		s, err := w.Session()
		if err != nil {
			return nil, err
		}
		if _, err := w.Script(s); err != nil {
			return nil, fmt.Errorf("%s: %v", w.Name, err)
		}
		row := SpeedupRow{Name: w.Name, Workers: workerCounts}
		for _, nw := range workerCounts {
			best := time.Duration(0)
			var cycles int64
			for r := 0; r < repeats; r++ {
				start := time.Now()
				_, c, err := interp.RunCaptureSim(s.File, nw, w.Input)
				if err != nil {
					return nil, fmt.Errorf("%s @%d workers: %v", w.Name, nw, err)
				}
				el := time.Since(start)
				if best == 0 || el < best {
					best = el
				}
				cycles = c
			}
			row.Times = append(row.Times, best)
			row.SimCycles = append(row.SimCycles, cycles)
		}
		base := row.Times[0].Seconds()
		simBase := float64(row.SimCycles[0])
		for i, t := range row.Times {
			row.Speedup = append(row.Speedup, base/t.Seconds())
			row.SimSpeedup = append(row.SimSpeedup, simBase/float64(row.SimCycles[i]))
		}
		out = append(out, row)
	}
	return out, nil
}

// SpeedupTable renders the measured speedups: simulated (machine-
// independent) speedup per worker count, plus single-worker wall time
// for scale.
func SpeedupTable(workerCounts []int, repeats int) (string, error) {
	rows, err := MeasureSpeedups(workerCounts, repeats)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Parallel execution: simulated speedup (critical-path cycles)\n")
	b.WriteString("and wall-clock time at 1 worker\n\n")
	fmt.Fprintf(&b, "%-8s %12s %12s", "name", "cycles(1w)", "t(1w)")
	for _, nw := range workerCounts[1:] {
		fmt.Fprintf(&b, " %8s", fmt.Sprintf("S(%d)", nw))
	}
	b.WriteString("\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %12d %12s", r.Name, r.SimCycles[0], r.Times[0].Round(10*time.Microsecond))
		for i := range r.Workers[1:] {
			fmt.Fprintf(&b, " %8.2f", r.SimSpeedup[i+1])
		}
		b.WriteString("\n")
	}
	return b.String(), nil
}

// BigProgram synthesizes a spec77-scale multi-unit program (for the
// incremental-reanalysis experiment): k compute subroutines plus a
// main calling them all.
func BigProgram(k int) string {
	var b strings.Builder
	b.WriteString("      program big\n      integer i\n      real a(1000)\n")
	b.WriteString("      do i = 1, 1000\n         a(i) = real(i)\n      enddo\n")
	for u := 0; u < k; u++ {
		fmt.Fprintf(&b, "      call unit%d(a, 1000)\n", u)
	}
	b.WriteString("      print *, a(1)\n      end\n")
	for u := 0; u < k; u++ {
		fmt.Fprintf(&b, "      subroutine unit%d(x, n)\n", u)
		b.WriteString("      integer n, i, j\n      real x(n), t, s\n")
		b.WriteString("      s = 0.0\n")
		b.WriteString("      do i = 2, n\n")
		b.WriteString("         t = x(i)*0.5 + x(i-1)*0.25\n")
		b.WriteString("         x(i) = t + 0.001\n")
		b.WriteString("         s = s + t\n")
		b.WriteString("      enddo\n")
		b.WriteString("      do j = 1, n\n")
		b.WriteString("         x(j) = x(j) + s*0.0001\n")
		b.WriteString("      enddo\n")
		b.WriteString("      end\n")
	}
	return b.String()
}

// IncrementalResult reports the editor-responsiveness measurement.
type IncrementalResult struct {
	Units       int
	FullTime    time.Duration
	UnitTime    time.Duration
	EditTime    time.Duration
	SpeedupFull float64
}

// MeasureIncremental compares whole-program reanalysis against the
// incremental unit-level path the editor uses after a local edit.
func MeasureIncremental(units int) (IncrementalResult, error) {
	src := BigProgram(units)
	s, err := core.Open("big.f", src)
	if err != nil {
		return IncrementalResult{}, err
	}
	start := time.Now()
	s.AnalyzeAll()
	full := time.Since(start)

	u := s.File.Unit("unit0")
	start = time.Now()
	s.ReanalyzeUnit(u)
	unit := time.Since(start)

	if err := s.SelectUnit("unit0"); err != nil {
		return IncrementalResult{}, err
	}
	target := s.Loops()[0].Do.Body[0]
	start = time.Now()
	if err := s.EditStmt(target.ID(), "t = x(i)*0.5 + x(i-1)*0.3"); err != nil {
		return IncrementalResult{}, err
	}
	edit := time.Since(start)

	res := IncrementalResult{Units: units, FullTime: full, UnitTime: unit, EditTime: edit}
	if unit > 0 {
		res.SpeedupFull = full.Seconds() / unit.Seconds()
	}
	return res, nil
}

// IncrementalTable renders the editor-responsiveness experiment.
func IncrementalTable(sizes []int) (string, error) {
	var b strings.Builder
	b.WriteString("Incremental reanalysis vs whole-program reanalysis\n\n")
	fmt.Fprintf(&b, "%6s %12s %12s %12s %8s\n", "units", "full", "one-unit", "edit", "ratio")
	for _, n := range sizes {
		r, err := MeasureIncremental(n)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "%6d %12s %12s %12s %8.1f\n", r.Units,
			r.FullTime.Round(10*time.Microsecond),
			r.UnitTime.Round(10*time.Microsecond),
			r.EditTime.Round(10*time.Microsecond),
			r.SpeedupFull)
	}
	return b.String(), nil
}
