package experiments

import (
	"strings"
	"testing"

	"parascope/internal/core"
)

func coreOpen(src string) (*core.Session, error) { return core.Open("big.f", src) }

func TestTable1(t *testing.T) {
	out, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"spec77", "pneoss", "nxsns", "arc3d", "slab2d", "onedim", "shear", "direct", "interior"} {
		if !strings.Contains(out, name) {
			t.Errorf("Table 1 missing %s", name)
		}
	}
}

func TestTable2SessionsAllParallelizeSomething(t *testing.T) {
	rows, err := RunSessions()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Parallelized == 0 {
			t.Errorf("%s: session parallelized nothing", r.Name)
		}
	}
	// arc3d needed an assertion; onedim needed dependence deletion;
	// shear and slab2d needed restructuring transformations.
	byName := map[string]SessionResult{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	if byName["arc3d"].Assertions == 0 {
		t.Error("arc3d session should record an assertion")
	}
	if byName["onedim"].DepsRejected == 0 {
		t.Error("onedim session should record dependence deletions")
	}
	if byName["shear"].Transformations["interchange"] == 0 {
		t.Error("shear session should record an interchange")
	}
	if byName["slab2d"].Transformations["distribute"] == 0 {
		t.Error("slab2d session should record a distribution")
	}
}

func TestTable3AblationMonotone(t *testing.T) {
	cells, err := RunAblation()
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]int{}
	outer := map[string]int{}
	for _, c := range cells {
		byKey[c.Workload+"/"+c.Config] = c.Parallel
		outer[c.Workload+"/"+c.Config] = c.Outer
	}
	order := []string{"dep", "+killmodref", "+sections", "+user"}
	for _, w := range []string{"spec77", "pneoss", "nxsns", "arc3d", "slab2d", "onedim", "shear", "direct", "interior"} {
		prev := -1
		for _, cfg := range order {
			v, ok := byKey[w+"/"+cfg]
			if !ok {
				t.Fatalf("missing cell %s/%s", w, cfg)
			}
			if v < prev {
				t.Errorf("%s: adding analysis lost parallelism: %s=%d after %d", w, cfg, v, prev)
			}
			prev = v
		}
	}
	// Key claims of the paper's matrix:
	if byKey["spec77/+killmodref"] >= byKey["spec77/+sections"] {
		t.Error("spec77: sections must unlock the call loops")
	}
	if byKey["nxsns/dep"] >= byKey["nxsns/+killmodref"] {
		t.Error("nxsns: interprocedural kill must unlock the flux loop")
	}
	if byKey["arc3d/+sections"] >= byKey["arc3d/+user"] {
		t.Error("arc3d: the user assertion must unlock the filter loop")
	}
	if byKey["onedim/+sections"] >= byKey["onedim/+user"] {
		t.Error("onedim: dependence deletion must unlock the scatter loop")
	}
	if outer["shear/+sections"] >= outer["shear/+user"] {
		t.Error("shear: interchange must move parallelism to the outer level")
	}
}

func TestFigure1(t *testing.T) {
	out, err := Figure1()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"ParaScope Editor", "dependences", "variables", "symbolic"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure 1 missing %q", want)
		}
	}
}

func TestPowerSteering(t *testing.T) {
	out, err := PowerSteering()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"applicable", "safe", "interchange", "parallelize"} {
		if !strings.Contains(out, want) {
			t.Errorf("transcript missing %q:\n%s", want, out)
		}
	}
}

func TestDepTestStats(t *testing.T) {
	out, err := DepTestStats()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "strong-siv") {
		t.Errorf("stats missing strong-siv:\n%s", out)
	}
}

func TestSpeedupsRun(t *testing.T) {
	rows, err := MeasureSpeedups([]int{1, 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("got %d rows", len(rows))
	}
}

func TestIncremental(t *testing.T) {
	r, err := MeasureIncremental(10)
	if err != nil {
		t.Fatal(err)
	}
	if r.SpeedupFull < 2 {
		t.Errorf("incremental path only %.1fx faster than full reanalysis", r.SpeedupFull)
	}
}

func TestBigProgramParses(t *testing.T) {
	src := BigProgram(5)
	s, err := coreOpen(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.File.Units) != 6 {
		t.Errorf("units = %d, want 6", len(s.File.Units))
	}
}

// TestReportDeterminism guards against map-iteration nondeterminism
// in the generated tables: two runs must render identically.
func TestReportDeterminism(t *testing.T) {
	for name, fn := range map[string]func() (string, error){
		"t1": Table1,
		"t2": Table2,
		"t3": Table3,
		"f1": Figure1,
		"f2": PowerSteering,
		"e5": DepTestStats,
	} {
		a, err := fn()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, err := fn()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if a != b {
			t.Errorf("%s: output differs between runs", name)
		}
	}
}
