// Package execguard is the supervision layer under every program
// execution path — the REPL's run verb, POST /v1/sessions/{id}/run,
// the planner's compiled scoring pass, and the pedc/pedd binaries all
// route through it. Ped's interactive promise only holds if a user's
// *program* cannot take the daemon down, so every run is governed:
//
//   - a wall timeout (default 60s) kills runs that never finish;
//   - stdout/stderr are byte-capped, with an explicit "output
//     truncated after N bytes" error instead of unbounded buffering;
//   - compiled programs are spawned in their own process group and the
//     whole group is killed, so a timed-out DOALL fan-out leaves no
//     orphan workers behind;
//   - an RSS watchdog polls /proc/<pid>/status and kills runaway
//     allocators with a distinguishable ErrResourceLimit (generated
//     binaries also get GOMEMLIMIT so the Go runtime resists first);
//   - daemon-wide execution slots bound how many programs run at
//     once; past the cap Acquire fails fast with ErrBusy (429 at the
//     HTTP layer) instead of queueing unbounded work.
//
// The Governor carries the policy; Supervise carries one subprocess
// through it. The interpreter backend shares the same Limits and
// LimitWriter but is cancelled cooperatively (interp.Machine.Cancel)
// since it runs in-process.
package execguard

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Sentinel errors callers branch on with errors.Is. None of them wrap
// context errors: a run killed by the governor's own deadline must
// stay distinguishable from a request deadline (504) upstream.
var (
	// ErrTimeout marks a run the governor killed at its wall deadline.
	ErrTimeout = errors.New("run killed at deadline")
	// ErrOutputLimit marks a run whose stdout/stderr passed its byte
	// cap; captured output is the truncated prefix.
	ErrOutputLimit = errors.New("output limit exceeded")
	// ErrResourceLimit marks a run the RSS watchdog killed.
	ErrResourceLimit = errors.New("resource limit exceeded")
	// ErrBusy is returned by Acquire when every execution slot is in
	// use — admission control, mapped to 429 + Retry-After by pedd.
	ErrBusy = errors.New("execution slots exhausted")
)

// IsKill reports whether err is one of the governor's typed kill
// errors — the run was stopped by policy (deadline, output cap, RSS),
// not by its own failure.
func IsKill(err error) bool {
	return errors.Is(err, ErrTimeout) || errors.Is(err, ErrOutputLimit) || errors.Is(err, ErrResourceLimit)
}

// TimeoutError wraps ErrTimeout with the deadline that fired.
func TimeoutError(d time.Duration) error {
	return fmt.Errorf("%w (wall timeout %s)", ErrTimeout, d)
}

// OutputLimitError wraps ErrOutputLimit with the cap that tripped.
func OutputLimitError(n int64) error {
	return fmt.Errorf("%w: output truncated after %d bytes", ErrOutputLimit, n)
}

// ResourceLimitError wraps ErrResourceLimit with the RSS cap.
func ResourceLimitError(n int64) error {
	return fmt.Errorf("%w: resident set exceeded %d bytes", ErrResourceLimit, n)
}

// Default limits. Zero fields in a Limits resolve to these; negative
// fields disable the corresponding bound.
const (
	DefaultTimeout      = 60 * time.Second
	DefaultOutputBytes  = int64(8 << 20)   // 8 MiB of captured stdout
	DefaultStderrBytes  = int64(256 << 10) // 256 KiB of captured stderr
	DefaultRSSBytes     = int64(1 << 30)   // 1 GiB resident set
	DefaultPollInterval = 20 * time.Millisecond
	DefaultBuildTimeout = 3 * time.Minute
	DefaultCacheEntries = 256
)

// Limits bounds one run. The zero value means "governor defaults";
// negative values disable the corresponding bound entirely.
type Limits struct {
	// Timeout is the wall-clock budget; past it the run is killed and
	// ErrTimeout returned.
	Timeout time.Duration
	// OutputBytes caps captured stdout.
	OutputBytes int64
	// StderrBytes caps captured stderr.
	StderrBytes int64
	// RSSBytes caps the subprocess's resident set (compiled backend
	// only; the in-process interpreter has no separate RSS).
	RSSBytes int64
	// PollInterval is the RSS watchdog period.
	PollInterval time.Duration
}

// withDefaults resolves the zero-means-default / negative-means-off
// encoding into concrete bounds (0 now means disabled).
func (l Limits) withDefaults() Limits {
	switch {
	case l.Timeout == 0:
		l.Timeout = DefaultTimeout
	case l.Timeout < 0:
		l.Timeout = 0
	}
	switch {
	case l.OutputBytes == 0:
		l.OutputBytes = DefaultOutputBytes
	case l.OutputBytes < 0:
		l.OutputBytes = 0
	}
	switch {
	case l.StderrBytes == 0:
		l.StderrBytes = DefaultStderrBytes
	case l.StderrBytes < 0:
		l.StderrBytes = 0
	}
	switch {
	case l.RSSBytes == 0:
		l.RSSBytes = DefaultRSSBytes
	case l.RSSBytes < 0:
		l.RSSBytes = 0
	}
	if l.PollInterval <= 0 {
		l.PollInterval = DefaultPollInterval
	}
	return l
}

// override applies non-zero fields of over on top of l (both still in
// the zero-means-default encoding).
func (l Limits) override(over Limits) Limits {
	if over.Timeout != 0 {
		l.Timeout = over.Timeout
	}
	if over.OutputBytes != 0 {
		l.OutputBytes = over.OutputBytes
	}
	if over.StderrBytes != 0 {
		l.StderrBytes = over.StderrBytes
	}
	if over.RSSBytes != 0 {
		l.RSSBytes = over.RSSBytes
	}
	if over.PollInterval != 0 {
		l.PollInterval = over.PollInterval
	}
	return l
}

// Sink receives execution and build telemetry from the governor and
// the codegen build pipeline. *server.Metrics implements it; a nil
// sink discards. Labels are bounded by construction: backends are
// "interp"/"compile", kill reasons are "deadline"/"output"/"rss"/"ctx".
type Sink interface {
	// ExecEvent counts one occurrence of a named event.
	ExecEvent(name, label string)
	// ExecTiming records one duration observation for a named event.
	ExecTiming(name, label string, d time.Duration)
	// ExecInFlight moves the in-flight-runs gauge by delta.
	ExecInFlight(delta int)
}

// Config assembles a Governor.
type Config struct {
	// MaxRuns bounds concurrently supervised runs (0 = unbounded).
	MaxRuns int
	// Limits are the per-run defaults; zero fields take the package
	// defaults, negative fields disable the bound.
	Limits Limits
	// BuildTimeout bounds one go build (0 = DefaultBuildTimeout).
	BuildTimeout time.Duration
	// CacheEntries LRU-bounds the compile cache (0 = 256 entries).
	CacheEntries int
	// Sink receives telemetry (nil discards).
	Sink Sink
}

// Governor is the run-layer policy object: execution slots, default
// limits, and the telemetry sink. A nil *Governor is valid everywhere
// and behaves like New(Config{}) — default limits, unbounded slots.
type Governor struct {
	slots        chan struct{}
	limits       Limits // resolved (0 = disabled)
	buildTimeout time.Duration
	cacheEntries int
	sink         Sink
}

// New builds a governor from cfg.
func New(cfg Config) *Governor {
	g := &Governor{
		limits:       cfg.Limits.withDefaults(),
		buildTimeout: cfg.BuildTimeout,
		cacheEntries: cfg.CacheEntries,
		sink:         cfg.Sink,
	}
	if g.buildTimeout <= 0 {
		g.buildTimeout = DefaultBuildTimeout
	}
	if g.cacheEntries <= 0 {
		g.cacheEntries = DefaultCacheEntries
	}
	if cfg.MaxRuns > 0 {
		g.slots = make(chan struct{}, cfg.MaxRuns)
	}
	return g
}

// With returns a governor sharing g's slots and sink but with lim
// overriding its default limits — how per-request timeouts and caps
// ride on top of daemon policy.
func (g *Governor) With(lim Limits) *Governor {
	base := g
	if base == nil {
		base = New(Config{})
	}
	cp := *base
	cp.limits = base.limits.override(lim)
	return &cp
}

// RunLimits returns the resolved per-run limits.
func (g *Governor) RunLimits() Limits {
	if g == nil {
		return Limits{}.withDefaults()
	}
	return g.limits
}

// BuildTimeout returns the go build budget.
func (g *Governor) BuildTimeout() time.Duration {
	if g == nil {
		return DefaultBuildTimeout
	}
	return g.buildTimeout
}

// CacheEntries returns the compile-cache LRU bound.
func (g *Governor) CacheEntries() int {
	if g == nil {
		return DefaultCacheEntries
	}
	return g.cacheEntries
}

// Acquire claims one execution slot, failing fast with ErrBusy when
// all are taken. The returned release function is idempotent and must
// be called when the run finishes. An unbounded (or nil) governor
// always admits.
func (g *Governor) Acquire() (release func(), err error) {
	if g == nil || g.slots == nil {
		g.inFlight(1)
		var once sync.Once
		return func() { once.Do(func() { g.inFlight(-1) }) }, nil
	}
	select {
	case g.slots <- struct{}{}:
		g.inFlight(1)
		var once sync.Once
		return func() {
			once.Do(func() {
				<-g.slots
				g.inFlight(-1)
			})
		}, nil
	default:
		g.Event("exec_rejected", "")
		return nil, fmt.Errorf("%w (%d runs in flight)", ErrBusy, cap(g.slots))
	}
}

// Event forwards a counter event to the sink (nil-safe).
func (g *Governor) Event(name, label string) {
	if g != nil && g.sink != nil {
		g.sink.ExecEvent(name, label)
	}
}

// Timing forwards a duration observation to the sink (nil-safe).
func (g *Governor) Timing(name, label string, d time.Duration) {
	if g != nil && g.sink != nil {
		g.sink.ExecTiming(name, label, d)
	}
}

func (g *Governor) inFlight(delta int) {
	if g != nil && g.sink != nil {
		g.sink.ExecInFlight(delta)
	}
}
