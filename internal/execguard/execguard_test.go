package execguard

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestMain doubles as the hostile-workload helper binary: when
// EXECGUARD_HELPER is set the test binary re-execs into one of the
// misbehaving modes below instead of running tests, so Supervise is
// exercised against real subprocesses without shipping fixtures.
func TestMain(m *testing.M) {
	switch os.Getenv("EXECGUARD_HELPER") {
	case "":
		os.Exit(m.Run())
	case "spin":
		// Fan out a child in the same process group, then hang: the
		// group-kill test asserts neither survives the deadline.
		child := exec.Command(os.Args[0])
		child.Env = append(os.Environ(), "EXECGUARD_HELPER=sleep")
		if err := child.Start(); err != nil {
			fmt.Fprintln(os.Stderr, "spawn child:", err)
			os.Exit(1)
		}
		for {
			time.Sleep(time.Hour)
		}
	case "sleep":
		// Sleep, don't select{}: an empty select trips the runtime's
		// deadlock detector and exits before the governor can act.
		for {
			time.Sleep(time.Hour)
		}
	case "spam":
		chunk := bytes.Repeat([]byte("A"), 64<<10)
		for {
			if _, err := os.Stdout.Write(chunk); err != nil {
				os.Exit(1)
			}
		}
	case "memhog":
		var hold [][]byte
		for {
			b := make([]byte, 8<<20)
			for i := range b {
				b[i] = byte(i)
			}
			hold = append(hold, b)
			if len(hold) > 4<<10 {
				os.Exit(1)
			}
			time.Sleep(time.Millisecond)
		}
	case "fail":
		fmt.Fprintln(os.Stderr, "helper exploded")
		os.Exit(3)
	case "hello":
		fmt.Println("hello from helper")
	}
	os.Exit(0)
}

func helper(mode string) *exec.Cmd {
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), "EXECGUARD_HELPER="+mode)
	return cmd
}

func TestSuperviseTimeoutKillsProcessGroup(t *testing.T) {
	g := New(Config{Limits: Limits{Timeout: 300 * time.Millisecond, RSSBytes: -1}})
	cmd := helper("spin")
	res, err := Supervise(context.Background(), g, cmd)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
	if !IsKill(err) {
		t.Fatalf("timeout kill not classified by IsKill: %v", err)
	}
	if res.Killed != KillDeadline {
		t.Fatalf("Killed = %q, want %q", res.Killed, KillDeadline)
	}
	// No orphans: the helper spawned a child into its process group;
	// after the group kill the whole group must be gone, not just the
	// leader.
	pid := cmd.Process.Pid
	deadline := time.Now().Add(5 * time.Second)
	for GroupAlive(pid) {
		if time.Now().After(deadline) {
			t.Fatalf("process group %d still alive after group kill", pid)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestSuperviseOutputBombCapped(t *testing.T) {
	const capBytes = int64(128 << 10)
	g := New(Config{Limits: Limits{Timeout: 10 * time.Second, OutputBytes: capBytes, RSSBytes: -1}})
	cmd := helper("spam")
	res, err := Supervise(context.Background(), g, cmd)
	if !errors.Is(err, ErrOutputLimit) {
		t.Fatalf("want ErrOutputLimit, got %v", err)
	}
	if !strings.Contains(err.Error(), "output truncated after") {
		t.Fatalf("error %q does not name the truncation", err)
	}
	if res.Killed != KillOutput {
		t.Fatalf("Killed = %q, want %q", res.Killed, KillOutput)
	}
	if int64(len(res.Stdout)) > capBytes {
		t.Fatalf("captured %d bytes past the %d cap", len(res.Stdout), capBytes)
	}
}

func TestSuperviseRSSWatchdog(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("RSS watchdog reads /proc; linux only")
	}
	g := New(Config{Limits: Limits{
		Timeout:      30 * time.Second,
		RSSBytes:     64 << 20,
		PollInterval: 5 * time.Millisecond,
	}})
	cmd := helper("memhog")
	res, err := Supervise(context.Background(), g, cmd)
	if !errors.Is(err, ErrResourceLimit) {
		t.Fatalf("want ErrResourceLimit, got %v", err)
	}
	if res.Killed != KillRSS {
		t.Fatalf("Killed = %q, want %q", res.Killed, KillRSS)
	}
}

func TestSuperviseCtxCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	g := New(Config{Limits: Limits{RSSBytes: -1}})
	res, err := Supervise(ctx, g, helper("sleep"))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want wrapped context.Canceled, got %v", err)
	}
	if IsKill(err) {
		t.Fatalf("ctx cancel must stay distinguishable from governor kills: %v", err)
	}
	if res.Killed != KillCtx {
		t.Fatalf("Killed = %q, want %q", res.Killed, KillCtx)
	}
}

func TestSuperviseOwnFailure(t *testing.T) {
	g := New(Config{Limits: Limits{Timeout: 10 * time.Second, RSSBytes: -1}})
	_, err := Supervise(context.Background(), g, helper("fail"))
	if err == nil {
		t.Fatal("want process failure, got nil")
	}
	if IsKill(err) {
		t.Fatalf("own exit classified as a governor kill: %v", err)
	}
	if !strings.Contains(err.Error(), "exit status 3") || !strings.Contains(err.Error(), "helper exploded") {
		t.Fatalf("error %q should carry exit status and stderr snippet", err)
	}
}

func TestSuperviseCleanExit(t *testing.T) {
	g := New(Config{Limits: Limits{Timeout: 10 * time.Second, RSSBytes: -1}})
	res, err := Supervise(context.Background(), g, helper("hello"))
	if err != nil {
		t.Fatalf("clean run failed: %v", err)
	}
	if res.Stdout != "hello from helper\n" {
		t.Fatalf("stdout = %q", res.Stdout)
	}
	if res.Killed != "" {
		t.Fatalf("clean exit reported killed: %q", res.Killed)
	}
}

func TestAcquireSlots(t *testing.T) {
	g := New(Config{MaxRuns: 1})
	rel1, err := g.Acquire()
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	if _, err := g.Acquire(); !errors.Is(err, ErrBusy) {
		t.Fatalf("want ErrBusy past the cap, got %v", err)
	}
	rel1()
	rel1() // idempotent: a double release must not free a second slot
	rel2, err := g.Acquire()
	if err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	if _, err := g.Acquire(); !errors.Is(err, ErrBusy) {
		t.Fatal("double release freed two slots")
	}
	rel2()
}

func TestNilGovernorIsValid(t *testing.T) {
	var g *Governor
	lim := g.RunLimits()
	if lim.Timeout != DefaultTimeout || lim.OutputBytes != DefaultOutputBytes {
		t.Fatalf("nil governor limits = %+v, want package defaults", lim)
	}
	rel, err := g.Acquire()
	if err != nil {
		t.Fatalf("nil governor must admit: %v", err)
	}
	rel()
	g.Event("exec_run", "interp") // must not panic
	g.Timing("exec_run", "interp", time.Second)
	over := g.With(Limits{Timeout: time.Second})
	if over.RunLimits().Timeout != time.Second {
		t.Fatalf("With on nil governor lost the override: %+v", over.RunLimits())
	}
}

func TestLimitsResolution(t *testing.T) {
	lim := Limits{}.withDefaults()
	if lim.Timeout != DefaultTimeout || lim.OutputBytes != DefaultOutputBytes ||
		lim.StderrBytes != DefaultStderrBytes || lim.RSSBytes != DefaultRSSBytes {
		t.Fatalf("zero limits did not resolve to defaults: %+v", lim)
	}
	off := Limits{Timeout: -1, OutputBytes: -1, StderrBytes: -1, RSSBytes: -1}.withDefaults()
	if off.Timeout != 0 || off.OutputBytes != 0 || off.StderrBytes != 0 || off.RSSBytes != 0 {
		t.Fatalf("negative limits did not disable: %+v", off)
	}
	g := New(Config{Limits: Limits{Timeout: 5 * time.Second}})
	got := g.With(Limits{OutputBytes: 42}).RunLimits()
	if got.Timeout != 5*time.Second || got.OutputBytes != 42 {
		t.Fatalf("With override mangled limits: %+v", got)
	}
	// The original governor must not see the override.
	if g.RunLimits().OutputBytes != DefaultOutputBytes {
		t.Fatalf("With mutated its receiver: %+v", g.RunLimits())
	}
}

func TestLimitWriter(t *testing.T) {
	w := NewLimitWriter(10)
	if _, err := w.Write([]byte("12345")); err != nil {
		t.Fatalf("write under cap: %v", err)
	}
	if _, err := w.Write([]byte("6789012345")); !errors.Is(err, ErrOutputLimit) {
		t.Fatalf("want ErrOutputLimit crossing the cap, got %v", err)
	}
	if got := w.String(); got != "1234567890" {
		t.Fatalf("kept prefix = %q, want first 10 bytes", got)
	}
	if !w.Tripped() {
		t.Fatal("Tripped() false after cap crossed")
	}
	select {
	case <-w.TripC():
	default:
		t.Fatal("trip channel not closed")
	}
	if _, err := w.Write([]byte("x")); !errors.Is(err, ErrOutputLimit) {
		t.Fatalf("writes after trip must keep failing, got %v", err)
	}
	if w.Len() != 10 {
		t.Fatalf("Len = %d, want 10", w.Len())
	}

	unbounded := NewLimitWriter(0)
	if _, err := unbounded.Write(bytes.Repeat([]byte("y"), 1<<20)); err != nil {
		t.Fatalf("unbounded writer errored: %v", err)
	}
}

// recordSink is a thread-safe Sink for asserting telemetry.
type recordSink struct {
	mu       sync.Mutex
	events   map[string]int
	inFlight int
}

func newRecordSink() *recordSink { return &recordSink{events: map[string]int{}} }

func (s *recordSink) ExecEvent(name, label string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := name
	if label != "" {
		key += ":" + label
	}
	s.events[key]++
}

func (s *recordSink) ExecTiming(name, label string, d time.Duration) {}

func (s *recordSink) ExecInFlight(delta int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inFlight += delta
}

func (s *recordSink) count(key string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.events[key]
}

func (s *recordSink) gauge() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inFlight
}

func TestGovernorTelemetry(t *testing.T) {
	sink := newRecordSink()
	g := New(Config{MaxRuns: 1, Sink: sink})
	rel, err := g.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if sink.gauge() != 1 {
		t.Fatalf("in-flight gauge = %d after acquire, want 1", sink.gauge())
	}
	if _, err := g.Acquire(); !errors.Is(err, ErrBusy) {
		t.Fatalf("want ErrBusy, got %v", err)
	}
	if sink.count("exec_rejected") != 1 {
		t.Fatalf("exec_rejected = %d, want 1", sink.count("exec_rejected"))
	}
	rel()
	if sink.gauge() != 0 {
		t.Fatalf("in-flight gauge = %d after release, want 0", sink.gauge())
	}
	// With shares the sink: kill events from derived governors land in
	// the same place.
	g.With(Limits{Timeout: time.Second}).Event("exec_kill", KillDeadline)
	if sink.count("exec_kill:deadline") != 1 {
		t.Fatal("derived governor lost the telemetry sink")
	}
}
