//go:build !unix

package execguard

import (
	"os"
	"os/exec"
)

// Non-unix platforms have no process groups; the leader alone is
// killed and signal classification degrades to "not signalled".
func setpgid(cmd *exec.Cmd) {}

func killGroup(pid int) {
	if p, err := os.FindProcess(pid); err == nil {
		_ = p.Kill()
	}
}

func wasSignaled(err error) bool { return false }

// GroupAlive is best-effort off-unix.
func GroupAlive(pid int) bool { return false }
