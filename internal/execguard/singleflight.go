package execguard

import "sync"

// flightGroup is a minimal singleflight: concurrent Do calls with the
// same key share one execution of fn. Used by the build pipeline so N
// cold requests for the same program trigger exactly one go build.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	val  any
	err  error
}

// Group is the exported singleflight handle; its zero value is ready.
type Group = flightGroup

// Do runs fn once per concurrent set of callers sharing key and
// returns its result to all of them; shared reports whether this
// caller piggybacked on another's execution.
func (g *flightGroup) Do(key string, fn func() (any, error)) (val any, err error, shared bool) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[string]*flightCall)
	}
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		<-c.done
		return c.val, c.err, true
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()

	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
	return c.val, c.err, false
}
