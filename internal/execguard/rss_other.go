//go:build !linux

package execguard

// readRSS has no portable implementation off Linux; the watchdog never
// fires and GOMEMLIMIT remains the only memory bound.
func readRSS(pid int) int64 { return 0 }
