//go:build unix

package execguard

import (
	"errors"
	"os/exec"
	"syscall"
)

// setpgid puts the child in its own process group so killGroup can
// reap the whole DOALL fan-out, not just the leader.
func setpgid(cmd *exec.Cmd) {
	if cmd.SysProcAttr == nil {
		cmd.SysProcAttr = &syscall.SysProcAttr{}
	}
	cmd.SysProcAttr.Setpgid = true
}

// killGroup SIGKILLs the child's entire process group.
func killGroup(pid int) {
	_ = syscall.Kill(-pid, syscall.SIGKILL)
}

// wasSignaled reports whether err is an exit caused by a signal — how
// Supervise tells "we killed it" from "it exited non-zero on its own".
func wasSignaled(err error) bool {
	var ee *exec.ExitError
	if !errors.As(err, &ee) {
		return false
	}
	ws, ok := ee.Sys().(syscall.WaitStatus)
	return ok && ws.Signaled()
}

// GroupAlive reports whether any process in pid's group still exists —
// test hook for the no-orphans guarantee.
func GroupAlive(pid int) bool {
	err := syscall.Kill(-pid, 0)
	return err == nil || errors.Is(err, syscall.EPERM)
}
