//go:build linux

package execguard

import (
	"bytes"
	"os"
	"strconv"
)

// readRSS returns pid's resident set in bytes from /proc/<pid>/status
// (VmRSS line), or 0 if the process is gone or unreadable. Reading
// status (not statm) keeps this one small read with no page-size math
// beyond the kB unit the kernel reports.
func readRSS(pid int) int64 {
	data, err := os.ReadFile("/proc/" + strconv.Itoa(pid) + "/status")
	if err != nil {
		return 0
	}
	i := bytes.Index(data, []byte("VmRSS:"))
	if i < 0 {
		return 0
	}
	fields := bytes.Fields(data[i+len("VmRSS:"):])
	if len(fields) < 1 {
		return 0
	}
	kb, err := strconv.ParseInt(string(fields[0]), 10, 64)
	if err != nil {
		return 0
	}
	return kb << 10
}
