package execguard

import (
	"context"
	"fmt"
	"os"
	"os/exec"
	"time"
)

// Kill reasons, bounded for metric labels.
const (
	KillDeadline = "deadline" // wall timeout fired
	KillOutput   = "output"   // stdout/stderr cap tripped
	KillRSS      = "rss"      // resident-set watchdog fired
	KillCtx      = "ctx"      // caller's context cancelled/expired
)

// Result is what a supervised subprocess produced. It is returned even
// alongside a non-nil error so callers can surface the truncated
// output of a killed run.
type Result struct {
	Stdout string
	Stderr string
	Wall   time.Duration
	// Killed names the kill reason (KillDeadline etc.), empty when the
	// process exited on its own.
	Killed string
}

// Supervise runs cmd under g's limits: the process starts in its own
// group, stdout/stderr are captured through byte-capped writers, and a
// watchdog kills the whole group on wall timeout, output-cap trip, RSS
// breach, or caller context cancellation. cmd.Stdout/Stderr must be
// unset — Supervise owns capture. The returned error is nil on clean
// exit; a typed ErrTimeout/ErrOutputLimit/ErrResourceLimit when the
// governor killed the run; the wrapped ctx error when ctx ended it; or
// the process's own failure otherwise. A non-zero exit that races the
// deadline is reported as the process's own failure only if the
// process was not signalled by us — satellite 2's classification.
func Supervise(ctx context.Context, g *Governor, cmd *exec.Cmd) (*Result, error) {
	lim := g.RunLimits()
	outw := NewLimitWriter(lim.OutputBytes)
	errw := NewLimitWriter(lim.StderrBytes)
	cmd.Stdout = outw
	cmd.Stderr = errw
	if lim.RSSBytes > 0 {
		// Ask the Go runtime in generated binaries to resist first;
		// the watchdog is the backstop for non-cooperating processes.
		if cmd.Env == nil {
			cmd.Env = os.Environ()
		}
		cmd.Env = append(cmd.Env, fmt.Sprintf("GOMEMLIMIT=%d", lim.RSSBytes))
	}
	setpgid(cmd)

	start := time.Now()
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("execguard: start: %w", err)
	}
	pid := cmd.Process.Pid

	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()

	var deadline <-chan time.Time
	var timer *time.Timer
	if lim.Timeout > 0 {
		timer = time.NewTimer(lim.Timeout)
		deadline = timer.C
		defer timer.Stop()
	}
	var poll <-chan time.Time
	var ticker *time.Ticker
	if lim.RSSBytes > 0 {
		ticker = time.NewTicker(lim.PollInterval)
		poll = ticker.C
		defer ticker.Stop()
	}

	var waitErr error
	var killed string
	var killErr error
	kill := func(reason string, err error) {
		if killed != "" {
			return
		}
		killed, killErr = reason, err
		killGroup(pid)
		g.Event("exec_kill", reason)
	}
loop:
	for {
		select {
		case waitErr = <-done:
			break loop
		case <-deadline:
			kill(KillDeadline, TimeoutError(lim.Timeout))
		case <-outw.TripC():
			kill(KillOutput, outw.Err())
		case <-errw.TripC():
			kill(KillOutput, errw.Err())
		case <-ctx.Done():
			kill(KillCtx, fmt.Errorf("execguard: run cancelled: %w", ctx.Err()))
		case <-poll:
			if rss := readRSS(pid); rss > lim.RSSBytes {
				kill(KillRSS, ResourceLimitError(lim.RSSBytes))
			}
		}
	}

	res := &Result{
		Stdout: outw.String(),
		Stderr: errw.String(),
		Wall:   time.Since(start),
		Killed: killed,
	}
	switch {
	case killed != "" && waitErr != nil && (wasSignaled(waitErr) || !isExitError(waitErr)):
		// Our kill landed (the process died signalled) or Wait
		// surfaced an I/O error from the tripped output copier —
		// report the governor's typed error.
		return res, killErr
	case waitErr != nil:
		// The process failed on its own — a non-zero exit that merely
		// raced the deadline is its failure, not a timeout.
		return res, fmt.Errorf("execguard: %w (stderr: %s)", waitErr, snippet(res.Stderr))
	default:
		// Clean exit, even if a kill fired after it had already
		// finished.
		res.Killed = ""
		return res, nil
	}
}

func isExitError(err error) bool {
	_, ok := err.(*exec.ExitError)
	return ok
}

// snippet trims stderr for inline error text.
func snippet(s string) string {
	const max = 300
	if len(s) > max {
		s = s[:max] + "..."
	}
	if s == "" {
		s = "<empty>"
	}
	return s
}
