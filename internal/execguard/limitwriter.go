package execguard

import (
	"bytes"
	"sync"
)

// LimitWriter captures at most a fixed number of bytes, then trips: it
// keeps the prefix, records an OutputLimitError, and closes a channel
// the supervisor selects on so the producing process can be killed
// instead of blocking forever on a full pipe. It is safe for
// concurrent writers (os/exec copier plus interpreter DOALL workers).
// A cap of 0 means unbounded.
type LimitWriter struct {
	mu    sync.Mutex
	buf   bytes.Buffer
	limit int64
	err   error
	trip  chan struct{}
}

// NewLimitWriter caps captured output at limit bytes (0 = unbounded).
func NewLimitWriter(limit int64) *LimitWriter {
	return &LimitWriter{limit: limit, trip: make(chan struct{})}
}

// Write appends p up to the cap. The first write that crosses the cap
// stores the truncated prefix, closes the trip channel, and — like
// every later write — returns an OutputLimitError so in-process
// producers (the interpreter) stop at the next write.
func (w *LimitWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return 0, w.err
	}
	if w.limit <= 0 || int64(w.buf.Len())+int64(len(p)) <= w.limit {
		return w.buf.Write(p)
	}
	keep := w.limit - int64(w.buf.Len())
	if keep > 0 {
		w.buf.Write(p[:keep])
	}
	w.err = OutputLimitError(w.limit)
	close(w.trip)
	return 0, w.err
}

// Tripped reports whether the cap was hit.
func (w *LimitWriter) Tripped() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err != nil
}

// Err returns the sticky OutputLimitError, or nil.
func (w *LimitWriter) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// TripC is closed the moment the cap is crossed.
func (w *LimitWriter) TripC() <-chan struct{} { return w.trip }

// String returns the captured (possibly truncated) output.
func (w *LimitWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// Len returns the number of captured bytes.
func (w *LimitWriter) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Len()
}
