package core

import (
	"strings"
	"testing"
)

func adviceFor(t *testing.T, src string, loopN int) []Suggestion {
	t.Helper()
	s := open(t, src)
	if err := s.SelectLoop(loopN); err != nil {
		t.Fatal(err)
	}
	return s.Advise()
}

func hasAction(sugs []Suggestion, substr string) bool {
	for _, sg := range sugs {
		if strings.Contains(sg.Action, substr) {
			return true
		}
	}
	return false
}

func TestAdviseSymbolicAssertion(t *testing.T) {
	sugs := adviceFor(t, `
      program main
      integer i, m
      real a(500)
      read(*,*) m
      do i = 1, 100
         a(i) = a(i + m)
      enddo
      end
`, 1)
	if !hasAction(sugs, "assert a bound on m") {
		t.Errorf("suggestions = %v", sugs)
	}
}

func TestAdviseIndexArray(t *testing.T) {
	sugs := adviceFor(t, `
      program main
      integer i, idx(100)
      real a(100)
      do i = 1, 100
         a(idx(i)) = a(idx(i)) + 1.0
      enddo
      end
`, 1)
	if !hasAction(sugs, "index array") {
		t.Errorf("suggestions = %v", sugs)
	}
}

func TestAdviseScalarExpansion(t *testing.T) {
	sugs := adviceFor(t, `
      program main
      integer i
      real t, a(100), b(100)
      do i = 1, 100
         t = a(i)
         b(i) = t*2.0
      enddo
      print *, t
      end
`, 1)
	if !hasAction(sugs, "expand scalar t") {
		t.Errorf("suggestions = %v", sugs)
	}
}

func TestAdviseDistribute(t *testing.T) {
	sugs := adviceFor(t, `
      program main
      integer i
      real a(100), acc(100), c(100)
      do i = 2, 100
         a(i) = c(i)*2.0
         acc(i) = acc(i-1) + a(i)
      enddo
      end
`, 1)
	if !hasAction(sugs, "distribute") {
		t.Errorf("suggestions = %v", sugs)
	}
}

func TestAdviseInterchange(t *testing.T) {
	sugs := adviceFor(t, `
      program main
      integer i, j
      real a(100,100)
      do j = 2, 100
         do i = 1, 100
            a(i,j) = a(i,j-1)*0.5
         enddo
      enddo
      end
`, 1)
	if !hasAction(sugs, "interchange") {
		t.Errorf("suggestions = %v", sugs)
	}
}

func TestAdviseArrayPrivatization(t *testing.T) {
	sugs := adviceFor(t, `
      program main
      integer k
      real q(200), work(32)
      do k = 1, 100
         call sweep(work, q, k)
      enddo
      print *, q(80)
      end
      subroutine sweep(w, q, k)
      integer k, i
      real w(32), q(200)
      do i = 1, 32
         w(i) = real(i + k)*0.01
      enddo
      q(k + 64) = q(k + 64) + w(5)
      end
`, 1)
	if !hasAction(sugs, "privatize work array work") {
		t.Errorf("suggestions = %v", sugs)
	}
}

func TestAdviseRealRecurrence(t *testing.T) {
	sugs := adviceFor(t, `
      program main
      integer i
      real a(100)
      do i = 2, 100
         a(i) = a(i-1)*0.5 + 1.0
      enddo
      end
`, 1)
	if !hasAction(sugs, "leave the loop serial") {
		t.Errorf("suggestions = %v", sugs)
	}
}

func TestAdviseParallelReady(t *testing.T) {
	sugs := adviceFor(t, `
      program main
      integer i
      real a(100)
      do i = 1, 100
         a(i) = 1.0
      enddo
      end
`, 1)
	if !hasAction(sugs, "parallelize the loop") {
		t.Errorf("suggestions = %v", sugs)
	}
	if sugs[0].Transformation == nil {
		t.Error("ready suggestion should carry the transformation")
	}
}

func TestAdviseSuggestionApplies(t *testing.T) {
	// The advisor's transformation must actually work when applied.
	s := open(t, `
      program main
      integer i
      real a(100), acc(100), c(100)
      do i = 2, 100
         a(i) = c(i)*2.0
         acc(i) = acc(i-1) + a(i)
      enddo
      end
`)
	if err := s.SelectLoop(1); err != nil {
		t.Fatal(err)
	}
	for _, sg := range s.Advise() {
		if sg.Transformation == nil {
			continue
		}
		if _, err := s.Transform(sg.Transformation); err != nil {
			t.Errorf("suggested %q but applying failed: %v", sg.Action, err)
		}
		break
	}
}
