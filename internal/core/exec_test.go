package core

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"parascope/internal/execguard"
)

const loopSrc = `
      program p
      integer i
      i = 0
   10 i = i + 1
      goto 10
      end
`

const bombSrc = `
      program p
   10 print *, 123456789
      goto 10
      end
`

const powSrc = `
      program p
      integer i, j, k
      i = 2
      j = 3
      k = i ** j
      print *, k
      end
`

func openExec(t *testing.T, src string) *Session {
	t.Helper()
	s, err := Open("t.f", src)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	return s
}

// TestInterpTimeoutLeaksNoGoroutines is satellite 1's regression test:
// before the cooperative cancel, every timed-out interpreter run left
// its goroutine spinning until StmtLimit. Ten timed-out runs must
// leave the goroutine count where it started.
func TestInterpTimeoutLeaksNoGoroutines(t *testing.T) {
	s := openExec(t, loopSrc)
	before := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		res, err := s.Exec(context.Background(), ExecRequest{Timeout: 50 * time.Millisecond})
		if !errors.Is(err, execguard.ErrTimeout) {
			t.Fatalf("run %d: want ErrTimeout, got %v", i, err)
		}
		if res.Backend != BackendInterp {
			t.Fatalf("run %d: backend = %q", i, res.Backend)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after 10 timed-out runs",
				before, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

func TestInterpOutputBombCapped(t *testing.T) {
	s := openExec(t, bombSrc)
	gov := execguard.New(execguard.Config{
		Limits: execguard.Limits{OutputBytes: 4096, Timeout: 30 * time.Second},
	})
	res, err := s.Exec(context.Background(), ExecRequest{Gov: gov})
	if !errors.Is(err, execguard.ErrOutputLimit) {
		t.Fatalf("want ErrOutputLimit, got %v", err)
	}
	if !strings.Contains(err.Error(), "output truncated after") {
		t.Fatalf("error %q does not name the truncation", err)
	}
	if len(res.Output) > 4096 {
		t.Fatalf("kept %d bytes past the 4096 cap", len(res.Output))
	}
	if len(res.Output) == 0 {
		t.Fatal("truncated prefix was discarded")
	}
}

func TestExecCtxCancelStopsInterp(t *testing.T) {
	s := openExec(t, loopSrc)
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	_, err := s.Exec(ctx, ExecRequest{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want wrapped DeadlineExceeded, got %v", err)
	}
	if execguard.IsKill(err) {
		t.Fatalf("ctx expiry must stay distinguishable from governor kills: %v", err)
	}
}

// TestExecFallbackOnDecline: a program the code generator declines
// (non-constant exponent) degrades to the interpreter when Fallback is
// set, with the decline reason surfaced — and still fails typed
// without it.
func TestExecFallbackOnDecline(t *testing.T) {
	s := openExec(t, powSrc)
	res, err := s.Exec(context.Background(), ExecRequest{Backend: BackendCompile, Fallback: true})
	if err != nil {
		t.Fatalf("fallback run failed: %v", err)
	}
	if res.Backend != BackendInterp {
		t.Fatalf("backend = %q, want interp after fallback", res.Backend)
	}
	if !strings.Contains(res.FallbackReason, "exponent") {
		t.Fatalf("FallbackReason = %q, want the decline reason", res.FallbackReason)
	}
	if !strings.Contains(res.Output, "8") {
		t.Fatalf("fallback output = %q, want 2**3", res.Output)
	}

	_, err = s.Exec(context.Background(), ExecRequest{Backend: BackendCompile})
	if err == nil || res.FallbackReason == "" {
		t.Fatal("decline without Fallback must fail")
	}
}

func TestExecBusy(t *testing.T) {
	s := openExec(t, powSrc)
	gov := execguard.New(execguard.Config{MaxRuns: 1})
	release, err := gov.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	_, err = s.Exec(context.Background(), ExecRequest{Gov: gov})
	if !errors.Is(err, execguard.ErrBusy) {
		t.Fatalf("want ErrBusy with every slot held, got %v", err)
	}
	release()
	if _, err := s.Exec(context.Background(), ExecRequest{Gov: gov}); err != nil {
		t.Fatalf("run after release: %v", err)
	}
}

func TestParseExecRequestFallback(t *testing.T) {
	req, err := ParseExecRequest([]string{"4", "backend=compile", "fallback"})
	if err != nil {
		t.Fatal(err)
	}
	if req.Workers != 4 || req.Backend != BackendCompile || !req.Fallback {
		t.Fatalf("parsed %+v", req)
	}
	if _, err := ParseExecRequest([]string{"fallback", "bogus"}); err == nil {
		t.Fatal("want usage error for unknown token")
	}
}
