package core_test

import (
	"fmt"
	"log"

	"parascope/internal/core"
	"parascope/internal/xform"
)

// Example shows the basic editor flow: open a program, inspect a
// loop's dependences, and parallelize it.
func Example() {
	s, err := core.Open("demo.f", `
      program demo
      integer i
      real a(100), b(100)
      do i = 1, 100
         a(i) = b(i)*2.0
      enddo
      end
`)
	if err != nil {
		log.Fatal(err)
	}
	if err := s.SelectLoop(1); err != nil {
		log.Fatal(err)
	}
	deps := s.SelectionDeps(core.DepFilter{CarriedOnly: true, HidePrivate: true})
	fmt.Printf("blocking dependences: %d\n", len(deps))
	v, err := s.Transform(xform.Parallelize{Do: s.SelectedLoop().Do})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("safe: %v, parallel loops: %d\n", v.Safe, len(s.ParallelLoops()))
	// Output:
	// blocking dependences: 0
	// safe: true, parallel loops: 1
}

// ExampleSession_Assert shows assertion-driven sharpening: an unknown
// offset blocks the loop until the user asserts its magnitude.
func ExampleSession_Assert() {
	s, err := core.Open("filter.f", `
      program filter
      integer i, m
      real a(500)
      read(*,*) m
      do i = 1, 100
         a(i) = a(i + m)
      enddo
      end
`)
	if err != nil {
		log.Fatal(err)
	}
	if err := s.SelectLoop(1); err != nil {
		log.Fatal(err)
	}
	before := s.Check(xform.Parallelize{Do: s.SelectedLoop().Do})
	if err := s.Assert("m .ge. 500"); err != nil {
		log.Fatal(err)
	}
	if err := s.SelectLoop(1); err != nil {
		log.Fatal(err)
	}
	after := s.Check(xform.Parallelize{Do: s.SelectedLoop().Do})
	fmt.Printf("before assertion: safe=%v\n", before.Safe)
	fmt.Printf("after assertion:  safe=%v\n", after.Safe)
	// Output:
	// before assertion: safe=false
	// after assertion:  safe=true
}

// ExampleSession_Advise shows the transformation advisor on a loop
// blocked by a symbolic subscript term.
func ExampleSession_Advise() {
	s, err := core.Open("adv.f", `
      program adv
      integer i, m
      real a(500)
      read(*,*) m
      do i = 1, 100
         a(i) = a(i + m)
      enddo
      end
`)
	if err != nil {
		log.Fatal(err)
	}
	if err := s.SelectLoop(1); err != nil {
		log.Fatal(err)
	}
	for _, sg := range s.Advise() {
		fmt.Println(sg.Action)
	}
	// Output:
	// assert a bound on m (e.g. `assert m .ge. <extent>`)
}
