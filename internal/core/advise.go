package core

import (
	"fmt"
	"sort"

	"parascope/internal/dep"
	"parascope/internal/fortran"
	"parascope/internal/xform"
)

// Suggestion is one piece of parallelization guidance for the
// selected loop — the "more guidance in selecting transformations"
// the paper's users requested. When a power-steering transformation
// implements the remedy, Transformation is non-nil and ready to
// Check/Transform; advisory actions (assertions, dependence marking)
// describe the user step instead.
type Suggestion struct {
	Action         string
	Rationale      string
	Transformation xform.Transformation
}

func (s Suggestion) String() string {
	return fmt.Sprintf("%s — %s", s.Action, s.Rationale)
}

// Advise diagnoses why the selected loop is not (or not profitably)
// parallel and proposes remedies, ordered from cheap analysis
// sharpening to restructuring transformations.
func (s *Session) Advise() []Suggestion {
	l := s.SelectedLoop()
	if l == nil {
		return nil
	}
	do := l.Do
	if do.Parallel {
		return []Suggestion{{Action: "nothing to do", Rationale: "the loop is already parallel"}}
	}
	var out []Suggestion
	seen := map[string]bool{}
	add := func(sg Suggestion) {
		if !seen[sg.Action] {
			seen[sg.Action] = true
			out = append(out, sg)
		}
	}

	// Start from the parallelization verdict's blocking dependences.
	blocking := s.blockingFor(do)
	if len(blocking) == 0 {
		add(Suggestion{
			Action:         "parallelize the loop",
			Rationale:      "no blocking dependences remain",
			Transformation: xform.Parallelize{Do: do},
		})
		return out
	}
	st := s.State()
	symbolicVars := map[string]bool{}
	for _, d := range blocking {
		sym := d.Sym
		switch {
		case d.Reason == "symbolic":
			for _, b := range d.Blockers {
				symbolicVars[b] = true
			}
		case d.Reason == "index-array":
			add(Suggestion{
				Action:    fmt.Sprintf("inspect the index array feeding %s; if it never repeats, reject the pending dependences (deps carried on %s; mark <id> reject)", sym.Name, sym.Name),
				Rationale: "subscript tests cannot analyze index arrays; only you know the indexing pattern",
			})
		case sym.Kind == fortran.SymScalar:
			res := st.DF.Privatizable(l, sym)
			switch {
			case res.Privatizable && res.NeedsLastValue:
				add(Suggestion{
					Action:         fmt.Sprintf("expand scalar %s", sym.Name),
					Rationale:      fmt.Sprintf("%s is killed each iteration but its value is used after the loop; expansion keeps the last value", sym.Name),
					Transformation: xform.ScalarExpand{Do: do, Sym: sym},
				})
			case !res.Privatizable:
				add(Suggestion{
					Action:    fmt.Sprintf("restructure the uses of scalar %s", sym.Name),
					Rationale: fmt.Sprintf("%s: %s", sym.Name, res.Reason),
				})
			}
		case sym.IsArray():
			if res := st.DF.ArrayPrivatizable(l, sym); res.Privatizable && !res.NeedsLastValue {
				add(Suggestion{
					Action:         fmt.Sprintf("privatize work array %s", sym.Name),
					Rationale:      fmt.Sprintf("every iteration kills all of %s before using it", sym.Name),
					Transformation: xform.PrivatizeArray{Do: do, Sym: sym},
				})
				continue
			}
			if call := callEndpoint(d); call != nil {
				add(Suggestion{
					Action:         fmt.Sprintf("inline the call to %s", call.Name),
					Rationale:      "exposing the callee's accesses lets the subscript tests analyze them",
					Transformation: xform.Inline{Call: call},
				})
			}
		}
	}
	// Symbolic terms: one assertion suggestion per variable.
	var symNames []string
	for name := range symbolicVars {
		symNames = append(symNames, name)
	}
	sort.Strings(symNames)
	for _, name := range symNames {
		add(Suggestion{
			Action:    fmt.Sprintf("assert a bound on %s (e.g. `assert %s .ge. <extent>`)", name, name),
			Rationale: fmt.Sprintf("the subscript tests cannot bound %s; an assertion may prove the references disjoint", name),
		})
	}
	// Structural remedies.
	if v := (xform.Distribute{Do: do}).Check(s.xformContext()); v.OK() {
		add(Suggestion{
			Action:         "distribute the loop",
			Rationale:      "the body splits into independent components; the recurrence-free ones can then parallelize",
			Transformation: xform.Distribute{Do: do},
		})
	}
	// Inner parallelism that interchange could move outward.
	if len(l.Children) == 1 && len(do.Body) == 1 {
		inner := l.Children[0]
		innerBlocking := s.blockingFor(inner.Do)
		if len(innerBlocking) == 0 {
			if v := (xform.Interchange{Outer: do}).Check(s.xformContext()); v.OK() {
				add(Suggestion{
					Action:         "interchange the nest",
					Rationale:      fmt.Sprintf("the inner %s loop is dependence-free; interchange moves that parallelism to the outer level", inner.Header().Name),
					Transformation: xform.Interchange{Outer: do},
				})
			}
		}
	}
	if len(out) == 0 {
		add(Suggestion{
			Action:    "leave the loop serial",
			Rationale: "the carried dependences are real recurrences; no catalog transformation removes them",
		})
	}
	return out
}

// blockingFor evaluates the parallelization verdict's blocking set
// for the loop.
func (s *Session) blockingFor(do *fortran.DoStmt) []*dep.Dependence {
	st := s.State()
	l := st.DF.Tree.LoopOf(do)
	if l == nil {
		return nil
	}
	reds := map[*fortran.Symbol]bool{}
	for _, r := range st.DF.Reductions(l) {
		reds[r.Sym] = true
	}
	var out []*dep.Dependence
	for _, d := range st.Deps.CarriedAt(l) {
		if d.Mark == dep.MarkRejected || d.Class == dep.ClassControl || d.Class == dep.ClassInput {
			continue
		}
		if d.Sym == l.Do.Var || reds[d.Sym] {
			continue
		}
		if d.Sym.Kind == fortran.SymScalar {
			if res := st.DF.Privatizable(l, d.Sym); res.Privatizable && !res.NeedsLastValue {
				continue
			}
		}
		out = append(out, d)
	}
	return out
}

// callEndpoint returns the CALL statement at either end of the
// dependence, if any.
func callEndpoint(d *dep.Dependence) *fortran.CallStmt {
	if c, ok := d.Src.(*fortran.CallStmt); ok && c.Callee != nil {
		return c
	}
	if c, ok := d.Dst.(*fortran.CallStmt); ok && c.Callee != nil {
		return c
	}
	return nil
}
