// Regression tests for the incremental reanalysis path: edit-stable
// dependence marking (marks must survive edits that shift line
// numbers, and stale marks must never attach to a different
// dependence), and escalation after edits that change a unit's call
// surface or caller-visible summary (the incremental result must
// match a from-scratch analysis).
package core

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"testing"

	"parascope/internal/dep"
	"parascope/internal/fortran"
	"parascope/internal/xform"
)

// findAssign returns the first assignment statement in the current
// unit whose printed text contains substr.
func findAssign(t *testing.T, s *Session, substr string) fortran.Stmt {
	t.Helper()
	var found fortran.Stmt
	fortran.WalkStmts(s.CurrentUnit().Body, func(st fortran.Stmt) bool {
		if found == nil {
			if _, ok := st.(*fortran.AssignStmt); ok && strings.Contains(fortran.StmtText(st), substr) {
				found = st
			}
		}
		return true
	})
	if found == nil {
		t.Fatalf("no assignment containing %q in %s", substr, s.CurrentUnit().Name)
	}
	return found
}

// carriedDep returns the single carried dependence on sym in loop n.
func carriedDep(t *testing.T, s *Session, n int, sym string) *dep.Dependence {
	t.Helper()
	if err := s.SelectLoop(n); err != nil {
		t.Fatal(err)
	}
	deps := s.SelectionDeps(DepFilter{CarriedOnly: true, Sym: sym})
	if len(deps) == 0 {
		t.Fatalf("no carried deps on %s in loop %d", sym, n)
	}
	return deps[0]
}

// TestMarkSurvivesEditAboveMarkedLoop pins the first half of the
// stale-marking bug: dependence marks were keyed by line number, so
// editing or deleting a statement *above* the marked loop — which
// renumbers everything below — silently dropped the mark.
func TestMarkSurvivesEditAboveMarkedLoop(t *testing.T) {
	s := open(t, `
      program main
      integer i, m
      real t, x(100)
      read(*,*) m
      t = 1.0
      t = t + 1.0
      do i = 1, 100
         x(i) = x(i+m)
      enddo
      print *, t
      end
`)
	d := carriedDep(t, s, 1, "x")
	if err := s.MarkDep(d.ID, dep.MarkRejected); err != nil {
		t.Fatal(err)
	}

	// Edit a statement above the loop (1:1, takes the patch path).
	if err := s.EditStmt(findAssign(t, s, "t = 1.0").ID(), "t = 2.0"); err != nil {
		t.Fatal(err)
	}
	if d := carriedDep(t, s, 1, "x"); d.Mark != dep.MarkRejected {
		t.Errorf("mark lost after edit above the loop: %v", d.Mark)
	}

	// Delete a statement above the loop (whole-unit reanalysis; every
	// statement below shifts position).
	if err := s.DeleteStmt(findAssign(t, s, "t + 1.0").ID()); err != nil {
		t.Fatal(err)
	}
	if d := carriedDep(t, s, 1, "x"); d.Mark != dep.MarkRejected {
		t.Errorf("mark lost after delete above the loop: %v", d.Mark)
	}
}

// TestStaleMarkCannotMisattach pins the second, worse half of the
// bug: statements produced by an edit all carry the parser's local
// line numbers, so under line-number keys two edited statements in
// *different* loops collide and a mark made on one loop's dependence
// silently bled onto the other's.
func TestStaleMarkCannotMisattach(t *testing.T) {
	s := open(t, `
      program main
      integer i
      real x(200)
      do i = 2, 100
         x(i) = x(i-1)
      enddo
      do i = 102, 200
         x(i) = x(i-1)
      enddo
      end
`)
	// Replace both loops' bodies with textually identical edits: the
	// two new statements get identical (parser-local) line numbers.
	if err := s.SelectLoop(1); err != nil {
		t.Fatal(err)
	}
	if err := s.EditStmt(s.SelectedLoop().Do.Body[0].ID(), "x(i) = x(i-1)"); err != nil {
		t.Fatal(err)
	}
	d1 := carriedDep(t, s, 1, "x")
	if err := s.MarkDep(d1.ID, dep.MarkAccepted); err != nil {
		t.Fatal(err)
	}
	if err := s.SelectLoop(2); err != nil {
		t.Fatal(err)
	}
	if err := s.EditStmt(s.SelectedLoop().Do.Body[0].ID(), "x(i) = x(i-1)"); err != nil {
		t.Fatal(err)
	}
	// Loop 2's dependence has the same symbol, class, level and (old
	// scheme) line numbers as the marked one — it must NOT inherit the
	// mark.
	if d2 := carriedDep(t, s, 2, "x"); d2.Mark == dep.MarkAccepted {
		t.Error("mark made on loop 1's dependence bled onto loop 2's")
	}
	if d1 := carriedDep(t, s, 1, "x"); d1.Mark != dep.MarkAccepted {
		t.Errorf("loop 1's own mark lost: %v", d1.Mark)
	}
}

// depSignature renders every dependence of every unit into a sorted,
// order-insensitive form for comparing an incrementally maintained
// session against a from-scratch one. IDs and Stats are excluded:
// the patch path renumbers edges and accumulates stats differently
// by design.
func depSignature(s *Session) []string {
	var out []string
	for _, u := range s.File.Units {
		st := s.StateOf(u)
		if st == nil || st.Deps == nil {
			continue
		}
		for _, d := range st.Deps.Deps {
			out = append(out, fmt.Sprintf("%s %s %s l%d %s %s #%d->#%d %s",
				u.Name, d.Sym.Name, d.Class, d.Level, d.DirString(), d.Test,
				d.Src.ID(), d.Dst.ID(), d.Mark))
		}
	}
	sort.Strings(out)
	return out
}

// perfSignatureClose compares the two sessions' perf estimates with a
// relative tolerance (loop lists are sorted by estimated time, which
// can tie).
func perfSignatureClose(a, b *Session) error {
	near := func(x, y float64) bool {
		return math.Abs(x-y) <= 1e-9*(1+math.Abs(x)+math.Abs(y))
	}
	for _, u := range a.File.Units {
		ea := a.StateOf(u).Est
		eb := b.StateOf(b.File.Unit(u.Name)).Est
		if !near(ea.Total, eb.Total) {
			return fmt.Errorf("unit %s: total %g vs %g", u.Name, ea.Total, eb.Total)
		}
		if len(ea.Loops) != len(eb.Loops) {
			return fmt.Errorf("unit %s: %d vs %d loop estimates", u.Name, len(ea.Loops), len(eb.Loops))
		}
		ta := make([]float64, len(ea.Loops))
		tb := make([]float64, len(eb.Loops))
		for i := range ea.Loops {
			ta[i], tb[i] = ea.Loops[i].SeqTime, eb.Loops[i].SeqTime
		}
		sort.Float64s(ta)
		sort.Float64s(tb)
		for i := range ta {
			if !near(ta[i], tb[i]) {
				return fmt.Errorf("unit %s: loop time %g vs %g", u.Name, ta[i], tb[i])
			}
		}
	}
	return nil
}

// expectScratchEquivalent fails unless s's incrementally maintained
// analysis matches a fresh session opened on s's saved source.
func expectScratchEquivalent(t *testing.T, s *Session) {
	t.Helper()
	fresh, err := Open(s.File.Path, s.Save())
	if err != nil {
		t.Fatalf("saved source does not reopen: %v", err)
	}
	got, want := depSignature(s), depSignature(fresh)
	if len(got) != len(want) {
		t.Fatalf("dependence count diverged: incremental %d, scratch %d\nincremental: %v\nscratch: %v",
			len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("dependence diverged:\nincremental: %s\nscratch:     %s", got[i], want[i])
		}
	}
	if err := perfSignatureClose(s, fresh); err != nil {
		t.Errorf("perf estimate diverged: %v", err)
	}
}

const callSrc = `
      program main
      integer i
      real a(300), b(300)
      do i = 1, 100
         call f(a, b, i)
      enddo
      end
      subroutine f(x, y, k)
      integer k
      real x(300), y(300)
      x(k) = y(k) + 1.0
      end
      subroutine g(x, y, k)
      integer k
      real x(300), y(300)
      x(k) = x(k+100) + y(k)
      end
`

// TestCalleeSummaryEditEscalates pins the second stale-analysis bug:
// ReanalyzeUnit used to reuse the old interprocedural facts after
// *every* edit, so an edit inside a callee that changed its side
// effects left callers' dependence graphs and performance estimates
// stale. An edit that changes the callee's visible summary must
// escalate to a program-level update and leave the session equal to a
// from-scratch analysis.
func TestCalleeSummaryEditEscalates(t *testing.T) {
	s := open(t, callSrc)
	if err := s.SelectUnit("f"); err != nil {
		t.Fatal(err)
	}
	// Before the edit the call loop is parallel: f writes only x(k).
	if err := s.SelectUnit("main"); err != nil {
		t.Fatal(err)
	}
	if v := s.Check(xform.Parallelize{Do: s.Loops()[0].Do}); !v.Safe {
		t.Fatalf("call loop should start parallel: %s", v)
	}
	if err := s.SelectUnit("f"); err != nil {
		t.Fatal(err)
	}
	// f now also reads x(k-1): iteration k of the caller's loop reads
	// what iteration k-1 wrote — a carried dependence the caller's
	// graph must learn about.
	if err := s.EditStmt(findAssign(t, s, "y(k)").ID(), "x(k) = x(k-1) + 1.0"); err != nil {
		t.Fatal(err)
	}
	if s.LastReanalysis.Mode != "program" {
		t.Errorf("summary-changing edit took the %q path, want program", s.LastReanalysis.Mode)
	}
	if err := s.SelectUnit("main"); err != nil {
		t.Fatal(err)
	}
	if v := s.Check(xform.Parallelize{Do: s.Loops()[0].Do}); v.Safe {
		t.Error("caller's loop still parallel after the callee grew a cross-iteration read")
	}
	expectScratchEquivalent(t, s)
}

// TestCalleeNeutralEditStaysUnitLevel: an edit inside a callee that
// leaves its visible summary unchanged must NOT pay for a program
// rebuild.
func TestCalleeNeutralEditStaysUnitLevel(t *testing.T) {
	s := open(t, callSrc)
	if err := s.SelectUnit("f"); err != nil {
		t.Fatal(err)
	}
	if err := s.EditStmt(findAssign(t, s, "y(k)").ID(), "x(k) = y(k) + 2.0"); err != nil {
		t.Fatal(err)
	}
	if s.LastReanalysis.Mode != "unit" {
		t.Errorf("summary-neutral edit took the %q path, want unit", s.LastReanalysis.Mode)
	}
	expectScratchEquivalent(t, s)
}

// TestCallRetargetEscalates: retargeting a CALL changes the caller's
// call surface; the old code reused the stale call graph and the
// caller kept analysis results for the *previous* callee.
func TestCallRetargetEscalates(t *testing.T) {
	s := open(t, callSrc)
	var call fortran.Stmt
	fortran.WalkStmts(s.CurrentUnit().Body, func(st fortran.Stmt) bool {
		if _, ok := st.(*fortran.CallStmt); ok && call == nil {
			call = st
		}
		return true
	})
	if call == nil {
		t.Fatal("no call statement in main")
	}
	if err := s.EditStmt(call.ID(), "      call g(a, b, i)"); err != nil {
		t.Fatal(err)
	}
	if s.LastReanalysis.Mode != "program" {
		t.Errorf("call retarget took the %q path, want program", s.LastReanalysis.Mode)
	}
	expectScratchEquivalent(t, s)
}

// TestColumnOneCallEdit: interactive edit text arrives at column 1,
// where fixed-form lexing would read "call ..." as a comment line.
// The parser must still accept it (the REPL's edit verb joins its
// arguments with single spaces, so it can never supply the six-space
// indent itself).
func TestColumnOneCallEdit(t *testing.T) {
	s := open(t, callSrc)
	var call fortran.Stmt
	fortran.WalkStmts(s.CurrentUnit().Body, func(st fortran.Stmt) bool {
		if _, ok := st.(*fortran.CallStmt); ok && call == nil {
			call = st
		}
		return true
	})
	if call == nil {
		t.Fatal("no call statement in main")
	}
	if err := s.EditStmt(call.ID(), "call g(a, b, i)"); err != nil {
		t.Fatalf("column-1 call edit rejected: %v", err)
	}
	if s.LastReanalysis.Mode != "program" {
		t.Errorf("call retarget took the %q path, want program", s.LastReanalysis.Mode)
	}
	expectScratchEquivalent(t, s)
}

// TestConstArgEditEscalates: changing a constant actual changes the
// constant formals propagated into the callee — the callee's own
// dependence graph must be recomputed even though its text never
// changed.
func TestConstArgEditEscalates(t *testing.T) {
	s := open(t, `
      program main
      real a(300)
      call f(a, 200)
      end
      subroutine f(x, n)
      integer n, i
      real x(300)
      do i = 1, 100
         x(i) = x(i+n)
      enddo
      end
`)
	if err := s.SelectUnit("f"); err != nil {
		t.Fatal(err)
	}
	// With n = 200 the read x(i+200) never overlaps the writes.
	if v := s.Check(xform.Parallelize{Do: s.Loops()[0].Do}); !v.Safe {
		t.Fatalf("with n = 200 the loop should be parallel: %s", v)
	}
	if err := s.SelectUnit("main"); err != nil {
		t.Fatal(err)
	}
	var call fortran.Stmt
	fortran.WalkStmts(s.CurrentUnit().Body, func(st fortran.Stmt) bool {
		if _, ok := st.(*fortran.CallStmt); ok && call == nil {
			call = st
		}
		return true
	})
	if err := s.EditStmt(call.ID(), "      call f(a, 1)"); err != nil {
		t.Fatal(err)
	}
	if s.LastReanalysis.Mode != "program" {
		t.Errorf("constant-actual edit took the %q path, want program", s.LastReanalysis.Mode)
	}
	if err := s.SelectUnit("f"); err != nil {
		t.Fatal(err)
	}
	if v := s.Check(xform.Parallelize{Do: s.Loops()[0].Do}); v.Safe {
		t.Error("with n = 1 the loop carries a dependence; callee analysis is stale")
	}
	expectScratchEquivalent(t, s)
}

// TestPatchPathMatchesScratch drives the statement-granular fast path
// directly and checks full equivalence after every patch.
func TestPatchPathMatchesScratch(t *testing.T) {
	s := open(t, sessionSrc)
	edits := []struct{ find, text string }{
		{"t = a(i)*2.0", "t = a(i)*3.0 + 1.0"},
		{"s = s + t", "s = s + t*2.0"},
		{"b(i) = t + 1.0", "b(i) = t"},
		{"t = a(i)*3.0", "t = a(i)*2.0"},
	}
	for _, e := range edits {
		if err := s.EditStmt(findAssign(t, s, e.find).ID(), e.text); err != nil {
			t.Fatalf("edit %q: %v", e.text, err)
		}
		if s.LastReanalysis.Mode != "patch" {
			t.Fatalf("edit %q took the %q path, want patch", e.text, s.LastReanalysis.Mode)
		}
		expectScratchEquivalent(t, s)
	}
}

// TestWholeUnitOnlyDisablesPatch: the benchmark-baseline knob must
// force the whole-unit path for the same edits.
func TestWholeUnitOnlyDisablesPatch(t *testing.T) {
	s := open(t, sessionSrc)
	s.WholeUnitOnly = true
	if err := s.EditStmt(findAssign(t, s, "t = a(i)*2.0").ID(), "t = a(i)*3.0"); err != nil {
		t.Fatal(err)
	}
	if s.LastReanalysis.Mode == "patch" {
		t.Error("WholeUnitOnly session still took the patch path")
	}
	expectScratchEquivalent(t, s)
}
