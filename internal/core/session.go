// Package core implements the ParaScope Editor itself: an
// interactive session over a Fortran program that combines the
// analyses (dependence, data-flow, interprocedural), the power-
// steering transformations, dependence marking and filtering, user
// assertions, variable classification, performance navigation,
// editing with incremental reanalysis, and undo — the paper's
// primary contribution.
package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"time"

	"parascope/internal/cfg"
	"parascope/internal/dataflow"
	"parascope/internal/dep"
	"parascope/internal/expr"
	"parascope/internal/faultpoint"
	"parascope/internal/fortran"
	"parascope/internal/interproc"
	"parascope/internal/perf"
	"parascope/internal/xform"
)

// VarClass is the user-visible classification of a variable with
// respect to the selected loop.
type VarClass int

// Variable classes shown in the variable pane.
const (
	ClassShared VarClass = iota
	ClassPrivate
	ClassReduction
	ClassInduction
)

func (c VarClass) String() string {
	switch c {
	case ClassShared:
		return "shared"
	case ClassPrivate:
		return "private"
	case ClassReduction:
		return "reduction"
	case ClassInduction:
		return "induction"
	}
	return "?"
}

// Assertion is one user-supplied fact about a variable's value,
// sharpening dependence analysis ("assert n >= 100").
type Assertion struct {
	Var string
	Rel string // ".eq.", ".ge.", ".le.", ".gt.", ".lt."
	Val int64
}

func (a Assertion) String() string { return fmt.Sprintf("%s %s %d", a.Var, a.Rel, a.Val) }

// depKey identifies a dependence stably across reanalysis so user
// markings survive. Endpoints are identified by the statements'
// edit-stable UIDs — assigned once and never reused — rather than line
// numbers: lines shift when statements above the marked loop are
// edited or deleted, which used to silently drop surviving marks and,
// worse, could attach a stale mark to a different dependence that
// landed on the old line numbers.
type depKey struct {
	sym    string
	srcUID int
	dstUID int
	class  dep.Class
	level  int
}

func keyOf(d *dep.Dependence) depKey {
	return depKey{sym: d.Sym.Name, srcUID: d.Src.UID(), dstUID: d.Dst.UID(),
		class: d.Class, level: d.Level}
}

// UnitState holds the per-unit analysis and interaction state.
type UnitState struct {
	Unit *fortran.Unit
	DF   *dataflow.Analysis
	Deps *dep.Graph
	Est  *perf.UnitEstimate

	marks      map[depKey]dep.Mark
	assertions []Assertion
	classes    map[string]VarClass // user overrides by name

	// srcHash fingerprints the unit's printed source at last analysis;
	// callSig its call surface (every call statement and user function
	// invocation, with actuals). Both drive ReanalyzeUnit's escalation
	// decision: an unchanged hash means nothing interprocedural can
	// have moved, an unchanged call signature means no other unit's
	// constant formals or call graph entry can have moved.
	srcHash string
	callSig string
}

// Session is one open ParaScope Editor.
type Session struct {
	File *fortran.File
	Prog *interproc.Program
	Opts dep.Options
	// Conservative disables the interprocedural analyses (Mod/Ref,
	// Kill, sections, constants), treating every call as touching
	// everything — the ablation baseline of the analysis experiments.
	Conservative bool
	// Workers bounds the per-unit analysis worker pool used by
	// AnalyzeAll; 0 means GOMAXPROCS.
	Workers int
	// obs receives per-phase analysis timings; nil disables them.
	// Per-unit phases run concurrently on the worker pool, so the
	// observer must be concurrency-safe.
	obs PhaseObserver

	units   map[*fortran.Unit]*UnitState
	current *fortran.Unit
	// selected is the currently selected loop (its DO statement).
	selected *fortran.DoStmt

	// WholeUnitOnly disables the statement-granular patching fast path
	// after 1:1 edits, forcing at least whole-unit reanalysis — the
	// benchmark baseline and the differential-test reference.
	WholeUnitOnly bool
	// LastReanalysis describes the most recent (re)analysis: which
	// path ran and its wall time. REPL and server surfaces report it.
	LastReanalysis Reanalysis

	est *perf.Estimator
	// History logs user-level actions for the session transcript.
	History []string

	undoStack []string // printed sources
	// Counters for the evaluation tables.
	Stats SessionStats
	// mutated is set by any action that changes the program or the
	// analysis inputs (edits, transformations, marks, assertions,
	// reclassifications, undo) — the server's cache uses it to tell
	// pristine sessions from dirtied ones.
	mutated bool
}

// Mutated reports whether any program- or analysis-changing action
// has been applied since the session opened. Selection and navigation
// do not count.
func (s *Session) Mutated() bool { return s.mutated }

// Reanalysis describes one (re)analysis pass: Mode is "patch"
// (statement-granular), "unit" (one unit against reused
// interprocedural facts), "program" (escalated interprocedural
// update), or "full" (from-scratch whole-program analysis).
type Reanalysis struct {
	Mode     string
	Duration time.Duration
}

// SessionStats counts user interactions, matching the actions the
// paper's evaluation reports (deleted dependences, assertions,
// reclassifications, transformations).
type SessionStats struct {
	DepsRejected      int
	DepsAccepted      int
	Assertions        int
	Reclassifications int
	Transformations   map[string]int
	Edits             int
	LoopsParallelized int
}

// Open parses src and builds a session with full analysis.
func Open(path, src string) (*Session, error) {
	f, err := fortran.Parse(path, src)
	if err != nil {
		return nil, err
	}
	return NewSession(f), nil
}

// NewSession builds a session over an already-parsed file.
func NewSession(f *fortran.File) *Session { return newSession(f, 0, nil) }

func newSession(f *fortran.File, workers int, obs PhaseObserver) *Session {
	s := &Session{
		File:    f,
		Opts:    dep.DefaultOptions(),
		units:   map[*fortran.Unit]*UnitState{},
		Workers: workers,
		obs:     obs,
	}
	s.Stats.Transformations = map[string]int{}
	s.AnalyzeAll()
	if main := f.Main(); main != nil {
		s.current = main
	} else if len(f.Units) > 0 {
		s.current = f.Units[0]
	}
	return s
}

// AnalyzeAll (re)runs whole-program analysis: interprocedural
// summaries, then per-unit data-flow, dependence and performance
// analysis. The per-unit phase runs on a bounded worker pool (see
// Workers): units are independent once the interprocedural summaries
// exist, so they are analyzed concurrently.
func (s *Session) AnalyzeAll() {
	start := time.Now()
	s.File.RenumberStmts()
	var t0 time.Time
	if s.obs != nil {
		t0 = time.Now()
	}
	s.Prog = interproc.AnalyzeProgram(s.File)
	if s.obs != nil {
		s.obs.ObservePhase("interproc", time.Since(t0))
	}
	s.est = perf.New(s.File, perf.DefaultParams())
	// Pre-warm the estimator's per-unit cost memo while still single-
	// threaded: EstimateUnit reads it from every worker below.
	for _, u := range s.File.Units {
		s.est.UnitCost(u)
	}
	s.units = s.analyzeUnits(s.File.Units, s.units)
	s.LastReanalysis = Reanalysis{Mode: "full", Duration: time.Since(start)}
}

// ReanalyzeUnit refreshes analysis after a mutation of unit u — the
// editor's incremental path. Interprocedural facts are reused only
// when that is sound: if the edit changed the unit's call surface
// (calls added, removed or retargeted, actuals changed) or its
// caller-visible summary, other units' dependence graphs depend on the
// change, so the interprocedural facts are rebuilt and every unit
// whose analysis inputs moved is reanalyzed too. The perf cost memo
// for u and its transitive callers (whose memoized costs embed u's) is
// always invalidated, and caller estimates are refreshed.
func (s *Session) ReanalyzeUnit(u *fortran.Unit) {
	start := time.Now()
	s.File.RenumberStmts()
	mode := s.reanalyzeUnit(u)
	s.LastReanalysis = Reanalysis{Mode: mode, Duration: time.Since(start)}
}

func (s *Session) reanalyzeUnit(u *fortran.Unit) string {
	st := s.units[u]
	if st == nil || s.Prog == nil {
		s.AnalyzeAll()
		return "full"
	}
	hash := unitHash(u)
	if hash == st.srcHash {
		// The AST is unchanged (assertion or option tweak): summaries
		// and costs cannot have moved; reanalyze just this unit.
		s.units[u] = s.analyzeUnit(u, st, s.depWorkerCount())
		return "unit"
	}
	if !s.Conservative {
		if callSurfaceSig(u) != st.callSig {
			s.reanalyzeProgram(u)
			return "program"
		}
		if len(s.Prog.Graph.Callers[u]) > 0 &&
			!s.Prog.Resummarize(u).Equal(s.Prog.Summaries[u]) {
			s.reanalyzeProgram(u)
			return "program"
		}
	}
	s.invalidateCosts(u)
	s.units[u] = s.analyzeUnit(u, st, s.depWorkerCount())
	s.refreshCallerEstimates(u)
	return "unit"
}

// reanalyzeProgram rebuilds the interprocedural facts after an edit to
// `edited` changed its call surface or caller-visible summary, then
// reanalyzes only the units whose analysis inputs actually moved.
// Everything else keeps its unit state — graphs, marks, assertions —
// and just refreshes its perf estimate against the rebuilt cost memo.
func (s *Session) reanalyzeProgram(edited *fortran.Unit) {
	oldProg := s.Prog
	s.Prog = interproc.UpdateProgram(oldProg, map[*fortran.Unit]bool{edited: true})
	s.est = perf.New(s.File, perf.DefaultParams())
	for _, u := range s.File.Units {
		s.est.UnitCost(u)
	}
	var stale []*fortran.Unit
	for _, v := range s.File.Units {
		if v != edited && s.units[v] != nil && s.unitInputsUnchanged(v, oldProg) {
			continue
		}
		stale = append(stale, v)
	}
	fresh := s.analyzeUnits(stale, s.units)
	for v, st := range fresh {
		s.units[v] = st
	}
	for _, v := range s.File.Units {
		if st := s.units[v]; st != nil && fresh[v] == nil && st.DF != nil {
			st.Est = s.est.EstimateUnit(st.DF)
		}
	}
}

// unitInputsUnchanged reports whether v's analysis inputs survived an
// interprocedural update: same recursion status, same callee summary
// objects (UpdateProgram carries the pointer when the recomputed
// summary is Equal), same propagated constant formals.
func (s *Session) unitInputsUnchanged(v *fortran.Unit, oldProg *interproc.Program) bool {
	if s.Conservative {
		return true // per-unit analysis never consults the program
	}
	if s.Prog.Graph.Recursive[v] != oldProg.Graph.Recursive[v] {
		return false
	}
	if !interproc.ConstFormalsEqual(s.Prog, oldProg, v) {
		return false
	}
	for _, site := range s.Prog.Graph.Calls[v] {
		if s.Prog.Summaries[site.Callee] != oldProg.Summaries[site.Callee] {
			return false
		}
	}
	return true
}

// invalidateCosts drops memoized per-call costs for u and every unit
// whose cost transitively embeds it.
func (s *Session) invalidateCosts(u *fortran.Unit) {
	for v := range s.transitiveCallers(u) {
		s.est.Invalidate(v)
	}
}

// transitiveCallers returns u plus every unit that can reach it
// through calls.
func (s *Session) transitiveCallers(u *fortran.Unit) map[*fortran.Unit]bool {
	out := map[*fortran.Unit]bool{u: true}
	if s.Prog == nil {
		return out
	}
	queue := []*fortran.Unit{u}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, site := range s.Prog.Graph.Callers[v] {
			if !out[site.Caller] {
				out[site.Caller] = true
				queue = append(queue, site.Caller)
			}
		}
	}
	return out
}

// refreshCallerEstimates recomputes the perf estimates of every unit
// whose cost embeds u's: their dependence graphs don't consult u, but
// their time estimates price its call sites.
func (s *Session) refreshCallerEstimates(u *fortran.Unit) {
	for v := range s.transitiveCallers(u) {
		if v == u {
			continue
		}
		if st := s.units[v]; st != nil && st.DF != nil {
			st.Est = s.est.EstimateUnit(st.DF)
		}
	}
}

// unitHash fingerprints a unit's current source text.
func unitHash(u *fortran.Unit) string {
	var b strings.Builder
	fortran.PrintUnit(&b, u)
	h := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(h[:])
}

// callSurfaceSig fingerprints the unit's call surface: the full text
// of every statement that is a CALL or contains a resolved function
// invocation, in walk order. Edits that leave it unchanged cannot move
// the call graph or any other unit's constant formals.
func callSurfaceSig(u *fortran.Unit) string {
	var b strings.Builder
	fortran.WalkStmts(u.Body, func(st fortran.Stmt) bool {
		isCall := false
		if _, ok := st.(*fortran.CallStmt); ok {
			isCall = true
		} else {
			fortran.WalkExprs(st, func(e fortran.Expr) {
				if fc, ok := e.(*fortran.FuncCall); ok && fc.Callee != nil {
					isCall = true
				}
			})
		}
		if isCall {
			b.WriteString(fortran.StmtText(st))
			b.WriteByte('\n')
		}
		return true
	})
	return b.String()
}

func (s *Session) analyzeUnit(u *fortran.Unit, prev *UnitState, depWorkers int) *UnitState {
	if err := faultpoint.Hit(faultpoint.Analyze, s.File.Path+":"+u.Name); err != nil {
		// Analysis has no error channel; an injected error surfaces
		// as a panic for the session-level recovery boundary.
		panic(err)
	}
	st := &UnitState{Unit: u, marks: map[depKey]dep.Mark{}, classes: map[string]VarClass{}}
	if prev != nil {
		st.marks = prev.marks
		st.assertions = prev.assertions
		st.classes = prev.classes
	}
	// Prune marks whose statements no longer exist. UIDs are never
	// reused, so a stale mark cannot attach to a different dependence;
	// pruning just keeps the map from growing across edits.
	if len(st.marks) > 0 {
		live := map[int]bool{}
		fortran.WalkStmts(u.Body, func(x fortran.Stmt) bool {
			live[x.UID()] = true
			return true
		})
		for k := range st.marks {
			if !live[k.srcUID] || !live[k.dstUID] {
				delete(st.marks, k)
			}
		}
	}
	var eff dataflow.SideEffects
	var summ dep.Summaries
	env := s.assertionEnv(u, st.assertions)
	if s.Conservative {
		eff = dataflow.ConservativeEffects{}
	} else {
		eff = &interproc.Effects{Prog: s.Prog}
		summ = &interproc.SectionProvider{Prog: s.Prog}
		if ce := s.Prog.ConstEnv(u); ce != nil {
			if env == nil {
				env = expr.NewEnv()
			}
			for _, sym := range ce.Symbols() {
				env.SetRange(sym, ce.RangeOf(sym))
			}
		}
	}
	var t0 time.Time
	if s.obs != nil {
		t0 = time.Now()
	}
	st.DF = dataflow.Analyze(u, eff)
	if s.obs != nil {
		s.obs.ObservePhase("dataflow", time.Since(t0))
		t0 = time.Now()
	}
	st.Deps = dep.AnalyzeN(st.DF, env, summ, s.Opts, depWorkers)
	if s.obs != nil {
		s.obs.ObservePhase("dependence", time.Since(t0))
	}
	// Restore user markings.
	for _, d := range st.Deps.Deps {
		if m, ok := st.marks[keyOf(d)]; ok {
			d.Mark = m
		}
	}
	if s.obs != nil {
		t0 = time.Now()
	}
	st.Est = s.est.EstimateUnit(st.DF)
	if s.obs != nil {
		s.obs.ObservePhase("perf", time.Since(t0))
	}
	st.srcHash = unitHash(u)
	st.callSig = callSurfaceSig(u)
	return st
}

func (s *Session) assertionEnv(u *fortran.Unit, asserts []Assertion) *expr.Env {
	if len(asserts) == 0 {
		return nil
	}
	env := expr.NewEnv()
	for _, a := range asserts {
		sym := u.Lookup(a.Var)
		if sym == nil {
			continue
		}
		switch a.Rel {
		case ".eq.":
			env.SetValue(sym, a.Val)
		case ".ge.":
			env.SetRange(sym, expr.AtLeast(a.Val))
		case ".gt.":
			env.SetRange(sym, expr.AtLeast(a.Val+1))
		case ".le.":
			env.SetRange(sym, expr.AtMost(a.Val))
		case ".lt.":
			env.SetRange(sym, expr.AtMost(a.Val-1))
		}
	}
	return env
}

func (s *Session) log(format string, args ...interface{}) {
	s.History = append(s.History, fmt.Sprintf(format, args...))
}

// ---------------------------------------------------------------------------
// Selection and navigation

// CurrentUnit returns the unit being edited.
func (s *Session) CurrentUnit() *fortran.Unit { return s.current }

// State returns the current unit's analysis state.
func (s *Session) State() *UnitState { return s.units[s.current] }

// StateOf returns a specific unit's analysis state.
func (s *Session) StateOf(u *fortran.Unit) *UnitState { return s.units[u] }

// SelectUnit switches the source pane to another program unit.
func (s *Session) SelectUnit(name string) error {
	u := s.File.Unit(strings.ToLower(name))
	if u == nil {
		return fmt.Errorf("no unit named %s", name)
	}
	s.current = u
	s.selected = nil
	s.log("select unit %s", name)
	return nil
}

// Loops lists the current unit's loops in source order.
func (s *Session) Loops() []*cfg.Loop {
	return s.State().DF.Tree.All
}

// SelectLoop selects the nth loop (1-based, source order) of the
// current unit for the dependence and variable panes.
func (s *Session) SelectLoop(n int) error {
	loops := s.Loops()
	if n < 1 || n > len(loops) {
		return fmt.Errorf("loop %d out of range (unit has %d)", n, len(loops))
	}
	s.selected = loops[n-1].Do
	s.log("select loop %d (do %s, line %d)", n, s.selected.Var.Name, s.selected.Line())
	return nil
}

// SelectedLoop returns the selected loop, or nil.
func (s *Session) SelectedLoop() *cfg.Loop {
	if s.selected == nil {
		return nil
	}
	return s.State().DF.Tree.LoopOf(s.selected)
}

// NextByPerformance selects the most expensive not-yet-parallel loop,
// the estimator-guided navigation the users requested.
func (s *Session) NextByPerformance() (*cfg.Loop, bool) {
	for _, le := range s.State().Est.Loops {
		if !le.Loop.Do.Parallel {
			s.selected = le.Loop.Do
			s.log("navigate to do %s (line %d): %.0f%% of unit time",
				le.Loop.Header().Name, le.Loop.Do.Line(), le.Fraction*100)
			return le.Loop, true
		}
	}
	return nil, false
}

// ---------------------------------------------------------------------------
// Dependence pane

// DepFilter selects which dependences the pane shows — Ped's view
// filtering applied to the dependence list.
type DepFilter struct {
	// Classes limits to the given classes when non-empty.
	Classes []dep.Class
	// Sym limits to dependences on the named variable.
	Sym string
	// CarriedOnly hides loop-independent dependences.
	CarriedOnly bool
	// HideRejected hides dependences the user rejected.
	HideRejected bool
	// HidePrivate hides dependences on privatizable scalars and
	// recognized reductions.
	HidePrivate bool
}

// SelectionDeps returns the dependences of the selected loop after
// filtering — the dependence pane contents.
func (s *Session) SelectionDeps(f DepFilter) []*dep.Dependence {
	l := s.SelectedLoop()
	if l == nil {
		return nil
	}
	st := s.State()
	var out []*dep.Dependence
	for _, d := range st.Deps.LoopDeps(l) {
		if f.CarriedOnly && !d.Carried() {
			continue
		}
		if f.HideRejected && d.Mark == dep.MarkRejected {
			continue
		}
		if f.Sym != "" && d.Sym.Name != f.Sym {
			continue
		}
		if len(f.Classes) > 0 {
			ok := false
			for _, c := range f.Classes {
				if d.Class == c {
					ok = true
				}
			}
			if !ok {
				continue
			}
		}
		if f.HidePrivate && s.classOf(l, d.Sym) != ClassShared {
			continue
		}
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// MarkDep records the user's judgement on a dependence: accepted
// confirms it, rejected removes it from safety decisions (dependence
// deletion). Proven dependences cannot be rejected.
func (s *Session) MarkDep(id int, m dep.Mark) error {
	st := s.State()
	d := st.Deps.DepByID(id)
	if d == nil {
		return fmt.Errorf("no dependence %d", id)
	}
	if d.Mark == dep.MarkProven && m == dep.MarkRejected {
		return fmt.Errorf("dependence %d was proven by an exact test; it cannot be rejected", id)
	}
	d.Mark = m
	st.marks[keyOf(d)] = m
	s.mutated = true
	switch m {
	case dep.MarkRejected:
		s.Stats.DepsRejected++
	case dep.MarkAccepted:
		s.Stats.DepsAccepted++
	}
	s.log("mark dependence %d (%s on %s) %s", id, d.Class, d.Sym.Name, m)
	return nil
}

// Endpoint describes one end of a dependence for navigation. When
// the endpoint is a call statement, CalleeRefs lists the statements
// inside the callee that access the variable, so the user can follow
// the dependence across the procedure boundary (the paper: "Ped must
// be able to display other procedures while iterating over all the
// endpoints corresponding to a dependence").
type Endpoint struct {
	Stmt fortran.Stmt
	Line int
	Text string
	// CalleeRefs is non-empty when Stmt is a call whose side effects
	// produced the dependence endpoint.
	CalleeRefs []CalleeRef
}

// CalleeRef is one access inside a called procedure.
type CalleeRef struct {
	Unit *fortran.Unit
	Stmt fortran.Stmt
	Line int
	Text string
}

// DepEndpoints resolves both ends of a dependence, following call
// statements into their callees.
func (s *Session) DepEndpoints(id int) (src, dst Endpoint, err error) {
	st := s.State()
	d := st.Deps.DepByID(id)
	if d == nil {
		return Endpoint{}, Endpoint{}, fmt.Errorf("no dependence %d", id)
	}
	return s.endpoint(d.Src, d.Sym), s.endpoint(d.Dst, d.Sym), nil
}

func (s *Session) endpoint(stmt fortran.Stmt, sym *fortran.Symbol) Endpoint {
	ep := Endpoint{Stmt: stmt, Line: stmt.Line(), Text: fortran.StmtText(stmt)}
	call, ok := stmt.(*fortran.CallStmt)
	if !ok || call.Callee == nil {
		return ep
	}
	// Map the caller-side symbol to the callee-side one: through the
	// argument binding or a shared COMMON block.
	callee := call.Callee
	var target *fortran.Symbol
	for i, formal := range callee.Args {
		if i >= len(call.Args) {
			break
		}
		if vr, ok := call.Args[i].(*fortran.VarRef); ok && vr.Sym == sym {
			target = formal
		}
	}
	if target == nil && sym.Common != "" {
		if cs := callee.Lookup(sym.Name); cs != nil && cs.Common == sym.Common {
			target = cs
		}
	}
	if target == nil {
		return ep
	}
	fortran.WalkStmts(callee.Body, func(x fortran.Stmt) bool {
		refs := false
		fortran.WalkExprs(x, func(e fortran.Expr) {
			if vr, ok := e.(*fortran.VarRef); ok && vr.Sym == target {
				refs = true
			}
		})
		if as, ok := x.(*fortran.AssignStmt); ok && as.Lhs.Sym == target {
			refs = true
		}
		if refs {
			ep.CalleeRefs = append(ep.CalleeRefs, CalleeRef{
				Unit: callee, Stmt: x, Line: x.Line(), Text: fortran.StmtText(x),
			})
		}
		return true
	})
	return ep
}

// ---------------------------------------------------------------------------
// Assertions and variable classification

// Assert records a fact about an integer variable ("n .ge. 100") and
// reanalyzes the unit with the sharpened environment.
func (s *Session) Assert(text string) error {
	a, err := parseAssertion(text)
	if err != nil {
		return err
	}
	u := s.current
	if u.Lookup(a.Var) == nil {
		return fmt.Errorf("no variable %s in %s", a.Var, u.Name)
	}
	st := s.State()
	st.assertions = append(st.assertions, a)
	s.Stats.Assertions++
	s.mutated = true
	s.log("assert %s", a)
	s.ReanalyzeUnit(u)
	return nil
}

func parseAssertion(text string) (Assertion, error) {
	fields := strings.Fields(strings.ToLower(text))
	if len(fields) != 3 {
		return Assertion{}, fmt.Errorf("assertion must be `var .rel. value`, got %q", text)
	}
	rel := fields[1]
	switch rel {
	case ".eq.", ".ge.", ".le.", ".gt.", ".lt.":
	case "=", "==":
		rel = ".eq."
	case ">=":
		rel = ".ge."
	case "<=":
		rel = ".le."
	case ">":
		rel = ".gt."
	case "<":
		rel = ".lt."
	default:
		return Assertion{}, fmt.Errorf("unknown relation %q", rel)
	}
	var val int64
	if _, err := fmt.Sscanf(fields[2], "%d", &val); err != nil {
		return Assertion{}, fmt.Errorf("assertion value must be an integer: %v", err)
	}
	return Assertion{Var: fields[0], Rel: rel, Val: val}, nil
}

// Assertions lists the current unit's assertions.
func (s *Session) Assertions() []Assertion { return s.State().assertions }

// classOf computes the effective classification of a variable for a
// loop: user override first, then automatic analysis.
func (s *Session) classOf(l *cfg.Loop, sym *fortran.Symbol) VarClass {
	st := s.State()
	if c, ok := st.classes[sym.Name]; ok {
		return c
	}
	if sym == l.Do.Var {
		return ClassInduction
	}
	for _, r := range st.DF.Reductions(l) {
		if r.Sym == sym {
			return ClassReduction
		}
	}
	if sym.Kind == fortran.SymScalar {
		if res := st.DF.Privatizable(l, sym); res.Privatizable && !res.NeedsLastValue {
			return ClassPrivate
		}
	}
	return ClassShared
}

// Classify overrides a variable's classification for parallelization
// (the user "reclassification" action from the evaluation).
func (s *Session) Classify(varName string, c VarClass) error {
	sym := s.current.Lookup(strings.ToLower(varName))
	if sym == nil {
		return fmt.Errorf("no variable %s", varName)
	}
	s.State().classes[sym.Name] = c
	s.Stats.Reclassifications++
	s.mutated = true
	s.log("classify %s %s", sym.Name, c)
	return nil
}

// VarInfo is one row of the variable pane.
type VarInfo struct {
	Sym          *fortran.Symbol
	Class        VarClass
	Privatizable bool
	PrivReason   string
	LiveOut      bool
	DepCount     int
}

// VariablePane summarizes every variable accessed in the selected
// loop.
func (s *Session) VariablePane() []VarInfo {
	l := s.SelectedLoop()
	if l == nil {
		return nil
	}
	st := s.State()
	seen := map[*fortran.Symbol]bool{}
	var syms []*fortran.Symbol
	for _, stmt := range l.Stmts() {
		for _, ac := range st.DF.Accesses(stmt) {
			if !seen[ac.Sym] {
				seen[ac.Sym] = true
				syms = append(syms, ac.Sym)
			}
		}
	}
	sort.Slice(syms, func(i, j int) bool { return syms[i].Name < syms[j].Name })
	depCount := map[*fortran.Symbol]int{}
	for _, d := range st.Deps.LoopDeps(l) {
		depCount[d.Sym]++
	}
	var out []VarInfo
	for _, sym := range syms {
		info := VarInfo{Sym: sym, Class: s.classOf(l, sym), DepCount: depCount[sym]}
		if sym.Kind == fortran.SymScalar {
			res := st.DF.Privatizable(l, sym)
			info.Privatizable = res.Privatizable
			info.PrivReason = res.Reason
			info.LiveOut = st.DF.LiveOutOfLoop(l, sym)
		}
		out = append(out, info)
	}
	return out
}

// ---------------------------------------------------------------------------
// Transformations (power steering)

// Check diagnoses a transformation without applying it.
func (s *Session) Check(t xform.Transformation) xform.Verdict {
	return t.Check(s.xformContext())
}

// Transform checks and applies a transformation, reanalyzing and
// recording undo state. Rejected dependences stay out of the safety
// decision (the user has overruled the analysis).
func (s *Session) Transform(t xform.Transformation) (xform.Verdict, error) {
	if err := faultpoint.Hit(faultpoint.Transform, s.File.Path+":"+t.Name()); err != nil {
		return xform.Verdict{}, err
	}
	ctx := s.xformContext()
	v := t.Check(ctx)
	if !v.OK() {
		return v, fmt.Errorf("%s: %s", t.Name(), v)
	}
	s.pushUndo()
	if err := t.Apply(ctx); err != nil {
		s.undoStack = s.undoStack[:len(s.undoStack)-1]
		return v, err
	}
	s.mutated = true
	s.Stats.Transformations[t.Name()]++
	if t.Name() == "parallelize" {
		s.Stats.LoopsParallelized++
	}
	s.log("apply %s: %s", t.Name(), v)
	s.ReanalyzeUnit(s.current)
	return v, nil
}

func (s *Session) xformContext() *xform.Context {
	st := s.State()
	ctx := &xform.Context{
		File: s.File, Unit: s.current,
		DF: st.DF, Deps: st.Deps,
		Assertions: s.assertionEnv(s.current, st.assertions),
		Opts:       s.Opts,
	}
	if s.Conservative {
		ctx.Effects = dataflow.ConservativeEffects{}
	} else {
		ctx.Effects = &interproc.Effects{Prog: s.Prog}
		ctx.Summaries = &interproc.SectionProvider{Prog: s.Prog}
	}
	return ctx
}

// ---------------------------------------------------------------------------
// Editing

// EditStmt replaces the statement with the given ID by newly parsed
// text (which may be a whole block), then incrementally reanalyzes
// the containing unit.
func (s *Session) EditStmt(id int, text string) error {
	old := s.File.StmtByID(id)
	if old == nil {
		return fmt.Errorf("no statement %d", id)
	}
	ns, err := fortran.ParseStmtIn(s.File, s.current, text)
	if err != nil {
		return fmt.Errorf("parse error: %v", err)
	}
	s.pushUndo()
	if !replaceStmtIn(s.current, old, ns) {
		s.undoStack = s.undoStack[:len(s.undoStack)-1]
		return fmt.Errorf("statement %d is not in unit %s", id, s.current.Name)
	}
	s.Stats.Edits++
	s.mutated = true
	s.log("edit stmt %d: %s", id, strings.TrimSpace(text))
	if !s.tryPatchEdit(old, ns) {
		s.ReanalyzeUnit(s.current)
	}
	return nil
}

// tryPatchEdit attempts the statement-granular fast path after old was
// replaced 1:1 by ns in the current unit: splice the new statement
// into the existing dataflow solution and patch the dependence graph —
// only edges incident to the edited statement are killed and retested
// — instead of reanalyzing the whole unit. Reports false, with no
// analysis state modified, when the edit falls outside the patchable
// envelope; the caller then runs the normal escalation-aware path.
//
// The envelope, beyond what dataflow.PatchStmt itself enforces: same
// statement label (labels are control-flow targets), and — when the
// unit has callers — no reference to a caller-visible symbol on either
// side, since those could move the unit's summary out from under its
// callers. Calls are excluded by SimpleStmt, so the call surface, the
// constant formals and the unit's own per-call cost *shape* are
// unchanged; the cost value may still move, so the cost memo is
// invalidated and caller estimates refresh.
func (s *Session) tryPatchEdit(old, ns fortran.Stmt) bool {
	if s.WholeUnitOnly {
		return false
	}
	u := s.current
	st := s.units[u]
	if st == nil || st.DF == nil || st.Deps == nil || s.Prog == nil {
		return false
	}
	if fortran.StmtLabel(old) != fortran.StmtLabel(ns) {
		return false
	}
	if !dataflow.SimpleStmt(old) || !dataflow.SimpleStmt(ns) {
		return false
	}
	if len(s.Prog.Graph.Callers[u]) > 0 && (touchesVisible(u, old) || touchesVisible(u, ns)) {
		return false
	}
	start := time.Now()
	s.File.RenumberStmts()
	if err := faultpoint.Hit(faultpoint.Analyze, s.File.Path+":"+u.Name); err != nil {
		panic(err)
	}
	if !st.DF.PatchStmt(old, ns) {
		return false
	}
	// Committed: the dataflow solution now describes ns.
	var summ dep.Summaries
	env := s.assertionEnv(u, st.assertions)
	if !s.Conservative {
		summ = &interproc.SectionProvider{Prog: s.Prog}
		if ce := s.Prog.ConstEnv(u); ce != nil {
			if env == nil {
				env = expr.NewEnv()
			}
			for _, sym := range ce.Symbols() {
				env.SetRange(sym, ce.RangeOf(sym))
			}
		}
	}
	st.Deps = dep.Patch(st.Deps, st.DF, env, summ, s.Opts, old, ns)
	for _, d := range st.Deps.Deps {
		if m, ok := st.marks[keyOf(d)]; ok {
			d.Mark = m
		}
	}
	s.invalidateCosts(u)
	st.Est = s.est.EstimateUnit(st.DF)
	s.refreshCallerEstimates(u)
	st.srcHash = unitHash(u)
	d := time.Since(start)
	if s.obs != nil {
		s.obs.ObservePhase("patch", d)
	}
	s.LastReanalysis = Reanalysis{Mode: "patch", Duration: d}
	return true
}

// touchesVisible reports whether the statement accesses any symbol a
// caller can see (a dummy argument or COMMON member).
func touchesVisible(u *fortran.Unit, st fortran.Stmt) bool {
	for _, ac := range dataflow.StmtAccesses(u, st, dataflow.ConservativeEffects{}) {
		if ac.Sym.Dummy || ac.Sym.Common != "" {
			return true
		}
	}
	return false
}

// DeleteStmt removes a statement.
func (s *Session) DeleteStmt(id int) error {
	old := s.File.StmtByID(id)
	if old == nil {
		return fmt.Errorf("no statement %d", id)
	}
	s.pushUndo()
	if !deleteStmtIn(s.current, old) {
		s.undoStack = s.undoStack[:len(s.undoStack)-1]
		return fmt.Errorf("statement %d is not in unit %s", id, s.current.Name)
	}
	s.Stats.Edits++
	s.mutated = true
	s.log("delete stmt %d", id)
	s.ReanalyzeUnit(s.current)
	return nil
}

func replaceStmtIn(u *fortran.Unit, old, repl fortran.Stmt) bool {
	var walk func(body []fortran.Stmt) bool
	walk = func(body []fortran.Stmt) bool {
		for i, x := range body {
			if x == old {
				body[i] = repl
				return true
			}
			switch st := x.(type) {
			case *fortran.IfStmt:
				if walk(st.Then) || walk(st.Else) {
					return true
				}
			case *fortran.DoStmt:
				if walk(st.Body) {
					return true
				}
			case *fortran.WhileStmt:
				if walk(st.Body) {
					return true
				}
			}
		}
		return false
	}
	return walk(u.Body)
}

func deleteStmtIn(u *fortran.Unit, old fortran.Stmt) bool {
	var walk func(body []fortran.Stmt) ([]fortran.Stmt, bool)
	walk = func(body []fortran.Stmt) ([]fortran.Stmt, bool) {
		for i, x := range body {
			if x == old {
				return append(body[:i:i], body[i+1:]...), true
			}
			switch st := x.(type) {
			case *fortran.IfStmt:
				if nb, ok := walk(st.Then); ok {
					st.Then = nb
					return body, true
				}
				if nb, ok := walk(st.Else); ok {
					st.Else = nb
					return body, true
				}
			case *fortran.DoStmt:
				if nb, ok := walk(st.Body); ok {
					st.Body = nb
					return body, true
				}
			case *fortran.WhileStmt:
				if nb, ok := walk(st.Body); ok {
					st.Body = nb
					return body, true
				}
			}
		}
		return body, false
	}
	nb, ok := walk(u.Body)
	if ok {
		u.Body = nb
	}
	return ok
}

// ---------------------------------------------------------------------------
// Undo and persistence

func (s *Session) pushUndo() {
	s.undoStack = append(s.undoStack, fortran.Print(s.File))
}

// Undo restores the program to its state before the last
// transformation or edit. Analysis state is rebuilt from scratch; user
// marks do not survive (the reparse issues fresh statement
// identities).
func (s *Session) Undo() error {
	if len(s.undoStack) == 0 {
		return fmt.Errorf("nothing to undo")
	}
	src := s.undoStack[len(s.undoStack)-1]
	s.undoStack = s.undoStack[:len(s.undoStack)-1]
	f, err := fortran.Parse(s.File.Path, src)
	if err != nil {
		return fmt.Errorf("undo reparse failed: %v", err)
	}
	curName := ""
	if s.current != nil {
		curName = s.current.Name
	}
	s.File = f
	s.selected = nil
	s.AnalyzeAll()
	if u := f.Unit(curName); u != nil {
		s.current = u
	} else if main := f.Main(); main != nil {
		s.current = main
	}
	s.mutated = true
	s.log("undo")
	return nil
}

// Save returns the current program text.
func (s *Session) Save() string { return fortran.Print(s.File) }

// UndoStack returns a copy of the printed sources Undo can revert to,
// oldest first. The server's durability snapshots persist it so undo
// still works on a session rebuilt from a snapshot.
func (s *Session) UndoStack() []string {
	out := make([]string, len(s.undoStack))
	copy(out, s.undoStack)
	return out
}

// SetUndoStack replaces the undo history with printed sources, oldest
// first (used when rebuilding a session from a durability snapshot).
func (s *Session) SetUndoStack(srcs []string) {
	s.undoStack = make([]string, len(srcs))
	copy(s.undoStack, srcs)
}

// ---------------------------------------------------------------------------
// Parallelization driver (used by scripted sessions and the report)

// AutoParallelize attempts to parallelize every loop of the current
// unit outermost-first (an outer DOALL subsumes its children),
// returning how many loops were marked parallel.
func (s *Session) AutoParallelize() int {
	count := 0
	var tryLoops func(loops []*cfg.Loop)
	tryLoops = func(loops []*cfg.Loop) {
		for _, l := range loops {
			tr := xform.Parallelize{Do: l.Do}
			if s.Check(tr).OK() {
				if _, err := s.Transform(tr); err == nil {
					count++
					continue // children run inside the parallel loop
				}
			}
			// Re-find children after any reanalysis.
			cur := s.State().DF.Tree.LoopOf(l.Do)
			if cur != nil {
				tryLoops(cur.Children)
			}
		}
	}
	tryLoops(s.State().DF.Tree.Roots)
	return count
}

// ParallelLoops lists the current unit's loops marked parallel.
func (s *Session) ParallelLoops() []*fortran.DoStmt {
	var out []*fortran.DoStmt
	fortran.WalkStmts(s.current.Body, func(st fortran.Stmt) bool {
		if do, ok := st.(*fortran.DoStmt); ok && do.Parallel {
			out = append(out, do)
		}
		return true
	})
	return out
}
