package core

import (
	"strings"
	"testing"

	"parascope/internal/dep"
	"parascope/internal/fortran"
	"parascope/internal/xform"
)

const sessionSrc = `
      program main
      integer i, m
      real t, s, a(300), b(300)
      read(*,*) m
      s = 0.0
      do i = 1, 100
         t = a(i)*2.0
         b(i) = t + 1.0
         s = s + t
      enddo
      do i = 1, 100
         a(i) = a(i+m)
      enddo
      print *, s
      end
`

func open(t *testing.T, src string) *Session {
	t.Helper()
	s, err := Open("t.f", src)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func TestOpenAndSelect(t *testing.T) {
	s := open(t, sessionSrc)
	if s.CurrentUnit().Name != "main" {
		t.Fatalf("current unit = %s", s.CurrentUnit().Name)
	}
	if got := len(s.Loops()); got != 2 {
		t.Fatalf("loops = %d, want 2", got)
	}
	if err := s.SelectLoop(1); err != nil {
		t.Fatal(err)
	}
	if s.SelectedLoop() == nil {
		t.Fatal("no selection")
	}
	if err := s.SelectLoop(99); err == nil {
		t.Error("out-of-range selection should fail")
	}
}

func TestDependencePaneAndFiltering(t *testing.T) {
	s := open(t, sessionSrc)
	if err := s.SelectLoop(1); err != nil {
		t.Fatal(err)
	}
	all := s.SelectionDeps(DepFilter{})
	if len(all) == 0 {
		t.Fatal("expected dependences in loop 1 (scalar t, s)")
	}
	onlyT := s.SelectionDeps(DepFilter{Sym: "t"})
	for _, d := range onlyT {
		if d.Sym.Name != "t" {
			t.Errorf("filter leaked %s", d.Sym.Name)
		}
	}
	if len(onlyT) == 0 {
		t.Error("expected deps on t")
	}
	// HidePrivate should hide t (privatizable) and s (reduction).
	hidden := s.SelectionDeps(DepFilter{HidePrivate: true, CarriedOnly: true})
	for _, d := range hidden {
		if d.Sym.Name == "t" || d.Sym.Name == "s" {
			t.Errorf("private/reduction dep visible: %v", d)
		}
	}
}

func TestMarkingWorkflow(t *testing.T) {
	s := open(t, sessionSrc)
	if err := s.SelectLoop(2); err != nil {
		t.Fatal(err)
	}
	deps := s.SelectionDeps(DepFilter{CarriedOnly: true, Sym: "a"})
	if len(deps) == 0 {
		t.Fatal("expected symbolic-blocked deps on a")
	}
	id := deps[0].ID
	if err := s.MarkDep(id, dep.MarkRejected); err != nil {
		t.Fatal(err)
	}
	if s.Stats.DepsRejected != 1 {
		t.Errorf("DepsRejected = %d", s.Stats.DepsRejected)
	}
	vis := s.SelectionDeps(DepFilter{HideRejected: true, CarriedOnly: true, Sym: "a"})
	for _, d := range vis {
		if d.ID == id {
			t.Error("rejected dep still visible through HideRejected")
		}
	}
}

func TestMarkProvenCannotReject(t *testing.T) {
	s := open(t, `
      program main
      integer i
      real a(100)
      do i = 2, 100
         a(i) = a(i-1)
      enddo
      end
`)
	if err := s.SelectLoop(1); err != nil {
		t.Fatal(err)
	}
	deps := s.SelectionDeps(DepFilter{CarriedOnly: true})
	var proven *dep.Dependence
	for _, d := range deps {
		if d.Mark == dep.MarkProven {
			proven = d
		}
	}
	if proven == nil {
		t.Fatal("expected a proven dep")
	}
	if err := s.MarkDep(proven.ID, dep.MarkRejected); err == nil {
		t.Error("rejecting a proven dependence must fail")
	}
}

func TestMarksSurviveReanalysis(t *testing.T) {
	s := open(t, sessionSrc)
	if err := s.SelectLoop(2); err != nil {
		t.Fatal(err)
	}
	deps := s.SelectionDeps(DepFilter{CarriedOnly: true, Sym: "a"})
	if len(deps) == 0 {
		t.Fatal("no deps")
	}
	if err := s.MarkDep(deps[0].ID, dep.MarkRejected); err != nil {
		t.Fatal(err)
	}
	key := deps[0]
	s.ReanalyzeUnit(s.CurrentUnit())
	if err := s.SelectLoop(2); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range s.SelectionDeps(DepFilter{CarriedOnly: true, Sym: "a"}) {
		if d.Class == key.Class && d.Src.Line() == key.Src.Line() && d.Dst.Line() == key.Dst.Line() && d.Level == key.Level {
			if d.Mark != dep.MarkRejected {
				t.Errorf("mark lost after reanalysis: %v", d.Mark)
			}
			found = true
		}
	}
	if !found {
		t.Error("marked dep not found after reanalysis")
	}
}

func TestAssertionEnablesParallelization(t *testing.T) {
	s := open(t, sessionSrc)
	// Loop 2 reads a(i+m) with unknown m: blocked.
	if err := s.SelectLoop(2); err != nil {
		t.Fatal(err)
	}
	l2 := s.SelectedLoop()
	v := s.Check(xform.Parallelize{Do: l2.Do})
	if v.Safe {
		t.Fatal("loop 2 should be blocked before the assertion")
	}
	if err := s.Assert("m .ge. 300"); err != nil {
		t.Fatal(err)
	}
	// Reanalysis replaced loop objects; re-select.
	if err := s.SelectLoop(2); err != nil {
		t.Fatal(err)
	}
	l2 = s.SelectedLoop()
	v = s.Check(xform.Parallelize{Do: l2.Do})
	if !v.Safe {
		t.Fatalf("after asserting m >= 300, loop 2 should parallelize: %s", v)
	}
	if s.Stats.Assertions != 1 {
		t.Errorf("Assertions = %d", s.Stats.Assertions)
	}
}

func TestAssertionParsing(t *testing.T) {
	good := []string{"n .ge. 100", "n >= 100", "m .eq. 4", "k < 10"}
	for _, g := range good {
		if _, err := parseAssertion(g); err != nil {
			t.Errorf("%q: %v", g, err)
		}
	}
	bad := []string{"n", "n .ge. x", "n ~ 3"}
	for _, b := range bad {
		if _, err := parseAssertion(b); err == nil {
			t.Errorf("%q should fail", b)
		}
	}
}

func TestTransformViaSession(t *testing.T) {
	s := open(t, sessionSrc)
	if err := s.SelectLoop(1); err != nil {
		t.Fatal(err)
	}
	do := s.SelectedLoop().Do
	v, err := s.Transform(xform.Parallelize{Do: do})
	if err != nil {
		t.Fatalf("%v (%s)", err, v)
	}
	if len(s.ParallelLoops()) != 1 {
		t.Errorf("parallel loops = %d", len(s.ParallelLoops()))
	}
	if s.Stats.Transformations["parallelize"] != 1 || s.Stats.LoopsParallelized != 1 {
		t.Errorf("stats = %+v", s.Stats)
	}
	// Printed output carries the annotation and round-trips.
	src := s.Save()
	if !strings.Contains(src, "c$par doall") {
		t.Error("saved source missing doall")
	}
	if _, err := fortran.Parse("rt.f", src); err != nil {
		t.Errorf("saved source does not reparse: %v", err)
	}
}

func TestTransformRefusedWhenUnsafe(t *testing.T) {
	s := open(t, `
      program main
      integer i
      real a(100)
      do i = 2, 100
         a(i) = a(i-1)
      enddo
      end
`)
	do := s.Loops()[0].Do
	if _, err := s.Transform(xform.Parallelize{Do: do}); err == nil {
		t.Error("unsafe transformation must be refused")
	}
	if len(s.ParallelLoops()) != 0 {
		t.Error("loop must stay serial")
	}
}

func TestUndo(t *testing.T) {
	s := open(t, sessionSrc)
	before := s.Save()
	do := s.Loops()[0].Do
	if _, err := s.Transform(xform.Parallelize{Do: do}); err != nil {
		t.Fatal(err)
	}
	if s.Save() == before {
		t.Fatal("transform did not change the program")
	}
	if err := s.Undo(); err != nil {
		t.Fatal(err)
	}
	if s.Save() != before {
		t.Error("undo did not restore the program")
	}
	if err := s.Undo(); err == nil {
		t.Error("empty undo stack should error")
	}
}

func TestEditStmtIncremental(t *testing.T) {
	s := open(t, `
      program main
      integer i
      real a(100), b(100)
      do i = 1, 100
         a(i) = b(i)
      enddo
      end
`)
	do := s.Loops()[0].Do
	asg := do.Body[0]
	// Introduce a recurrence by editing.
	if err := s.EditStmt(asg.ID(), "a(i) = a(i-1) + b(i)"); err != nil {
		t.Fatal(err)
	}
	do = s.Loops()[0].Do
	v := s.Check(xform.Parallelize{Do: do})
	if v.Safe {
		t.Error("after the edit the loop must not parallelize")
	}
	// Edit back.
	if err := s.EditStmt(do.Body[0].ID(), "a(i) = b(i)"); err != nil {
		t.Fatal(err)
	}
	do = s.Loops()[0].Do
	if v := s.Check(xform.Parallelize{Do: do}); !v.Safe {
		t.Errorf("after reverting the edit the loop should parallelize: %s", v)
	}
	if s.Stats.Edits != 2 {
		t.Errorf("Edits = %d", s.Stats.Edits)
	}
}

func TestEditStmtParseError(t *testing.T) {
	s := open(t, sessionSrc)
	asg := s.Loops()[0].Do.Body[0]
	if err := s.EditStmt(asg.ID(), "a(i = "); err == nil {
		t.Error("bad edit text must be rejected")
	}
}

func TestDeleteStmt(t *testing.T) {
	s := open(t, sessionSrc)
	do := s.Loops()[0].Do
	n := len(do.Body)
	if err := s.DeleteStmt(do.Body[n-1].ID()); err != nil {
		t.Fatal(err)
	}
	if got := len(s.Loops()[0].Do.Body); got != n-1 {
		t.Errorf("body = %d stmts, want %d", got, n-1)
	}
}

func TestVariablePane(t *testing.T) {
	s := open(t, sessionSrc)
	if err := s.SelectLoop(1); err != nil {
		t.Fatal(err)
	}
	rows := s.VariablePane()
	byName := map[string]VarInfo{}
	for _, r := range rows {
		byName[r.Sym.Name] = r
	}
	if byName["i"].Class != ClassInduction {
		t.Errorf("i class = %v", byName["i"].Class)
	}
	if byName["t"].Class != ClassPrivate {
		t.Errorf("t class = %v", byName["t"].Class)
	}
	if byName["s"].Class != ClassReduction {
		t.Errorf("s class = %v", byName["s"].Class)
	}
	if byName["a"].Class != ClassShared {
		t.Errorf("a class = %v", byName["a"].Class)
	}
}

func TestClassifyOverride(t *testing.T) {
	s := open(t, sessionSrc)
	if err := s.SelectLoop(1); err != nil {
		t.Fatal(err)
	}
	if err := s.Classify("a", ClassPrivate); err != nil {
		t.Fatal(err)
	}
	rows := s.VariablePane()
	for _, r := range rows {
		if r.Sym.Name == "a" && r.Class != ClassPrivate {
			t.Errorf("override ignored: %v", r.Class)
		}
	}
	if s.Stats.Reclassifications != 1 {
		t.Errorf("Reclassifications = %d", s.Stats.Reclassifications)
	}
}

func TestNextByPerformance(t *testing.T) {
	s := open(t, `
      program main
      integer i, j
      real a(5000), b(10)
      do j = 1, 10
         b(j) = 0.0
      enddo
      do i = 1, 5000
         a(i) = a(i) + 1.0
      enddo
      end
`)
	l, ok := s.NextByPerformance()
	if !ok {
		t.Fatal("no navigation target")
	}
	if l.Header().Name != "i" {
		t.Errorf("navigated to %s, want the big i loop", l.Header().Name)
	}
}

func TestAutoParallelize(t *testing.T) {
	s := open(t, `
      program main
      integer i, j
      real a(100,100), c(100)
      do i = 1, 100
         do j = 1, 100
            a(i,j) = 1.0
         enddo
      enddo
      do i = 2, 100
         c(i) = c(i-1)
      enddo
      end
`)
	n := s.AutoParallelize()
	if n != 1 {
		t.Errorf("parallelized %d loops, want 1 (outer nest only; recurrence blocked)", n)
	}
	par := s.ParallelLoops()
	if len(par) != 1 || par[0].Var.Name != "i" {
		t.Errorf("parallel = %v", par)
	}
}

func TestInterproceduralSession(t *testing.T) {
	s := open(t, `
      program main
      integer i
      real a(100)
      do i = 1, 100
         call f(a, i)
      enddo
      end
      subroutine f(x, k)
      integer k
      real x(100)
      x(k) = 1.0
      end
`)
	do := s.Loops()[0].Do
	v := s.Check(xform.Parallelize{Do: do})
	if !v.Safe {
		t.Errorf("regular sections should make the call loop parallel: %s", v)
	}
	// Ablation: without sections it must be blocked.
	s.Opts.UseSections = false
	s.AnalyzeAll()
	do = s.Loops()[0].Do
	if v := s.Check(xform.Parallelize{Do: do}); v.Safe {
		t.Error("without section analysis the call loop must be blocked")
	}
}

func TestHistoryTranscript(t *testing.T) {
	s := open(t, sessionSrc)
	if err := s.SelectLoop(1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Transform(xform.Parallelize{Do: s.SelectedLoop().Do}); err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(s.History, "\n")
	if !strings.Contains(joined, "select loop 1") || !strings.Contains(joined, "apply parallelize") {
		t.Errorf("history = %q", joined)
	}
}
