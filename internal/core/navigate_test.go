package core

import (
	"testing"

	"parascope/internal/dep"
)

func TestDepEndpointsIntoCallee(t *testing.T) {
	s := open(t, `
      program main
      integer i
      real a(100)
      do i = 1, 100
         a(i) = a(i) + 1.0
         call touch(a)
      enddo
      end
      subroutine touch(x)
      real x(100)
      x(50) = x(50)*2.0
      end
`)
	if err := s.SelectLoop(1); err != nil {
		t.Fatal(err)
	}
	deps := s.SelectionDeps(DepFilter{CarriedOnly: true, Sym: "a"})
	if len(deps) == 0 {
		t.Fatal("expected carried deps through the call")
	}
	// Find a dep with a call endpoint.
	var found bool
	for _, d := range deps {
		src, dst, err := s.DepEndpoints(d.ID)
		if err != nil {
			t.Fatal(err)
		}
		for _, ep := range []Endpoint{src, dst} {
			if len(ep.CalleeRefs) > 0 {
				found = true
				cr := ep.CalleeRefs[0]
				if cr.Unit.Name != "touch" {
					t.Errorf("callee ref unit = %s", cr.Unit.Name)
				}
				if cr.Text == "" || cr.Line == 0 {
					t.Errorf("callee ref incomplete: %+v", cr)
				}
			}
		}
	}
	if !found {
		t.Error("no endpoint resolved into the callee")
	}
}

func TestDepEndpointsCommon(t *testing.T) {
	s := open(t, `
      program main
      integer i
      real g(100)
      common /blk/ g
      do i = 1, 100
         g(i) = 1.0
         call bump
      enddo
      end
      subroutine bump
      real g(100)
      common /blk/ g
      g(1) = g(1) + 1.0
      end
`)
	if err := s.SelectLoop(1); err != nil {
		t.Fatal(err)
	}
	deps := s.SelectionDeps(DepFilter{Sym: "g", CarriedOnly: true})
	if len(deps) == 0 {
		t.Fatal("expected deps on the common array")
	}
	anyCallee := false
	for _, d := range deps {
		src, dst, err := s.DepEndpoints(d.ID)
		if err != nil {
			t.Fatal(err)
		}
		if len(src.CalleeRefs)+len(dst.CalleeRefs) > 0 {
			anyCallee = true
		}
	}
	if !anyCallee {
		t.Error("common-block endpoint not followed into bump")
	}
}

func TestDepEndpointsBadID(t *testing.T) {
	s := open(t, sessionSrc)
	if _, _, err := s.DepEndpoints(99999); err == nil {
		t.Error("bad id must error")
	}
	_ = dep.MarkPending
}
