// Parallel per-unit analysis driver and the content-hash key used by
// the analysis cache in internal/server. Program units are
// independent once the interprocedural summaries are built: the
// per-unit pass only reads the shared Program, the pre-warmed perf
// estimator, and its own unit's AST, so units fan out safely across a
// bounded worker pool.
package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"runtime"
	"sync"

	"parascope/internal/dep"
	"parascope/internal/fortran"
)

// analyzeUnits runs analyzeUnit over every unit, concurrently when
// more than one worker is available. old carries the previous states
// so user marks, assertions and classifications survive reanalysis.
func (s *Session) analyzeUnits(units []*fortran.Unit, old map[*fortran.Unit]*UnitState) map[*fortran.Unit]*UnitState {
	out := make(map[*fortran.Unit]*UnitState, len(units))
	workers := s.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(units) {
		workers = len(units)
	}
	if workers <= 1 {
		for _, u := range units {
			out[u] = s.analyzeUnit(u, old[u])
		}
		return out
	}
	results := make([]*UnitState, len(units))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = s.analyzeUnit(units[i], old[units[i]])
			}
		}()
	}
	for i := range units {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for i, u := range units {
		out[u] = results[i]
	}
	return out
}

// OpenWorkers parses src and builds a session whose whole-program
// analysis fan-out is capped at workers goroutines (0 = GOMAXPROCS) —
// the entry point the pedd server uses so a daemon hosting many
// sessions can bound its per-open analysis parallelism.
func OpenWorkers(path, src string, workers int) (*Session, error) {
	f, err := fortran.Parse(path, src)
	if err != nil {
		return nil, err
	}
	return newSession(f, workers), nil
}

// AnalysisKey returns a stable content-hash key for the analysis of
// (path, src) under the given options — the cache key used by the
// pedd server: identical inputs produce identical analysis artifacts,
// so a key hit can skip the parse and reanalysis entirely.
func AnalysisKey(path, src string, opts dep.Options, conservative bool) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%s\x00%+v\x00%t", path, src, opts, conservative)
	return hex.EncodeToString(h.Sum(nil))
}
