// Parallel per-unit analysis driver and the content-hash key used by
// the analysis cache in internal/server. Program units are
// independent once the interprocedural summaries are built: the
// per-unit pass only reads the shared Program, the pre-warmed perf
// estimator, and its own unit's AST, so units fan out safely across a
// bounded worker pool.
package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"parascope/internal/dep"
	"parascope/internal/faultpoint"
	"parascope/internal/fortran"
)

// PhaseObserver receives the wall time of each analysis phase. The
// phases reported are "parse", "interproc", "dataflow", "dependence",
// "perf", and "patch" (the statement-granular reanalysis fast path,
// reported as one phase since it splices all three analyses at once);
// the per-unit phases fan out on the analysis worker pool, so
// implementations must be safe for concurrent use. A nil observer
// costs a single pointer check per phase.
type PhaseObserver interface {
	ObservePhase(phase string, d time.Duration)
}

// analyzeUnits runs analyzeUnit over every unit, concurrently when
// more than one worker is available. old carries the previous states
// so user marks, assertions and classifications survive reanalysis.
func (s *Session) analyzeUnits(units []*fortran.Unit, old map[*fortran.Unit]*UnitState) map[*fortran.Unit]*UnitState {
	out := make(map[*fortran.Unit]*UnitState, len(units))
	workers := s.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(units) {
		workers = len(units)
	}
	// When whole units fan out across the pool, dependence testing
	// stays serial inside each unit; with a single unit in hand the
	// parallelism budget moves down into subscript-test sharding.
	depWorkers := 1
	if len(units) == 1 {
		depWorkers = s.depWorkerCount()
	}
	if workers <= 1 {
		for _, u := range units {
			out[u] = s.analyzeUnit(u, old[u], depWorkers)
		}
		return out
	}
	results := make([]*UnitState, len(units))
	idx := make(chan int)
	var wg sync.WaitGroup
	var panicMu sync.Mutex
	var firstPanic *unitPanic
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				// A panic in one unit's analysis must not take down
				// the process (the pool runs on daemon goroutines,
				// where an escaped panic is unrecoverable): capture
				// it here, let the other units finish, and rethrow
				// on the calling goroutine so the caller's recovery
				// boundary — the server's session actor — sees it.
				func(i int) {
					defer func() {
						if r := recover(); r != nil {
							panicMu.Lock()
							if firstPanic == nil {
								firstPanic = &unitPanic{unit: units[i].Name, val: r, stack: debug.Stack()}
							}
							panicMu.Unlock()
						}
					}()
					results[i] = s.analyzeUnit(units[i], old[units[i]], depWorkers)
				}(i)
			}
		}()
	}
	for i := range units {
		idx <- i
	}
	close(idx)
	wg.Wait()
	if firstPanic != nil {
		panic(fmt.Sprintf("analysis of unit %s panicked: %v\nworker stack:\n%s",
			firstPanic.unit, firstPanic.val, firstPanic.stack))
	}
	for i, u := range units {
		out[u] = results[i]
	}
	return out
}

// depWorkerCount bounds subscript-test sharding when a single unit is
// analyzed on its own (the incremental path): the same Workers budget
// that fans units out during AnalyzeAll.
func (s *Session) depWorkerCount() int {
	if s.Workers > 0 {
		return s.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// unitPanic carries a panic out of an analysis worker goroutine so it
// can be rethrown where the caller can recover it.
type unitPanic struct {
	unit  string
	val   interface{}
	stack []byte
}

// OpenWorkers parses src and builds a session whose whole-program
// analysis fan-out is capped at workers goroutines (0 = GOMAXPROCS) —
// the entry point the pedd server uses so a daemon hosting many
// sessions can bound its per-open analysis parallelism.
func OpenWorkers(path, src string, workers int) (*Session, error) {
	return OpenObserved(path, src, workers, nil)
}

// OpenObserved is OpenWorkers with per-phase timing: obs (when
// non-nil) receives the wall time of the parse and of every analysis
// phase of the initial whole-program analysis, and stays attached to
// the session so reanalysis after edits is timed too.
func OpenObserved(path, src string, workers int, obs PhaseObserver) (*Session, error) {
	if err := faultpoint.Hit(faultpoint.Parse, path); err != nil {
		return nil, err
	}
	start := time.Now()
	f, err := fortran.Parse(path, src)
	if err != nil {
		return nil, err
	}
	if obs != nil {
		obs.ObservePhase("parse", time.Since(start))
	}
	return newSession(f, workers, obs), nil
}

// AnalysisKey returns a stable content-hash key for the analysis of
// (path, src) under the given options — the cache key used by the
// pedd server: identical inputs produce identical analysis artifacts,
// so a key hit can skip the parse and reanalysis entirely.
func AnalysisKey(path, src string, opts dep.Options, conservative bool) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%s\x00%+v\x00%t", path, src, opts, conservative)
	return hex.EncodeToString(h.Sum(nil))
}
