package core

import (
	"fmt"
	"strconv"
	"strings"

	"parascope/internal/fortran"
	"parascope/internal/xform"
)

// ParseTransformation resolves the editor's transformation grammar —
// a transformation name followed by loop ordinals (1-based, source
// order in the current unit), factors, and variable names — into a
// ready xform.Transformation bound to the session's current AST.
// This is the single grammar shared by the REPL's check/apply verbs,
// journal replay, and the speculative planner, so a step recorded in
// one context replays identically in every other.
func ParseTransformation(s *Session, args []string) (xform.Transformation, error) {
	if len(args) == 0 {
		return nil, fmt.Errorf("usage: apply <transformation> <loop> [args]")
	}
	name := strings.ToLower(args[0])
	rest := args[1:]
	switch name {
	case "parallelize":
		do, err := loopArg(s, rest, 0)
		if err != nil {
			return nil, err
		}
		return xform.Parallelize{Do: do}, nil
	case "serialize":
		do, err := loopArg(s, rest, 0)
		if err != nil {
			return nil, err
		}
		return xform.Serialize{Do: do}, nil
	case "interchange":
		do, err := loopArg(s, rest, 0)
		if err != nil {
			return nil, err
		}
		return xform.Interchange{Outer: do}, nil
	case "reverse":
		do, err := loopArg(s, rest, 0)
		if err != nil {
			return nil, err
		}
		return xform.Reverse{Do: do}, nil
	case "distribute":
		do, err := loopArg(s, rest, 0)
		if err != nil {
			return nil, err
		}
		return xform.Distribute{Do: do}, nil
	case "fuse":
		first, err := loopArg(s, rest, 0)
		if err != nil {
			return nil, err
		}
		second, err := loopArg(s, rest, 1)
		if err != nil {
			return nil, err
		}
		return xform.Fuse{First: first, Second: second}, nil
	case "skew":
		do, err := loopArg(s, rest, 0)
		if err != nil {
			return nil, err
		}
		f, err := intArg(rest, 1, "skew factor")
		if err != nil {
			return nil, err
		}
		return xform.Skew{Outer: do, Factor: int64(f)}, nil
	case "stripmine", "strip-mine":
		do, err := loopArg(s, rest, 0)
		if err != nil {
			return nil, err
		}
		size, err := intArg(rest, 1, "strip size")
		if err != nil {
			return nil, err
		}
		return xform.StripMine{Do: do, Size: int64(size)}, nil
	case "unroll":
		do, err := loopArg(s, rest, 0)
		if err != nil {
			return nil, err
		}
		f, err := intArg(rest, 1, "unroll factor")
		if err != nil {
			return nil, err
		}
		return xform.Unroll{Do: do, Factor: int64(f)}, nil
	case "peel":
		do, err := loopArg(s, rest, 0)
		if err != nil {
			return nil, err
		}
		return xform.Peel{Do: do}, nil
	case "privatize":
		do, err := loopArg(s, rest, 0)
		if err != nil {
			return nil, err
		}
		sym, err := varArg(s, rest, 1)
		if err != nil {
			return nil, err
		}
		return xform.Privatize{Do: do, Sym: sym}, nil
	case "privatizearray", "privatize-array":
		do, err := loopArg(s, rest, 0)
		if err != nil {
			return nil, err
		}
		sym, err := varArg(s, rest, 1)
		if err != nil {
			return nil, err
		}
		return xform.PrivatizeArray{Do: do, Sym: sym}, nil
	case "expand":
		do, err := loopArg(s, rest, 0)
		if err != nil {
			return nil, err
		}
		sym, err := varArg(s, rest, 1)
		if err != nil {
			return nil, err
		}
		return xform.ScalarExpand{Do: do, Sym: sym}, nil
	case "reductions":
		do, err := loopArg(s, rest, 0)
		if err != nil {
			return nil, err
		}
		return xform.RecognizeReductions{Do: do}, nil
	case "normalize":
		do, err := loopArg(s, rest, 0)
		if err != nil {
			return nil, err
		}
		return xform.Normalize{Do: do}, nil
	case "unrolljam", "unroll-and-jam":
		do, err := loopArg(s, rest, 0)
		if err != nil {
			return nil, err
		}
		f, err := intArg(rest, 1, "unroll factor")
		if err != nil {
			return nil, err
		}
		return xform.UnrollJam{Outer: do, Factor: int64(f)}, nil
	case "inline":
		id, err := intArg(rest, 0, "statement id")
		if err != nil {
			return nil, err
		}
		st := s.File.StmtByID(id)
		call, ok := st.(*fortran.CallStmt)
		if !ok {
			return nil, fmt.Errorf("statement %d is not a CALL", id)
		}
		return xform.Inline{Call: call}, nil
	}
	return nil, fmt.Errorf("unknown transformation %q", name)
}

func intArg(args []string, i int, what string) (int, error) {
	if i >= len(args) {
		return 0, fmt.Errorf("missing %s", what)
	}
	n, err := strconv.Atoi(args[i])
	if err != nil {
		return 0, fmt.Errorf("bad %s %q", what, args[i])
	}
	return n, nil
}

// loopArg resolves a 1-based loop ordinal to its DO statement.
func loopArg(s *Session, args []string, i int) (*fortran.DoStmt, error) {
	n, err := intArg(args, i, "loop number")
	if err != nil {
		return nil, err
	}
	loops := s.Loops()
	if n < 1 || n > len(loops) {
		return nil, fmt.Errorf("loop %d out of range (1..%d)", n, len(loops))
	}
	return loops[n-1].Do, nil
}

func varArg(s *Session, args []string, i int) (*fortran.Symbol, error) {
	if i >= len(args) {
		return nil, fmt.Errorf("missing variable name")
	}
	sym := s.CurrentUnit().Lookup(strings.ToLower(args[i]))
	if sym == nil {
		return nil, fmt.Errorf("no variable %q", args[i])
	}
	return sym, nil
}
