package core

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"time"

	"parascope/internal/codegen"
	"parascope/internal/interp"
)

// Execution backends. BackendInterp runs the session's program under
// the simulating interpreter; BackendCompile lowers it to Go, builds
// a native binary into the pedc cache, and executes that. Both
// produce byte-identical output for every program the code generator
// accepts.
const (
	BackendInterp  = "interp"
	BackendCompile = "compile"
)

// Backends lists the valid ExecRequest.Backend values.
func Backends() []string { return []string{BackendInterp, BackendCompile} }

// ExecRequest selects how to execute a session's current program.
// The zero value means: interpret, one DOALL worker, no READ input,
// no timeout.
type ExecRequest struct {
	// Backend is BackendInterp or BackendCompile; empty means interp.
	Backend string
	// Workers bounds the goroutines a DOALL loop fans out to; values
	// below one mean one.
	Workers int
	// Input supplies the values list-directed READ statements consume.
	Input []float64
	// Timeout aborts the run when positive.
	Timeout time.Duration
	// CacheDir overrides the compile backend's build cache location
	// (tests); empty means the per-user default.
	CacheDir string
}

// ExecResult is one execution's outcome, uniform across backends.
type ExecResult struct {
	// Output is the captured list-directed PRINT output.
	Output string
	// Wall is the execution's wall-clock duration. For the compile
	// backend it covers only the run, not the (cached) build.
	Wall time.Duration
	// SimCycles is the interpreter's simulated parallel cycle count;
	// zero for the compile backend, which reports real time instead.
	SimCycles int64
	// Backend records which backend actually ran.
	Backend string
}

// Exec runs the session's current program under the requested
// backend. The compile backend declines programs it cannot lower
// exactly (codegen.IsDeclined distinguishes that from build or
// runtime failure); the interpreter accepts everything.
func (s *Session) Exec(req ExecRequest) (ExecResult, error) {
	backend := req.Backend
	if backend == "" {
		backend = BackendInterp
	}
	workers := req.Workers
	if workers < 1 {
		workers = 1
	}
	switch backend {
	case BackendInterp:
		type done struct {
			out    string
			cycles int64
			err    error
		}
		start := time.Now()
		if req.Timeout <= 0 {
			out, cycles, err := interp.RunCaptureSim(s.File, workers, req.Input)
			if err != nil {
				return ExecResult{}, err
			}
			return ExecResult{Output: out, Wall: time.Since(start), SimCycles: cycles, Backend: backend}, nil
		}
		ch := make(chan done, 1)
		go func() {
			out, cycles, err := interp.RunCaptureSim(s.File, workers, req.Input)
			ch <- done{out, cycles, err}
		}()
		select {
		case d := <-ch:
			if d.err != nil {
				return ExecResult{}, d.err
			}
			return ExecResult{Output: d.out, Wall: time.Since(start), SimCycles: d.cycles, Backend: backend}, nil
		case <-time.After(req.Timeout):
			return ExecResult{}, fmt.Errorf("interp: run timed out after %s", req.Timeout)
		}
	case BackendCompile:
		ctx := context.Background()
		if req.Timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, req.Timeout)
			defer cancel()
		}
		art, err := codegen.Build(s.File, req.CacheDir)
		if err != nil {
			return ExecResult{}, err
		}
		res, err := codegen.Run(ctx, art, workers, req.Input)
		if err != nil {
			return ExecResult{}, err
		}
		return ExecResult{Output: res.Output, Wall: res.Wall, Backend: backend}, nil
	default:
		return ExecResult{}, fmt.Errorf("unknown backend %q (want %s)", backend, strings.Join(Backends(), " or "))
	}
}

// ParseExecRequest parses the argument list of the `run` verb:
//
//	run [workers] [backend=interp|compile]
//
// in either order. It leaves Input and Timeout at their zero values
// for the caller to fill.
func ParseExecRequest(args []string) (ExecRequest, error) {
	req := ExecRequest{Workers: 1}
	seenWorkers := false
	for _, a := range args {
		if v, ok := strings.CutPrefix(a, "backend="); ok {
			if req.Backend != "" {
				return req, fmt.Errorf("duplicate backend argument %q", a)
			}
			if v != BackendInterp && v != BackendCompile {
				return req, fmt.Errorf("unknown backend %q (want %s)", v, strings.Join(Backends(), " or "))
			}
			req.Backend = v
			continue
		}
		w, err := strconv.Atoi(a)
		if err != nil || seenWorkers {
			return req, fmt.Errorf("usage: run [workers] [backend=interp|compile], got %q", a)
		}
		if w < 1 {
			return req, fmt.Errorf("worker count must be at least 1, got %d", w)
		}
		req.Workers = w
		seenWorkers = true
	}
	return req, nil
}
