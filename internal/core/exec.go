package core

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"time"

	"parascope/internal/codegen"
	"parascope/internal/execguard"
	"parascope/internal/interp"
)

// Execution backends. BackendInterp runs the session's program under
// the simulating interpreter; BackendCompile lowers it to Go, builds
// a native binary into the pedc cache, and executes that. Both
// produce byte-identical output for every program the code generator
// accepts.
const (
	BackendInterp  = "interp"
	BackendCompile = "compile"
)

// Backends lists the valid ExecRequest.Backend values.
func Backends() []string { return []string{BackendInterp, BackendCompile} }

// ExecRequest selects how to execute a session's current program.
// The zero value means: interpret, one DOALL worker, no READ input,
// governor-default limits.
type ExecRequest struct {
	// Backend is BackendInterp or BackendCompile; empty means interp.
	Backend string
	// Workers bounds the goroutines a DOALL loop fans out to; values
	// below one mean one.
	Workers int
	// Input supplies the values list-directed READ statements consume.
	Input []float64
	// Timeout overrides the governor's wall budget when positive.
	Timeout time.Duration
	// CacheDir overrides the compile backend's build cache location
	// (tests); empty means the per-user default.
	CacheDir string
	// Fallback routes a compile decline or build failure to the
	// interpreter instead of failing, with the reason surfaced in
	// ExecResult.FallbackReason. Run-time failures never fall back —
	// the program already started, rerunning it could double side
	// effects and hide real bugs.
	Fallback bool
	// Gov supplies the resource governor (limits, slots, telemetry);
	// nil means default limits, unbounded admission, no telemetry.
	Gov *execguard.Governor
}

// ExecResult is one execution's outcome, uniform across backends.
type ExecResult struct {
	// Output is the captured list-directed PRINT output.
	Output string
	// Wall is the execution's wall-clock duration. For the compile
	// backend it covers only the run, not the (cached) build.
	Wall time.Duration
	// SimCycles is the interpreter's simulated parallel cycle count;
	// zero for the compile backend, which reports real time instead.
	SimCycles int64
	// Backend records which backend actually ran.
	Backend string
	// FallbackReason is set when Fallback rerouted a compile request
	// to the interpreter; it carries the decline/build error text.
	FallbackReason string
}

// Exec runs the session's current program under the requested backend,
// governed end to end: an execution slot is acquired (ErrBusy when the
// daemon is saturated), the run is bounded by the governor's wall
// timeout and output caps, and compiled binaries additionally get
// process-group kill plus the RSS watchdog. The compile backend
// declines programs it cannot lower exactly (codegen.IsDeclined
// distinguishes that from build or runtime failure); with Fallback set
// those degrade to the interpreter. ctx cancellation aborts the run.
func (s *Session) Exec(ctx context.Context, req ExecRequest) (ExecResult, error) {
	backend := req.Backend
	if backend == "" {
		backend = BackendInterp
	}
	workers := req.Workers
	if workers < 1 {
		workers = 1
	}
	if backend != BackendInterp && backend != BackendCompile {
		return ExecResult{}, fmt.Errorf("unknown backend %q (want %s)", backend, strings.Join(Backends(), " or "))
	}

	gov := req.Gov
	if req.Timeout > 0 {
		gov = gov.With(execguard.Limits{Timeout: req.Timeout})
	}
	release, err := gov.Acquire()
	if err != nil {
		return ExecResult{}, err
	}
	defer release()

	start := time.Now()
	res, err := s.execOn(ctx, backend, workers, req, gov)
	label := res.Backend
	if label == "" {
		label = backend
	}
	gov.Event("exec_run", label)
	gov.Timing("exec_run", label, time.Since(start))
	if err != nil {
		if execguard.IsKill(err) {
			gov.Event("exec_timeout", label)
		} else {
			gov.Event("exec_fail", label)
		}
	}
	return res, err
}

// execOn dispatches to one backend, applying the fallback policy.
func (s *Session) execOn(ctx context.Context, backend string, workers int, req ExecRequest, gov *execguard.Governor) (ExecResult, error) {
	if backend == BackendInterp {
		return s.runInterp(ctx, workers, req.Input, gov)
	}
	art, err := codegen.Build(ctx, s.File, req.CacheDir, gov)
	if err != nil {
		if req.Fallback && ctx.Err() == nil {
			gov.Event("exec_fallback", "")
			res, ierr := s.runInterp(ctx, workers, req.Input, gov)
			res.FallbackReason = err.Error()
			return res, ierr
		}
		return ExecResult{}, err
	}
	rr, err := codegen.Run(ctx, art, workers, req.Input, gov)
	if err != nil {
		return ExecResult{Backend: BackendCompile}, err
	}
	return ExecResult{Output: rr.Output, Wall: rr.Wall, Backend: BackendCompile}, nil
}

// runInterp executes under the in-process interpreter with the same
// governed bounds as a subprocess: output flows through a byte-capped
// writer and a watchdog cancels the machine cooperatively at the wall
// deadline — the run goroutine observes the cancel at its next loop
// iteration and exits, so a timed-out run leaks nothing.
func (s *Session) runInterp(ctx context.Context, workers int, input []float64, gov *execguard.Governor) (ExecResult, error) {
	lim := gov.RunLimits()
	out := execguard.NewLimitWriter(lim.OutputBytes)
	m := interp.New(s.File)
	m.Out = out
	m.Workers = workers
	m.Input = input
	m.StmtLimit = 500_000_000

	start := time.Now()
	done := make(chan error, 1)
	go func() { done <- m.Run() }()

	var deadline <-chan time.Time
	if lim.Timeout > 0 {
		t := time.NewTimer(lim.Timeout)
		defer t.Stop()
		deadline = t.C
	}
	var err error
	select {
	case err = <-done:
	case <-deadline:
		gov.Event("exec_kill", execguard.KillDeadline)
		m.Cancel(execguard.TimeoutError(lim.Timeout))
		err = <-done
	case <-ctx.Done():
		gov.Event("exec_kill", execguard.KillCtx)
		m.Cancel(fmt.Errorf("interp: run cancelled: %w", ctx.Err()))
		err = <-done
	}
	res := ExecResult{Output: out.String(), Wall: time.Since(start), SimCycles: m.SimCycles, Backend: BackendInterp}
	if err != nil {
		if out.Tripped() {
			// The machine stopped because its PRINT hit the cap;
			// surface the typed limit error, not the raw write error.
			gov.Event("exec_kill", execguard.KillOutput)
			return res, out.Err()
		}
		return res, err
	}
	return res, nil
}

// ParseExecRequest parses the argument list of the `run` verb:
//
//	run [workers] [backend=interp|compile] [fallback]
//
// in any order. It leaves Input, Timeout, and Gov at their zero
// values for the caller to fill.
func ParseExecRequest(args []string) (ExecRequest, error) {
	req := ExecRequest{Workers: 1}
	seenWorkers := false
	for _, a := range args {
		if v, ok := strings.CutPrefix(a, "backend="); ok {
			if req.Backend != "" {
				return req, fmt.Errorf("duplicate backend argument %q", a)
			}
			if v != BackendInterp && v != BackendCompile {
				return req, fmt.Errorf("unknown backend %q (want %s)", v, strings.Join(Backends(), " or "))
			}
			req.Backend = v
			continue
		}
		if a == "fallback" {
			req.Fallback = true
			continue
		}
		w, err := strconv.Atoi(a)
		if err != nil || seenWorkers {
			return req, fmt.Errorf("usage: run [workers] [backend=interp|compile] [fallback], got %q", a)
		}
		if w < 1 {
			return req, fmt.Errorf("worker count must be at least 1, got %d", w)
		}
		req.Workers = w
		seenWorkers = true
	}
	return req, nil
}
