package server

import (
	"crypto/rand"
	"encoding/hex"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync/atomic"
	"time"
)

// This file is the daemon's observability surface: every pedd_ metric
// family, registered on the generic Registry in registry.go, plus the
// ops handler that mounts /metrics next to net/http/pprof. Armed or
// not, every record is a handful of atomic operations — cheap enough
// to leave on in the serving hot path.
//
// Conventions (documented in DESIGN.md "Observability"):
//
//   - every metric is prefixed pedd_ (the gateway's are pedgw_);
//   - durations are histograms in seconds with the shared timeBuckets
//     schedule;
//   - label cardinality is bounded by construction: routes are mux
//     patterns (not raw URLs), status codes are collapsed to classes
//     ("2xx".."5xx"), and nothing is ever labeled by session ID.

// timeBuckets is the shared histogram schedule for durations, in
// seconds: 100µs to ~10s, roughly ×2.5 per step. Interactive-tool
// latencies (the paper's sub-second budget) land mid-scale.
var timeBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// TimeBuckets exposes the shared duration-bucket schedule so sibling
// registries (the gateway's) use the same histogram shape.
func TimeBuckets() []float64 {
	out := make([]float64, len(timeBuckets))
	copy(out, timeBuckets)
	return out
}

// Metrics is the daemon's metric registry. One instance is shared by
// the Manager, its sessions, the analysis cache, and the HTTP layer;
// render it with WriteProm or serve it via Handler / OpsHandler.
type Metrics struct {
	*Registry

	// HTTP layer.
	HTTPRequests *CounterVec   // route, method, code (status class)
	HTTPLatency  *HistogramVec // route
	HTTPInflight *Gauge

	// Session lifecycle.
	SessionsLive        *Gauge
	SessionsQuarantined *Gauge
	SessionsReadOnly    *Gauge
	SessionsOpened      *Counter
	SessionsClosed      *Counter
	SessionsEvicted     *Counter

	// Actor queues.
	QueueDepth   *Gauge
	QueueWait    *Histogram
	ActorService *Histogram

	// Analysis cache.
	CacheHits        *Counter
	CacheMisses      *Counter
	CacheEvictions   *Counter
	Materializations *Counter

	// Durability: journal I/O and crash recovery.
	JournalAppend         *Histogram
	JournalFsync          *Histogram
	JournalBytes          *Counter
	JournalSnapshots      *Counter
	RecoveriesTotal       *Counter
	RecoveriesTruncated   *Counter
	RecoveriesQuarantined *Counter

	// Cluster: session migration between pedd nodes.
	MigrationsOut      *Counter
	MigrationsOutBytes *Counter
	MigrationsFailed   *Counter
	SessionsImported   *Counter
	ImportsRejected    *Counter
	SessionsMigrating  *Gauge

	// Per-phase analysis timings (phase = parse, interproc, dataflow,
	// dependence, perf), fed through core's PhaseObserver hook.
	AnalysisPhase *HistogramVec // phase

	// Speculative planner: world lifecycle counters, the live-worlds
	// gauge, and search latency. Deliberately unlabeled — plan volume
	// is per-daemon, never per-session (session IDs are unbounded).
	PlannerWorldsForked    *Counter
	PlannerWorldsScored    *Counter
	PlannerWorldsDiscarded *Counter
	PlannerWorldsAccepted  *Counter
	PlannerWorldsLive      *Gauge
	PlannerSearch          *Histogram

	// Governed execution: per-backend run counts and latencies, typed
	// failure counters, governor kills by bounded reason, and the
	// build pipeline behind the compile backend. Fed through
	// execguard.Sink so execguard/codegen/core never import server.
	ExecRuns      *CounterVec   // backend (interp, compile)
	ExecFailures  *CounterVec   // backend
	ExecLatency   *HistogramVec // backend
	ExecTimeouts  *CounterVec   // backend
	ExecKills     *CounterVec   // reason (deadline, output, rss, ctx)
	ExecFallbacks *Counter
	ExecRejected  *Counter
	ExecInflight  *Gauge

	BuildsTotal         *Counter
	BuildFailures       *Counter
	BuildLatency        *Histogram
	BuildCacheHits      *Counter
	BuildDedups         *Counter
	BuildVerifyFailures *Counter
	BuildJanitorEvicted *Counter
}

// NewMetrics builds a registry with every pedd metric registered.
func NewMetrics() *Metrics {
	m := &Metrics{Registry: NewRegistry()}
	m.HTTPRequests = m.CounterVec("pedd_http_requests_total",
		"HTTP requests by mux route, method, and status class.", "route", "method", "code")
	m.HTTPLatency = m.HistogramVec("pedd_http_request_seconds",
		"End-to-end HTTP request latency by mux route.", timeBuckets, "route")
	m.HTTPInflight = m.Gauge("pedd_http_inflight",
		"HTTP requests currently being served.")
	m.SessionsLive = m.Gauge("pedd_sessions_live",
		"Sessions currently registered (including quarantined ones).")
	m.SessionsQuarantined = m.Gauge("pedd_sessions_quarantined",
		"Live sessions quarantined after a panic.")
	m.SessionsReadOnly = m.Gauge("pedd_sessions_readonly",
		"Live sessions degraded to read-only after a journal I/O failure.")
	m.SessionsOpened = m.Counter("pedd_sessions_opened_total",
		"Sessions successfully opened since start.")
	m.SessionsClosed = m.Counter("pedd_sessions_closed_total",
		"Sessions closed by request or shutdown since start.")
	m.SessionsEvicted = m.Counter("pedd_sessions_evicted_total",
		"Sessions evicted by the idle-TTL janitor since start.")
	m.QueueDepth = m.Gauge("pedd_session_queue_depth",
		"Commands queued on session actors, summed over sessions.")
	m.QueueWait = m.Histogram("pedd_session_queue_wait_seconds",
		"Time commands spent queued before their session actor ran them.", timeBuckets)
	m.ActorService = m.Histogram("pedd_actor_service_seconds",
		"Time session actors spent executing commands.", timeBuckets)
	m.CacheHits = m.Counter("pedd_cache_hits_total",
		"Analysis cache hits.")
	m.CacheMisses = m.Counter("pedd_cache_misses_total",
		"Analysis cache misses.")
	m.CacheEvictions = m.Counter("pedd_cache_evictions_total",
		"Artifacts evicted from the analysis cache by LRU pressure.")
	m.Materializations = m.Counter("pedd_cache_materializations_total",
		"Artifact-backed sessions materialized into live sessions.")
	m.JournalAppend = m.Histogram("pedd_journal_append_seconds",
		"Time to append one record to a session journal.", timeBuckets)
	m.JournalFsync = m.Histogram("pedd_journal_fsync_seconds",
		"Time to fsync a session journal.", timeBuckets)
	m.JournalBytes = m.Counter("pedd_journal_bytes_total",
		"Bytes appended to session journals.")
	m.JournalSnapshots = m.Counter("pedd_journal_snapshots_total",
		"Snapshot compactions that rewrote a session journal.")
	m.RecoveriesTotal = m.Counter("pedd_recoveries_total",
		"Sessions rebuilt from their journals at startup.")
	m.RecoveriesTruncated = m.Counter("pedd_recoveries_truncated_total",
		"Recoveries that truncated a torn journal tail (expected after kill -9).")
	m.RecoveriesQuarantined = m.Counter("pedd_recoveries_quarantined_total",
		"Recoveries abandoned on mid-stream journal corruption; the session is quarantined.")
	m.MigrationsOut = m.Counter("pedd_migrations_out_total",
		"Sessions migrated away to another node (tombstone left behind).")
	m.MigrationsOutBytes = m.Counter("pedd_migrations_out_bytes_total",
		"Journal bytes shipped to other nodes by outbound migrations.")
	m.MigrationsFailed = m.Counter("pedd_migrations_failed_total",
		"Outbound migrations that failed; the source session stayed authoritative.")
	m.SessionsImported = m.Counter("pedd_sessions_imported_total",
		"Sessions adopted from another node's journal stream.")
	m.ImportsRejected = m.Counter("pedd_imports_rejected_total",
		"Import streams rejected (torn, corrupt, conflicting, or unreplayable).")
	m.SessionsMigrating = m.Gauge("pedd_sessions_migrating",
		"Sessions frozen mid-migration (mutations rejected until it resolves).")
	m.AnalysisPhase = m.HistogramVec("pedd_analysis_phase_seconds",
		"Wall time of analysis phases (parse, interproc, dataflow, dependence, perf).",
		timeBuckets, "phase")
	m.PlannerWorldsForked = m.Counter("pedd_planner_worlds_forked_total",
		"Speculative worlds forked by plan searches.")
	m.PlannerWorldsScored = m.Counter("pedd_planner_worlds_scored_total",
		"Speculative worlds that survived evaluation and were scored.")
	m.PlannerWorldsDiscarded = m.Counter("pedd_planner_worlds_discarded_total",
		"Speculative worlds discarded (rejected step, panic, duplicate, or failed validation).")
	m.PlannerWorldsAccepted = m.Counter("pedd_planner_worlds_accepted_total",
		"Accepted plan worlds: plans replayed through the journaled mutation path.")
	m.PlannerWorldsLive = m.Gauge("pedd_planner_worlds_live",
		"Speculative worlds currently being evaluated.")
	m.PlannerSearch = m.Histogram("pedd_planner_search_seconds",
		"Wall time of speculative plan searches.", timeBuckets)
	m.ExecRuns = m.CounterVec("pedd_exec_runs_total",
		"Program executions by the backend that actually ran.", "backend")
	m.ExecFailures = m.CounterVec("pedd_exec_failures_total",
		"Program executions that failed (program or toolchain error, not a governor kill).", "backend")
	m.ExecLatency = m.HistogramVec("pedd_exec_run_seconds",
		"Wall time of program executions by backend.", timeBuckets, "backend")
	m.ExecTimeouts = m.CounterVec("pedd_exec_timeouts_total",
		"Program executions stopped by a governor limit (deadline, output cap, RSS).", "backend")
	m.ExecKills = m.CounterVec("pedd_exec_kills_total",
		"Governor kills by reason (deadline, output, rss, ctx).", "reason")
	m.ExecFallbacks = m.Counter("pedd_exec_fallbacks_total",
		"Compile runs degraded to the interpreter (decline or build failure, fallback requested).")
	m.ExecRejected = m.Counter("pedd_exec_rejected_total",
		"Runs rejected at admission because every exec slot was busy (HTTP 429).")
	m.ExecInflight = m.Gauge("pedd_exec_inflight",
		"Program executions currently running under the governor.")
	m.BuildsTotal = m.Counter("pedd_build_total",
		"Cold go builds of generated programs.")
	m.BuildFailures = m.Counter("pedd_build_failures_total",
		"Cold go builds that failed (including build timeouts).")
	m.BuildLatency = m.Histogram("pedd_build_seconds",
		"Wall time of cold go builds.", timeBuckets)
	m.BuildCacheHits = m.Counter("pedd_build_cache_hits_total",
		"Compile-cache reuses whose manifest checksum verified.")
	m.BuildDedups = m.Counter("pedd_build_dedup_total",
		"Concurrent build requests that piggybacked on another in-flight build.")
	m.BuildVerifyFailures = m.Counter("pedd_build_verify_failures_total",
		"Cache entries that failed checksum verification and were quarantined.")
	m.BuildJanitorEvicted = m.Counter("pedd_build_janitor_evictions_total",
		"Compile-cache entries evicted by the janitor's LRU bound.")
	return m
}

// ExecEvent, ExecTiming, and ExecInFlight implement execguard.Sink,
// translating the guard's bounded event names into metric families.
// Unknown labels collapse to "other" so cardinality stays bounded even
// if a caller misbehaves.
func (m *Metrics) ExecEvent(name, label string) {
	switch name {
	case "exec_run":
		m.ExecRuns.With(backendLabel(label)).Inc()
	case "exec_fail":
		m.ExecFailures.With(backendLabel(label)).Inc()
	case "exec_timeout":
		m.ExecTimeouts.With(backendLabel(label)).Inc()
	case "exec_kill":
		m.ExecKills.With(killLabel(label)).Inc()
	case "exec_fallback":
		m.ExecFallbacks.Inc()
	case "exec_rejected":
		m.ExecRejected.Inc()
	case "build":
		m.BuildsTotal.Inc()
	case "build_fail":
		m.BuildFailures.Inc()
	case "build_cache_hit":
		m.BuildCacheHits.Inc()
	case "build_dedup":
		m.BuildDedups.Inc()
	case "build_verify_fail":
		m.BuildVerifyFailures.Inc()
	case "build_janitor_evict":
		m.BuildJanitorEvicted.Inc()
	}
}

func (m *Metrics) ExecTiming(name, label string, d time.Duration) {
	switch name {
	case "exec_run":
		m.ExecLatency.With(backendLabel(label)).Observe(d.Seconds())
	case "build":
		m.BuildLatency.Observe(d.Seconds())
	}
}

func (m *Metrics) ExecInFlight(delta int) {
	if delta >= 0 {
		for ; delta > 0; delta-- {
			m.ExecInflight.Inc()
		}
		return
	}
	for ; delta < 0; delta++ {
		m.ExecInflight.Dec()
	}
}

func backendLabel(s string) string {
	if s == "interp" || s == "compile" {
		return s
	}
	return "other"
}

func killLabel(s string) string {
	switch s {
	case "deadline", "output", "rss", "ctx":
		return s
	}
	return "other"
}

// ObserveHTTP records one served request: the per-route/method/class
// counter and the per-route latency histogram.
func (m *Metrics) ObserveHTTP(route, method string, status int, d time.Duration) {
	m.HTTPRequests.With(route, method, StatusClass(status)).Inc()
	m.HTTPLatency.With(route).Observe(d.Seconds())
}

// StatusClass collapses an HTTP status to its class label ("2xx".."5xx",
// "other") — the bounded-cardinality form every registry labels by.
func StatusClass(status int) string {
	if status >= 100 && status < 600 {
		return strconv.Itoa(status/100) + "xx"
	}
	return "other"
}

// ObservePhase implements core.PhaseObserver over the phase-timing
// histogram family.
func (m *Metrics) ObservePhase(phase string, d time.Duration) {
	m.AnalysisPhase.With(phase).Observe(d.Seconds())
}

// Readiness is the drain-aware readiness flag behind GET /readyz.
// Liveness (/healthz) answers "the process is up"; readiness answers
// "send me traffic". A rolling restart flips it before connections
// close, so load balancers and the cluster gateway stop routing new
// work while in-flight requests drain.
type Readiness struct{ draining atomic.Bool }

// SetDraining flips the readiness answer (true = /readyz answers 503).
func (rd *Readiness) SetDraining(v bool) { rd.draining.Store(v) }

// Draining reports whether the process is refusing new work.
func (rd *Readiness) Draining() bool { return rd.draining.Load() }

// handler answers 200 {"status":"ready"} or 503 {"status":"draining"}.
// A nil Readiness is always ready (standalone embedders).
func (rd *Readiness) handler(w http.ResponseWriter, r *http.Request) {
	if rd != nil && rd.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// OpsHandler mounts the operational surface — /metrics, /healthz,
// /readyz, and net/http/pprof under /debug/pprof/ — for the opt-in ops
// listener (pedd -opsaddr). It is deliberately a separate handler from
// Server so profiling and scraping never share the serving port.
// ready may be nil (always ready).
func OpsHandler(m *Metrics, ready *Readiness) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", m.Handler())
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", ready.handler)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// newRequestID returns a fresh 16-hex-digit request ID.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; a constant
		// beats a panic in the one place IDs are only a convenience.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}
