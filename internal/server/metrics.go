package server

import (
	"bufio"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the daemon's observability substrate: counter, gauge
// and histogram primitives on sync/atomic (no dependencies), a
// registry that renders them in the Prometheus text exposition
// format, and the ops handler that mounts /metrics next to
// net/http/pprof. Armed or not, every record is a handful of atomic
// operations — cheap enough to leave on in the serving hot path.
//
// Conventions (documented in DESIGN.md "Observability"):
//
//   - every metric is prefixed pedd_;
//   - durations are histograms in seconds with the shared timeBuckets
//     schedule;
//   - label cardinality is bounded by construction: routes are mux
//     patterns (not raw URLs), status codes are collapsed to classes
//     ("2xx".."5xx"), and nothing is ever labeled by session ID.

// timeBuckets is the shared histogram schedule for durations, in
// seconds: 100µs to ~10s, roughly ×2.5 per step. Interactive-tool
// latencies (the paper's sub-second budget) land mid-scale.
var timeBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Set overwrites the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Value reads the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into cumulative le-buckets and keeps
// the running sum, Prometheus-style. Observations are lock-free; a
// scrape that races an Observe may see the buckets one observation
// ahead of the sum, which monitoring tolerates by design.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	sum    atomic.Uint64   // float64 bits, CAS-updated
	count  atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.counts[sort.SearchFloat64s(h.bounds, v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count reads the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum reads the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// CounterVec is a family of counters split by label values.
type CounterVec struct {
	mu sync.RWMutex
	m  map[string]*Counter
}

// With returns the counter for the given label values, creating it on
// first use. Values must match the family's label names in count and
// order.
func (v *CounterVec) With(values ...string) *Counter {
	key := strings.Join(values, "\xff")
	v.mu.RLock()
	c := v.m[key]
	v.mu.RUnlock()
	if c != nil {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c := v.m[key]; c != nil {
		return c
	}
	c = &Counter{}
	v.m[key] = c
	return c
}

// HistogramVec is a family of histograms split by label values.
type HistogramVec struct {
	bounds []float64
	mu     sync.RWMutex
	m      map[string]*Histogram
}

// With returns the histogram for the given label values, creating it
// on first use.
func (v *HistogramVec) With(values ...string) *Histogram {
	key := strings.Join(values, "\xff")
	v.mu.RLock()
	h := v.m[key]
	v.mu.RUnlock()
	if h != nil {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h := v.m[key]; h != nil {
		return h
	}
	h = newHistogram(v.bounds)
	v.m[key] = h
	return h
}

// family is one named metric with its exposition metadata.
type family struct {
	name   string
	help   string
	kind   string // "counter", "gauge", "histogram"
	labels []string

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	cvec    *CounterVec
	hvec    *HistogramVec
}

// Metrics is the daemon's metric registry. One instance is shared by
// the Manager, its sessions, the analysis cache, and the HTTP layer;
// render it with WriteProm or serve it via Handler / OpsHandler.
type Metrics struct {
	families []*family

	// HTTP layer.
	HTTPRequests *CounterVec   // route, method, code (status class)
	HTTPLatency  *HistogramVec // route
	HTTPInflight *Gauge

	// Session lifecycle.
	SessionsLive        *Gauge
	SessionsQuarantined *Gauge
	SessionsReadOnly    *Gauge
	SessionsOpened      *Counter
	SessionsClosed      *Counter
	SessionsEvicted     *Counter

	// Actor queues.
	QueueDepth   *Gauge
	QueueWait    *Histogram
	ActorService *Histogram

	// Analysis cache.
	CacheHits        *Counter
	CacheMisses      *Counter
	CacheEvictions   *Counter
	Materializations *Counter

	// Durability: journal I/O and crash recovery.
	JournalAppend         *Histogram
	JournalFsync          *Histogram
	JournalBytes          *Counter
	JournalSnapshots      *Counter
	RecoveriesTotal       *Counter
	RecoveriesTruncated   *Counter
	RecoveriesQuarantined *Counter

	// Per-phase analysis timings (phase = parse, interproc, dataflow,
	// dependence, perf), fed through core's PhaseObserver hook.
	AnalysisPhase *HistogramVec // phase

	// Speculative planner: world lifecycle counters, the live-worlds
	// gauge, and search latency. Deliberately unlabeled — plan volume
	// is per-daemon, never per-session (session IDs are unbounded).
	PlannerWorldsForked    *Counter
	PlannerWorldsScored    *Counter
	PlannerWorldsDiscarded *Counter
	PlannerWorldsAccepted  *Counter
	PlannerWorldsLive      *Gauge
	PlannerSearch          *Histogram
}

// NewMetrics builds a registry with every pedd metric registered.
func NewMetrics() *Metrics {
	m := &Metrics{}
	m.HTTPRequests = m.counterVec("pedd_http_requests_total",
		"HTTP requests by mux route, method, and status class.", "route", "method", "code")
	m.HTTPLatency = m.histogramVec("pedd_http_request_seconds",
		"End-to-end HTTP request latency by mux route.", timeBuckets, "route")
	m.HTTPInflight = m.gauge("pedd_http_inflight",
		"HTTP requests currently being served.")
	m.SessionsLive = m.gauge("pedd_sessions_live",
		"Sessions currently registered (including quarantined ones).")
	m.SessionsQuarantined = m.gauge("pedd_sessions_quarantined",
		"Live sessions quarantined after a panic.")
	m.SessionsReadOnly = m.gauge("pedd_sessions_readonly",
		"Live sessions degraded to read-only after a journal I/O failure.")
	m.SessionsOpened = m.counter("pedd_sessions_opened_total",
		"Sessions successfully opened since start.")
	m.SessionsClosed = m.counter("pedd_sessions_closed_total",
		"Sessions closed by request or shutdown since start.")
	m.SessionsEvicted = m.counter("pedd_sessions_evicted_total",
		"Sessions evicted by the idle-TTL janitor since start.")
	m.QueueDepth = m.gauge("pedd_session_queue_depth",
		"Commands queued on session actors, summed over sessions.")
	m.QueueWait = m.histogram("pedd_session_queue_wait_seconds",
		"Time commands spent queued before their session actor ran them.", timeBuckets)
	m.ActorService = m.histogram("pedd_actor_service_seconds",
		"Time session actors spent executing commands.", timeBuckets)
	m.CacheHits = m.counter("pedd_cache_hits_total",
		"Analysis cache hits.")
	m.CacheMisses = m.counter("pedd_cache_misses_total",
		"Analysis cache misses.")
	m.CacheEvictions = m.counter("pedd_cache_evictions_total",
		"Artifacts evicted from the analysis cache by LRU pressure.")
	m.Materializations = m.counter("pedd_cache_materializations_total",
		"Artifact-backed sessions materialized into live sessions.")
	m.JournalAppend = m.histogram("pedd_journal_append_seconds",
		"Time to append one record to a session journal.", timeBuckets)
	m.JournalFsync = m.histogram("pedd_journal_fsync_seconds",
		"Time to fsync a session journal.", timeBuckets)
	m.JournalBytes = m.counter("pedd_journal_bytes_total",
		"Bytes appended to session journals.")
	m.JournalSnapshots = m.counter("pedd_journal_snapshots_total",
		"Snapshot compactions that rewrote a session journal.")
	m.RecoveriesTotal = m.counter("pedd_recoveries_total",
		"Sessions rebuilt from their journals at startup.")
	m.RecoveriesTruncated = m.counter("pedd_recoveries_truncated_total",
		"Recoveries that truncated a torn journal tail (expected after kill -9).")
	m.RecoveriesQuarantined = m.counter("pedd_recoveries_quarantined_total",
		"Recoveries abandoned on mid-stream journal corruption; the session is quarantined.")
	m.AnalysisPhase = m.histogramVec("pedd_analysis_phase_seconds",
		"Wall time of analysis phases (parse, interproc, dataflow, dependence, perf).",
		timeBuckets, "phase")
	m.PlannerWorldsForked = m.counter("pedd_planner_worlds_forked_total",
		"Speculative worlds forked by plan searches.")
	m.PlannerWorldsScored = m.counter("pedd_planner_worlds_scored_total",
		"Speculative worlds that survived evaluation and were scored.")
	m.PlannerWorldsDiscarded = m.counter("pedd_planner_worlds_discarded_total",
		"Speculative worlds discarded (rejected step, panic, duplicate, or failed validation).")
	m.PlannerWorldsAccepted = m.counter("pedd_planner_worlds_accepted_total",
		"Accepted plan worlds: plans replayed through the journaled mutation path.")
	m.PlannerWorldsLive = m.gauge("pedd_planner_worlds_live",
		"Speculative worlds currently being evaluated.")
	m.PlannerSearch = m.histogram("pedd_planner_search_seconds",
		"Wall time of speculative plan searches.", timeBuckets)
	return m
}

func (m *Metrics) counter(name, help string) *Counter {
	c := &Counter{}
	m.families = append(m.families, &family{name: name, help: help, kind: "counter", counter: c})
	return c
}

func (m *Metrics) gauge(name, help string) *Gauge {
	g := &Gauge{}
	m.families = append(m.families, &family{name: name, help: help, kind: "gauge", gauge: g})
	return g
}

func (m *Metrics) histogram(name, help string, bounds []float64) *Histogram {
	h := newHistogram(bounds)
	m.families = append(m.families, &family{name: name, help: help, kind: "histogram", hist: h})
	return h
}

func (m *Metrics) counterVec(name, help string, labels ...string) *CounterVec {
	v := &CounterVec{m: map[string]*Counter{}}
	m.families = append(m.families, &family{name: name, help: help, kind: "counter", labels: labels, cvec: v})
	return v
}

func (m *Metrics) histogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	v := &HistogramVec{bounds: bounds, m: map[string]*Histogram{}}
	m.families = append(m.families, &family{name: name, help: help, kind: "histogram", labels: labels, hvec: v})
	return v
}

// ObserveHTTP records one served request: the per-route/method/class
// counter and the per-route latency histogram.
func (m *Metrics) ObserveHTTP(route, method string, status int, d time.Duration) {
	class := "other"
	if status >= 100 && status < 600 {
		class = strconv.Itoa(status/100) + "xx"
	}
	m.HTTPRequests.With(route, method, class).Inc()
	m.HTTPLatency.With(route).Observe(d.Seconds())
}

// ObservePhase implements core.PhaseObserver over the phase-timing
// histogram family.
func (m *Metrics) ObservePhase(phase string, d time.Duration) {
	m.AnalysisPhase.With(phase).Observe(d.Seconds())
}

// WriteProm renders every registered metric in the Prometheus text
// exposition format (version 0.0.4), families in registration order
// and label children in sorted order, so output is deterministic for
// a quiescent registry.
func (m *Metrics) WriteProm(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range m.families {
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		switch {
		case f.counter != nil:
			fmt.Fprintf(bw, "%s %d\n", f.name, f.counter.Value())
		case f.gauge != nil:
			fmt.Fprintf(bw, "%s %d\n", f.name, f.gauge.Value())
		case f.hist != nil:
			writeHistogram(bw, f.name, "", f.hist)
		case f.cvec != nil:
			f.cvec.mu.RLock()
			keys := make([]string, 0, len(f.cvec.m))
			for k := range f.cvec.m {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, key := range keys {
				fmt.Fprintf(bw, "%s{%s} %d\n", f.name, promLabels(f.labels, key), f.cvec.m[key].Value())
			}
			f.cvec.mu.RUnlock()
		case f.hvec != nil:
			f.hvec.mu.RLock()
			keys := make([]string, 0, len(f.hvec.m))
			for k := range f.hvec.m {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, key := range keys {
				writeHistogram(bw, f.name, promLabels(f.labels, key), f.hvec.m[key])
			}
			f.hvec.mu.RUnlock()
		}
	}
	return bw.Flush()
}

// writeHistogram emits the cumulative buckets, sum, and count of one
// histogram child. labels is the pre-rendered label list without
// braces ("" for an unlabeled histogram).
func writeHistogram(w io.Writer, name, labels string, h *Histogram) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{%s%sle=\"%s\"} %d\n",
			name, labels, sep, formatFloat(b), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, cum)
	if labels != "" {
		fmt.Fprintf(w, "%s_sum{%s} %s\n", name, labels, formatFloat(h.Sum()))
		fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, cum)
	} else {
		fmt.Fprintf(w, "%s_sum %s\n", name, formatFloat(h.Sum()))
		fmt.Fprintf(w, "%s_count %d\n", name, cum)
	}
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// promLabels renders `name="value",...` for one vec child key.
func promLabels(names []string, key string) string {
	values := strings.Split(key, "\xff")
	var b strings.Builder
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		v := ""
		if i < len(values) {
			v = values[i]
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(v))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// Handler serves the registry in the Prometheus text format.
func (m *Metrics) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = m.WriteProm(w)
	})
}

// OpsHandler mounts the operational surface — /metrics, /healthz, and
// net/http/pprof under /debug/pprof/ — for the opt-in ops listener
// (pedd -opsaddr). It is deliberately a separate handler from Server
// so profiling and scraping never share the serving port.
func OpsHandler(m *Metrics) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", m.Handler())
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// newRequestID returns a fresh 16-hex-digit request ID.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; a constant
		// beats a panic in the one place IDs are only a convenience.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}
