package server

import (
	"container/list"
	"fmt"
	"strings"
	"sync"

	"parascope/internal/core"
	"parascope/internal/faultpoint"
	"parascope/internal/fortran"
	"parascope/internal/view"
)

// LoopArtifacts holds the precomputed panes for one loop of one unit:
// everything a read-only client asks for after selecting the loop.
type LoopArtifacts struct {
	Line     int
	Depth    int
	Header   string
	Parallel bool
	// Summary is the per-class dependence count line.
	Summary string
	// DepPane and VarPane are the default-filter pane renderings —
	// byte-identical to what a live session would print.
	DepPane string
	VarPane string
	Deps    []DepInfo
}

// UnitArtifacts holds one unit's precomputed renderings.
type UnitArtifacts struct {
	Name      string
	Kind      string
	LoopsText string
	PerfText  string
	Loops     []LoopArtifacts
}

// Artifacts is the immutable analysis result of one (path, source,
// options) triple, keyed by content hash. Sessions opened on a cache
// hit serve read-only queries straight from these strings and only
// materialize a live core.Session when a mutating command arrives.
type Artifacts struct {
	Key  string
	Path string
	// Printed is the canonical pretty-printed program (`save`).
	Printed string
	Units   []UnitArtifacts
	// DefaultUnit indexes the unit current at open (MAIN if present).
	DefaultUnit int
	// NoLoopDepPane/NoLoopVarPane are the pane renderings before any
	// loop is selected.
	NoLoopDepPane string
	NoLoopVarPane string
}

// UnitNames lists the unit names in source order.
func (a *Artifacts) UnitNames() []string {
	out := make([]string, len(a.Units))
	for i := range a.Units {
		out[i] = a.Units[i].Name
	}
	return out
}

// unitIndex finds a unit by (case-insensitive) name, or -1.
func (a *Artifacts) unitIndex(name string) int {
	name = strings.ToLower(name)
	for i := range a.Units {
		if a.Units[i].Name == name {
			return i
		}
	}
	return -1
}

// BuildArtifacts renders every pane of every loop of every unit of a
// freshly opened (pristine, nothing selected) session. The session's
// selection and history are restored before returning, so the caller
// can keep using it as the first live session for this source.
func BuildArtifacts(key string, s *core.Session) *Artifacts {
	histLen := len(s.History)
	cur := s.CurrentUnit()
	a := &Artifacts{
		Key:           key,
		Path:          s.File.Path,
		Printed:       s.Save(),
		NoLoopDepPane: view.DepPane(s, core.DepFilter{}),
		NoLoopVarPane: view.VarPane(s),
	}
	for i, u := range s.File.Units {
		if u == cur {
			a.DefaultUnit = i
		}
		if err := s.SelectUnit(u.Name); err != nil {
			continue
		}
		ua := UnitArtifacts{
			Name:     u.Name,
			Kind:     u.Kind.String(),
			PerfText: s.State().Est.Report(),
		}
		var lb strings.Builder
		for j, l := range s.Loops() {
			mark := " "
			if l.Do.Parallel {
				mark = "P"
			}
			fmt.Fprintf(&lb, "%3d %s depth %d line %d: %s\n",
				j+1, mark, l.Depth, l.Do.Line(), fortran.StmtText(l.Do))
			if err := s.SelectLoop(j + 1); err != nil {
				continue
			}
			ua.Loops = append(ua.Loops, LoopArtifacts{
				Line:     l.Do.Line(),
				Depth:    l.Depth,
				Header:   fortran.StmtText(l.Do),
				Parallel: l.Do.Parallel,
				Summary:  view.DepSummary(s),
				DepPane:  view.DepPane(s, core.DepFilter{}),
				VarPane:  view.VarPane(s),
				Deps:     depInfos(s),
			})
		}
		ua.LoopsText = lb.String()
		a.Units = append(a.Units, ua)
	}
	// Restore the pristine selection (SelectUnit clears the loop) and
	// drop the navigation noise from the transcript.
	if cur != nil {
		_ = s.SelectUnit(cur.Name)
	}
	s.History = s.History[:histLen]
	return a
}

// depInfos converts the selected loop's unfiltered dependence list to
// wire form; the Private flag snapshots the variable classification
// so artifact-backed sessions can apply the hideprivate filter.
func depInfos(s *core.Session) []DepInfo {
	classes := map[*fortran.Symbol]core.VarClass{}
	for _, row := range s.VariablePane() {
		classes[row.Sym] = row.Class
	}
	var out []DepInfo
	for _, d := range s.SelectionDeps(core.DepFilter{}) {
		out = append(out, DepInfo{
			ID:      d.ID,
			Class:   d.Class.String(),
			Sym:     d.Sym.Name,
			Dir:     d.DirString(),
			Level:   d.Level,
			SrcStmt: d.Src.ID(),
			DstStmt: d.Dst.ID(),
			SrcLine: d.Src.Line(),
			DstLine: d.Dst.Line(),
			Mark:    d.Mark.String(),
			Reason:  d.Reason,
			Private: classes[d.Sym] != core.ClassShared,
		})
	}
	return out
}

// filterInfos applies a DepQuery to a dependence list — the single
// filtering path shared by artifact-backed and live sessions, so a
// hash-hit answer is identical to a cold one by construction.
func filterInfos(all []DepInfo, q DepQuery) []DepInfo {
	out := []DepInfo{}
	for _, d := range all {
		if q.Carried && d.Level == 0 {
			continue
		}
		if q.HideRejected && d.Mark == "rejected" {
			continue
		}
		if q.Sym != "" && d.Sym != strings.ToLower(q.Sym) {
			continue
		}
		if len(q.Classes) > 0 {
			ok := false
			for _, c := range q.Classes {
				if d.Class == c {
					ok = true
				}
			}
			if !ok {
				continue
			}
		}
		if q.HidePrivate && d.Private {
			continue
		}
		out = append(out, d)
	}
	return out
}

// Cache is a bounded LRU of analysis artifacts keyed by content hash.
// A nil *Cache is valid and always misses.
type Cache struct {
	mu      sync.Mutex
	max     int
	order   *list.List // front = most recently used; values are *Artifacts
	entries map[string]*list.Element
	hits    int64
	misses  int64
	// metrics mirrors the hit/miss counters into the scrapeable
	// registry (nil = unmirrored, for caches built outside a Manager).
	metrics *Metrics
}

// NewCache creates a cache holding at most max artifact sets.
func NewCache(max int) *Cache {
	return &Cache{max: max, order: list.New(), entries: map[string]*list.Element{}}
}

// Get returns the artifacts for key, or nil on a miss. An injected
// cache-get fault degrades the lookup to a miss (the open falls back
// to a cold analysis) — cache failure must never fail a request.
func (c *Cache) Get(key string) *Artifacts {
	if c == nil {
		return nil
	}
	if err := faultpoint.Hit(faultpoint.CacheGet, key); err != nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		if c.metrics != nil {
			c.metrics.CacheMisses.Inc()
		}
		return nil
	}
	c.hits++
	if c.metrics != nil {
		c.metrics.CacheHits.Inc()
	}
	c.order.MoveToFront(el)
	return el.Value.(*Artifacts)
}

// Put inserts (or refreshes) artifacts, evicting the least recently
// used entry past capacity.
func (c *Cache) Put(a *Artifacts) {
	if c == nil || c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[a.Key]; ok {
		el.Value = a
		c.order.MoveToFront(el)
		return
	}
	c.entries[a.Key] = c.order.PushFront(a)
	for c.order.Len() > c.max {
		el := c.order.Back()
		c.order.Remove(el)
		delete(c.entries, el.Value.(*Artifacts).Key)
		if c.metrics != nil {
			c.metrics.CacheEvictions.Inc()
		}
	}
}

// Stats reports the counters.
func (c *Cache) Stats() CacheStatsResponse {
	if c == nil {
		return CacheStatsResponse{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStatsResponse{Entries: c.order.Len(), Hits: c.hits, Misses: c.misses}
}
