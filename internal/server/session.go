package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"parascope/internal/core"
	"parascope/internal/repl"
	"parascope/internal/view"
)

// ErrSessionClosed is returned for requests against a session that
// was closed or evicted.
var ErrSessionClosed = errors.New("session closed")

// ErrSessionFailed is returned for requests against a session that
// was quarantined after a panic; other sessions are unaffected.
var ErrSessionFailed = errors.New("session failed")

// ErrQueueFull is returned when a session's pending-command queue is
// at capacity — backpressure instead of unbounded buffering.
var ErrQueueFull = errors.New("session queue full")

// defaultQueueDepth bounds the per-session pending-command queue when
// the config does not say otherwise.
const defaultQueueDepth = 32

// Session is one hosted editor session. All editor state is confined
// to a single actor goroutine: requests are posted as closures on
// reqCh and executed one at a time, so concurrent HTTP requests
// against the same session serialize and the untouched core stays
// data-race-free.
//
// A session opened on a cache hit starts artifact-backed (art != nil,
// live == nil): read-only commands are answered from the immutable
// artifacts without ever parsing the source. The first mutating or
// unsupported command materializes a live core.Session by reparsing
// and reanalyzing, then replays the selection.
type Session struct {
	ID     string
	path   string
	source string

	created  time.Time
	lastUsed atomic.Int64 // unix nanos

	reqCh   chan task
	closeMu sync.RWMutex
	closed  bool
	// qGauged records that this session incremented the quarantined
	// gauge (guarded by closeMu), so close() decrements exactly once.
	qGauged bool

	// failed flips when a command panics: the panic is recovered at
	// the actor boundary, the session is quarantined, and every later
	// request is rejected with ErrSessionFailed. failure holds the
	// diagnostic (guarded by failMu, written once).
	failed  atomic.Bool
	failMu  sync.Mutex
	failure *FailureInfo

	// workers caps the analysis pool of the materialized session.
	workers int

	// metrics receives queue/actor/lifecycle observations; always
	// non-nil (newSession defaults a private registry).
	metrics *Metrics

	// Actor-confined state below: only the run() goroutine touches it.
	art     *Artifacts
	curUnit int
	curLoop int
	live    *core.Session
	rep     *repl.REPL
}

type task struct {
	fn    func()
	touch bool
}

func newSession(id, path, source string, art *Artifacts, live *core.Session, workers, queueDepth int, metrics *Metrics) *Session {
	if queueDepth <= 0 {
		queueDepth = defaultQueueDepth
	}
	if metrics == nil {
		metrics = NewMetrics()
	}
	ss := &Session{
		ID:      id,
		path:    path,
		source:  source,
		created: time.Now(),
		reqCh:   make(chan task, queueDepth),
		workers: workers,
		metrics: metrics,
	}
	ss.lastUsed.Store(time.Now().UnixNano())
	if live != nil {
		ss.live = live
		ss.rep = repl.New(live, io.Discard)
	} else {
		ss.art = art
		ss.curUnit = art.DefaultUnit
	}
	go ss.run()
	return ss
}

func (ss *Session) run() {
	for t := range ss.reqCh {
		t.fn()
		if t.touch {
			ss.lastUsed.Store(time.Now().UnixNano())
		}
	}
}

// post runs fn on the actor goroutine and waits for it to finish,
// honoring the caller's context. Four ways it can refuse or bail:
//
//   - the session already failed (quarantined): ErrSessionFailed,
//     without touching the actor;
//   - the bounded pending queue is full: ErrQueueFull immediately —
//     admission control, not unbounded buffering;
//   - ctx expires while the command is queued or running: the queued
//     command is abandoned (it will be skipped, not executed) and
//     ctx.Err() is returned; a command already executing cannot be
//     interrupted, but the caller stops waiting for it;
//   - fn panics: the panic is recovered here — only this session is
//     quarantined, the daemon and every other session keep going —
//     and the wrapped ErrSessionFailed carries the diagnostic.
func (ss *Session) post(ctx context.Context, fn func(), touch bool) error {
	if err := ss.failedErr(); err != nil {
		return err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	done := make(chan struct{})
	var abandoned atomic.Bool
	var panicErr error
	enqueued := time.Now()
	t := task{touch: touch, fn: func() {
		defer close(done)
		ss.metrics.QueueDepth.Dec()
		ss.metrics.QueueWait.Observe(time.Since(enqueued).Seconds())
		if abandoned.Load() {
			return
		}
		started := time.Now()
		defer func() {
			ss.metrics.ActorService.Observe(time.Since(started).Seconds())
			if r := recover(); r != nil {
				ss.quarantine(r, debug.Stack())
				panicErr = ss.failedErr()
			}
		}()
		fn()
	}}
	ss.closeMu.RLock()
	if ss.closed {
		ss.closeMu.RUnlock()
		return ErrSessionClosed
	}
	// Inc before the send so the gauge can never transiently dip
	// negative: the actor's Dec only runs after the send succeeds.
	ss.metrics.QueueDepth.Inc()
	select {
	case ss.reqCh <- t:
		ss.closeMu.RUnlock()
	default:
		ss.metrics.QueueDepth.Dec()
		ss.closeMu.RUnlock()
		return ErrQueueFull
	}
	select {
	case <-done:
		return panicErr
	case <-ctx.Done():
		abandoned.Store(true)
		return ctx.Err()
	}
}

// quarantine marks the session failed, recording the first panic's
// diagnostic. The actor keeps draining its queue (rejecting nothing
// already enqueued — those commands run against the broken state no
// further than their own recover), but post refuses new work.
func (ss *Session) quarantine(r interface{}, actorStack []byte) {
	full := fmt.Sprint(r)
	reason := full
	if i := strings.IndexByte(reason, '\n'); i >= 0 {
		reason = reason[:i]
	}
	ss.failMu.Lock()
	first := ss.failure == nil
	if first {
		ss.failure = &FailureInfo{
			Reason: reason,
			Stack:  full + "\n\nactor stack:\n" + string(actorStack),
			Time:   time.Now(),
		}
	}
	ss.failMu.Unlock()
	ss.failed.Store(true)
	if first {
		// Gauge accounting: inc on first quarantine, dec in close().
		// Both sides run under closeMu and flip qGauged, so a panic
		// while draining an already-closed session's queue can neither
		// bump the gauge of the living nor be decremented twice.
		ss.closeMu.Lock()
		if !ss.closed {
			ss.metrics.SessionsQuarantined.Inc()
			ss.qGauged = true
		}
		ss.closeMu.Unlock()
	}
}

// failedErr returns the quarantine error (wrapping ErrSessionFailed)
// or nil for a healthy session.
func (ss *Session) failedErr() error {
	if !ss.failed.Load() {
		return nil
	}
	ss.failMu.Lock()
	defer ss.failMu.Unlock()
	return fmt.Errorf("%w: %s", ErrSessionFailed, ss.failure.Reason)
}

// Failure snapshots the quarantine diagnostic, or nil when healthy.
func (ss *Session) Failure() *FailureInfo {
	ss.failMu.Lock()
	defer ss.failMu.Unlock()
	if ss.failure == nil {
		return nil
	}
	f := *ss.failure
	return &f
}

// StateName reports the lifecycle state: active, failed, or closed.
func (ss *Session) StateName() string {
	ss.closeMu.RLock()
	closed := ss.closed
	ss.closeMu.RUnlock()
	switch {
	case closed:
		return "closed"
	case ss.failed.Load():
		return "failed"
	default:
		return "active"
	}
}

// close stops the actor; queued requests still drain first.
func (ss *Session) close() {
	ss.closeMu.Lock()
	if !ss.closed {
		ss.closed = true
		close(ss.reqCh)
		if ss.qGauged {
			ss.metrics.SessionsQuarantined.Dec()
			ss.qGauged = false
		}
	}
	ss.closeMu.Unlock()
}

// Idle reports how long the session has gone without a request.
func (ss *Session) Idle() time.Duration {
	return time.Since(time.Unix(0, ss.lastUsed.Load()))
}

// infoBudget bounds how long Info waits on the session actor: a
// wedged or saturated session degrades to its static fields instead
// of hanging the whole listing.
const infoBudget = 250 * time.Millisecond

// Info snapshots the session for the listing (does not reset idle).
// A session whose actor cannot answer within a short budget — hung,
// saturated, failed, or closed — still yields a row with its ID,
// path, and state; only Live/Mutated are omitted.
func (ss *Session) Info(ctx context.Context) SessionInfo {
	info := SessionInfo{ID: ss.ID, Path: ss.path, State: ss.StateName(), IdleSeconds: ss.Idle().Seconds()}
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, cancel := context.WithTimeout(ctx, infoBudget)
	defer cancel()
	err := ss.post(ctx, func() {
		info.Live = ss.live != nil
		if ss.live != nil {
			info.Mutated = ss.live.Mutated()
		}
	}, false)
	if err != nil {
		return SessionInfo{ID: ss.ID, Path: ss.path, State: ss.StateName(), IdleSeconds: ss.Idle().Seconds()}
	}
	return info
}

// ---------------------------------------------------------------------------
// Public operations (each runs inside the actor)

// Cmd executes one REPL command line. The returned error is a
// transport/lifecycle failure (closed, failed, queue full, context);
// command-level failures ride in CmdResponse.Err.
//
// When post fails — notably when ctx expires while the command is
// still executing — the captured response belongs to the actor, which
// may write it after we return; every error path here (and in the
// other ops below) must return zero values and never read it.
func (ss *Session) Cmd(ctx context.Context, line string) (CmdResponse, error) {
	var resp CmdResponse
	err := ss.post(ctx, func() {
		out, cmdErr := ss.exec(line)
		resp.Output = out
		if cmdErr != nil {
			resp.Err = cmdErr.Error()
		}
	}, true)
	if err != nil {
		return CmdResponse{}, err
	}
	return resp, nil
}

// Select switches unit and/or loop.
func (ss *Session) Select(ctx context.Context, req SelectRequest) (SelectResponse, error) {
	var resp SelectResponse
	var opErr error
	if err := ss.post(ctx, func() { resp, opErr = ss.doSelect(req) }, true); err != nil {
		return SelectResponse{}, err
	}
	return resp, opErr
}

// Deps lists the selected loop's dependences after filtering.
func (ss *Session) Deps(ctx context.Context, q DepQuery) (DepsResponse, error) {
	var resp DepsResponse
	if err := ss.post(ctx, func() { resp = ss.doDeps(q) }, true); err != nil {
		return DepsResponse{}, err
	}
	return resp, nil
}

// Classify overrides a variable's classification (materializes).
func (ss *Session) Classify(ctx context.Context, req ClassifyRequest) error {
	var c core.VarClass
	switch strings.ToLower(req.Class) {
	case "shared":
		c = core.ClassShared
	case "private":
		c = core.ClassPrivate
	case "reduction":
		c = core.ClassReduction
	default:
		return fmt.Errorf("unknown class %q", req.Class)
	}
	var opErr error
	if err := ss.post(ctx, func() {
		if opErr = ss.materialize(); opErr == nil {
			opErr = ss.live.Classify(req.Var, c)
		}
	}, true); err != nil {
		return err
	}
	return opErr
}

// Transform checks or applies a power-steering transformation via the
// REPL grammar (name plus loop numbers / factors / variable names).
func (ss *Session) Transform(ctx context.Context, req TransformRequest) (CmdResponse, error) {
	verb := "apply"
	if req.CheckOnly {
		verb = "check"
	}
	line := verb + " " + req.Name
	if len(req.Args) > 0 {
		line += " " + strings.Join(req.Args, " ")
	}
	return ss.Cmd(ctx, line)
}

// Edit replaces (or deletes) a statement by ID (materializes).
func (ss *Session) Edit(ctx context.Context, req EditRequest) error {
	var opErr error
	if err := ss.post(ctx, func() {
		if opErr = ss.materialize(); opErr != nil {
			return
		}
		if req.Delete {
			opErr = ss.live.DeleteStmt(req.Stmt)
		} else {
			opErr = ss.live.EditStmt(req.Stmt, req.Text)
		}
	}, true); err != nil {
		return err
	}
	return opErr
}

// Undo reverts the last transformation or edit (materializes; a
// session with no mutations has nothing to undo, exactly as cold).
func (ss *Session) Undo(ctx context.Context) error {
	var opErr error
	if err := ss.post(ctx, func() {
		if opErr = ss.materialize(); opErr == nil {
			opErr = ss.live.Undo()
		}
	}, true); err != nil {
		return err
	}
	return opErr
}

// ---------------------------------------------------------------------------
// Actor-confined implementation

// materialize builds the live core.Session for an artifact-backed
// session and replays its selection. No-op when already live.
func (ss *Session) materialize() error {
	if ss.live != nil {
		return nil
	}
	cs, err := core.OpenObserved(ss.path, ss.source, ss.workers, ss.metrics)
	if err != nil {
		return fmt.Errorf("materialize: %v", err)
	}
	if ss.curUnit != ss.art.DefaultUnit {
		if err := cs.SelectUnit(ss.art.Units[ss.curUnit].Name); err != nil {
			return err
		}
	}
	if ss.curLoop > 0 {
		if err := cs.SelectLoop(ss.curLoop); err != nil {
			return err
		}
	}
	ss.live = cs
	ss.rep = repl.New(cs, io.Discard)
	ss.art = nil
	ss.metrics.Materializations.Inc()
	return nil
}

// exec runs one REPL line: artifact-backed sessions answer read-only
// commands from the cache; anything else materializes and delegates
// to the real REPL.
func (ss *Session) exec(line string) (string, error) {
	if ss.live == nil {
		if out, handled, err := ss.execArtifact(line); handled {
			return out, err
		}
		if err := ss.materialize(); err != nil {
			return "", err
		}
	}
	var buf bytes.Buffer
	ss.rep.Out = &buf
	err := ss.rep.Execute(line)
	ss.rep.Done = false // `quit` has no meaning server-side
	return buf.String(), err
}

// execArtifact serves a command from the immutable artifacts.
// handled=false means the command needs a live session.
func (ss *Session) execArtifact(line string) (out string, handled bool, err error) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return "", true, nil
	}
	cmd, args := strings.ToLower(fields[0]), fields[1:]
	art := ss.art
	cu := &art.Units[ss.curUnit]
	switch cmd {
	case "quit", "exit":
		// Session lifetime is managed by DELETE /v1/sessions/{id}.
		return "", true, nil
	case "help":
		return repl.HelpText(), true, nil
	case "legend":
		return view.Legend(), true, nil
	case "units":
		var b strings.Builder
		for i := range art.Units {
			marker := "  "
			if i == ss.curUnit {
				marker = "» "
			}
			fmt.Fprintf(&b, "%s%s %s\n", marker, art.Units[i].Kind, art.Units[i].Name)
		}
		return b.String(), true, nil
	case "unit":
		if len(args) != 1 {
			return "", true, fmt.Errorf("usage: unit <name>")
		}
		i := art.unitIndex(args[0])
		if i < 0 {
			return "", true, fmt.Errorf("no unit named %s", args[0])
		}
		ss.curUnit, ss.curLoop = i, 0
		return "", true, nil
	case "loops":
		return cu.LoopsText, true, nil
	case "loop":
		if len(args) < 1 {
			return "", true, fmt.Errorf("missing loop number")
		}
		n, aerr := strconv.Atoi(args[0])
		if aerr != nil {
			return "", true, fmt.Errorf("bad loop number %q", args[0])
		}
		if n < 1 || n > len(cu.Loops) {
			return "", true, fmt.Errorf("loop %d out of range (unit has %d)", n, len(cu.Loops))
		}
		ss.curLoop = n
		return cu.Loops[n-1].Summary + "\n", true, nil
	case "deps":
		if len(args) > 0 {
			return "", false, nil // filters need a live session
		}
		if ss.curLoop == 0 {
			return art.NoLoopDepPane, true, nil
		}
		return cu.Loops[ss.curLoop-1].DepPane, true, nil
	case "vars":
		if ss.curLoop == 0 {
			return art.NoLoopVarPane, true, nil
		}
		return cu.Loops[ss.curLoop-1].VarPane, true, nil
	case "perf":
		return cu.PerfText, true, nil
	case "save":
		return art.Printed, true, nil
	}
	return "", false, nil
}

func (ss *Session) doSelect(req SelectRequest) (SelectResponse, error) {
	var resp SelectResponse
	if ss.live == nil {
		art := ss.art
		if req.Unit != "" {
			i := art.unitIndex(req.Unit)
			if i < 0 {
				return resp, fmt.Errorf("no unit named %s", req.Unit)
			}
			ss.curUnit, ss.curLoop = i, 0
		}
		if req.Loop != 0 {
			n := len(art.Units[ss.curUnit].Loops)
			if req.Loop < 1 || req.Loop > n {
				return resp, fmt.Errorf("loop %d out of range (unit has %d)", req.Loop, n)
			}
			ss.curLoop = req.Loop
		}
		resp.Unit = art.Units[ss.curUnit].Name
		resp.Loop = ss.curLoop
		if ss.curLoop > 0 {
			resp.Summary = art.Units[ss.curUnit].Loops[ss.curLoop-1].Summary
		} else {
			resp.Summary = "no loop selected"
		}
		return resp, nil
	}
	if req.Unit != "" {
		if err := ss.live.SelectUnit(req.Unit); err != nil {
			return resp, err
		}
	}
	if req.Loop != 0 {
		if err := ss.live.SelectLoop(req.Loop); err != nil {
			return resp, err
		}
	}
	resp.Unit = ss.live.CurrentUnit().Name
	resp.Loop = ss.liveLoopOrdinal()
	resp.Summary = view.DepSummary(ss.live)
	return resp, nil
}

// liveLoopOrdinal finds the 1-based source-order number of the
// selected loop, or 0.
func (ss *Session) liveLoopOrdinal() int {
	sel := ss.live.SelectedLoop()
	if sel == nil {
		return 0
	}
	for i, l := range ss.live.Loops() {
		if l.Do == sel.Do {
			return i + 1
		}
	}
	return 0
}

func (ss *Session) doDeps(q DepQuery) DepsResponse {
	var resp DepsResponse
	if ss.live == nil {
		resp.Unit = ss.art.Units[ss.curUnit].Name
		resp.Loop = ss.curLoop
		if ss.curLoop > 0 {
			resp.Deps = filterInfos(ss.art.Units[ss.curUnit].Loops[ss.curLoop-1].Deps, q)
		} else {
			resp.Deps = []DepInfo{}
		}
		return resp
	}
	resp.Unit = ss.live.CurrentUnit().Name
	resp.Loop = ss.liveLoopOrdinal()
	resp.Deps = filterInfos(depInfos(ss.live), q)
	return resp
}
