package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"parascope/internal/core"
	"parascope/internal/execguard"
	"parascope/internal/faultpoint"
	"parascope/internal/repl"
	"parascope/internal/view"
	"parascope/internal/workloads"
)

// ErrSessionClosed is returned for requests against a session that
// was closed or evicted.
var ErrSessionClosed = errors.New("session closed")

// ErrSessionFailed is returned for requests against a session that
// was quarantined after a panic; other sessions are unaffected.
var ErrSessionFailed = errors.New("session failed")

// ErrQueueFull is returned when a session's pending-command queue is
// at capacity — backpressure instead of unbounded buffering.
var ErrQueueFull = errors.New("session queue full")

// ErrSessionReadOnly is returned for mutating requests against a
// session whose journal hit an I/O error (disk full, EIO): the state
// already in memory keeps serving reads, but no further mutation is
// accepted because it could not be made durable.
var ErrSessionReadOnly = errors.New("session read-only")

// ErrSessionMigrating is returned for mutating requests against a
// session frozen mid-migration: the exported stream must be the last
// word on its state, so mutations are rejected (503 + Retry-After)
// until the move completes (then 421 points at the new node) or fails
// (then the session thaws here).
var ErrSessionMigrating = errors.New("session migrating")

// ErrSessionExists is returned when an explicitly requested session ID
// (gateway-minted open, or an import) is already in use on this node.
var ErrSessionExists = errors.New("session already exists")

// defaultQueueDepth bounds the per-session pending-command queue when
// the config does not say otherwise.
const defaultQueueDepth = 32

// Session is one hosted editor session. All editor state is confined
// to a single actor goroutine: requests are posted as closures on
// reqCh and executed one at a time, so concurrent HTTP requests
// against the same session serialize and the untouched core stays
// data-race-free.
//
// A session opened on a cache hit starts artifact-backed (art != nil,
// live == nil): read-only commands are answered from the immutable
// artifacts without ever parsing the source. The first mutating or
// unsupported command materializes a live core.Session by reparsing
// and reanalyzing, then replays the selection.
type Session struct {
	ID     string
	path   string
	source string

	created  time.Time
	lastUsed atomic.Int64 // unix nanos

	reqCh   chan task
	closeMu sync.RWMutex
	closed  bool
	// done is closed when the actor goroutine exits (queue drained,
	// journal synced and closed) — what Shutdown waits on for durable
	// sessions.
	done chan struct{}
	// qGauged/roGauged record that this session incremented the
	// quarantined/read-only gauge (guarded by closeMu), so close()
	// decrements each exactly once.
	qGauged  bool
	roGauged bool

	// failed flips when a command panics: the panic is recovered at
	// the actor boundary, the session is quarantined, and every later
	// request is rejected with ErrSessionFailed. failure holds the
	// diagnostic (guarded by failMu, written once).
	failed  atomic.Bool
	failMu  sync.Mutex
	failure *FailureInfo

	// readonly flips when a journal append, fsync, or snapshot fails:
	// the session keeps serving reads from memory but rejects further
	// mutations with ErrSessionReadOnly (roReason guarded by roMu).
	readonly atomic.Bool
	roMu     sync.Mutex
	roReason string

	// migrating freezes the session while its journal stream is being
	// shipped to another node: reads keep serving, mutations get
	// ErrSessionMigrating. Flipped by freeze/unfreeze (CAS, so only one
	// migration can hold the session at a time).
	migrating atomic.Bool

	// workers caps the analysis pool of the materialized session.
	workers int

	// metrics receives queue/actor/lifecycle observations; always
	// non-nil (newSession defaults a private registry).
	metrics *Metrics

	// plan is this session's speculative-planner state (latest search
	// result + one-search latch; own lock, never the actor). planCfg
	// is the manager-wide admission semaphore and plan cache, set by
	// the manager right after construction (nil = standalone defaults).
	plan    planState
	planCfg *planConfig

	// gov is the daemon-wide execution governor (run limits, exec
	// slots, telemetry), set by the manager right after construction
	// (nil = standalone defaults, unbounded admission). runCache is
	// the manager's compile build-cache override (empty = default).
	gov      *execguard.Governor
	runCache string

	// Actor-confined state below: only the run() goroutine touches it.
	art     *Artifacts
	curUnit int
	curLoop int
	live    *core.Session
	rep     *repl.REPL

	// Durability (actor-confined except jr's internal locking). jr is
	// nil when the daemon runs without -datadir. sticky is set by
	// mutations that live outside the printed source (marks,
	// assertions, classifications, analysis toggles) — they cannot be
	// folded into a source snapshot, so they block compaction.
	jr            *journal
	snapEvery     int
	mutsSinceSnap int
	sticky        bool

	// walOrphan is the wal path of a quarantined recovery husk
	// (jr == nil): the file stays on disk for forensics until the husk
	// is explicitly closed, which removes it.
	walOrphan string
}

type task struct {
	fn    func()
	touch bool
}

func newSession(id, path, source string, art *Artifacts, live *core.Session, workers, queueDepth int, metrics *Metrics, jr *journal, snapEvery int) *Session {
	if queueDepth <= 0 {
		queueDepth = defaultQueueDepth
	}
	if metrics == nil {
		metrics = NewMetrics()
	}
	ss := &Session{
		ID:        id,
		path:      path,
		source:    source,
		created:   time.Now(),
		reqCh:     make(chan task, queueDepth),
		done:      make(chan struct{}),
		workers:   workers,
		metrics:   metrics,
		jr:        jr,
		snapEvery: snapEvery,
	}
	ss.lastUsed.Store(time.Now().UnixNano())
	if live != nil {
		ss.live = live
		ss.rep = repl.New(live, io.Discard)
	} else if art != nil {
		ss.art = art
		ss.curUnit = art.DefaultUnit
	}
	go ss.run()
	return ss
}

func (ss *Session) run() {
	defer close(ss.done)
	defer func() {
		if ss.jr != nil {
			_ = ss.jr.close()
		}
	}()
	for t := range ss.reqCh {
		t.fn()
		if t.touch {
			ss.lastUsed.Store(time.Now().UnixNano())
		}
	}
}

// post runs fn on the actor goroutine and waits for it to finish,
// honoring the caller's context. Four ways it can refuse or bail:
//
//   - the session already failed (quarantined): ErrSessionFailed,
//     without touching the actor;
//   - the bounded pending queue is full: ErrQueueFull immediately —
//     admission control, not unbounded buffering;
//   - ctx expires while the command is queued or running: the queued
//     command is abandoned (it will be skipped, not executed) and
//     ctx.Err() is returned; a command already executing cannot be
//     interrupted, but the caller stops waiting for it;
//   - fn panics: the panic is recovered here — only this session is
//     quarantined, the daemon and every other session keep going —
//     and the wrapped ErrSessionFailed carries the diagnostic.
func (ss *Session) post(ctx context.Context, fn func(), touch bool) error {
	if err := ss.failedErr(); err != nil {
		return err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	done := make(chan struct{})
	var abandoned atomic.Bool
	var panicErr error
	enqueued := time.Now()
	t := task{touch: touch, fn: func() {
		defer close(done)
		ss.metrics.QueueDepth.Dec()
		ss.metrics.QueueWait.Observe(time.Since(enqueued).Seconds())
		if abandoned.Load() {
			return
		}
		started := time.Now()
		defer func() {
			ss.metrics.ActorService.Observe(time.Since(started).Seconds())
			if r := recover(); r != nil {
				ss.quarantine(r, debug.Stack())
				panicErr = ss.failedErr()
			}
		}()
		fn()
	}}
	ss.closeMu.RLock()
	if ss.closed {
		ss.closeMu.RUnlock()
		return ErrSessionClosed
	}
	// Inc before the send so the gauge can never transiently dip
	// negative: the actor's Dec only runs after the send succeeds.
	ss.metrics.QueueDepth.Inc()
	select {
	case ss.reqCh <- t:
		ss.closeMu.RUnlock()
	default:
		ss.metrics.QueueDepth.Dec()
		ss.closeMu.RUnlock()
		return ErrQueueFull
	}
	select {
	case <-done:
		return panicErr
	case <-ctx.Done():
		abandoned.Store(true)
		return ctx.Err()
	}
}

// quarantine marks the session failed, recording the first panic's
// diagnostic. The actor keeps draining its queue (rejecting nothing
// already enqueued — those commands run against the broken state no
// further than their own recover), but post refuses new work.
func (ss *Session) quarantine(r interface{}, actorStack []byte) {
	full := fmt.Sprint(r)
	reason := full
	if i := strings.IndexByte(reason, '\n'); i >= 0 {
		reason = reason[:i]
	}
	ss.failMu.Lock()
	first := ss.failure == nil
	if first {
		ss.failure = &FailureInfo{
			Reason: reason,
			Stack:  full + "\n\nactor stack:\n" + string(actorStack),
			Time:   time.Now(),
		}
	}
	ss.failMu.Unlock()
	ss.failed.Store(true)
	if first {
		// Gauge accounting: inc on first quarantine, dec in close().
		// Both sides run under closeMu and flip qGauged, so a panic
		// while draining an already-closed session's queue can neither
		// bump the gauge of the living nor be decremented twice.
		ss.closeMu.Lock()
		if !ss.closed {
			ss.metrics.SessionsQuarantined.Inc()
			ss.qGauged = true
		}
		ss.closeMu.Unlock()
	}
}

// failedErr returns the quarantine error (wrapping ErrSessionFailed)
// or nil for a healthy session.
func (ss *Session) failedErr() error {
	if !ss.failed.Load() {
		return nil
	}
	ss.failMu.Lock()
	defer ss.failMu.Unlock()
	return fmt.Errorf("%w: %s", ErrSessionFailed, ss.failure.Reason)
}

// degradeReadOnly flips the session to read-only after a journal I/O
// failure, recording why. The in-memory state keeps serving reads;
// mutations are rejected so memory can never run ahead of the journal.
// Safe from any goroutine (the manager's flush ticker degrades too).
func (ss *Session) degradeReadOnly(reason string) {
	ss.roMu.Lock()
	first := ss.roReason == ""
	if first {
		ss.roReason = reason
	}
	ss.roMu.Unlock()
	ss.readonly.Store(true)
	if first {
		ss.closeMu.Lock()
		if !ss.closed {
			ss.metrics.SessionsReadOnly.Inc()
			ss.roGauged = true
		}
		ss.closeMu.Unlock()
	}
}

// readonlyErr returns the degradation error (wrapping
// ErrSessionReadOnly) or nil for a writable session.
func (ss *Session) readonlyErr() error {
	if !ss.readonly.Load() {
		return nil
	}
	ss.roMu.Lock()
	defer ss.roMu.Unlock()
	return fmt.Errorf("%w: %s", ErrSessionReadOnly, ss.roReason)
}

// freeze claims the session for one migration: mutations start being
// rejected with ErrSessionMigrating. Returns false when another
// migration already holds it.
func (ss *Session) freeze() bool {
	if !ss.migrating.CompareAndSwap(false, true) {
		return false
	}
	ss.metrics.SessionsMigrating.Inc()
	return true
}

// unfreeze releases a failed (or finished) migration's claim.
// Idempotent.
func (ss *Session) unfreeze() {
	if ss.migrating.CompareAndSwap(true, false) {
		ss.metrics.SessionsMigrating.Dec()
	}
}

// migratingErr returns the freeze error or nil. Checked inside
// journalAppend — on the actor, not only at the HTTP edge — so the
// freeze→export ordering is airtight: every mutation the actor runs
// after the flag flips is rejected, and every one it ran before is in
// the stream the export (posted after the flip, FIFO queue) captures.
func (ss *Session) migratingErr() error {
	if !ss.migrating.Load() {
		return nil
	}
	return fmt.Errorf("%w: session is moving to another node; retry shortly", ErrSessionMigrating)
}

// Export renders the session's journal stream — the byte image an
// import on another node replays. Durable sessions ship their wal
// verbatim (full fidelity, sticky overlays included); non-durable
// sessions synthesize a single snapshot record, which carries the
// source, selection, and undo stack but cannot represent sticky
// overlays (marks, assertions, classifications) — documented loss, see
// DESIGN.md's failure-model table. Runs on the actor, so posting it
// doubles as the migration drain barrier.
func (ss *Session) Export(ctx context.Context) ([]byte, error) {
	var data []byte
	var opErr error
	if err := ss.post(ctx, func() {
		if ss.jr != nil {
			data, opErr = ss.jr.contents()
			return
		}
		snap := &record{Op: recSnapshot, Seq: 1, Time: time.Now().UnixNano(), Path: ss.path}
		if ss.live != nil {
			snap.Source = ss.live.Save()
			snap.Undo = ss.live.UndoStack()
			if u := ss.live.CurrentUnit(); u != nil {
				snap.Unit = u.Name
			}
			snap.Loop = ss.liveLoopOrdinal()
		} else {
			snap.Source = ss.art.Printed
			snap.Unit = ss.art.Units[ss.curUnit].Name
			snap.Loop = ss.curLoop
		}
		data, opErr = encodeRecord(snap)
	}, false); err != nil {
		return nil, err
	}
	return data, opErr
}

// ReadOnlyReason reports why the session degraded ("" when writable).
func (ss *Session) ReadOnlyReason() string {
	ss.roMu.Lock()
	defer ss.roMu.Unlock()
	return ss.roReason
}

// removeJournal deletes the session's wal file. Explicit close and
// TTL eviction call this: the session is gone on purpose, so its
// state must not resurrect at the next restart. (Shutdown does NOT —
// surviving the restart is the point.)
func (ss *Session) removeJournal() {
	if ss.jr != nil {
		ss.jr.remove()
	} else if ss.walOrphan != "" {
		os.Remove(ss.walOrphan)
	}
}

// syncJournal flushes the session's journal (the manager's interval
// flusher calls this); a failed fsync degrades the session just like a
// failed append — acknowledged-but-unflushed state must not grow.
func (ss *Session) syncJournal() {
	if ss.jr == nil {
		return
	}
	if err := ss.jr.sync(); err != nil {
		ss.degradeReadOnly(fmt.Sprintf("journal fsync: %v", err))
	}
}

// Failure snapshots the quarantine diagnostic, or nil when healthy.
func (ss *Session) Failure() *FailureInfo {
	ss.failMu.Lock()
	defer ss.failMu.Unlock()
	if ss.failure == nil {
		return nil
	}
	f := *ss.failure
	return &f
}

// StateName reports the lifecycle state: active, failed, or closed.
func (ss *Session) StateName() string {
	ss.closeMu.RLock()
	closed := ss.closed
	ss.closeMu.RUnlock()
	switch {
	case closed:
		return "closed"
	case ss.failed.Load():
		return "failed"
	default:
		return "active"
	}
}

// close stops the actor; queued requests still drain first.
func (ss *Session) close() {
	ss.closeMu.Lock()
	if !ss.closed {
		ss.closed = true
		close(ss.reqCh)
		if ss.qGauged {
			ss.metrics.SessionsQuarantined.Dec()
			ss.qGauged = false
		}
		if ss.roGauged {
			ss.metrics.SessionsReadOnly.Dec()
			ss.roGauged = false
		}
	}
	ss.closeMu.Unlock()
}

// Idle reports how long the session has gone without a request.
func (ss *Session) Idle() time.Duration {
	return time.Since(time.Unix(0, ss.lastUsed.Load()))
}

// infoBudget bounds how long Info waits on the session actor: a
// wedged or saturated session degrades to its static fields instead
// of hanging the whole listing.
const infoBudget = 250 * time.Millisecond

// Info snapshots the session for the listing (does not reset idle).
// A session whose actor cannot answer within a short budget — hung,
// saturated, failed, or closed — still yields a row with its ID,
// path, and state; only Live/Mutated are omitted.
func (ss *Session) Info(ctx context.Context) SessionInfo {
	info := SessionInfo{ID: ss.ID, Path: ss.path, State: ss.StateName(), IdleSeconds: ss.Idle().Seconds()}
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, cancel := context.WithTimeout(ctx, infoBudget)
	defer cancel()
	info.ReadOnly = ss.readonly.Load()
	err := ss.post(ctx, func() {
		info.Live = ss.live != nil
		if ss.live != nil {
			info.Mutated = ss.live.Mutated()
		}
	}, false)
	if err != nil {
		return SessionInfo{ID: ss.ID, Path: ss.path, State: ss.StateName(),
			IdleSeconds: ss.Idle().Seconds(), ReadOnly: ss.readonly.Load()}
	}
	return info
}

// ---------------------------------------------------------------------------
// Public operations (each runs inside the actor)

// Cmd executes one REPL command line. The returned error is a
// transport/lifecycle failure (closed, failed, queue full, context);
// command-level failures ride in CmdResponse.Err.
//
// When post fails — notably when ctx expires while the command is
// still executing — the captured response belongs to the actor, which
// may write it after we return; every error path here (and in the
// other ops below) must return zero values and never read it.
func (ss *Session) Cmd(ctx context.Context, line string) (CmdResponse, error) {
	// Planner verbs never reach the REPL: plan must run off-actor
	// (admission-controlled, cached), and apply-plan must journal each
	// constituent step — the REPL's in-process variants would do
	// neither on a daemon session.
	switch lineVerb(line) {
	case "plan", "plans", "apply-plan":
		return ss.planCmd(ctx, line)
	}
	mutating := mutatingLine(line)
	if mutating {
		if err := ss.readonlyErr(); err != nil {
			return CmdResponse{}, err
		}
	}
	var resp CmdResponse
	var roErr error
	err := ss.post(ctx, func() {
		if mutating {
			rec := &record{Op: recCmd, Line: line}
			if roErr = ss.journalAppend(rec); roErr != nil {
				return
			}
			defer ss.afterMutation(rec)
		}
		out, cmdErr := ss.exec(line)
		resp.Output = out
		if cmdErr != nil {
			resp.Err = cmdErr.Error()
		}
	}, true)
	if err != nil {
		return CmdResponse{}, err
	}
	if roErr != nil {
		return CmdResponse{}, roErr
	}
	return resp, nil
}

// Run executes the session's program through the unified execution
// API. Execution is a pure read — it never changes session state —
// so it is not journaled and stays available on read-only sessions;
// artifact-backed sessions materialize first because both backends
// consume the live AST.
func (ss *Session) Run(ctx context.Context, req RunRequest) (RunResponse, error) {
	ereq := core.ExecRequest{
		Backend:  req.Backend,
		Workers:  req.Workers,
		Timeout:  time.Duration(req.TimeoutMs) * time.Millisecond,
		CacheDir: ss.runCache,
		Fallback: req.Fallback,
		Gov:      ss.gov,
	}
	if w := workloads.ByName(strings.TrimSuffix(ss.path, ".f")); w != nil {
		ereq.Input = w.Input
	}
	var resp RunResponse
	var opErr error
	err := ss.post(ctx, func() {
		if opErr = ss.materialize(); opErr != nil {
			return
		}
		var res core.ExecResult
		if res, opErr = ss.live.Exec(ctx, ereq); opErr != nil {
			return
		}
		resp = RunResponse{
			Output:     res.Output,
			WallMicros: res.Wall.Microseconds(),
			SimCycles:  res.SimCycles,
			Backend:    res.Backend,
			Fallback:   res.FallbackReason,
		}
	}, true)
	if err != nil {
		return RunResponse{}, err
	}
	return resp, opErr
}

// Select switches unit and/or loop. Selection is session state that
// recovery must reproduce, so it journals like any other mutation.
func (ss *Session) Select(ctx context.Context, req SelectRequest) (SelectResponse, error) {
	if err := ss.readonlyErr(); err != nil {
		return SelectResponse{}, err
	}
	var resp SelectResponse
	var opErr error
	if err := ss.post(ctx, func() {
		rec := &record{Op: recSelect, Unit: req.Unit, Loop: req.Loop}
		if opErr = ss.journalAppend(rec); opErr != nil {
			return
		}
		defer ss.afterMutation(rec)
		resp, opErr = ss.doSelect(req)
	}, true); err != nil {
		return SelectResponse{}, err
	}
	return resp, opErr
}

// Deps lists the selected loop's dependences after filtering.
func (ss *Session) Deps(ctx context.Context, q DepQuery) (DepsResponse, error) {
	var resp DepsResponse
	if err := ss.post(ctx, func() { resp = ss.doDeps(q) }, true); err != nil {
		return DepsResponse{}, err
	}
	return resp, nil
}

// Classify overrides a variable's classification (materializes).
func (ss *Session) Classify(ctx context.Context, req ClassifyRequest) error {
	var c core.VarClass
	switch strings.ToLower(req.Class) {
	case "shared":
		c = core.ClassShared
	case "private":
		c = core.ClassPrivate
	case "reduction":
		c = core.ClassReduction
	default:
		return fmt.Errorf("unknown class %q", req.Class)
	}
	if err := ss.readonlyErr(); err != nil {
		return err
	}
	var opErr error
	if err := ss.post(ctx, func() {
		rec := &record{Op: recClassify, Var: req.Var, Class: strings.ToLower(req.Class)}
		if opErr = ss.journalAppend(rec); opErr != nil {
			return
		}
		defer ss.afterMutation(rec)
		if opErr = ss.materialize(); opErr == nil {
			opErr = ss.live.Classify(req.Var, c)
		}
	}, true); err != nil {
		return err
	}
	return opErr
}

// Transform checks or applies a power-steering transformation via the
// REPL grammar (name plus loop numbers / factors / variable names).
func (ss *Session) Transform(ctx context.Context, req TransformRequest) (CmdResponse, error) {
	verb := "apply"
	if req.CheckOnly {
		verb = "check"
	}
	line := verb + " " + req.Name
	if len(req.Args) > 0 {
		line += " " + strings.Join(req.Args, " ")
	}
	return ss.Cmd(ctx, line)
}

// Edit replaces (or deletes) a statement by ID (materializes).
func (ss *Session) Edit(ctx context.Context, req EditRequest) error {
	if err := ss.readonlyErr(); err != nil {
		return err
	}
	var opErr error
	if err := ss.post(ctx, func() {
		rec := &record{Op: recEdit, Stmt: req.Stmt, Text: req.Text, Delete: req.Delete}
		if opErr = ss.journalAppend(rec); opErr != nil {
			return
		}
		defer ss.afterMutation(rec)
		if opErr = ss.materialize(); opErr != nil {
			return
		}
		if req.Delete {
			opErr = ss.live.DeleteStmt(req.Stmt)
		} else {
			opErr = ss.live.EditStmt(req.Stmt, req.Text)
		}
	}, true); err != nil {
		return err
	}
	return opErr
}

// Undo reverts the last transformation or edit (materializes; a
// session with no mutations has nothing to undo, exactly as cold).
func (ss *Session) Undo(ctx context.Context) error {
	if err := ss.readonlyErr(); err != nil {
		return err
	}
	var opErr error
	if err := ss.post(ctx, func() {
		rec := &record{Op: recUndo}
		if opErr = ss.journalAppend(rec); opErr != nil {
			return
		}
		defer ss.afterMutation(rec)
		if opErr = ss.materialize(); opErr == nil {
			opErr = ss.live.Undo()
		}
	}, true); err != nil {
		return err
	}
	return opErr
}

// ---------------------------------------------------------------------------
// Journaling (actor-confined)

// mutatingVerbs classifies REPL verbs whose execution changes session
// state — the cursor, analysis overlays, or the program text — and
// must therefore be journaled before running. Every other verb is a
// pure read and is never journaled.
var mutatingVerbs = map[string]bool{
	"unit": true, "loop": true, "next": true,
	"mark": true, "assert": true, "classify": true,
	"apply": true, "edit": true, "delete": true,
	"undo": true, "set": true, "auto": true,
}

// stickyVerbs mutate state that lives outside the printed source
// (dependence marks, assertions, variable classes, analysis toggles).
// A source snapshot cannot represent that state, so once a sticky verb
// runs the journal stops compacting and keeps the full history.
var stickyVerbs = map[string]bool{
	"mark": true, "assert": true, "classify": true, "set": true,
}

func lineVerb(line string) string {
	f := strings.Fields(line)
	if len(f) == 0 {
		return ""
	}
	return strings.ToLower(f[0])
}

func mutatingLine(line string) bool { return mutatingVerbs[lineVerb(line)] }
func stickyLine(line string) bool   { return stickyVerbs[lineVerb(line)] }

// currentHash fingerprints the printed program — the PreHash integrity
// chain each journal record carries.
func (ss *Session) currentHash() string {
	if ss.live != nil {
		return srcHash(ss.live.Save())
	}
	return srcHash(ss.art.Printed)
}

// journalAppend writes rec (journal-before-apply: the mutation only
// runs if its record is durable per the fsync policy). An append
// failure degrades the session to read-only and returns the
// degradation error; with no journal it is free. This is also the
// migration freeze chokepoint: every mutating path calls it on the
// actor before applying, so a frozen session rejects here — durable or
// not — and nothing mutates behind an in-flight export.
func (ss *Session) journalAppend(rec *record) error {
	if err := ss.migratingErr(); err != nil {
		return err
	}
	if ss.jr == nil {
		return nil
	}
	rec.PreHash = ss.currentHash()
	if err := ss.jr.append(rec); err != nil {
		ss.degradeReadOnly(fmt.Sprintf("journal append: %v", err))
		return ss.readonlyErr()
	}
	return nil
}

// noteMutation updates compaction bookkeeping for one applied
// mutation — shared by the live path and crash-recovery replay.
func (ss *Session) noteMutation(rec *record) {
	if ss.jr == nil {
		return
	}
	if rec.Op == recClassify || (rec.Op == recCmd && stickyLine(rec.Line)) {
		ss.sticky = true
	}
	ss.mutsSinceSnap++
}

// afterMutation runs after a journaled mutation executes (whether the
// command itself succeeded or not — a journaled failure replays as the
// same failure): bookkeeping, then compaction when due.
func (ss *Session) afterMutation(rec *record) {
	ss.noteMutation(rec)
	ss.maybeSnapshot()
}

// maybeSnapshot compacts the journal to a single snapshot record once
// enough mutations have accumulated. Sticky state blocks compaction
// (the snapshot could not represent it), and a read-only session never
// rewrites. A failed rewrite leaves the old journal serving but
// degrades the session: the snapshot path just proved this disk is not
// accepting writes.
func (ss *Session) maybeSnapshot() {
	if ss.jr == nil || ss.snapEvery <= 0 || ss.mutsSinceSnap < ss.snapEvery ||
		ss.sticky || ss.readonly.Load() {
		return
	}
	snap := &record{Op: recSnapshot, Path: ss.path}
	if ss.live != nil {
		snap.Source = ss.live.Save()
		snap.Undo = ss.live.UndoStack()
		if u := ss.live.CurrentUnit(); u != nil {
			snap.Unit = u.Name
		}
		snap.Loop = ss.liveLoopOrdinal()
	} else {
		snap.Source = ss.art.Printed
		snap.Unit = ss.art.Units[ss.curUnit].Name
		snap.Loop = ss.curLoop
	}
	if err := ss.jr.rewrite(snap); err != nil {
		ss.degradeReadOnly(fmt.Sprintf("journal snapshot: %v", err))
		return
	}
	ss.mutsSinceSnap = 0
}

// applyRecord replays one journal record against a rebuilding session.
// It runs on the actor goroutine during recovery and calls the same
// internal methods the live path uses — but never journalAppend, so
// replay cannot re-journal what it reads. Command-level failures are
// deliberately ignored: a journaled command that failed re-fails
// identically, leaving identical state. The returned error means the
// replay itself cannot proceed (divergence, injected fault, broken
// record) and the caller degrades the session at the recovered prefix.
func (ss *Session) applyRecord(rec *record) error {
	if err := faultpoint.Hit(faultpoint.JournalReplay, ss.ID+":"+rec.Op); err != nil {
		return err
	}
	if rec.PreHash != "" {
		if h := ss.currentHash(); h != rec.PreHash {
			return fmt.Errorf("replay divergence at seq %d (%s): rebuilt source hash %.12s…, journal expected %.12s…",
				rec.Seq, rec.Op, h, rec.PreHash)
		}
	}
	switch rec.Op {
	case recCmd:
		_, _ = ss.exec(rec.Line)
	case recSelect:
		_, _ = ss.doSelect(SelectRequest{Unit: rec.Unit, Loop: rec.Loop})
	case recClassify:
		var c core.VarClass
		switch rec.Class {
		case "shared":
			c = core.ClassShared
		case "private":
			c = core.ClassPrivate
		case "reduction":
			c = core.ClassReduction
		default:
			return fmt.Errorf("replay: unknown class %q in seq %d", rec.Class, rec.Seq)
		}
		if err := ss.materialize(); err != nil {
			return err
		}
		_ = ss.live.Classify(rec.Var, c)
	case recEdit:
		if err := ss.materialize(); err != nil {
			return err
		}
		if rec.Delete {
			_ = ss.live.DeleteStmt(rec.Stmt)
		} else {
			_ = ss.live.EditStmt(rec.Stmt, rec.Text)
		}
	case recUndo:
		if err := ss.materialize(); err != nil {
			return err
		}
		_ = ss.live.Undo()
	default:
		return fmt.Errorf("replay: unknown record op %q at seq %d", rec.Op, rec.Seq)
	}
	ss.noteMutation(rec)
	return nil
}

// ---------------------------------------------------------------------------
// Actor-confined implementation

// materialize builds the live core.Session for an artifact-backed
// session and replays its selection. No-op when already live.
func (ss *Session) materialize() error {
	if ss.live != nil {
		return nil
	}
	cs, err := core.OpenObserved(ss.path, ss.source, ss.workers, ss.metrics)
	if err != nil {
		return fmt.Errorf("materialize: %v", err)
	}
	if ss.curUnit != ss.art.DefaultUnit {
		if err := cs.SelectUnit(ss.art.Units[ss.curUnit].Name); err != nil {
			return err
		}
	}
	if ss.curLoop > 0 {
		if err := cs.SelectLoop(ss.curLoop); err != nil {
			return err
		}
	}
	ss.live = cs
	ss.rep = repl.New(cs, io.Discard)
	ss.art = nil
	ss.metrics.Materializations.Inc()
	return nil
}

// exec runs one REPL line: artifact-backed sessions answer read-only
// commands from the cache; anything else materializes and delegates
// to the real REPL.
func (ss *Session) exec(line string) (string, error) {
	if ss.live == nil {
		if out, handled, err := ss.execArtifact(line); handled {
			return out, err
		}
		if err := ss.materialize(); err != nil {
			return "", err
		}
	}
	var buf bytes.Buffer
	ss.rep.Out = &buf
	err := ss.rep.Execute(line)
	ss.rep.Done = false // `quit` has no meaning server-side
	return buf.String(), err
}

// execArtifact serves a command from the immutable artifacts.
// handled=false means the command needs a live session.
func (ss *Session) execArtifact(line string) (out string, handled bool, err error) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return "", true, nil
	}
	cmd, args := strings.ToLower(fields[0]), fields[1:]
	art := ss.art
	cu := &art.Units[ss.curUnit]
	switch cmd {
	case "quit", "exit":
		// Session lifetime is managed by DELETE /v1/sessions/{id}.
		return "", true, nil
	case "help":
		return repl.HelpText(), true, nil
	case "legend":
		return view.Legend(), true, nil
	case "units":
		var b strings.Builder
		for i := range art.Units {
			marker := "  "
			if i == ss.curUnit {
				marker = "» "
			}
			fmt.Fprintf(&b, "%s%s %s\n", marker, art.Units[i].Kind, art.Units[i].Name)
		}
		return b.String(), true, nil
	case "unit":
		if len(args) != 1 {
			return "", true, fmt.Errorf("usage: unit <name>")
		}
		i := art.unitIndex(args[0])
		if i < 0 {
			return "", true, fmt.Errorf("no unit named %s", args[0])
		}
		ss.curUnit, ss.curLoop = i, 0
		return "", true, nil
	case "loops":
		return cu.LoopsText, true, nil
	case "loop":
		if len(args) < 1 {
			return "", true, fmt.Errorf("missing loop number")
		}
		n, aerr := strconv.Atoi(args[0])
		if aerr != nil {
			return "", true, fmt.Errorf("bad loop number %q", args[0])
		}
		if n < 1 || n > len(cu.Loops) {
			return "", true, fmt.Errorf("loop %d out of range (unit has %d)", n, len(cu.Loops))
		}
		ss.curLoop = n
		return cu.Loops[n-1].Summary + "\n", true, nil
	case "deps":
		if len(args) > 0 {
			return "", false, nil // filters need a live session
		}
		if ss.curLoop == 0 {
			return art.NoLoopDepPane, true, nil
		}
		return cu.Loops[ss.curLoop-1].DepPane, true, nil
	case "vars":
		if ss.curLoop == 0 {
			return art.NoLoopVarPane, true, nil
		}
		return cu.Loops[ss.curLoop-1].VarPane, true, nil
	case "perf":
		return cu.PerfText, true, nil
	case "save":
		return art.Printed, true, nil
	}
	return "", false, nil
}

func (ss *Session) doSelect(req SelectRequest) (SelectResponse, error) {
	var resp SelectResponse
	if ss.live == nil {
		art := ss.art
		if req.Unit != "" {
			i := art.unitIndex(req.Unit)
			if i < 0 {
				return resp, fmt.Errorf("no unit named %s", req.Unit)
			}
			ss.curUnit, ss.curLoop = i, 0
		}
		if req.Loop != 0 {
			n := len(art.Units[ss.curUnit].Loops)
			if req.Loop < 1 || req.Loop > n {
				return resp, fmt.Errorf("loop %d out of range (unit has %d)", req.Loop, n)
			}
			ss.curLoop = req.Loop
		}
		resp.Unit = art.Units[ss.curUnit].Name
		resp.Loop = ss.curLoop
		if ss.curLoop > 0 {
			resp.Summary = art.Units[ss.curUnit].Loops[ss.curLoop-1].Summary
		} else {
			resp.Summary = "no loop selected"
		}
		return resp, nil
	}
	if req.Unit != "" {
		if err := ss.live.SelectUnit(req.Unit); err != nil {
			return resp, err
		}
	}
	if req.Loop != 0 {
		if err := ss.live.SelectLoop(req.Loop); err != nil {
			return resp, err
		}
	}
	resp.Unit = ss.live.CurrentUnit().Name
	resp.Loop = ss.liveLoopOrdinal()
	resp.Summary = view.DepSummary(ss.live)
	return resp, nil
}

// liveLoopOrdinal finds the 1-based source-order number of the
// selected loop, or 0.
func (ss *Session) liveLoopOrdinal() int {
	sel := ss.live.SelectedLoop()
	if sel == nil {
		return 0
	}
	for i, l := range ss.live.Loops() {
		if l.Do == sel.Do {
			return i + 1
		}
	}
	return 0
}

func (ss *Session) doDeps(q DepQuery) DepsResponse {
	var resp DepsResponse
	if ss.live == nil {
		resp.Unit = ss.art.Units[ss.curUnit].Name
		resp.Loop = ss.curLoop
		if ss.curLoop > 0 {
			resp.Deps = filterInfos(ss.art.Units[ss.curUnit].Loops[ss.curLoop-1].Deps, q)
		} else {
			resp.Deps = []DepInfo{}
		}
		return resp
	}
	resp.Unit = ss.live.CurrentUnit().Name
	resp.Loop = ss.liveLoopOrdinal()
	resp.Deps = filterInfos(depInfos(ss.live), q)
	return resp
}
