package server

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"parascope/internal/faultpoint"
)

// migratePair is two daemons wired for migration tests: source and
// target, each a real Manager behind a real HTTP server.
type migratePair struct {
	srcMgr, dstMgr *Manager
	src, dst       *httptest.Server
	srcDir, dstDir string
}

func newMigratePair(t *testing.T, durable bool) *migratePair {
	t.Helper()
	p := &migratePair{}
	mk := func(dir string) *Manager {
		cfg := Config{CacheSize: 8}
		if durable {
			cfg.DataDir = dir
			cfg.Fsync = FsyncAlways
		}
		m := NewManager(cfg)
		t.Cleanup(m.Shutdown)
		return m
	}
	p.srcDir, p.dstDir = t.TempDir(), t.TempDir()
	p.srcMgr, p.dstMgr = mk(p.srcDir), mk(p.dstDir)
	p.src = httptest.NewServer(New(p.srcMgr))
	p.dst = httptest.NewServer(New(p.dstMgr))
	t.Cleanup(p.src.Close)
	t.Cleanup(p.dst.Close)
	return p
}

// TestMigrateRoundTrip pins the whole zero-loss protocol: a mutated
// session moves between nodes and every acknowledged mutation arrives
// byte-identically; the source keeps a tombstone that answers 421 with
// a Location, and a redirect-following client rides the move without
// ever seeing it.
func TestMigrateRoundTrip(t *testing.T) {
	for _, durable := range []bool{true, false} {
		t.Run(fmt.Sprintf("durable=%v", durable), func(t *testing.T) {
			p := newMigratePair(t, durable)
			cl := NewClient(p.src.URL)
			open, err := cl.Open(bg, OpenRequest{Workload: "direct"})
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			id := open.ID
			if _, err := cl.Cmd(bg, id, "loop 1"); err != nil {
				t.Fatalf("loop: %v", err)
			}
			if _, err := cl.Cmd(bg, id, "apply parallelize 1"); err != nil {
				t.Fatalf("parallelize: %v", err)
			}
			want, err := cl.Cmd(bg, id, "save")
			if err != nil {
				t.Fatalf("save: %v", err)
			}
			if !strings.Contains(want.Output, "doall") {
				t.Fatalf("parallelize left no annotation:\n%s", want.Output)
			}

			mresp, err := cl.Migrate(bg, id, p.dst.URL)
			if err != nil {
				t.Fatalf("migrate: %v", err)
			}
			if mresp.ID != id || mresp.Bytes <= 0 {
				t.Fatalf("migrate response: %+v", mresp)
			}

			// The target owns it now, byte for byte, and stays mutable.
			dcl := NewClient(p.dst.URL)
			got, err := dcl.Cmd(bg, id, "save")
			if err != nil {
				t.Fatalf("save on target: %v", err)
			}
			if got.Output != want.Output {
				t.Fatalf("migrated source differs:\nwant %s\ngot  %s", want.Output, got.Output)
			}
			if _, err := dcl.Cmd(bg, id, "undo"); err != nil {
				t.Errorf("migrated session not mutable: %v", err)
			}

			// The source answers 421 + Location for the old ID. Use a raw
			// request — the resilient client would follow the redirect.
			resp, err := http.Get(p.src.URL + "/v1/sessions/" + id)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusMisdirectedRequest {
				t.Fatalf("source after migration: %d, want 421", resp.StatusCode)
			}
			wantLoc := p.dst.URL + "/v1/sessions/" + id
			if loc := resp.Header.Get("Location"); loc != wantLoc {
				t.Fatalf("Location %q, want %q", loc, wantLoc)
			}

			// A client still pointed at the source follows the move.
			st, err := cl.Status(bg, id)
			if err != nil {
				t.Fatalf("client did not follow the migration redirect: %v", err)
			}
			if st.ID != id {
				t.Fatalf("followed status: %+v", st)
			}

			if durable {
				// The shipped journal left the source's disk; the
				// tombstone is durable instead.
				if _, err := os.Stat(filepath.Join(p.srcDir, id+".wal")); !errors.Is(err, os.ErrNotExist) {
					t.Errorf("source wal still on disk after migration: %v", err)
				}
				if _, err := os.Stat(filepath.Join(p.srcDir, id+".moved")); err != nil {
					t.Errorf("no durable tombstone: %v", err)
				}
			}
		})
	}
}

// TestMigrateFrozenSessionRejectsMutations: while a session is frozen
// mid-migration, mutating requests answer 503 ErrSessionMigrating —
// never silently drop — and the freeze lifts if migration fails.
func TestMigrateFrozenSessionRejectsMutations(t *testing.T) {
	m := newTestManager(t, Config{CacheSize: 8})
	ss, resp := mustOpen(t, m, "direct")
	if !ss.freeze() {
		t.Fatal("freeze refused on an idle session")
	}
	if _, err := ss.Cmd(bg, "loop 1"); !errors.Is(err, ErrSessionMigrating) {
		t.Fatalf("mutation on frozen session: %v, want ErrSessionMigrating", err)
	}
	// Reads still serve on a frozen session.
	if got := ss.Info(bg).ID; got != resp.ID {
		t.Fatalf("Info on frozen session: %q, want %q", got, resp.ID)
	}
	// A second migration cannot start while one is in flight.
	if _, err := m.Migrate(bg, ss, "http://nowhere.invalid"); !errors.Is(err, ErrSessionMigrating) {
		t.Fatalf("concurrent migrate: %v, want ErrSessionMigrating", err)
	}
	ss.unfreeze()
	if _, err := ss.Cmd(bg, "loop 1"); err != nil {
		t.Fatalf("mutation after unfreeze: %v", err)
	}
}

// TestImportRejectionMatrix: the import endpoint must reject torn,
// corrupt, empty, and hostile-ID streams whole — unlike startup
// recovery it never truncates-and-accepts, because the source is still
// alive and authoritative — and a duplicate ID is a 409.
func TestImportRejectionMatrix(t *testing.T) {
	p := newMigratePair(t, true)
	cl := NewClient(p.src.URL)
	open, err := cl.Open(bg, OpenRequest{Workload: "direct"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Cmd(bg, open.ID, "loop 1"); err != nil {
		t.Fatal(err)
	}
	stream, err := cl.ExportJournal(bg, open.ID)
	if err != nil {
		t.Fatal(err)
	}

	dcl := NewClient(p.dst.URL)
	corrupt := append([]byte(nil), stream...)
	corrupt[6] ^= 0x40
	cases := []struct {
		name    string
		id      string
		stream  []byte
		wantMsg string
	}{
		{"torn", "imp-torn", stream[:len(stream)-1], "torn"},
		{"empty", "imp-empty", nil, "empty"},
		{"corrupt", "imp-corrupt", corrupt, "corrupt"},
		{"bad id", "../evil", stream, "session ID"},
	}
	for _, c := range cases {
		_, err := dcl.Import(bg, c.id, c.stream)
		if err == nil {
			t.Errorf("%s: import accepted, want rejection", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.wantMsg) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.wantMsg)
		}
		if p.dstMgr.Get(c.id) != nil {
			t.Errorf("%s: rejected import still registered a session", c.name)
		}
	}
	if got := p.dstMgr.Metrics().ImportsRejected.Value(); got < 3 {
		t.Errorf("ImportsRejected = %d, want >= 3", got)
	}

	// A valid stream under an ID that's already live is a 409.
	if _, err := dcl.Import(bg, open.ID, stream); err != nil {
		t.Fatalf("first import: %v", err)
	}
	_, err = dcl.Import(bg, open.ID, stream)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusConflict {
		t.Fatalf("duplicate import: %v, want 409", err)
	}
}

// TestMigrateTornStreamChaos arms the migrate-stream faultpoint so the
// outbound stream tears one byte short mid-ship: the target must
// reject the whole stream, and the source must stay authoritative and
// mutable — the all-or-nothing property under real fault injection.
func TestMigrateTornStreamChaos(t *testing.T) {
	disarm := faultpoint.Arm(faultpoint.MigrateStream, faultpoint.Fault{Err: errors.New("injected tear")})
	defer disarm()

	p := newMigratePair(t, true)
	cl := NewClient(p.src.URL)
	open, err := cl.Open(bg, OpenRequest{Workload: "direct"})
	if err != nil {
		t.Fatal(err)
	}
	id := open.ID
	if _, err := cl.Cmd(bg, id, "loop 1"); err != nil {
		t.Fatal(err)
	}
	want, err := cl.Cmd(bg, id, "save")
	if err != nil {
		t.Fatal(err)
	}

	if _, err := cl.Migrate(bg, id, p.dst.URL); err == nil {
		t.Fatal("migration of a torn stream succeeded; target accepted partial state")
	}
	if faultpoint.Fired(faultpoint.MigrateStream) == 0 {
		t.Fatal("fault never fired; the chaos test tested nothing")
	}

	// Target adopted nothing.
	if p.dstMgr.Get(id) != nil {
		t.Error("target registered a session from a torn stream")
	}
	// Source is authoritative: same bytes, still mutable, no tombstone.
	got, err := cl.Cmd(bg, id, "save")
	if err != nil {
		t.Fatalf("source unusable after failed migration: %v", err)
	}
	if got.Output != want.Output {
		t.Errorf("source mutated by failed migration:\nwant %s\ngot  %s", want.Output, got.Output)
	}
	if _, moved := p.srcMgr.MovedTo(id); moved {
		t.Error("failed migration left a tombstone")
	}
	if _, err := cl.Cmd(bg, id, "apply parallelize 1"); err != nil {
		t.Errorf("source not mutable after failed migration: %v", err)
	}
	if got := p.srcMgr.Metrics().MigrationsFailed.Value(); got == 0 {
		t.Error("MigrationsFailed not incremented")
	}

	// Disarmed, the same migration succeeds.
	disarm()
	if _, err := cl.Migrate(bg, id, p.dst.URL); err != nil {
		t.Fatalf("migration after disarm: %v", err)
	}
}

// TestTombstoneSurvivesRestart: a durable tombstone must keep
// answering 421 after the source node restarts, and a stale journal
// shadowed by a tombstone must be removed, not resurrected as a fork.
func TestTombstoneSurvivesRestart(t *testing.T) {
	p := newMigratePair(t, true)
	cl := NewClient(p.src.URL)
	open, err := cl.Open(bg, OpenRequest{Workload: "direct"})
	if err != nil {
		t.Fatal(err)
	}
	id := open.ID
	if _, err := cl.Cmd(bg, id, "loop 1"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Migrate(bg, id, p.dst.URL); err != nil {
		t.Fatal(err)
	}

	// Plant a stale wal under the tombstoned ID, as if a crash had
	// raced the migration's journal removal.
	stale := filepath.Join(p.srcDir, id+".wal")
	if err := os.WriteFile(stale, []byte("stale"), 0o644); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh manager over the same datadir.
	m2 := NewManager(Config{CacheSize: 8, DataDir: p.srcDir, Fsync: FsyncAlways})
	t.Cleanup(m2.Shutdown)
	st, err := m2.Recover()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if st.Moved != 1 {
		t.Errorf("recovery stats: %+v, want Moved 1", st)
	}
	target, ok := m2.MovedTo(id)
	if !ok || target != p.dst.URL {
		t.Errorf("tombstone lost across restart: %q %v", target, ok)
	}
	if _, err := os.Stat(stale); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("stale wal behind tombstone not removed: %v", err)
	}

	// DELETE clears the tombstone; the ID is then simply unknown.
	if !m2.Close(id) {
		t.Fatal("Close on a tombstoned ID returned false")
	}
	if _, ok := m2.MovedTo(id); ok {
		t.Error("tombstone survived DELETE")
	}
}

// TestOpenWithExplicitID: the gateway mints IDs and passes them via
// OpenRequest.ID; the daemon must honor them, 409 duplicates, and
// refuse filesystem-hostile IDs.
func TestOpenWithExplicitID(t *testing.T) {
	m := newTestManager(t, Config{CacheSize: 8})
	ts := httptest.NewServer(New(m))
	defer ts.Close()
	cl := NewClient(ts.URL)

	open, err := cl.Open(bg, OpenRequest{Workload: "direct", ID: "gw-minted-1"})
	if err != nil {
		t.Fatal(err)
	}
	if open.ID != "gw-minted-1" {
		t.Fatalf("explicit ID not honored: %q", open.ID)
	}

	_, err = cl.Open(bg, OpenRequest{Workload: "direct", ID: "gw-minted-1"})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusConflict {
		t.Fatalf("duplicate explicit ID: %v, want 409", err)
	}

	for _, bad := range []string{"../evil", "a b", "x/y", strings.Repeat("z", 65)} {
		if _, err := cl.Open(bg, OpenRequest{Workload: "direct", ID: bad}); err == nil {
			t.Errorf("hostile ID %q accepted", bad)
		}
	}
}

// TestClientRedirectLoopAndHopBound: stale tombstones pointing at each
// other must yield a clear loop error; a chain longer than the hop
// bound must give up with a clear error; and the request ID must stay
// constant across hops so the journey correlates in every node's log.
func TestClientRedirectLoopAndHopBound(t *testing.T) {
	var mu sync.Mutex
	reqIDs := map[string]bool{}
	mkRedirect := func(loc *string) *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			mu.Lock()
			reqIDs[r.Header.Get("X-Request-ID")] = true
			mu.Unlock()
			w.Header().Set("Location", *loc+r.URL.RequestURI())
			w.WriteHeader(http.StatusMisdirectedRequest)
		}))
	}

	// Two nodes 421-ing at each other: loop error.
	var locA, locB string
	a := mkRedirect(&locB)
	b := mkRedirect(&locA)
	defer a.Close()
	defer b.Close()
	locA, locB = a.URL, b.URL

	cl := NewClient(a.URL)
	_, err := cl.Status(bg, "looped")
	if err == nil || !strings.Contains(err.Error(), "loop") {
		t.Fatalf("redirect loop: %v, want loop error", err)
	}
	mu.Lock()
	if len(reqIDs) != 1 {
		t.Errorf("request ID changed across hops: %d distinct IDs", len(reqIDs))
	}
	reqIDs = map[string]bool{}
	mu.Unlock()

	// A chain of distinct nodes longer than the hop budget: give up.
	next := ""
	var chain []*httptest.Server
	for i := 0; i < maxRedirectHops+2; i++ {
		loc := next
		s := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Location", loc+r.URL.RequestURI())
			w.WriteHeader(http.StatusMisdirectedRequest)
		}))
		defer s.Close()
		chain = append(chain, s)
		next = s.URL
	}
	cl = NewClient(chain[len(chain)-1].URL)
	_, err = cl.Status(bg, "deep")
	if err == nil || !strings.Contains(err.Error(), "gave up") {
		t.Fatalf("redirect chain: %v, want gave-up error", err)
	}
}

// TestClientFollows307: a 307 + Location (proxy handoff) is followed
// like a 421, preserving method and body.
func TestClientFollows307(t *testing.T) {
	var gotBody string
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b, _ := io.ReadAll(r.Body)
		gotBody = string(b)
		writeJSON(w, http.StatusOK, CmdResponse{Output: "ok"})
	}))
	defer backend.Close()
	front := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Location", backend.URL+r.URL.RequestURI())
		w.WriteHeader(http.StatusTemporaryRedirect)
	}))
	defer front.Close()

	cl := NewClient(front.URL)
	resp, err := cl.Cmd(bg, "s1", "loops")
	if err != nil {
		t.Fatalf("307 follow: %v", err)
	}
	if resp.Output != "ok" {
		t.Fatalf("307 follow response: %+v", resp)
	}
	if !strings.Contains(gotBody, "loops") {
		t.Errorf("method/body not preserved across 307: %q", gotBody)
	}
}

// TestCleanJournalStream: the gateway's failover pre-clean truncates a
// torn tail (unacknowledged work) but refuses corruption outright.
func TestCleanJournalStream(t *testing.T) {
	p := newMigratePair(t, true)
	cl := NewClient(p.src.URL)
	open, err := cl.Open(bg, OpenRequest{Workload: "direct"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Cmd(bg, open.ID, "loop 1"); err != nil {
		t.Fatal(err)
	}
	stream, err := cl.ExportJournal(bg, open.ID)
	if err != nil {
		t.Fatal(err)
	}

	clean, err := CleanJournalStream(stream)
	if err != nil || len(clean) != len(stream) {
		t.Fatalf("clean stream mangled: %d -> %d, %v", len(stream), len(clean), err)
	}
	torn, err := CleanJournalStream(stream[:len(stream)-1])
	if err != nil {
		t.Fatalf("torn tail not truncated: %v", err)
	}
	if len(torn) >= len(stream) {
		t.Fatalf("torn clean did not shrink: %d", len(torn))
	}
	// The cleaned torn stream is importable.
	dcl := NewClient(p.dst.URL)
	if _, err := dcl.Import(bg, "cleaned", torn); err != nil {
		t.Fatalf("cleaned stream rejected: %v", err)
	}

	corrupt := append([]byte(nil), stream...)
	corrupt[6] ^= 0x40
	if _, err := CleanJournalStream(corrupt); err == nil {
		t.Fatal("mid-stream corruption not refused")
	}
	if _, err := CleanJournalStream(nil); err == nil {
		t.Fatal("empty stream not refused")
	}
}
