package server

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// This file is the generic half of the observability substrate:
// counter, gauge, and histogram primitives on sync/atomic (no
// dependencies) and a Registry that renders them in the Prometheus
// text exposition format. It knows nothing about pedd — the daemon's
// pedd_-prefixed families live in metrics.go, and the gateway's
// pedgw_-prefixed families live in internal/cluster, both on this
// same machinery, so every binary in the fleet scrapes identically.

// Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Set overwrites the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Value reads the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into cumulative le-buckets and keeps
// the running sum, Prometheus-style. Observations are lock-free; a
// scrape that races an Observe may see the buckets one observation
// ahead of the sum, which monitoring tolerates by design.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	sum    atomic.Uint64   // float64 bits, CAS-updated
	count  atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.counts[sort.SearchFloat64s(h.bounds, v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count reads the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum reads the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// CounterVec is a family of counters split by label values.
type CounterVec struct {
	mu sync.RWMutex
	m  map[string]*Counter
}

// With returns the counter for the given label values, creating it on
// first use. Values must match the family's label names in count and
// order.
func (v *CounterVec) With(values ...string) *Counter {
	key := strings.Join(values, "\xff")
	v.mu.RLock()
	c := v.m[key]
	v.mu.RUnlock()
	if c != nil {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c := v.m[key]; c != nil {
		return c
	}
	c = &Counter{}
	v.m[key] = c
	return c
}

// GaugeVec is a family of gauges split by label values.
type GaugeVec struct {
	mu sync.RWMutex
	m  map[string]*Gauge
}

// With returns the gauge for the given label values, creating it on
// first use.
func (v *GaugeVec) With(values ...string) *Gauge {
	key := strings.Join(values, "\xff")
	v.mu.RLock()
	g := v.m[key]
	v.mu.RUnlock()
	if g != nil {
		return g
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if g := v.m[key]; g != nil {
		return g
	}
	g = &Gauge{}
	v.m[key] = g
	return g
}

// HistogramVec is a family of histograms split by label values.
type HistogramVec struct {
	bounds []float64
	mu     sync.RWMutex
	m      map[string]*Histogram
}

// With returns the histogram for the given label values, creating it
// on first use.
func (v *HistogramVec) With(values ...string) *Histogram {
	key := strings.Join(values, "\xff")
	v.mu.RLock()
	h := v.m[key]
	v.mu.RUnlock()
	if h != nil {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h := v.m[key]; h != nil {
		return h
	}
	h = newHistogram(v.bounds)
	v.m[key] = h
	return h
}

// family is one named metric with its exposition metadata.
type family struct {
	name   string
	help   string
	kind   string // "counter", "gauge", "histogram"
	labels []string

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	cvec    *CounterVec
	gvec    *GaugeVec
	hvec    *HistogramVec
}

// Registry is a set of named metric families rendered together. It is
// append-only: constructors register a family and return its handle.
type Registry struct {
	families []*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter registers and returns a counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.families = append(r.families, &family{name: name, help: help, kind: "counter", counter: c})
	return c
}

// Gauge registers and returns a gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.families = append(r.families, &family{name: name, help: help, kind: "gauge", gauge: g})
	return g
}

// Histogram registers and returns a histogram with the given buckets.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	h := newHistogram(bounds)
	r.families = append(r.families, &family{name: name, help: help, kind: "histogram", hist: h})
	return h
}

// CounterVec registers and returns a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	v := &CounterVec{m: map[string]*Counter{}}
	r.families = append(r.families, &family{name: name, help: help, kind: "counter", labels: labels, cvec: v})
	return v
}

// GaugeVec registers and returns a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	v := &GaugeVec{m: map[string]*Gauge{}}
	r.families = append(r.families, &family{name: name, help: help, kind: "gauge", labels: labels, gvec: v})
	return v
}

// HistogramVec registers and returns a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	v := &HistogramVec{bounds: bounds, m: map[string]*Histogram{}}
	r.families = append(r.families, &family{name: name, help: help, kind: "histogram", labels: labels, hvec: v})
	return v
}

// WriteProm renders every registered metric in the Prometheus text
// exposition format (version 0.0.4), families in registration order
// and label children in sorted order, so output is deterministic for
// a quiescent registry.
func (r *Registry) WriteProm(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.families {
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		switch {
		case f.counter != nil:
			fmt.Fprintf(bw, "%s %d\n", f.name, f.counter.Value())
		case f.gauge != nil:
			fmt.Fprintf(bw, "%s %d\n", f.name, f.gauge.Value())
		case f.hist != nil:
			writeHistogram(bw, f.name, "", f.hist)
		case f.cvec != nil:
			f.cvec.mu.RLock()
			for _, key := range sortedKeys(f.cvec.m) {
				fmt.Fprintf(bw, "%s{%s} %d\n", f.name, promLabels(f.labels, key), f.cvec.m[key].Value())
			}
			f.cvec.mu.RUnlock()
		case f.gvec != nil:
			f.gvec.mu.RLock()
			for _, key := range sortedKeys(f.gvec.m) {
				fmt.Fprintf(bw, "%s{%s} %d\n", f.name, promLabels(f.labels, key), f.gvec.m[key].Value())
			}
			f.gvec.mu.RUnlock()
		case f.hvec != nil:
			f.hvec.mu.RLock()
			for _, key := range sortedKeys(f.hvec.m) {
				writeHistogram(bw, f.name, promLabels(f.labels, key), f.hvec.m[key])
			}
			f.hvec.mu.RUnlock()
		}
	}
	return bw.Flush()
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// writeHistogram emits the cumulative buckets, sum, and count of one
// histogram child. labels is the pre-rendered label list without
// braces ("" for an unlabeled histogram).
func writeHistogram(w io.Writer, name, labels string, h *Histogram) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{%s%sle=\"%s\"} %d\n",
			name, labels, sep, formatFloat(b), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, cum)
	if labels != "" {
		fmt.Fprintf(w, "%s_sum{%s} %s\n", name, labels, formatFloat(h.Sum()))
		fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, cum)
	} else {
		fmt.Fprintf(w, "%s_sum %s\n", name, formatFloat(h.Sum()))
		fmt.Fprintf(w, "%s_count %d\n", name, cum)
	}
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// promLabels renders `name="value",...` for one vec child key.
func promLabels(names []string, key string) string {
	values := strings.Split(key, "\xff")
	var b strings.Builder
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		v := ""
		if i < len(values) {
			v = values[i]
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(v))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// Handler serves the registry in the Prometheus text format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteProm(w)
	})
}
