package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestOpErrorStatusTable pins the error → status mapping used by
// every session handler: only a closed session is 410; a quarantined
// session is 500, backpressure is 429, deadlines are 504, client
// disconnects are 499, and everything else is a 422 command-level
// rejection.
func TestOpErrorStatusTable(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"closed", ErrSessionClosed, http.StatusGone},
		{"closed wrapped", fmt.Errorf("op: %w", ErrSessionClosed), http.StatusGone},
		{"failed", ErrSessionFailed, http.StatusInternalServerError},
		{"failed wrapped", fmt.Errorf("%w: analysis panicked", ErrSessionFailed), http.StatusInternalServerError},
		{"readonly", ErrSessionReadOnly, http.StatusServiceUnavailable},
		{"readonly wrapped", fmt.Errorf("%w: journal append: disk full", ErrSessionReadOnly), http.StatusServiceUnavailable},
		{"queue full", ErrQueueFull, http.StatusTooManyRequests},
		{"migrating", ErrSessionMigrating, http.StatusServiceUnavailable},
		{"migrating wrapped", fmt.Errorf("%w: frozen for handoff", ErrSessionMigrating), http.StatusServiceUnavailable},
		{"exists", ErrSessionExists, http.StatusConflict},
		{"exists wrapped", fmt.Errorf("open: %w", ErrSessionExists), http.StatusConflict},
		{"plan conflict", ErrPlanConflict, http.StatusConflict},
		{"deadline", context.DeadlineExceeded, http.StatusGatewayTimeout},
		{"canceled", context.Canceled, statusClientClosedRequest},
		{"command error", errors.New("loop 99 out of range"), http.StatusUnprocessableEntity},
	}
	for _, c := range cases {
		w := httptest.NewRecorder()
		writeOpError(w, c.err)
		if w.Code != c.want {
			t.Errorf("%s: status %d, want %d", c.name, w.Code, c.want)
		}
		if c.err == ErrQueueFull && w.Header().Get("Retry-After") == "" {
			t.Error("429 without Retry-After")
		}
		if c.err == ErrSessionMigrating && w.Header().Get("Retry-After") == "" {
			t.Error("migrating 503 without Retry-After (the freeze is transient; clients should retry)")
		}
	}
}

// sessionHandlers enumerates every {id}-scoped handler with a request
// that is valid at the JSON layer, so lifecycle errors — not body
// errors — decide the status.
func sessionHandlers(s *Server) map[string]func(w http.ResponseWriter, ss *Session) {
	mk := func(h func(http.ResponseWriter, *http.Request, *Session), method, body string) func(http.ResponseWriter, *Session) {
		return func(w http.ResponseWriter, ss *Session) {
			var rd io.Reader
			if body != "" {
				rd = strings.NewReader(body)
			}
			h(w, httptest.NewRequest(method, "/", rd), ss)
		}
	}
	return map[string]func(http.ResponseWriter, *Session){
		"cmd":       mk(s.handleCmd, http.MethodPost, `{"line":"loops"}`),
		"select":    mk(s.handleSelect, http.MethodPost, `{"loop":1}`),
		"deps":      mk(s.handleDeps, http.MethodGet, ""),
		"classify":  mk(s.handleClassify, http.MethodPost, `{"var":"a","class":"private"}`),
		"transform": mk(s.handleTransform, http.MethodPost, `{"name":"parallelize","args":["1"],"check_only":true}`),
		"edit":      mk(s.handleEdit, http.MethodPost, `{"stmt":1,"text":"x = 1"}`),
		"undo":      mk(s.handleUndo, http.MethodPost, ""),
	}
}

// TestClosedSessionIs410Everywhere covers the regression where
// handleCmd and handleTransform mapped *every* session error to 410:
// now a closed session is 410 on every handler, and a quarantined
// session is 500 on every handler — never the other way around.
func TestClosedAndFailedSessionStatusAllHandlers(t *testing.T) {
	m := newTestManager(t, Config{CacheSize: 8})
	srv := New(m)

	closed, closedResp := mustOpen(t, m, "onedim")
	m.Close(closedResp.ID)

	failed, _ := mustOpen(t, m, "onedim")
	failed.quarantine("injected panic for status test", []byte("stack"))

	for name, call := range sessionHandlers(srv) {
		w := httptest.NewRecorder()
		call(w, closed)
		if w.Code != http.StatusGone {
			t.Errorf("%s on closed session: status %d, want 410 (body %s)", name, w.Code, w.Body.String())
		}
		w = httptest.NewRecorder()
		call(w, failed)
		if w.Code != http.StatusInternalServerError {
			t.Errorf("%s on failed session: status %d, want 500 (body %s)", name, w.Code, w.Body.String())
		}
		if !strings.Contains(w.Body.String(), "session failed") {
			t.Errorf("%s on failed session: diagnostic body missing, got %s", name, w.Body.String())
		}
	}
}

// TestHTTPStatusCodes drives the real HTTP stack through every
// distinct rejection: malformed bodies, unknown fields, trailing
// garbage, oversized bodies, unknown sessions/workloads, command
// errors, and the session cap.
func TestHTTPStatusCodes(t *testing.T) {
	m := newTestManager(t, Config{CacheSize: 8, MaxSessions: 2})
	ts := httptest.NewServer(NewWith(m, Options{MaxBodyBytes: 4096}))
	defer ts.Close()

	post := func(path, body string) (int, string) {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}
	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	// Malformed JSON.
	if code, _ := post("/v1/sessions", `{"workload":`); code != http.StatusBadRequest {
		t.Errorf("malformed JSON: %d, want 400", code)
	}
	// Unknown field, named in the message.
	code, body := post("/v1/sessions", `{"wrkload":"onedim"}`)
	if code != http.StatusBadRequest {
		t.Errorf("unknown field: %d, want 400", code)
	}
	if !strings.Contains(body, "wrkload") {
		t.Errorf("unknown-field message does not name the field: %s", body)
	}
	// Trailing garbage after the JSON value.
	code, body = post("/v1/sessions", `{"workload":"onedim"} {"x":1}`)
	if code != http.StatusBadRequest {
		t.Errorf("trailing garbage: %d, want 400", code)
	}
	if !strings.Contains(body, "trailing") {
		t.Errorf("trailing-garbage message: %s", body)
	}
	// Oversized body.
	big := `{"path":"big.f","source":"` + strings.Repeat("x", 8192) + `"}`
	if code, _ := post("/v1/sessions", big); code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: %d, want 413", code)
	}
	// Unknown workload / empty open are command-level rejections.
	if code, _ := post("/v1/sessions", `{"workload":"nosuch"}`); code != http.StatusUnprocessableEntity {
		t.Errorf("unknown workload: %d, want 422", code)
	}
	if code, _ := post("/v1/sessions", `{}`); code != http.StatusUnprocessableEntity {
		t.Errorf("empty open: %d, want 422", code)
	}
	// Unknown session on every {id} route.
	for _, r := range []struct{ method, path, body string }{
		{"POST", "/v1/sessions/nope/cmd", `{"line":"loops"}`},
		{"POST", "/v1/sessions/nope/select", `{"loop":1}`},
		{"GET", "/v1/sessions/nope/deps", ""},
		{"GET", "/v1/sessions/nope", ""},
		{"POST", "/v1/sessions/nope/classify", `{"var":"a","class":"private"}`},
		{"POST", "/v1/sessions/nope/transform", `{"name":"parallelize"}`},
		{"POST", "/v1/sessions/nope/edit", `{"stmt":1,"text":"x = 1"}`},
		{"POST", "/v1/sessions/nope/undo", ""},
	} {
		var code int
		if r.method == "GET" {
			code, _ = get(r.path)
		} else {
			code, _ = post(r.path, r.body)
		}
		if code != http.StatusNotFound {
			t.Errorf("%s %s: %d, want 404", r.method, r.path, code)
		}
	}

	// Fill the session cap, then expect 503 + Retry-After. Session IDs
	// are random — capture them from the open responses.
	openID := func() string {
		t.Helper()
		code, body := post("/v1/sessions", `{"workload":"onedim"}`)
		if code != http.StatusCreated {
			t.Fatalf("open: %d (%s)", code, body)
		}
		var got struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal([]byte(body), &got); err != nil || got.ID == "" {
			t.Fatalf("open response ID: %v (%s)", err, body)
		}
		return got.ID
	}
	id1 := openID()
	id2 := openID()
	resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", strings.NewReader(`{"workload":"onedim"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("open past cap: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	// Closing a session frees a slot.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/"+id1, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("close: %d", dresp.StatusCode)
	}
	if code, _ := post("/v1/sessions", `{"workload":"onedim"}`); code != http.StatusCreated {
		t.Errorf("open after close: %d, want 201", code)
	}

	// A command-level failure on a live session is 422, not 410.
	if code, _ := post("/v1/sessions/"+id2+"/select", `{"loop":99}`); code != http.StatusUnprocessableEntity {
		t.Errorf("bad select: %d, want 422", code)
	}

	// Status endpoint for a healthy session.
	code, body = get("/v1/sessions/" + id2)
	if code != http.StatusOK {
		t.Errorf("status: %d, want 200", code)
	}
	if !strings.Contains(body, `"state":"active"`) {
		t.Errorf("status body missing active state: %s", body)
	}
}

// TestRequestDeadline504 checks the per-request deadline end to end:
// a command that outlives Options.ReqTimeout answers 504 instead of
// hanging the client.
func TestRequestDeadline504(t *testing.T) {
	m := newTestManager(t, Config{CacheSize: 8})
	ts := httptest.NewServer(NewWith(m, Options{ReqTimeout: 50 * time.Millisecond}))
	defer ts.Close()

	_, resp := mustOpen(t, m, "onedim")
	ss := m.Get(resp.ID)
	// Wedge the actor directly (a sleeping command), then issue an
	// HTTP request that must time out while queued.
	block := make(chan struct{})
	go ss.post(context.Background(), func() { <-block }, false)
	defer close(block)
	time.Sleep(10 * time.Millisecond) // let the actor pick up the block

	hresp, err := http.Post(ts.URL+"/v1/sessions/"+resp.ID+"/cmd", "application/json",
		strings.NewReader(`{"line":"loops"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusGatewayTimeout {
		b, _ := io.ReadAll(hresp.Body)
		t.Fatalf("blocked command: %d (%s), want 504", hresp.StatusCode, b)
	}
}
