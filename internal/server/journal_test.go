package server

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// writeTestJournal creates a journal with n cmd records and returns
// the wal path plus each record's [start, end) byte range in the file.
func writeTestJournal(t *testing.T, dir string, n int) (string, [][2]int64) {
	t.Helper()
	j, err := createJournal(dir, "sTEST", FsyncNever, nil)
	if err != nil {
		t.Fatal(err)
	}
	var frames [][2]int64
	off := int64(0)
	for i := 0; i < n; i++ {
		rec := &record{Op: recCmd, Line: "loops", PreHash: srcHash("src")}
		if err := j.append(rec); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		frames = append(frames, [2]int64{off, j.size})
		off = j.size
	}
	if err := j.close(); err != nil {
		t.Fatal(err)
	}
	return j.path, frames
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := createJournal(dir, "sRT", FsyncAlways, nil)
	if err != nil {
		t.Fatal(err)
	}
	recs := []record{
		{Op: recOpen, Path: "p.f", Source: "      program p\n      end\n"},
		{Op: recSelect, Unit: "main", Loop: 2},
		{Op: recCmd, Line: "apply parallelize 1", PreHash: srcHash("a")},
		{Op: recEdit, Stmt: 7, Text: "x = 1", PreHash: srcHash("b")},
		{Op: recEdit, Stmt: 8, Delete: true},
		{Op: recUndo},
		{Op: recClassify, Var: "t", Class: "private"},
	}
	for i := range recs {
		rc := recs[i]
		if err := j.append(&rc); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := j.close(); err != nil {
		t.Fatal(err)
	}
	res, err := readJournal(j.path)
	if err != nil {
		t.Fatal(err)
	}
	if res.tornAt != -1 || res.corruptAt != -1 {
		t.Fatalf("clean journal read as damaged: %+v", res)
	}
	if len(res.records) != len(recs) {
		t.Fatalf("read %d records, wrote %d", len(res.records), len(recs))
	}
	for i, got := range res.records {
		if got.Seq != uint64(i+1) {
			t.Errorf("record %d: seq %d, want %d", i, got.Seq, i+1)
		}
		want := recs[i]
		want.Seq, want.Time = got.Seq, got.Time // stamped by append
		if !reflect.DeepEqual(got, want) {
			t.Errorf("record %d round-trip:\n got %+v\nwant %+v", i, got, want)
		}
	}
	if res.lastSeq != uint64(len(recs)) {
		t.Errorf("lastSeq %d, want %d", res.lastSeq, len(recs))
	}
	fi, _ := os.Stat(j.path)
	if res.size != fi.Size() {
		t.Errorf("clean size %d != file size %d", res.size, fi.Size())
	}
}

// TestJournalDamageClassification is the truncate-vs-quarantine table:
// for each way of damaging the file, assert whether readJournal calls
// it a torn tail (recoverable: the damage is at or past the last
// record) or mid-stream corruption (quarantine: intact data follows
// the damage, so this is no crash artifact).
func TestJournalDamageClassification(t *testing.T) {
	const n = 3
	cases := []struct {
		name string
		// damage mutates the file bytes; frames are the record ranges.
		damage      func(data []byte, frames [][2]int64) []byte
		wantRecords int
		wantTorn    bool
		wantCorrupt bool
	}{
		{
			name:        "pristine",
			damage:      func(d []byte, _ [][2]int64) []byte { return d },
			wantRecords: n,
		},
		{
			name: "truncated mid final record",
			damage: func(d []byte, f [][2]int64) []byte {
				return d[:f[n-1][0]+5]
			},
			wantRecords: n - 1,
			wantTorn:    true,
		},
		{
			name: "truncated inside final length header",
			damage: func(d []byte, f [][2]int64) []byte {
				return d[:f[n-1][0]+2]
			},
			wantRecords: n - 1,
			wantTorn:    true,
		},
		{
			name: "bit flip in final record payload",
			damage: func(d []byte, f [][2]int64) []byte {
				d[f[n-1][0]+6] ^= 0x40
				return d
			},
			wantRecords: n - 1,
			wantTorn:    true,
		},
		{
			name: "bit flip in final record CRC",
			damage: func(d []byte, f [][2]int64) []byte {
				d[f[n-1][1]-1] ^= 0x01
				return d
			},
			wantRecords: n - 1,
			wantTorn:    true,
		},
		{
			name: "bit flip in middle record payload",
			damage: func(d []byte, f [][2]int64) []byte {
				d[f[1][0]+6] ^= 0x40
				return d
			},
			wantRecords: 1,
			wantCorrupt: true,
		},
		{
			name: "bit flip in middle record CRC",
			damage: func(d []byte, f [][2]int64) []byte {
				d[f[1][1]-2] ^= 0x10
				return d
			},
			wantRecords: 1,
			wantCorrupt: true,
		},
		{
			name: "bit flip in first record payload",
			damage: func(d []byte, f [][2]int64) []byte {
				d[f[0][0]+4] ^= 0x02
				return d
			},
			wantRecords: 0,
			wantCorrupt: true,
		},
		{
			// A trashed length field cannot be framed past, so the
			// scanner cannot prove intact data follows: it reads as a
			// torn tail at that record.
			name: "garbage length field in middle record",
			damage: func(d []byte, f [][2]int64) []byte {
				binary.BigEndian.PutUint32(d[f[1][0]:], 0xFFFFFFF0)
				return d
			},
			wantRecords: 1,
			wantTorn:    true,
		},
		{
			name:        "empty file",
			damage:      func(d []byte, _ [][2]int64) []byte { return nil },
			wantRecords: 0,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			dir := t.TempDir()
			path, frames := writeTestJournal(t, dir, n)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			damaged := c.damage(append([]byte(nil), data...), frames)
			dpath := filepath.Join(dir, "damaged.wal")
			if err := os.WriteFile(dpath, damaged, 0o644); err != nil {
				t.Fatal(err)
			}
			res, err := readJournal(dpath)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.records) != c.wantRecords {
				t.Errorf("records %d, want %d", len(res.records), c.wantRecords)
			}
			if torn := res.tornAt >= 0; torn != c.wantTorn {
				t.Errorf("tornAt %d, want torn=%v", res.tornAt, c.wantTorn)
			}
			if corrupt := res.corruptAt >= 0; corrupt != c.wantCorrupt {
				t.Errorf("corruptAt %d (%v), want corrupt=%v", res.corruptAt, res.corrupt, c.wantCorrupt)
			}
			if c.wantTorn {
				// Truncating at tornAt must leave a clean journal — the
				// recovery contract.
				if err := os.WriteFile(dpath, damaged[:res.tornAt], 0o644); err != nil {
					t.Fatal(err)
				}
				res2, err := readJournal(dpath)
				if err != nil {
					t.Fatal(err)
				}
				if res2.tornAt != -1 || res2.corruptAt != -1 || len(res2.records) != c.wantRecords {
					t.Errorf("after truncation at tornAt: %+v, want clean with %d records", res2, c.wantRecords)
				}
			}
		})
	}
}

// TestJournalRewriteCompacts: rewrite must atomically replace the log
// with the single snapshot record and keep accepting appends after.
func TestJournalRewriteCompacts(t *testing.T) {
	dir := t.TempDir()
	j, err := createJournal(dir, "sSNAP", FsyncAlways, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := j.append(&record{Op: recCmd, Line: "loop 1"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.rewrite(&record{Op: recSnapshot, Path: "p.f", Source: "      end\n", Unit: "main", Loop: 1}); err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	if err := j.append(&record{Op: recCmd, Line: "undo"}); err != nil {
		t.Fatalf("append after rewrite: %v", err)
	}
	if err := j.close(); err != nil {
		t.Fatal(err)
	}
	res, err := readJournal(j.path)
	if err != nil {
		t.Fatal(err)
	}
	if res.tornAt != -1 || res.corruptAt != -1 {
		t.Fatalf("rewritten journal damaged: %+v", res)
	}
	if len(res.records) != 2 || res.records[0].Op != recSnapshot || res.records[1].Op != recCmd {
		t.Fatalf("rewritten journal = %+v, want [snapshot, cmd]", res.records)
	}
	if res.records[1].Seq <= res.records[0].Seq {
		t.Errorf("seq not monotone across rewrite: %d then %d", res.records[0].Seq, res.records[1].Seq)
	}
	if _, err := os.Stat(j.path + ".tmp"); !os.IsNotExist(err) {
		t.Errorf("rewrite left its temp file behind: %v", err)
	}
}

func TestJournalCloseIdempotentAndRemove(t *testing.T) {
	dir := t.TempDir()
	j, err := createJournal(dir, "sCLOSE", FsyncInterval, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.append(&record{Op: recOpen, Path: "p.f"}); err != nil {
		t.Fatal(err)
	}
	if err := j.close(); err != nil {
		t.Fatalf("first close: %v", err)
	}
	if err := j.close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if err := j.append(&record{Op: recCmd, Line: "x"}); err == nil {
		t.Fatal("append after close succeeded")
	}
	j.remove()
	if _, err := os.Stat(j.path); !os.IsNotExist(err) {
		t.Fatalf("remove left the wal: %v", err)
	}
	j.remove() // idempotent
}

func TestParseFsyncPolicy(t *testing.T) {
	for in, want := range map[string]FsyncPolicy{
		"always": FsyncAlways, "ALWAYS": FsyncAlways,
		"interval": FsyncInterval, "never": FsyncNever,
	} {
		got, err := ParseFsyncPolicy(in)
		if err != nil || got != want {
			t.Errorf("ParseFsyncPolicy(%q) = %v, %v; want %v", in, got, err, want)
		}
		if got.String() == "" {
			t.Errorf("FsyncPolicy(%v).String() empty", got)
		}
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Error("ParseFsyncPolicy accepted garbage")
	}
}
