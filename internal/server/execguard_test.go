package server

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// Hostile programs: an infinite loop, an infinite PRINT, and one the
// code generator declines (non-constant exponent).
const (
	loopSource = `
      program p
      integer i
      i = 0
   10 i = i + 1
      goto 10
      end
`
	bombSource = `
      program p
   10 print *, 123456789
      goto 10
      end
`
	powSource = `
      program p
      integer i, j, k
      i = 2
      j = 3
      k = i ** j
      print *, k
      end
`
	tameSource = `
      program p
      integer i, n
      n = 0
      do 10 i = 1, 100
        n = n + i
   10 continue
      print *, n
      end
`
)

// TestRunHostileWorkloads drives the daemon with programs built to
// take it down — an infinite loop and an output bomb — and asserts
// both fail with typed 422s while a healthy session on the same
// daemon keeps producing byte-identical output.
func TestRunHostileWorkloads(t *testing.T) {
	m := newTestManager(t, Config{CacheSize: 8, RunOutputBytes: 8 << 10})
	ts := httptest.NewServer(New(m))
	defer ts.Close()
	c := NewClient(ts.URL)

	healthy, err := c.Open(bg, OpenRequest{Path: "tame.f", Source: tameSource})
	if err != nil {
		t.Fatal(err)
	}
	base, err := c.Run(bg, healthy.ID, RunRequest{})
	if err != nil {
		t.Fatalf("healthy baseline run: %v", err)
	}
	if !strings.Contains(base.Output, "5050") {
		t.Fatalf("baseline output = %q", base.Output)
	}

	loop, err := c.Open(bg, OpenRequest{Path: "loop.f", Source: loopSource})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Run(bg, loop.ID, RunRequest{TimeoutMs: 300})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusUnprocessableEntity {
		t.Fatalf("infinite loop: want 422, got %v", err)
	}
	if !strings.Contains(apiErr.Error(), "killed at deadline") {
		t.Fatalf("infinite loop error %q does not name the deadline kill", apiErr)
	}

	bomb, err := c.Open(bg, OpenRequest{Path: "bomb.f", Source: bombSource})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Run(bg, bomb.ID, RunRequest{TimeoutMs: 30_000})
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusUnprocessableEntity {
		t.Fatalf("output bomb: want 422, got %v", err)
	}
	if !strings.Contains(apiErr.Error(), "output truncated after") {
		t.Fatalf("output bomb error %q does not name the truncation", apiErr)
	}

	// The daemon survived both: the healthy session's rerun is
	// byte-identical to its pre-hostility baseline.
	again, err := c.Run(bg, healthy.ID, RunRequest{})
	if err != nil {
		t.Fatalf("healthy run after hostile workloads: %v", err)
	}
	if again.Output != base.Output {
		t.Fatalf("healthy output drifted after hostile runs:\nbefore: %q\nafter:  %q",
			base.Output, again.Output)
	}
}

// TestRunSaturationReturns429 holds the daemon's only execution slot
// and asserts the next run is rejected with 429 + Retry-After instead
// of queueing unbounded work.
func TestRunSaturationReturns429(t *testing.T) {
	m := newTestManager(t, Config{MaxRuns: 1})
	ts := httptest.NewServer(New(m))
	defer ts.Close()
	c := NewClient(ts.URL)

	open, err := c.Open(bg, OpenRequest{Path: "tame.f", Source: tameSource})
	if err != nil {
		t.Fatal(err)
	}
	release, err := m.gov.Acquire()
	if err != nil {
		t.Fatal(err)
	}

	resp, err := http.Post(ts.URL+"/v1/sessions/"+open.ID+"/run", "application/json",
		strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated run status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 response missing Retry-After")
	}

	release()
	if _, err := c.Run(bg, open.ID, RunRequest{}); err != nil {
		t.Fatalf("run after the slot freed: %v", err)
	}
}

// TestRunFallbackEndpoint: a compile run of a program the generator
// declines degrades to the interpreter when the request opts in, with
// the reason in the response.
func TestRunFallbackEndpoint(t *testing.T) {
	m := newTestManager(t, Config{})
	ts := httptest.NewServer(New(m))
	defer ts.Close()
	c := NewClient(ts.URL)

	open, err := c.Open(bg, OpenRequest{Path: "pow.f", Source: powSource})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(bg, open.ID, RunRequest{Backend: "compile", Fallback: true})
	if err != nil {
		t.Fatalf("fallback run: %v", err)
	}
	if res.Backend != "interp" {
		t.Fatalf("backend = %q, want interp after fallback", res.Backend)
	}
	if !strings.Contains(res.Fallback, "exponent") {
		t.Fatalf("fallback reason = %q, want the decline reason", res.Fallback)
	}
	if !strings.Contains(res.Output, "8") {
		t.Fatalf("fallback output = %q", res.Output)
	}

	// Without the opt-in the decline is the caller's problem.
	if _, err := c.Run(bg, open.ID, RunRequest{Backend: "compile"}); err == nil {
		t.Fatal("compile decline without fallback must fail")
	}
}

// TestExecMetricsExposed runs healthy, killed, rejected, and
// fallback executions and asserts every pedd_exec_*/pedd_build_*
// family reaches the scrape with the expected samples.
func TestExecMetricsExposed(t *testing.T) {
	met := NewMetrics()
	m := newTestManager(t, Config{Metrics: met, MaxRuns: 1})
	ts := httptest.NewServer(New(m))
	defer ts.Close()
	c := NewClient(ts.URL)

	open, err := c.Open(bg, OpenRequest{Path: "tame.f", Source: tameSource})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(bg, open.ID, RunRequest{}); err != nil {
		t.Fatal(err)
	}

	loop, err := c.Open(bg, OpenRequest{Path: "loop.f", Source: loopSource})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(bg, loop.ID, RunRequest{TimeoutMs: 200}); err == nil {
		t.Fatal("infinite loop run succeeded")
	}

	pow, err := c.Open(bg, OpenRequest{Path: "pow.f", Source: powSource})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(bg, pow.ID, RunRequest{Backend: "compile", Fallback: true}); err != nil {
		t.Fatal(err)
	}

	release, err := m.gov.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(bg, open.ID, RunRequest{}); err == nil {
		t.Fatal("saturated run succeeded")
	}
	release()

	body := scrape(t, met)
	for _, family := range []string{
		"pedd_exec_runs_total",
		"pedd_exec_failures_total",
		"pedd_exec_run_seconds",
		"pedd_exec_timeouts_total",
		"pedd_exec_kills_total",
		"pedd_exec_fallbacks_total",
		"pedd_exec_rejected_total",
		"pedd_exec_inflight",
		"pedd_build_total",
		"pedd_build_failures_total",
		"pedd_build_seconds",
		"pedd_build_cache_hits_total",
		"pedd_build_dedup_total",
		"pedd_build_verify_failures_total",
		"pedd_build_janitor_evictions_total",
	} {
		if !strings.Contains(body, family) {
			t.Errorf("scrape missing family %s", family)
		}
	}
	for _, sample := range []string{
		`pedd_exec_runs_total{backend="interp"}`,
		`pedd_exec_timeouts_total{backend="interp"}`,
		`pedd_exec_kills_total{reason="deadline"}`,
	} {
		if !strings.Contains(body, sample) {
			t.Errorf("scrape missing sample %s", sample)
		}
	}
	if !strings.Contains(body, "pedd_exec_fallbacks_total 1") {
		t.Errorf("fallback counter not incremented; scrape:\n%s", grepMetric(body, "pedd_exec_fallbacks_total"))
	}
	// The client retries 429s, so each rejected run counts at least once.
	if grepMetric(body, "pedd_exec_rejected_total 0") != "" ||
		grepMetric(body, "pedd_exec_rejected_total ") == "" {
		t.Errorf("rejected counter not incremented; scrape:\n%s", grepMetric(body, "pedd_exec_rejected_total"))
	}
}

// grepMetric pulls one family's lines out of a scrape for error text.
func grepMetric(body, name string) string {
	var out []string
	for _, line := range strings.Split(body, "\n") {
		if strings.Contains(line, name) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

// TestRunTimeoutConfigDefault: the daemon-wide -runtimeout default
// applies when the request carries no timeout of its own.
func TestRunTimeoutConfigDefault(t *testing.T) {
	m := newTestManager(t, Config{RunTimeout: 200 * time.Millisecond})
	ts := httptest.NewServer(New(m))
	defer ts.Close()
	c := NewClient(ts.URL)

	open, err := c.Open(bg, OpenRequest{Path: "loop.f", Source: loopSource})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = c.Run(bg, open.ID, RunRequest{})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusUnprocessableEntity {
		t.Fatalf("want 422 from the daemon default timeout, got %v", err)
	}
	if !strings.Contains(apiErr.Error(), "killed at deadline") {
		t.Fatalf("error %q does not name the deadline kill", apiErr)
	}
	if wall := time.Since(start); wall > 10*time.Second {
		t.Fatalf("run took %s; the 200ms daemon default did not apply", wall)
	}
}
