package server

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestRunEndpoint drives POST /v1/sessions/{id}/run through the
// client: both backends must produce byte-identical output, the
// interpreter must report simulated cycles, and the compile backend
// real wall time.
func TestRunEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("compile backend builds a binary; skipped in -short mode")
	}
	m := newTestManager(t, Config{CacheSize: 8})
	ts := httptest.NewServer(New(m))
	defer ts.Close()
	c := NewClient(ts.URL)

	open, err := c.Open(bg, OpenRequest{Workload: "arc3d"})
	if err != nil {
		t.Fatal(err)
	}

	ir, err := c.Run(bg, open.ID, RunRequest{Backend: "interp", Workers: 2})
	if err != nil {
		t.Fatalf("interp run: %v", err)
	}
	if ir.Backend != "interp" || ir.Output == "" || ir.SimCycles <= 0 {
		t.Fatalf("interp response = %+v", ir)
	}

	cr, err := c.Run(bg, open.ID, RunRequest{Backend: "compile", Workers: 2})
	if err != nil {
		t.Fatalf("compile run: %v", err)
	}
	if cr.Backend != "compile" || cr.SimCycles != 0 {
		t.Fatalf("compile response = %+v", cr)
	}
	if cr.Output != ir.Output {
		t.Fatalf("backends disagree\ncompile:\n%s\ninterp:\n%s", cr.Output, ir.Output)
	}

	// Default backend is the interpreter.
	dr, err := c.Run(bg, open.ID, RunRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if dr.Backend != "interp" {
		t.Fatalf("default backend = %q", dr.Backend)
	}

	if _, err := c.Run(bg, open.ID, RunRequest{Backend: "paravm"}); err == nil {
		t.Fatal("unknown backend should fail")
	}
}

// TestRunDisabledBackend checks the operator switch: a disabled
// backend answers 501 with the standard error envelope before any
// session work happens, while other backends keep working.
func TestRunDisabledBackend(t *testing.T) {
	m := newTestManager(t, Config{CacheSize: 8})
	ts := httptest.NewServer(NewWith(m, Options{DisabledBackends: []string{"compile"}}))
	defer ts.Close()
	c := NewClient(ts.URL)

	open, err := c.Open(bg, OpenRequest{Workload: "onedim"})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Run(bg, open.ID, RunRequest{Backend: "compile"})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotImplemented {
		t.Fatalf("want 501 APIError, got %v", err)
	}
	if apiErr.RequestID == "" {
		t.Fatal("error envelope should echo the request ID")
	}
	if _, err := c.Run(bg, open.ID, RunRequest{Backend: "interp"}); err != nil {
		t.Fatalf("interp should stay enabled: %v", err)
	}
}
