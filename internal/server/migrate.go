package server

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"parascope/internal/faultpoint"
)

// This file is the session-mobility half of the cluster layer: a
// session moves between pedd nodes by shipping its journal stream —
// the same bytes crash recovery replays — to the target's import
// endpoint and replaying it there through the same code paths.
//
// The protocol is source-driven and all-or-nothing:
//
//	freeze  the session stops accepting mutations (503 + Retry-After);
//	drain   the export posts through the actor's FIFO queue, so every
//	        mutation acknowledged before the freeze is in the stream;
//	ship    POST the raw stream to the target's /v1/sessions/import;
//	commit  only on the target's 201: tombstone (421 + Location),
//	        unregister, delete the local wal. Any earlier failure
//	        thaws the session — the source stays authoritative, which
//	        is what makes a torn stream safe: the target rejects
//	        damage whole instead of adopting a prefix.
//
// The gateway drives Migrate on ring changes (rebalance) and calls
// Import directly with a dead node's journal (failover over shared
// storage); see internal/cluster.

// validateSessionID vets an externally supplied session ID before it
// is used as a filename stem (wal, tombstone) and a map key. Locally
// minted IDs ("s" + hex) pass trivially.
func validateSessionID(id string) error {
	if id == "" || len(id) > 64 {
		return fmt.Errorf("invalid session ID %q: need 1-64 characters", id)
	}
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
		default:
			return fmt.Errorf("invalid session ID %q: letters, digits, '-', '_' only", id)
		}
	}
	return nil
}

// movedPath names the tombstone file for a migrated-away session.
func movedPath(dir, id string) string { return filepath.Join(dir, id+".moved") }

// MovedTo reports where a migrated-away session now lives: the target
// node's base URL and true, or "" and false for an ID with no
// tombstone here.
func (m *Manager) MovedTo(id string) (string, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	target, ok := m.moved[id]
	return target, ok
}

// tombstone records that id now lives at target, durably when a
// datadir is configured: a restarted source node must keep answering
// 421, not 404, or clients lose the forwarding pointer.
func (m *Manager) tombstone(id, target string) {
	m.mu.Lock()
	m.moved[id] = target
	m.mu.Unlock()
	if m.cfg.DataDir != "" {
		// Best effort: an unwritable tombstone degrades restart answers
		// from 421 to 404 but never blocks the migration itself.
		if err := os.WriteFile(movedPath(m.cfg.DataDir, id), []byte(target+"\n"), 0o644); err == nil {
			syncDir(m.cfg.DataDir)
		}
	}
}

// clearTombstone forgets a tombstone — a session moving (back) onto
// this node supersedes any record of it having left.
func (m *Manager) clearTombstone(id string) {
	m.mu.Lock()
	delete(m.moved, id)
	m.mu.Unlock()
	if m.cfg.DataDir != "" {
		os.Remove(movedPath(m.cfg.DataDir, id))
	}
}

// Import adopts a session from a journal stream exported by another
// node (or read off a dead node's disk by the gateway). The stream is
// validated whole before anything is registered, and — unlike startup
// recovery, which salvages what it can because the journal is all
// that's left — any damage or replay failure rejects the import
// entirely: the source is alive and authoritative, so adopting a
// prefix would silently drop acknowledged mutations.
func (m *Manager) Import(ctx context.Context, id string, stream []byte) (ImportResponse, error) {
	var resp ImportResponse
	reject := func(err error) (ImportResponse, error) {
		m.metrics.ImportsRejected.Inc()
		return resp, err
	}
	if err := validateSessionID(id); err != nil {
		return reject(err)
	}
	if len(stream) == 0 {
		return reject(fmt.Errorf("import %s: empty journal stream", id))
	}
	res := scanJournal(stream)
	if res.tornAt >= 0 {
		return reject(fmt.Errorf("import %s: journal stream torn at byte %d of %d (refusing partial adoption)",
			id, res.tornAt, len(stream)))
	}
	if res.corrupt != nil {
		return reject(fmt.Errorf("import %s: journal stream corrupt: %v", id, res.corrupt))
	}
	if len(res.records) == 0 {
		return reject(fmt.Errorf("import %s: journal stream holds no records", id))
	}
	base := &res.records[0]
	if base.Op != recOpen && base.Op != recSnapshot {
		return reject(fmt.Errorf("import %s: journal stream begins with %q, want open or snapshot", id, base.Op))
	}

	m.mu.Lock()
	if m.sessions[id] != nil {
		m.mu.Unlock()
		return reject(fmt.Errorf("%w: %s", ErrSessionExists, id))
	}
	if m.cfg.MaxSessions > 0 && len(m.sessions)+m.reserved >= m.cfg.MaxSessions {
		m.mu.Unlock()
		return resp, ErrTooManySessions
	}
	m.reserved++
	m.mu.Unlock()
	release := func() {
		m.mu.Lock()
		m.reserved--
		m.mu.Unlock()
	}

	// Land the stream on this node's disk before replaying, so the
	// adopted session is durable from its first acknowledged moment.
	// O_EXCL makes any on-disk ID collision (live wal, half-cleaned
	// state) a refusal instead of an overwrite.
	var jr *journal
	if m.cfg.DataDir != "" {
		path := walPath(m.cfg.DataDir, id)
		f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err != nil {
			release()
			if errors.Is(err, os.ErrExist) {
				return reject(fmt.Errorf("%w: %s (journal already on disk)", ErrSessionExists, id))
			}
			return reject(fmt.Errorf("import %s: %w", id, err))
		}
		if _, err = f.Write(stream); err == nil {
			err = f.Sync()
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			os.Remove(path)
			release()
			return reject(fmt.Errorf("import %s: landing journal: %w", id, err))
		}
		syncDir(m.cfg.DataDir)
		if jr, err = openJournalAppend(m.cfg.DataDir, id, m.cfg.Fsync, int64(len(stream)), res.lastSeq, m.metrics); err != nil {
			os.Remove(path)
			release()
			return reject(fmt.Errorf("import %s: reopening journal: %w", id, err))
		}
	}
	teardown := func() {
		if jr != nil {
			jr.remove()
		}
		release()
	}

	art, live, err := m.rebuildAnalysis(base)
	if err != nil {
		teardown()
		return reject(fmt.Errorf("import %s: reanalyzing source: %v", id, err))
	}
	ss := newSession(id, base.Path, base.Source, art, live, m.cfg.Workers, m.cfg.QueueDepth, m.metrics, jr, m.cfg.SnapshotEvery)
	ss.planCfg = m.planCfg
	ss.gov = m.gov
	ss.runCache = m.cfg.RunCacheDir
	postErr, replayErr := replayJournal(ss, base, res.records[1:])
	if postErr != nil || replayErr != nil {
		err := replayErr
		if postErr != nil {
			err = postErr
		}
		ss.close()
		teardown()
		return reject(fmt.Errorf("import %s: replay failed: %v", id, err))
	}

	m.mu.Lock()
	if m.sessions[id] != nil {
		// Lost a race with a concurrent import of the same ID (only
		// possible without a datadir — O_EXCL arbitrates otherwise).
		m.mu.Unlock()
		ss.close()
		teardown()
		return reject(fmt.Errorf("%w: %s", ErrSessionExists, id))
	}
	m.sessions[id] = ss
	m.reserved--
	m.mu.Unlock()
	m.clearTombstone(id)
	m.metrics.SessionsImported.Inc()
	m.metrics.SessionsLive.Inc()
	resp = ImportResponse{ID: id, Path: base.Path, Records: len(res.records)}
	return resp, nil
}

// Migrate moves ss to the node at target (a base URL). On success the
// session answers 421 + Location here and lives there under the same
// ID; on any failure it thaws here, untouched — the target rejects
// damaged or half-shipped streams whole, so there is no state in which
// both nodes (or neither) own the session.
func (m *Manager) Migrate(ctx context.Context, ss *Session, target string) (MigrateResponse, error) {
	var resp MigrateResponse
	target = strings.TrimRight(target, "/")
	if target == "" {
		return resp, errors.New("migrate: empty target")
	}
	if err := ss.failedErr(); err != nil {
		return resp, err
	}
	if !ss.freeze() {
		return resp, fmt.Errorf("%w: another migration of %s is already in flight", ErrSessionMigrating, ss.ID)
	}
	fail := func(err error) (MigrateResponse, error) {
		ss.unfreeze()
		m.metrics.MigrationsFailed.Inc()
		return resp, err
	}
	// Export runs on the actor: posted after the freeze flipped, it
	// drains every already-queued mutation into the stream first.
	data, err := ss.Export(ctx)
	if err != nil {
		return fail(fmt.Errorf("migrate %s: export: %w", ss.ID, err))
	}
	ship := data
	if err := faultpoint.Hit(faultpoint.MigrateStream, ss.ID); err != nil && len(ship) > 0 {
		// Chaos: tear the stream one byte short of a complete record.
		// The target must reject it whole and this node must stay
		// authoritative — the cluster harness asserts both.
		ship = data[:len(data)-1]
	}
	imp, err := migrateClient(target).Import(ctx, ss.ID, ship)
	if err != nil {
		return fail(fmt.Errorf("migrate %s to %s: %w", ss.ID, target, err))
	}
	// The target acknowledged full adoption (201): from here its copy
	// is the session. Tombstone before unregistering so a reader racing
	// the handoff sees 421-with-forwarding, never a transient 404; then
	// scrap the local wal — the shipped state must not resurrect here
	// at the next restart.
	m.tombstone(ss.ID, target)
	m.mu.Lock()
	delete(m.sessions, ss.ID)
	m.mu.Unlock()
	ss.close()
	ss.removeJournal()
	ss.unfreeze()
	m.metrics.SessionsLive.Dec()
	m.metrics.MigrationsOut.Inc()
	m.metrics.MigrationsOutBytes.Add(uint64(len(data)))
	resp = MigrateResponse{
		ID:       imp.ID,
		Location: target + "/v1/sessions/" + imp.ID,
		Bytes:    int64(len(data)),
	}
	return resp, nil
}

// migrateClient builds the transport migrations ship through: no
// transport-level retries (a duplicate import would 409 against the
// first copy and misreport an otherwise successful move).
func migrateClient(target string) *Client {
	return &Client{Base: strings.TrimRight(target, "/"), MaxRetries: -1}
}
