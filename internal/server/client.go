package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
)

// Client drives a pedd daemon over HTTP — the transport behind
// `ped -remote` and the server benchmarks.
type Client struct {
	// Base is the daemon's base URL, e.g. "http://localhost:7473".
	Base string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
}

// NewClient creates a client for the daemon at base.
func NewClient(base string) *Client {
	return &Client{Base: strings.TrimRight(base, "/")}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// do issues one request; out (when non-nil) receives the decoded 2xx
// body, and non-2xx bodies become errors.
func (c *Client) do(method, path string, in, out interface{}) error {
	var body io.Reader
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, c.Base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var e ErrorResponse
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			return fmt.Errorf("%s", e.Error)
		}
		return fmt.Errorf("%s %s: %s", method, path, resp.Status)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Open creates a session.
func (c *Client) Open(req OpenRequest) (OpenResponse, error) {
	var resp OpenResponse
	err := c.do(http.MethodPost, "/v1/sessions", req, &resp)
	return resp, err
}

// List enumerates the live sessions.
func (c *Client) List() ([]SessionInfo, error) {
	var resp []SessionInfo
	err := c.do(http.MethodGet, "/v1/sessions", nil, &resp)
	return resp, err
}

// CloseSession deletes a session.
func (c *Client) CloseSession(id string) error {
	return c.do(http.MethodDelete, "/v1/sessions/"+url.PathEscape(id), nil, nil)
}

// Cmd runs one REPL command line in the session.
func (c *Client) Cmd(id, line string) (CmdResponse, error) {
	var resp CmdResponse
	err := c.do(http.MethodPost, "/v1/sessions/"+url.PathEscape(id)+"/cmd", CmdRequest{Line: line}, &resp)
	return resp, err
}

// Select switches unit and/or loop.
func (c *Client) Select(id string, req SelectRequest) (SelectResponse, error) {
	var resp SelectResponse
	err := c.do(http.MethodPost, "/v1/sessions/"+url.PathEscape(id)+"/select", req, &resp)
	return resp, err
}

// Deps fetches the selected loop's dependences.
func (c *Client) Deps(id string, q DepQuery) (DepsResponse, error) {
	v := url.Values{}
	if q.Carried {
		v.Set("carried", "1")
	}
	if q.HideRejected {
		v.Set("hiderejected", "1")
	}
	if q.HidePrivate {
		v.Set("hideprivate", "1")
	}
	if q.Sym != "" {
		v.Set("sym", q.Sym)
	}
	for _, cl := range q.Classes {
		v.Add("class", cl)
	}
	path := "/v1/sessions/" + url.PathEscape(id) + "/deps"
	if len(v) > 0 {
		path += "?" + v.Encode()
	}
	var resp DepsResponse
	err := c.do(http.MethodGet, path, nil, &resp)
	return resp, err
}

// Classify overrides a variable's classification.
func (c *Client) Classify(id string, req ClassifyRequest) error {
	return c.do(http.MethodPost, "/v1/sessions/"+url.PathEscape(id)+"/classify", req, nil)
}

// Transform checks or applies a transformation.
func (c *Client) Transform(id string, req TransformRequest) (CmdResponse, error) {
	var resp CmdResponse
	err := c.do(http.MethodPost, "/v1/sessions/"+url.PathEscape(id)+"/transform", req, &resp)
	return resp, err
}

// Edit replaces or deletes a statement.
func (c *Client) Edit(id string, req EditRequest) error {
	return c.do(http.MethodPost, "/v1/sessions/"+url.PathEscape(id)+"/edit", req, nil)
}

// Undo reverts the last change.
func (c *Client) Undo(id string) error {
	return c.do(http.MethodPost, "/v1/sessions/"+url.PathEscape(id)+"/undo", nil, nil)
}

// CacheStats fetches the daemon's analysis cache counters.
func (c *Client) CacheStats() (CacheStatsResponse, error) {
	var resp CacheStatsResponse
	err := c.do(http.MethodGet, "/v1/cache", nil, &resp)
	return resp, err
}
