package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// Client retry/timeout defaults; override per Client field.
const (
	// DefaultClientTimeout bounds each individual attempt.
	DefaultClientTimeout = 30 * time.Second
	// DefaultMaxRetries is how many times a failed attempt is retried
	// (so up to 1+DefaultMaxRetries attempts total).
	DefaultMaxRetries = 3
	// DefaultBaseBackoff seeds the exponential backoff schedule.
	DefaultBaseBackoff = 50 * time.Millisecond
	// DefaultMaxBackoff caps a single backoff sleep.
	DefaultMaxBackoff = 2 * time.Second
	// maxRedirectHops bounds how many migration redirects (421/307 +
	// Location) one logical request follows before giving up.
	maxRedirectHops = 3
)

// APIError is a non-2xx response from the daemon: the status code,
// the server's error message, its Retry-After hint (if any), and the
// request ID the failing exchange ran under, so callers — and the
// retry loop — can react per status and correlate the failure with
// the daemon's access log.
type APIError struct {
	Status     int
	Message    string
	RetryAfter time.Duration
	RequestID  string
	// Location carries the response's Location header — on a 421
	// Misdirected Request it names where a migrated session now lives.
	Location string
}

func (e *APIError) Error() string {
	msg := e.Message
	if msg == "" {
		msg = fmt.Sprintf("http status %d", e.Status)
	}
	if e.RequestID != "" {
		return fmt.Sprintf("%s [req %s]", msg, e.RequestID)
	}
	return msg
}

// Client drives a pedd daemon over HTTP — the transport behind
// `ped -remote` and the server benchmarks. It is resilient by
// default: every attempt runs under a timeout, and failed attempts
// are retried with exponential backoff plus jitter when it is safe —
// transport errors on idempotent requests, and 429/503 backpressure
// rejections on any request (the server refused before doing work),
// honoring the Retry-After hint.
type Client struct {
	// Base is the daemon's base URL, e.g. "http://localhost:7473".
	Base string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// Timeout bounds each attempt (0 = DefaultClientTimeout,
	// negative = no per-attempt timeout).
	Timeout time.Duration
	// MaxRetries is the retry budget after the first attempt
	// (0 = DefaultMaxRetries, negative = never retry).
	MaxRetries int
	// BaseBackoff and MaxBackoff shape the backoff schedule
	// (0 = defaults).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
}

// NewClient creates a client for the daemon at base with the default
// resilience policy.
func NewClient(base string) *Client {
	return &Client{Base: strings.TrimRight(base, "/")}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) maxRetries() int {
	switch {
	case c.MaxRetries > 0:
		return c.MaxRetries
	case c.MaxRetries < 0:
		return 0
	default:
		return DefaultMaxRetries
	}
}

// backoff computes the sleep before retry number attempt (0-based):
// exponential from BaseBackoff, capped at MaxBackoff, with ±50%
// jitter so synchronized clients spread out; a server Retry-After
// hint is a floor.
func (c *Client) backoff(attempt int, retryAfter time.Duration) time.Duration {
	base, cap_ := c.BaseBackoff, c.MaxBackoff
	if base <= 0 {
		base = DefaultBaseBackoff
	}
	if cap_ <= 0 {
		cap_ = DefaultMaxBackoff
	}
	d := base << uint(attempt)
	if d > cap_ || d <= 0 {
		d = cap_
	}
	d = d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
	if retryAfter > d {
		d = retryAfter
	}
	return d
}

// retryable reports whether err is worth retrying, and any server-
// mandated wait. Backpressure rejections (429/503) are always safe to
// retry — the server refused before doing work; other failures (like
// a dropped connection mid-flight) are retried only for idempotent
// methods, where a duplicate cannot double-apply.
func retryable(err error, idempotent bool) (bool, time.Duration) {
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		if apiErr.Status == http.StatusTooManyRequests || apiErr.Status == http.StatusServiceUnavailable {
			return true, apiErr.RetryAfter
		}
		return false, 0
	}
	return idempotent, 0
}

// do issues one request with the retry policy; out (when non-nil)
// receives the decoded 2xx body, and non-2xx bodies become *APIError.
func (c *Client) do(ctx context.Context, method, path string, in, out interface{}) error {
	var payload []byte
	if in != nil {
		var err error
		if payload, err = json.Marshal(in); err != nil {
			return err
		}
	}
	idempotent := method == http.MethodGet || method == http.MethodHead ||
		method == http.MethodDelete || method == http.MethodPut
	return c.doBytes(ctx, method, path, payload, "application/json", in != nil, idempotent, out)
}

// doBytes runs the retry-and-redirect loop over a prepared payload.
// Migration redirects — 421 Misdirected Request (a tombstone on the
// session's old node) or 307 (a proxy handoff) carrying Location — are
// followed with the same method, body, and request ID, so a client
// riding out a live migration never sees the move. Hops are bounded
// and loops refuse: a stale pair of tombstones pointing at each other
// becomes a clear error, not a spin.
func (c *Client) doBytes(ctx context.Context, method, path string, payload []byte, contentType string, hasBody, idempotent bool, out interface{}) error {
	if ctx == nil {
		ctx = context.Background()
	}
	// One request ID for the whole logical request: retries and
	// redirect hops reuse it, so every node's access log shows the
	// journey under one ID.
	reqID := newRequestID()
	target := c.Base + path
	visited := map[string]bool{target: true}
	hops := 0
	for attempt := 0; ; attempt++ {
		err := c.attempt(ctx, method, target, payload, contentType, hasBody, out, reqID)
		if err == nil {
			return nil
		}
		var apiErr *APIError
		if errors.As(err, &apiErr) && apiErr.Location != "" &&
			(apiErr.Status == http.StatusMisdirectedRequest || apiErr.Status == http.StatusTemporaryRedirect) {
			next, rerr := redirectTarget(target, apiErr.Location)
			if rerr != nil {
				return fmt.Errorf("unusable Location %q following migration: %w", apiErr.Location, err)
			}
			if hops++; hops > maxRedirectHops {
				return fmt.Errorf("gave up after %d migration redirects at %s: %w", maxRedirectHops, next, err)
			}
			if visited[next] {
				return fmt.Errorf("migration redirect loop back to %s: %w", next, err)
			}
			visited[next] = true
			target = next
			attempt-- // a redirect is progress, not a spent retry
			continue
		}
		ok, retryAfter := retryable(err, idempotent)
		if !ok || attempt >= c.maxRetries() || ctx.Err() != nil {
			return err
		}
		t := time.NewTimer(c.backoff(attempt, retryAfter))
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return err
		}
	}
}

// redirectTarget resolves a Location header (absolute or relative)
// against the URL that answered with it.
func redirectTarget(cur, loc string) (string, error) {
	base, err := url.Parse(cur)
	if err != nil {
		return "", err
	}
	ref, err := url.Parse(loc)
	if err != nil {
		return "", err
	}
	return base.ResolveReference(ref).String(), nil
}

// attempt issues one HTTP request under the per-attempt timeout.
func (c *Client) attempt(ctx context.Context, method, fullURL string, payload []byte, contentType string, hasBody bool, out interface{}, reqID string) error {
	timeout := c.Timeout
	if timeout == 0 {
		timeout = DefaultClientTimeout
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	var body io.Reader
	if hasBody {
		body = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, fullURL, body)
	if err != nil {
		return err
	}
	if hasBody {
		req.Header.Set("Content-Type", contentType)
	}
	if reqID != "" {
		req.Header.Set("X-Request-ID", reqID)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		apiErr := &APIError{Status: resp.StatusCode, RequestID: reqID}
		if id := resp.Header.Get("X-Request-ID"); id != "" {
			apiErr.RequestID = id
		}
		var e ErrorResponse
		if json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&e) == nil && e.Error != "" {
			apiErr.Message = e.Error
		} else {
			apiErr.Message = fmt.Sprintf("%s %s: %s", method, fullURL, resp.Status)
		}
		apiErr.RetryAfter = parseRetryAfter(resp.Header.Get("Retry-After"))
		apiErr.Location = resp.Header.Get("Location")
		return apiErr
	}
	if out == nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil
	}
	if raw, ok := out.(*[]byte); ok {
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			return err
		}
		*raw = b
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// parseRetryAfter reads a Retry-After header in either RFC 9110 form:
// delta-seconds ("2") or an HTTP-date ("Mon, 02 Jan 2006 15:04:05
// GMT" and friends, via http.ParseTime). Unparsable values, negative
// deltas, and dates already in the past yield 0 — no hint, rather
// than a dropped or bogus one.
func parseRetryAfter(h string) time.Duration {
	if h == "" {
		return 0
	}
	if secs, err := strconv.Atoi(h); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(h); err == nil {
		if d := time.Until(t); d > 0 {
			return d
		}
	}
	return 0
}

// Open creates a session.
func (c *Client) Open(ctx context.Context, req OpenRequest) (OpenResponse, error) {
	var resp OpenResponse
	err := c.do(ctx, http.MethodPost, "/v1/sessions", req, &resp)
	return resp, err
}

// List enumerates the live sessions.
func (c *Client) List(ctx context.Context) ([]SessionInfo, error) {
	var resp []SessionInfo
	err := c.do(ctx, http.MethodGet, "/v1/sessions", nil, &resp)
	return resp, err
}

// Status fetches one session's state and failure diagnostics.
func (c *Client) Status(ctx context.Context, id string) (SessionStatusResponse, error) {
	var resp SessionStatusResponse
	err := c.do(ctx, http.MethodGet, "/v1/sessions/"+url.PathEscape(id), nil, &resp)
	return resp, err
}

// CloseSession deletes a session.
func (c *Client) CloseSession(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/sessions/"+url.PathEscape(id), nil, nil)
}

// Cmd runs one REPL command line in the session.
func (c *Client) Cmd(ctx context.Context, id, line string) (CmdResponse, error) {
	var resp CmdResponse
	err := c.do(ctx, http.MethodPost, "/v1/sessions/"+url.PathEscape(id)+"/cmd", CmdRequest{Line: line}, &resp)
	return resp, err
}

// Run executes the session's program on the daemon through the
// unified execution API. Execution is non-idempotent from the
// transport's point of view — a lost response may mean the program
// already ran — so transport errors are never retried here (POST is
// outside do's idempotent set); only explicit server backpressure
// (429/503 with Retry-After) is.
func (c *Client) Run(ctx context.Context, id string, req RunRequest) (RunResponse, error) {
	var resp RunResponse
	err := c.do(ctx, http.MethodPost, "/v1/sessions/"+url.PathEscape(id)+"/run", req, &resp)
	return resp, err
}

// Plan starts a speculative plan search (async when req.Async) or
// returns the cached result for an identical source and budget.
func (c *Client) Plan(ctx context.Context, id string, req PlanRequest) (PlanResponse, error) {
	var resp PlanResponse
	err := c.do(ctx, http.MethodPost, "/v1/sessions/"+url.PathEscape(id)+"/plan", req, &resp)
	return resp, err
}

// PlanStatus polls the latest plan search result.
func (c *Client) PlanStatus(ctx context.Context, id string) (PlanResponse, error) {
	var resp PlanResponse
	err := c.do(ctx, http.MethodGet, "/v1/sessions/"+url.PathEscape(id)+"/plan", nil, &resp)
	return resp, err
}

// ApplyPlan accepts a plan; its steps replay through the session's
// journaled mutation path.
func (c *Client) ApplyPlan(ctx context.Context, id string, req ApplyPlanRequest) (ApplyPlanResponse, error) {
	var resp ApplyPlanResponse
	err := c.do(ctx, http.MethodPost, "/v1/sessions/"+url.PathEscape(id)+"/apply-plan", req, &resp)
	return resp, err
}

// Select switches unit and/or loop.
func (c *Client) Select(ctx context.Context, id string, req SelectRequest) (SelectResponse, error) {
	var resp SelectResponse
	err := c.do(ctx, http.MethodPost, "/v1/sessions/"+url.PathEscape(id)+"/select", req, &resp)
	return resp, err
}

// Deps fetches the selected loop's dependences.
func (c *Client) Deps(ctx context.Context, id string, q DepQuery) (DepsResponse, error) {
	v := url.Values{}
	if q.Carried {
		v.Set("carried", "1")
	}
	if q.HideRejected {
		v.Set("hiderejected", "1")
	}
	if q.HidePrivate {
		v.Set("hideprivate", "1")
	}
	if q.Sym != "" {
		v.Set("sym", q.Sym)
	}
	for _, cl := range q.Classes {
		v.Add("class", cl)
	}
	path := "/v1/sessions/" + url.PathEscape(id) + "/deps"
	if len(v) > 0 {
		path += "?" + v.Encode()
	}
	var resp DepsResponse
	err := c.do(ctx, http.MethodGet, path, nil, &resp)
	return resp, err
}

// Classify overrides a variable's classification.
func (c *Client) Classify(ctx context.Context, id string, req ClassifyRequest) error {
	return c.do(ctx, http.MethodPost, "/v1/sessions/"+url.PathEscape(id)+"/classify", req, nil)
}

// Transform checks or applies a transformation.
func (c *Client) Transform(ctx context.Context, id string, req TransformRequest) (CmdResponse, error) {
	var resp CmdResponse
	err := c.do(ctx, http.MethodPost, "/v1/sessions/"+url.PathEscape(id)+"/transform", req, &resp)
	return resp, err
}

// Edit replaces or deletes a statement.
func (c *Client) Edit(ctx context.Context, id string, req EditRequest) error {
	return c.do(ctx, http.MethodPost, "/v1/sessions/"+url.PathEscape(id)+"/edit", req, nil)
}

// Undo reverts the last change.
func (c *Client) Undo(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodPost, "/v1/sessions/"+url.PathEscape(id)+"/undo", nil, nil)
}

// ExportJournal fetches a session's raw journal stream — the byte
// image Import replays.
func (c *Client) ExportJournal(ctx context.Context, id string) ([]byte, error) {
	var raw []byte
	err := c.doBytes(ctx, http.MethodGet, "/v1/sessions/"+url.PathEscape(id)+"/journal", nil, "", false, true, &raw)
	return raw, err
}

// Import ships a journal stream to the daemon for adoption under id.
// Transport errors are not retried (a duplicate of a success would
// 409), but backpressure rejections still back off inside doBytes.
func (c *Client) Import(ctx context.Context, id string, stream []byte) (ImportResponse, error) {
	var resp ImportResponse
	err := c.doBytes(ctx, http.MethodPost, "/v1/sessions/import?id="+url.QueryEscape(id),
		stream, "application/octet-stream", true, false, &resp)
	return resp, err
}

// Migrate asks the session's current node to move it to the node at
// target (a base URL).
func (c *Client) Migrate(ctx context.Context, id, target string) (MigrateResponse, error) {
	var resp MigrateResponse
	err := c.do(ctx, http.MethodPost, "/v1/sessions/"+url.PathEscape(id)+"/migrate", MigrateRequest{Target: target}, &resp)
	return resp, err
}

// Ready probes GET /readyz once, no retries: nil means the daemon is
// accepting new work, an *APIError with status 503 means it is
// draining. (The retrying do() would mask exactly the answer health
// probes ask for.)
func (c *Client) Ready(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	return c.attempt(ctx, http.MethodGet, c.Base+"/readyz", nil, "", false, nil, newRequestID())
}

// CacheStats fetches the daemon's analysis cache counters.
func (c *Client) CacheStats(ctx context.Context) (CacheStatsResponse, error) {
	var resp CacheStatsResponse
	err := c.do(ctx, http.MethodGet, "/v1/cache", nil, &resp)
	return resp, err
}
