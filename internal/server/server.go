package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"time"

	"parascope/internal/execguard"
)

// Default request-hardening limits; override via Options.
const (
	// DefaultReqTimeout bounds each request end to end: a command
	// still queued when it expires is abandoned, and the client gets
	// 504 instead of waiting on a wedged session.
	DefaultReqTimeout = 30 * time.Second
	// DefaultMaxBodyBytes bounds request bodies (413 past it).
	DefaultMaxBodyBytes = 1 << 20
	// retryAfterSeconds is the Retry-After hint on 429/503 rejections.
	retryAfterSeconds = 1
)

// Options tunes the HTTP hardening and observability layers.
type Options struct {
	// ReqTimeout is the per-request deadline (0 = DefaultReqTimeout,
	// negative = disabled).
	ReqTimeout time.Duration
	// MaxBodyBytes caps request bodies (0 = DefaultMaxBodyBytes,
	// negative = disabled).
	MaxBodyBytes int64
	// Metrics receives request counters and latency histograms
	// (nil = the manager's registry).
	Metrics *Metrics
	// AccessLog, when set, gets one structured line per request
	// (request ID, method, route, status, duration).
	AccessLog *slog.Logger
	// Ready, when set, backs GET /readyz on the serving mux (the ops
	// listener mounts the same flag). Nil means always ready.
	Ready *Readiness
	// DisabledBackends lists execution backends POST /run refuses
	// with 501 (e.g. "compile" on hosts without a Go toolchain).
	DisabledBackends []string
}

// importMaxBytes caps journal streams on POST /v1/sessions/import.
// Migration ships whole journals, which dwarf command bodies, so the
// import route gets its own cap instead of Options.MaxBodyBytes.
const importMaxBytes = 64 << 20

// Server is the HTTP front of a Manager. Routes (all JSON):
//
//	GET    /healthz                      liveness
//	GET    /v1/cache                     analysis cache counters
//	POST   /v1/sessions                  open (workload | path+source)
//	GET    /v1/sessions                  list
//	GET    /v1/sessions/{id}             state + failure diagnostics
//	DELETE /v1/sessions/{id}             close
//	POST   /v1/sessions/{id}/cmd         run one REPL command line
//	POST   /v1/sessions/{id}/select      select unit and/or loop
//	GET    /v1/sessions/{id}/deps        dependence listing (filters
//	                                     via query params)
//	POST   /v1/sessions/{id}/classify    reclassify a variable
//	POST   /v1/sessions/{id}/transform   check/apply a transformation
//	POST   /v1/sessions/{id}/edit        edit or delete a statement
//	POST   /v1/sessions/{id}/undo        undo the last change
//	POST   /v1/sessions/{id}/run         execute the program (backend
//	                                     interp|compile; 501 when the
//	                                     backend is disabled by flag)
//	POST   /v1/sessions/{id}/plan        speculative plan search (202
//	                                     when async; 409 one-at-a-time;
//	                                     429 daemon at plan capacity)
//	GET    /v1/sessions/{id}/plan        latest plan search result
//	POST   /v1/sessions/{id}/apply-plan  accept a plan (replayed via
//	                                     the journal; 409 stale/diverged)
//
// Every request runs under a deadline and a body-size cap, carries an
// X-Request-ID (generated when the client sends none, echoed on the
// response and inside error bodies), and is instrumented: per-route
// counters and latency histograms, plus an optional structured access
// log. Every session error is mapped to a precise status (see
// writeOpError) so clients can tell a quarantined session (500) from
// a closed one (410), backpressure (429/503) from timeout (504).
type Server struct {
	mgr      *Manager
	mux      *http.ServeMux
	opts     Options
	metrics  *Metrics
	routes   []string
	disabled map[string]bool
}

// New wires the routes over a manager with default hardening limits.
func New(mgr *Manager) *Server { return NewWith(mgr, Options{}) }

// NewWith wires the routes with explicit limits.
func NewWith(mgr *Manager, opts Options) *Server {
	if opts.ReqTimeout == 0 {
		opts.ReqTimeout = DefaultReqTimeout
	}
	if opts.MaxBodyBytes == 0 {
		opts.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if opts.Metrics == nil {
		opts.Metrics = mgr.Metrics()
	}
	s := &Server{mgr: mgr, mux: http.NewServeMux(), opts: opts, metrics: opts.Metrics,
		disabled: map[string]bool{}}
	for _, b := range opts.DisabledBackends {
		s.disabled[strings.ToLower(strings.TrimSpace(b))] = true
	}
	s.handle("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	s.handle("GET /readyz", opts.Ready.handler)
	s.handle("GET /v1/cache", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, mgr.CacheStats())
	})
	s.handle("POST /v1/sessions", s.handleOpen)
	s.handle("GET /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, mgr.List(r.Context()))
	})
	s.handle("GET /v1/sessions/{id}", s.session(s.handleStatus))
	s.handle("DELETE /v1/sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		if !mgr.Close(r.PathValue("id")) {
			writeError(w, http.StatusNotFound, errors.New("no such session"))
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	s.handle("POST /v1/sessions/{id}/cmd", s.session(s.handleCmd))
	s.handle("POST /v1/sessions/{id}/select", s.session(s.handleSelect))
	s.handle("GET /v1/sessions/{id}/deps", s.session(s.handleDeps))
	s.handle("POST /v1/sessions/{id}/classify", s.session(s.handleClassify))
	s.handle("POST /v1/sessions/{id}/transform", s.session(s.handleTransform))
	s.handle("POST /v1/sessions/{id}/edit", s.session(s.handleEdit))
	s.handle("POST /v1/sessions/{id}/undo", s.session(s.handleUndo))
	s.handle("POST /v1/sessions/{id}/run", s.session(s.handleRun))
	s.handle("POST /v1/sessions/{id}/plan", s.session(s.handlePlan))
	s.handle("GET /v1/sessions/{id}/plan", s.session(s.handlePlanStatus))
	s.handle("POST /v1/sessions/{id}/apply-plan", s.session(s.handleApplyPlan))
	// Cluster: session migration. The literal "import" segment outranks
	// "{id}" in mux precedence, so "import" is never taken for an ID.
	s.handle("GET /v1/sessions/{id}/journal", s.session(s.handleJournal))
	s.handle("POST /v1/sessions/import", s.handleImport)
	s.handle("POST /v1/sessions/{id}/migrate", s.session(s.handleMigrate))
	return s
}

// handleJournal streams the session's journal image — the exact bytes
// an import replays. Non-durable sessions get a synthesized one-record
// snapshot stream.
func (s *Server) handleJournal(w http.ResponseWriter, r *http.Request, ss *Session) {
	data, err := ss.Export(r.Context())
	if err != nil {
		writeOpError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	_, _ = w.Write(data)
}

// handleImport adopts a session from a journal stream shipped by
// another node (or by the gateway during failover). The stream is
// validated end to end before anything is registered: a torn or
// corrupt stream is rejected whole, never truncated-and-accepted like
// startup recovery — the source must stay authoritative.
func (s *Server) handleImport(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("id")
	if id == "" {
		writeError(w, http.StatusBadRequest, errors.New("import: missing id query parameter"))
		return
	}
	data, err := io.ReadAll(r.Body)
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("journal stream exceeds %d bytes", mbe.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("import: reading stream: %w", err))
		return
	}
	resp, err := s.mgr.Import(r.Context(), id, data)
	if err != nil {
		switch {
		case errors.Is(err, ErrSessionExists):
			writeError(w, http.StatusConflict, err)
		case errors.Is(err, ErrTooManySessions):
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
			writeError(w, http.StatusServiceUnavailable, err)
		default:
			writeOpError(w, err)
		}
		return
	}
	writeJSON(w, http.StatusCreated, resp)
}

func (s *Server) handleMigrate(w http.ResponseWriter, r *http.Request, ss *Session) {
	var req MigrateRequest
	if !readJSON(w, r, &req) {
		return
	}
	if req.Target == "" {
		writeError(w, http.StatusBadRequest, errors.New("migrate: missing target"))
		return
	}
	resp, err := s.mgr.Migrate(r.Context(), ss, req.Target)
	if err != nil {
		writeOpError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request, ss *Session) {
	var req PlanRequest
	if !readJSON(w, r, &req) {
		return
	}
	resp, err := ss.Plan(r.Context(), req)
	if err != nil {
		writeOpError(w, err)
		return
	}
	if resp.Status == "running" {
		writeJSON(w, http.StatusAccepted, resp)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handlePlanStatus(w http.ResponseWriter, r *http.Request, ss *Session) {
	resp, ok := ss.PlanStatus()
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("no plan search has run for this session"))
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleApplyPlan(w http.ResponseWriter, r *http.Request, ss *Session) {
	var req ApplyPlanRequest
	if !readJSON(w, r, &req) {
		return
	}
	resp, err := ss.ApplyPlan(r.Context(), req)
	if err != nil {
		writeOpError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handle registers one route through the instrumentation wrapper: the
// matched mux pattern is captured for the metrics route label and the
// access log. Every route MUST be added through handle, never
// directly on s.mux — TestMetricsLintAllRoutesInstrumented reflects
// over the mux and fails the build of anyone who forgets.
func (s *Server) handle(pattern string, h http.HandlerFunc) {
	s.routes = append(s.routes, pattern)
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		if hold, ok := r.Context().Value(routeKey{}).(*routeHolder); ok {
			hold.pattern = r.Pattern
		}
		h(w, r)
	})
}

// Routes lists the registered (instrumented) mux patterns.
func (s *Server) Routes() []string {
	out := make([]string, len(s.routes))
	copy(out, s.routes)
	return out
}

// routeKey carries a *routeHolder through the request context so the
// per-route wrapper can report the matched pattern back to ServeHTTP
// (the mux sets r.Pattern only on the copy it hands the handler).
type routeKey struct{}

type routeHolder struct{ pattern string }

// requestIDKey carries the request ID through the request context.
type requestIDKey struct{}

// RequestIDFrom extracts the request ID placed in the context by the
// server middleware ("" outside a request).
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// statusRecorder captures the response status for metrics and logs.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (rec *statusRecorder) WriteHeader(code int) {
	if rec.code == 0 {
		rec.code = code
	}
	rec.ResponseWriter.WriteHeader(code)
}

func (rec *statusRecorder) Write(b []byte) (int, error) {
	if rec.code == 0 {
		rec.code = http.StatusOK
	}
	return rec.ResponseWriter.Write(b)
}

func (rec *statusRecorder) status() int {
	if rec.code == 0 {
		return http.StatusOK
	}
	return rec.code
}

// ServeHTTP implements http.Handler: it assigns the request ID,
// imposes the per-request deadline and body cap, routes, and then
// records the request's route/status/latency in the metrics registry
// and the access log.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	reqID := r.Header.Get("X-Request-ID")
	if reqID == "" {
		reqID = newRequestID()
	}
	w.Header().Set("X-Request-ID", reqID)
	ctx := r.Context()
	if s.opts.ReqTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.opts.ReqTimeout)
		defer cancel()
	}
	hold := &routeHolder{}
	ctx = context.WithValue(ctx, routeKey{}, hold)
	ctx = context.WithValue(ctx, requestIDKey{}, reqID)
	r = r.WithContext(ctx)
	rec := &statusRecorder{ResponseWriter: w}
	if s.opts.MaxBodyBytes > 0 && r.Body != nil {
		limit := s.opts.MaxBodyBytes
		if r.Method == http.MethodPost && r.URL.Path == "/v1/sessions/import" && limit < importMaxBytes {
			// Journal streams dwarf command bodies; the import route
			// carries whole sessions and gets its own cap.
			limit = importMaxBytes
		}
		r.Body = http.MaxBytesReader(rec, r.Body, limit)
	}
	s.metrics.HTTPInflight.Inc()
	s.mux.ServeHTTP(rec, r)
	s.metrics.HTTPInflight.Dec()
	route := hold.pattern
	if route == "" {
		// The mux matched nothing (404/405) or the handler was
		// registered without instrumentation; keep the label bounded.
		route = "unmatched"
	}
	elapsed := time.Since(start)
	s.metrics.ObserveHTTP(route, r.Method, rec.status(), elapsed)
	if lg := s.opts.AccessLog; lg != nil {
		lg.LogAttrs(ctx, slog.LevelInfo, "request",
			slog.String("req_id", reqID),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.String("route", route),
			slog.Int("status", rec.status()),
			slog.Duration("dur", elapsed),
		)
	}
}

// session resolves {id} before running the handler. A session that
// migrated away answers 421 Misdirected Request with a Location
// pointing at the same path on the node that adopted it, so a
// redirect-following client (or the gateway) recovers in one hop.
func (s *Server) session(h func(http.ResponseWriter, *http.Request, *Session)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		ss := s.mgr.Get(id)
		if ss == nil {
			if target, ok := s.mgr.MovedTo(id); ok {
				w.Header().Set("Location", strings.TrimRight(target, "/")+r.URL.RequestURI())
				writeError(w, http.StatusMisdirectedRequest,
					fmt.Errorf("session %s migrated to %s", id, target))
				return
			}
			writeError(w, http.StatusNotFound, errors.New("no such session"))
			return
		}
		h(w, r, ss)
	}
}

func (s *Server) handleOpen(w http.ResponseWriter, r *http.Request) {
	var req OpenRequest
	if !readJSON(w, r, &req) {
		return
	}
	_, resp, err := s.mgr.Open(r.Context(), req)
	if err != nil {
		switch {
		case errors.Is(err, ErrTooManySessions):
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
			writeError(w, http.StatusServiceUnavailable, err)
		case errors.Is(err, ErrSessionExists):
			writeError(w, http.StatusConflict, err)
		case errors.Is(err, ErrInternal):
			writeError(w, http.StatusInternalServerError, err)
		case errors.Is(err, context.DeadlineExceeded):
			writeError(w, http.StatusGatewayTimeout, err)
		case errors.Is(err, context.Canceled):
			writeError(w, statusClientClosedRequest, err)
		default:
			writeError(w, http.StatusUnprocessableEntity, err)
		}
		return
	}
	writeJSON(w, http.StatusCreated, resp)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request, ss *Session) {
	resp := SessionStatusResponse{
		SessionInfo:    ss.Info(r.Context()),
		Failure:        ss.Failure(),
		ReadOnlyReason: ss.ReadOnlyReason(),
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleCmd(w http.ResponseWriter, r *http.Request, ss *Session) {
	var req CmdRequest
	if !readJSON(w, r, &req) {
		return
	}
	resp, err := ss.Cmd(r.Context(), req.Line)
	if err != nil {
		writeOpError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleRun executes the session's program through the unified
// execution API. Backends the operator disabled by flag answer 501
// before any session work happens.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request, ss *Session) {
	var req RunRequest
	if !readJSON(w, r, &req) {
		return
	}
	backend := req.Backend
	if backend == "" {
		backend = "interp"
	}
	if s.disabled[backend] {
		writeError(w, http.StatusNotImplemented,
			fmt.Errorf("backend %q is disabled on this server", backend))
		return
	}
	resp, err := ss.Run(r.Context(), req)
	if err != nil {
		writeOpError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSelect(w http.ResponseWriter, r *http.Request, ss *Session) {
	var req SelectRequest
	if !readJSON(w, r, &req) {
		return
	}
	resp, err := ss.Select(r.Context(), req)
	if err != nil {
		writeOpError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleDeps(w http.ResponseWriter, r *http.Request, ss *Session) {
	q := r.URL.Query()
	dq := DepQuery{
		Carried:      boolParam(q.Get("carried")),
		HideRejected: boolParam(q.Get("hiderejected")),
		HidePrivate:  boolParam(q.Get("hideprivate")),
		Sym:          q.Get("sym"),
	}
	for _, c := range q["class"] {
		for _, part := range strings.Split(c, ",") {
			if part != "" {
				dq.Classes = append(dq.Classes, part)
			}
		}
	}
	resp, err := ss.Deps(r.Context(), dq)
	if err != nil {
		writeOpError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request, ss *Session) {
	var req ClassifyRequest
	if !readJSON(w, r, &req) {
		return
	}
	if err := ss.Classify(r.Context(), req); err != nil {
		writeOpError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleTransform(w http.ResponseWriter, r *http.Request, ss *Session) {
	var req TransformRequest
	if !readJSON(w, r, &req) {
		return
	}
	resp, err := ss.Transform(r.Context(), req)
	if err != nil {
		writeOpError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleEdit(w http.ResponseWriter, r *http.Request, ss *Session) {
	var req EditRequest
	if !readJSON(w, r, &req) {
		return
	}
	if err := ss.Edit(r.Context(), req); err != nil {
		writeOpError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleUndo(w http.ResponseWriter, r *http.Request, ss *Session) {
	if err := ss.Undo(r.Context()); err != nil {
		writeOpError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func boolParam(v string) bool { return v == "1" || strings.EqualFold(v, "true") }

// readJSON decodes one JSON value strictly: unknown fields are
// rejected (400, naming the field), trailing garbage after the value
// is rejected (400), and a body past the size cap is 413.
func readJSON(w http.ResponseWriter, r *http.Request, into interface{}) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", mbe.Limit))
			return false
		}
		writeError(w, http.StatusBadRequest, err)
		return false
	}
	if tok, err := dec.Token(); err != io.EOF {
		if err == nil {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("trailing data after JSON body (next token %v)", tok))
		} else {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("trailing data after JSON body"))
		}
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, body interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

// statusClientClosedRequest is the nginx convention for a client that
// disconnected before the response was ready; nothing useful can be
// delivered, but logs and tests see a distinct status.
const statusClientClosedRequest = 499

// writeOpError maps a session-operation error to a status:
//
//	ErrSessionClosed         410  session closed or evicted
//	ErrSessionFailed         500  session quarantined after a panic
//	ErrSessionReadOnly       503  journal failed; mutations rejected
//	ErrSessionMigrating      503  frozen mid-migration; retry shortly
//	ErrQueueFull             429  per-session queue at capacity
//	                              (or the daemon's plan capacity)
//	ErrPlanConflict          409  stale/diverged/duplicate plan work
//	ErrSessionExists         409  requested session ID already in use
//	context.DeadlineExceeded 504  request deadline expired
//	context.Canceled         499  client went away
//	anything else            422  command-level rejection
func writeOpError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrSessionClosed):
		writeError(w, http.StatusGone, err)
	case errors.Is(err, ErrPlanConflict), errors.Is(err, ErrSessionExists):
		writeError(w, http.StatusConflict, err)
	case errors.Is(err, ErrSessionMigrating):
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, ErrSessionFailed):
		writeError(w, http.StatusInternalServerError, err)
	case errors.Is(err, ErrSessionReadOnly):
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, execguard.ErrBusy):
		// Every exec slot is taken — admission control, not failure.
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, err)
	case errors.Is(err, context.Canceled):
		writeError(w, statusClientClosedRequest, err)
	default:
		writeError(w, http.StatusUnprocessableEntity, err)
	}
}

func writeError(w http.ResponseWriter, status int, err error) {
	// The middleware stamped X-Request-ID on the response headers;
	// echoing it in the body makes error payloads self-correlating
	// even after the transport headers are gone (logs, bug reports).
	writeJSON(w, status, ErrorResponse{
		Error:     err.Error(),
		RequestID: w.Header().Get("X-Request-ID"),
	})
}
