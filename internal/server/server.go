package server

import (
	"encoding/json"
	"errors"
	"net/http"
	"strings"
)

// Server is the HTTP front of a Manager. Routes (all JSON):
//
//	GET    /healthz                      liveness
//	GET    /v1/cache                     analysis cache counters
//	POST   /v1/sessions                  open (workload | path+source)
//	GET    /v1/sessions                  list
//	DELETE /v1/sessions/{id}             close
//	POST   /v1/sessions/{id}/cmd         run one REPL command line
//	POST   /v1/sessions/{id}/select      select unit and/or loop
//	GET    /v1/sessions/{id}/deps        dependence listing (filters
//	                                     via query params)
//	POST   /v1/sessions/{id}/classify    reclassify a variable
//	POST   /v1/sessions/{id}/transform   check/apply a transformation
//	POST   /v1/sessions/{id}/edit        edit or delete a statement
//	POST   /v1/sessions/{id}/undo        undo the last change
type Server struct {
	mgr *Manager
	mux *http.ServeMux
}

// New wires the routes over a manager.
func New(mgr *Manager) *Server {
	s := &Server{mgr: mgr, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	s.mux.HandleFunc("GET /v1/cache", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, mgr.CacheStats())
	})
	s.mux.HandleFunc("POST /v1/sessions", s.handleOpen)
	s.mux.HandleFunc("GET /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, mgr.List())
	})
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		if !mgr.Close(r.PathValue("id")) {
			writeError(w, http.StatusNotFound, errors.New("no such session"))
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	s.mux.HandleFunc("POST /v1/sessions/{id}/cmd", s.session(s.handleCmd))
	s.mux.HandleFunc("POST /v1/sessions/{id}/select", s.session(s.handleSelect))
	s.mux.HandleFunc("GET /v1/sessions/{id}/deps", s.session(s.handleDeps))
	s.mux.HandleFunc("POST /v1/sessions/{id}/classify", s.session(s.handleClassify))
	s.mux.HandleFunc("POST /v1/sessions/{id}/transform", s.session(s.handleTransform))
	s.mux.HandleFunc("POST /v1/sessions/{id}/edit", s.session(s.handleEdit))
	s.mux.HandleFunc("POST /v1/sessions/{id}/undo", s.session(s.handleUndo))
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// session resolves {id} before running the handler.
func (s *Server) session(h func(http.ResponseWriter, *http.Request, *Session)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ss := s.mgr.Get(r.PathValue("id"))
		if ss == nil {
			writeError(w, http.StatusNotFound, errors.New("no such session"))
			return
		}
		h(w, r, ss)
	}
}

func (s *Server) handleOpen(w http.ResponseWriter, r *http.Request) {
	var req OpenRequest
	if !readJSON(w, r, &req) {
		return
	}
	_, resp, err := s.mgr.Open(req)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusCreated, resp)
}

func (s *Server) handleCmd(w http.ResponseWriter, r *http.Request, ss *Session) {
	var req CmdRequest
	if !readJSON(w, r, &req) {
		return
	}
	resp, err := ss.Cmd(req.Line)
	if err != nil {
		writeError(w, http.StatusGone, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSelect(w http.ResponseWriter, r *http.Request, ss *Session) {
	var req SelectRequest
	if !readJSON(w, r, &req) {
		return
	}
	resp, err := ss.Select(req)
	if err != nil {
		writeOpError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleDeps(w http.ResponseWriter, r *http.Request, ss *Session) {
	q := r.URL.Query()
	dq := DepQuery{
		Carried:      boolParam(q.Get("carried")),
		HideRejected: boolParam(q.Get("hiderejected")),
		HidePrivate:  boolParam(q.Get("hideprivate")),
		Sym:          q.Get("sym"),
	}
	for _, c := range q["class"] {
		for _, part := range strings.Split(c, ",") {
			if part != "" {
				dq.Classes = append(dq.Classes, part)
			}
		}
	}
	resp, err := ss.Deps(dq)
	if err != nil {
		writeOpError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request, ss *Session) {
	var req ClassifyRequest
	if !readJSON(w, r, &req) {
		return
	}
	if err := ss.Classify(req); err != nil {
		writeOpError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleTransform(w http.ResponseWriter, r *http.Request, ss *Session) {
	var req TransformRequest
	if !readJSON(w, r, &req) {
		return
	}
	resp, err := ss.Transform(req)
	if err != nil {
		writeError(w, http.StatusGone, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleEdit(w http.ResponseWriter, r *http.Request, ss *Session) {
	var req EditRequest
	if !readJSON(w, r, &req) {
		return
	}
	if err := ss.Edit(req); err != nil {
		writeOpError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleUndo(w http.ResponseWriter, r *http.Request, ss *Session) {
	if err := ss.Undo(); err != nil {
		writeOpError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func boolParam(v string) bool { return v == "1" || strings.EqualFold(v, "true") }

func readJSON(w http.ResponseWriter, r *http.Request, into interface{}) bool {
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(into); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, body interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

// writeOpError maps a session-operation error to a status: closed
// sessions are gone, everything else is a command-level rejection.
func writeOpError(w http.ResponseWriter, err error) {
	if errors.Is(err, ErrSessionClosed) {
		writeError(w, http.StatusGone, err)
		return
	}
	writeError(w, http.StatusUnprocessableEntity, err)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
}
