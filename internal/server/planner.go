package server

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"parascope/internal/execguard"
	"parascope/internal/faultpoint"
	"parascope/internal/planner"
)

// This file is the daemon's face of the speculative planner: the
// plan / apply-plan session operations behind POST|GET
// /v1/sessions/{id}/plan and POST /v1/sessions/{id}/apply-plan, plus
// the line-protocol verbs (plan, plans, apply-plan) intercepted in
// Session.Cmd. The search itself runs OFF the session actor — it
// only borrows the actor for a snapshot of the printed source, then
// forks worlds from that immutable string — so a session keeps
// serving reads (and even mutations) while its plans are being
// searched. Accepting a plan is the opposite: one actor post that
// journals and executes each step line through the normal mutation
// path, verifying the plan's per-step hash chain as it goes.

// ErrPlanConflict is returned when a plan cannot be (or keep being)
// applied against the session's current state: the session's source
// moved past the plan's base hash, a step's post-hash diverged, or a
// search is already running. Maps to HTTP 409.
var ErrPlanConflict = errors.New("plan conflict")

const (
	defaultPlanWorkers   = 2
	defaultPlanCacheSize = 32
)

// planConfig is the manager-wide planner state every session shares:
// a daemon-level admission semaphore (searches are expensive — worlds
// burn a core each) and a small result cache keyed by source hash,
// unit, and budget.
type planConfig struct {
	sem     chan struct{}
	cache   *planCache
	timeout time.Duration
	// gov supervises the planner's compiled scoring runs; nil means
	// execguard defaults (standalone embedders).
	gov *execguard.Governor
	// cacheDir overrides the compile build cache for scoring (tests).
	cacheDir string
}

func newPlanConfig(cfg Config) *planConfig {
	w := cfg.PlanWorkers
	if w <= 0 {
		w = defaultPlanWorkers
	}
	n := cfg.PlanCacheSize
	if n <= 0 {
		n = defaultPlanCacheSize
	}
	return &planConfig{
		sem:      make(chan struct{}, w),
		cache:    newPlanCache(n),
		timeout:  cfg.PlanTimeout,
		cacheDir: cfg.RunCacheDir,
	}
}

// planState is one session's planner corner: the latest search result
// and the one-search-at-a-time latch. It has its own lock because
// planning deliberately never rides the actor goroutine.
type planState struct {
	mu      sync.Mutex
	running bool
	last    *PlanResponse
}

func (p *planState) tryBegin() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.running {
		return false
	}
	p.running = true
	return true
}

func (p *planState) end() {
	p.mu.Lock()
	p.running = false
	p.mu.Unlock()
}

func (p *planState) store(resp PlanResponse) {
	p.mu.Lock()
	cp := resp
	p.last = &cp
	p.mu.Unlock()
}

func (p *planState) snapshot() (PlanResponse, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.last == nil {
		return PlanResponse{}, false
	}
	return *p.last, true
}

// options maps the wire request onto search options, filling daemon
// defaults.
func (req PlanRequest) options(cfg *planConfig) planner.Options {
	opts := planner.Options{
		BeamWidth: req.BeamWidth,
		MaxDepth:  req.MaxDepth,
		MaxWorlds: req.MaxWorlds,
		TopPlans:  req.TopPlans,
		Interp:    !req.NoInterp,
		Compiled:  req.Compiled,
	}
	if req.TimeoutMs > 0 {
		opts.Timeout = time.Duration(req.TimeoutMs) * time.Millisecond
	} else if cfg != nil && cfg.timeout > 0 {
		opts.Timeout = cfg.timeout
	}
	if cfg != nil {
		opts.Gov = cfg.gov
		opts.CompileCache = cfg.cacheDir
	}
	return opts
}

// planKey fingerprints a search for the result cache: identical
// source, unit, and budget always produce the same ranked plans (the
// search is deterministic up to its deadline, which is part of the
// key).
func planKey(src, unit string, o planner.Options) string {
	return fmt.Sprintf("%s|%s|b%d.d%d.w%d.t%d.ms%d.i%v.c%v",
		planner.SrcHash(src), unit, o.BeamWidth, o.MaxDepth, o.MaxWorlds,
		o.TopPlans, o.Timeout/time.Millisecond, o.Interp, o.Compiled)
}

// planSnapshot borrows the actor for the instant it takes to print
// the current source — the world fork point. Read-only and even
// quarantine-adjacent traffic keeps flowing while the search runs.
func (ss *Session) planSnapshot(ctx context.Context) (path, src, unit string, err error) {
	err = ss.post(ctx, func() {
		path = ss.path
		if ss.live != nil {
			src = ss.live.Save()
			if u := ss.live.CurrentUnit(); u != nil {
				unit = u.Name
			}
		} else {
			src = ss.art.Printed
			unit = ss.art.Units[ss.curUnit].Name
		}
	}, true)
	return path, src, unit, err
}

// Plan runs (or begins, with Async) a speculative search for the
// session. Planning is allowed on read-only sessions — it mutates
// nothing. One search per session at a time (409), bounded searches
// per daemon (429), results cached by source hash + unit + budget.
func (ss *Session) Plan(ctx context.Context, req PlanRequest) (PlanResponse, error) {
	path, src, unit, err := ss.planSnapshot(ctx)
	if err != nil {
		return PlanResponse{}, err
	}
	opts := req.options(ss.planCfg)
	key := planKey(src, unit, opts)
	if cfg := ss.planCfg; cfg != nil {
		if resp, ok := cfg.cache.get(key); ok {
			resp.SessionID = ss.ID
			resp.Cached = true
			ss.plan.store(resp)
			return resp, nil
		}
	}
	if !ss.plan.tryBegin() {
		return PlanResponse{}, fmt.Errorf("%w: a plan search is already running for this session", ErrPlanConflict)
	}
	release := func() {}
	if cfg := ss.planCfg; cfg != nil {
		select {
		case cfg.sem <- struct{}{}:
			release = func() { <-cfg.sem }
		default:
			ss.plan.end()
			return PlanResponse{}, fmt.Errorf("%w: planner at capacity", ErrQueueFull)
		}
	}
	if req.Async {
		running := PlanResponse{SessionID: ss.ID, Unit: unit,
			BaseHash: planner.SrcHash(src), Status: "running"}
		ss.plan.store(running)
		go func() {
			defer release()
			ss.runSearch(context.Background(), path, src, unit, opts, key)
		}()
		return running, nil
	}
	defer release()
	resp := ss.runSearch(ctx, path, src, unit, opts, key)
	if resp.Status == "failed" {
		return resp, errors.New(resp.Error)
	}
	return resp, nil
}

// runSearch owns the session's running latch; it stores the outcome
// (done or failed) where PlanStatus and apply-plan find it, and
// caches successes.
func (ss *Session) runSearch(ctx context.Context, path, src, unit string, opts planner.Options, key string) PlanResponse {
	defer ss.plan.end()
	start := time.Now()
	res, err := planner.Search(ctx, path, src, unit, opts, plannerObserver{ss.metrics})
	ss.metrics.PlannerSearch.Observe(time.Since(start).Seconds())
	resp := PlanResponse{SessionID: ss.ID, Unit: unit, BaseHash: planner.SrcHash(src)}
	if err != nil {
		resp.Status = "failed"
		resp.Error = err.Error()
		ss.plan.store(resp)
		return resp
	}
	resp.Status = "done"
	resp.Unit = res.Unit
	resp.BaseHash = res.BaseHash
	resp.WorldsForked = res.WorldsForked
	resp.WorldsScored = res.WorldsScored
	resp.WorldsDiscarded = res.WorldsDiscarded
	resp.ElapsedMs = res.Elapsed.Milliseconds()
	resp.Plans = res.Plans
	ss.plan.store(resp)
	// Only productive searches are cached: an empty result can mean
	// injected faults or a transient world wipe-out, and re-running a
	// search that found nothing is cheap next to serving a stale
	// nothing forever.
	if cfg := ss.planCfg; cfg != nil && len(resp.Plans) > 0 {
		cfg.cache.put(key, resp)
	}
	return resp
}

// PlanStatus reports the latest search result (or that one is still
// running); ok is false when no plan was ever requested.
func (ss *Session) PlanStatus() (PlanResponse, bool) {
	return ss.plan.snapshot()
}

// ApplyPlan accepts a plan — by value, or by rank into the session's
// last search result — and replays its step lines through the normal
// journaled mutation path in ONE actor post: atomic with respect to
// every other client, durable like hand-typed commands, and checked
// step by step against the plan's hash chain. A base-hash or
// step-hash mismatch aborts with ErrPlanConflict; the journaled
// prefix stays consistent (it recorded exactly the steps that ran)
// and undo can roll it back.
func (ss *Session) ApplyPlan(ctx context.Context, req ApplyPlanRequest) (ApplyPlanResponse, error) {
	plan := req.Plan
	if plan == nil {
		n := req.Index
		if n == 0 {
			n = 1
		}
		last, ok := ss.plan.snapshot()
		if !ok || last.Status != "done" {
			return ApplyPlanResponse{}, fmt.Errorf("no completed plan search for this session (run plan first)")
		}
		if n < 1 || n > len(last.Plans) {
			return ApplyPlanResponse{}, fmt.Errorf("no plan %d (the last search returned %d)", n, len(last.Plans))
		}
		plan = &last.Plans[n-1]
	}
	if len(plan.Steps) == 0 {
		return ApplyPlanResponse{}, fmt.Errorf("plan %s has no steps", plan.ID)
	}
	if err := ss.readonlyErr(); err != nil {
		return ApplyPlanResponse{}, err
	}
	var resp ApplyPlanResponse
	var opErr error
	err := ss.post(ctx, func() {
		if opErr = faultpoint.Hit(faultpoint.PlanApply, ss.ID+":"+plan.ID); opErr != nil {
			return
		}
		if plan.BaseHash != "" {
			if h := ss.currentHash(); h != plan.BaseHash {
				opErr = fmt.Errorf("%w: stale plan %s: session source changed since the plan was computed", ErrPlanConflict, plan.ID)
				return
			}
		}
		for i, st := range plan.Steps {
			rec := &record{Op: recCmd, Line: st.Line}
			if opErr = ss.journalAppend(rec); opErr != nil {
				return
			}
			_, cmdErr := ss.exec(st.Line)
			ss.afterMutation(rec)
			if cmdErr != nil {
				opErr = fmt.Errorf("plan %s step %d (%q): %v", plan.ID, i+1, st.Line, cmdErr)
				return
			}
			if st.Hash != "" {
				if h := ss.currentHash(); h != st.Hash {
					opErr = fmt.Errorf("%w: plan %s diverged after step %d (%q); undo to roll back", ErrPlanConflict, plan.ID, i+1, st.Line)
					return
				}
			}
		}
		resp = ApplyPlanResponse{Plan: plan.ID, Applied: len(plan.Steps), Hash: ss.currentHash()}
	}, true)
	if err != nil {
		return ApplyPlanResponse{}, err
	}
	if opErr != nil {
		return ApplyPlanResponse{}, opErr
	}
	ss.metrics.PlannerWorldsAccepted.Inc()
	return resp, nil
}

// planCmd serves the line-protocol planner verbs, so `ped -remote`
// scripts and raw cmd lines get the planner without knowing the
// typed endpoints. Intercepted before the REPL: the REPL's own
// apply-plan path would mutate without journaling each step.
func (ss *Session) planCmd(ctx context.Context, line string) (CmdResponse, error) {
	f := strings.Fields(line)
	switch strings.ToLower(f[0]) {
	case "plan":
		req, err := planReqFromArgs(f[1:])
		if err != nil {
			return CmdResponse{Err: err.Error()}, nil
		}
		resp, err := ss.Plan(ctx, req)
		if err != nil {
			return CmdResponse{}, err
		}
		return CmdResponse{Output: resp.format()}, nil
	case "plans":
		resp, ok := ss.PlanStatus()
		if !ok {
			return CmdResponse{Output: "no plans: run plan first\n"}, nil
		}
		return CmdResponse{Output: resp.format()}, nil
	case "apply-plan":
		n := 0
		if len(f) > 1 {
			var err error
			if n, err = strconv.Atoi(f[1]); err != nil {
				return CmdResponse{Err: fmt.Sprintf("bad plan rank %q", f[1])}, nil
			}
		}
		resp, err := ss.ApplyPlan(ctx, ApplyPlanRequest{Index: n})
		if err != nil {
			return CmdResponse{}, err
		}
		return CmdResponse{Output: fmt.Sprintf("applied plan %s: %d step(s), hash %s\n",
			resp.Plan, resp.Applied, resp.Hash)}, nil
	}
	return CmdResponse{}, fmt.Errorf("unknown planner verb %q", f[0])
}

// planReqFromArgs parses the REPL-style budget arguments
// (beam=N depth=N worlds=N ms=N top=N nointerp async).
func planReqFromArgs(args []string) (PlanRequest, error) {
	var req PlanRequest
	for _, a := range args {
		switch a {
		case "nointerp":
			req.NoInterp = true
			continue
		case "compiled":
			req.Compiled = true
			continue
		case "async":
			req.Async = true
			continue
		}
		k, v, ok := strings.Cut(a, "=")
		n, err := strconv.Atoi(v)
		if !ok || err != nil || n <= 0 {
			return req, fmt.Errorf("bad plan option %q (want beam=N depth=N worlds=N ms=N top=N nointerp async)", a)
		}
		switch k {
		case "beam":
			req.BeamWidth = n
		case "depth":
			req.MaxDepth = n
		case "worlds":
			req.MaxWorlds = n
		case "ms":
			req.TimeoutMs = n
		case "top":
			req.TopPlans = n
		default:
			return req, fmt.Errorf("unknown plan option %q", k)
		}
	}
	return req, nil
}

// format renders a PlanResponse for the line protocol.
func (resp PlanResponse) format() string {
	switch resp.Status {
	case "running":
		return "plan search running; poll with plans\n"
	case "failed":
		return "plan search failed: " + resp.Error + "\n"
	}
	res := planner.Result{
		Unit:            resp.Unit,
		BaseHash:        resp.BaseHash,
		WorldsForked:    resp.WorldsForked,
		WorldsScored:    resp.WorldsScored,
		WorldsDiscarded: resp.WorldsDiscarded,
		Elapsed:         time.Duration(resp.ElapsedMs) * time.Millisecond,
		Plans:           resp.Plans,
	}
	out := res.Format()
	if resp.Cached {
		out = "(cached)\n" + out
	}
	return out
}

// plannerObserver feeds world lifecycle events into the daemon's
// metric registry.
type plannerObserver struct{ m *Metrics }

func (o plannerObserver) WorldForked()    { o.m.PlannerWorldsForked.Inc() }
func (o plannerObserver) WorldScored()    { o.m.PlannerWorldsScored.Inc() }
func (o plannerObserver) WorldDiscarded() { o.m.PlannerWorldsDiscarded.Inc() }
func (o plannerObserver) WorldsLive(delta int) {
	if delta > 0 {
		o.m.PlannerWorldsLive.Inc()
	} else {
		o.m.PlannerWorldsLive.Dec()
	}
}

// planCache is a small LRU over completed searches. Plans are
// replayable step sequences keyed by the exact source they were
// computed from, so a hit is always valid — a stale entry can only
// ever be *unreachable* (the source moved on), never wrong.
type planCache struct {
	mu  sync.Mutex
	max int
	ll  *list.List
	m   map[string]*list.Element
}

type planCacheEntry struct {
	key  string
	resp PlanResponse
}

func newPlanCache(max int) *planCache {
	return &planCache{max: max, ll: list.New(), m: map[string]*list.Element{}}
}

func (c *planCache) get(key string) (PlanResponse, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el := c.m[key]
	if el == nil {
		return PlanResponse{}, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*planCacheEntry).resp, true
}

func (c *planCache) put(key string, resp PlanResponse) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el := c.m[key]; el != nil {
		el.Value.(*planCacheEntry).resp = resp
		c.ll.MoveToFront(el)
		return
	}
	c.m[key] = c.ll.PushFront(&planCacheEntry{key: key, resp: resp})
	for c.ll.Len() > c.max {
		el := c.ll.Back()
		c.ll.Remove(el)
		delete(c.m, el.Value.(*planCacheEntry).key)
	}
}
