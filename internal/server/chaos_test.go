package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"parascope/internal/faultpoint"
	"parascope/internal/workloads"
)

// boomSource has two program units so materializing it drives the
// parallel analysis worker pool — the faultpoint.Analyze site fires
// inside a pool worker, which is the hardest place to contain a panic.
const boomSource = `
      program boom
      integer i
      real a(100)
      do i = 1, 100
         a(i) = real(i)
      enddo
      call scale(a, 100)
      print *, a(1)
      end
      subroutine scale(a, n)
      integer n, i
      real a(n)
      do i = 1, n
         a(i) = a(i)*2.0
      enddo
      end
`

// hangSource has one trivially parallel loop so `apply parallelize 1`
// reaches core.Session.Transform — and its faultpoint — cleanly.
const hangSource = `
      program hang
      integer i
      real a(100)
      do i = 1, 100
         a(i) = real(i)*2.0
      enddo
      print *, a(1)
      end
`

// chaosScript is the read-only probe run in every healthy session.
var chaosScript = []string{"loops", "loop 1", "deps", "vars", "perf", "save"}

// runScript executes chaosScript over HTTP and returns the
// concatenated transcript (outputs and command-level errors).
func runScript(c *Client, id string) (string, error) {
	var b strings.Builder
	for _, line := range chaosScript {
		resp, err := c.Cmd(context.Background(), id, line)
		if err != nil {
			return "", fmt.Errorf("cmd %q: %w", line, err)
		}
		b.WriteString(resp.Output)
		if resp.Err != "" {
			fmt.Fprintf(&b, "error: %s\n", resp.Err)
		}
	}
	return b.String(), nil
}

// openHealthy opens 16 sessions — each of 8 workloads twice, so half
// the fleet is live and half artifact-backed — in a deterministic
// order, and returns their IDs in open order.
func openHealthy(t *testing.T, c *Client) []string {
	t.Helper()
	names := make([]string, 0, 8)
	for _, w := range workloads.All() {
		names = append(names, w.Name)
		if len(names) == 8 {
			break
		}
	}
	if len(names) < 8 {
		t.Fatalf("only %d workloads available", len(names))
	}
	ids := make([]string, 0, 16)
	for round := 0; round < 2; round++ {
		for _, name := range names {
			resp, err := c.Open(context.Background(), OpenRequest{Workload: name})
			if err != nil {
				t.Fatalf("open %s: %v", name, err)
			}
			if round == 1 && !resp.Cached {
				t.Fatalf("second open of %s missed the cache", name)
			}
			ids = append(ids, resp.ID)
		}
	}
	return ids
}

// TestChaosPanicAndHangIsolation is the headline resilience test: with
// an analysis panic and a transformation hang injected, 16 healthy
// concurrent sessions keep answering byte-identically to an
// uninjected run, the panicking session is quarantined with a
// diagnostic (500 + GET status showing state "failed" and a captured
// stack), and the hung session's request deadlines into a 504 — all
// on one daemon, all while -race watches.
func TestChaosPanicAndHangIsolation(t *testing.T) {
	cfg := Config{CacheSize: 32, Workers: 2}

	// Baseline: the same fleet with nothing injected.
	baseMgr := newTestManager(t, cfg)
	baseSrv := httptest.NewServer(New(baseMgr))
	defer baseSrv.Close()
	baseClient := NewClient(baseSrv.URL)
	baseIDs := openHealthy(t, baseClient)
	baseline := make([]string, len(baseIDs))
	for i, id := range baseIDs {
		out, err := runScript(baseClient, id)
		if err != nil {
			t.Fatalf("baseline session %s: %v", id, err)
		}
		baseline[i] = out
	}

	// Chaos fleet: same config, same open order, plus three victims.
	m := newTestManager(t, cfg)
	ts := httptest.NewServer(New(m))
	defer ts.Close()
	client := NewClient(ts.URL)
	ids := openHealthy(t, client)

	// boom.f is opened twice: the second session is artifact-backed,
	// so its first mutating command materializes — reparse, reanalyze,
	// worker pool — and walks straight into the armed panic.
	if _, err := client.Open(context.Background(), OpenRequest{Path: "boom.f", Source: boomSource}); err != nil {
		t.Fatalf("open boom.f: %v", err)
	}
	boom, err := client.Open(context.Background(), OpenRequest{Path: "boom.f", Source: boomSource})
	if err != nil {
		t.Fatalf("reopen boom.f: %v", err)
	}
	if !boom.Cached {
		t.Fatal("second boom.f open missed the cache; panic path needs an artifact-backed session")
	}
	hang, err := client.Open(context.Background(), OpenRequest{Path: "hang.f", Source: hangSource})
	if err != nil {
		t.Fatalf("open hang.f: %v", err)
	}

	t.Cleanup(faultpoint.Reset)
	faultpoint.Arm(faultpoint.Analyze, faultpoint.Fault{Match: "boom.f", Panic: true})
	// The delay must comfortably outlive the 200ms request deadline but
	// stay short enough that the test can wait for the actor to wake
	// (see the sentinel below) without dragging the suite.
	faultpoint.Arm(faultpoint.Transform, faultpoint.Fault{Match: "hang.f", Delay: 600 * time.Millisecond})

	// The hung request goes through a second handler over the same
	// manager with a tight deadline, so only it races the clock.
	hangSrv := httptest.NewServer(NewWith(m, Options{ReqTimeout: 200 * time.Millisecond}))
	defer hangSrv.Close()
	hangClient := NewClient(hangSrv.URL)

	var wg sync.WaitGroup
	transcripts := make([]string, len(ids))
	scriptErrs := make([]error, len(ids))
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			transcripts[i], scriptErrs[i] = runScript(client, id)
		}(i, id)
	}

	var panicErr, hangErr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		panicErr = client.Classify(context.Background(), boom.ID,
			ClassifyRequest{Var: "a", Class: "private"})
	}()
	go func() {
		defer wg.Done()
		_, hangErr = hangClient.Cmd(context.Background(), hang.ID, "apply parallelize 1")
	}()
	wg.Wait()

	// The panicking session answered 500 with a diagnostic...
	var apiErr *APIError
	if !errors.As(panicErr, &apiErr) || apiErr.Status != http.StatusInternalServerError {
		t.Fatalf("materializing into a panic: got %v, want APIError 500", panicErr)
	}
	if !strings.Contains(apiErr.Message, "session failed") {
		t.Errorf("500 body missing diagnostic: %q", apiErr.Message)
	}
	if n := faultpoint.Fired(faultpoint.Analyze); n < 1 {
		t.Errorf("analyze faultpoint fired %d times, want >= 1", n)
	}
	// ...is observable as failed with a captured worker stack...
	st, err := client.Status(context.Background(), boom.ID)
	if err != nil {
		t.Fatalf("status of failed session: %v", err)
	}
	if st.State != "failed" {
		t.Errorf("failed session state %q, want failed", st.State)
	}
	if st.Failure == nil || !strings.Contains(st.Failure.Stack, "worker stack") {
		t.Errorf("failure diagnostic missing worker stack: %+v", st.Failure)
	}
	// ...and stays quarantined for later requests.
	if _, err := client.Cmd(context.Background(), boom.ID, "loops"); err == nil {
		t.Error("command on quarantined session succeeded")
	} else if !errors.As(err, &apiErr) || apiErr.Status != http.StatusInternalServerError {
		t.Errorf("command on quarantined session: got %v, want 500", err)
	}

	// The hung session's request hit the deadline, not the client.
	if !errors.As(hangErr, &apiErr) || apiErr.Status != http.StatusGatewayTimeout {
		t.Fatalf("hung transform: got %v, want APIError 504", hangErr)
	}
	// Wait for the abandoned transform to actually wake and finish
	// while -race is still watching: its post-deadline writes are the
	// exact access the zero-value error paths exist to keep unread. A
	// sentinel through the default (30s) server queues behind the
	// sleeping command, so its success proves the actor drained past it
	// and the session recovered rather than staying wedged.
	if _, err := client.Cmd(context.Background(), hang.ID, "loops"); err != nil {
		t.Errorf("hang session after its command woke: %v", err)
	}

	// And the 16 healthy sessions never noticed: byte-identical.
	for i := range ids {
		if scriptErrs[i] != nil {
			t.Errorf("healthy session %s failed during chaos: %v", ids[i], scriptErrs[i])
			continue
		}
		if transcripts[i] != baseline[i] {
			t.Errorf("healthy session %s diverged from baseline under chaos:\n--- baseline ---\n%s\n--- chaos ---\n%s",
				ids[i], baseline[i], transcripts[i])
		}
	}
	for _, id := range ids {
		st, err := client.Status(context.Background(), id)
		if err != nil {
			t.Errorf("status %s: %v", id, err)
			continue
		}
		if st.State != "active" {
			t.Errorf("healthy session %s state %q after chaos, want active", id, st.State)
		}
	}
}

// TestDeadlineMidExecution pins the response-confinement contract: a
// command whose deadline expires while it is executing must return
// zero values — the captured response belongs to the actor, which
// writes it when the command eventually finishes, and any read of it
// on the error path is a data race (this test reads the returned
// values and then forces the actor to wake under -race, so a
// regression to `return resp, err` is flagged deterministically).
func TestDeadlineMidExecution(t *testing.T) {
	m := newTestManager(t, Config{CacheSize: 8})
	ss, _ := mustOpen(t, m, "onedim")
	t.Cleanup(faultpoint.Reset)
	faultpoint.Arm(faultpoint.Transform, faultpoint.Fault{Match: "onedim.f", Delay: 400 * time.Millisecond})

	ctx, cancel := context.WithTimeout(bg, 100*time.Millisecond)
	defer cancel()
	resp, err := ss.Cmd(ctx, "apply parallelize 1")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("mid-execution deadline: got %v, want context.DeadlineExceeded", err)
	}
	if resp.Output != "" || resp.Err != "" {
		t.Fatalf("timed-out command leaked a partial response: %+v", resp)
	}
	// Drain past the still-sleeping command so its post-deadline writes
	// happen while -race is watching, and prove the session recovered.
	if _, err := ss.Cmd(bg, "loops"); err != nil {
		t.Fatalf("sentinel after the abandoned command woke: %v", err)
	}
}

// TestAdmissionQueueFull pins the backpressure path: with a depth-1
// queue, one command running and one queued, the next post is refused
// with ErrQueueFull instead of buffering without bound.
func TestAdmissionQueueFull(t *testing.T) {
	m := newTestManager(t, Config{CacheSize: 8, QueueDepth: 1})
	ss, _ := mustOpen(t, m, "onedim")

	started := make(chan struct{})
	block := make(chan struct{})
	errs := make(chan error, 2)
	go func() { errs <- ss.post(bg, func() { close(started); <-block }, false) }()
	<-started // the actor is now busy
	go func() { errs <- ss.post(bg, func() {}, false) }()
	waitFor(t, func() bool { return len(ss.reqCh) == 1 }) // the queue slot is taken

	if _, err := ss.Cmd(bg, "loops"); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("post into a full queue: %v, want ErrQueueFull", err)
	}

	close(block)
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("queued command %d: %v", i, err)
		}
	}
	// Capacity recovered once the queue drained.
	if _, err := ss.Cmd(bg, "loops"); err != nil {
		t.Fatalf("command after drain: %v", err)
	}
}

// TestQueuedCommandAbandonedOnDisconnect: a command still in the queue
// when its client gives up must never execute.
func TestQueuedCommandAbandonedOnDisconnect(t *testing.T) {
	m := newTestManager(t, Config{CacheSize: 8, QueueDepth: 4})
	ss, _ := mustOpen(t, m, "onedim")

	started := make(chan struct{})
	block := make(chan struct{})
	go ss.post(bg, func() { close(started); <-block }, false)
	<-started

	ctx, cancel := context.WithCancel(bg)
	var ran atomic.Bool
	errCh := make(chan error, 1)
	go func() { errCh <- ss.post(ctx, func() { ran.Store(true) }, false) }()
	waitFor(t, func() bool { return len(ss.reqCh) == 1 })
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoned post returned %v, want context.Canceled", err)
	}

	close(block)
	// A sentinel through the actor proves the queue fully drained —
	// past the spot where the abandoned command would have run.
	if err := ss.post(bg, func() {}, false); err != nil {
		t.Fatalf("sentinel: %v", err)
	}
	if ran.Load() {
		t.Fatal("abandoned command executed after its client disconnected")
	}
}

// TestOpenDeadline pins the open-time contract: a hung parse cannot
// wedge the caller past its deadline, cannot leak its reserved
// MaxSessions slot once it returns, and the abandoned analysis still
// salvages its artifacts into the cache.
func TestOpenDeadline(t *testing.T) {
	m := newTestManager(t, Config{CacheSize: 8, MaxSessions: 1})
	t.Cleanup(faultpoint.Reset)
	faultpoint.Arm(faultpoint.Parse, faultpoint.Fault{Match: "slowopen.f", Delay: 400 * time.Millisecond, Times: 1})

	ctx, cancel := context.WithTimeout(bg, 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err := m.Open(ctx, OpenRequest{Path: "slowopen.f", Source: hangSource})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("open past its deadline: got %v, want context.DeadlineExceeded", err)
	}
	if waited := time.Since(start); waited > 300*time.Millisecond {
		t.Fatalf("open blocked %v on a hung parse instead of honoring its deadline", waited)
	}

	// The abandoned analysis still owns the only slot...
	if _, _, err := m.Open(bg, OpenRequest{Workload: "onedim"}); !errors.Is(err, ErrTooManySessions) {
		t.Fatalf("open while an abandoned analysis holds the slot: got %v, want ErrTooManySessions", err)
	}
	// ...until it returns, which releases the reservation.
	waitFor(t, func() bool {
		_, resp, err := m.Open(bg, OpenRequest{Workload: "onedim"})
		if err == nil {
			m.Close(resp.ID)
		}
		return err == nil
	})
	// And its artifacts were salvaged: reopening the slow source is a
	// cache hit — no reparse, so the Times-bounded fault stays quiet.
	_, resp, err := m.Open(bg, OpenRequest{Path: "slowopen.f", Source: hangSource})
	if err != nil {
		t.Fatalf("reopen after abandoned analysis: %v", err)
	}
	if !resp.Cached {
		t.Error("abandoned analysis did not salvage its artifacts into the cache")
	}
}

// TestJanitorRace hammers Open/Cmd/Sweep/Close concurrently with an
// aggressive TTL: every command must either succeed with real output
// or fail with ErrSessionClosed — never panic, never return garbage.
func TestJanitorRace(t *testing.T) {
	m := newTestManager(t, Config{
		TTL:        5 * time.Millisecond,
		SweepEvery: 2 * time.Millisecond,
		CacheSize:  8,
	})
	deadline := time.Now().Add(300 * time.Millisecond)

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for time.Now().Before(deadline) {
				ss, resp, err := m.Open(bg, OpenRequest{Workload: "onedim"})
				if err != nil {
					t.Errorf("open: %v", err)
					return
				}
				for k := 0; k < 3; k++ {
					r, err := ss.Cmd(bg, "loops")
					switch {
					case err == nil:
						if r.Output == "" {
							t.Error("live command returned empty output")
						}
					case errors.Is(err, ErrSessionClosed):
						// evicted mid-script: the one acceptable failure
					default:
						t.Errorf("cmd during sweep: %v", err)
					}
					if w == 0 {
						time.Sleep(3 * time.Millisecond) // invite eviction
					}
				}
				if w%2 == 1 {
					m.Close(resp.ID)
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for time.Now().Before(deadline) {
			m.Sweep()
		}
	}()
	wg.Wait()
}

// TestClientRetriesBackpressure: the client transparently rides out
// 429 bursts (two of every three requests rejected) and still
// completes an open → command → close conversation; with retries
// disabled it fails fast instead.
func TestClientRetriesBackpressure(t *testing.T) {
	m := newTestManager(t, Config{CacheSize: 8})
	inner := New(m)
	var n atomic.Int64
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n.Add(1)%3 != 0 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":"busy"}`)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer flaky.Close()

	c := NewClient(flaky.URL)
	c.BaseBackoff = time.Millisecond
	c.MaxBackoff = 5 * time.Millisecond
	c.MaxRetries = 5
	open, err := c.Open(bg, OpenRequest{Workload: "onedim"})
	if err != nil {
		t.Fatalf("open through 429 bursts: %v", err)
	}
	resp, err := c.Cmd(bg, open.ID, "loops")
	if err != nil {
		t.Fatalf("cmd through 429 bursts: %v", err)
	}
	if resp.Output == "" {
		t.Fatal("retried command returned no output")
	}
	if err := c.CloseSession(bg, open.ID); err != nil {
		t.Fatalf("close through 429 bursts: %v", err)
	}

	// Retries disabled: a single 429 is a single failure.
	var attempts atomic.Int64
	always429 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		w.Header().Set("Retry-After", "0")
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprint(w, `{"error":"busy"}`)
	}))
	defer always429.Close()
	c2 := NewClient(always429.URL)
	c2.MaxRetries = -1
	_, err = c2.Open(bg, OpenRequest{Workload: "onedim"})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusTooManyRequests {
		t.Fatalf("no-retry open: %v, want APIError 429", err)
	}
	if got := attempts.Load(); got != 1 {
		t.Fatalf("no-retry client made %d attempts, want 1", got)
	}
}

// TestClientBackoffPolicy pins the schedule: Retry-After is a floor,
// non-backpressure API errors are terminal, and transport errors only
// retry on idempotent methods.
func TestClientBackoffPolicy(t *testing.T) {
	c := NewClient("http://example.invalid")
	if d := c.backoff(0, 3*time.Second); d < 3*time.Second {
		t.Errorf("backoff ignored Retry-After floor: %v", d)
	}
	if d := c.backoff(20, 0); d > DefaultMaxBackoff {
		t.Errorf("backoff exceeded cap: %v", d)
	}
	if ok, _ := retryable(&APIError{Status: http.StatusUnprocessableEntity}, true); ok {
		t.Error("422 must not be retried")
	}
	if ok, _ := retryable(&APIError{Status: http.StatusServiceUnavailable}, false); !ok {
		t.Error("503 must be retried even on non-idempotent requests")
	}
	if ok, _ := retryable(errors.New("connection reset"), false); ok {
		t.Error("transport error on non-idempotent request must not be retried")
	}
	if ok, _ := retryable(errors.New("connection reset"), true); !ok {
		t.Error("transport error on idempotent request must be retried")
	}
}

// waitFor polls cond for up to 2s.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached within 2s")
}
