package server

import (
	"context"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"parascope/internal/core"
	"parascope/internal/dep"
)

// This file is the read side of the durability layer: at startup the
// manager scans its datadir for session journals and rebuilds each
// session by replaying its records through the exact code paths a live
// client would exercise. Recovery classifies damage per journal —
//
//   - a torn tail (partial or checksum-failed *final* record) is the
//     expected aftermath of kill -9: truncate it and recover the rest;
//   - a checksum failure with intact records after it is real
//     corruption: that session is registered as a quarantined husk
//     (status visible, every op rejected) and no other session is
//     affected;
//   - a replay that cannot proceed (injected fault, divergence between
//     the rebuilt source and the hash the journal recorded) leaves the
//     session read-only at the recovered prefix — reads serve, writes
//     503 — because appending past a prefix mismatch would corrupt the
//     log's meaning.
//
// One broken journal never blocks the others and never kills the
// daemon: recovery is per-session fail-soft, like everything else here.

// RecoveryStats summarizes one datadir scan.
type RecoveryStats struct {
	// Recovered sessions are fully rebuilt and writable.
	Recovered int
	// Truncated counts journals whose torn tail was cut (the session
	// itself still recovers; a subset of Recovered unless the journal
	// was left empty).
	Truncated int
	// Quarantined sessions had corrupt or unusable journals and are
	// registered failed: status is queryable, every op is rejected.
	Quarantined int
	// ReadOnly sessions recovered a prefix but could not finish replay.
	ReadOnly int
	// Removed journals held no durable record at all (the open record
	// never reached the disk) — deleted, nothing to rebuild.
	Removed int
	// Moved counts tombstones loaded: sessions that migrated away and
	// keep answering 421 + Location after this restart.
	Moved int
}

func (st RecoveryStats) String() string {
	return fmt.Sprintf("recovered %d (truncated %d, read-only %d), quarantined %d, removed %d, moved %d",
		st.Recovered, st.Truncated, st.ReadOnly, st.Quarantined, st.Removed, st.Moved)
}

// Recover scans the manager's datadir and rebuilds every journaled
// session. Call it after NewManager and before serving traffic; with
// no datadir it is a no-op. The returned error covers only the scan
// itself (unreadable datadir) — per-session failures are absorbed into
// the stats and the sessions' own status.
func (m *Manager) Recover() (RecoveryStats, error) {
	var st RecoveryStats
	if m.cfg.DataDir == "" {
		return st, nil
	}
	entries, err := os.ReadDir(m.cfg.DataDir)
	if err != nil {
		return st, fmt.Errorf("recovery scan: %w", err)
	}
	var wals []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		switch name := e.Name(); {
		case strings.HasSuffix(name, ".moved"):
			id := strings.TrimSuffix(name, ".moved")
			target, rerr := os.ReadFile(movedPath(m.cfg.DataDir, id))
			if rerr != nil || len(strings.TrimSpace(string(target))) == 0 {
				continue
			}
			m.mu.Lock()
			m.moved[id] = strings.TrimSpace(string(target))
			m.mu.Unlock()
			st.Moved++
		case strings.HasSuffix(name, ".wal"):
			wals = append(wals, name)
		}
	}
	sort.Strings(wals)
	for _, name := range wals {
		id := strings.TrimSuffix(name, ".wal")
		if _, moved := m.MovedTo(id); moved {
			// The migration tombstoned this session but crashed before
			// deleting its wal. The shipped copy is authoritative —
			// replaying the leftover here would fork the session.
			os.Remove(walPath(m.cfg.DataDir, id))
			continue
		}
		m.recoverOne(id, &st)
	}
	return st, nil
}

// recoverOne rebuilds a single session from its journal, updating st.
func (m *Manager) recoverOne(id string, st *RecoveryStats) {
	dir := m.cfg.DataDir
	path := walPath(dir, id)
	res, err := readJournal(path)
	if err != nil {
		m.registerHusk(id, "", fmt.Sprintf("recovery: journal unreadable: %v", err), st)
		return
	}
	if res.tornAt >= 0 {
		// Expected kill -9 aftermath, not an error: cut the tail so
		// the journal is clean before any new append lands after it.
		if err := os.Truncate(path, res.size); err != nil {
			m.registerHusk(id, "", fmt.Sprintf("recovery: truncating torn tail: %v", err), st)
			return
		}
		st.Truncated++
		m.metrics.RecoveriesTruncated.Inc()
	}
	if res.corrupt != nil {
		m.registerHusk(id, "", fmt.Sprintf("recovery: journal corrupt: %v", res.corrupt), st)
		return
	}
	if len(res.records) == 0 {
		// The open record never became durable — the client was never
		// promised this session survives. Nothing to rebuild.
		os.Remove(path)
		st.Removed++
		return
	}
	base := &res.records[0]
	if base.Op != recOpen && base.Op != recSnapshot {
		m.registerHusk(id, base.Path, fmt.Sprintf("recovery: journal begins with %q, want open or snapshot", base.Op), st)
		return
	}

	art, live, err := m.rebuildAnalysis(base)
	if err != nil {
		m.registerHusk(id, base.Path, fmt.Sprintf("recovery: reanalyzing source: %v", err), st)
		return
	}

	jr, err := openJournalAppend(dir, id, m.cfg.Fsync, res.size, res.lastSeq, m.metrics)
	if err != nil {
		m.registerHusk(id, base.Path, fmt.Sprintf("recovery: reopening journal: %v", err), st)
		return
	}
	ss := newSession(id, base.Path, base.Source, art, live, m.cfg.Workers, m.cfg.QueueDepth, m.metrics, jr, m.cfg.SnapshotEvery)
	ss.planCfg = m.planCfg
	ss.gov = m.gov
	ss.runCache = m.cfg.RunCacheDir
	postErr, replayErr := replayJournal(ss, base, res.records[1:])

	m.mu.Lock()
	m.sessions[id] = ss
	m.mu.Unlock()
	m.metrics.SessionsLive.Inc()
	switch {
	case postErr != nil:
		// The replay panicked: the session quarantined itself through
		// the normal actor boundary and is already a registered husk
		// in all but name.
		st.Quarantined++
		m.metrics.RecoveriesQuarantined.Inc()
	case replayErr != nil:
		ss.degradeReadOnly(fmt.Sprintf("recovery: %v", replayErr))
		st.ReadOnly++
		st.Recovered++
		m.metrics.RecoveriesTotal.Inc()
	default:
		st.Recovered++
		m.metrics.RecoveriesTotal.Inc()
	}
}

// rebuildAnalysis rebuilds the analysis a journal's base record needs,
// through the cache: a datadir (or an import wave) full of sessions on
// the same source analyzes once and pre-warms the artifact cache.
// Shared by startup recovery and migration import.
func (m *Manager) rebuildAnalysis(base *record) (*Artifacts, *core.Session, error) {
	key := core.AnalysisKey(base.Path, base.Source, dep.DefaultOptions(), false)
	art := m.cache.Get(key)
	var live *core.Session
	if art == nil {
		cs, newArt, err := m.analyzeOpen(key, base.Path, base.Source)
		if err != nil {
			return nil, nil, err
		}
		live = cs
		if newArt != nil {
			m.cache.Put(newArt)
		}
	}
	return art, live, nil
}

// replayJournal replays a scanned journal (base + the rest) on a fresh
// session's actor, through the same code paths a live client would
// exercise. postErr reports a replay panic (the session quarantined
// itself at the actor boundary); replayErr reports a replay that could
// not proceed (divergence, injected fault, broken record). Recovery
// keeps what it salvaged on failure; import tears down instead.
func replayJournal(ss *Session, base *record, rest []record) (postErr, replayErr error) {
	postErr = ss.post(context.Background(), func() {
		if base.Op == recSnapshot {
			if replayErr = ss.applySnapshot(base); replayErr != nil {
				return
			}
		}
		for i := range rest {
			if replayErr = ss.applyRecord(&rest[i]); replayErr != nil {
				return
			}
		}
	}, false)
	return postErr, replayErr
}

// applySnapshot restores the folded state a snapshot record carries:
// the undo stack (which forces materialization — artifacts cannot
// hold it) and the selection. Runs on the actor goroutine.
func (ss *Session) applySnapshot(rec *record) error {
	if len(rec.Undo) > 0 {
		if err := ss.materialize(); err != nil {
			return err
		}
		ss.live.SetUndoStack(rec.Undo)
	}
	if rec.Unit != "" || rec.Loop > 0 {
		if _, err := ss.doSelect(SelectRequest{Unit: rec.Unit, Loop: rec.Loop}); err != nil {
			return fmt.Errorf("restoring snapshot selection: %v", err)
		}
	}
	return nil
}

// registerHusk registers a quarantined placeholder for a session whose
// journal could not be recovered: its ID and failure are visible via
// the sessions API (so an operator can see *why* and DELETE it, which
// removes the journal), but every operation is rejected. The corrupt
// journal stays on disk for forensics until then.
func (m *Manager) registerHusk(id, path, reason string, st *RecoveryStats) {
	ss := newSession(id, path, "", nil, nil, m.cfg.Workers, m.cfg.QueueDepth, m.metrics, nil, 0)
	ss.planCfg = m.planCfg
	ss.gov = m.gov
	ss.runCache = m.cfg.RunCacheDir
	ss.failRecovery(reason)
	ss.walOrphan = walPath(m.cfg.DataDir, id)
	m.mu.Lock()
	m.sessions[id] = ss
	m.mu.Unlock()
	m.metrics.SessionsLive.Inc()
	st.Quarantined++
	m.metrics.RecoveriesQuarantined.Inc()
}

// failRecovery quarantines a husk session with a recovery diagnostic —
// same observable state as a panic quarantine, without a stack.
func (ss *Session) failRecovery(reason string) {
	ss.failMu.Lock()
	first := ss.failure == nil
	if first {
		ss.failure = &FailureInfo{Reason: reason, Stack: reason, Time: time.Now()}
	}
	ss.failMu.Unlock()
	ss.failed.Store(true)
	if first {
		ss.closeMu.Lock()
		if !ss.closed {
			ss.metrics.SessionsQuarantined.Inc()
			ss.qGauged = true
		}
		ss.closeMu.Unlock()
	}
}
