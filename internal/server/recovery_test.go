package server

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"strings"
	"testing"

	"parascope/internal/faultpoint"
)

// durableConfig is the standard durability setup for these tests:
// FsyncAlways so every acknowledged mutation is on disk the moment the
// call returns — no flush-interval timing in the assertions.
func durableConfig(dir string) Config {
	return Config{CacheSize: 8, DataDir: dir, Fsync: FsyncAlways}
}

// cmdOK runs a line and requires transport success AND command success.
func cmdOK(t *testing.T, ss *Session, line string) string {
	t.Helper()
	return mustCmd(t, ss, line)
}

// TestRecoverRebuildsByteIdentical is the core durability contract: a
// mutated session survives a restart byte for byte — same ID, same
// printed source, same dependence answers — and stays writable.
func TestRecoverRebuildsByteIdentical(t *testing.T) {
	dir := t.TempDir()
	m1 := NewManager(durableConfig(dir))
	ss, resp := mustOpen(t, m1, "direct")
	before := cmdOK(t, ss, "save")
	cmdOK(t, ss, "loop 1")
	cmdOK(t, ss, "apply parallelize 1")
	want := cmdOK(t, ss, "save")
	if want == before {
		t.Fatal("parallelize 1 did not change the printed source; the test is vacuous")
	}
	wantDeps, err := ss.Deps(bg, DepQuery{})
	if err != nil {
		t.Fatal(err)
	}
	m1.Shutdown()

	m2 := newTestManager(t, durableConfig(dir))
	st, err := m2.Recover()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if st.Recovered != 1 || st.Quarantined != 0 || st.Truncated != 0 {
		t.Fatalf("recovery stats = %+v, want exactly 1 recovered", st)
	}
	rs := m2.Get(resp.ID)
	if rs == nil {
		t.Fatalf("session %s not re-registered after recovery", resp.ID)
	}
	if got := cmdOK(t, rs, "save"); got != want {
		t.Errorf("recovered source differs:\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}
	gotDeps, err := rs.Deps(bg, DepQuery{})
	if err != nil {
		t.Fatalf("deps after recovery: %v", err)
	}
	if !reflect.DeepEqual(gotDeps, wantDeps) {
		t.Errorf("recovered deps differ:\nwant %+v\ngot  %+v", wantDeps, gotDeps)
	}
	// The recovered session is writable, and its new mutations are
	// journaled in turn — recover again to prove the reopened journal
	// keeps working.
	cmdOK(t, rs, "undo")
	roundTwo := cmdOK(t, rs, "save")
	if roundTwo != before {
		t.Errorf("undo after recovery did not restore the original source")
	}
	m2.Shutdown()

	m3 := newTestManager(t, durableConfig(dir))
	if _, err := m3.Recover(); err != nil {
		t.Fatal(err)
	}
	rs3 := m3.Get(resp.ID)
	if rs3 == nil {
		t.Fatal("session lost on second recovery")
	}
	if got := cmdOK(t, rs3, "save"); got != roundTwo {
		t.Errorf("second recovery diverged:\nwant %s\ngot  %s", roundTwo, got)
	}
}

// TestRecoverPrewarmsCache: recovery runs its reanalysis through the
// artifact cache, so the first post-restart open of the same source is
// a hit.
func TestRecoverPrewarmsCache(t *testing.T) {
	dir := t.TempDir()
	m1 := NewManager(durableConfig(dir))
	ss, _ := mustOpen(t, m1, "onedim")
	cmdOK(t, ss, "loop 1")
	m1.Shutdown()

	m2 := newTestManager(t, durableConfig(dir))
	if _, err := m2.Recover(); err != nil {
		t.Fatal(err)
	}
	if _, resp := mustOpen(t, m2, "onedim"); !resp.Cached {
		t.Error("open after recovery missed the cache; recovery did not pre-warm it")
	}
}

// TestRecoverTruncatesTornTail: a partial final record — the expected
// aftermath of kill -9 — is cut off and the session recovers from the
// records before it, still writable.
func TestRecoverTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	m1 := NewManager(durableConfig(dir))
	ss, resp := mustOpen(t, m1, "direct")
	cmdOK(t, ss, "loop 1")
	cmdOK(t, ss, "apply parallelize 1")
	want := cmdOK(t, ss, "save")
	m1.Shutdown()

	// Simulate the torn write: a length header promising more payload
	// than the file holds.
	wal := walPath(dir, resp.ID)
	f, err := os.OpenFile(wal, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x00, 0x00, 0x00, 0x40, 'p', 'a', 'r'}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	m2 := newTestManager(t, durableConfig(dir))
	st, err := m2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if st.Recovered != 1 || st.Truncated != 1 || st.Quarantined != 0 {
		t.Fatalf("recovery stats = %+v, want 1 recovered with 1 truncation", st)
	}
	rs := m2.Get(resp.ID)
	if rs == nil {
		t.Fatal("torn-tail session not recovered")
	}
	if got := cmdOK(t, rs, "save"); got != want {
		t.Errorf("recovered source differs after torn-tail truncation")
	}
	// The truncated journal must be clean and appendable.
	cmdOK(t, rs, "undo")
	m2.Shutdown()
	res, err := readJournal(wal)
	if err != nil {
		t.Fatal(err)
	}
	if res.tornAt != -1 || res.corruptAt != -1 {
		t.Fatalf("journal still damaged after recovery truncation: %+v", res)
	}
}

// TestRecoverQuarantinesCorruptJournal: mid-stream corruption in one
// session's journal quarantines that session only — its status and
// failure are queryable, its operations are rejected, its neighbors
// recover untouched, and deleting it removes the corrupt wal.
func TestRecoverQuarantinesCorruptJournal(t *testing.T) {
	dir := t.TempDir()
	m1 := NewManager(durableConfig(dir))
	ssA, respA := mustOpen(t, m1, "direct")
	ssB, respB := mustOpen(t, m1, "onedim")
	cmdOK(t, ssA, "loop 1")
	cmdOK(t, ssA, "apply parallelize 1")
	cmdOK(t, ssB, "loop 1")
	wantB := cmdOK(t, ssB, "save")
	m1.Shutdown()

	// Flip one bit in A's first record (the open record) — intact
	// records follow, so this must read as corruption, not a torn tail.
	wal := walPath(dir, respA.ID)
	data, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	data[6] ^= 0x40
	if err := os.WriteFile(wal, data, 0o644); err != nil {
		t.Fatal(err)
	}

	m2 := newTestManager(t, durableConfig(dir))
	st, err := m2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if st.Recovered != 1 || st.Quarantined != 1 {
		t.Fatalf("recovery stats = %+v, want 1 recovered + 1 quarantined", st)
	}

	husk := m2.Get(respA.ID)
	if husk == nil {
		t.Fatal("corrupt session not registered as a husk")
	}
	if state := husk.StateName(); state != "failed" {
		t.Errorf("husk state = %q, want failed", state)
	}
	fail := husk.Failure()
	if fail == nil || !strings.Contains(fail.Reason, "corrupt") {
		t.Errorf("husk failure = %+v, want a corruption diagnostic", fail)
	}
	if _, err := husk.Cmd(bg, "loops"); !errors.Is(err, ErrSessionFailed) {
		t.Errorf("cmd on husk: %v, want ErrSessionFailed", err)
	}

	// The neighbor is untouched.
	rsB := m2.Get(respB.ID)
	if rsB == nil {
		t.Fatal("healthy neighbor not recovered")
	}
	if got := cmdOK(t, rsB, "save"); got != wantB {
		t.Error("neighbor session source diverged")
	}

	// The status endpoint surfaces the quarantine.
	ts := httptest.NewServer(New(m2))
	defer ts.Close()
	hr, err := http.Get(ts.URL + "/v1/sessions/" + respA.ID)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(hr.Body)
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Errorf("husk status endpoint: %d, want 200", hr.StatusCode)
	}
	if !strings.Contains(string(body), `"state":"failed"`) || !strings.Contains(string(body), "corrupt") {
		t.Errorf("husk status body lacks quarantine diagnostics: %s", body)
	}

	// DELETE clears the husk and its wal; the next recovery sees nothing.
	if !m2.Close(respA.ID) {
		t.Fatal("closing husk failed")
	}
	if _, err := os.Stat(wal); !os.IsNotExist(err) {
		t.Errorf("husk wal still on disk after DELETE: %v", err)
	}
}

// TestJournalAppendFaultDegradesReadOnly is the fault-injection
// acceptance test: a failed journal append degrades exactly that
// session to read-only — the mutation that hit the fault reports 503,
// reads keep answering 200, the daemon and other sessions stay
// healthy, and the gauge tracks it.
func TestJournalAppendFaultDegradesReadOnly(t *testing.T) {
	dir := t.TempDir()
	m := newTestManager(t, durableConfig(dir))
	t.Cleanup(faultpoint.Reset)
	ssA, respA := mustOpen(t, m, "direct")
	ssB, _ := mustOpen(t, m, "onedim")
	cmdOK(t, ssA, "loop 1")

	disarm := faultpoint.Arm(faultpoint.JournalAppend,
		faultpoint.Fault{Match: respA.ID + ":", Err: errors.New("injected EIO")})
	defer disarm()

	_, err := ssA.Cmd(bg, "apply parallelize 1")
	if !errors.Is(err, ErrSessionReadOnly) {
		t.Fatalf("mutation with failing journal: %v, want ErrSessionReadOnly", err)
	}
	// Reads still serve from memory; further mutations are rejected
	// up front (journal untouched — the readonly check precedes it).
	cmdOK(t, ssA, "loops")
	cmdOK(t, ssA, "save")
	if _, err := ssA.Deps(bg, DepQuery{}); err != nil {
		t.Errorf("deps on read-only session: %v", err)
	}
	if _, err := ssA.Select(bg, SelectRequest{Loop: 1}); !errors.Is(err, ErrSessionReadOnly) {
		t.Errorf("select on read-only session: %v, want ErrSessionReadOnly", err)
	}
	if err := ssA.Undo(bg); !errors.Is(err, ErrSessionReadOnly) {
		t.Errorf("undo on read-only session: %v, want ErrSessionReadOnly", err)
	}

	// The other session mutates fine while the fault is still armed.
	cmdOK(t, ssB, "loop 1")

	info := ssA.Info(bg)
	if !info.ReadOnly {
		t.Error("Info does not report read-only")
	}
	if reason := ssA.ReadOnlyReason(); !strings.Contains(reason, "injected EIO") {
		t.Errorf("read-only reason %q does not carry the journal error", reason)
	}
	vals := promValues(t, scrape(t, m.Metrics()))
	if got := vals["pedd_sessions_readonly"]; got != 1 {
		t.Errorf("pedd_sessions_readonly = %v, want 1", got)
	}

	// Over HTTP: mutations 503, reads 200, status carries the reason.
	ts := httptest.NewServer(New(m))
	defer ts.Close()
	hr, err := http.Post(ts.URL+"/v1/sessions/"+respA.ID+"/cmd", "application/json",
		strings.NewReader(`{"line":"apply parallelize 1"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, hr.Body)
	hr.Body.Close()
	if hr.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("mutating cmd on read-only session: %d, want 503", hr.StatusCode)
	}
	hr, err = http.Get(ts.URL + "/v1/sessions/" + respA.ID + "/deps")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, hr.Body)
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Errorf("deps on read-only session: %d, want 200", hr.StatusCode)
	}
	hr, err = http.Get(ts.URL + "/v1/sessions/" + respA.ID)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(hr.Body)
	hr.Body.Close()
	if !strings.Contains(string(body), `"read_only":true`) ||
		!strings.Contains(string(body), "injected EIO") {
		t.Errorf("status body lacks read-only diagnostics: %s", body)
	}

	// Closing the degraded session drains the gauge.
	m.Close(respA.ID)
	vals = promValues(t, scrape(t, m.Metrics()))
	if got := vals["pedd_sessions_readonly"]; got != 0 {
		t.Errorf("pedd_sessions_readonly after close = %v, want 0", got)
	}
}

// TestReplayFaultLeavesPrefixReadOnly: an injected replay fault stops
// recovery at the rebuilt prefix; the session serves reads from that
// prefix and rejects mutations.
func TestReplayFaultLeavesPrefixReadOnly(t *testing.T) {
	dir := t.TempDir()
	m1 := NewManager(durableConfig(dir))
	ss, resp := mustOpen(t, m1, "direct")
	prefix := cmdOK(t, ss, "save")
	cmdOK(t, ss, "loop 1")
	cmdOK(t, ss, "apply parallelize 1")
	m1.Shutdown()

	t.Cleanup(faultpoint.Reset)
	// Fail the replay of the apply (a cmd record), after open + select
	// already rebuilt.
	disarm := faultpoint.Arm(faultpoint.JournalReplay,
		faultpoint.Fault{Match: resp.ID + ":" + recCmd, Err: errors.New("injected replay fault")})
	defer disarm()

	m2 := newTestManager(t, durableConfig(dir))
	st, err := m2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if st.ReadOnly != 1 {
		t.Fatalf("recovery stats = %+v, want 1 read-only", st)
	}
	rs := m2.Get(resp.ID)
	if rs == nil {
		t.Fatal("session missing after partial replay")
	}
	if got := cmdOK(t, rs, "save"); got != prefix {
		t.Errorf("read-only session does not serve the recovered prefix")
	}
	if _, err := rs.Cmd(bg, "apply parallelize 1"); !errors.Is(err, ErrSessionReadOnly) {
		t.Errorf("mutation after partial replay: %v, want ErrSessionReadOnly", err)
	}
}

// TestSnapshotCompactionAndUndoAcrossIt: after SnapshotEvery mutations
// the journal folds to one snapshot record; recovery from the snapshot
// is byte-identical AND undo still works, because the snapshot carries
// the undo stack.
func TestSnapshotCompactionAndUndoAcrossIt(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(dir)
	cfg.SnapshotEvery = 2
	m1 := NewManager(cfg)
	ss, resp := mustOpen(t, m1, "direct")
	original := cmdOK(t, ss, "save")
	cmdOK(t, ss, "loop 1")              // mutation 1
	cmdOK(t, ss, "apply parallelize 1") // mutation 2 → compaction
	want := cmdOK(t, ss, "save")
	m1.Shutdown()

	res, err := readJournal(walPath(dir, resp.ID))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.records) == 0 || res.records[0].Op != recSnapshot {
		t.Fatalf("journal not compacted: first record %+v", res.records)
	}
	if len(res.records) != 1 {
		t.Fatalf("journal holds %d records after compaction, want 1", len(res.records))
	}
	if len(res.records[0].Undo) != 1 {
		t.Fatalf("snapshot undo stack depth %d, want 1", len(res.records[0].Undo))
	}

	m2 := newTestManager(t, durableConfig(dir))
	st, err := m2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if st.Recovered != 1 {
		t.Fatalf("recovery stats = %+v", st)
	}
	rs := m2.Get(resp.ID)
	if got := cmdOK(t, rs, "save"); got != want {
		t.Errorf("snapshot recovery not byte-identical:\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}
	cmdOK(t, rs, "undo")
	if got := cmdOK(t, rs, "save"); got != original {
		t.Errorf("undo across a snapshot lost the pre-mutation source:\nwant %s\ngot  %s", original, got)
	}
}

// TestStickyStateBlocksCompaction: state a snapshot cannot represent
// (analysis toggles, marks, classifications) pins the full journal.
func TestStickyStateBlocksCompaction(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(dir)
	cfg.SnapshotEvery = 2
	m1 := NewManager(cfg)
	ss, resp := mustOpen(t, m1, "direct")
	cmdOK(t, ss, "set constants off") // sticky mutation 1
	cmdOK(t, ss, "loop 1")            // mutation 2: threshold hit, but sticky blocks
	cmdOK(t, ss, "loop 1")            // mutation 3
	m1.Shutdown()

	res, err := readJournal(walPath(dir, resp.ID))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.records) != 4 || res.records[0].Op != recOpen {
		ops := make([]string, len(res.records))
		for i, r := range res.records {
			ops[i] = r.Op
		}
		t.Fatalf("sticky journal = %v, want [open cmd cmd cmd] uncompacted", ops)
	}

	m2 := newTestManager(t, durableConfig(dir))
	if _, err := m2.Recover(); err != nil {
		t.Fatal(err)
	}
	if rs := m2.Get(resp.ID); rs == nil {
		t.Fatal("sticky session not recovered")
	} else {
		cmdOK(t, rs, "deps") // replayed `set constants off` state serves
	}
}

// TestShutdownFlushesJournals: with -fsync never nothing is synced on
// the hot path, but a clean Shutdown still drains every actor and
// syncs every journal on close — so a restart loses nothing.
func TestShutdownFlushesJournals(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(dir)
	cfg.Fsync = FsyncNever
	m1 := NewManager(cfg)
	ss, resp := mustOpen(t, m1, "direct")
	cmdOK(t, ss, "loop 1")
	cmdOK(t, ss, "apply parallelize 1")
	want := cmdOK(t, ss, "save")
	m1.Shutdown()
	m1.Shutdown() // idempotent

	m2 := newTestManager(t, durableConfig(dir))
	st, err := m2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if st.Recovered != 1 || st.Truncated != 0 {
		t.Fatalf("recovery stats after clean shutdown = %+v, want 1 clean recovery", st)
	}
	if got := cmdOK(t, m2.Get(resp.ID), "save"); got != want {
		t.Error("clean shutdown lost a mutation under -fsync never")
	}
}

// TestCloseIsIdempotentAndScopedToDatadirLifecycle: double-close of a
// durable session is safe and only the first close reports success;
// an explicitly closed session's wal is gone, so it must NOT
// resurrect at the next recovery.
func TestCloseIsIdempotentAndRemovesWal(t *testing.T) {
	dir := t.TempDir()
	m1 := NewManager(durableConfig(dir))
	ss, resp := mustOpen(t, m1, "onedim")
	cmdOK(t, ss, "loop 1")
	if !m1.Close(resp.ID) {
		t.Fatal("first close reported failure")
	}
	if m1.Close(resp.ID) {
		t.Fatal("second close reported success")
	}
	if _, err := os.Stat(walPath(dir, resp.ID)); !os.IsNotExist(err) {
		t.Fatalf("wal survives explicit close: %v", err)
	}
	m1.Shutdown()

	m2 := newTestManager(t, durableConfig(dir))
	st, err := m2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if st.Recovered != 0 || st.Quarantined != 0 {
		t.Fatalf("closed session resurrected: %+v", st)
	}
}

// TestRecoverRemovesEmptyJournal: a wal that never got its open record
// durably written (crash between create and append) is deleted, not
// recovered and not quarantined.
func TestRecoverRemovesEmptyJournal(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(walPath(dir, "sdead"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	m := newTestManager(t, durableConfig(dir))
	st, err := m.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if st.Removed != 1 || st.Recovered != 0 || st.Quarantined != 0 {
		t.Fatalf("recovery stats = %+v, want 1 removed", st)
	}
	if _, err := os.Stat(walPath(dir, "sdead")); !os.IsNotExist(err) {
		t.Errorf("empty wal not deleted: %v", err)
	}
}

// TestRandomSessionIDs: IDs are no longer sequential — two managers
// (or one manager across restarts) cannot mint colliding IDs by
// counting from 1. Shape-check plus a collision sanity check.
func TestRandomSessionIDs(t *testing.T) {
	m := newTestManager(t, Config{CacheSize: 8})
	seen := map[string]bool{}
	for i := 0; i < 8; i++ {
		_, resp := mustOpen(t, m, "onedim")
		if len(resp.ID) != 9 || resp.ID[0] != 's' {
			t.Fatalf("session ID %q, want s + 8 hex digits", resp.ID)
		}
		if resp.ID == "s1" || seen[resp.ID] {
			t.Fatalf("ID %q collides", resp.ID)
		}
		seen[resp.ID] = true
		m.Close(resp.ID)
	}
}

// TestRecoveredAndFreshSessionsCoexist: after recovery, new opens on
// the same manager mint IDs that cannot collide with recovered ones
// (O_EXCL on the wal is the backstop) and both kinds serve.
func TestRecoveredAndFreshSessionsCoexist(t *testing.T) {
	dir := t.TempDir()
	m1 := NewManager(durableConfig(dir))
	ss, resp := mustOpen(t, m1, "direct")
	cmdOK(t, ss, "loop 1")
	m1.Shutdown()

	m2 := newTestManager(t, durableConfig(dir))
	if _, err := m2.Recover(); err != nil {
		t.Fatal(err)
	}
	fresh, freshResp := mustOpen(t, m2, "onedim")
	if freshResp.ID == resp.ID {
		t.Fatalf("fresh session reused recovered ID %s", resp.ID)
	}
	cmdOK(t, fresh, "loop 1")
	cmdOK(t, m2.Get(resp.ID), "loops")
	infos := m2.List(bg)
	if len(infos) != 2 {
		t.Fatalf("listing shows %d sessions, want 2", len(infos))
	}
}
