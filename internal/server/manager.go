package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"parascope/internal/core"
	"parascope/internal/dep"
	"parascope/internal/execguard"
	"parascope/internal/workloads"
)

// ErrTooManySessions is returned by Open when the live-session cap is
// reached — admission control; the client should retry after closures
// or evictions free a slot.
var ErrTooManySessions = errors.New("session limit reached")

// ErrInternal wraps failures of the server's own machinery (e.g. a
// panic during open-time analysis) as opposed to invalid input.
var ErrInternal = errors.New("internal error")

// Config tunes the session manager.
type Config struct {
	// TTL evicts sessions idle longer than this; 0 disables eviction.
	TTL time.Duration
	// SweepEvery is the janitor period; defaulted from TTL.
	SweepEvery time.Duration
	// CacheSize bounds the analysis cache (entries); 0 disables it.
	CacheSize int
	// Workers caps the per-open analysis worker pool (0 = GOMAXPROCS).
	Workers int
	// MaxSessions caps concurrently live sessions (0 = unlimited);
	// Open returns ErrTooManySessions at the cap.
	MaxSessions int
	// QueueDepth bounds each session's pending-command queue
	// (0 = default); a full queue rejects with ErrQueueFull.
	QueueDepth int
	// DataDir enables durability: each session keeps a write-ahead
	// journal under it and is rebuilt by Recover after a restart.
	// Empty = in-memory only (the pre-durability behavior).
	DataDir string
	// Fsync says when journal appends reach stable storage
	// (zero value = FsyncInterval).
	Fsync FsyncPolicy
	// SnapshotEvery compacts a session's journal to one snapshot
	// record after this many mutations (0 = never compact).
	SnapshotEvery int
	// FlushEvery is the FsyncInterval batching period (0 = 100ms).
	FlushEvery time.Duration
	// Metrics is the registry fed by the manager, its sessions, and
	// the analysis cache (nil = a fresh private registry, so the
	// instrumentation is unconditional either way).
	Metrics *Metrics
	// PlanWorkers bounds concurrent speculative plan searches across
	// the whole daemon (0 = 2); excess requests get 429.
	PlanWorkers int
	// PlanTimeout is the default wall-clock budget per plan search
	// (0 = the planner's own default).
	PlanTimeout time.Duration
	// PlanCacheSize bounds the plan result cache (entries; 0 = 32).
	PlanCacheSize int
	// MaxRuns bounds concurrent program executions across the daemon;
	// past the cap runs are rejected with 429 + Retry-After. 0 means
	// 2×GOMAXPROCS; negative means unbounded.
	MaxRuns int
	// RunTimeout is the default per-run wall budget (0 = 60s;
	// negative = none). Requests may override per run via timeout_ms.
	RunTimeout time.Duration
	// RunOutputBytes caps captured stdout per run (0 = 8MiB;
	// negative = unbounded).
	RunOutputBytes int64
	// RunRSSBytes kills compiled runs past this resident-set size
	// (0 = 1GiB; negative = watchdog off).
	RunRSSBytes int64
	// RunCacheDir overrides the compile build cache (tests); empty
	// means the per-user default.
	RunCacheDir string
}

// Manager owns the live sessions and the analysis cache.
type Manager struct {
	cfg     Config
	cache   *Cache
	metrics *Metrics
	planCfg *planConfig
	gov     *execguard.Governor

	mu       sync.Mutex
	sessions map[string]*Session
	// moved maps migrated-away session IDs to the base URL of the node
	// that adopted them; requests for them answer 421 + Location.
	// Persisted as <id>.moved files when a datadir is configured.
	moved map[string]string
	// reserved counts opens in flight (admitted but not yet
	// registered), so the MaxSessions cap holds across the analysis.
	reserved int

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// newSessionID draws a short random session ID. Sequential IDs would
// collide with sessions recovered from a previous process lifetime
// (both lifetimes would mint "s1"); random IDs need no cross-restart
// coordination, and journal creation is O_EXCL as a backstop.
func newSessionID() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("crypto/rand unavailable: %v", err))
	}
	return "s" + hex.EncodeToString(b[:])
}

// NewManager creates a manager and starts its TTL janitor (if TTL is
// set). Call Shutdown to stop it and close every session.
func NewManager(cfg Config) *Manager {
	if cfg.Metrics == nil {
		cfg.Metrics = NewMetrics()
	}
	maxRuns := cfg.MaxRuns
	switch {
	case maxRuns == 0:
		maxRuns = 2 * runtime.GOMAXPROCS(0)
	case maxRuns < 0:
		maxRuns = 0 // unbounded
	}
	m := &Manager{
		cfg:     cfg,
		metrics: cfg.Metrics,
		gov: execguard.New(execguard.Config{
			MaxRuns: maxRuns,
			Limits: execguard.Limits{
				Timeout:     cfg.RunTimeout,
				OutputBytes: cfg.RunOutputBytes,
				RSSBytes:    cfg.RunRSSBytes,
			},
			Sink: cfg.Metrics,
		}),
		sessions: map[string]*Session{},
		moved:    map[string]string{},
		stop:     make(chan struct{}),
		planCfg:  newPlanConfig(cfg),
	}
	m.planCfg.gov = m.gov
	if cfg.CacheSize > 0 {
		m.cache = NewCache(cfg.CacheSize)
		m.cache.metrics = m.metrics
	}
	if cfg.TTL > 0 {
		every := cfg.SweepEvery
		if every <= 0 {
			every = cfg.TTL / 4
			if every < time.Second {
				every = time.Second
			}
			if every > time.Minute {
				every = time.Minute
			}
		}
		m.wg.Add(1)
		go m.janitor(every)
	}
	if cfg.DataDir != "" && cfg.Fsync == FsyncInterval {
		every := cfg.FlushEvery
		if every <= 0 {
			every = 100 * time.Millisecond
		}
		m.wg.Add(1)
		go m.flusher(every)
	}
	return m
}

func (m *Manager) flusher(every time.Duration) {
	defer m.wg.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			m.FlushJournals()
		case <-m.stop:
			return
		}
	}
}

// FlushJournals fsyncs every session's journal — the FsyncInterval
// batching point, driven by the manager's flush ticker. A session
// whose fsync fails degrades to read-only, exactly like a failed
// append: acknowledged-but-unflushed state must not keep growing on a
// disk that is not accepting writes.
func (m *Manager) FlushJournals() {
	m.mu.Lock()
	all := make([]*Session, 0, len(m.sessions))
	for _, ss := range m.sessions {
		all = append(all, ss)
	}
	m.mu.Unlock()
	for _, ss := range all {
		ss.syncJournal()
	}
}

func (m *Manager) janitor(every time.Duration) {
	defer m.wg.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			m.Sweep()
		case <-m.stop:
			return
		}
	}
}

// Open resolves the request (workload name or raw source), consults
// the content-hash cache, and registers a new session. On a hit the
// session opens artifact-backed — no parse, no analysis. On a miss it
// analyzes cold, stores the artifacts, and opens live.
//
// Admission control: when Config.MaxSessions is set, a slot is
// reserved before the (expensive) analysis and released if the open
// fails; at the cap Open returns ErrTooManySessions without doing any
// work. A panic during open-time analysis is recovered and returned
// as an error wrapping ErrInternal — it cannot take down the daemon.
//
// The cold-open analysis runs under ctx: when it expires (request
// deadline, client disconnect) Open returns ctx.Err() immediately
// while the analysis finishes on its own goroutine — the reserved
// MaxSessions slot is released (and any built artifacts cached) only
// when it does, so a hung parse cannot wedge the handler, and cannot
// leak admission capacity beyond its own lifetime.
func (m *Manager) Open(ctx context.Context, req OpenRequest) (*Session, OpenResponse, error) {
	var resp OpenResponse
	if ctx == nil {
		ctx = context.Background()
	}
	path, source := req.Path, req.Source
	if req.Workload != "" {
		w := workloads.ByName(req.Workload)
		if w == nil {
			return nil, resp, fmt.Errorf("unknown workload %q", req.Workload)
		}
		path, source = w.Name+".f", w.Source
	}
	if source == "" {
		return nil, resp, fmt.Errorf("open needs a workload name or source text")
	}
	if path == "" {
		path = "input.f"
	}
	if req.ID != "" {
		// Gateway-minted ID: honor it so the cluster's consistent-hash
		// routing needs no per-session state, but never silently reuse
		// an ID that is (or was) taken here.
		if err := validateSessionID(req.ID); err != nil {
			return nil, resp, err
		}
		m.mu.Lock()
		_, movedAway := m.moved[req.ID]
		taken := m.sessions[req.ID] != nil || movedAway
		m.mu.Unlock()
		if taken {
			return nil, resp, fmt.Errorf("%w: %s", ErrSessionExists, req.ID)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, resp, err
	}
	m.mu.Lock()
	if m.cfg.MaxSessions > 0 && len(m.sessions)+m.reserved >= m.cfg.MaxSessions {
		m.mu.Unlock()
		return nil, resp, ErrTooManySessions
	}
	m.reserved++
	m.mu.Unlock()
	release := func() {
		m.mu.Lock()
		m.reserved--
		m.mu.Unlock()
	}

	key := core.AnalysisKey(path, source, dep.DefaultOptions(), false)
	art := m.cache.Get(key)
	cached := art != nil
	var live *core.Session
	var units []string
	if art != nil {
		units = art.UnitNames()
	} else {
		type openResult struct {
			cs  *core.Session
			art *Artifacts
			err error
		}
		ch := make(chan openResult, 1)
		go func() {
			cs, newArt, err := m.analyzeOpen(key, path, source)
			ch <- openResult{cs, newArt, err}
		}()
		var res openResult
		select {
		case res = <-ch:
		case <-ctx.Done():
			// Abandon the open but not the bookkeeping: the analysis
			// goroutine still owns a reserved slot until it returns.
			go func() {
				res := <-ch
				if res.err == nil && res.art != nil {
					m.cache.Put(res.art)
				}
				release()
			}()
			return nil, resp, ctx.Err()
		}
		if res.err != nil {
			release()
			return nil, resp, res.err
		}
		live = res.cs
		for _, u := range live.File.Units {
			units = append(units, u.Name)
		}
		if res.art != nil {
			art = res.art
			m.cache.Put(art)
		}
	}
	// Mint the ID and, when durability is on, the journal. The open
	// record is journaled before the session exists: a crash from here
	// on rebuilds it. Journal trouble never fails the open — the
	// session comes up read-only instead (reads work, mutations 503).
	var id string
	var jr *journal
	var jrErr error
	if m.cfg.DataDir != "" {
		if req.ID != "" {
			id = req.ID
			jr, jrErr = createJournal(m.cfg.DataDir, id, m.cfg.Fsync, m.metrics)
			if errors.Is(jrErr, os.ErrExist) {
				release()
				return nil, resp, fmt.Errorf("%w: %s (journal already on disk)", ErrSessionExists, id)
			}
		} else {
			for tries := 0; ; tries++ {
				id = newSessionID()
				jr, jrErr = createJournal(m.cfg.DataDir, id, m.cfg.Fsync, m.metrics)
				if jrErr == nil || !errors.Is(jrErr, os.ErrExist) || tries >= 8 {
					break
				}
			}
		}
		if jr != nil {
			if err := jr.append(&record{Op: recOpen, Path: path, Source: source}); err != nil {
				jr.remove()
				jr, jrErr = nil, err
			} else if err := jr.sync(); err != nil {
				jr.remove()
				jr, jrErr = nil, err
			}
		}
	}
	m.mu.Lock()
	if req.ID != "" {
		// Explicit IDs must fail on collision, never remint — the
		// caller (the gateway) routes by this exact ID.
		id = req.ID
		if m.sessions[id] != nil || m.moved[id] != "" {
			m.mu.Unlock()
			if jr != nil {
				jr.remove()
			}
			release()
			return nil, resp, fmt.Errorf("%w: %s", ErrSessionExists, id)
		}
	} else {
		if jr != nil && (m.sessions[id] != nil || m.moved[id] != "") {
			// A live session without a journal (degraded at create) can
			// share the ID namespace without a wal backing it; give up
			// the colliding journal rather than let the wal name drift
			// from the session ID.
			jr.remove()
			jr, jrErr = nil, fmt.Errorf("session ID collision on %s", id)
		}
		if jr == nil {
			for id = newSessionID(); m.sessions[id] != nil || m.moved[id] != ""; id = newSessionID() {
			}
		}
	}
	ss := newSession(id, path, source, art, live, m.cfg.Workers, m.cfg.QueueDepth, m.metrics, jr, m.cfg.SnapshotEvery)
	ss.planCfg = m.planCfg
	ss.gov = m.gov
	ss.runCache = m.cfg.RunCacheDir
	m.sessions[id] = ss
	m.reserved--
	m.mu.Unlock()
	if m.cfg.DataDir != "" && jrErr != nil {
		ss.degradeReadOnly(fmt.Sprintf("journal create: %v", jrErr))
	}
	m.metrics.SessionsOpened.Inc()
	m.metrics.SessionsLive.Inc()
	resp = OpenResponse{ID: id, Path: path, Units: units, Cached: cached}
	return ss, resp, nil
}

// analyzeOpen runs the cold-open parse + whole-program analysis (and
// artifact build when the cache is enabled) behind a recover: a panic
// anywhere in the front end or analyses becomes an ErrInternal-
// wrapped error on this open only.
func (m *Manager) analyzeOpen(key, path, source string) (cs *core.Session, art *Artifacts, err error) {
	defer func() {
		if r := recover(); r != nil {
			cs, art = nil, nil
			err = fmt.Errorf("%w: analysis of %s panicked: %v", ErrInternal, path, r)
		}
	}()
	cs, err = core.OpenObserved(path, source, m.cfg.Workers, m.metrics)
	if err != nil {
		return nil, nil, err
	}
	if m.cache != nil {
		art = BuildArtifacts(key, cs)
	}
	return cs, art, nil
}

// Get returns a session by ID, or nil.
func (m *Manager) Get(id string) *Session {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sessions[id]
}

// listInfoConcurrency bounds the parallel Info fan-out in List.
const listInfoConcurrency = 16

// List snapshots every session, ordered by ID. Sessions whose actor
// cannot answer within the per-session info budget (hung or
// saturated) degrade to their static fields rather than stalling the
// listing; the Info calls fan out (bounded) so N wedged sessions cost
// one budget per batch of listInfoConcurrency, not N budgets serially.
func (m *Manager) List(ctx context.Context) []SessionInfo {
	m.mu.Lock()
	all := make([]*Session, 0, len(m.sessions))
	for _, ss := range m.sessions {
		all = append(all, ss)
	}
	m.mu.Unlock()
	out := make([]SessionInfo, len(all))
	sem := make(chan struct{}, listInfoConcurrency)
	var wg sync.WaitGroup
	for i, ss := range all {
		wg.Add(1)
		go func(i int, ss *Session) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			out[i] = ss.Info(ctx)
		}(i, ss)
	}
	wg.Wait()
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].ID) != len(out[j].ID) {
			return len(out[i].ID) < len(out[j].ID)
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Close removes and stops a session. Deleting a migrated-away ID
// clears its tombstone — the operator's way to stop the 421 forwarding.
func (m *Manager) Close(id string) bool {
	m.mu.Lock()
	ss := m.sessions[id]
	delete(m.sessions, id)
	_, moved := m.moved[id]
	m.mu.Unlock()
	if ss == nil {
		if moved {
			m.clearTombstone(id)
			return true
		}
		return false
	}
	ss.close()
	ss.removeJournal()
	m.metrics.SessionsLive.Dec()
	m.metrics.SessionsClosed.Inc()
	return true
}

// Sweep evicts every session idle past the TTL, returning how many.
func (m *Manager) Sweep() int {
	if m.cfg.TTL <= 0 {
		return 0
	}
	var expired []*Session
	m.mu.Lock()
	for id, ss := range m.sessions {
		if ss.Idle() > m.cfg.TTL {
			delete(m.sessions, id)
			expired = append(expired, ss)
		}
	}
	m.mu.Unlock()
	for _, ss := range expired {
		ss.close()
		ss.removeJournal()
		m.metrics.SessionsLive.Dec()
		m.metrics.SessionsEvicted.Inc()
	}
	return len(expired)
}

// CacheStats reports the analysis cache counters.
func (m *Manager) CacheStats() CacheStatsResponse { return m.cache.Stats() }

// Metrics returns the manager's metric registry.
func (m *Manager) Metrics() *Metrics { return m.metrics }

// shutdownDrain bounds how long Shutdown waits for durable sessions'
// actors to drain their queues and sync their journals. A wedged actor
// (hung analysis) forfeits its tail rather than hanging the process.
const shutdownDrain = 10 * time.Second

// Shutdown stops the janitor and closes every session. Journals are
// kept (a restart with the same datadir recovers them), and for every
// durable session Shutdown waits — bounded — for the actor to finish
// its queue and fsync-close its journal, so a clean shutdown loses
// nothing regardless of fsync policy. Idempotent.
func (m *Manager) Shutdown() {
	m.stopOnce.Do(func() { close(m.stop) })
	m.wg.Wait()
	m.mu.Lock()
	all := make([]*Session, 0, len(m.sessions))
	for id, ss := range m.sessions {
		all = append(all, ss)
		delete(m.sessions, id)
	}
	m.mu.Unlock()
	for _, ss := range all {
		ss.close()
		m.metrics.SessionsLive.Dec()
		m.metrics.SessionsClosed.Inc()
	}
	deadline := time.NewTimer(shutdownDrain)
	defer deadline.Stop()
	for _, ss := range all {
		if ss.jr == nil {
			continue
		}
		select {
		case <-ss.done:
		case <-deadline.C:
			return
		}
	}
}
