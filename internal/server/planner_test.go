package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"parascope/internal/faultpoint"
	"parascope/internal/planner"
)

func mustPlan(t *testing.T, ss *Session, req PlanRequest) PlanResponse {
	t.Helper()
	resp, err := ss.Plan(bg, req)
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	return resp
}

// TestPlanVerbAndApplyPlanRoundTrip drives the whole feature through
// the line protocol: plan a workload session, require at least two
// ranked candidates, accept the top plan, and require the session's
// source to land exactly on the plan's final hash.
func TestPlanVerbAndApplyPlanRoundTrip(t *testing.T) {
	m := newTestManager(t, Config{CacheSize: 8})
	ss, _ := mustOpen(t, m, "spec77")
	before := mustCmd(t, ss, "save")

	out := mustCmd(t, ss, "plan")
	if !strings.Contains(out, "accept a plan with: apply-plan") {
		t.Fatalf("plan verb output:\n%s", out)
	}
	resp, ok := ss.PlanStatus()
	if !ok || resp.Status != "done" {
		t.Fatalf("plan status after sync plan: %+v (ok=%v)", resp, ok)
	}
	if len(resp.Plans) < 2 {
		t.Fatalf("want >= 2 ranked plans, got %d", len(resp.Plans))
	}
	for _, p := range resp.Plans {
		if p.EstSpeedup <= 1 {
			t.Fatalf("plan %s estimated speedup %f, want > 1", p.ID, p.EstSpeedup)
		}
	}
	// Planning must not have touched the session.
	if after := mustCmd(t, ss, "save"); after != before {
		t.Fatal("plan (a read) mutated the parent session")
	}

	out = mustCmd(t, ss, "apply-plan 1")
	if !strings.Contains(out, "applied plan "+resp.Plans[0].ID) {
		t.Fatalf("apply-plan output:\n%s", out)
	}
	got := mustCmd(t, ss, "save")
	if got == before {
		t.Fatal("apply-plan changed nothing")
	}
	steps := resp.Plans[0].Steps
	if h := planner.SrcHash(got); h != steps[len(steps)-1].Hash {
		t.Fatalf("applied source hash %s != plan final step hash %s", h, steps[len(steps)-1].Hash)
	}
	// The steps were journaled as ordinary commands: history shows them.
	hist := mustCmd(t, ss, "history")
	if !strings.Contains(hist, "parallelize") {
		t.Fatalf("history after apply-plan:\n%s", hist)
	}
}

// TestPlanHTTPEndpointsAndCache exercises the typed endpoints over
// real HTTP: POST plan (200), identical re-plan is a cache hit, GET
// poll works, apply-plan applies.
func TestPlanHTTPEndpointsAndCache(t *testing.T) {
	m := newTestManager(t, Config{CacheSize: 8})
	ts := httptest.NewServer(New(m))
	defer ts.Close()

	post := func(path string, body any, want int) []byte {
		t.Helper()
		b, _ := json.Marshal(body)
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		if resp.StatusCode != want {
			t.Fatalf("POST %s = %d, want %d (%s)", path, resp.StatusCode, want, buf.String())
		}
		return buf.Bytes()
	}

	var open OpenResponse
	if err := json.Unmarshal(post("/v1/sessions", OpenRequest{Workload: "direct"}, http.StatusCreated), &open); err != nil {
		t.Fatal(err)
	}

	var p1 PlanResponse
	if err := json.Unmarshal(post("/v1/sessions/"+open.ID+"/plan", PlanRequest{}, http.StatusOK), &p1); err != nil {
		t.Fatal(err)
	}
	if p1.Status != "done" || len(p1.Plans) == 0 || p1.Cached {
		t.Fatalf("first plan: %+v", p1)
	}
	// Wire form must not leak world sources (json:"-").
	if raw := post("/v1/sessions/"+open.ID+"/plan", PlanRequest{}, http.StatusOK); bytes.Contains(raw, []byte(`"source"`)) {
		t.Fatal("plan response serializes world sources")
	}

	var p2 PlanResponse
	if err := json.Unmarshal(post("/v1/sessions/"+open.ID+"/plan", PlanRequest{}, http.StatusOK), &p2); err != nil {
		t.Fatal(err)
	}
	if !p2.Cached {
		t.Fatal("identical re-plan on identical source should be a cache hit")
	}

	get, err := http.Get(ts.URL + "/v1/sessions/" + open.ID + "/plan")
	if err != nil {
		t.Fatal(err)
	}
	get.Body.Close()
	if get.StatusCode != http.StatusOK {
		t.Fatalf("GET plan = %d", get.StatusCode)
	}

	var ap ApplyPlanResponse
	if err := json.Unmarshal(post("/v1/sessions/"+open.ID+"/apply-plan", ApplyPlanRequest{Index: 1}, http.StatusOK), &ap); err != nil {
		t.Fatal(err)
	}
	if ap.Plan != p1.Plans[0].ID || ap.Applied != len(p1.Plans[0].Steps) {
		t.Fatalf("apply-plan response: %+v", ap)
	}
	if want := p1.Plans[0].Steps[len(p1.Plans[0].Steps)-1].Hash; ap.Hash != want {
		t.Fatalf("apply hash %s, want final step hash %s", ap.Hash, want)
	}
}

// TestPlanAsync202AndPoll: an async plan returns 202 immediately and
// the result becomes visible via GET.
func TestPlanAsync202AndPoll(t *testing.T) {
	m := newTestManager(t, Config{CacheSize: 8})
	ts := httptest.NewServer(New(m))
	defer ts.Close()
	ss, open := mustOpen(t, m, "direct")

	b, _ := json.Marshal(PlanRequest{Async: true})
	resp, err := http.Post(ts.URL+"/v1/sessions/"+open.ID+"/plan", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	var running PlanResponse
	json.NewDecoder(resp.Body).Decode(&running)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || running.Status != "running" {
		t.Fatalf("async plan: %d %+v", resp.StatusCode, running)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		got, ok := ss.PlanStatus()
		if ok && got.Status == "done" {
			if len(got.Plans) == 0 {
				t.Fatalf("async plan finished with no plans: %+v", got)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("async plan never finished: %+v", got)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestApplyPlanStaleConflict: mutating the session between plan and
// apply must 409, and the failed apply must not modify the source.
func TestApplyPlanStaleConflict(t *testing.T) {
	m := newTestManager(t, Config{CacheSize: 8})
	ss, _ := mustOpen(t, m, "direct")
	mustPlan(t, ss, PlanRequest{})

	mustCmd(t, ss, "apply parallelize 1") // the session moves on
	before := mustCmd(t, ss, "save")
	_, err := ss.ApplyPlan(bg, ApplyPlanRequest{Index: 1})
	if !errors.Is(err, ErrPlanConflict) {
		t.Fatalf("apply of stale plan: %v, want ErrPlanConflict", err)
	}
	if after := mustCmd(t, ss, "save"); after != before {
		t.Fatal("rejected plan mutated the session")
	}

	// And over HTTP the sentinel maps to 409.
	ts := httptest.NewServer(New(m))
	defer ts.Close()
	b, _ := json.Marshal(ApplyPlanRequest{Index: 1})
	resp, err := http.Post(ts.URL+"/v1/sessions/"+ss.ID+"/apply-plan", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("stale apply-plan over HTTP = %d, want 409", resp.StatusCode)
	}
}

// TestPlanAdmissionControl: one search per session (409) and
// PlanWorkers searches per daemon (429), both while a slow search
// holds its slot.
func TestPlanAdmissionControl(t *testing.T) {
	defer faultpoint.Reset()
	m := newTestManager(t, Config{CacheSize: 8, PlanWorkers: 1})
	s1, _ := mustOpen(t, m, "direct")
	s2, _ := mustOpen(t, m, "onedim")

	disarm := faultpoint.Arm(faultpoint.PlanFork, faultpoint.Fault{Delay: 150 * time.Millisecond})
	defer disarm()

	if resp, err := s1.Plan(bg, PlanRequest{Async: true}); err != nil || resp.Status != "running" {
		t.Fatalf("async plan: %+v, %v", resp, err)
	}
	if _, err := s1.Plan(bg, PlanRequest{}); !errors.Is(err, ErrPlanConflict) {
		t.Fatalf("second plan on the same session: %v, want ErrPlanConflict", err)
	}
	if _, err := s2.Plan(bg, PlanRequest{}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("plan past daemon capacity: %v, want ErrQueueFull", err)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		if resp, ok := s1.PlanStatus(); ok && resp.Status != "running" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("slow plan never finished")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestPlanChaosParentUnharmed arms a panic that kills every
// speculative world: the search must complete empty, and the parent
// session must keep serving — not quarantined, source untouched.
func TestPlanChaosParentUnharmed(t *testing.T) {
	defer faultpoint.Reset()
	m := newTestManager(t, Config{CacheSize: 8})
	ss, _ := mustOpen(t, m, "direct")
	before := mustCmd(t, ss, "save")

	disarm := faultpoint.Arm(faultpoint.PlanScore, faultpoint.Fault{Panic: true})
	resp := mustPlan(t, ss, PlanRequest{})
	disarm()

	if resp.Status != "done" || len(resp.Plans) != 0 {
		t.Fatalf("all-worlds-panic search: %+v", resp)
	}
	if resp.WorldsDiscarded == 0 {
		t.Fatal("no worlds discarded")
	}
	if ss.Info(bg).State == "failed" {
		t.Fatal("world panics quarantined the parent session")
	}
	if after := mustCmd(t, ss, "save"); after != before {
		t.Fatal("world panics corrupted the parent source")
	}
	if got := mustCmd(t, ss, "loops"); got == "" {
		t.Fatal("parent stopped serving reads")
	}
	// Next search (faults disarmed) recovers fully.
	if resp := mustPlan(t, ss, PlanRequest{}); len(resp.Plans) == 0 {
		t.Fatalf("post-chaos search found nothing: %+v", resp)
	}
}

// TestPlanFaultOnApply: a fault armed at the apply boundary rejects
// the acceptance before any step runs.
func TestPlanFaultOnApply(t *testing.T) {
	defer faultpoint.Reset()
	m := newTestManager(t, Config{CacheSize: 8})
	ss, _ := mustOpen(t, m, "direct")
	mustPlan(t, ss, PlanRequest{})
	before := mustCmd(t, ss, "save")

	injected := errors.New("injected apply fault")
	disarm := faultpoint.Arm(faultpoint.PlanApply, faultpoint.Fault{Err: injected, Times: 1})
	defer disarm()
	if _, err := ss.ApplyPlan(bg, ApplyPlanRequest{Index: 1}); !errors.Is(err, injected) {
		t.Fatalf("apply under fault: %v", err)
	}
	if after := mustCmd(t, ss, "save"); after != before {
		t.Fatal("faulted apply mutated the session")
	}
}

// TestPlanSearchWhileParentServes is the concurrency satellite: N
// worlds search while the parent session keeps answering reads and
// even a mutation, all under -race. The plan (made stale by the
// mutation) is then rejected with the parent's source byte-identical
// across the rejection.
func TestPlanSearchWhileParentServes(t *testing.T) {
	m := newTestManager(t, Config{CacheSize: 8})
	ss, _ := mustOpen(t, m, "spec77")

	if resp, err := ss.Plan(bg, PlanRequest{Async: true}); err != nil || resp.Status != "running" {
		t.Fatalf("async plan: %+v, %v", resp, err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				mustCmd(t, ss, "loops")
				mustCmd(t, ss, "perf")
				ss.Info(bg)
			}
		}()
	}
	// A mutation lands mid-search: worlds fork from an immutable
	// snapshot, so this is legal — it just makes the plans stale.
	mustCmd(t, ss, "loop 1")
	deadline := time.Now().Add(60 * time.Second)
	for {
		if resp, ok := ss.PlanStatus(); ok && resp.Status != "running" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("search never finished")
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	resp, ok := ss.PlanStatus()
	if !ok || resp.Status != "done" {
		t.Fatalf("plan status: %+v", resp)
	}
	mustCmd(t, ss, "apply parallelize 1") // move the source past the plan base
	before := mustCmd(t, ss, "save")
	if _, err := ss.ApplyPlan(bg, ApplyPlanRequest{Index: 1}); !errors.Is(err, ErrPlanConflict) {
		t.Fatalf("stale apply: %v, want ErrPlanConflict", err)
	}
	if after := mustCmd(t, ss, "save"); after != before {
		t.Fatal("rejected plan changed the parent source")
	}
}

// TestApplyPlanJournalReplay: an accepted plan must survive a restart
// byte-identically — its steps were journaled like hand-typed
// commands, so recovery replays them with zero planner state.
func TestApplyPlanJournalReplay(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{CacheSize: 8, DataDir: dir, Fsync: FsyncAlways}
	m := NewManager(cfg)
	ss, open := mustOpen(t, m, "direct")
	mustCmd(t, ss, "plan")
	out := mustCmd(t, ss, "apply-plan 1")
	if !strings.Contains(out, "applied plan") {
		t.Fatalf("apply-plan: %s", out)
	}
	want := mustCmd(t, ss, "save")
	m.Shutdown()

	m2 := NewManager(cfg)
	defer m2.Shutdown()
	if _, err := m2.Recover(); err != nil {
		t.Fatal(err)
	}
	ss2 := m2.Get(open.ID)
	if ss2 == nil {
		t.Fatalf("session %s not recovered", open.ID)
	}
	if got := mustCmd(t, ss2, "save"); got != want {
		t.Fatalf("recovered source differs from pre-crash source:\n%s", got)
	}
}

// TestPlannerMetrics asserts the planner metric families appear in a
// scrape with plausible values and without any session-scoped labels.
func TestPlannerMetrics(t *testing.T) {
	m := newTestManager(t, Config{CacheSize: 8})
	ss, _ := mustOpen(t, m, "direct")
	mustPlan(t, ss, PlanRequest{})
	if _, err := ss.ApplyPlan(bg, ApplyPlanRequest{Index: 1}); err != nil {
		t.Fatal(err)
	}

	body := scrape(t, m.Metrics())
	vals := promValues(t, body)
	if vals["pedd_planner_worlds_forked_total"] <= 0 {
		t.Error("pedd_planner_worlds_forked_total not incremented")
	}
	if vals["pedd_planner_worlds_scored_total"] <= 0 {
		t.Error("pedd_planner_worlds_scored_total not incremented")
	}
	if vals["pedd_planner_worlds_accepted_total"] != 1 {
		t.Errorf("pedd_planner_worlds_accepted_total = %f, want 1",
			vals["pedd_planner_worlds_accepted_total"])
	}
	if vals["pedd_planner_worlds_live"] != 0 {
		t.Errorf("pedd_planner_worlds_live = %f after search finished",
			vals["pedd_planner_worlds_live"])
	}
	if vals["pedd_planner_search_seconds_count"] != 1 {
		t.Errorf("pedd_planner_search_seconds_count = %f, want 1",
			vals["pedd_planner_search_seconds_count"])
	}
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "pedd_planner") && strings.Contains(line, ss.ID) {
			t.Errorf("planner metric labeled by session ID: %s", line)
		}
		if strings.HasPrefix(line, "pedd_planner_worlds_forked_total") && strings.Contains(line, "{") {
			t.Errorf("planner counter has labels: %s", line)
		}
	}
}
