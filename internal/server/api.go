// Package server hosts many concurrent ParaScope Editor sessions
// behind an HTTP/JSON API — the pedd daemon. It wraps core.Session in
// a session manager (create/attach/expire with TTL eviction), keeps
// the untouched core data-race-free by confining every session to a
// single actor goroutine, and caches analysis artifacts by content
// hash so reopening an unchanged program is a map hit instead of a
// reparse and reanalysis.
package server

import (
	"time"

	"parascope/internal/planner"
)

// OpenRequest creates a session: either over a built-in workload by
// name, or over raw source text with its display path.
type OpenRequest struct {
	Workload string `json:"workload,omitempty"`
	Path     string `json:"path,omitempty"`
	Source   string `json:"source,omitempty"`
	// ID, when set, is the session ID to open under instead of a
	// server-minted one — the cluster gateway mints IDs itself so the
	// consistent-hash ring can route every later request without any
	// per-session routing state. An ID already in use is a 409.
	ID string `json:"id,omitempty"`
}

// OpenResponse describes the created session.
type OpenResponse struct {
	ID    string   `json:"id"`
	Path  string   `json:"path"`
	Units []string `json:"units"`
	// Cached reports a content-hash cache hit: the session opened
	// from stored artifacts without reparsing or reanalyzing.
	Cached bool `json:"cached"`
}

// SessionInfo is one row of the session listing.
type SessionInfo struct {
	ID   string `json:"id"`
	Path string `json:"path"`
	// State is the lifecycle state: active, failed (quarantined after
	// a panic), or closed.
	State string `json:"state"`
	// Live reports whether a full core.Session has been materialized;
	// cache-hit sessions stay artifact-backed until a mutating or
	// unsupported command arrives.
	Live bool `json:"live"`
	// Mutated reports whether the session has changed the program or
	// the analysis inputs since opening.
	Mutated bool `json:"mutated"`
	// ReadOnly reports journal-failure degradation: reads still serve
	// from memory, mutating requests are rejected with 503.
	ReadOnly    bool    `json:"read_only,omitempty"`
	IdleSeconds float64 `json:"idle_seconds"`
}

// FailureInfo diagnoses a quarantined session: what panicked, the
// captured stacks, and when.
type FailureInfo struct {
	Reason string    `json:"reason"`
	Stack  string    `json:"stack,omitempty"`
	Time   time.Time `json:"time"`
}

// SessionStatusResponse is the body of GET /v1/sessions/{id}: the
// listing row plus, for a quarantined session, its failure, and for a
// read-only (journal-degraded) session, why it degraded.
type SessionStatusResponse struct {
	SessionInfo
	Failure        *FailureInfo `json:"failure,omitempty"`
	ReadOnlyReason string       `json:"read_only_reason,omitempty"`
}

// CmdRequest runs one REPL command line in the session.
type CmdRequest struct {
	Line string `json:"line"`
}

// CmdResponse carries the command's output; Err is the command-level
// error text (the HTTP status stays 200 — the request itself worked).
type CmdResponse struct {
	Output string `json:"output"`
	Err    string `json:"error,omitempty"`
}

// SelectRequest switches the current unit and/or selects a loop
// (1-based, source order). Zero values leave the dimension unchanged.
type SelectRequest struct {
	Unit string `json:"unit,omitempty"`
	Loop int    `json:"loop,omitempty"`
}

// SelectResponse reports the selection and the per-class dependence
// summary of the selected loop.
type SelectResponse struct {
	Unit    string `json:"unit"`
	Loop    int    `json:"loop"`
	Summary string `json:"summary"`
}

// DepInfo is one dependence of the selected loop.
type DepInfo struct {
	ID      int    `json:"id"`
	Class   string `json:"class"`
	Sym     string `json:"sym"`
	Dir     string `json:"dir"`
	Level   int    `json:"level"`
	SrcStmt int    `json:"src_stmt"`
	DstStmt int    `json:"dst_stmt"`
	SrcLine int    `json:"src_line"`
	DstLine int    `json:"dst_line"`
	Mark    string `json:"mark"`
	Reason  string `json:"reason,omitempty"`
	// Private reports that the variable is classified other than
	// shared for the carrying loop (privatizable, reduction, or
	// induction) — the hideprivate filter drops these.
	Private bool `json:"private"`
}

// DepQuery filters the dependence listing (mirrors `deps` filters).
type DepQuery struct {
	Carried      bool
	HideRejected bool
	HidePrivate  bool
	Sym          string
	Classes      []string
}

// DepsResponse lists the selected loop's dependences after filtering.
type DepsResponse struct {
	Unit string    `json:"unit"`
	Loop int       `json:"loop"`
	Deps []DepInfo `json:"deps"`
}

// ClassifyRequest overrides a variable's classification.
type ClassifyRequest struct {
	Var   string `json:"var"`
	Class string `json:"class"`
}

// TransformRequest checks or applies a power-steering transformation;
// Args follow the REPL syntax (loop numbers, factors, variable
// names). CheckOnly diagnoses without applying.
type TransformRequest struct {
	Name      string   `json:"name"`
	Args      []string `json:"args,omitempty"`
	CheckOnly bool     `json:"check_only,omitempty"`
}

// RunRequest executes the session's current program through the
// unified execution API. Backend selects the engine: "interp" (the
// default, the simulating interpreter) or "compile" (lower to Go,
// build into the pedc cache, run the native binary).
type RunRequest struct {
	Backend string `json:"backend,omitempty"`
	// Workers bounds DOALL fan-out; values below one mean one.
	Workers int `json:"workers,omitempty"`
	// TimeoutMs kills the run after this many milliseconds; zero
	// means the daemon's governed default (60s unless -runtimeout).
	TimeoutMs int `json:"timeout_ms,omitempty"`
	// Fallback degrades a compile decline or build failure to the
	// interpreter instead of failing; the reason comes back in
	// RunResponse.Fallback.
	Fallback bool `json:"fallback,omitempty"`
}

// RunResponse carries one execution's captured output and timing.
type RunResponse struct {
	Output string `json:"output"`
	// WallMicros is the run's wall-clock time in microseconds.
	WallMicros int64 `json:"wall_us"`
	// SimCycles is the interpreter's simulated parallel cycle count;
	// zero when the compile backend ran.
	SimCycles int64 `json:"sim_cycles,omitempty"`
	// Backend echoes which engine actually executed the program.
	Backend string `json:"backend"`
	// Fallback carries the compile decline/build failure that rerouted
	// this run to the interpreter; empty when the requested backend ran.
	Fallback string `json:"fallback,omitempty"`
}

// EditRequest replaces (or with Delete, removes) a statement by ID.
type EditRequest struct {
	Stmt   int    `json:"stmt"`
	Text   string `json:"text,omitempty"`
	Delete bool   `json:"delete,omitempty"`
}

// CacheStatsResponse reports the analysis cache counters.
type CacheStatsResponse struct {
	Entries int   `json:"entries"`
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
}

// PlanRequest starts a speculative plan search over the session's
// current source. Zero values take the daemon defaults; Async returns
// 202 immediately and the result is polled via GET .../plan.
type PlanRequest struct {
	BeamWidth int  `json:"beam_width,omitempty"`
	MaxDepth  int  `json:"max_depth,omitempty"`
	MaxWorlds int  `json:"max_worlds,omitempty"`
	TimeoutMs int  `json:"timeout_ms,omitempty"`
	TopPlans  int  `json:"top_plans,omitempty"`
	NoInterp  bool `json:"no_interp,omitempty"`
	// Compiled adds real wall-clock speedups from the pedc compile
	// backend to interp-validated finalists.
	Compiled bool `json:"compiled,omitempty"`
	Async    bool `json:"async,omitempty"`
}

// PlanResponse is the state of a session's latest plan search. Status
// is "running", "done", or "failed"; Cached marks a result served
// from the plan cache (same source hash, unit, and budget).
type PlanResponse struct {
	SessionID       string         `json:"session_id"`
	Unit            string         `json:"unit,omitempty"`
	BaseHash        string         `json:"base_hash,omitempty"`
	Status          string         `json:"status"`
	Error           string         `json:"error,omitempty"`
	Cached          bool           `json:"cached,omitempty"`
	WorldsForked    int            `json:"worlds_forked"`
	WorldsScored    int            `json:"worlds_scored"`
	WorldsDiscarded int            `json:"worlds_discarded"`
	ElapsedMs       int64          `json:"elapsed_ms"`
	Plans           []planner.Plan `json:"plans"`
}

// ApplyPlanRequest accepts a plan: either a full plan object (as
// returned by PlanResponse) or a 1-based Index into the session's
// last search result. The plan's steps are replayed through the
// normal journaled mutation path.
type ApplyPlanRequest struct {
	Plan  *planner.Plan `json:"plan,omitempty"`
	Index int           `json:"index,omitempty"`
}

// ApplyPlanResponse reports the applied plan and the resulting source
// hash (which equals the plan's final step hash when the replay
// converged).
type ApplyPlanResponse struct {
	Plan    string `json:"plan"`
	Applied int    `json:"applied"`
	Hash    string `json:"hash"`
}

// MigrateRequest moves a session to another pedd node. Target is the
// destination's base URL (e.g. "http://10.0.0.2:7473"); the source
// freezes the session, drains its queue, ships the journal stream to
// the target's import endpoint, and leaves a tombstone behind that
// answers 421 with the new location.
type MigrateRequest struct {
	Target string `json:"target"`
}

// MigrateResponse reports a completed outbound migration.
type MigrateResponse struct {
	ID string `json:"id"`
	// Location is the session's new URL on the target node.
	Location string `json:"location"`
	// Bytes is the size of the journal stream that was shipped.
	Bytes int64 `json:"bytes"`
}

// ImportResponse reports a session adopted from a journal stream.
type ImportResponse struct {
	ID      string `json:"id"`
	Path    string `json:"path"`
	Records int    `json:"records"`
}

// ErrorResponse is the JSON body of every non-2xx response. The
// request ID echoes the X-Request-ID header (client-sent or server-
// generated) so a failure can be correlated with the daemon's access
// log and traces.
type ErrorResponse struct {
	Error     string `json:"error"`
	RequestID string `json:"request_id,omitempty"`
}
