package server

import (
	"context"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"
)

// bg is the no-deadline context used by tests that exercise the
// session API directly.
var bg = context.Background()

func newTestManager(t *testing.T, cfg Config) *Manager {
	t.Helper()
	m := NewManager(cfg)
	t.Cleanup(m.Shutdown)
	return m
}

func mustOpen(t *testing.T, m *Manager, workload string) (*Session, OpenResponse) {
	t.Helper()
	ss, resp, err := m.Open(bg, OpenRequest{Workload: workload})
	if err != nil {
		t.Fatalf("open %s: %v", workload, err)
	}
	return ss, resp
}

func mustCmd(t *testing.T, ss *Session, line string) string {
	t.Helper()
	resp, err := ss.Cmd(bg, line)
	if err != nil {
		t.Fatalf("cmd %q: %v", line, err)
	}
	if resp.Err != "" {
		t.Fatalf("cmd %q failed: %s", line, resp.Err)
	}
	return resp.Output
}

func TestOpenAndCacheHit(t *testing.T) {
	m := newTestManager(t, Config{CacheSize: 8})
	_, r1 := mustOpen(t, m, "arc3d")
	if r1.Cached {
		t.Fatal("first open should be a cache miss")
	}
	_, r2 := mustOpen(t, m, "arc3d")
	if !r2.Cached {
		t.Fatal("second open of identical source should hit the cache")
	}
	if !reflect.DeepEqual(r1.Units, r2.Units) {
		t.Fatalf("unit lists differ: %v vs %v", r1.Units, r2.Units)
	}
	st := m.CacheStats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("cache stats = %+v, want 1 hit, 1 miss, 1 entry", st)
	}
}

// TestCacheHitByteIdentical is the cache-correctness check: every
// read-only command served from hash-hit artifacts must produce
// byte-identical output to a cold (freshly analyzed) session.
func TestCacheHitByteIdentical(t *testing.T) {
	script := []string{
		"units", "loops", "loop 1", "deps", "vars", "loop 2", "deps",
		"vars", "perf", "save", "help", "legend",
	}
	for _, workload := range []string{"arc3d", "spec77", "direct"} {
		cold := newTestManager(t, Config{}) // cache disabled: always cold
		warmMgr := newTestManager(t, Config{CacheSize: 8})
		_, prime := mustOpen(t, warmMgr, workload)
		coldSess, _ := mustOpen(t, cold, workload)
		warmSess, warmResp := mustOpen(t, warmMgr, workload)
		if !warmResp.Cached {
			t.Fatalf("%s: second open should be cached", workload)
		}
		if warmSess.Info(bg).Live {
			t.Fatalf("%s: cache-hit session should be artifact-backed", workload)
		}
		for _, line := range script {
			coldOut := mustCmd(t, coldSess, line)
			warmOut := mustCmd(t, warmSess, line)
			if coldOut != warmOut {
				t.Fatalf("%s: %q differs between cold and hash-hit session:\ncold:\n%s\nwarm:\n%s",
					workload, line, coldOut, warmOut)
			}
		}
		// Typed dependence listings must agree too, per filter.
		for _, q := range []DepQuery{
			{}, {Carried: true}, {HidePrivate: true},
			{Classes: []string{"true", "anti"}}, {Carried: true, HidePrivate: true},
		} {
			cd, err := coldSess.Deps(bg, q)
			if err != nil {
				t.Fatal(err)
			}
			wd, err := warmSess.Deps(bg, q)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(cd, wd) {
				t.Fatalf("%s: deps %+v differ:\ncold: %+v\nwarm: %+v", workload, q, cd, wd)
			}
		}
		_ = prime
	}
}

const tinySrc = `
      program tiny
      integer i, n
      parameter (n = 10)
      real a(10)
      do i = 1, n
         a(i) = a(i) + 1.0
      enddo
      end
`

// TestMaterializeOnMutation checks the artifact→live promotion: a
// cache-hit session answers reads from artifacts, then transparently
// builds a real core.Session at the first mutating command, keeping
// the selection it had.
func TestMaterializeOnMutation(t *testing.T) {
	m := newTestManager(t, Config{CacheSize: 8})
	if _, _, err := m.Open(bg, OpenRequest{Path: "tiny.f", Source: tinySrc}); err != nil {
		t.Fatal(err)
	}
	ss, resp, err := m.Open(bg, OpenRequest{Path: "tiny.f", Source: tinySrc})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Cached {
		t.Fatal("expected cache hit")
	}
	mustCmd(t, ss, "loop 1")
	warmDeps := mustCmd(t, ss, "deps")
	if ss.Info(bg).Live {
		t.Fatal("reads must not materialize")
	}
	// A filtered deps listing needs the live session.
	mustCmd(t, ss, "deps carried")
	if !ss.Info(bg).Live {
		t.Fatal("filtered deps should have materialized")
	}
	// Selection survived, and the default pane still matches.
	liveDeps := mustCmd(t, ss, "deps")
	if liveDeps != warmDeps {
		t.Fatalf("deps changed across materialization:\nwarm:\n%s\nlive:\n%s", warmDeps, liveDeps)
	}
	if ss.Info(bg).Mutated {
		t.Fatal("no mutation applied yet")
	}
	out, err := ss.Cmd(bg, "classify a private")
	if err != nil || out.Err != "" {
		t.Fatalf("classify: %v %s", err, out.Err)
	}
	if !ss.Info(bg).Mutated {
		t.Fatal("classify should mark the session mutated")
	}
}

func TestUndoOnFreshSessionFailsLikeCold(t *testing.T) {
	m := newTestManager(t, Config{CacheSize: 8})
	mustOpen(t, m, "onedim")
	ss, resp := mustOpen(t, m, "onedim")
	if !resp.Cached {
		t.Fatal("expected cache hit")
	}
	if err := ss.Undo(bg); err == nil || !strings.Contains(err.Error(), "nothing to undo") {
		t.Fatalf("undo on fresh session: got %v, want nothing-to-undo", err)
	}
}

func TestSelectAndDepsTyped(t *testing.T) {
	m := newTestManager(t, Config{CacheSize: 8})
	ss, _ := mustOpen(t, m, "arc3d")
	sel, err := ss.Select(bg, SelectRequest{Loop: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Loop != 1 || sel.Summary == "" {
		t.Fatalf("select = %+v", sel)
	}
	deps, err := ss.Deps(bg, DepQuery{})
	if err != nil {
		t.Fatal(err)
	}
	all := len(deps.Deps)
	carried, err := ss.Deps(bg, DepQuery{Carried: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(carried.Deps) > all {
		t.Fatalf("carried filter grew the list: %d > %d", len(carried.Deps), all)
	}
	if _, err := ss.Select(bg, SelectRequest{Loop: 99}); err == nil {
		t.Fatal("out-of-range loop should fail")
	}
	if _, err := ss.Select(bg, SelectRequest{Unit: "nosuch"}); err == nil {
		t.Fatal("unknown unit should fail")
	}
}

func TestTransformAndEditFlow(t *testing.T) {
	m := newTestManager(t, Config{CacheSize: 8})
	mustOpen(t, m, "onedim")
	ss, resp := mustOpen(t, m, "onedim")
	if !resp.Cached {
		t.Fatal("expected cache hit")
	}
	check, err := ss.Transform(bg, TransformRequest{Name: "parallelize", Args: []string{"1"}, CheckOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if check.Err != "" {
		t.Fatalf("check: %s", check.Err)
	}
	if !strings.Contains(check.Output, "parallelize") {
		t.Fatalf("check output %q", check.Output)
	}
	before := mustCmd(t, ss, "save")
	out, err := ss.Cmd(bg, "auto")
	if err != nil || out.Err != "" {
		t.Fatalf("auto: %v %s", err, out.Err)
	}
	after := mustCmd(t, ss, "save")
	if before == after && !strings.Contains(out.Output, "parallelized 0") {
		t.Fatal("auto reported parallelization but source unchanged")
	}
	if err := ss.Undo(bg); err != nil {
		t.Fatalf("undo: %v", err)
	}
}

func TestTTLEviction(t *testing.T) {
	m := newTestManager(t, Config{TTL: 30 * time.Millisecond, SweepEvery: time.Hour, CacheSize: 8})
	ss, resp := mustOpen(t, m, "onedim")
	if n := m.Sweep(); n != 0 {
		t.Fatalf("fresh session swept: %d", n)
	}
	time.Sleep(60 * time.Millisecond)
	if n := m.Sweep(); n != 1 {
		t.Fatalf("sweep evicted %d sessions, want 1", n)
	}
	if m.Get(resp.ID) != nil {
		t.Fatal("evicted session still resolvable")
	}
	if _, err := ss.Cmd(bg, "loops"); err != ErrSessionClosed {
		t.Fatalf("cmd on evicted session: %v, want ErrSessionClosed", err)
	}
}

func TestHTTPRoundTrip(t *testing.T) {
	m := newTestManager(t, Config{CacheSize: 8})
	ts := httptest.NewServer(New(m))
	defer ts.Close()
	c := NewClient(ts.URL)

	open, err := c.Open(bg, OpenRequest{Workload: "arc3d"})
	if err != nil {
		t.Fatal(err)
	}
	if len(open.Units) != 2 {
		t.Fatalf("units = %v", open.Units)
	}
	if _, err := c.Open(bg, OpenRequest{Workload: "nosuch"}); err == nil {
		t.Fatal("unknown workload should fail")
	}

	sel, err := c.Select(bg, open.ID, SelectRequest{Loop: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Loop != 2 {
		t.Fatalf("select = %+v", sel)
	}
	deps, err := c.Deps(bg, open.ID, DepQuery{Carried: true})
	if err != nil {
		t.Fatal(err)
	}
	if deps.Loop != 2 {
		t.Fatalf("deps loop = %d", deps.Loop)
	}
	resp, err := c.Cmd(bg, open.ID, "vars")
	if err != nil || resp.Err != "" {
		t.Fatalf("vars: %v %s", err, resp.Err)
	}
	if !strings.Contains(resp.Output, "variables") {
		t.Fatalf("vars output %q", resp.Output)
	}
	if err := c.Classify(bg, open.ID, ClassifyRequest{Var: "nosuchvar", Class: "private"}); err == nil {
		t.Fatal("classify of unknown variable should fail")
	}
	tr, err := c.Transform(bg, open.ID, TransformRequest{Name: "parallelize", Args: []string{"2"}, CheckOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Output == "" && tr.Err == "" {
		t.Fatal("transform produced nothing")
	}
	if err := c.Edit(bg, open.ID, EditRequest{Stmt: 999999, Text: "x = 1"}); err == nil {
		t.Fatal("edit of unknown statement should fail")
	}

	list, err := c.List(bg)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != open.ID {
		t.Fatalf("list = %+v", list)
	}
	st, err := c.CacheStats(bg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries != 1 {
		t.Fatalf("cache stats = %+v", st)
	}
	if err := c.CloseSession(bg, open.ID); err != nil {
		t.Fatal(err)
	}
	if err := c.CloseSession(bg, open.ID); err == nil {
		t.Fatal("double close should 404")
	}
	if _, err := c.Cmd(bg, open.ID, "loops"); err == nil {
		t.Fatal("cmd on closed session should fail")
	}
}

func TestOpenRawSource(t *testing.T) {
	m := newTestManager(t, Config{CacheSize: 8})
	ss, resp, err := m.Open(bg, OpenRequest{Path: "tiny.f", Source: tinySrc})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cached {
		t.Fatal("first open cached?")
	}
	out := mustCmd(t, ss, "loops")
	if !strings.Contains(out, "do ") {
		t.Fatalf("loops = %q", out)
	}
	if _, _, err := m.Open(bg, OpenRequest{Path: "bad.f", Source: "this is not fortran"}); err == nil {
		t.Fatal("parse error should fail the open")
	}
	if _, _, err := m.Open(bg, OpenRequest{}); err == nil {
		t.Fatal("empty open should fail")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	for _, k := range []string{"a", "b", "c"} {
		c.Put(&Artifacts{Key: k})
	}
	if c.Get("a") != nil {
		t.Fatal("oldest entry should have been evicted")
	}
	if c.Get("b") == nil || c.Get("c") == nil {
		t.Fatal("recent entries missing")
	}
	// c is now most recent; inserting d evicts b.
	c.Put(&Artifacts{Key: "d"})
	if c.Get("b") != nil {
		t.Fatal("LRU order not respected")
	}
	if c.Get("c") == nil || c.Get("d") == nil {
		t.Fatal("recent entries missing after eviction")
	}
}
