package server

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"parascope/internal/faultpoint"
)

// This file is the durability substrate of pedd: a per-session
// write-ahead journal of the mutating commands, plus periodic
// snapshots that bound replay length. Wire format, one record:
//
//	[4-byte big-endian payload length][payload][4-byte big-endian CRC32(payload)]
//
// The payload is the JSON encoding of record. Records are appended
// from inside the session's actor goroutine, so journal order is
// exactly the actor's execution order. A partial final record (the
// expected aftermath of kill -9 or power loss) is a torn tail —
// detected and truncated at recovery, never an error. A checksum
// failure before the tail is corruption and quarantines the session.

// Record ops. Reads are never journaled.
const (
	recOpen     = "open"     // session birth: path + source
	recSnapshot = "snapshot" // folded state: source + selection + undo stack
	recSelect   = "select"   // unit/loop selection
	recCmd      = "cmd"      // a mutating REPL line
	recClassify = "classify" // typed classify endpoint
	recEdit     = "edit"     // typed edit/delete endpoint
	recUndo     = "undo"     // typed undo endpoint
)

// record is one journal entry. Fields are op-specific; PreHash is the
// SHA-256 of the printed source *before* the mutation, giving replay a
// per-record integrity check (a mismatch means the journal and the
// rebuilt state have diverged).
type record struct {
	Seq  uint64 `json:"seq"`
	Op   string `json:"op"`
	Time int64  `json:"time,omitempty"` // unix nanos, informational

	// open / snapshot
	Path   string   `json:"path,omitempty"`
	Source string   `json:"source,omitempty"`
	Undo   []string `json:"undo,omitempty"` // snapshot: printed undo stack, oldest first

	// select / snapshot selection
	Unit string `json:"unit,omitempty"`
	Loop int    `json:"loop,omitempty"`

	// cmd
	Line string `json:"line,omitempty"`

	// classify
	Var   string `json:"var,omitempty"`
	Class string `json:"class,omitempty"`

	// edit
	Stmt   int    `json:"stmt,omitempty"`
	Text   string `json:"text,omitempty"`
	Delete bool   `json:"delete,omitempty"`

	PreHash string `json:"pre_hash,omitempty"`
}

// srcHash is the printed-source content hash carried in PreHash.
func srcHash(src string) string {
	sum := sha256.Sum256([]byte(src))
	return hex.EncodeToString(sum[:])
}

// FsyncPolicy says when journal appends reach stable storage.
type FsyncPolicy int

// Fsync policies (zero value = interval, the production default).
const (
	// FsyncInterval batches fsyncs on the manager's flush ticker:
	// bounded data loss (one flush interval) at near-zero latency cost.
	FsyncInterval FsyncPolicy = iota
	// FsyncAlways fsyncs every append before acknowledging: no
	// acknowledged mutation is ever lost, at the price of a disk
	// round-trip per mutation.
	FsyncAlways
	// FsyncNever leaves flushing to the OS page cache (and to Close on
	// clean shutdown): fastest, loses up to the whole cache on a crash.
	FsyncNever
)

func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncNever:
		return "never"
	default:
		return "interval"
	}
}

// ParseFsyncPolicy parses the -fsync flag value.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch strings.ToLower(s) {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "never":
		return FsyncNever, nil
	}
	return 0, fmt.Errorf("unknown fsync policy %q (want always, interval, or never)", s)
}

// maxRecordBytes bounds a single record's payload; a decoded length
// past it means the length field itself is garbage.
const maxRecordBytes = 64 << 20

// journal is one session's append-only command log. All appends come
// from the session's actor goroutine; sync may additionally be called
// by the manager's flush ticker, so the file handle is mutex-guarded.
type journal struct {
	id     string
	path   string
	policy FsyncPolicy

	mu     sync.Mutex
	f      *os.File
	size   int64 // logical size = end of the last complete record
	seq    uint64
	dirty  bool
	closed bool

	metrics *Metrics
}

// walPath names the journal file for a session ID.
func walPath(dir, id string) string { return filepath.Join(dir, id+".wal") }

// createJournal makes a fresh journal for a new session. O_EXCL makes
// an ID collision with any existing file an error instead of silently
// appending to foreign state.
func createJournal(dir, id string, policy FsyncPolicy, metrics *Metrics) (*journal, error) {
	f, err := os.OpenFile(walPath(dir, id), os.O_CREATE|os.O_EXCL|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &journal{id: id, path: walPath(dir, id), policy: policy, f: f, metrics: metrics}, nil
}

// openJournalAppend reopens an existing journal (after recovery) for
// appending. size and seq come from the recovery scan.
func openJournalAppend(dir, id string, policy FsyncPolicy, size int64, seq uint64, metrics *Metrics) (*journal, error) {
	f, err := os.OpenFile(walPath(dir, id), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &journal{id: id, path: walPath(dir, id), policy: policy, f: f, size: size, seq: seq, metrics: metrics}, nil
}

// encodeRecord renders one record in the wire format.
func encodeRecord(rec *record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 4+len(payload)+4)
	binary.BigEndian.PutUint32(buf[:4], uint32(len(payload)))
	copy(buf[4:], payload)
	binary.BigEndian.PutUint32(buf[4+len(payload):], crc32.ChecksumIEEE(payload))
	return buf, nil
}

// append stamps the next sequence number on rec and writes it, then
// fsyncs if the policy is FsyncAlways. On any error the file is
// truncated back to the last complete record (best effort) so a failed
// append can never leave a half-record for a later append to bury
// mid-stream, and the error is returned for the session to degrade on.
func (j *journal) append(rec *record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return errors.New("journal closed")
	}
	if err := faultpoint.Hit(faultpoint.JournalAppend, j.id+":"+rec.Op); err != nil {
		return err
	}
	rec.Seq = j.seq + 1
	rec.Time = time.Now().UnixNano()
	buf, err := encodeRecord(rec)
	if err != nil {
		return err
	}
	start := time.Now()
	n, err := j.f.Write(buf)
	if err != nil || n != len(buf) {
		_ = j.f.Truncate(j.size)
		if err == nil {
			err = fmt.Errorf("short journal write: %d of %d bytes", n, len(buf))
		}
		return err
	}
	j.size += int64(len(buf))
	j.seq = rec.Seq
	j.dirty = true
	if j.metrics != nil {
		j.metrics.JournalAppend.Observe(time.Since(start).Seconds())
		j.metrics.JournalBytes.Add(uint64(len(buf)))
	}
	if j.policy == FsyncAlways {
		if err := j.syncLocked(); err != nil {
			// The record reached the file but not stable storage; roll
			// it back (best effort) so state the client is told failed
			// cannot resurface after a crash.
			j.size -= int64(len(buf))
			j.seq--
			_ = j.f.Truncate(j.size)
			return err
		}
	}
	return nil
}

// sync flushes pending appends to stable storage (no-op when clean or
// when the policy is FsyncNever).
func (j *journal) sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.policy == FsyncNever {
		return nil
	}
	return j.syncLocked()
}

func (j *journal) syncLocked() error {
	if !j.dirty || j.closed {
		return nil
	}
	if err := faultpoint.Hit(faultpoint.JournalSync, j.id); err != nil {
		return err
	}
	start := time.Now()
	if err := j.f.Sync(); err != nil {
		return err
	}
	if j.metrics != nil {
		j.metrics.JournalFsync.Observe(time.Since(start).Seconds())
	}
	j.dirty = false
	return nil
}

// rewrite atomically replaces the journal with a single snapshot
// record — compaction. The snapshot is written to a temp file, fsynced,
// and renamed over the journal; any failure leaves the old journal
// intact and the old handle serving.
func (j *journal) rewrite(snap *record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return errors.New("journal closed")
	}
	if err := faultpoint.Hit(faultpoint.JournalSnapshot, j.id); err != nil {
		return err
	}
	snap.Seq = j.seq + 1
	snap.Time = time.Now().UnixNano()
	buf, err := encodeRecord(snap)
	if err != nil {
		return err
	}
	tmpPath := j.path + ".tmp"
	tmp, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpPath)
		return err
	}
	if err := os.Rename(tmpPath, j.path); err != nil {
		os.Remove(tmpPath)
		return err
	}
	// The old handle now points at the unlinked inode; swap it for the
	// new file before any further append.
	nf, err := os.OpenFile(j.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	_ = j.f.Close()
	j.f = nf
	j.size = int64(len(buf))
	j.seq = snap.Seq
	j.dirty = false
	syncDir(filepath.Dir(j.path))
	if j.metrics != nil {
		j.metrics.JournalSnapshots.Inc()
	}
	return nil
}

// close fsyncs (regardless of policy — clean shutdown is the one
// moment durability is free) and closes the handle. Idempotent.
func (j *journal) close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	var err error
	if j.dirty {
		err = j.f.Sync()
	}
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// remove deletes the journal file (explicit close / TTL eviction: the
// session is gone on purpose, so its state must not resurrect).
func (j *journal) remove() {
	_ = j.close()
	os.Remove(j.path)
}

// syncDir fsyncs a directory so a rename survives a crash (best
// effort; some filesystems reject directory fsync).
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}

// scanResult is what readJournal learned about one journal file.
type scanResult struct {
	records []record
	// tornAt >= 0 is the byte offset of a partial or checksum-failed
	// final record — the expected kill -9 aftermath; truncating the
	// file there makes it clean. -1 means no torn tail.
	tornAt int64
	// corruptAt is the index of the first mid-stream record whose
	// checksum failed with further intact data after it — real
	// corruption, not a crash artifact. -1 means none.
	corruptAt int
	corrupt   error
	// size is the clean logical size (end of the last good record).
	size int64
	// lastSeq is the highest sequence number of a good record.
	lastSeq uint64
}

// readJournal decodes a journal file, classifying damage: a damaged
// *final* record is a torn tail (truncate and carry on), damage with
// intact records after it is corruption (quarantine).
func readJournal(path string) (scanResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return scanResult{tornAt: -1, corruptAt: -1}, err
	}
	return scanJournal(data), nil
}

// scanJournal decodes a journal image already in memory — the shared
// scanner behind file recovery (readJournal) and migration-stream
// adoption (Manager.Import), so both classify damage identically.
func scanJournal(data []byte) scanResult {
	res := scanResult{tornAt: -1, corruptAt: -1}
	off := int64(0)
	n := int64(len(data))
	for off < n {
		// A record needs at least the 4-byte length, the payload, and
		// the 4-byte CRC; anything that runs past EOF is a torn tail.
		if off+4 > n {
			res.tornAt = off
			break
		}
		plen := int64(binary.BigEndian.Uint32(data[off : off+4]))
		end := off + 4 + plen + 4
		if plen > maxRecordBytes || end > n {
			res.tornAt = off
			break
		}
		payload := data[off+4 : off+4+plen]
		crc := binary.BigEndian.Uint32(data[off+4+plen : end])
		var rec record
		if crc32.ChecksumIEEE(payload) != crc {
			if end == n {
				res.tornAt = off // damaged final record: torn tail
			} else {
				res.corruptAt = len(res.records)
				res.corrupt = fmt.Errorf("checksum mismatch in record %d at offset %d", len(res.records)+1, off)
			}
			break
		}
		if err := json.Unmarshal(payload, &rec); err != nil {
			if end == n {
				res.tornAt = off
			} else {
				res.corruptAt = len(res.records)
				res.corrupt = fmt.Errorf("undecodable record %d at offset %d: %v", len(res.records)+1, off, err)
			}
			break
		}
		res.records = append(res.records, rec)
		res.lastSeq = rec.Seq
		res.size = end
		off = end
	}
	return res
}

// CleanJournalStream prepares a journal image read off a *dead* node's
// disk for import: a torn tail (the expected kill -9 aftermath — that
// record was never acknowledged) is truncated away, exactly as startup
// recovery would; mid-stream corruption is an error. This is the
// gateway's failover path. Live migration streams never need it —
// Export only ships complete records — which is why Import itself
// stays strict and rejects torn streams whole.
func CleanJournalStream(data []byte) ([]byte, error) {
	res := scanJournal(data)
	if res.corrupt != nil {
		return nil, res.corrupt
	}
	if len(res.records) == 0 {
		return nil, errors.New("journal stream holds no complete records")
	}
	return data[:res.size], nil
}

// contents reads the journal's clean byte image — everything up to the
// end of the last complete record — for export to another node. Called
// from the session actor after a drain, so no append can be in flight;
// the mutex only fences the manager's concurrent flush ticker.
func (j *journal) contents() ([]byte, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil, errors.New("journal closed")
	}
	if err := j.syncLocked(); err != nil {
		return nil, err
	}
	data, err := os.ReadFile(j.path)
	if err != nil {
		return nil, err
	}
	if int64(len(data)) < j.size {
		return nil, fmt.Errorf("journal file shorter than logical size: %d < %d", len(data), j.size)
	}
	return data[:j.size], nil
}
