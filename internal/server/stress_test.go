package server

import (
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// TestStressConcurrentSessions hammers one pedd with N goroutines ×
// M sessions each over HTTP: ≥16 sessions live simultaneously, all
// mixing artifact-served reads, materializing transforms, and edits.
// Run under -race this is the data-race acceptance check for the
// whole server stack (manager, cache, actors, HTTP layer).
func TestStressConcurrentSessions(t *testing.T) {
	const (
		clients            = 8
		sessionsPerClient  = 3 // 24 concurrent sessions
		workloadsPerClient = 2
	)
	m := newTestManager(t, Config{CacheSize: 16, TTL: time.Minute})
	ts := httptest.NewServer(New(m))
	defer ts.Close()

	names := []string{"onedim", "slab2d", "shear", "direct"}
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := NewClient(ts.URL)
			var ids []string
			for k := 0; k < sessionsPerClient; k++ {
				w := names[(g*workloadsPerClient+k)%len(names)]
				open, err := c.Open(bg, OpenRequest{Workload: w})
				if err != nil {
					errCh <- fmt.Errorf("client %d: open %s: %v", g, w, err)
					return
				}
				ids = append(ids, open.ID)
			}
			for round := 0; round < 3; round++ {
				for _, id := range ids {
					if _, err := c.Select(bg, id, SelectRequest{Loop: 1}); err != nil {
						errCh <- fmt.Errorf("client %d: select: %v", g, err)
						return
					}
					if _, err := c.Deps(bg, id, DepQuery{}); err != nil {
						errCh <- fmt.Errorf("client %d: deps: %v", g, err)
						return
					}
					for _, line := range []string{"units", "loops", "vars", "perf"} {
						resp, err := c.Cmd(bg, id, line)
						if err != nil {
							errCh <- fmt.Errorf("client %d: %s: %v", g, line, err)
							return
						}
						if resp.Err != "" {
							errCh <- fmt.Errorf("client %d: %s: %s", g, line, resp.Err)
							return
						}
					}
					// Command-level verdicts (not applicable, unsafe)
					// are fine; transport errors are not.
					if _, err := c.Transform(bg, id, TransformRequest{Name: "parallelize", Args: []string{"1"}}); err != nil {
						errCh <- fmt.Errorf("client %d: transform: %v", g, err)
						return
					}
				}
			}
			for _, id := range ids {
				if err := c.CloseSession(bg, id); err != nil {
					errCh <- fmt.Errorf("client %d: close: %v", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if left := len(m.List(bg)); left != 0 {
		t.Fatalf("%d sessions leaked", left)
	}
}

// TestStressSharedSession aims many goroutines at the SAME session:
// the per-session actor loop must serialize them without races or
// lost updates.
func TestStressSharedSession(t *testing.T) {
	m := newTestManager(t, Config{CacheSize: 4})
	mustOpen(t, m, "direct")
	ss, resp := mustOpen(t, m, "direct")
	if !resp.Cached {
		t.Fatal("expected cache hit")
	}
	const goroutines = 16
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	lines := []string{"loops", "loop 1", "deps", "vars", "perf", "loop 2", "deps carried", "save"}
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				line := lines[(g+i)%len(lines)]
				out, err := ss.Cmd(bg, line)
				if err != nil {
					errCh <- fmt.Errorf("goroutine %d: %s: %v", g, line, err)
					return
				}
				if out.Err != "" {
					errCh <- fmt.Errorf("goroutine %d: %s: %s", g, line, out.Err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

// TestStressCloseWhileBusy closes sessions while other goroutines are
// mid-request: requests either complete or report ErrSessionClosed,
// never hang or race.
func TestStressCloseWhileBusy(t *testing.T) {
	m := newTestManager(t, Config{CacheSize: 4})
	for round := 0; round < 8; round++ {
		ss, resp := mustOpen(t, m, "onedim")
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 5; i++ {
					if _, err := ss.Cmd(bg, "loops"); err != nil {
						return // ErrSessionClosed is expected
					}
				}
			}()
		}
		m.Close(resp.ID)
		wg.Wait()
		if _, err := ss.Cmd(bg, "loops"); err != ErrSessionClosed {
			t.Fatalf("round %d: cmd after close: %v", round, err)
		}
	}
}
