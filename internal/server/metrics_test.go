package server

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
	"unsafe"
)

// scrape renders a registry to text the way GET /metrics would.
func scrape(t *testing.T, m *Metrics) string {
	t.Helper()
	var b strings.Builder
	if err := m.WriteProm(&b); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	return b.String()
}

// promValues parses an exposition into sample name{labels} → value.
func promValues(t *testing.T, body string) map[string]float64 {
	t.Helper()
	out := map[string]float64{}
	sc := bufio.NewScanner(strings.NewReader(body))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("unparsable exposition line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("unparsable value in line %q: %v", line, err)
		}
		if _, dup := out[line[:i]]; dup {
			t.Fatalf("duplicate series %q", line[:i])
		}
		out[line[:i]] = v
	}
	return out
}

// TestMetricsExpositionFormat pins the text format: HELP/TYPE
// metadata, plain and labeled samples, and cumulative histogram
// buckets with sum and count.
func TestMetricsExpositionFormat(t *testing.T) {
	m := NewMetrics()
	m.SessionsOpened.Add(3)
	m.SessionsLive.Set(2)
	m.HTTPRequests.With("POST /v1/sessions", "POST", "2xx").Add(5)
	m.QueueWait.Observe(0.0002)
	m.QueueWait.Observe(100) // past the last bound → +Inf bucket
	body := scrape(t, m)

	for _, want := range []string{
		"# HELP pedd_sessions_opened_total ",
		"# TYPE pedd_sessions_opened_total counter",
		"pedd_sessions_opened_total 3",
		"# TYPE pedd_sessions_live gauge",
		"pedd_sessions_live 2",
		`pedd_http_requests_total{route="POST /v1/sessions",method="POST",code="2xx"} 5`,
		`pedd_session_queue_wait_seconds_bucket{le="0.00025"} 1`,
		`pedd_session_queue_wait_seconds_bucket{le="10"} 1`,
		`pedd_session_queue_wait_seconds_bucket{le="+Inf"} 2`,
		"pedd_session_queue_wait_seconds_count 2",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q\n%s", want, body)
		}
	}
	if sum := m.QueueWait.Sum(); sum < 100 || sum > 100.001 {
		t.Errorf("histogram sum = %v, want ~100.0002", sum)
	}
}

// TestHistogramConsistency checks the bucket/sum/count invariants a
// Prometheus scraper relies on: buckets are cumulative and monotone,
// the +Inf bucket equals the count, and the sum matches what was
// observed.
func TestHistogramConsistency(t *testing.T) {
	h := newHistogram(timeBuckets)
	var want float64
	for i := 0; i < 1000; i++ {
		v := float64(i%17) / 100
		h.Observe(v)
		want += v
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d, want 1000", h.Count())
	}
	if diff := h.Sum() - want; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("sum = %v, want %v", h.Sum(), want)
	}
	var cum, prev uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum < prev {
			t.Fatalf("bucket %d not monotone", i)
		}
		prev = cum
	}
	if cum != h.Count() {
		t.Fatalf("+Inf cumulative %d != count %d", cum, h.Count())
	}
}

// checkHistogramInvariants verifies, for every histogram family in an
// exposition, that the +Inf bucket equals the count sample.
func checkHistogramInvariants(t *testing.T, body string) {
	t.Helper()
	vals := promValues(t, body)
	checked := 0
	for series, count := range vals {
		name, labels, ok := strings.Cut(series, "_count")
		if !ok || (labels != "" && !strings.HasPrefix(labels, "{")) {
			continue
		}
		inf := name + "_bucket{"
		if labels != "" {
			inf = name + "_bucket{" + strings.TrimSuffix(strings.TrimPrefix(labels, "{"), "}") + ","
		}
		inf += `le="+Inf"}`
		infV, found := vals[inf]
		if !found {
			t.Errorf("histogram %s has no +Inf bucket (looked for %q)", series, inf)
			continue
		}
		if infV != count {
			t.Errorf("histogram %s: +Inf bucket %v != count %v", series, infV, count)
		}
		checked++
	}
	if checked == 0 {
		t.Error("no histogram families found in exposition")
	}
}

// TestMetricsFullSessionFlow is the acceptance check: a full
// open → select → deps → transform session over HTTP, then a scrape
// that must show request latency histograms, cache hit/miss counters,
// session gauges, per-phase analysis timings, and a materialization.
func TestMetricsFullSessionFlow(t *testing.T) {
	m := newTestManager(t, Config{CacheSize: 8})
	ts := httptest.NewServer(New(m))
	defer ts.Close()
	ops := httptest.NewServer(OpsHandler(m.Metrics(), nil))
	defer ops.Close()
	c := NewClient(ts.URL)

	open1, err := c.Open(bg, OpenRequest{Workload: "direct"})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, err := c.Select(bg, open1.ID, SelectRequest{Loop: 1}); err != nil {
		t.Fatalf("select: %v", err)
	}
	if _, err := c.Deps(bg, open1.ID, DepQuery{}); err != nil {
		t.Fatalf("deps: %v", err)
	}
	open2, err := c.Open(bg, OpenRequest{Workload: "direct"})
	if err != nil {
		t.Fatalf("second open: %v", err)
	}
	if !open2.Cached {
		t.Fatal("second open of identical source should hit the cache")
	}
	// Transforming the artifact-backed session forces a materialize.
	if _, err := c.Transform(bg, open2.ID, TransformRequest{Name: "parallelize", Args: []string{"1"}}); err != nil {
		t.Fatalf("transform: %v", err)
	}

	resp, err := http.Get(ops.URL + "/metrics")
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("scrape content type = %q, want text/plain", ct)
	}
	raw, _ := io.ReadAll(resp.Body)
	body := string(raw)
	vals := promValues(t, body)

	atLeast := func(series string, min float64) {
		t.Helper()
		if vals[series] < min {
			t.Errorf("%s = %v, want >= %v\n%s", series, vals[series], min, body)
		}
	}
	atLeast(`pedd_http_requests_total{route="POST /v1/sessions",method="POST",code="2xx"}`, 2)
	atLeast(`pedd_http_request_seconds_count{route="POST /v1/sessions"}`, 2)
	atLeast(`pedd_http_request_seconds_count{route="POST /v1/sessions/{id}/transform"}`, 1)
	atLeast("pedd_cache_misses_total", 1)
	atLeast("pedd_cache_hits_total", 1)
	atLeast("pedd_cache_materializations_total", 1)
	atLeast("pedd_sessions_opened_total", 2)
	atLeast("pedd_session_queue_wait_seconds_count", 1)
	atLeast("pedd_actor_service_seconds_count", 1)
	for _, phase := range []string{"parse", "interproc", "dataflow", "dependence", "perf"} {
		atLeast(fmt.Sprintf(`pedd_analysis_phase_seconds_count{phase=%q}`, phase), 1)
	}
	if got := vals["pedd_sessions_live"]; got != 2 {
		t.Errorf("pedd_sessions_live = %v, want 2", got)
	}
	checkHistogramInvariants(t, body)

	// Closing both sessions drains the gauge.
	if err := c.CloseSession(bg, open1.ID); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := c.CloseSession(bg, open2.ID); err != nil {
		t.Fatalf("close: %v", err)
	}
	after := promValues(t, scrape(t, m.Metrics()))
	if got := after["pedd_sessions_live"]; got != 0 {
		t.Errorf("pedd_sessions_live after closes = %v, want 0", got)
	}
	if got := after["pedd_sessions_closed_total"]; got < 2 {
		t.Errorf("pedd_sessions_closed_total = %v, want >= 2", got)
	}
}

// TestMetricsScrapeUnderConcurrentLoad runs 8 concurrent sessions
// while a scraper hammers the exposition — under -race this is the
// data-race check for the whole metrics path — and asserts counters
// are monotone between scrapes and histograms are sum-consistent
// after the load quiesces.
func TestMetricsScrapeUnderConcurrentLoad(t *testing.T) {
	m := newTestManager(t, Config{CacheSize: 8})
	ts := httptest.NewServer(New(m))
	defer ts.Close()

	const sessions = 8
	workloadNames := []string{"direct", "onedim", "slab2d", "shear"}
	var wg sync.WaitGroup
	errCh := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := NewClient(ts.URL)
			open, err := c.Open(bg, OpenRequest{Workload: workloadNames[i%len(workloadNames)]})
			if err != nil {
				errCh <- fmt.Errorf("open: %w", err)
				return
			}
			for j := 0; j < 5; j++ {
				if _, err := c.Cmd(bg, open.ID, "loops"); err != nil {
					errCh <- fmt.Errorf("cmd: %w", err)
					return
				}
				if _, err := c.Deps(bg, open.ID, DepQuery{}); err != nil {
					errCh <- fmt.Errorf("deps: %w", err)
					return
				}
			}
			if err := c.CloseSession(bg, open.ID); err != nil {
				errCh <- fmt.Errorf("close: %w", err)
			}
		}(i)
	}

	stop := make(chan struct{})
	scraperDone := make(chan struct{})
	var scrapes atomic.Int64
	var snapshots []map[string]float64
	go func() {
		defer close(scraperDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			body := scrape(t, m.Metrics())
			snapshots = append(snapshots, promValues(t, body))
			scrapes.Add(1)
		}
	}()

	wg.Wait()
	close(stop)
	<-scraperDone
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if scrapes.Load() == 0 {
		t.Fatal("scraper never ran")
	}

	// Counters must be monotone scrape over scrape.
	for i := 1; i < len(snapshots); i++ {
		for series, prev := range snapshots[i-1] {
			if !strings.Contains(series, "_total") && !strings.Contains(series, "_count") &&
				!strings.Contains(series, "_bucket") {
				continue
			}
			if cur, ok := snapshots[i][series]; ok && cur < prev {
				t.Fatalf("counter %s went backwards: %v -> %v (scrape %d)", series, prev, cur, i)
			}
		}
	}
	checkHistogramInvariants(t, scrape(t, m.Metrics()))
	final := promValues(t, scrape(t, m.Metrics()))
	if got := final["pedd_sessions_live"]; got != 0 {
		t.Errorf("pedd_sessions_live after load = %v, want 0", got)
	}
	if got := final["pedd_session_queue_depth"]; got != 0 {
		t.Errorf("pedd_session_queue_depth after load = %v, want 0", got)
	}
}

// TestRequestIDEchoAndGeneration: a client-sent X-Request-ID is
// echoed on the response and inside error bodies; absent one, the
// server generates a 16-hex-digit ID.
func TestRequestIDEchoAndGeneration(t *testing.T) {
	m := newTestManager(t, Config{})
	ts := httptest.NewServer(New(m))
	defer ts.Close()

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/sessions/nope", nil)
	req.Header.Set("X-Request-ID", "caller-chose-this")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "caller-chose-this" {
		t.Errorf("echoed request ID = %q, want caller's", got)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status = %d, want 404", resp.StatusCode)
	}
	if !strings.Contains(string(body), `"request_id":"caller-chose-this"`) {
		t.Errorf("error body does not echo request ID: %s", body)
	}

	resp2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	gen := resp2.Header.Get("X-Request-ID")
	if !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(gen) {
		t.Errorf("generated request ID %q is not 16 hex digits", gen)
	}
}

// TestClientRequestIDPropagation: the client stamps one request ID on
// every attempt of a logical request, and surfaces it in APIError so
// ped -remote failures are correlatable with the daemon's access log.
func TestClientRequestIDPropagation(t *testing.T) {
	var mu sync.Mutex
	var ids []string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		ids = append(ids, r.Header.Get("X-Request-ID"))
		n := len(ids)
		mu.Unlock()
		w.Header().Set("X-Request-ID", r.Header.Get("X-Request-ID"))
		if n < 3 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprint(w, `{"error":"busy"}`)
			return
		}
		w.WriteHeader(http.StatusUnprocessableEntity)
		fmt.Fprint(w, `{"error":"no such workload"}`)
	}))
	defer ts.Close()

	c := NewClient(ts.URL)
	c.BaseBackoff = 1
	_, err := c.Open(bg, OpenRequest{Workload: "nope"})
	if err == nil {
		t.Fatal("open against failing server succeeded")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(ids) != 3 {
		t.Fatalf("expected 3 attempts, saw %d", len(ids))
	}
	if ids[0] == "" || ids[0] != ids[1] || ids[1] != ids[2] {
		t.Errorf("request ID not stable across retries: %q", ids)
	}
	apiErr := &APIError{}
	if !asAPIError(err, &apiErr) {
		t.Fatalf("error is not APIError: %v", err)
	}
	if apiErr.RequestID != ids[0] {
		t.Errorf("APIError.RequestID = %q, want %q", apiErr.RequestID, ids[0])
	}
	if !strings.Contains(err.Error(), "[req "+ids[0]+"]") {
		t.Errorf("error text %q does not carry the request ID", err.Error())
	}
}

func asAPIError(err error, into **APIError) bool {
	e, ok := err.(*APIError)
	if ok {
		*into = e
	}
	return ok
}

// TestParseRetryAfter covers both RFC 9110 forms and garbage.
func TestParseRetryAfter(t *testing.T) {
	if d := parseRetryAfter("5"); d != 5*time.Second {
		t.Errorf("delta-seconds: got %v", d)
	}
	if d := parseRetryAfter("0"); d != 0 {
		t.Errorf("zero delta: got %v", d)
	}
	if d := parseRetryAfter("-3"); d != 0 {
		t.Errorf("negative delta: got %v", d)
	}
	future := time.Now().UTC().Add(3 * time.Second).Format(http.TimeFormat)
	if d := parseRetryAfter(future); d <= 0 || d > 3*time.Second {
		t.Errorf("HTTP-date 3s ahead: got %v", d)
	}
	past := time.Now().UTC().Add(-3 * time.Second).Format(http.TimeFormat)
	if d := parseRetryAfter(past); d != 0 {
		t.Errorf("HTTP-date in the past: got %v", d)
	}
	if d := parseRetryAfter("half past never"); d != 0 {
		t.Errorf("garbage: got %v", d)
	}
}

// TestMetricsLintAllHandlersInstrumented reflects over the routing
// mux and fails if any registered pattern bypassed Server.handle —
// i.e. if someone adds an HTTP handler to internal/server without
// instrumentation.
func TestMetricsLintAllHandlersInstrumented(t *testing.T) {
	m := newTestManager(t, Config{})
	s := New(m)

	got := muxPatterns(t, s.mux)
	want := s.Routes()
	sort.Strings(got)
	sort.Strings(want)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("mux patterns and instrumented routes diverge:\n  mux:    %v\n  routes: %v\n"+
			"every route must be registered through Server.handle so it is counted, timed, and logged",
			got, want)
	}
	if len(got) == 0 {
		t.Fatal("no patterns found in mux; reflection walk is broken")
	}
}

// muxPatterns enumerates every pattern registered on a ServeMux by
// reflecting over its routing index (net/http keeps all patterns
// there, including multi-segment ones).
func muxPatterns(t *testing.T, mux *http.ServeMux) []string {
	t.Helper()
	mv := reflect.ValueOf(mux).Elem()
	idx := mv.FieldByName("index")
	if !idx.IsValid() {
		t.Fatal("http.ServeMux has no index field; update muxPatterns for this Go version")
	}
	seen := map[string]bool{}
	var out []string
	collect := func(pv reflect.Value) {
		if pv.Kind() != reflect.Ptr || pv.IsNil() {
			return
		}
		sv := pv.Elem().FieldByName("str")
		if !sv.IsValid() || !sv.CanAddr() {
			t.Fatal("http pattern has no str field; update muxPatterns for this Go version")
		}
		s := *(*string)(unsafe.Pointer(sv.UnsafeAddr()))
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	segs := idx.FieldByName("segments")
	for it := segs.MapRange(); it.Next(); {
		lst := it.Value()
		for i := 0; i < lst.Len(); i++ {
			collect(lst.Index(i))
		}
	}
	multis := idx.FieldByName("multis")
	for i := 0; i < multis.Len(); i++ {
		collect(multis.Index(i))
	}
	return out
}

// TestCacheEvictionMetric: overflowing a 1-slot cache must tick
// pedd_cache_evictions_total in the scrape.
func TestCacheEvictionMetric(t *testing.T) {
	m := newTestManager(t, Config{CacheSize: 1})
	_, r1 := mustOpen(t, m, "direct")
	_, r2 := mustOpen(t, m, "onedim") // evicts direct's artifacts
	m.Close(r1.ID)
	m.Close(r2.ID)
	vals := promValues(t, scrape(t, m.Metrics()))
	if got := vals["pedd_cache_evictions_total"]; got < 1 {
		t.Errorf("pedd_cache_evictions_total = %v, want >= 1", got)
	}
}

// TestDurabilityMetrics drives a journaled session through appends,
// fsyncs, a snapshot compaction, a crash-style restart, and a torn
// tail, then asserts every durability series moved and stays
// histogram-consistent.
func TestDurabilityMetrics(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{CacheSize: 8, DataDir: dir, Fsync: FsyncAlways, SnapshotEvery: 2}
	m1 := NewManager(cfg)
	ss, resp := mustOpen(t, m1, "direct")
	mustCmd(t, ss, "loop 1")
	mustCmd(t, ss, "apply parallelize 1")
	vals := promValues(t, scrape(t, m1.Metrics()))
	atLeast := func(series string, min float64) {
		t.Helper()
		if vals[series] < min {
			t.Errorf("%s = %v, want >= %v", series, vals[series], min)
		}
	}
	atLeast("pedd_journal_append_seconds_count", 3) // open + 2 mutations
	atLeast("pedd_journal_fsync_seconds_count", 3)  // fsync always
	atLeast("pedd_journal_bytes_total", 64)
	atLeast("pedd_journal_snapshots_total", 1) // SnapshotEvery: 2
	checkHistogramInvariants(t, scrape(t, m1.Metrics()))
	m1.Shutdown()

	// Tear the tail, then recover on a fresh manager (fresh registry):
	// both the recovery and the truncation must count.
	wal := walPath(dir, resp.ID)
	f, err := os.OpenFile(wal, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0, 0, 0, 9, 'x'}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	m2 := newTestManager(t, cfg)
	if _, err := m2.Recover(); err != nil {
		t.Fatal(err)
	}
	vals = promValues(t, scrape(t, m2.Metrics()))
	atLeast("pedd_recoveries_total", 1)
	atLeast("pedd_recoveries_truncated_total", 1)
	if got := vals["pedd_recoveries_quarantined_total"]; got != 0 {
		t.Errorf("pedd_recoveries_quarantined_total = %v, want 0", got)
	}
}
