package repl

import (
	"strings"
	"testing"

	"parascope/internal/workloads"
)

// drive runs a command script against a workload session and returns
// the combined output.
func drive(t *testing.T, workload string, commands ...string) string {
	t.Helper()
	w := workloads.ByName(workload)
	if w == nil {
		t.Fatalf("no workload %s", workload)
	}
	s, err := w.Session()
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	r := New(s, &out)
	if err := r.Run(strings.NewReader(strings.Join(commands, "\n"))); err != nil {
		t.Fatal(err)
	}
	return out.String()
}

func TestLoopsAndSelect(t *testing.T) {
	out := drive(t, "pneoss", "loops", "loop 2", "deps carried", "vars")
	if !strings.Contains(out, "do i") {
		t.Errorf("loops output:\n%s", out)
	}
	if !strings.Contains(out, "private") && !strings.Contains(out, "induction") {
		t.Errorf("vars output missing classes:\n%s", out)
	}
}

func TestCheckAndApply(t *testing.T) {
	out := drive(t, "pneoss",
		"loop 2",
		"check parallelize 2",
		"apply parallelize 2",
		"loops",
	)
	if !strings.Contains(out, "applicable: yes") {
		t.Errorf("check output:\n%s", out)
	}
	if !strings.Contains(out, "applied parallelize") {
		t.Errorf("apply output:\n%s", out)
	}
	if !strings.Contains(out, "P depth") && !strings.Contains(out, "  2 P") {
		t.Errorf("loop list should show a parallel loop:\n%s", out)
	}
}

func TestAssertWorkflow(t *testing.T) {
	out := drive(t, "arc3d",
		"loop 2",
		"check parallelize 2",
		"assert jp .ge. 500",
		"check parallelize 2",
	)
	// First check blocked, second safe.
	first := strings.Index(out, "safe: no")
	second := strings.Index(out, "safe: yes")
	if first < 0 || second < 0 || second < first {
		t.Errorf("assertion flow wrong:\n%s", out)
	}
}

func TestMarkReject(t *testing.T) {
	out := drive(t, "onedim",
		"loop 2",
		"deps carried on fld",
	)
	if !strings.Contains(out, "index-array") {
		t.Fatalf("expected index-array deps:\n%s", out)
	}
	// Extract the first dep id from the pane (first token of a line).
	var id string
	for _, line := range strings.Split(out, "\n") {
		f := strings.Fields(line)
		if len(f) > 2 && (f[1] == "true" || f[1] == "anti" || f[1] == "output") {
			id = f[0]
			break
		}
	}
	if id == "" {
		t.Fatalf("no dep id found:\n%s", out)
	}
	out2 := drive(t, "onedim",
		"loop 2",
		"mark "+id+" reject",
		"deps carried on fld hiderejected",
	)
	if strings.Contains(out2, "error") {
		t.Errorf("mark failed:\n%s", out2)
	}
}

func TestRunCommand(t *testing.T) {
	out := drive(t, "pneoss", "auto", "run 2")
	if !strings.Contains(out, "parallelized") {
		t.Errorf("auto output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	last := lines[len(lines)-1]
	if len(strings.Fields(last)) == 0 {
		t.Errorf("run produced no output:\n%s", out)
	}
}

func TestEditUndoSave(t *testing.T) {
	out := drive(t, "pneoss",
		"loops",
		"save",
	)
	if !strings.Contains(out, "program pneoss") {
		t.Errorf("save output:\n%s", out)
	}
	out = drive(t, "pneoss",
		"apply parallelize 2",
		"undo",
		"loops",
	)
	if strings.Contains(out, "error") {
		t.Errorf("undo flow failed:\n%s", out)
	}
}

func TestPerfAndNext(t *testing.T) {
	out := drive(t, "spec77", "perf", "next", "rank")
	if !strings.Contains(out, "performance estimate") {
		t.Errorf("perf output:\n%s", out)
	}
	if !strings.Contains(out, "selected do") {
		t.Errorf("next output:\n%s", out)
	}
	if !strings.Contains(out, "spec77") || !strings.Contains(out, "gloop") {
		t.Errorf("rank output:\n%s", out)
	}
}

func TestSourceFilters(t *testing.T) {
	out := drive(t, "shear", "source loops")
	if strings.Contains(out, "print") {
		t.Errorf("filtered source leaked non-loops:\n%s", out)
	}
}

func TestUnknownCommand(t *testing.T) {
	out := drive(t, "pneoss", "frobnicate")
	if !strings.Contains(out, "unknown command") {
		t.Errorf("output:\n%s", out)
	}
}

func TestHelpAndUnits(t *testing.T) {
	out := drive(t, "spec77", "help", "units", "callgraph", "history", "legend")
	for _, want := range []string{"commands:", "program spec77", "calls gloop", "proven | pending"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestTransformationParsingErrors(t *testing.T) {
	for _, bad := range []string{
		"apply parallelize",    // missing loop
		"apply parallelize 99", // out of range
		"apply unroll 1",       // missing factor
		"apply nosuch 1",       // unknown xform
		"mark x reject",        // bad id
		"assert n",             // malformed
	} {
		out := drive(t, "pneoss", bad)
		if !strings.Contains(out, "error") {
			t.Errorf("%q should error, got:\n%s", bad, out)
		}
	}
}

func TestFullCommandSurface(t *testing.T) {
	out := drive(t, "spec77",
		"units",
		"unit gloop",
		"loops",
		"unit spec77",
		"window",
		"source",
		"source parallel",
		"loop 2",
		"deps",
		"deps true anti output",
		"deps hideprivate",
		"vars",
		"classify t private",
		"compose",
		"quit",
	)
	for _, want := range []string{"» program spec77", "ParaScope Editor", "every call site agrees"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
}

func TestApplyEveryTransformation(t *testing.T) {
	// A program shaped so each transformation has a legal target.
	w := workloads.ByName("shear")
	s, err := w.Session()
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	r := New(s, &out)
	cmds := []string{
		"check interchange 3",
		"apply interchange 3",
		"check reverse 1",
		"apply reverse 1",
		"apply stripmine 5 8",
		"check unroll 2 2",
		"apply parallelize 1",
		"apply serialize 1",
		"check skew 1 1",
		"check distribute 1",
		"check peel 2",
		"check privatize 5 s",
		"check expand 5 s",
		"check reductions 5",
		"check normalize 2",
	}
	for _, cmd := range cmds {
		if err := r.Execute(cmd); err != nil {
			// check/apply legitimately report unsafe targets; only
			// parse-level failures are bugs.
			if strings.Contains(err.Error(), "unknown") || strings.Contains(err.Error(), "usage") {
				t.Errorf("%q: %v", cmd, err)
			}
		}
	}
	if !strings.Contains(out.String(), "applicable") {
		t.Errorf("no verdicts produced:\n%s", out.String())
	}
}

func TestEndpointsCommand(t *testing.T) {
	out := drive(t, "spec77",
		"loop 2",
		"deps carried on u",
	)
	// Grab a dep id from the istep loop (call-based deps on u).
	var id string
	for _, line := range strings.Split(out, "\n") {
		f := strings.Fields(line)
		if len(f) > 2 && (f[1] == "true" || f[1] == "anti" || f[1] == "output") {
			id = f[0]
			break
		}
	}
	if id == "" {
		t.Skipf("no dep id found:\n%s", out)
	}
	out2 := drive(t, "spec77", "loop 2", "endpoints "+id)
	if !strings.Contains(out2, "source:") || !strings.Contains(out2, "in gloop") {
		t.Errorf("endpoints output:\n%s", out2)
	}
}

func TestInlineCommand(t *testing.T) {
	out := drive(t, "spec77",
		"loop 2",
		"source contains call",
	)
	// Find the gloop call's statement id from the pane.
	var id string
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "call gloop") {
			id = strings.Fields(line)[0]
			break
		}
	}
	if id == "" {
		t.Fatalf("no call statement found:\n%s", out)
	}
	out2 := drive(t, "spec77",
		"check inline "+id,
		"apply inline "+id,
		"loops",
	)
	if !strings.Contains(out2, "applied inline") {
		t.Errorf("inline flow failed:\n%s", out2)
	}
	if !strings.Contains(out2, "do k") {
		t.Errorf("callee loop not exposed after inlining:\n%s", out2)
	}
}

func TestDeleteAndEditCommands(t *testing.T) {
	out := drive(t, "pneoss", "source contains print")
	var id string
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "print") {
			id = strings.Fields(line)[0]
			break
		}
	}
	if id == "" {
		t.Fatalf("no print stmt:\n%s", out)
	}
	out2 := drive(t, "pneoss",
		"edit "+id+" print *, s, cs(1)",
		"delete "+id,
		"undo",
	)
	if strings.Contains(out2, "error") {
		t.Errorf("edit/delete/undo flow:\n%s", out2)
	}
}

func TestSetAnalysisToggles(t *testing.T) {
	// spec77's call loops need sections: toggling them off must make
	// parallelization fail, toggling back on restore it.
	out := drive(t, "spec77",
		"check parallelize 1",
		"set sections off",
		"check parallelize 1",
		"set sections on",
		"check parallelize 1",
	)
	occurrences := strings.Count(out, "safe: yes")
	if occurrences != 2 {
		t.Errorf("want 2 safe verdicts (before and after restore), got %d:\n%s", occurrences, out)
	}
	if !strings.Contains(out, "safe: no") {
		t.Errorf("sections-off verdict should be blocked:\n%s", out)
	}
	bad := drive(t, "spec77", "set nosuch on", "set sections maybe")
	if strings.Count(bad, "error") != 2 {
		t.Errorf("invalid set forms should error:\n%s", bad)
	}
}

func TestPlanVerbs(t *testing.T) {
	out := drive(t, "direct",
		"plan nointerp", "plans", "apply-plan 1", "save", "undo")
	if !strings.Contains(out, "accept a plan with: apply-plan") {
		t.Errorf("plan output:\n%s", out)
	}
	if !strings.Contains(out, "applied plan ") {
		t.Errorf("apply-plan output:\n%s", out)
	}
	if !strings.Contains(out, "doall") {
		t.Errorf("accepted plan did not parallelize anything:\n%s", out)
	}
	// plans reprints, so the ranked header appears at least twice.
	if strings.Count(out, "1. plan ") < 2 {
		t.Errorf("plans did not reprint the ranking:\n%s", out)
	}
}

func TestApplyPlanStale(t *testing.T) {
	out := drive(t, "direct",
		"plan nointerp", "loop 1", "apply parallelize 1", "apply-plan 1")
	if !strings.Contains(out, "stale") {
		t.Errorf("stale apply-plan not rejected:\n%s", out)
	}
}
