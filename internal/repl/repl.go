// Package repl implements the text-mode command interface of the
// ParaScope Editor: the interactive surface cmd/ped exposes. Every
// command operates on a core.Session and writes its result to the
// attached writer, so scripted sessions and tests can drive the
// editor exactly as a user would.
package repl

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"parascope/internal/core"
	"parascope/internal/dep"
	"parascope/internal/fortran"
	"parascope/internal/perf"
	"parascope/internal/planner"
	"parascope/internal/view"
	"parascope/internal/workloads"
	"parascope/internal/xform"
)

// REPL is one interactive editor instance.
type REPL struct {
	Session *core.Session
	Out     io.Writer
	// Done is set by the quit command.
	Done bool
	// Errors counts failed commands, so batch drivers can propagate
	// a non-zero exit code.
	Errors int
	// Plans holds the last `plan` result so `apply-plan <n>` can
	// replay a chosen sequence.
	Plans []planner.Plan
}

// New creates a REPL over an open session.
func New(s *core.Session, out io.Writer) *REPL {
	return &REPL{Session: s, Out: out}
}

// Run processes commands from r until EOF or quit.
func (r *REPL) Run(in io.Reader) error {
	sc := bufio.NewScanner(in)
	for !r.Done && sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if err := r.Execute(line); err != nil {
			r.Errors++
			fmt.Fprintf(r.Out, "error: %v\n", err)
		}
	}
	return sc.Err()
}

// Execute runs one command line.
func (r *REPL) Execute(line string) error {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return nil
	}
	cmd, args := strings.ToLower(fields[0]), fields[1:]
	s := r.Session
	switch cmd {
	case "help":
		fmt.Fprint(r.Out, helpText)
	case "quit", "exit":
		r.Done = true
	case "units":
		for _, u := range s.File.Units {
			marker := "  "
			if u == s.CurrentUnit() {
				marker = "» "
			}
			fmt.Fprintf(r.Out, "%s%s %s\n", marker, u.Kind, u.Name)
		}
	case "unit":
		if len(args) != 1 {
			return fmt.Errorf("usage: unit <name>")
		}
		return s.SelectUnit(args[0])
	case "callgraph":
		fmt.Fprint(r.Out, s.Prog.Graph.String())
	case "loops":
		for i, l := range s.Loops() {
			mark := " "
			if l.Do.Parallel {
				mark = "P"
			}
			fmt.Fprintf(r.Out, "%3d %s depth %d line %d: %s\n",
				i+1, mark, l.Depth, l.Do.Line(), fortran.StmtText(l.Do))
		}
	case "loop":
		n, err := r.argInt(args, 0, "loop number")
		if err != nil {
			return err
		}
		if err := s.SelectLoop(n); err != nil {
			return err
		}
		fmt.Fprint(r.Out, view.DepSummary(s), "\n")
	case "window":
		fmt.Fprint(r.Out, view.Window(s, nil, core.DepFilter{}))
	case "source":
		var filter view.SourceFilter
		if len(args) > 0 {
			switch args[0] {
			case "loops":
				filter = view.FilterLoopsOnly
			case "parallel":
				filter = view.FilterParallel
			case "contains":
				if len(args) < 2 {
					return fmt.Errorf("usage: source contains <text>")
				}
				filter = view.FilterContains(strings.Join(args[1:], " "))
			default:
				return fmt.Errorf("unknown source filter %q", args[0])
			}
		}
		fmt.Fprint(r.Out, view.SourcePane(s, filter))
	case "deps":
		f, err := parseDepFilter(args)
		if err != nil {
			return err
		}
		fmt.Fprint(r.Out, view.DepPane(s, f))
	case "vars":
		fmt.Fprint(r.Out, view.VarPane(s))
	case "mark":
		if len(args) != 2 {
			return fmt.Errorf("usage: mark <id> accept|reject|pending")
		}
		id, err := strconv.Atoi(args[0])
		if err != nil {
			return fmt.Errorf("bad dependence id %q", args[0])
		}
		var m dep.Mark
		switch args[1] {
		case "accept":
			m = dep.MarkAccepted
		case "reject":
			m = dep.MarkRejected
		case "pending":
			m = dep.MarkPending
		default:
			return fmt.Errorf("unknown mark %q", args[1])
		}
		return s.MarkDep(id, m)
	case "assert":
		if len(args) != 3 {
			return fmt.Errorf("usage: assert <var> <rel> <value>")
		}
		return s.Assert(strings.Join(args, " "))
	case "classify":
		if len(args) != 2 {
			return fmt.Errorf("usage: classify <var> shared|private|reduction")
		}
		var c core.VarClass
		switch args[1] {
		case "shared":
			c = core.ClassShared
		case "private":
			c = core.ClassPrivate
		case "reduction":
			c = core.ClassReduction
		default:
			return fmt.Errorf("unknown class %q", args[1])
		}
		return s.Classify(args[0], c)
	case "check", "apply":
		t, err := r.parseTransformation(args)
		if err != nil {
			return err
		}
		if cmd == "check" {
			fmt.Fprintf(r.Out, "%s: %s\n", t.Name(), s.Check(t))
			return nil
		}
		v, err := s.Transform(t)
		if err != nil {
			return err
		}
		fmt.Fprintf(r.Out, "applied %s: %s\n", t.Name(), v)
	case "edit":
		if len(args) < 2 {
			return fmt.Errorf("usage: edit <stmt-id> <new text>")
		}
		id, err := strconv.Atoi(args[0])
		if err != nil {
			return fmt.Errorf("bad statement id %q", args[0])
		}
		if err := s.EditStmt(id, strings.Join(args[1:], " ")); err != nil {
			return err
		}
		r.printReanalysis(s)
	case "delete":
		id, err := r.argInt(args, 0, "statement id")
		if err != nil {
			return err
		}
		if err := s.DeleteStmt(id); err != nil {
			return err
		}
		r.printReanalysis(s)
	case "undo":
		return s.Undo()
	case "perf":
		fmt.Fprint(r.Out, s.State().Est.Report())
	case "rank":
		est := perf.New(s.File, perf.DefaultParams())
		for i, row := range est.ProcedureRank() {
			fmt.Fprintf(r.Out, "%2d. %-12s %.0f\n", i+1, row.Unit.Name, row.Cost)
		}
	case "next":
		l, ok := s.NextByPerformance()
		if !ok {
			fmt.Fprintln(r.Out, "every loop is already parallel")
			return nil
		}
		fmt.Fprintf(r.Out, "selected do %s (line %d)\n", l.Header().Name, l.Do.Line())
	case "auto":
		n := s.AutoParallelize()
		fmt.Fprintf(r.Out, "parallelized %d loops\n", n)
	case "run":
		req, err := core.ParseExecRequest(args)
		if err != nil {
			return err
		}
		if w := workloads.ByName(strings.TrimSuffix(s.File.Path, ".f")); w != nil {
			req.Input = w.Input
		}
		res, err := s.Exec(context.Background(), req)
		if err != nil {
			return err
		}
		fmt.Fprint(r.Out, res.Output)
		if res.FallbackReason != "" {
			fmt.Fprintf(r.Out, "[fell back to interpreter: %s]\n", res.FallbackReason)
		}
		if res.Backend == core.BackendCompile {
			fmt.Fprintf(r.Out, "[compiled: %s]\n", res.Wall.Round(time.Microsecond))
		}
	case "set":
		if len(args) != 2 {
			return fmt.Errorf("usage: set sections|constants|ranges|inputdeps|interproc on|off")
		}
		on := args[1] == "on"
		if !on && args[1] != "off" {
			return fmt.Errorf("value must be on or off")
		}
		switch args[0] {
		case "sections":
			s.Opts.UseSections = on
		case "constants":
			s.Opts.UseConstants = on
		case "ranges":
			s.Opts.UseRanges = on
		case "inputdeps":
			s.Opts.InputDeps = on
		case "interproc":
			s.Conservative = !on
		default:
			return fmt.Errorf("unknown option %q", args[0])
		}
		s.AnalyzeAll()
		fmt.Fprintf(r.Out, "%s %s; program reanalyzed\n", args[0], args[1])
	case "advise":
		sugs := s.Advise()
		if len(sugs) == 0 {
			fmt.Fprintln(r.Out, "select a loop first")
			return nil
		}
		for i, sg := range sugs {
			fmt.Fprintf(r.Out, "%d. %s\n", i+1, sg)
		}
	case "endpoints":
		id, err := r.argInt(args, 0, "dependence id")
		if err != nil {
			return err
		}
		src, dst, err := s.DepEndpoints(id)
		if err != nil {
			return err
		}
		printEp := func(label string, ep core.Endpoint) {
			fmt.Fprintf(r.Out, "%s: line %d: %s\n", label, ep.Line, ep.Text)
			for _, cr := range ep.CalleeRefs {
				fmt.Fprintf(r.Out, "    in %s, line %d: %s\n", cr.Unit.Name, cr.Line, cr.Text)
			}
		}
		printEp("source", src)
		printEp("sink  ", dst)
	case "compose":
		ms := s.Prog.CheckComposition()
		if len(ms) == 0 {
			fmt.Fprintln(r.Out, "every call site agrees with its callee")
			return nil
		}
		for _, m := range ms {
			fmt.Fprintln(r.Out, m)
		}
	case "plan":
		opts, err := parsePlanArgs(args)
		if err != nil {
			return err
		}
		res, err := planner.Search(context.Background(), s.File.Path, s.Save(),
			s.CurrentUnit().Name, opts, nil)
		if err != nil {
			return err
		}
		r.Plans = res.Plans
		fmt.Fprint(r.Out, res.Format())
	case "plans":
		if len(r.Plans) == 0 {
			fmt.Fprintln(r.Out, "no plans: run plan first")
			return nil
		}
		for i := range r.Plans {
			fmt.Fprint(r.Out, r.Plans[i].Format())
		}
	case "apply-plan":
		n := 1
		if len(args) > 0 {
			var err error
			if n, err = r.argInt(args, 0, "plan rank"); err != nil {
				return err
			}
		}
		if n < 1 || n > len(r.Plans) {
			return fmt.Errorf("no plan %d (have %d; run plan first)", n, len(r.Plans))
		}
		p := r.Plans[n-1]
		if h := planner.SrcHash(s.Save()); h != p.BaseHash {
			return fmt.Errorf("stale plan %s: program changed since the plan was computed", p.ID)
		}
		for i, st := range p.Steps {
			if err := r.Execute(st.Line); err != nil {
				return fmt.Errorf("apply-plan step %d (%q): %v", i+1, st.Line, err)
			}
			if st.Hash != "" {
				if h := planner.SrcHash(s.Save()); h != st.Hash {
					return fmt.Errorf("apply-plan diverged after step %d (%q); undo to roll back", i+1, st.Line)
				}
			}
		}
		fmt.Fprintf(r.Out, "applied plan %s: %d step(s), est %.1fx\n", p.ID, len(p.Steps), p.EstSpeedup)
	case "history":
		for _, h := range s.History {
			fmt.Fprintln(r.Out, h)
		}
	case "save":
		fmt.Fprint(r.Out, s.Save())
	case "legend":
		fmt.Fprint(r.Out, view.Legend())
	default:
		return fmt.Errorf("unknown command %q (try help)", cmd)
	}
	return nil
}

// printReanalysis reports how the last mutation's reanalysis ran —
// the interactive-latency feedback the paper's edit loop promises.
func (r *REPL) printReanalysis(s *core.Session) {
	la := s.LastReanalysis
	fmt.Fprintf(r.Out, "reanalyzed in %s (%s)\n", la.Duration.Round(time.Microsecond), la.Mode)
}

func (r *REPL) argInt(args []string, i int, what string) (int, error) {
	if i >= len(args) {
		return 0, fmt.Errorf("missing %s", what)
	}
	n, err := strconv.Atoi(args[i])
	if err != nil {
		return 0, fmt.Errorf("bad %s %q", what, args[i])
	}
	return n, nil
}

// parseTransformation resolves transformation command arguments via
// the shared grammar in core, so the REPL, journal replay, and the
// speculative planner accept exactly the same step lines.
func (r *REPL) parseTransformation(args []string) (xform.Transformation, error) {
	return core.ParseTransformation(r.Session, args)
}

// parsePlanArgs parses the optional key=value budget arguments of the
// plan command: beam=N depth=N worlds=N ms=N top=N nointerp compiled.
func parsePlanArgs(args []string) (planner.Options, error) {
	opts := planner.Options{Interp: true}
	for _, a := range args {
		if a == "nointerp" {
			opts.Interp = false
			continue
		}
		if a == "compiled" {
			opts.Compiled = true
			continue
		}
		k, v, ok := strings.Cut(a, "=")
		if !ok {
			return opts, fmt.Errorf("bad plan option %q (want beam=N depth=N worlds=N ms=N top=N nointerp compiled)", a)
		}
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			return opts, fmt.Errorf("bad plan option value %q", a)
		}
		switch k {
		case "beam":
			opts.BeamWidth = n
		case "depth":
			opts.MaxDepth = n
		case "worlds":
			opts.MaxWorlds = n
		case "ms":
			opts.Timeout = time.Duration(n) * time.Millisecond
		case "top":
			opts.TopPlans = n
		default:
			return opts, fmt.Errorf("unknown plan option %q", k)
		}
	}
	return opts, nil
}

func parseDepFilter(args []string) (core.DepFilter, error) {
	var f core.DepFilter
	for i := 0; i < len(args); i++ {
		switch args[i] {
		case "carried":
			f.CarriedOnly = true
		case "hiderejected":
			f.HideRejected = true
		case "hideprivate":
			f.HidePrivate = true
		case "true":
			f.Classes = append(f.Classes, dep.ClassFlow)
		case "anti":
			f.Classes = append(f.Classes, dep.ClassAnti)
		case "output":
			f.Classes = append(f.Classes, dep.ClassOutput)
		case "control":
			f.Classes = append(f.Classes, dep.ClassControl)
		case "on":
			if i+1 >= len(args) {
				return f, fmt.Errorf("usage: deps on <var>")
			}
			i++
			f.Sym = strings.ToLower(args[i])
		default:
			return f, fmt.Errorf("unknown deps filter %q", args[i])
		}
	}
	return f, nil
}

// HelpText returns the command summary (also served by pedd for
// artifact-backed remote sessions).
func HelpText() string { return helpText }

const helpText = `commands:
  units | unit <name> | callgraph        program navigation
  loops | loop <n> | next | window       loop selection and display
  source [loops|parallel|contains <t>]   source pane with view filters
  deps [carried|true|anti|output|on <v>|hiderejected|hideprivate]
  vars | legend                          variable pane
  mark <id> accept|reject|pending        dependence marking
  endpoints <id>                         follow a dependence into callees
  advise                                 guidance for the selected loop
  assert <var> <rel> <value>             user assertion (e.g. assert n .ge. 100)
  classify <var> shared|private|reduction
  check <xform> <loop> [args]            power-steering diagnosis
  apply <xform> <loop> [args]            apply a transformation
    xforms: parallelize serialize interchange reverse distribute
            fuse skew stripmine unroll unrolljam peel privatize
            privatizearray expand reductions normalize inline <stmt-id>
  compose                                cross-procedure parameter checks
  edit <stmt-id> <text> | delete <id> | undo
  perf | rank | auto                     performance navigation
  plan [beam=N depth=N worlds=N ms=N top=N nointerp compiled]
                                         speculative search: rank auto-
                                         parallelization plans in forked worlds
  plans                                  reshow the last plan result
  apply-plan [n]                         accept plan n (default 1)
  set <analysis> on|off                  toggle sections constants ranges
                                         inputdeps interproc (ablations)
  run [workers] [backend=interp|compile] [fallback] execute the program
                                  (fallback: degrade compile declines to interp)
  history | save | quit
`
