// Package repl implements the text-mode command interface of the
// ParaScope Editor: the interactive surface cmd/ped exposes. Every
// command operates on a core.Session and writes its result to the
// attached writer, so scripted sessions and tests can drive the
// editor exactly as a user would.
package repl

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"parascope/internal/core"
	"parascope/internal/dep"
	"parascope/internal/fortran"
	"parascope/internal/interp"
	"parascope/internal/perf"
	"parascope/internal/view"
	"parascope/internal/workloads"
	"parascope/internal/xform"
)

// REPL is one interactive editor instance.
type REPL struct {
	Session *core.Session
	Out     io.Writer
	// Done is set by the quit command.
	Done bool
	// Errors counts failed commands, so batch drivers can propagate
	// a non-zero exit code.
	Errors int
}

// New creates a REPL over an open session.
func New(s *core.Session, out io.Writer) *REPL {
	return &REPL{Session: s, Out: out}
}

// Run processes commands from r until EOF or quit.
func (r *REPL) Run(in io.Reader) error {
	sc := bufio.NewScanner(in)
	for !r.Done && sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if err := r.Execute(line); err != nil {
			r.Errors++
			fmt.Fprintf(r.Out, "error: %v\n", err)
		}
	}
	return sc.Err()
}

// Execute runs one command line.
func (r *REPL) Execute(line string) error {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return nil
	}
	cmd, args := strings.ToLower(fields[0]), fields[1:]
	s := r.Session
	switch cmd {
	case "help":
		fmt.Fprint(r.Out, helpText)
	case "quit", "exit":
		r.Done = true
	case "units":
		for _, u := range s.File.Units {
			marker := "  "
			if u == s.CurrentUnit() {
				marker = "» "
			}
			fmt.Fprintf(r.Out, "%s%s %s\n", marker, u.Kind, u.Name)
		}
	case "unit":
		if len(args) != 1 {
			return fmt.Errorf("usage: unit <name>")
		}
		return s.SelectUnit(args[0])
	case "callgraph":
		fmt.Fprint(r.Out, s.Prog.Graph.String())
	case "loops":
		for i, l := range s.Loops() {
			mark := " "
			if l.Do.Parallel {
				mark = "P"
			}
			fmt.Fprintf(r.Out, "%3d %s depth %d line %d: %s\n",
				i+1, mark, l.Depth, l.Do.Line(), fortran.StmtText(l.Do))
		}
	case "loop":
		n, err := r.argInt(args, 0, "loop number")
		if err != nil {
			return err
		}
		if err := s.SelectLoop(n); err != nil {
			return err
		}
		fmt.Fprint(r.Out, view.DepSummary(s), "\n")
	case "window":
		fmt.Fprint(r.Out, view.Window(s, nil, core.DepFilter{}))
	case "source":
		var filter view.SourceFilter
		if len(args) > 0 {
			switch args[0] {
			case "loops":
				filter = view.FilterLoopsOnly
			case "parallel":
				filter = view.FilterParallel
			case "contains":
				if len(args) < 2 {
					return fmt.Errorf("usage: source contains <text>")
				}
				filter = view.FilterContains(strings.Join(args[1:], " "))
			default:
				return fmt.Errorf("unknown source filter %q", args[0])
			}
		}
		fmt.Fprint(r.Out, view.SourcePane(s, filter))
	case "deps":
		f, err := parseDepFilter(args)
		if err != nil {
			return err
		}
		fmt.Fprint(r.Out, view.DepPane(s, f))
	case "vars":
		fmt.Fprint(r.Out, view.VarPane(s))
	case "mark":
		if len(args) != 2 {
			return fmt.Errorf("usage: mark <id> accept|reject|pending")
		}
		id, err := strconv.Atoi(args[0])
		if err != nil {
			return fmt.Errorf("bad dependence id %q", args[0])
		}
		var m dep.Mark
		switch args[1] {
		case "accept":
			m = dep.MarkAccepted
		case "reject":
			m = dep.MarkRejected
		case "pending":
			m = dep.MarkPending
		default:
			return fmt.Errorf("unknown mark %q", args[1])
		}
		return s.MarkDep(id, m)
	case "assert":
		if len(args) != 3 {
			return fmt.Errorf("usage: assert <var> <rel> <value>")
		}
		return s.Assert(strings.Join(args, " "))
	case "classify":
		if len(args) != 2 {
			return fmt.Errorf("usage: classify <var> shared|private|reduction")
		}
		var c core.VarClass
		switch args[1] {
		case "shared":
			c = core.ClassShared
		case "private":
			c = core.ClassPrivate
		case "reduction":
			c = core.ClassReduction
		default:
			return fmt.Errorf("unknown class %q", args[1])
		}
		return s.Classify(args[0], c)
	case "check", "apply":
		t, err := r.parseTransformation(args)
		if err != nil {
			return err
		}
		if cmd == "check" {
			fmt.Fprintf(r.Out, "%s: %s\n", t.Name(), s.Check(t))
			return nil
		}
		v, err := s.Transform(t)
		if err != nil {
			return err
		}
		fmt.Fprintf(r.Out, "applied %s: %s\n", t.Name(), v)
	case "edit":
		if len(args) < 2 {
			return fmt.Errorf("usage: edit <stmt-id> <new text>")
		}
		id, err := strconv.Atoi(args[0])
		if err != nil {
			return fmt.Errorf("bad statement id %q", args[0])
		}
		return s.EditStmt(id, strings.Join(args[1:], " "))
	case "delete":
		id, err := r.argInt(args, 0, "statement id")
		if err != nil {
			return err
		}
		return s.DeleteStmt(id)
	case "undo":
		return s.Undo()
	case "perf":
		fmt.Fprint(r.Out, s.State().Est.Report())
	case "rank":
		est := perf.New(s.File, perf.DefaultParams())
		for i, row := range est.ProcedureRank() {
			fmt.Fprintf(r.Out, "%2d. %-12s %.0f\n", i+1, row.Unit.Name, row.Cost)
		}
	case "next":
		l, ok := s.NextByPerformance()
		if !ok {
			fmt.Fprintln(r.Out, "every loop is already parallel")
			return nil
		}
		fmt.Fprintf(r.Out, "selected do %s (line %d)\n", l.Header().Name, l.Do.Line())
	case "auto":
		n := s.AutoParallelize()
		fmt.Fprintf(r.Out, "parallelized %d loops\n", n)
	case "run":
		workers := 1
		if len(args) > 0 {
			w, err := strconv.Atoi(args[0])
			if err != nil {
				return fmt.Errorf("bad worker count %q", args[0])
			}
			workers = w
		}
		var input []float64
		if w := workloads.ByName(strings.TrimSuffix(s.File.Path, ".f")); w != nil {
			input = w.Input
		}
		out, err := interp.RunCapture(s.File, workers, input)
		if err != nil {
			return err
		}
		fmt.Fprint(r.Out, out)
	case "set":
		if len(args) != 2 {
			return fmt.Errorf("usage: set sections|constants|ranges|inputdeps|interproc on|off")
		}
		on := args[1] == "on"
		if !on && args[1] != "off" {
			return fmt.Errorf("value must be on or off")
		}
		switch args[0] {
		case "sections":
			s.Opts.UseSections = on
		case "constants":
			s.Opts.UseConstants = on
		case "ranges":
			s.Opts.UseRanges = on
		case "inputdeps":
			s.Opts.InputDeps = on
		case "interproc":
			s.Conservative = !on
		default:
			return fmt.Errorf("unknown option %q", args[0])
		}
		s.AnalyzeAll()
		fmt.Fprintf(r.Out, "%s %s; program reanalyzed\n", args[0], args[1])
	case "advise":
		sugs := s.Advise()
		if len(sugs) == 0 {
			fmt.Fprintln(r.Out, "select a loop first")
			return nil
		}
		for i, sg := range sugs {
			fmt.Fprintf(r.Out, "%d. %s\n", i+1, sg)
		}
	case "endpoints":
		id, err := r.argInt(args, 0, "dependence id")
		if err != nil {
			return err
		}
		src, dst, err := s.DepEndpoints(id)
		if err != nil {
			return err
		}
		printEp := func(label string, ep core.Endpoint) {
			fmt.Fprintf(r.Out, "%s: line %d: %s\n", label, ep.Line, ep.Text)
			for _, cr := range ep.CalleeRefs {
				fmt.Fprintf(r.Out, "    in %s, line %d: %s\n", cr.Unit.Name, cr.Line, cr.Text)
			}
		}
		printEp("source", src)
		printEp("sink  ", dst)
	case "compose":
		ms := s.Prog.CheckComposition()
		if len(ms) == 0 {
			fmt.Fprintln(r.Out, "every call site agrees with its callee")
			return nil
		}
		for _, m := range ms {
			fmt.Fprintln(r.Out, m)
		}
	case "history":
		for _, h := range s.History {
			fmt.Fprintln(r.Out, h)
		}
	case "save":
		fmt.Fprint(r.Out, s.Save())
	case "legend":
		fmt.Fprint(r.Out, view.Legend())
	default:
		return fmt.Errorf("unknown command %q (try help)", cmd)
	}
	return nil
}

func (r *REPL) argInt(args []string, i int, what string) (int, error) {
	if i >= len(args) {
		return 0, fmt.Errorf("missing %s", what)
	}
	n, err := strconv.Atoi(args[i])
	if err != nil {
		return 0, fmt.Errorf("bad %s %q", what, args[i])
	}
	return n, nil
}

// loopArg resolves "loop <n>" style references to the DO statement.
func (r *REPL) loopArg(args []string, i int) (*fortran.DoStmt, error) {
	n, err := r.argInt(args, i, "loop number")
	if err != nil {
		return nil, err
	}
	loops := r.Session.Loops()
	if n < 1 || n > len(loops) {
		return nil, fmt.Errorf("loop %d out of range (1..%d)", n, len(loops))
	}
	return loops[n-1].Do, nil
}

func (r *REPL) parseTransformation(args []string) (xform.Transformation, error) {
	if len(args) == 0 {
		return nil, fmt.Errorf("usage: apply <transformation> <loop> [args]")
	}
	name := strings.ToLower(args[0])
	rest := args[1:]
	switch name {
	case "parallelize":
		do, err := r.loopArg(rest, 0)
		if err != nil {
			return nil, err
		}
		return xform.Parallelize{Do: do}, nil
	case "serialize":
		do, err := r.loopArg(rest, 0)
		if err != nil {
			return nil, err
		}
		return xform.Serialize{Do: do}, nil
	case "interchange":
		do, err := r.loopArg(rest, 0)
		if err != nil {
			return nil, err
		}
		return xform.Interchange{Outer: do}, nil
	case "reverse":
		do, err := r.loopArg(rest, 0)
		if err != nil {
			return nil, err
		}
		return xform.Reverse{Do: do}, nil
	case "distribute":
		do, err := r.loopArg(rest, 0)
		if err != nil {
			return nil, err
		}
		return xform.Distribute{Do: do}, nil
	case "fuse":
		first, err := r.loopArg(rest, 0)
		if err != nil {
			return nil, err
		}
		second, err := r.loopArg(rest, 1)
		if err != nil {
			return nil, err
		}
		return xform.Fuse{First: first, Second: second}, nil
	case "skew":
		do, err := r.loopArg(rest, 0)
		if err != nil {
			return nil, err
		}
		f, err := r.argInt(rest, 1, "skew factor")
		if err != nil {
			return nil, err
		}
		return xform.Skew{Outer: do, Factor: int64(f)}, nil
	case "stripmine", "strip-mine":
		do, err := r.loopArg(rest, 0)
		if err != nil {
			return nil, err
		}
		size, err := r.argInt(rest, 1, "strip size")
		if err != nil {
			return nil, err
		}
		return xform.StripMine{Do: do, Size: int64(size)}, nil
	case "unroll":
		do, err := r.loopArg(rest, 0)
		if err != nil {
			return nil, err
		}
		f, err := r.argInt(rest, 1, "unroll factor")
		if err != nil {
			return nil, err
		}
		return xform.Unroll{Do: do, Factor: int64(f)}, nil
	case "peel":
		do, err := r.loopArg(rest, 0)
		if err != nil {
			return nil, err
		}
		return xform.Peel{Do: do}, nil
	case "privatize":
		do, err := r.loopArg(rest, 0)
		if err != nil {
			return nil, err
		}
		sym, err := r.varArg(rest, 1)
		if err != nil {
			return nil, err
		}
		return xform.Privatize{Do: do, Sym: sym}, nil
	case "privatizearray", "privatize-array":
		do, err := r.loopArg(rest, 0)
		if err != nil {
			return nil, err
		}
		sym, err := r.varArg(rest, 1)
		if err != nil {
			return nil, err
		}
		return xform.PrivatizeArray{Do: do, Sym: sym}, nil
	case "expand":
		do, err := r.loopArg(rest, 0)
		if err != nil {
			return nil, err
		}
		sym, err := r.varArg(rest, 1)
		if err != nil {
			return nil, err
		}
		return xform.ScalarExpand{Do: do, Sym: sym}, nil
	case "reductions":
		do, err := r.loopArg(rest, 0)
		if err != nil {
			return nil, err
		}
		return xform.RecognizeReductions{Do: do}, nil
	case "normalize":
		do, err := r.loopArg(rest, 0)
		if err != nil {
			return nil, err
		}
		return xform.Normalize{Do: do}, nil
	case "unrolljam", "unroll-and-jam":
		do, err := r.loopArg(rest, 0)
		if err != nil {
			return nil, err
		}
		f, err := r.argInt(rest, 1, "unroll factor")
		if err != nil {
			return nil, err
		}
		return xform.UnrollJam{Outer: do, Factor: int64(f)}, nil
	case "inline":
		id, err := r.argInt(rest, 0, "statement id")
		if err != nil {
			return nil, err
		}
		st := r.Session.File.StmtByID(id)
		call, ok := st.(*fortran.CallStmt)
		if !ok {
			return nil, fmt.Errorf("statement %d is not a CALL", id)
		}
		return xform.Inline{Call: call}, nil
	}
	return nil, fmt.Errorf("unknown transformation %q", name)
}

func (r *REPL) varArg(args []string, i int) (*fortran.Symbol, error) {
	if i >= len(args) {
		return nil, fmt.Errorf("missing variable name")
	}
	sym := r.Session.CurrentUnit().Lookup(strings.ToLower(args[i]))
	if sym == nil {
		return nil, fmt.Errorf("no variable %q", args[i])
	}
	return sym, nil
}

func parseDepFilter(args []string) (core.DepFilter, error) {
	var f core.DepFilter
	for i := 0; i < len(args); i++ {
		switch args[i] {
		case "carried":
			f.CarriedOnly = true
		case "hiderejected":
			f.HideRejected = true
		case "hideprivate":
			f.HidePrivate = true
		case "true":
			f.Classes = append(f.Classes, dep.ClassFlow)
		case "anti":
			f.Classes = append(f.Classes, dep.ClassAnti)
		case "output":
			f.Classes = append(f.Classes, dep.ClassOutput)
		case "control":
			f.Classes = append(f.Classes, dep.ClassControl)
		case "on":
			if i+1 >= len(args) {
				return f, fmt.Errorf("usage: deps on <var>")
			}
			i++
			f.Sym = strings.ToLower(args[i])
		default:
			return f, fmt.Errorf("unknown deps filter %q", args[i])
		}
	}
	return f, nil
}

// HelpText returns the command summary (also served by pedd for
// artifact-backed remote sessions).
func HelpText() string { return helpText }

const helpText = `commands:
  units | unit <name> | callgraph        program navigation
  loops | loop <n> | next | window       loop selection and display
  source [loops|parallel|contains <t>]   source pane with view filters
  deps [carried|true|anti|output|on <v>|hiderejected|hideprivate]
  vars | legend                          variable pane
  mark <id> accept|reject|pending        dependence marking
  endpoints <id>                         follow a dependence into callees
  advise                                 guidance for the selected loop
  assert <var> <rel> <value>             user assertion (e.g. assert n .ge. 100)
  classify <var> shared|private|reduction
  check <xform> <loop> [args]            power-steering diagnosis
  apply <xform> <loop> [args]            apply a transformation
    xforms: parallelize serialize interchange reverse distribute
            fuse skew stripmine unroll unrolljam peel privatize
            privatizearray expand reductions normalize inline <stmt-id>
  compose                                cross-procedure parameter checks
  edit <stmt-id> <text> | delete <id> | undo
  perf | rank | auto                     performance navigation
  set <analysis> on|off                  toggle sections constants ranges
                                         inputdeps interproc (ablations)
  run [workers]                          execute the program
  history | save | quit
`
