// Package view renders the ParaScope Editor's book-metaphor display
// as text: the source pane with marginal analysis annotations, the
// dependence pane, the variable pane, and user-controlled view
// filtering over source lines — the window layout of Figure 1.
package view

import (
	"fmt"
	"strings"

	"parascope/internal/core"
	"parascope/internal/dep"
	"parascope/internal/fortran"
)

// SourceFilter is a view-filter predicate over source lines; lines
// whose statement fails the predicate are elided (shown as "...").
type SourceFilter func(s fortran.Stmt) bool

// FilterLoopsOnly shows only loop headers (the loop-structure view).
func FilterLoopsOnly(s fortran.Stmt) bool {
	switch s.(type) {
	case *fortran.DoStmt, *fortran.WhileStmt:
		return true
	}
	return false
}

// FilterContains shows lines whose text contains the substring.
func FilterContains(sub string) SourceFilter {
	return func(s fortran.Stmt) bool {
		return strings.Contains(fortran.StmtText(s), sub)
	}
}

// FilterParallel shows parallel loops.
func FilterParallel(s fortran.Stmt) bool {
	do, ok := s.(*fortran.DoStmt)
	return ok && do.Parallel
}

// SourcePane renders the current unit's statements with marginal
// annotations: statement ids, loop parallel/serial marks, and a "»"
// marker on the selected loop. A non-nil filter elides non-matching
// lines (progressive disclosure).
func SourcePane(s *core.Session, filter SourceFilter) string {
	var b strings.Builder
	u := s.CurrentUnit()
	fmt.Fprintf(&b, "── source: %s %s ", u.Kind, u.Name)
	b.WriteString(strings.Repeat("─", 40))
	b.WriteByte('\n')
	sel := s.SelectedLoop()
	elided := false
	var render func(body []fortran.Stmt, depth int)
	render = func(body []fortran.Stmt, depth int) {
		for _, st := range body {
			show := filter == nil || filter(st)
			if show {
				elided = false
				mark := "   "
				if do, ok := st.(*fortran.DoStmt); ok {
					mark = " s " // serial loop
					if do.Parallel {
						mark = " P "
					}
					if sel != nil && sel.Do == do {
						mark = "»" + strings.TrimLeft(mark, " ")
					}
				}
				fmt.Fprintf(&b, "%4d%s%s%s\n", st.ID(), mark,
					strings.Repeat("  ", depth), fortran.StmtText(st))
			} else if !elided {
				b.WriteString("        ...\n")
				elided = true
			}
			switch x := st.(type) {
			case *fortran.IfStmt:
				render(x.Then, depth+1)
				if len(x.Else) > 0 {
					if show {
						fmt.Fprintf(&b, "    %s%selse\n", "   ", strings.Repeat("  ", depth))
					}
					render(x.Else, depth+1)
				}
			case *fortran.DoStmt:
				render(x.Body, depth+1)
			case *fortran.WhileStmt:
				render(x.Body, depth+1)
			}
		}
	}
	render(u.Body, 0)
	return b.String()
}

// DepPane renders the dependence list for the selected loop with
// marking states — the middle pane of the Ped window.
func DepPane(s *core.Session, f core.DepFilter) string {
	var b strings.Builder
	l := s.SelectedLoop()
	b.WriteString("── dependences ")
	b.WriteString(strings.Repeat("─", 48))
	b.WriteByte('\n')
	if l == nil {
		b.WriteString("  (no loop selected)\n")
		return b.String()
	}
	deps := s.SelectionDeps(f)
	if len(deps) == 0 {
		b.WriteString("  (none — the loop is parallelizable as shown)\n")
		return b.String()
	}
	for _, d := range deps {
		carrier := "indep"
		if d.Carried() {
			carrier = fmt.Sprintf("level %d", d.Level)
		}
		fmt.Fprintf(&b, "%4d  %-7s %-10s %-12s %-8s s%d -> s%d  [%s]",
			d.ID, d.Class, d.Sym.Name, d.DirString(), carrier,
			d.Src.ID(), d.Dst.ID(), d.Mark)
		if d.Reason != "" {
			fmt.Fprintf(&b, " (%s)", d.Reason)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// VarPane renders the variable classification pane for the selected
// loop.
func VarPane(s *core.Session) string {
	var b strings.Builder
	b.WriteString("── variables ")
	b.WriteString(strings.Repeat("─", 50))
	b.WriteByte('\n')
	rows := s.VariablePane()
	if len(rows) == 0 {
		b.WriteString("  (no loop selected)\n")
		return b.String()
	}
	fmt.Fprintf(&b, "  %-10s %-10s %-9s %-7s %s\n", "name", "class", "deps", "liveout", "note")
	for _, r := range rows {
		note := ""
		if r.Sym.Kind == fortran.SymScalar && !r.Privatizable && r.Class == core.ClassShared {
			note = r.PrivReason
		}
		live := ""
		if r.LiveOut {
			live = "yes"
		}
		fmt.Fprintf(&b, "  %-10s %-10s %-9d %-7s %s\n", r.Sym.Name, r.Class, r.DepCount, live, note)
	}
	return b.String()
}

// Window renders the full three-pane Ped display (Figure 1 of the
// paper): source on top, dependences in the middle, variables below.
func Window(s *core.Session, srcFilter SourceFilter, depFilter core.DepFilter) string {
	var b strings.Builder
	b.WriteString("┌─ ParaScope Editor ")
	b.WriteString(strings.Repeat("─", 44))
	b.WriteString("┐\n")
	b.WriteString(SourcePane(s, srcFilter))
	b.WriteString(DepPane(s, depFilter))
	b.WriteString(VarPane(s))
	b.WriteString("└")
	b.WriteString(strings.Repeat("─", 63))
	b.WriteString("┘\n")
	return b.String()
}

// Legend explains the pane annotations (shown by the help command).
func Legend() string {
	return strings.Join([]string{
		"source pane:  P parallel loop, s serial loop, » selected loop",
		"dep pane:     class, variable, direction vector, carrier level,",
		"              endpoints (statement ids), marking state",
		"marking:      proven | pending | accepted | rejected",
		"var pane:     classification for the selected loop",
	}, "\n") + "\n"
}

// DepSummary renders per-class counts for a loop — the header line of
// the dependence pane.
func DepSummary(s *core.Session) string {
	l := s.SelectedLoop()
	if l == nil {
		return "no loop selected"
	}
	counts := map[dep.Class]int{}
	for _, d := range s.SelectionDeps(core.DepFilter{}) {
		counts[d.Class]++
	}
	return fmt.Sprintf("true %d, anti %d, output %d, control %d",
		counts[dep.ClassFlow], counts[dep.ClassAnti], counts[dep.ClassOutput], counts[dep.ClassControl])
}
