package view

import (
	"strings"
	"testing"

	"parascope/internal/core"
	"parascope/internal/dep"
	"parascope/internal/xform"
)

const viewSrc = `
      program main
      integer i, m
      real t, a(200), b(200)
      read(*,*) m
      do i = 1, 100
         t = a(i)*2.0
         b(i) = t + 1.0
      enddo
      do i = 1, 100
         a(i) = a(i+m)
      enddo
      end
`

func open(t *testing.T) *core.Session {
	t.Helper()
	s, err := core.Open("t.f", viewSrc)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSourcePane(t *testing.T) {
	s := open(t)
	out := SourcePane(s, nil)
	if !strings.Contains(out, "do i = 1, 100") {
		t.Errorf("missing loop header:\n%s", out)
	}
	if !strings.Contains(out, " s ") {
		t.Errorf("serial loops should be marked 's':\n%s", out)
	}
	// Parallelize loop 1 and confirm the P mark.
	if err := s.SelectLoop(1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Transform(xform.Parallelize{Do: s.SelectedLoop().Do}); err != nil {
		t.Fatal(err)
	}
	out = SourcePane(s, nil)
	if !strings.Contains(out, "P ") {
		t.Errorf("parallel loop should be marked 'P':\n%s", out)
	}
}

func TestSourceFilterLoopsOnly(t *testing.T) {
	s := open(t)
	out := SourcePane(s, FilterLoopsOnly)
	if !strings.Contains(out, "do i") {
		t.Errorf("loops missing:\n%s", out)
	}
	if strings.Contains(out, "read(*,*)") {
		t.Errorf("non-loop line leaked through the filter:\n%s", out)
	}
	if !strings.Contains(out, "...") {
		t.Errorf("elision marker missing:\n%s", out)
	}
}

func TestSourceFilterContains(t *testing.T) {
	s := open(t)
	out := SourcePane(s, FilterContains("a(i + m)"))
	if !strings.Contains(out, "a(i + m)") {
		t.Errorf("matching line missing:\n%s", out)
	}
	if strings.Contains(out, "do i") {
		t.Errorf("non-matching lines leaked:\n%s", out)
	}
}

func TestDepPane(t *testing.T) {
	s := open(t)
	if err := s.SelectLoop(2); err != nil {
		t.Fatal(err)
	}
	out := DepPane(s, core.DepFilter{CarriedOnly: true})
	if !strings.Contains(out, "symbolic") {
		t.Errorf("symbolic-blocked reason missing:\n%s", out)
	}
	if !strings.Contains(out, "pending") {
		t.Errorf("marking state missing:\n%s", out)
	}
}

func TestDepPaneEmptyForParallelizable(t *testing.T) {
	s := open(t)
	if err := s.SelectLoop(1); err != nil {
		t.Fatal(err)
	}
	out := DepPane(s, core.DepFilter{CarriedOnly: true, HidePrivate: true})
	if !strings.Contains(out, "parallelizable") {
		t.Errorf("want the 'parallelizable' hint:\n%s", out)
	}
}

func TestVarPane(t *testing.T) {
	s := open(t)
	if err := s.SelectLoop(1); err != nil {
		t.Fatal(err)
	}
	out := VarPane(s)
	for _, want := range []string{"induction", "private", "shared"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestWindowLayout(t *testing.T) {
	s := open(t)
	if err := s.SelectLoop(1); err != nil {
		t.Fatal(err)
	}
	out := Window(s, nil, core.DepFilter{})
	for _, want := range []string{"ParaScope Editor", "source:", "dependences", "variables"} {
		if !strings.Contains(out, want) {
			t.Errorf("window missing %q", want)
		}
	}
	if !strings.Contains(out, "»") {
		t.Error("selected-loop marker missing")
	}
}

func TestDepSummaryAndLegend(t *testing.T) {
	s := open(t)
	if err := s.SelectLoop(2); err != nil {
		t.Fatal(err)
	}
	sum := DepSummary(s)
	if !strings.Contains(sum, "true") || !strings.Contains(sum, "anti") {
		t.Errorf("summary = %q", sum)
	}
	if !strings.Contains(Legend(), "proven | pending") {
		t.Error("legend missing marking states")
	}
	_ = dep.ClassFlow
}
