package planner_test

import (
	"context"
	"strings"
	"testing"

	"parascope/internal/faultpoint"
	"parascope/internal/planner"
	"parascope/internal/workloads"
)

// TestWorldPanicConfined arms a one-shot panic at the world-fork
// boundary: exactly one world dies, the search completes, and the
// surviving worlds still produce plans.
func TestWorldPanicConfined(t *testing.T) {
	defer faultpoint.Reset()
	disarm := faultpoint.Arm(faultpoint.PlanFork, faultpoint.Fault{Panic: true, Times: 1})
	defer disarm()

	res := search(t, "spec77", planner.Options{Interp: false})
	if faultpoint.Fired(faultpoint.PlanFork) != 1 {
		t.Fatalf("fault fired %d times, want 1", faultpoint.Fired(faultpoint.PlanFork))
	}
	if res.WorldsDiscarded < 1 {
		t.Fatalf("panicking world was not discarded: %+v", res)
	}
	if len(res.Plans) < 2 {
		t.Fatalf("search did not survive one world panic: %d plans", len(res.Plans))
	}
}

// TestEveryWorldPanicsSearchStillCompletes is the total-loss case: a
// panic armed at scoring kills every world, and the search must
// return an empty (not failed) result.
func TestEveryWorldPanicsSearchStillCompletes(t *testing.T) {
	defer faultpoint.Reset()
	disarm := faultpoint.Arm(faultpoint.PlanScore, faultpoint.Fault{Panic: true})
	defer disarm()

	res := search(t, "direct", planner.Options{Interp: false})
	if len(res.Plans) != 0 {
		t.Fatalf("every world panicked yet %d plans survived", len(res.Plans))
	}
	if res.WorldsDiscarded == 0 {
		t.Fatal("no worlds recorded as discarded")
	}
	if res.WorldsScored != 0 {
		t.Fatalf("worlds scored after a pre-scoring panic: %d", res.WorldsScored)
	}
}

// TestWorldErrFaultDiscards: an Err fault (not a panic) at the fork
// site discards matching worlds without killing the search.
func TestWorldErrFaultDiscards(t *testing.T) {
	defer faultpoint.Reset()
	disarm := faultpoint.Arm(faultpoint.PlanFork,
		faultpoint.Fault{Match: "parallelize", Err: context.DeadlineExceeded})
	defer disarm()

	w := workloads.ByName("direct")
	res, err := planner.Search(context.Background(), w.Name+".f", w.Source, "",
		planner.Options{Interp: false}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.WorldsDiscarded == 0 {
		t.Fatal("err-faulted worlds were not discarded")
	}
	for _, p := range res.Plans {
		for _, st := range p.Steps {
			if strings.HasPrefix(st.Line, "apply parallelize") {
				t.Fatalf("a faulted parallelize step survived into plan %s", p.ID)
			}
		}
	}
}
