// Package planner implements speculative transformation search: the
// auto-parallelizing service built on top of the interactive editor.
// A live session is forked into many cheap speculative "worlds" —
// each world is an independent core.Session reparsed from the
// parent's printed source, so worlds share nothing mutable with the
// parent (print→parse fidelity makes the fork exact) — and candidate
// transformation sequences (interchange, skew, privatize, fuse,
// parallelize) are applied in the worlds concurrently under a bounded
// search budget: beam width, maximum depth, a total world-fork
// budget, and a wall-clock deadline. Worlds are scored by the static
// performance estimator's parallel-aware cost model, finalists are
// optionally validated and timed under the parallel interpreter, and
// the result is a ranked set of plans: the step sequence, a source
// diff, per-world estimated speedups, and the per-dependence
// decisions each plan assumes.
//
// A panicking world is recovered at the world boundary and discarded;
// the search, the sibling worlds, and the parent session are never
// affected. Accepting a plan is the caller's job: the step lines are
// replayed through the normal (journaled) mutation path, so
// durability, undo, and crash recovery hold for planned changes
// exactly as for hand-typed ones.
package planner

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"parascope/internal/codegen"
	"parascope/internal/core"
	"parascope/internal/dep"
	"parascope/internal/execguard"
	"parascope/internal/faultpoint"
	"parascope/internal/fortran"
	"parascope/internal/interp"
	"parascope/internal/perf"
	"parascope/internal/workloads"
)

// Search budget defaults.
const (
	DefaultBeamWidth = 4
	DefaultMaxDepth  = 4
	DefaultMaxWorlds = 64
	DefaultTopPlans  = 5
	DefaultTimeout   = 10 * time.Second
	// maxHotLoops bounds how many of a world's hottest sequential
	// loops spawn candidates, keeping the branching factor flat even
	// on loop-heavy units.
	maxHotLoops = 3
)

// Options bounds one speculative search.
type Options struct {
	// BeamWidth is how many worlds survive each depth level.
	BeamWidth int
	// MaxDepth is the maximum number of transformation steps per plan.
	MaxDepth int
	// MaxWorlds is the total world-fork budget for the whole search.
	MaxWorlds int
	// Workers bounds concurrent world evaluations (0 = GOMAXPROCS).
	Workers int
	// Timeout is the wall-clock budget; expiry returns the plans found
	// so far (0 = DefaultTimeout, negative = none beyond ctx).
	Timeout time.Duration
	// TopPlans caps the ranked plans returned.
	TopPlans int
	// Interp validates each finalist under the parallel interpreter
	// (outputs must match the base program) and adds an interpreted
	// speedup to its score.
	Interp bool
	// InterpWorkers is the simulated DOALL worker count for
	// interpreted speedups (0 = the estimator's processor count).
	InterpWorkers int
	// Input supplies READ data for interpreted runs; when nil the
	// workload suite is consulted by source path.
	Input []float64
	// Compiled additionally times interp-validated finalists as
	// native binaries through the pedc backend, recording real
	// wall-clock speedups next to the simulated ones. Programs the
	// code generator declines simply skip the measurement.
	Compiled bool
	// CompileCache overrides the pedc build cache directory (tests);
	// empty means the per-user default.
	CompileCache string
	// Gov supervises compiled scoring runs (build timeout, output
	// caps, group kill); nil means default limits.
	Gov *execguard.Governor
}

func (o Options) withDefaults() Options {
	if o.BeamWidth <= 0 {
		o.BeamWidth = DefaultBeamWidth
	}
	if o.MaxDepth <= 0 {
		o.MaxDepth = DefaultMaxDepth
	}
	if o.MaxWorlds <= 0 {
		o.MaxWorlds = DefaultMaxWorlds
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Timeout == 0 {
		o.Timeout = DefaultTimeout
	}
	if o.TopPlans <= 0 {
		o.TopPlans = DefaultTopPlans
	}
	if o.InterpWorkers <= 0 {
		o.InterpWorkers = perf.DefaultParams().Procs
	}
	return o
}

// Step is one replayable plan step: a REPL command line plus the
// power-steering verdict the world saw and the source hash after the
// step — the integrity chain apply-time verification walks.
type Step struct {
	Line    string `json:"line"`
	Verdict string `json:"verdict,omitempty"`
	Hash    string `json:"hash"`
}

// Decision records one carried dependence a plan's parallel loop
// assumes away, and on what basis — the per-dependence audit trail
// the power-steering paradigm owes the user even when a machine
// proposed the plan.
type Decision struct {
	Loop  string `json:"loop"`
	Var   string `json:"var"`
	Basis string `json:"basis"`
	// Detail describes the first collapsed dependence edge; Edges
	// counts how many edges this decision covers.
	Detail string `json:"detail,omitempty"`
	Edges  int    `json:"edges,omitempty"`
}

// Plan is one ranked speculative result.
type Plan struct {
	// ID is the content hash (prefix) of the plan's final source.
	ID   string `json:"id"`
	Rank int    `json:"rank"`
	// EstSpeedup is base estimated time over this world's estimated
	// time (parallel-aware static cost model).
	EstSpeedup float64 `json:"est_speedup"`
	// SimSpeedup is the interpreted speedup (0 when not interpreted).
	SimSpeedup float64 `json:"sim_speedup,omitempty"`
	// CompiledSpeedup is the real wall-clock speedup measured by
	// compiling base and plan with the pedc backend (0 when not
	// requested, or when the code generator declined the program).
	CompiledSpeedup float64 `json:"compiled_speedup,omitempty"`
	// Score ranks plans: the mean of the estimated and interpreted
	// speedups when both exist, the estimate alone otherwise.
	Score float64 `json:"score"`
	// Parallelized counts parallel loops in the plan's unit.
	Parallelized int `json:"parallelized"`
	// BaseHash is the parent source hash the plan was searched from;
	// apply must refuse when the parent has moved on (stale plan).
	BaseHash  string     `json:"base_hash"`
	Steps     []Step     `json:"steps"`
	Decisions []Decision `json:"decisions,omitempty"`
	Diff      string     `json:"diff,omitempty"`
	// Source is the plan's final printed source (not serialized —
	// applying replays the steps instead of pasting text).
	Source string `json:"-"`
}

// Result is the outcome of one search.
type Result struct {
	Unit            string        `json:"unit"`
	BaseHash        string        `json:"base_hash"`
	WorldsForked    int           `json:"worlds_forked"`
	WorldsScored    int           `json:"worlds_scored"`
	WorldsDiscarded int           `json:"worlds_discarded"`
	Elapsed         time.Duration `json:"-"`
	Plans           []Plan        `json:"plans"`
}

// Observer receives world lifecycle events; implementations must be
// concurrency-safe (worlds are evaluated in parallel). The server
// feeds its metrics registry through this.
type Observer interface {
	WorldForked()
	WorldScored()
	WorldDiscarded()
	// WorldsLive is called with +1 when a world starts evaluating and
	// -1 when it finishes (scored or discarded).
	WorldsLive(delta int)
}

type nopObserver struct{}

func (nopObserver) WorldForked()     {}
func (nopObserver) WorldScored()     {}
func (nopObserver) WorldDiscarded()  {}
func (nopObserver) WorldsLive(δ int) {}

// SrcHash fingerprints a printed source — the same sha256 hex the
// daemon's journal integrity chain uses, so planner base hashes
// compare directly against session hashes.
func SrcHash(src string) string {
	sum := sha256.Sum256([]byte(src))
	return hex.EncodeToString(sum[:])
}

// world is one speculative copy of the program. Worlds are immutable
// after evaluation: the beam and the finalist set only ever read
// them, and children fork from the parent's printed source rather
// than sharing its AST.
type world struct {
	sess  *core.Session
	src   string // printed source (fork point for children)
	hash  string
	steps []Step
	cost  float64 // parallel-aware estimated time of the unit
	par   int     // parallel loops in the unit
	// simSpeedup is filled for finalists when interpretation is on.
	simSpeedup float64
	// compiledSpeedup is the real wall-clock speedup of the compiled
	// plan over the compiled base (0 when not measured).
	compiledSpeedup float64
}

type searcher struct {
	path, unit string
	opts       Options
	obs        Observer
	params     perf.Params

	mu        sync.Mutex
	forked    int
	scored    int
	discarded int
}

// Search forks speculative worlds from the printed source and beam-
// searches transformation sequences for the named unit ("" = the
// session's default unit). It returns the ranked plans found within
// the budget; deadline expiry returns partial results, not an error.
func Search(ctx context.Context, path, source, unit string, opts Options, obs Observer) (*Result, error) {
	opts = opts.withDefaults()
	if obs == nil {
		obs = nopObserver{}
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Timeout)
		defer cancel()
	}
	start := time.Now()
	s := &searcher{path: path, unit: unit, opts: opts, obs: obs, params: perf.DefaultParams()}

	base, err := s.openWorld(source, nil)
	if err != nil {
		return nil, fmt.Errorf("plan: fork base world: %v", err)
	}
	if unit == "" {
		s.unit = base.sess.CurrentUnit().Name
	}
	res := &Result{Unit: s.unit, BaseHash: base.hash}

	seen := map[string]bool{base.hash: true}
	var finals []*world
	beam := []*world{base}
	for depth := 0; depth < opts.MaxDepth && len(beam) > 0 && ctx.Err() == nil; depth++ {
		type job struct {
			parent *world
			line   string
		}
		var jobs []job
		for _, w := range beam {
			for _, line := range s.candidates(w) {
				jobs = append(jobs, job{w, line})
			}
		}
		if len(jobs) == 0 {
			break
		}
		// Evaluate this level's candidates concurrently on a bounded
		// pool. Each evaluation forks, applies, and scores one world;
		// a panic anywhere inside is confined to that world.
		children := make([]*world, len(jobs))
		sem := make(chan struct{}, opts.Workers)
		var wg sync.WaitGroup
		for i, j := range jobs {
			wg.Add(1)
			go func(i int, parent *world, line string) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				if ctx.Err() != nil || !s.takeForkBudget() {
					return
				}
				w, err := s.eval(parent, line)
				if err != nil {
					s.noteDiscard()
					return
				}
				children[i] = w
			}(i, j.parent, j.line)
		}
		wg.Wait()

		// Collect distinct new worlds; every improving world is a plan
		// candidate (not just the final beam — a shallow plan the user
		// can audit beats a deep one they cannot).
		var next []*world
		for _, c := range children {
			if c == nil {
				continue
			}
			if seen[c.hash] {
				s.noteDiscard() // transformation cycle or convergent sequence
				continue
			}
			seen[c.hash] = true
			next = append(next, c)
			if c.cost < base.cost {
				finals = append(finals, c)
			}
		}
		sort.SliceStable(next, func(i, j int) bool { return next[i].cost < next[j].cost })
		if len(next) > opts.BeamWidth {
			next = next[:opts.BeamWidth]
		}
		beam = next
	}

	res.Plans = s.rankPlans(base, finals)
	s.mu.Lock()
	res.WorldsForked, res.WorldsScored, res.WorldsDiscarded = s.forked, s.scored, s.discarded
	s.mu.Unlock()
	res.Elapsed = time.Since(start)
	return res, nil
}

func (s *searcher) takeForkBudget() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.forked >= s.opts.MaxWorlds {
		return false
	}
	s.forked++
	return true
}

func (s *searcher) noteDiscard() {
	s.mu.Lock()
	s.discarded++
	s.mu.Unlock()
	s.obs.WorldDiscarded()
}

// openWorld parses source into a fresh single-threaded session
// positioned on the search unit. Worlds run their per-unit analysis
// pool at width 1: the planner's parallelism is across worlds.
func (s *searcher) openWorld(source string, steps []Step) (*world, error) {
	sess, err := core.OpenWorkers(s.path, source, 1)
	if err != nil {
		return nil, err
	}
	if s.unit != "" {
		if err := sess.SelectUnit(s.unit); err != nil {
			return nil, err
		}
	}
	// Canonicalize to the printed form: the hash chain must match what
	// Save() (and therefore the daemon's journal integrity chain)
	// computes, which for raw user text can differ in formatting.
	src := sess.Save()
	w := &world{sess: sess, src: src, hash: SrcHash(src), steps: steps}
	s.score(w)
	return w, nil
}

// eval forks one child world from parent and applies one step.
// Everything — the reparse, the transformation, the reanalysis, the
// scoring — runs behind a recover: an armed faultpoint or a genuine
// bug panics this world only, and the caller counts it discarded.
func (s *searcher) eval(parent *world, line string) (w *world, err error) {
	defer func() {
		if r := recover(); r != nil {
			w, err = nil, fmt.Errorf("world panicked: %v", r)
		}
	}()
	if err := faultpoint.Hit(faultpoint.PlanFork, line); err != nil {
		return nil, err
	}
	s.obs.WorldForked()
	s.obs.WorldsLive(1)
	defer s.obs.WorldsLive(-1)

	sess, err := core.OpenWorkers(s.path, parent.src, 1)
	if err != nil {
		return nil, err
	}
	if s.unit != "" {
		if err := sess.SelectUnit(s.unit); err != nil {
			return nil, err
		}
	}
	verdict, err := applyStepLine(sess, line)
	if err != nil {
		return nil, err
	}
	if err := faultpoint.Hit(faultpoint.PlanScore, line); err != nil {
		return nil, err
	}
	src := sess.Save()
	w = &world{
		sess: sess,
		src:  src,
		hash: SrcHash(src),
		steps: append(append([]Step{}, parent.steps...),
			Step{Line: line, Verdict: verdict, Hash: SrcHash(src)}),
	}
	s.score(w)
	s.mu.Lock()
	s.scored++
	s.mu.Unlock()
	s.obs.WorldScored()
	return w, nil
}

// applyStepLine executes one "apply <xform> <args>" plan step against
// a world session through the same grammar the REPL and journal
// replay use.
func applyStepLine(sess *core.Session, line string) (string, error) {
	f := strings.Fields(line)
	if len(f) < 2 || f[0] != "apply" {
		return "", fmt.Errorf("bad plan step %q", line)
	}
	t, err := core.ParseTransformation(sess, f[1:])
	if err != nil {
		return "", err
	}
	v, err := sess.Transform(t)
	if err != nil {
		return "", err
	}
	return v.String(), nil
}

// score computes the world's parallel-aware estimated time and its
// parallel-loop count.
func (s *searcher) score(w *world) {
	st := w.sess.State()
	e := perf.New(w.sess.File, s.params)
	w.cost = e.ParallelTime(st.DF, st.Unit.Body)
	for _, l := range w.sess.Loops() {
		if l.Do.Parallel {
			w.par++
		}
	}
}

// rankPlans turns the improving worlds into the ranked plan set:
// sort by estimated cost, cap to TopPlans, optionally validate and
// time finalists under the interpreter, and attach diffs and
// per-dependence decisions.
func (s *searcher) rankPlans(base *world, finals []*world) []Plan {
	sort.SliceStable(finals, func(i, j int) bool { return finals[i].cost < finals[j].cost })
	if len(finals) > s.opts.TopPlans {
		finals = finals[:s.opts.TopPlans]
	}

	input := s.opts.Input
	if input == nil {
		if wl := workloads.ByName(strings.TrimSuffix(s.path, ".f")); wl != nil {
			input = wl.Input
		}
	}
	var baseOut string
	var baseCycles int64
	interpOK := false
	if s.opts.Interp && len(finals) > 0 {
		var err error
		baseOut, baseCycles, err = interp.RunCaptureSim(base.sess.File, s.opts.InterpWorkers, input)
		interpOK = err == nil && baseCycles > 0
		if interpOK {
			kept := finals[:0]
			for _, w := range finals {
				out, cycles, err := interp.RunCaptureSim(w.sess.File, s.opts.InterpWorkers, input)
				if err != nil {
					s.noteDiscard() // plan crashes the program: reject
					continue
				}
				if ok, _ := interp.OutputsEquivalent(baseOut, out, 1e-6); !ok {
					s.noteDiscard() // plan changes the answers: reject
					continue
				}
				w.simSpeedup = 0
				if cycles > 0 {
					w.simSpeedup = float64(baseCycles) / float64(cycles)
				}
				kept = append(kept, w)
			}
			finals = kept
		}
	}

	// Compiled ground truth: time the surviving finalists as native
	// binaries against the compiled base. Purely additive evidence —
	// a declined or failed compilation leaves the plan's interp-based
	// ranking untouched.
	if s.opts.Compiled && len(finals) > 0 {
		ctx := context.Background()
		baseRes, err := codegen.Exec(ctx, base.sess.File, s.opts.InterpWorkers, input, s.opts.CompileCache, s.opts.Gov)
		if err == nil && baseRes.Wall > 0 {
			for _, w := range finals {
				res, err := codegen.Exec(ctx, w.sess.File, s.opts.InterpWorkers, input, s.opts.CompileCache, s.opts.Gov)
				if err != nil || res.Wall <= 0 {
					continue
				}
				if ok, _ := interp.OutputsEquivalent(baseRes.Output, res.Output, 1e-6); !ok {
					continue
				}
				w.compiledSpeedup = float64(baseRes.Wall) / float64(res.Wall)
			}
		}
	}

	plans := make([]Plan, 0, len(finals))
	for i, w := range finals {
		est := 1.0
		if w.cost > 0 {
			est = base.cost / w.cost
		}
		score := est
		if interpOK && w.simSpeedup > 0 {
			score = (est + w.simSpeedup) / 2
		}
		steps := make([]Step, 0, len(w.steps)+1)
		steps = append(steps, Step{Line: "unit " + s.unit, Hash: base.hash})
		steps = append(steps, w.steps...)
		plans = append(plans, Plan{
			ID:              w.hash[:12],
			Rank:            i + 1,
			EstSpeedup:      est,
			SimSpeedup:      w.simSpeedup,
			CompiledSpeedup: w.compiledSpeedup,
			Score:           score,
			Parallelized:    w.par,
			BaseHash:        base.hash,
			Steps:           steps,
			Decisions:       decisions(w.sess),
			Diff:            Diff(base.src, w.src),
			Source:          w.src,
		})
	}
	// Rank by combined score (interp evidence can reorder estimates).
	sort.SliceStable(plans, func(i, j int) bool { return plans[i].Score > plans[j].Score })
	for i := range plans {
		plans[i].Rank = i + 1
	}
	return plans
}

// decisions extracts the per-dependence audit trail of a world: for
// every parallel loop in its unit, each carried dependence and the
// basis on which the plan assumes it away (privatization, reduction,
// induction, or a user rejection inherited from the parent). One
// variable often carries several dependence edges on the same basis;
// those collapse to a single decision counting its edges in Detail.
func decisions(sess *core.Session) []Decision {
	var out []Decision
	index := map[string]int{}
	loops := sess.Loops()
	for i, l := range loops {
		if !l.Do.Parallel {
			continue
		}
		name := fmt.Sprintf("do %s (line %d)", l.Header().Name, l.Do.Line())
		priv := map[*fortran.Symbol]bool{}
		for _, p := range l.Do.Private {
			priv[p] = true
		}
		reds := map[*fortran.Symbol]bool{}
		for _, r := range l.Do.Reductions {
			reds[r.Sym] = true
		}
		if err := sess.SelectLoop(i + 1); err != nil {
			continue
		}
		for _, d := range sess.SelectionDeps(core.DepFilter{CarriedOnly: true}) {
			basis := "assumed-covered"
			switch {
			case d.Mark == dep.MarkRejected:
				basis = "user-rejected"
			case priv[d.Sym]:
				basis = "privatized"
			case reds[d.Sym]:
				basis = "reduction"
			case d.Sym == l.Do.Var:
				basis = "induction"
			}
			detail := fmt.Sprintf("%v dependence at level %d (line %d → %d)",
				d.Class, d.Level, d.Src.Line(), d.Dst.Line())
			key := name + "\x00" + d.Sym.Name + "\x00" + basis
			if at, ok := index[key]; ok {
				out[at].Edges++
				continue
			}
			index[key] = len(out)
			out = append(out, Decision{
				Loop:   name,
				Var:    d.Sym.Name,
				Basis:  basis,
				Detail: detail,
				Edges:  1,
			})
		}
	}
	return out
}
