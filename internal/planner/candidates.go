package planner

import (
	"fmt"
	"strings"

	"parascope/internal/core"
	"parascope/internal/fortran"
)

// candidates enumerates the next-step command lines worth forking a
// world for, gated by the power-steering Check so no fork is wasted
// on a step its own world would reject. Per hot sequential loop
// (hottest first by estimated sequential time, capped at
// maxHotLoops): parallelize it outright, or one of the enabling
// transformations — reduction recognition, interchange, skew,
// privatization of the offending scalars. Adjacent same-depth loop
// pairs additionally propose fusion.
//
// candidates runs on the search goroutine, one world at a time, so
// mutating the world's selection state here is safe.
func (s *searcher) candidates(w *world) []string {
	sess := w.sess
	loops := sess.Loops()
	ord := map[*fortran.DoStmt]int{}
	for i, l := range loops {
		ord[l.Do] = i + 1
	}

	var out []string
	hot := 0
	for _, le := range sess.State().Est.Loops {
		if le.Loop.Do.Parallel {
			continue
		}
		o := ord[le.Loop.Do]
		if o == 0 {
			continue
		}
		if hot++; hot > maxHotLoops {
			break
		}
		cands := []string{
			fmt.Sprintf("parallelize %d", o),
			fmt.Sprintf("reductions %d", o),
			fmt.Sprintf("interchange %d", o),
			fmt.Sprintf("skew %d 1", o),
		}
		if err := sess.SelectLoop(o); err == nil {
			for _, vi := range sess.VariablePane() {
				if vi.Privatizable && vi.Class == core.ClassShared && vi.DepCount > 0 {
					cands = append(cands, fmt.Sprintf("privatize %d %s", o, vi.Sym.Name))
				}
			}
		}
		for _, cand := range cands {
			if s.checkOK(sess, cand) {
				out = append(out, "apply "+cand)
			}
		}
	}

	for i := 0; i+1 < len(loops); i++ {
		if loops[i].Depth != loops[i+1].Depth {
			continue
		}
		cand := fmt.Sprintf("fuse %d %d", i+1, i+2)
		if s.checkOK(sess, cand) {
			out = append(out, "apply "+cand)
		}
	}
	return out
}

// checkOK runs the power-steering diagnosis for one candidate without
// applying it.
func (s *searcher) checkOK(sess *core.Session, cand string) bool {
	t, err := core.ParseTransformation(sess, strings.Fields(cand))
	if err != nil {
		return false
	}
	return sess.Check(t).OK()
}
