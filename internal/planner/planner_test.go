package planner_test

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"parascope/internal/core"
	"parascope/internal/planner"
	"parascope/internal/repl"
	"parascope/internal/workloads"
)

func search(t *testing.T, workload string, opts planner.Options) *planner.Result {
	t.Helper()
	w := workloads.ByName(workload)
	if w == nil {
		t.Fatalf("no workload %q", workload)
	}
	res, err := planner.Search(context.Background(), w.Name+".f", w.Source, "", opts, nil)
	if err != nil {
		t.Fatalf("search %s: %v", workload, err)
	}
	return res
}

// TestSearchRanksMultiplePlans is the subsystem's core acceptance
// check: on a real workload the planner returns at least two ranked
// candidate plans, each with an estimated speedup, a replayable step
// sequence anchored at the base hash, and a source diff.
func TestSearchRanksMultiplePlans(t *testing.T) {
	w := workloads.ByName("spec77")
	res, err := planner.Search(context.Background(), w.Name+".f", w.Source, "",
		planner.Options{Interp: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Plans) < 2 {
		t.Fatalf("want >= 2 ranked plans, got %d", len(res.Plans))
	}
	base, err := core.Open(w.Name+".f", w.Source)
	if err != nil {
		t.Fatal(err)
	}
	if res.BaseHash != planner.SrcHash(base.Save()) {
		t.Fatalf("base hash %s does not fingerprint the printed base source", res.BaseHash)
	}
	if res.WorldsForked == 0 || res.WorldsScored == 0 {
		t.Fatalf("no worlds explored: %+v", res)
	}
	for i, p := range res.Plans {
		if p.Rank != i+1 {
			t.Errorf("plan %d has rank %d", i, p.Rank)
		}
		if i > 0 && p.Score > res.Plans[i-1].Score {
			t.Errorf("plans not ranked by score: %f after %f", p.Score, res.Plans[i-1].Score)
		}
		if p.EstSpeedup <= 1 {
			t.Errorf("plan %s estimated speedup %f, want > 1 (only improving worlds become plans)",
				p.ID, p.EstSpeedup)
		}
		if p.BaseHash != res.BaseHash {
			t.Errorf("plan %s base hash diverges from result base hash", p.ID)
		}
		if len(p.Steps) < 2 || !strings.HasPrefix(p.Steps[0].Line, "unit ") {
			t.Errorf("plan %s steps %v: want unit prefix + at least one transformation", p.ID, p.Steps)
		}
		for _, st := range p.Steps[1:] {
			if !strings.HasPrefix(st.Line, "apply ") {
				t.Errorf("plan %s step %q is not an apply line", p.ID, st.Line)
			}
			if st.Hash == "" {
				t.Errorf("plan %s step %q has no post-hash", p.ID, st.Line)
			}
		}
		if p.Parallelized == 0 {
			t.Errorf("plan %s parallelized no loops", p.ID)
		}
		if !strings.Contains(p.Diff, "+") {
			t.Errorf("plan %s has no diff", p.ID)
		}
		if p.Steps[len(p.Steps)-1].Hash != planner.SrcHash(p.Source) {
			t.Errorf("plan %s final step hash does not fingerprint its source", p.ID)
		}
	}
}

// TestPlanReplayByteIdentical replays the top plan's step lines
// through a fresh REPL — the normal mutation path — and requires the
// resulting source to match the plan's world byte for byte (that is
// what makes the per-step hash chain trustworthy at apply time).
func TestPlanReplayByteIdentical(t *testing.T) {
	for _, workload := range []string{"direct", "spec77", "interior"} {
		w := workloads.ByName(workload)
		res, err := planner.Search(context.Background(), w.Name+".f", w.Source, "",
			planner.Options{Interp: true}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Plans) == 0 {
			t.Fatalf("%s: no plans", workload)
		}
		p := res.Plans[0]
		s, err := core.Open(w.Name+".f", w.Source)
		if err != nil {
			t.Fatal(err)
		}
		r := repl.New(s, &strings.Builder{})
		for i, st := range p.Steps {
			if err := r.Execute(st.Line); err != nil {
				t.Fatalf("%s: replay step %d (%q): %v", workload, i+1, st.Line, err)
			}
			if h := planner.SrcHash(s.Save()); h != st.Hash {
				t.Fatalf("%s: hash chain broke at step %d (%q)", workload, i+1, st.Line)
			}
		}
		if got := s.Save(); got != p.Source {
			t.Fatalf("%s: replayed source differs from plan world source:\n%s", workload,
				planner.Diff(p.Source, got))
		}
	}
}

// TestInterpScoring: with interpretation on, finalists carry a
// simulated speedup > 1 measured by the parallel interpreter (the
// base program runs the same input, so outputs were also validated).
func TestInterpScoring(t *testing.T) {
	res := search(t, "direct", planner.Options{Interp: true})
	if len(res.Plans) == 0 {
		t.Fatal("no plans")
	}
	anySim := false
	for _, p := range res.Plans {
		if p.SimSpeedup > 1 {
			anySim = true
		}
	}
	if !anySim {
		t.Fatalf("no plan carries an interpreted speedup > 1: %+v", res.Plans)
	}
}

// TestSearchRespectsWorldBudget: the total fork budget bounds
// WorldsForked no matter the beam shape.
func TestSearchRespectsWorldBudget(t *testing.T) {
	res := search(t, "spec77", planner.Options{MaxWorlds: 3, Interp: false})
	if res.WorldsForked > 3 {
		t.Fatalf("forked %d worlds with MaxWorlds=3", res.WorldsForked)
	}
}

// TestSearchDeadlineReturnsPartial: an expired deadline ends the
// search cleanly with whatever was found — never an error.
func TestSearchDeadlineReturnsPartial(t *testing.T) {
	w := workloads.ByName("spec77")
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already expired
	res, err := planner.Search(ctx, w.Name+".f", w.Source, "", planner.Options{Interp: false}, nil)
	if err != nil {
		t.Fatalf("expired deadline must not error: %v", err)
	}
	if len(res.Plans) != 0 || res.WorldsForked != 0 {
		t.Fatalf("canceled search still explored: %+v", res)
	}
}

// TestSearchUnknownUnit surfaces a clean error.
func TestSearchUnknownUnit(t *testing.T) {
	w := workloads.ByName("direct")
	_, err := planner.Search(context.Background(), w.Name+".f", w.Source, "nosuch",
		planner.Options{Interp: false}, nil)
	if err == nil {
		t.Fatal("want error for unknown unit")
	}
}

// TestConcurrentSearches runs independent searches in parallel —
// worlds share no mutable state across searches either, which -race
// verifies.
func TestConcurrentSearches(t *testing.T) {
	var wg sync.WaitGroup
	for _, workload := range []string{"direct", "onedim", "interior", "direct"} {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			search(t, name, planner.Options{Interp: true, Timeout: 30 * time.Second})
		}(workload)
	}
	wg.Wait()
}

func TestDiff(t *testing.T) {
	got := planner.Diff("a\nb\nc\n", "a\nx\nc\n")
	for _, want := range []string{"- b", "+ x", "1 unchanged"} {
		if !strings.Contains(got, want) {
			t.Errorf("diff missing %q:\n%s", want, got)
		}
	}
	if planner.Diff("same\n", "same\n") != "  ... 1 unchanged ...\n" {
		t.Errorf("identical inputs should collapse entirely: %q", planner.Diff("same\n", "same\n"))
	}
}

// TestSearchCompiledGroundTruth opts finalists into the pedc compile
// backend: plans that survive interp validation get a real wall-clock
// speedup measured from native binaries. Timing is hardware-dependent,
// so the test only asserts that the measurement happened (non-zero)
// and that it never resurrects an interp-rejected plan.
func TestSearchCompiledGroundTruth(t *testing.T) {
	if testing.Short() {
		t.Skip("compile backend builds binaries; skipped in -short mode")
	}
	res := search(t, "onedim", planner.Options{
		Interp: true, Compiled: true, CompileCache: t.TempDir(),
		MaxWorlds: 40, TopPlans: 2,
	})
	if len(res.Plans) == 0 {
		t.Fatal("no plans found")
	}
	measured := 0
	for _, p := range res.Plans {
		if p.CompiledSpeedup > 0 {
			measured++
		}
	}
	if measured == 0 {
		t.Fatalf("no plan carries a compiled speedup: %+v", res.Plans)
	}
}
