package planner

import (
	"fmt"
	"strings"
)

// Diff renders a minimal line diff from a to b: an LCS alignment with
// removed lines prefixed "-", added lines "+", and unchanged runs
// collapsed to "  ... n unchanged ...". Sources here are printed
// Fortran programs — small — so the quadratic table is fine.
func Diff(a, b string) string {
	al := strings.Split(strings.TrimRight(a, "\n"), "\n")
	bl := strings.Split(strings.TrimRight(b, "\n"), "\n")
	// lcs[i][j] = LCS length of al[i:], bl[j:].
	lcs := make([][]int, len(al)+1)
	for i := range lcs {
		lcs[i] = make([]int, len(bl)+1)
	}
	for i := len(al) - 1; i >= 0; i-- {
		for j := len(bl) - 1; j >= 0; j-- {
			if al[i] == bl[j] {
				lcs[i][j] = lcs[i+1][j+1] + 1
			} else if lcs[i+1][j] >= lcs[i][j+1] {
				lcs[i][j] = lcs[i+1][j]
			} else {
				lcs[i][j] = lcs[i][j+1]
			}
		}
	}
	var out strings.Builder
	same := 0
	flushSame := func() {
		if same > 0 {
			fmt.Fprintf(&out, "  ... %d unchanged ...\n", same)
			same = 0
		}
	}
	i, j := 0, 0
	for i < len(al) && j < len(bl) {
		switch {
		case al[i] == bl[j]:
			same++
			i++
			j++
		case lcs[i+1][j] >= lcs[i][j+1]:
			flushSame()
			fmt.Fprintf(&out, "- %s\n", al[i])
			i++
		default:
			flushSame()
			fmt.Fprintf(&out, "+ %s\n", bl[j])
			j++
		}
	}
	for ; i < len(al); i++ {
		flushSame()
		fmt.Fprintf(&out, "- %s\n", al[i])
	}
	for ; j < len(bl); j++ {
		flushSame()
		fmt.Fprintf(&out, "+ %s\n", bl[j])
	}
	flushSame()
	return out.String()
}
