package planner

import (
	"fmt"
	"strings"
	"time"
)

// Format renders the search result as the ranked-plan text surface
// shared by the REPL and the remote line protocol.
func (res *Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan %s: %d plan(s) — %d worlds forked, %d scored, %d discarded",
		res.Unit, len(res.Plans), res.WorldsForked, res.WorldsScored, res.WorldsDiscarded)
	if res.Elapsed > 0 {
		fmt.Fprintf(&b, " in %s", res.Elapsed.Round(time.Millisecond))
	}
	b.WriteString("\n")
	if len(res.Plans) == 0 {
		b.WriteString("no improving transformation sequence found within budget\n")
		return b.String()
	}
	for i := range res.Plans {
		b.WriteString(res.Plans[i].Format())
	}
	b.WriteString("accept a plan with: apply-plan <rank>\n")
	return b.String()
}

// Format renders one plan: its scores, replayable steps, and the
// per-dependence decisions it assumes.
func (p *Plan) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%2d. plan %s  est %.1fx", p.Rank, p.ID, p.EstSpeedup)
	if p.SimSpeedup > 0 {
		fmt.Fprintf(&b, "  sim %.1fx", p.SimSpeedup)
	}
	if p.CompiledSpeedup > 0 {
		fmt.Fprintf(&b, "  compiled %.1fx", p.CompiledSpeedup)
	}
	fmt.Fprintf(&b, "  score %.1f  (%d parallel loop(s), %d step(s))\n",
		p.Score, p.Parallelized, len(p.Steps))
	for _, s := range p.Steps {
		fmt.Fprintf(&b, "      %s", s.Line)
		if v := firstLine(s.Verdict); v != "" {
			fmt.Fprintf(&b, "   [%s]", v)
		}
		b.WriteString("\n")
	}
	for _, d := range p.Decisions {
		edges := ""
		if d.Edges > 1 {
			edges = fmt.Sprintf(" (%d dependences)", d.Edges)
		}
		fmt.Fprintf(&b, "      assumes %s: %s in %s%s\n", d.Basis, d.Var, d.Loop, edges)
	}
	return b.String()
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
